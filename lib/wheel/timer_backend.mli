(** A common signature for pending-timer stores, and reference
    implementations.

    The soft-timer facility needs three operations on its pending-event
    set: O(1)-ish [schedule]/[cancel], a cheap earliest-deadline query
    (performed at {e every} trigger state), and batched expiry.  The
    paper picks a modified hashed timing wheel (footnote 2); this module
    captures the interface so alternatives can be compared — see the
    ablation in [bench/timer_ablation.ml]:

    - {!Sorted_list}: the classic BSD callout list; O(n) insert, O(1)
      check/expiry.  Fine for a handful of timers, pathological for the
      per-connection timers of a busy server.
    - {!Binary_heap}: O(log n) insert/expiry, O(1) check.
    - [Timing_wheel] (hashed; in this library): O(1) insert/cancel,
      O(1) amortised check and expiry.
    - {!Hier}: hierarchical timing wheels (the second variant of
      Varghese & Lauck): multiple levels of coarser wheels; entries
      cascade down as time advances.  O(1) insert at the right level,
      no long-deadline slot collisions.

    The richer [Timer_store] signature in [lib/store] (re-arm, stable
    handles, the Lawn and grouped-sorting stores) is layered on top of
    this one via [Timer_store.Of_base]. *)

module type S = sig
  type 'a t

  type handle

  val name : string

  val create : tick:Time_ns.span -> unit -> 'a t
  (** [tick] is the finest scheduling granularity. *)

  val schedule : 'a t -> at:Time_ns.t -> 'a -> handle
  val cancel : 'a t -> handle -> unit

  val pending : 'a t -> int
  (** Scheduled, uncancelled, unfired entries. *)

  val resident : 'a t -> int
  (** Entries physically present in the store: pending entries plus
      cancelled corpses awaiting lazy reclamation.  Every backend bounds
      this by [2 * max (pending t) floor] where [floor] is a small
      constant (64 for the list/heap/hierarchical stores, the slot count
      for the hashed wheel): once corpses reach both the floor and the
      live count, a compaction pass sheds them all, keeping the
      amortized cost per cancel O(1). *)

  val next_deadline : 'a t -> Time_ns.t option

  val words : 'a t -> int
  (** Analytic estimate of the store's own heap footprint in 64-bit
      words — records, handles, backing arrays and boxed deadlines, but
      {e not} the payload values it borrows.  Cross-checked against
      [Obj.reachable_words] (with immediate payloads) in tests; used by
      the memory observatory to report words/timer per backend. *)

  val fire_due :
    'a t -> now:Time_ns.t -> limit:int -> (Time_ns.t -> 'a -> unit) -> Fire_outcome.t
  (** [fire_due t ~now ~limit f] dispatches entries due at or before
      [now] and returns the packed batch size and callback count
      ({!Fire_outcome}).  All backends implement the same re-entrancy
      contract:

      - The due batch is the set of pending entries with deadline
        [<= now] {e at call time}.  Entries scheduled by callbacks
        during the call are never dispatched in the same call, even if
        already due; they wait for the next call.
      - Dispatch is in (deadline, schedule order) order, and each
        entry's state is re-checked immediately before its callback
        runs: an entry cancelled by an earlier callback in the same
        batch is skipped, not fired.
      - At most [limit] callbacks run (pass [max_int] for no budget);
        entries beyond the budget are re-inserted with their deadline
        and sequence number preserved, so the next call dispatches the
        remainder in the same order.  Recheck-skips do not consume the
        budget.  [Fire_outcome.scanned] counts the whole due batch,
        withheld entries included.
      - [fire_due] must not be called from within a callback. *)
end

module Sorted_list : S
module Binary_heap : S
module Hashed : S
(** The production {!Timing_wheel}, adapted to this signature. *)

module Hier : S
(** Hierarchical timing wheels: 4 levels of 64 slots, each level's tick
    64x the previous. *)

module With_metrics (_ : S) : S
(** [With_metrics (B)] behaves exactly like [B] but counts operations
    into {!Metrics.default} under ["backend.<name>.scheduled"],
    [".cancelled"] and [".fired"], so an ablation run can report each
    store's operation mix alongside its timings. *)

val all : (module S) list
(** All four backends, for tests and the ablation bench. *)
