(** A common signature for pending-timer stores, and reference
    implementations.

    The soft-timer facility needs three operations on its pending-event
    set: O(1)-ish [schedule]/[cancel], a cheap earliest-deadline query
    (performed at {e every} trigger state), and batched expiry.  The
    paper picks a modified hashed timing wheel (footnote 2); this module
    captures the interface so alternatives can be compared — see the
    ablation in [bench/timer_ablation.ml]:

    - {!Sorted_list}: the classic BSD callout list; O(n) insert, O(1)
      check/expiry.  Fine for a handful of timers, pathological for the
      per-connection timers of a busy server.
    - {!Binary_heap}: O(log n) insert/expiry, O(1) check.
    - [Timing_wheel] (hashed; in this library): O(1) insert/cancel,
      O(1) amortised check and expiry.
    - {!Hier}: hierarchical timing wheels (the second variant of
      Varghese & Lauck): multiple levels of coarser wheels; entries
      cascade down as time advances.  O(1) insert at the right level,
      no long-deadline slot collisions. *)

module type S = sig
  type 'a t

  type handle

  val name : string

  val create : tick:Time_ns.span -> unit -> 'a t
  (** [tick] is the finest scheduling granularity. *)

  val schedule : 'a t -> at:Time_ns.t -> 'a -> handle
  val cancel : 'a t -> handle -> unit
  val pending : 'a t -> int
  val next_deadline : 'a t -> Time_ns.t option

  val fire_due : 'a t -> now:Time_ns.t -> (Time_ns.t -> 'a -> unit) -> int
  (** Fire everything due at or before [now], in deadline order (ties in
      schedule order); returns the count. *)
end

module Sorted_list : S
module Binary_heap : S
module Hashed : S
(** The production {!Timing_wheel}, adapted to this signature. *)

module Hier : S
(** Hierarchical timing wheels: 4 levels of 64 slots, each level's tick
    64x the previous. *)

module With_metrics (_ : S) : S
(** [With_metrics (B)] behaves exactly like [B] but counts operations
    into {!Metrics.default} under ["backend.<name>.scheduled"],
    [".cancelled"] and [".fired"], so an ablation run can report each
    store's operation mix alongside its timings. *)

val all : (module S) list
(** All four backends, for tests and the ablation bench. *)
