(* Packed result of a [fire_due] call: how many due pending entries the
   sweep collected ([scanned]) and how many callbacks actually ran
   ([fired], [<= scanned] — the rest were withheld by the caller's
   check budget or dropped as corpses at dispatch recheck).  One
   immediate int so the hot path returns both without allocating. *)

type t = int

let shift = 31
let mask = (1 lsl shift) - 1

let[@inline] pack ~scanned ~fired = (scanned lsl shift) lor (fired land mask)
let[@inline] scanned o = o lsr shift
let[@inline] fired o = o land mask
