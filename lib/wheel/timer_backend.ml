module type S = sig
  type 'a t

  type handle

  val name : string

  val create : tick:Time_ns.span -> unit -> 'a t
  val schedule : 'a t -> at:Time_ns.t -> 'a -> handle
  val cancel : 'a t -> handle -> unit
  val pending : 'a t -> int
  val resident : 'a t -> int
  val next_deadline : 'a t -> Time_ns.t option
  val words : 'a t -> int

  val fire_due :
    'a t -> now:Time_ns.t -> limit:int -> (Time_ns.t -> 'a -> unit) -> Fire_outcome.t
end

(* Analytic [words] accounting convention (64-bit): a record of [n]
   fields costs [n + 1] words (header included), a cons cell 3, a boxed
   int64 3.  Each backend counts its own records, handles, backing
   arrays and boxed deadlines, but not the payload values it borrows
   from the caller.  An entry's [deadline] and its handle's [cdeadline]
   are the same boxed int64, so the box is counted once. *)

(* Residency bound shared by the flag-cancelling backends below: once
   corpses (cancelled entries not yet physically removed) reach both
   this floor and the live count, one O(resident) compaction pass sheds
   them all, so [resident t < 2 * max (pending t) compact_floor] holds
   after every operation and the amortized cost per cancel is O(1).
   The hashed wheel uses its slot count as the floor instead (see
   [Timing_wheel]). *)
let compact_floor = 64

(* Shared bookkeeping for flag-cancelled entries. *)
type centry_state = Pending | Cancelled | Fired

type chandle = { mutable cstate : centry_state; cdeadline : Time_ns.t }

(* Dispatch a collected due batch in (deadline, seq) order.  Every
   backend's [fire_due] is two-phase: first the due set is extracted
   from the structure (a snapshot — entries scheduled by callbacks
   during the call are never part of it), then each entry's state is
   re-checked immediately before its callback runs, so a callback that
   cancels a later same-batch entry suppresses its dispatch.  [on_skip]
   fires for each suppressed entry so the caller can settle its corpse
   accounting (the entry was counted cancelled while already extracted
   from the structure).  At most [limit] callbacks run; [on_requeue]
   receives each still-pending entry beyond the budget so the caller
   can put it back with deadline and sequence number preserved.
   Recheck-drops do not consume the budget.  The tuple carries the
   caller's own entry as its last component (for requeue); [value_of]
   projects the callback payload out of it. *)
let fire_sorted ~limit ~on_skip ~on_requeue entries value_of f =
  let due =
    List.sort
      (fun (d1, s1, _, _) (d2, s2, _, _) ->
        let c = Time_ns.compare d1 d2 in
        if c <> 0 then c else compare s1 s2)
      entries
  in
  let scanned = List.length due in
  let fired = ref 0 in
  List.iter
    (fun (d, _, h, e) ->
      if h.cstate = Pending then
        if !fired < limit then begin
          h.cstate <- Fired;
          incr fired;
          f d (value_of e)
        end
        else on_requeue e
      else on_skip ())
    due;
  Fire_outcome.pack ~scanned ~fired:!fired

module Sorted_list : S = struct
  let name = "sorted-list"

  type 'a entry = { deadline : Time_ns.t; seq : int; value : 'a; h : chandle }

  type 'a t = {
    mutable entries : 'a entry list;  (* ascending (deadline, seq) *)
    mutable count : int;
    mutable cancelled : int;  (* corpses still resident in [entries] *)
    mutable next_seq : int;
  }

  let create ~tick () =
    ignore tick;
    { entries = []; count = 0; cancelled = 0; next_seq = 0 }

  type handle = chandle

  (* Cancelled entries used to stay resident until [skip_dead] reached
     their deadline: a churn loop cancelling far-future timers grew the
     list without bound (the same cancel-leak class fixed in the wheel
     in PR 1).  One O(resident) filter once corpses dominate keeps
     residency O(live). *)
  let compact t =
    t.entries <- List.filter (fun e -> e.h.cstate = Pending) t.entries;
    t.cancelled <- 0

  let maybe_compact t =
    if t.cancelled >= compact_floor && t.cancelled >= t.count then compact t

  let drop_corpse t = if t.cancelled > 0 then t.cancelled <- t.cancelled - 1

  (* Sorted insert by (deadline, seq) — shared by [schedule] and the
     budget-requeue path in [fire_due], which re-inserts an extracted
     entry with its original sequence number (callbacks may have
     scheduled younger entries with equal deadlines meanwhile, so a
     plain prepend would break the tie order). *)
  let insert_entry t e =
    let rec insert = function
      | [] -> [ e ]
      | x :: rest ->
        if
          Time_ns.compare x.deadline e.deadline > 0
          || (Time_ns.(x.deadline = e.deadline) && x.seq > e.seq)
        then e :: x :: rest
        else x :: insert rest
    in
    t.entries <- insert t.entries

  let schedule t ~at value =
    let h = { cstate = Pending; cdeadline = at } in
    let e = { deadline = at; seq = t.next_seq; value; h } in
    t.next_seq <- t.next_seq + 1;
    t.count <- t.count + 1;
    insert_entry t e;
    h

  let cancel t h =
    if h.cstate = Pending then begin
      h.cstate <- Cancelled;
      t.count <- t.count - 1;
      t.cancelled <- t.cancelled + 1;
      maybe_compact t
    end

  let pending t = t.count
  let resident t = t.count + t.cancelled

  (* Record (5) + cons (3) + entry (5) + chandle (3) + int64 box (3). *)
  let words t = 5 + (14 * resident t)

  let rec skip_dead t =
    match t.entries with
    | e :: rest when e.h.cstate <> Pending ->
      t.entries <- rest;
      drop_corpse t;
      skip_dead t
    | _ -> ()

  let next_deadline t =
    skip_dead t;
    match t.entries with [] -> None | e :: _ -> Some e.deadline

  let fire_due t ~now ~limit f =
    (* Collect the due snapshot first; callbacks run only afterwards,
       so entries they schedule wait for the next call. *)
    let rec collect acc =
      match t.entries with
      | e :: rest when e.h.cstate <> Pending ->
        t.entries <- rest;
        drop_corpse t;
        collect acc
      | e :: rest when Time_ns.(e.deadline <= now) ->
        t.entries <- rest;
        collect (e :: acc)
      | _ -> List.rev acc
    in
    let batch = collect [] in
    let scanned = List.length batch in
    let fired = ref 0 in
    List.iter
      (fun e ->
        (* Re-check: an earlier callback in this batch may have
           cancelled this entry after it left the list. *)
        if e.h.cstate = Pending then
          if !fired < limit then begin
            e.h.cstate <- Fired;
            t.count <- t.count - 1;
            incr fired;
            f e.deadline e.value
          end
          else insert_entry t e
        else drop_corpse t)
      batch;
    Fire_outcome.pack ~scanned ~fired:!fired
end

module Binary_heap : S = struct
  let name = "binary-heap"

  type 'a entry = { deadline : Time_ns.t; seq : int; value : 'a; h : chandle }

  type 'a t = {
    heap : 'a entry Heap.t;
    mutable count : int;
    mutable cancelled : int;  (* corpses still resident in [heap] *)
    mutable next_seq : int;
  }

  type handle = chandle

  let cmp a b =
    let c = Time_ns.compare a.deadline b.deadline in
    if c <> 0 then c else compare a.seq b.seq

  let create ~tick () =
    ignore tick;
    { heap = Heap.create ~cmp; count = 0; cancelled = 0; next_seq = 0 }

  (* Same cancel-leak as the sorted list: a corpse deep in the heap
     stays until its deadline surfaces.  Filter + Floyd heapify once
     corpses reach both the floor and the live count. *)
  let compact t =
    Heap.filter_in_place t.heap (fun e -> e.h.cstate = Pending);
    t.cancelled <- 0

  let maybe_compact t =
    if t.cancelled >= compact_floor && t.cancelled >= t.count then compact t

  let drop_corpse t = if t.cancelled > 0 then t.cancelled <- t.cancelled - 1

  let schedule t ~at value =
    let h = { cstate = Pending; cdeadline = at } in
    Heap.push t.heap { deadline = at; seq = t.next_seq; value; h };
    t.next_seq <- t.next_seq + 1;
    t.count <- t.count + 1;
    h

  let cancel t h =
    if h.cstate = Pending then begin
      h.cstate <- Cancelled;
      t.count <- t.count - 1;
      t.cancelled <- t.cancelled + 1;
      maybe_compact t
    end

  let pending t = t.count
  let resident t = t.count + t.cancelled

  (* Record (5) + Heap.t (4) + backing array (capacity + 1) + per
     resident: entry (5) + chandle (3) + int64 box (3). *)
  let words t = 5 + 4 + (Heap.capacity t.heap + 1) + (11 * resident t)

  let rec skip_dead t =
    match Heap.peek t.heap with
    | Some e when e.h.cstate <> Pending ->
      ignore (Heap.pop t.heap : 'a entry option);
      drop_corpse t;
      skip_dead t
    | _ -> ()

  let next_deadline t =
    skip_dead t;
    match Heap.peek t.heap with None -> None | Some e -> Some e.deadline

  let fire_due t ~now ~limit f =
    let rec collect acc =
      skip_dead t;
      match Heap.peek t.heap with
      | Some e when Time_ns.(e.deadline <= now) ->
        ignore (Heap.pop t.heap : 'a entry option);
        collect (e :: acc)
      | _ -> List.rev acc
    in
    let batch = collect [] in
    let scanned = List.length batch in
    let fired = ref 0 in
    List.iter
      (fun e ->
        if e.h.cstate = Pending then
          if !fired < limit then begin
            e.h.cstate <- Fired;
            t.count <- t.count - 1;
            incr fired;
            f e.deadline e.value
          end
          else
            (* Back into the heap with (deadline, seq) intact: the next
               call pops the remainder in the same order. *)
            Heap.push t.heap e
        else drop_corpse t)
      batch;
    Fire_outcome.pack ~scanned ~fired:!fired
end

module Hashed : S = struct
  let name = "hashed-wheel"

  type 'a t = 'a Timing_wheel.t

  type handle = Timing_wheel.handle

  let create ~tick () = Timing_wheel.create ~tick ()
  let schedule t ~at v = Timing_wheel.schedule t ~at v
  let cancel = Timing_wheel.cancel
  let pending = Timing_wheel.pending
  let resident = Timing_wheel.resident
  let next_deadline = Timing_wheel.next_deadline
  let words = Timing_wheel.words
  let fire_due t ~now ~limit f = Timing_wheel.fire_due t ~now ~limit f
end

module Hier : S = struct
  let name = "hierarchical-wheel"

  let levels = 4
  let slots = 64  (* per level; level i tick = tick * 64^i *)

  type 'a entry = { deadline : Time_ns.t; seq : int; value : 'a; h : chandle }

  type 'a t = {
    tick : Time_ns.span;
    wheels : 'a entry list array array;  (* [level].[slot] *)
    mutable overflow : 'a entry list;  (* beyond 64^4 ticks *)
    mutable last_tick : int64;
    mutable count : int;
    mutable cancelled : int;  (* corpses still resident in the wheels *)
    mutable next_seq : int;
    mutable cached_min : Time_ns.t;
    mutable min_valid : bool;
  }

  type handle = chandle

  let create ~tick () =
    if Time_ns.(tick <= 0L) then invalid_arg "Timer_backend.Hier.create: tick must be positive";
    {
      tick;
      wheels = Array.init levels (fun _ -> Array.make slots []);
      overflow = [];
      last_tick = 0L;
      count = 0;
      cancelled = 0;
      next_seq = 0;
      cached_min = Time_ns.zero;
      min_valid = true;
    }

  let tick_of t at = Int64.div at t.tick

  let span_of_level lvl =
    (* 64^(lvl+1) ticks, as int64 *)
    let rec pow acc n = if n = 0 then acc else pow (Int64.mul acc 64L) (n - 1) in
    pow 1L (lvl + 1)

  let drop_corpse t = if t.cancelled > 0 then t.cancelled <- t.cancelled - 1

  let place t e =
    let dt = Int64.max (tick_of t e.deadline) t.last_tick in
    let delta = Int64.sub dt t.last_tick in
    let rec find lvl =
      if lvl >= levels then None
      else if Int64.compare delta (span_of_level lvl) < 0 then Some lvl
      else find (lvl + 1)
    in
    match find 0 with
    | None -> t.overflow <- e :: t.overflow
    | Some lvl ->
      let level_tick = Int64.div (span_of_level lvl) 64L in
      let idx = Int64.to_int (Int64.rem (Int64.div dt level_tick) (Int64.of_int slots)) in
      t.wheels.(lvl).(idx) <- e :: t.wheels.(lvl).(idx)

  (* The same cancel-leak as the list and heap, only spread across the
     level arrays: a corpse in a far slot stays until its slot cascades.
     One pass over every slot (O(levels*slots + resident)) sheds all of
     them. *)
  let compact t =
    for lvl = 0 to levels - 1 do
      for i = 0 to slots - 1 do
        t.wheels.(lvl).(i) <- List.filter (fun e -> e.h.cstate = Pending) t.wheels.(lvl).(i)
      done
    done;
    t.overflow <- List.filter (fun e -> e.h.cstate = Pending) t.overflow;
    t.cancelled <- 0

  let maybe_compact t =
    if t.cancelled >= compact_floor && t.cancelled >= t.count then compact t

  let schedule t ~at value =
    let h = { cstate = Pending; cdeadline = at } in
    let e = { deadline = at; seq = t.next_seq; value; h } in
    t.next_seq <- t.next_seq + 1;
    place t e;
    if t.min_valid then
      if t.count = 0 then t.cached_min <- at else t.cached_min <- Time_ns.min t.cached_min at;
    t.count <- t.count + 1;
    h

  let cancel t h =
    if h.cstate = Pending then begin
      h.cstate <- Cancelled;
      t.count <- t.count - 1;
      t.cancelled <- t.cancelled + 1;
      if t.min_valid && t.count > 0 && Time_ns.(h.cdeadline <= t.cached_min) then
        t.min_valid <- false;
      maybe_compact t
    end

  let pending t = t.count
  let resident t = t.count + t.cancelled

  (* Record (10) + level array (levels + 1) + per-level slot arrays
     (levels * (slots + 1)) + three boxed int64 fields (9) + per
     resident: cons (3) + entry (5) + chandle (3) + int64 box (3). *)
  let words t =
    10 + (levels + 1) + (levels * (slots + 1)) + 9 + (14 * resident t)

  (* Within one level, slots in time order cover disjoint, increasing
     deadline ranges, so the level's minimum lives in its first
     non-empty slot; the global minimum is the least over the levels'
     minima (plus the rarely-populated overflow list). *)
  let sweep_min t =
    let best = ref None in
    let consider e =
      if e.h.cstate = Pending then
        match !best with
        | None -> best := Some e.deadline
        | Some m -> if Time_ns.(e.deadline < m) then best := Some e.deadline
    in
    for lvl = 0 to levels - 1 do
      let level_tick = Int64.div (span_of_level lvl) 64L in
      let cur = Int64.div t.last_tick level_tick in
      let exception Level_done in
      try
        for i = 0 to slots - 1 do
          let idx =
            Int64.to_int (Int64.rem (Int64.add cur (Int64.of_int i)) (Int64.of_int slots))
          in
          let slot = t.wheels.(lvl).(idx) in
          if List.exists (fun e -> e.h.cstate = Pending) slot then begin
            List.iter consider slot;
            raise Level_done
          end
        done
      with Level_done -> ()
    done;
    List.iter consider t.overflow;
    !best

  let next_deadline t =
    if t.count = 0 then None
    else if t.min_valid then Some t.cached_min
    else begin
      match sweep_min t with
      | Some m ->
        t.cached_min <- m;
        t.min_valid <- true;
        Some m
      | None -> None
    end

  (* Advance one level-0 tick: cascade coarser levels first (at a level
     boundary they refill the fine slots of the rotation beginning now,
     including this very tick's slot), then drain the tick's fine slot.
     Entries whose exact deadline lies later within the tick stay. *)
  let advance_one t ~now due =
    let tk = Int64.add t.last_tick 1L in
    t.last_tick <- tk;
    let rec cascade lvl =
      if lvl < levels then begin
        let level_tick = Int64.div (span_of_level lvl) 64L in
        if Int64.rem tk level_tick = 0L then begin
          let idx = Int64.to_int (Int64.rem (Int64.div tk level_tick) (Int64.of_int slots)) in
          let entries = t.wheels.(lvl).(idx) in
          t.wheels.(lvl).(idx) <- [];
          List.iter
            (fun e ->
              if e.h.cstate = Pending then begin
                if Time_ns.(e.deadline <= now) then due := e :: !due else place t e
              end
              else drop_corpse t)
            entries;
          cascade (lvl + 1)
        end
      end
    in
    cascade 1;
    if Int64.rem tk (span_of_level (levels - 1)) = 0L then begin
      let ofl = t.overflow in
      t.overflow <- [];
      List.iter (fun e -> if e.h.cstate = Pending then place t e else drop_corpse t) ofl
    end;
    let idx0 = Int64.to_int (Int64.rem tk 64L) in
    let keep =
      List.filter
        (fun e ->
          match e.h.cstate with
          | Pending ->
            if Time_ns.(e.deadline <= now) then begin
              due := e :: !due;
              false
            end
            else true
          | Cancelled | Fired ->
            drop_corpse t;
            false)
        t.wheels.(0).(idx0)
    in
    t.wheels.(0).(idx0) <- keep

  (* Jump the horizon to [target] without visiting every level-0 tick.
     Valid only when no pending entry is due at or before
     [target * tick]: level-0 entries then sit at slot ticks >= target,
     so only the coarser levels' crossed cascade boundaries (at most 64
     per level) need processing; their entries re-place relative to the
     new horizon. *)
  let fast_forward t target_tick =
    if Int64.compare target_tick t.last_tick > 0 then begin
      let old = t.last_tick in
      t.last_tick <- target_tick;
      for lvl = 1 to levels - 1 do
        let level_tick = Int64.div (span_of_level lvl) 64L in
        let first_idx = Int64.add (Int64.div old level_tick) 1L in
        let last_idx = Int64.div target_tick level_tick in
        let first_idx =
          (* More than a full rotation crossed: every slot cascades once. *)
          if Int64.compare (Int64.sub last_idx first_idx) 64L >= 0 then
            Int64.sub last_idx 63L
          else first_idx
        in
        let i = ref first_idx in
        while Int64.compare !i last_idx <= 0 do
          let idx = Int64.to_int (Int64.rem !i (Int64.of_int slots)) in
          let entries = t.wheels.(lvl).(idx) in
          t.wheels.(lvl).(idx) <- [];
          List.iter (fun e -> if e.h.cstate = Pending then place t e else drop_corpse t) entries;
          i := Int64.add !i 1L
        done
      done;
      if
        Int64.compare
          (Int64.div old (span_of_level (levels - 1)))
          (Int64.div target_tick (span_of_level (levels - 1)))
        <> 0
      then begin
        let ofl = t.overflow in
        t.overflow <- [];
        List.iter (fun e -> if e.h.cstate = Pending then place t e else drop_corpse t) ofl
      end
    end

  let fire_due t ~now ~limit f =
    let now_tick = tick_of t now in
    if t.count = 0 then begin
      t.last_tick <- Int64.max t.last_tick now_tick;
      Fire_outcome.pack ~scanned:0 ~fired:0
    end
    else begin
      let due = ref [] in
      let collect_current_slot () =
        let idx0 = Int64.to_int (Int64.rem t.last_tick 64L) in
        let here, later =
          List.partition
            (fun e -> e.h.cstate = Pending && Time_ns.(e.deadline <= now))
            t.wheels.(0).(idx0)
        in
        t.wheels.(0).(idx0) <- later;
        if here <> [] then begin
          due := here @ !due;
          t.min_valid <- false
        end
      in
      (* Hop from deadline to deadline: fast-forward across the quiet
         stretch before each one, then advance tick-by-tick only through
         its immediate neighbourhood.  Terminates because every
         iteration either removes a pending entry into [due] or exhausts
         the due region. *)
      let rec hop () =
        match next_deadline t with
        | None -> t.last_tick <- Int64.max t.last_tick now_tick
        | Some m when Time_ns.(m > now) ->
          (* Nothing (further) due: skip ahead boundary-wise. *)
          fast_forward t now_tick
        | Some m ->
          let m_tick = Int64.min now_tick (tick_of t m) in
          if Int64.compare (Int64.sub m_tick 1L) t.last_tick > 0 then
            fast_forward t (Int64.sub m_tick 1L);
          collect_current_slot ();
          let stop = Int64.min now_tick (Int64.add m_tick 1L) in
          while Int64.compare t.last_tick stop < 0 do
            advance_one t ~now due
          done;
          collect_current_slot ();
          t.min_valid <- false;
          hop ()
      in
      hop ();
      collect_current_slot ();
      let entries = List.map (fun e -> (e.deadline, e.seq, e.h, e)) !due in
      let outcome =
        fire_sorted ~limit
          ~on_skip:(fun () -> drop_corpse t)
          ~on_requeue:(fun e -> place t e)  (* [place] clamps to the advanced horizon *)
          entries
          (fun e -> e.value)
          f
      in
      let n = Fire_outcome.fired outcome in
      t.count <- t.count - n;
      if n > 0 then t.min_valid <- false;
      outcome
    end
end

module With_metrics (B : S) : S = struct
  type 'a t = 'a B.t

  type handle = B.handle

  let name = B.name

  let m_sched = Metrics.dcounter Metrics.default ("backend." ^ name ^ ".scheduled")
  let m_cancel = Metrics.dcounter Metrics.default ("backend." ^ name ^ ".cancelled")
  let m_fired = Metrics.dcounter Metrics.default ("backend." ^ name ^ ".fired")

  let create = B.create

  let schedule t ~at v =
    Metrics.dincr m_sched;
    B.schedule t ~at v

  let cancel t h =
    Metrics.dincr m_cancel;
    B.cancel t h

  let pending = B.pending
  let resident = B.resident
  let next_deadline = B.next_deadline
  let words = B.words

  let fire_due t ~now ~limit f =
    let outcome = B.fire_due t ~now ~limit f in
    Metrics.dincr ~by:(Fire_outcome.fired outcome) m_fired;
    outcome
end

let all : (module S) list =
  [ (module Sorted_list); (module Binary_heap); (module Hashed); (module Hier) ]
