type state = Pending | Cancelled | Fired

type handle = { mutable hstate : state; hdeadline : Time_ns.t }

type 'a entry = { deadline : Time_ns.t; seq : int; value : 'a; h : handle }

type 'a t = {
  slots_n : int;
  tick_span : Time_ns.span;
  buckets : 'a entry list array;
  mutable count : int;
  mutable cancelled : int;  (* cancelled entries not yet physically removed *)
  mutable next_seq : int;
  mutable last_tick : int64;  (* tick index up to (and incl.) which slots were swept *)
  mutable cached_min : Time_ns.t;  (* meaningful only when [min_valid] *)
  mutable min_valid : bool;
}

let create ?(slots = 256) ~tick () =
  if Time_ns.(tick <= 0L) then invalid_arg "Timing_wheel.create: tick must be positive";
  if slots <= 0 then invalid_arg "Timing_wheel.create: slots must be positive";
  {
    slots_n = slots;
    tick_span = tick;
    buckets = Array.make slots [];
    count = 0;
    cancelled = 0;
    next_seq = 0;
    last_tick = 0L;
    cached_min = Time_ns.zero;
    min_valid = true;  (* vacuously: the wheel is empty *)
  }

let slots t = t.slots_n
let tick t = t.tick_span
let pending t = t.count
let resident t = t.count + t.cancelled
let handle_deadline h = h.hdeadline
let handle_pending h = h.hstate = Pending

(* ALLOC003: deadlines are int64 nanoseconds at the wheel API, so tick
   math boxes its result — a handful of boxes per fire_due/schedule
   call, not per resident timer. *)
let tick_of t at = (Int64.div at t.tick_span [@lint.allow "ALLOC003"])

let slot_of t tk =
  Int64.to_int ((Int64.rem tk (Int64.of_int t.slots_n) [@lint.allow "ALLOC003"]))
  [@@lint.allow "ALLOC003"]

(* Cancelled entries are normally reclaimed lazily when their slot is
   swept, but a schedule/cancel churn loop targeting slots far ahead of
   the sweep horizon would otherwise grow bucket lists without bound
   (the cancel-leak).  Once the corpses outnumber both the live entries
   and the slot count, one O(resident) pass removes them all; the
   thresholds make that pass amortized O(1) per cancellation while
   keeping [resident t <= 2 * max (pending t) (slots t)]. *)
let e_compact = Profile.intern [ "wheel"; "compact_pass" ]
let e_sweep = Profile.intern [ "wheel"; "sweep_min_scan" ]

(* ALLOC001: one filter closure per O(resident) compaction pass —
   amortized O(1) per cancellation by the thresholds above. *)
let compact t =
  Profile.event e_compact;
  for i = 0 to t.slots_n - 1 do
    t.buckets.(i) <- List.filter (fun e -> e.h.hstate = Pending) t.buckets.(i)
  done;
  t.cancelled <- 0
[@@lint.allow "ALLOC001"]

let maybe_compact t = if t.cancelled >= t.slots_n && t.cancelled > t.count then compact t

let schedule t ~at value =
  maybe_compact t;
  (* Deadlines before the sweep horizon land in the current slot so they
     are found by the next sweep; the exact deadline is preserved. *)
  let tk = Int64.max (tick_of t at) t.last_tick in
  let idx = slot_of t tk in
  let h = { hstate = Pending; hdeadline = at } in
  let entry = { deadline = at; seq = t.next_seq; value; h } in
  t.next_seq <- t.next_seq + 1;
  t.buckets.(idx) <- entry :: t.buckets.(idx);
  if t.min_valid then
    if t.count = 0 then t.cached_min <- at else t.cached_min <- Time_ns.min t.cached_min at;
  t.count <- t.count + 1;
  h

let cancel t h =
  if h.hstate = Pending then begin
    h.hstate <- Cancelled;
    t.count <- t.count - 1;
    t.cancelled <- t.cancelled + 1;
    (* Only a cancellation of the (possibly) earliest entry can change
       the minimum. *)
    if t.min_valid && t.count > 0 && Time_ns.(h.hdeadline <= t.cached_min) then
      t.min_valid <- false
  end

(* Earliest pending deadline: scan slots in time order starting at the
   sweep horizon.  An entry due within the slot currently being visited
   dominates everything in later slots, so the scan usually exits after
   a handful of slots; a full pass (visiting every bucket once) is the
   worst case and yields the exact minimum. *)
(* ALLOC001/2/3: the cache-miss repair path — runs only when a cancel
   invalidated the cached minimum; its option cells, consider closure
   and tick boxes are bounded by one slot scan, and the common
   next_deadline call answers from the cache without reaching here. *)
let sweep_min t =
  Profile.event e_sweep;
  let best = ref None in
  let consider e =
    if e.h.hstate = Pending then
      match !best with
      | None -> best := Some e.deadline
      | Some m -> if Time_ns.(e.deadline < m) then best := Some e.deadline
  in
  let exception Found in
  (try
     for i = 0 to t.slots_n - 1 do
       let tk = Int64.add t.last_tick (Int64.of_int i) in
       List.iter consider t.buckets.(slot_of t tk);
       let slot_end = Int64.mul (Int64.add tk 1L) t.tick_span in
       match !best with
       | Some m when Time_ns.(m < slot_end) -> raise Found
       | Some _ | None -> ()
     done
   with Found -> ());
  !best
[@@lint.allow "ALLOC001"] [@@lint.allow "ALLOC002"] [@@lint.allow "ALLOC003"]

(* ALLOC002: returning [Some deadline] is the API contract; on the
   cached fast path it is the sole allocation per trigger-state check. *)
let[@hot] next_deadline t =
  if t.count = 0 then None
  else if t.min_valid then Some t.cached_min
  else begin
    match sweep_min t with
    | Some m ->
      t.cached_min <- m;
      t.min_valid <- true;
      Some m
    | None -> None  (* unreachable: count > 0 implies a pending entry *)
  end
[@@lint.allow "ALLOC002"]

(* ALLOC001/2/3: snapshot-batch contract — due entries leave their
   buckets into a list before any callback runs, so the cons cells,
   filter/sort/dispatch closures and tick boxes are proportional to the
   swept slots and fired batch; the nothing-due case exits after the
   O(1) next_deadline check. *)
let[@hot] fire_due t ~now ~limit f =
  maybe_compact t;
  let now_tick = tick_of t now in
  match next_deadline t with
  | None ->
    t.last_tick <- Int64.max t.last_tick now_tick;
    Fire_outcome.pack ~scanned:0 ~fired:0
  | Some m when Time_ns.(m > now) ->
    (* Nothing due: intermediate slots can hold no due entries, so the
       sweep horizon may jump ahead in O(1). *)
    t.last_tick <- Int64.max t.last_tick now_tick;
    Fire_outcome.pack ~scanned:0 ~fired:0
  | Some _ ->
    let due = ref [] in
    let first = t.last_tick in
    let span64 = Int64.sub now_tick first in
    let sweep_count =
      if Int64.compare span64 (Int64.of_int (t.slots_n - 1)) >= 0 then t.slots_n
      else Int64.to_int span64 + 1
    in
    for i = 0 to sweep_count - 1 do
      let idx = slot_of t (Int64.add first (Int64.of_int i)) in
      let keep =
        List.filter
          (fun e ->
            match e.h.hstate with
            | Cancelled ->
              t.cancelled <- t.cancelled - 1;
              false
            | Fired -> false
            | Pending ->
              if Time_ns.(e.deadline <= now) then begin
                due := e :: !due;
                false
              end
              else true)
          t.buckets.(idx)
      in
      t.buckets.(idx) <- keep
    done;
    t.last_tick <- Int64.max t.last_tick now_tick;
    let due = List.sort (fun a b ->
      let c = Time_ns.compare a.deadline b.deadline in
      if c <> 0 then c else Int.compare a.seq b.seq) !due
    in
    t.min_valid <- false;
    let scanned = List.length due in
    let fired = ref 0 in
    List.iter
      (fun e ->
        (* Re-check before dispatch: an earlier callback in this batch
           may have cancelled this entry after it left its bucket. *)
        if e.h.hstate = Pending then
          if !fired < limit then begin
            e.h.hstate <- Fired;
            t.count <- t.count - 1;
            incr fired;
            f e.deadline e.value
          end
          else begin
            (* Budget exhausted: the entry goes back into the wheel with
               its deadline and sequence number intact, so the next check
               dispatches the remainder in the same order.  [last_tick]
               already advanced past its slot, hence the clamp. *)
            let idx = slot_of t (Int64.max (tick_of t e.deadline) t.last_tick) in
            t.buckets.(idx) <- e :: t.buckets.(idx)
          end
        else if t.cancelled > 0 then t.cancelled <- t.cancelled - 1)
      due;
    Fire_outcome.pack ~scanned ~fired:!fired
[@@lint.allow "ALLOC001"] [@@lint.allow "ALLOC002"] [@@lint.allow "ALLOC003"]

(* Analytic heap-footprint estimate, 64-bit words.  Per resident entry:
   cons cell (3) + entry record (5) + handle (3) + one shared boxed
   int64 deadline (3) = 14 words; the wheel itself is its record (10),
   the bucket array (slots+1) and three boxed int64 fields (9). *)
let words t = 19 + (t.slots_n + 1) + (14 * (t.count + t.cancelled))

let iter_pending t f =
  Array.iter
    (fun bucket -> List.iter (fun e -> if e.h.hstate = Pending then f e.deadline e.value) bucket)
    t.buckets
