(** Hashed timing wheel (Varghese & Lauck, SOSP'87).

    The soft-timer facility keeps its pending events in "a modified form
    of timing wheels" (paper, footnote 2): scheduling and cancellation
    must be O(1), and the per-trigger-state check must find the earliest
    pending deadline in O(1) in the common case.

    Deadlines are bucketed into [slots] circular slots of [tick]
    duration each; an entry due at absolute time [d] lives in slot
    [(d / tick) mod slots] and carries its exact deadline, so entries
    more than one rotation away are simply skipped when their slot is
    swept.  The earliest-deadline query is served from a monotone cache
    that is invalidated only when the minimum could have changed.

    The wheel is agnostic to what an event is: it stores values of an
    arbitrary payload type and hands them back on expiry. *)

type 'a t

type handle
(** Identifies a scheduled entry for cancellation. *)

val create : ?slots:int -> tick:Time_ns.span -> unit -> 'a t
(** [create ~tick ()] builds an empty wheel whose slots each cover
    [tick] of time.  [slots] defaults to 256.
    @raise Invalid_argument if [tick <= 0] or [slots <= 0]. *)

val slots : 'a t -> int
val tick : 'a t -> Time_ns.span

val pending : 'a t -> int
(** Number of scheduled, uncancelled, unfired entries. *)

val resident : 'a t -> int
(** Entries physically present in the wheel's buckets: pending entries
    plus cancelled entries awaiting lazy reclamation.  Bounded by
    [2 * max (pending t) (slots t)] regardless of cancel churn (once
    cancelled corpses dominate, a compaction pass reclaims them). *)

val handle_deadline : handle -> Time_ns.t
(** The absolute deadline the entry was scheduled for (valid in any
    state). *)

val handle_pending : handle -> bool
(** Whether the entry is still scheduled (not cancelled, not fired). *)

val schedule : 'a t -> at:Time_ns.t -> 'a -> handle
(** [schedule t ~at v] registers [v] to expire at absolute time [at].
    O(1). *)

val cancel : 'a t -> handle -> unit
(** Remove an entry.  Cancelling twice, or after expiry, is a no-op.
    O(1) (lazy removal from the slot list). *)

val next_deadline : 'a t -> Time_ns.t option
(** Earliest pending deadline, or [None] when the wheel is empty.  This
    is the comparison the soft-timer facility performs at every trigger
    state; it costs a cached read unless the cache was invalidated by an
    expiry, in which case the wheel is swept once. *)

val fire_due :
  'a t -> now:Time_ns.t -> limit:int -> (Time_ns.t -> 'a -> unit) -> Fire_outcome.t
(** [fire_due t ~now ~limit f] removes every entry with deadline
    [<= now] and calls [f deadline value] on each, in deadline order
    (ties broken by scheduling order), invoking at most [limit]
    callbacks; entries beyond the budget are re-inserted with deadline
    and sequence number preserved, so the next call dispatches them in
    the same order.  Returns the packed batch size and callback count
    ({!Fire_outcome}).  Handlers may schedule new entries, including
    ones already due; those fire on the next call.  Each entry's state
    is re-checked immediately before its callback runs, so a handler
    that cancels a later same-batch entry suppresses its dispatch (see
    the [fire_due] contract in [Timer_backend.S]). *)

val iter_pending : 'a t -> (Time_ns.t -> 'a -> unit) -> unit
(** Visit every pending entry in unspecified order (for tests). *)

val words : 'a t -> int
(** Analytic estimate of the wheel's heap footprint in 64-bit words
    (excluding payloads): record + bucket array + 14 words per resident
    entry.  Cross-checked against [Obj.reachable_words] in tests. *)
