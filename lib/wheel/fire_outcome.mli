(** Packed [(scanned, fired)] result of a [fire_due] call.

    Every timer-store and wheel-backend [fire_due] returns one of
    these: [scanned] is the number of due pending entries collected
    into the dispatch batch at call time, [fired] how many callbacks
    actually ran.  [fired < scanned] when the caller's [~limit] (the
    facility check budget) withheld entries — those are re-inserted
    with their deadline and sequence number preserved — or when an
    earlier callback in the batch cancelled a later entry (dispatch
    recheck).  Packed into one immediate int ([scanned lsl 31 lor
    fired]) so hot paths return both without allocating. *)

type t = int

val pack : scanned:int -> fired:int -> t
val scanned : t -> int
val fired : t -> int
