(** Kernel entry points, expressed as CPU quanta that end in trigger
    states.

    Workload models describe what a process does as a {e script}: a
    sequence of steps, each a priority + duration + optional trigger
    kind.  Running a script submits the steps one after another, so
    interrupts and higher-priority work interleave naturally between
    steps — exactly the granularity at which real kernels reach trigger
    states. *)

type step = {
  prio : int;
  work_us : float;
  trigger : Trigger.kind option;
  attr : Profile.attr;  (** cycle-attribution category of the step's body *)
  entry_us : float;
      (** leading microseconds attributed to [entry_attr] instead (kernel
          entry cost); [0.] when the step has no entry split *)
  entry_attr : Profile.attr;
}

val step_attr : step -> Profile.attr option
(** Per-submission attribution for a step: [Some] (a fresh entry/body
    split when [entry_us > 0.]) while profiling is enabled, [None]
    otherwise.  Must be called once per submitted quantum — seqs consume
    their parts statefully. *)

val syscall : Machine.t -> work_us:float -> (Time_ns.t -> unit) -> unit
(** One system call: kernel entry cost + [work_us] of kernel work, ends
    in a [Syscall] trigger state. *)

val trap : Machine.t -> work_us:float -> (Time_ns.t -> unit) -> unit
(** One exception (page fault etc.): entry cost + work, [Trap] trigger. *)

val user : Machine.t -> work_us:float -> (Time_ns.t -> unit) -> unit
(** User-mode computation; no trigger state. *)

val softintr :
  Machine.t -> source:Trigger.kind -> work_us:float -> (Time_ns.t -> unit) -> unit
(** Software-interrupt-level protocol processing (non-preemptible),
    ending in a trigger of the given kind (e.g. [Ip_output] for the IP
    transmission loop, [Tcpip_other] for the TCP timer loop). *)

val context_switch : Machine.t -> (Time_ns.t -> unit) -> unit
(** A process context switch (kernel priority, no trigger state of its
    own). *)

(** {2 Scripts} *)

val step_syscall : ?work_us:float -> Machine.t -> step
(** One syscall step with the machine's entry cost folded in; [work_us]
    is the kernel work beyond entry/exit (default 4). *)

val step_trap : ?work_us:float -> Machine.t -> step

val step_user : Machine.t -> work_us:float -> step
(** User-mode computation, scaled to the profile's clock; no trigger. *)

val step_ip_output : ?work_us:float -> Machine.t -> step
(** Per-packet transmission work in the IP output loop (default 7 us of
    driver + checksum + queueing work, scaled to the profile). *)

val step_tcp_timer : ?work_us:float -> Machine.t -> step
val step_ctx_switch : Machine.t -> step

val run_script : Machine.t -> step list -> (Time_ns.t -> unit) -> unit
(** Execute the steps in order (each step's completion submits the
    next), then call the continuation. *)
