(* Category paths for the kernel's attribution tree, interned once.
   Entry costs are split from bodies with Profile.seq so the profiler
   can show kernel-crossing overhead separately (paper Table 2). *)
let a_syscall_entry = Profile.intern [ "kernel"; "syscall"; "entry" ]
let a_syscall_body = Profile.intern [ "kernel"; "syscall"; "body" ]
let a_trap_entry = Profile.intern [ "kernel"; "trap"; "entry" ]
let a_trap_body = Profile.intern [ "kernel"; "trap"; "body" ]
let a_user = Profile.intern [ "user" ]
let a_ip_output = Profile.intern [ "kernel"; "ip_output" ]
let a_tcp_timer = Profile.intern [ "softintr"; "tcp_timer" ]
let a_ctx_switch = Profile.intern [ "kernel"; "ctx_switch" ]

type step = {
  prio : int;
  work_us : float;
  trigger : Trigger.kind option;
  attr : Profile.attr;  (* category of the step's body *)
  entry_us : float;  (* leading slice attributed to [entry_attr] *)
  entry_attr : Profile.attr;
}

(* A Profile.seq consumes its parts statefully, so it must be built
   fresh for every submitted quantum — steps are reusable values. *)
let step_attr s =
  if Profile.enabled () then
    Some
      (if s.entry_us > 0.0 then
         Profile.seq [ (s.entry_attr, Time_ns.of_us s.entry_us) ] ~tail:s.attr
       else s.attr)
  else None

let attr_of ~entry_us ~entry_attr ~attr =
  if Profile.enabled () && entry_us > 0.0 then
    Some (Profile.seq [ (entry_attr, Time_ns.of_us entry_us) ] ~tail:attr)
  else if Profile.enabled () then Some attr
  else None

let scaled m us = Costs.scale_us (Machine.profile m) us

let syscall m ~work_us cb =
  let entry = (Machine.profile m).Costs.syscall_entry_us in
  Machine.submit_quantum m
    ?attr:(attr_of ~entry_us:entry ~entry_attr:a_syscall_entry ~attr:a_syscall_body)
    ~prio:Cpu.prio_kernel
    ~work_us:(entry +. scaled m work_us)
    ~trigger:(Some Trigger.Syscall) cb

let trap m ~work_us cb =
  let entry = (Machine.profile m).Costs.trap_entry_us in
  Machine.submit_quantum m
    ?attr:(attr_of ~entry_us:entry ~entry_attr:a_trap_entry ~attr:a_trap_body)
    ~prio:Cpu.prio_kernel
    ~work_us:(entry +. scaled m work_us)
    ~trigger:(Some Trigger.Trap) cb

let user m ~work_us cb =
  Machine.submit_quantum m
    ?attr:(attr_of ~entry_us:0.0 ~entry_attr:a_user ~attr:a_user)
    ~prio:Cpu.prio_user ~work_us:(scaled m work_us) ~trigger:None cb

let softintr m ~source ~work_us cb =
  let attr =
    if Profile.enabled () then
      Some (Profile.intern [ "softintr"; Trigger.name source ])
    else None
  in
  Machine.submit_quantum m ?attr ~prio:Cpu.prio_softintr ~work_us:(scaled m work_us)
    ~trigger:(Some source) cb

let context_switch m cb =
  Machine.submit_quantum m
    ?attr:(attr_of ~entry_us:0.0 ~entry_attr:a_ctx_switch ~attr:a_ctx_switch)
    ~prio:Cpu.prio_kernel
    ~work_us:(Machine.profile m).Costs.context_switch_us ~trigger:None cb

let step_syscall ?(work_us = 4.0) m =
  let entry = (Machine.profile m).Costs.syscall_entry_us in
  {
    prio = Cpu.prio_kernel;
    work_us = entry +. scaled m work_us;
    trigger = Some Trigger.Syscall;
    attr = a_syscall_body;
    entry_us = entry;
    entry_attr = a_syscall_entry;
  }

let step_trap ?(work_us = 12.0) m =
  let entry = (Machine.profile m).Costs.trap_entry_us in
  {
    prio = Cpu.prio_kernel;
    work_us = entry +. scaled m work_us;
    trigger = Some Trigger.Trap;
    attr = a_trap_body;
    entry_us = entry;
    entry_attr = a_trap_entry;
  }

let step_user m ~work_us =
  {
    prio = Cpu.prio_user;
    work_us = scaled m work_us;
    trigger = None;
    attr = a_user;
    entry_us = 0.0;
    entry_attr = a_user;
  }

let step_ip_output ?(work_us = 7.0) m =
  {
    prio = Cpu.prio_kernel;
    work_us = scaled m work_us;
    trigger = Some Trigger.Ip_output;
    attr = a_ip_output;
    entry_us = 0.0;
    entry_attr = a_ip_output;
  }

let step_tcp_timer ?(work_us = 1.5) m =
  {
    prio = Cpu.prio_softintr;
    work_us = scaled m work_us;
    trigger = Some Trigger.Tcpip_other;
    attr = a_tcp_timer;
    entry_us = 0.0;
    entry_attr = a_tcp_timer;
  }

let step_ctx_switch m =
  {
    prio = Cpu.prio_kernel;
    work_us = (Machine.profile m).Costs.context_switch_us;
    trigger = None;
    attr = a_ctx_switch;
    entry_us = 0.0;
    entry_attr = a_ctx_switch;
  }

let run_script m steps k =
  let rec go = function
    | [] -> k (Engine.now (Machine.engine m))
    | s :: rest ->
      Machine.submit_quantum m ?attr:(step_attr s) ~prio:s.prio ~work_us:s.work_us
        ~trigger:s.trigger (fun _now -> go rest)
  in
  go steps
