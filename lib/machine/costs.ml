type profile = {
  name : string;
  cpu_mhz : float;
  intr_save_restore_us : float;
  intr_cache_pollution_us : float;
  syscall_entry_us : float;
  trap_entry_us : float;
  context_switch_us : float;
  softtimer_check_us : float;
  softtimer_fire_us : float;
  interrupt_clock_hz : float;
  idle_loop_us : float;
}

(* Calibration: the paper measures the *total* per-interrupt cost under a
   busy Apache workload (locality sensitivity 1.0) as 4.45 us on the
   P-II, 4.36 us on the P-III and 8.64 us on the Alpha.  The split
   between save/restore and pollution follows the paper's observation
   that interrupt cost barely scales with CPU speed (i.e. it is
   dominated by memory-system effects, the pollution term). *)

let pentium_ii_300 =
  {
    name = "PentiumII-300";
    cpu_mhz = 300.0;
    intr_save_restore_us = 1.95;
    intr_cache_pollution_us = 2.50;
    syscall_entry_us = 1.10;
    trap_entry_us = 1.60;
    context_switch_us = 5.50;
    softtimer_check_us = 0.05;  (* ~15 cycles: clock read + compare *)
    softtimer_fire_us = 0.15;  (* procedure call dispatch *)
    interrupt_clock_hz = 1_000.0;
    idle_loop_us = 2.0;
  }

let pentium_iii_500 =
  {
    name = "PentiumIII-500";
    cpu_mhz = 500.0;
    intr_save_restore_us = 1.17;  (* CPU-bound part scales with clock *)
    intr_cache_pollution_us = 3.19;  (* memory-bound part does not *)
    syscall_entry_us = 0.66;
    trap_entry_us = 0.96;
    context_switch_us = 3.80;
    softtimer_check_us = 0.03;
    softtimer_fire_us = 0.09;
    interrupt_clock_hz = 1_000.0;
    idle_loop_us = 1.2;
  }

let alpha_21164_500 =
  {
    name = "Alpha21164-500";
    cpu_mhz = 500.0;
    intr_save_restore_us = 3.20;  (* PALcode interrupt path *)
    intr_cache_pollution_us = 5.44;
    syscall_entry_us = 1.00;
    trap_entry_us = 1.30;
    context_switch_us = 6.00;
    softtimer_check_us = 0.03;
    softtimer_fire_us = 0.09;
    interrupt_clock_hz = 1_024.0;
    idle_loop_us = 1.2;
  }

let intr_total_us p ~locality = p.intr_save_restore_us +. (p.intr_cache_pollution_us *. locality)
let intr_pollution_us p ~locality = p.intr_cache_pollution_us *. locality
let scale_us p us = us *. (300.0 /. p.cpu_mhz)
let cycles_per_us p = p.cpu_mhz
