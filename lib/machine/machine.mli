(** The simulated computer: CPU + interrupt controller + periodic clock
    + trigger-state plumbing.

    A [Machine.t] assembles the pieces and owns the trigger-state
    dispatch: every kernel entry point ({!Kernel}), interrupt return
    ({!Interrupt}) and idle-loop iteration reports a trigger state here,
    which (a) feeds measurement observers and (b) runs the soft-timer
    facility's check hook, when one is attached (see {!Softtimer}).

    The machine does not know what a soft timer is; the facility layers
    on top through {!set_check_hook} and {!set_idle_deadline_fn}. *)

type t

val create : ?profile:Costs.profile -> ?cpus:int -> Engine.t -> t
(** A machine with [cpus] idle CPUs (default 1) and no periodic clock
    running.  [profile] defaults to {!Costs.pentium_ii_300}.
    @raise Invalid_argument if [cpus < 1]. *)

val engine : t -> Engine.t

val cpu : t -> Cpu.t
(** CPU 0 (the boot CPU — every single-CPU consumer uses this). *)

val cpu_count : t -> int

val nth_cpu : t -> int -> Cpu.t
(** @raise Invalid_argument for an out-of-range index. *)

val any_cpu_idle : t -> bool
(** Whether at least one CPU is idle — the condition under which
    soft-timer network polling reverts to interrupts (§5.9) and the
    facility can fire events exactly on time (§5.3). *)

val total_busy_ns : t -> Time_ns.span
(** Busy time summed over all CPUs. *)

val profile : t -> Costs.profile
val interrupts : t -> Interrupt.t

val set_locality : t -> Cache.locality -> unit
(** Declare the locality sensitivity of the running workload (scales
    interrupt pollution costs from now on). *)

val locality : t -> Cache.locality

(** {2 Trigger states} *)

val fire_trigger : t -> Trigger.kind -> unit
(** Report that a trigger state of the given kind was reached now.
    Normally called by {!Kernel} and {!Interrupt}; exposed for tests and
    for synthetic trigger-process generators. *)

val add_observer : t -> (Trigger.kind -> Time_ns.t -> unit) -> unit
(** Measurement tap: called at every trigger state, before the check
    hook. *)

val set_check_hook : t -> (Trigger.kind -> Time_ns.t -> unit) option -> unit
(** The soft-timer facility's per-trigger-state check; it receives the
    kind of the trigger state that reached it, so dispatches can be
    attributed to their trigger source (paper Table 1).  While a hook is
    attached, every trigger-bearing quantum is lengthened by the
    profile's [softtimer_check_us] so the check's (tiny) cost is
    accounted (and, when profiling, attributed to [softtimer;check]). *)

val check_hook_attached : t -> bool

val trigger_count : t -> Trigger.kind -> int
(** Trigger states observed so far, by kind. *)

val trigger_total : t -> int

(** {2 Quanta and interrupts} *)

val submit_quantum :
  t ->
  ?cpu:int ->
  ?attr:Profile.attr ->
  ?klass:int ->
  prio:int ->
  work_us:float ->
  trigger:Trigger.kind option ->
  (Time_ns.t -> unit) ->
  unit
(** Submit CPU work (to CPU 0 unless [cpu] says otherwise); when it
    completes, fire the given trigger kind (if any) and then run the
    callback.  The soft-timer check surcharge is added automatically
    when a hook is attached and [trigger] is [Some _]; with profiling
    live the surcharge is attributed to [softtimer;check] and the rest
    of the quantum to [attr] (default: the priority's
    {!Cpu.default_attr}).  [klass] is passed through to {!Cpu.submit}
    (the work class on the quantum's [Cpu_run] trace records). *)

val interrupt_line :
  t ->
  name:string ->
  source:Trigger.kind ->
  ?latch_depth:int ->
  ?spl_blockable:bool ->
  ?cpu:int ->
  handler:(Time_ns.t -> unit) ->
  unit ->
  Interrupt.line
(** Register a device interrupt line (see {!Interrupt.line}). *)

val start_spl_sections : t -> ?rate_per_sec:float -> ?duration_us:Dist.t -> seed:int -> unit -> unit
(** Generate the kernel's interrupt-disabled critical sections (see
    {!Interrupt.start_spl_sections}); they defer and occasionally lose
    ticks of spl-blockable timer lines. *)

val raise_irq : t -> Interrupt.line -> ?handler_work_us:float -> unit -> bool
(** Assert a line; [false] when the interrupt was lost. *)

(** {2 Clocks} *)

val start_interrupt_clock : t -> unit
(** Start the periodic system timer at the profile's
    [interrupt_clock_hz].  Each tick is a real interrupt (cost, trigger
    state [Clock_tick]); it is the backup that bounds soft-timer delay. *)

val interrupt_clock_running : t -> bool

val add_periodic_timer :
  t -> hz:float -> ?handler_work_us:float -> (Time_ns.t -> unit) -> Interrupt.line
(** An additional periodic hardware timer (the paper's §5.1 experiment
    adds one with a null handler at 0–100 kHz).  Returns the line so
    callers can read loss statistics.  Ticks raise interrupts
    unconditionally; latch-full ticks are lost, as on real hardware. *)

(** {2 Idle loop} *)

val set_idle_poll : t -> Time_ns.span option -> unit
(** When set, an idle CPU reports an [Idle] trigger state every given
    span — the idle-loop polling visible in the paper's Table 1 (ST-nfs
    shows ~2 us intervals).  [None] (default) disables idle polling:
    the CPU halts when idle, and only interrupts produce triggers.

    On a multi-CPU machine, §5.2's arbitration applies: at most one
    idle CPU polls (the {e checker}); the others halt.  When the
    checker resumes work, another idle CPU (if any) takes over. *)

val checking_cpu : t -> int option
(** The idle CPU currently checking for soft-timer events, if any. *)

val notify_deadline_changed : t -> unit
(** The facility's earliest pending deadline moved earlier (a new event
    was scheduled ahead of everything armed).  Re-arms the checking
    CPU's wake-up; a no-op when no CPU is idle. *)

val set_idle_deadline_fn : t -> (unit -> Time_ns.t option) option -> unit
(** The facility's "earliest pending soft-timer deadline" oracle.  While
    the CPU is idle, the machine arranges an [Idle] trigger state exactly
    at that deadline — semantically, the idle loop's continuous check
    firing the event the instant it is due (paper §3/§5.2: the idle loop
    checks for pending soft timer events; the CPU halts only when none
    are due before the next clock tick). *)
