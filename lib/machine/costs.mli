(** The calibrated machine cost model — single source of truth.

    Every absolute cost in the simulation lives here.  The defaults are
    calibrated against the paper's own measurements (see DESIGN.md §4):

    - the total cost of a hardware timer interrupt under a busy web
      server workload is 4.45 us on the 300 MHz Pentium II profile
      (paper §5.1, Figure 3), 4.36 us on the 500 MHz Pentium III and
      8.64 us on the 500 MHz Alpha 21164;
    - a soft-timer check at a trigger state is a clock read plus one
      comparison (paper §3), and dispatching a due soft event costs a
      procedure call, not a state save/restore.

    The interrupt cost is split into a save/restore component and a
    cache/TLB-pollution component; the pollution part is additionally
    scaled by the running workload's locality sensitivity (see
    {!Cache}), which is what makes a tight event-driven server (Flash)
    lose more per interrupt than a context-switch-heavy one (Apache) —
    the effect measured by the paper's Table 3. *)

type profile = {
  name : string;
  cpu_mhz : float;
      (** CPU clock; also the resolution of the measurement clock
          (cycle counter / TSC). *)
  intr_save_restore_us : float;
      (** Saving and restoring CPU state plus vectoring, per hardware
          interrupt. *)
  intr_cache_pollution_us : float;
      (** Cache and TLB reload cost inflicted on the interrupted
          computation, per interrupt, at locality sensitivity 1.0. *)
  syscall_entry_us : float;  (** Kernel entry/exit for a system call. *)
  trap_entry_us : float;  (** Kernel entry/exit for an exception. *)
  context_switch_us : float;
      (** Process context switch, including its locality shift. *)
  softtimer_check_us : float;
      (** Clock read + comparison performed at every trigger state. *)
  softtimer_fire_us : float;
      (** Dispatch of one due soft-timer handler (a procedure call). *)
  interrupt_clock_hz : float;
      (** Frequency of the periodic system timer that backs up soft
          timers (FreeBSD: 1 kHz ["hz" was 100 in 2.2.6 but the paper's
          statement of X = 1000 and 1 ms backup granularity corresponds
          to a 1 kHz clock; we follow the paper]). *)
  idle_loop_us : float;
      (** Duration of one idle-loop iteration, i.e. the spacing of
          idle-loop trigger states (~2 us at 300 MHz; Table 1, ST-nfs). *)
}

val pentium_ii_300 : profile
(** The paper's main testbed: 300 MHz Pentium II, FreeBSD 2.2.6. *)

val pentium_iii_500 : profile
(** 500 MHz Pentium III (Xeon), FreeBSD 3.3 (paper §5.1, §5.3). *)

val alpha_21164_500 : profile
(** AlphaStation 500au, 500 MHz 21164, FreeBSD 4.0-beta (paper §5.1). *)

val intr_total_us : profile -> locality:float -> float
(** Total cost of one hardware interrupt with a null handler when the
    interrupted workload has the given locality sensitivity:
    [save_restore + pollution * locality]. *)

val intr_pollution_us : profile -> locality:float -> float
(** The cache/TLB pollution share of one interrupt's cost,
    [pollution * locality] — the memory-system term the profiler's
    per-interrupt split reports against. *)

val scale_us : profile -> float -> float
(** [scale_us p us] rescales a duration calibrated on the 300 MHz
    Pentium II to profile [p]'s clock: CPU-bound work shrinks linearly
    with clock speed (paper §5.3 observes exactly this for trigger
    intervals). *)

val cycles_per_us : profile -> float
