let prio_intr = 0
let prio_softintr = 1
let prio_kernel = 2
let prio_user = 3
let prio_background = 4
let prio_count = 5

(* Work classes for delay attribution: priorities double as classes, plus
   one extra for soft-timer handler execution, which runs at softintr
   priority but must be distinguishable in the trace ("handler of another
   timer" is its own cause in the why-late breakdown). *)
let klass_timer = 5
let klass_count = 6

let klass_name = function
  | 0 -> "intr"
  | 1 -> "softintr"
  | 2 -> "kernel"
  | 3 -> "user"
  | 4 -> "background"
  | 5 -> "timer"
  | _ -> "other"

(* Priorities 0 and 1 model interrupt handlers and spl-protected
   software-interrupt processing: once running they are never preempted. *)
let preemptible prio = prio >= prio_kernel

(* Fallback attributions for quanta whose submitter did not tag them:
   unattributed work still lands in the tree, keeping the conservation
   invariant (attributed total = busy_ns) independent of coverage.
   Individual immutable bindings, not an array: the RACE rules treat a
   toplevel array literal as cross-domain shared state. *)
let ua_intr = Profile.intern [ "unattributed"; "intr" ]
let ua_softintr = Profile.intern [ "unattributed"; "softintr" ]
let ua_kernel = Profile.intern [ "unattributed"; "kernel" ]
let ua_user = Profile.intern [ "unattributed"; "user" ]
let ua_background = Profile.intern [ "unattributed"; "background" ]

let default_attr prio =
  match prio with
  | 0 -> ua_intr
  | 1 -> ua_softintr
  | 2 -> ua_kernel
  | 3 -> ua_user
  | _ -> ua_background

type task = {
  prio : int;
  klass : int;  (* work class for Trace.Cpu_run; defaults to [prio] *)
  attr : Profile.attr;
  mutable remaining : Time_ns.span;
  cb : Time_ns.t -> unit;
}

type running = {
  task : task;
  started : Time_ns.t;
  handle : Engine.handle;
}

type t = {
  engine : Engine.t;
  cpu_id : int;
  fronts : task list ref array;  (* resumed quanta, run before the queue *)
  queues : task Queue.t array;
  mutable current : running option;
  mutable busy : Time_ns.span;
  busy_by_prio : Time_ns.span array;
  mutable idle_hook : Time_ns.t -> unit;
  mutable resume_hook : Time_ns.t -> unit;
  mutable depth : int;
}

let create ?(id = 0) engine =
  {
    engine;
    cpu_id = id;
    fronts = Array.init prio_count (fun _ -> ref []);
    queues = Array.init prio_count (fun _ -> Queue.create ());
    current = None;
    busy = 0L;
    busy_by_prio = Array.make prio_count 0L;
    idle_hook = (fun _ -> ());
    resume_hook = (fun _ -> ());
    depth = 0;
  }

let id t = t.cpu_id

let is_idle t = t.current = None && t.depth = 0
let busy_ns t = t.busy
let busy_ns_at t prio = t.busy_by_prio.(prio)
let set_idle_hook t f = t.idle_hook <- f
let set_resume_hook t f = t.resume_hook <- f
let queue_depth t = t.depth

let take_next t =
  let rec scan prio =
    if prio >= prio_count then None
    else
      match !(t.fronts.(prio)) with
      | task :: rest ->
        t.fronts.(prio) := rest;
        Some task
      | [] ->
        if Queue.is_empty t.queues.(prio) then scan (prio + 1)
        else Some (Queue.pop t.queues.(prio))
  in
  scan 0

(* The single point through which all busy time flows — attribution
   here is what makes the Profile conservation invariant structural, and
   emitting [Cpu_run] here is what makes the why-late busy coverage
   complete: every charged interval [now - span, now] reaches the trace
   exactly once, tagged with its work class. *)
let charge t task span =
  t.busy <- Time_ns.(t.busy + span);
  t.busy_by_prio.(task.prio) <- Time_ns.(t.busy_by_prio.(task.prio) + span);
  Profile.charge task.attr ~cpu:t.cpu_id span;
  if Time_ns.(span > 0L) then
    Trace.cpu_run ~at:(Engine.now t.engine) ~cpu:t.cpu_id ~klass:task.klass ~dur:span

let rec dispatch t =
  match take_next t with
  | None ->
    t.current <- None;
    let now = Engine.now t.engine in
    Trace.cpu_idle ~at:now ~cpu:t.cpu_id;
    t.idle_hook now
  | Some task ->
    t.depth <- t.depth - 1;
    let started = Engine.now t.engine in
    let handle =
      Engine.schedule_after t.engine task.remaining (fun () -> complete t task)
    in
    t.current <- Some { task; started; handle }

and complete t task =
  charge t task task.remaining;
  task.remaining <- 0L;
  t.current <- None;
  task.cb (Engine.now t.engine);
  (* The callback may have submitted work and triggered a dispatch; only
     dispatch here if the CPU is still unoccupied. *)
  if t.current = None then dispatch t

let preempt t r =
  Engine.cancel t.engine r.handle;
  let now = Engine.now t.engine in
  let elapsed = Time_ns.(now - r.started) in
  charge t r.task elapsed;
  r.task.remaining <- Time_ns.(r.task.remaining - elapsed);
  t.fronts.(r.task.prio) := r.task :: !(t.fronts.(r.task.prio));
  t.depth <- t.depth + 1;
  t.current <- None

let submit t ?attr ?klass ~prio ~work cb =
  if prio < 0 || prio >= prio_count then invalid_arg "Cpu.submit: bad priority";
  if Time_ns.(work < 0L) then invalid_arg "Cpu.submit: negative work";
  let was_idle = is_idle t in
  let attr = match attr with Some a -> a | None -> default_attr prio in
  let klass = match klass with Some k -> k | None -> prio in
  let task = { prio; klass; attr; remaining = work; cb } in
  Queue.add task t.queues.(prio);
  t.depth <- t.depth + 1;
  if was_idle then begin
    let now = Engine.now t.engine in
    Trace.cpu_busy ~at:now ~cpu:t.cpu_id;
    t.resume_hook now
  end;
  match t.current with
  | None -> dispatch t
  | Some r when preemptible r.task.prio && prio < r.task.prio -> begin
    preempt t r;
    dispatch t
  end
  | Some _ -> ()
