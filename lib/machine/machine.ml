let kind_index : Trigger.kind -> int = function
  | Trigger.Syscall -> 0
  | Trigger.Trap -> 1
  | Trigger.Ip_intr -> 2
  | Trigger.Ip_output -> 3
  | Trigger.Tcpip_other -> 4
  | Trigger.Dev_intr -> 5
  | Trigger.Clock_tick -> 6
  | Trigger.Idle -> 7

let m_triggers = Metrics.dcounter Metrics.default "machine.triggers"

type t = {
  engine : Engine.t;
  profile : Costs.profile;
  cpus : Cpu.t array;
  idle : bool array;  (* per-CPU idle state *)
  mutable checker : int option;  (* the one idle CPU checking (§5.2) *)
  mutable intc : Interrupt.t option;  (* set right after creation *)
  mutable locality : Cache.locality;
  mutable check_hook : (Trigger.kind -> Time_ns.t -> unit) option;
  (* Observers in registration order in [observers.(0 .. n_observers-1)];
     a growable array keeps registration O(1) amortised and notification
     an indexed loop (this runs at every trigger state). *)
  mutable observers : (Trigger.kind -> Time_ns.t -> unit) array;
  mutable n_observers : int;
  counts : int array;
  mutable clock_running : bool;
  mutable idle_poll : Time_ns.span option;
  mutable idle_deadline_fn : (unit -> Time_ns.t option) option;
  mutable idle_epoch : int;  (* bumped on checker changes; invalidates stale pokes *)
}

let engine t = t.engine
let cpu t = t.cpus.(0)
let cpu_count t = Array.length t.cpus

let nth_cpu t i =
  if i < 0 || i >= Array.length t.cpus then invalid_arg "Machine.nth_cpu: bad index";
  t.cpus.(i)

let any_cpu_idle t = Array.exists Fun.id t.idle

let total_busy_ns t =
  Array.fold_left (fun acc c -> Time_ns.(acc + Cpu.busy_ns c)) 0L t.cpus

let checking_cpu t = t.checker
let profile t = t.profile

let interrupts t =
  match t.intc with Some i -> i | None -> assert false

let set_locality t l =
  t.locality <- l;
  Interrupt.set_locality (interrupts t) l

let locality t = t.locality

let fire_trigger t kind =
  let now = Engine.now t.engine in
  t.counts.(kind_index kind) <- t.counts.(kind_index kind) + 1;
  Metrics.dincr m_triggers;
  Trace.trigger ~at:now (Trigger.name kind);
  for i = 0 to t.n_observers - 1 do
    t.observers.(i) kind now
  done;
  match t.check_hook with Some f -> f kind now | None -> ()

let add_observer t f =
  let cap = Array.length t.observers in
  if t.n_observers = cap then begin
    let grown = Array.make (Stdlib.max 4 (2 * cap)) f in
    Array.blit t.observers 0 grown 0 t.n_observers;
    t.observers <- grown
  end;
  t.observers.(t.n_observers) <- f;
  t.n_observers <- t.n_observers + 1
let set_check_hook t hook = t.check_hook <- hook
let check_hook_attached t = t.check_hook <> None
let trigger_count t kind = t.counts.(kind_index kind)
let trigger_total t = Array.fold_left ( + ) 0 t.counts

let check_attr = Profile.intern [ "softtimer"; "check" ]

let submit_quantum t ?(cpu = 0) ?attr ?klass ~prio ~work_us ~trigger cb =
  if cpu < 0 || cpu >= Array.length t.cpus then
    invalid_arg "Machine.submit_quantum: bad cpu";
  let checked =
    match (trigger, t.check_hook) with Some _, Some _ -> true | _ -> false
  in
  let work_us =
    if checked then work_us +. t.profile.Costs.softtimer_check_us else work_us
  in
  let attr =
    (* Split the trigger-state check surcharge out of the quantum so it
       shows up under softtimer;check rather than inflating the work's
       own category.  Only allocate the seq when profiling is live. *)
    if checked && Profile.enabled () then
      let base = match attr with Some a -> a | None -> Cpu.default_attr prio in
      Some
        (Profile.seq
           [ (check_attr, Time_ns.of_us t.profile.Costs.softtimer_check_us) ]
           ~tail:base)
    else attr
  in
  let work = Time_ns.of_us (Float.max 0.0 work_us) in
  Cpu.submit t.cpus.(cpu) ?attr ?klass ~prio ~work (fun now ->
      (match trigger with Some kind -> fire_trigger t kind | None -> ());
      cb now)

let interrupt_line t ~name ~source ?latch_depth ?spl_blockable ?cpu ~handler () =
  Interrupt.line (interrupts t) ~name ~source ?latch_depth ?spl_blockable ?cpu ~handler ()

let start_spl_sections t ?rate_per_sec ?duration_us ~seed () =
  Interrupt.start_spl_sections (interrupts t) ~rng:(Prng.create ~seed) ?rate_per_sec
    ?duration_us ()

let raise_irq t ln ?(handler_work_us = 0.0) () =
  let handler_work = Time_ns.of_us (Float.max 0.0 handler_work_us) in
  Interrupt.raise_irq (interrupts t) ln ~handler_work ()

(* Idle-loop machinery.  At most one idle CPU -- the checker (§5.2) --
   polls for soft-timer events and runs the idle measurement poll; the
   other idle CPUs halt.  Both the poll and the facility's deadline poke
   are one-shot events re-armed while that CPU stays the checker; the
   epoch counter discards events armed before the last checker change. *)

let checker_still t epoch i =
  t.idle_epoch = epoch && t.checker = Some i && Cpu.is_idle t.cpus.(i)

let rec arm_idle_poll t epoch i =
  match t.idle_poll with
  | None -> ()
  | Some dt ->
    ignore
      (Engine.schedule_after t.engine dt (fun () ->
           if checker_still t epoch i then begin
             fire_trigger t Trigger.Idle;
             if checker_still t epoch i then arm_idle_poll t epoch i
           end)
        : Engine.handle)

let rec arm_idle_deadline t epoch i =
  match t.idle_deadline_fn with
  | None -> ()
  | Some next_deadline -> begin
    match next_deadline () with
    | None -> ()
    | Some d ->
      ignore
        (Engine.schedule_at t.engine d (fun () ->
             if checker_still t epoch i then begin
               (* The check hook fires the due event; if the handler
                  spawned no CPU work we are still idle and must re-arm
                  for the next deadline ourselves. *)
               fire_trigger t Trigger.Idle;
               if checker_still t epoch i then arm_idle_deadline t epoch i
             end)
          : Engine.handle)
  end

(* Elect an idle CPU as the checker.  Bumping the epoch kills any chain
   armed for a previous election, so re-entry can never double-arm. *)
let assign_checker t =
  t.idle_epoch <- t.idle_epoch + 1;
  let epoch = t.idle_epoch in
  let rec first_idle i =
    if i >= Array.length t.idle then None
    else if t.idle.(i) then Some i
    else first_idle (i + 1)
  in
  t.checker <- first_idle 0;
  match t.checker with
  | None -> ()
  | Some i ->
    arm_idle_poll t epoch i;
    arm_idle_deadline t epoch i

let on_idle t i _now =
  t.idle.(i) <- true;
  (* A newly idle CPU only matters if nobody is checking yet. *)
  if t.checker = None then assign_checker t

let on_resume t i _now =
  t.idle.(i) <- false;
  if t.checker = Some i then assign_checker t

let create ?(profile = Costs.pentium_ii_300) ?(cpus = 1) engine =
  if cpus < 1 then invalid_arg "Machine.create: need at least one cpu";
  let cpu_arr = Array.init cpus (fun i -> Cpu.create ~id:i engine) in
  Trace.sim_start ~at:(Engine.now engine);
  let t =
    {
      engine;
      profile;
      cpus = cpu_arr;
      idle = Array.make cpus true;
      checker = None;
      intc = None;
      locality = Cache.neutral;
      check_hook = None;
      observers = [||];
      n_observers = 0;
      counts = Array.make 8 0;
      clock_running = false;
      idle_poll = None;
      idle_deadline_fn = None;
      idle_epoch = 0;
    }
  in
  let intc =
    Interrupt.create ~engine ~cpus:cpu_arr ~profile
      ~on_trigger:(fun kind now ->
        ignore now;
        fire_trigger t kind)
      ()
  in
  t.intc <- Some intc;
  Array.iteri
    (fun i cpu ->
      Cpu.set_idle_hook cpu (on_idle t i);
      Cpu.set_resume_hook cpu (on_resume t i))
    cpu_arr;
  t

let add_periodic_timer t ~hz ?(handler_work_us = 0.0) handler =
  if hz <= 0.0 then invalid_arg "Machine.add_periodic_timer: hz must be positive";
  let period = Time_ns.of_sec (1.0 /. hz) in
  let handler_work = Time_ns.of_us handler_work_us in
  let ln =
    (* A fast-interrupt handler: serviced even inside spl sections, like
       the paper's null-handler measurement timer (Â§5.1). *)
    interrupt_line t ~name:(Printf.sprintf "timer-%.0fHz" hz) ~source:Trigger.Clock_tick
      ~latch_depth:1 ~handler ()
  in
  let rec tick () =
    ignore (Interrupt.raise_irq (interrupts t) ln ~handler_work () : bool);
    ignore (Engine.schedule_after t.engine period tick : Engine.handle)
  in
  ignore (Engine.schedule_after t.engine period tick : Engine.handle);
  ln

let start_interrupt_clock t =
  if not t.clock_running then begin
    t.clock_running <- true;
    (* hardclock: bump ticks, run due callouts — a small constant cost. *)
    ignore
      (add_periodic_timer t ~hz:t.profile.Costs.interrupt_clock_hz ~handler_work_us:0.6
         (fun _now -> ())
        : Interrupt.line)
  end

let interrupt_clock_running t = t.clock_running

let notify_deadline_changed t = if t.checker <> None then assign_checker t

let set_idle_poll t poll =
  t.idle_poll <- poll;
  if any_cpu_idle t then assign_checker t

let set_idle_deadline_fn t fn =
  t.idle_deadline_fn <- fn;
  if any_cpu_idle t then assign_checker t
