(** Single simulated CPU with prioritised, partially-preemptible work.

    All computation in the simulated machine — interrupt handlers,
    software-interrupt protocol processing, system-call bodies and user
    code — is expressed as {e quanta}: a duration plus a completion
    callback.  The CPU executes the highest-priority quantum available.

    Priorities (smaller = more urgent) mirror the BSD execution levels
    the paper discusses:

    - {!prio_intr} (0): hardware interrupt handlers.  Never preempted —
      interrupts are disabled while one runs.
    - {!prio_softintr} (1): BSD software interrupts (TCP/IP input
      processing).  Not preempted either: this stands in for the
      spl-protected critical sections that delay — and can lose —
      periodic timer interrupts in FreeBSD (paper §5.7).
    - {!prio_kernel} (2): system-call and trap bodies.  Preemptible.
    - {!prio_user} (3): user-mode computation.  Preemptible.

    When a more urgent quantum arrives while a preemptible one runs, the
    running quantum is suspended with its remaining work and resumed
    afterwards; its completion callback fires once, at true completion.
    Arrival during a non-preemptible quantum waits for that quantum to
    finish — this bounded delay is exactly the trigger-state latency and
    interrupt-latency mechanism of the paper. *)

type t

val prio_intr : int
val prio_softintr : int
val prio_kernel : int
val prio_user : int

val prio_background : int
(** Below user: CPU-bound processes whose scheduler priority has decayed
    (the paper's compute-bound background process, §5.3). *)

val prio_count : int

val klass_timer : int
(** Work class for soft-timer handler execution: runs at
    {!prio_softintr} but is tagged separately in {!Trace.Cpu_run} so the
    why-late breakdown can attribute gap time to "handler of another
    timer" (see [Delay_audit]). *)

val klass_count : int
(** Number of work classes: the five priorities (class = priority for
    untagged quanta) plus {!klass_timer}. *)

val klass_name : int -> string
(** ["intr"], ["softintr"], ["kernel"], ["user"], ["background"],
    ["timer"]; ["other"] for anything out of range. *)

val create : ?id:int -> Engine.t -> t
(** [id] (default 0) labels this CPU's busy/idle transitions in traces
    ({!Trace.Cpu_busy}/{!Trace.Cpu_idle}); {!Machine.create} numbers its
    CPUs 0..n-1. *)

val id : t -> int

val submit :
  t ->
  ?attr:Profile.attr ->
  ?klass:int ->
  prio:int ->
  work:Time_ns.span ->
  (Time_ns.t -> unit) ->
  unit
(** [submit t ~prio ~work cb] enqueues a quantum; [cb] runs when its
    cumulative execution reaches [work], receiving the completion time.
    Zero-work quanta complete as soon as they are dispatched.  [attr]
    names the quantum's cycle-attribution category (defaults to
    {!default_attr} for its priority); all of the quantum's execution
    time — including partial charges under preemption — is attributed
    to it.  [klass] (default: the priority itself) is the work class
    stamped on the quantum's {!Trace.Cpu_run} records; pass
    {!klass_timer} for soft-timer handler execution.
    @raise Invalid_argument for out-of-range priority or negative work. *)

val default_attr : int -> Profile.attr
(** Fallback attribution ([unattributed;<prio-name>]) used for quanta
    submitted without [?attr]. *)

val is_idle : t -> bool
(** No quantum running and none queued. *)

val busy_ns : t -> Time_ns.span
(** Cumulative execution time, over all priorities. *)

val busy_ns_at : t -> int -> Time_ns.span
(** Cumulative execution time of quanta submitted at one priority. *)

val set_idle_hook : t -> (Time_ns.t -> unit) -> unit
(** Called at every transition to idle (after the last completion
    callback has run and found nothing to dispatch). *)

val set_resume_hook : t -> (Time_ns.t -> unit) -> unit
(** Called at every transition out of idle. *)

val queue_depth : t -> int
(** Quanta queued but not running (diagnostics). *)
