(* Process-wide interrupt accounting (per-interrupt cost is the quantity
   the paper's overhead tables revolve around). *)
let m_raised = Metrics.dcounter Metrics.default "interrupt.raised"
let m_lost = Metrics.dcounter Metrics.default "interrupt.lost"
let m_delivered = Metrics.dcounter Metrics.default "interrupt.delivered"

type line = {
  name : string;
  source : Trigger.kind;
  latch_depth : int;
  spl_blockable : bool;
  cpu : int;
  handler : Time_ns.t -> unit;
  mutable in_flight : int;  (* delivered-but-unfinished, at most latch_depth *)
  mutable deferred : bool;  (* a tick is waiting for the spl window to end *)
  mutable raised : int;
  mutable lost : int;
  mutable delivered : int;
  (* Interned once per line: the paper's per-interrupt cost decomposition
     (save/restore + cache/TLB pollution + handler body, Tables 2-4). *)
  a_save : Profile.attr;
  a_pollution : Profile.attr;
  a_handler : Profile.attr;
}

type t = {
  engine : Engine.t;
  cpus : Cpu.t array;
  profile : Costs.profile;
  on_trigger : Trigger.kind -> Time_ns.t -> unit;
  mutable locality : Cache.locality;
  mutable spl_until : Time_ns.t;  (* end of the current disabled window *)
  mutable spl_deferred : (line * Time_ns.span) list;  (* with handler work *)
}

let create ~engine ~cpus ~profile ~on_trigger () =
  {
    engine;
    cpus;
    profile;
    on_trigger;
    locality = Cache.neutral;
    spl_until = Time_ns.zero;
    spl_deferred = [];
  }

let set_locality t l = t.locality <- l

let line t ~name ~source ?(latch_depth = 2) ?(spl_blockable = false) ?(cpu = 0) ~handler () =
  ignore t.engine;
  if latch_depth < 1 then invalid_arg "Interrupt.line: latch_depth must be >= 1";
  if cpu < 0 || cpu >= Array.length t.cpus then invalid_arg "Interrupt.line: bad cpu";
  {
    name;
    source;
    latch_depth;
    spl_blockable;
    cpu;
    handler;
    in_flight = 0;
    deferred = false;
    raised = 0;
    lost = 0;
    delivered = 0;
    a_save = Profile.intern [ "interrupt"; name; "save_restore" ];
    a_pollution = Profile.intern [ "interrupt"; name; "pollution" ];
    a_handler = Profile.intern [ "interrupt"; name; "handler" ];
  }

let deliver t ln handler_work =
  ln.in_flight <- ln.in_flight + 1;
  let overhead =
    Time_ns.of_us (Costs.intr_total_us t.profile ~locality:t.locality.Cache.sensitivity)
  in
  let work = Time_ns.(overhead + Time_ns.max handler_work 0L) in
  let attr =
    (* Split the delivery into save/restore, pollution refill and handler
       body.  The pollution share is [overhead - save] so the parts sum
       exactly to the charged overhead regardless of float rounding. *)
    if Profile.enabled () then begin
      let save =
        Time_ns.min (Time_ns.of_us t.profile.Costs.intr_save_restore_us) overhead
      in
      Some
        (Profile.seq
           [ (ln.a_save, save); (ln.a_pollution, Time_ns.(overhead - save)) ]
           ~tail:ln.a_handler)
    end
    else None
  in
  Cpu.submit t.cpus.(ln.cpu) ?attr ~prio:Cpu.prio_intr ~work (fun now ->
      ln.in_flight <- ln.in_flight - 1;
      ln.delivered <- ln.delivered + 1;
      Metrics.dincr m_delivered;
      Trace.irq ~at:now ~line:ln.name ~cpu:ln.cpu ~dur:work;
      ln.handler now;
      t.on_trigger ln.source now)

let lose ln ~at =
  ln.lost <- ln.lost + 1;
  Metrics.dincr m_lost;
  Trace.irq_lost ~at ~line:ln.name

let raise_irq t ln ?(handler_work = 0L) () =
  ln.raised <- ln.raised + 1;
  Metrics.dincr m_raised;
  let now = Engine.now t.engine in
  Trace.irq_raised ~at:now ~line:ln.name;
  if ln.spl_blockable && Time_ns.(now < t.spl_until) then begin
    (* Interrupts disabled: latch one tick; further ticks are gone. *)
    if ln.deferred then begin
      lose ln ~at:now;
      false
    end
    else begin
      ln.deferred <- true;
      t.spl_deferred <- (ln, handler_work) :: t.spl_deferred;
      true
    end
  end
  else if ln.in_flight >= ln.latch_depth then begin
    lose ln ~at:now;
    false
  end
  else begin
    deliver t ln handler_work;
    true
  end

let flush_spl t =
  let pending = List.rev t.spl_deferred in
  t.spl_deferred <- [];
  List.iter
    (fun (ln, work) ->
      ln.deferred <- false;
      if ln.in_flight >= ln.latch_depth then lose ln ~at:(Engine.now t.engine)
      else deliver t ln work)
    pending

let start_spl_sections t ~rng ?(rate_per_sec = 1_300.0)
    ?(duration_us = Dist.Uniform (40.0, 180.0)) () =
  let gap_dist = Dist.Exponential (1e6 /. rate_per_sec) in
  let rec next_window () =
    let gap = Dist.span gap_dist rng in
    ignore
      (Engine.schedule_after t.engine gap (fun () ->
           let d = Dist.span duration_us rng in
           let now = Engine.now t.engine in
           t.spl_until <- Time_ns.(now + d);
           ignore
             (Engine.schedule_after t.engine d (fun () ->
                  flush_spl t;
                  next_window ())
               : Engine.handle))
        : Engine.handle)
  in
  next_window ()

let raised ln = ln.raised
let lost ln = ln.lost
let delivered ln = ln.delivered
