(** An Eiffel/Carousel-style pacing wheel: the approximate-time store
    for million-flow rate-based clocking (DESIGN.md §7.2).

    Two levels of circular bucket arrays over the [tick] granularity,
    each with a find-first-set occupancy bitmap, plus a far list beyond
    the level-2 horizon and a past list for deadlines quantized below
    the already-retired range.  Entries live in a struct-of-arrays slot
    arena and a handle is an immediate int, so schedule / cancel /
    re-arm are O(1) and allocation-free, and dispatch is O(due).

    Semantics: exactly [Timer_store.Quantize] applied to the reference
    store — the full §7.1 contract with every deadline rounded up to
    the tick granularity (never early).  The default geometry is
    4096 × 4096 buckets: at a 10 µs tick, a 41 ms level-1 horizon and a
    ~167 s level-2 horizon. *)

include Timer_store.S

module type SIZE = sig
  val buckets : int
end

module Sized (_ : SIZE) : Timer_store.S
(** Same store with [buckets] buckets per level (rounded up to a power
    of two, minimum 4).  Small instances force epoch turnover, cascades
    and far-list traffic at test scale. *)
