let exact : (module Timer_store.S) list =
  [
    Timer_store.wheel ~slots:512 ();
    (module Timer_store.Of_base (Timer_backend.Sorted_list));
    (module Timer_store.Of_base (Timer_backend.Binary_heap));
    (module Timer_store.Of_base (Timer_backend.Hier));
    (module Eventq_store);
    (module Lawn);
    (module Grouped_sorting);
  ]

let approximate : (module Timer_store.S) list = [ (module Pacing_wheel) ]

let all = exact @ approximate

let names =
  List.map (fun (module M : Timer_store.S) -> M.name) all

(* Store names are hyphenated; accept underscores too so CLI users can
   write --store pacing_wheel as the docs do. *)
let normalize name = String.map (fun c -> if c = '_' then '-' else c) name

let find name =
  let name = normalize name in
  List.find_opt (fun (module M : Timer_store.S) -> String.equal M.name name) all
