let all : (module Timer_store.S) list =
  [
    Timer_store.wheel ~slots:512 ();
    (module Timer_store.Of_base (Timer_backend.Sorted_list));
    (module Timer_store.Of_base (Timer_backend.Binary_heap));
    (module Timer_store.Of_base (Timer_backend.Hier));
    (module Eventq_store);
    (module Lawn);
    (module Grouped_sorting);
  ]

let names =
  List.map (fun (module M : Timer_store.S) -> M.name) all

let find name =
  List.find_opt (fun (module M : Timer_store.S) -> String.equal M.name name) all
