let name = "eventq"

(* Compaction threshold, mirroring the engine's slot table. *)
let compact_floor = 64

type 'a slot = {
  mutable sseq : int;  (* current generation; -1 when free *)
  mutable sat : Time_ns.t;
  mutable sval : 'a option;
}

type 'a handle = {
  hidx : int;
  mutable hseq : int;  (* generation this handle tracks; -1 when dead *)
  mutable hat : Time_ns.t;
}

type 'a t = {
  q : Eventq.t;
  mutable slots : 'a slot array;
  mutable nslots : int;  (* slots ever allocated (high-water mark) *)
  mutable free : int list;
  mutable live : int;
  mutable dead : int;  (* stale queue entries awaiting compaction *)
  mutable next_seq : int;
}

let create ~tick () =
  ignore tick;
  {
    q = Eventq.create ();
    slots = [||];
    nslots = 0;
    free = [];
    live = 0;
    dead = 0;
    next_seq = 0;
  }

let fresh_seq t =
  let s = t.next_seq in
  t.next_seq <- s + 1;
  s

let alloc_slot t =
  match t.free with
  | idx :: rest ->
    t.free <- rest;
    idx
  | [] ->
    let cap = Array.length t.slots in
    if t.nslots = cap then begin
      let ncap = if cap = 0 then 16 else 2 * cap in
      (* Fresh record per cell: [Array.make] would alias one. *)
      t.slots <-
        Array.init ncap (fun i ->
            if i < cap then t.slots.(i) else { sseq = -1; sat = Time_ns.zero; sval = None })
    end;
    let idx = t.nslots in
    t.nslots <- idx + 1;
    idx

let free_slot t idx =
  let s = t.slots.(idx) in
  s.sseq <- -1;
  s.sval <- None;
  (* ALLOC002: the free list is an int list — one cons per completed
     timer.  The production engine pool (lib/simcore/engine.ml) uses an
     int-array stack; this experiment store keeps the simpler shape. *)
  t.free <- ((idx :: t.free) [@lint.allow "ALLOC002"])

(* A handle is pending iff its generation still matches its slot's:
   cancel/fire free the slot (generation -1) and any reuse stamps a
   fresh generation, so stale handles can never match. *)
let valid t h = h.hseq >= 0 && t.slots.(h.hidx).sseq = h.hseq

let note_dead t =
  t.dead <- t.dead + 1;
  if t.dead >= compact_floor && t.dead >= t.live then begin
    Eventq.rebuild t.q ~keep:(fun ~seq ~payload -> t.slots.(payload).sseq = seq);
    t.dead <- 0
  end

let schedule t ~at v =
  let idx = alloc_slot t in
  let s = t.slots.(idx) in
  let seq = fresh_seq t in
  s.sseq <- seq;
  s.sat <- at;
  s.sval <- Some v;
  Eventq.push t.q ~time:(Int64.to_int at) ~seq ~payload:idx;
  t.live <- t.live + 1;
  { hidx = idx; hseq = seq; hat = at }

let schedule_i t ~at_i v = schedule t ~at:(Int64.of_int at_i) v

let cancel t h =
  if valid t h then begin
    free_slot t h.hidx;
    h.hseq <- -1;
    t.live <- t.live - 1;
    note_dead t
  end

let rearm t h ~at =
  if not (valid t h) then false
  else begin
    (* The old queue entry goes stale (its generation no longer matches)
       and a fresh one is pushed: cancel + schedule in one slot, handle
       untouched. *)
    let s = t.slots.(h.hidx) in
    let seq = fresh_seq t in
    s.sseq <- seq;
    s.sat <- at;
    h.hseq <- seq;
    h.hat <- at;
    Eventq.push t.q ~time:(Int64.to_int at) ~seq ~payload:h.hidx;
    note_dead t;
    true
  end

let pending t = t.live
let resident t = Eventq.length t.q

(* Record (8) + Eventq (record 5 + three int arrays of its capacity)
   + slot array (cap + 1) + a 4-word record per allocated slot (all
   created eagerly on growth) + per live slot a boxed deadline (3) and
   a [Some] box (2) + a free-list cons (3) per recycled slot. *)
let words t =
  let qcap = Eventq.capacity t.q in
  let scap = Array.length t.slots in
  8 + 5
  + (3 * (qcap + 1))
  + (scap + 1)
  + (4 * scap)
  + (5 * t.live)
  + (3 * (t.nslots - t.live))

let handle_pending t h = valid t h
let handle_deadline _t h = h.hat

(* Pop stale entries (cancelled or re-armed away) off the top. *)
let rec shed_stale t =
  if not (Eventq.is_empty t.q) then begin
    let idx = Eventq.min_payload t.q in
    if t.slots.(idx).sseq <> Eventq.min_seq t.q then begin
      Eventq.drop_min t.q;
      if t.dead > 0 then t.dead <- t.dead - 1;
      shed_stale t
    end
  end

let next_deadline t =
  shed_stale t;
  if Eventq.is_empty t.q then None else Some (Int64.of_int (Eventq.min_time t.q))

(* ALLOC001/2/3 below: the body is the snapshot-batch contract of
   timer_store.mli — the due prefix is popped into a list before any
   callback runs, so every allocation here (cons + tuple per due entry,
   the collect/dispatch closures, the re-boxed deadline) is
   proportional to the fired batch, never to a trigger-state check that
   finds nothing due. *)
let[@hot] fire_due t ?prefetch:_ ~now ~limit f =
  let now_i = Int64.to_int now in
  (* Pop the whole due prefix before running any callback: the popped
     list is the snapshot, already in (deadline, tie) order; entries
     pushed by callbacks land in the queue for the next call.
     [shed_stale] runs before every pop, so every collected triple was
     pending at collect time — the batch length is exactly the scanned
     count the other stores report. *)
  let rec collect acc =
    shed_stale t;
    (* Immediate-int key comparison (DET003 targets boxed Time_ns). *)
    let head = if Eventq.is_empty t.q then max_int else Eventq.min_time t.q in
    if head <= now_i then begin
      let time = Eventq.min_time t.q in
      let seq = Eventq.min_seq t.q in
      let idx = Eventq.min_payload t.q in
      Eventq.drop_min t.q;
      collect ((time, seq, idx) :: acc)
    end
    else List.rev acc
  in
  let batch = collect [] in
  let scanned = List.length batch in
  let fired = ref 0 in
  List.iter
    (fun (time, seq, idx) ->
      let s = t.slots.(idx) in
      (* Generation still matching = not cancelled or re-armed by an
         earlier callback in this batch. *)
      if s.sseq = seq then begin
        if !fired < limit then begin
          let v = match s.sval with Some v -> v | None -> assert false in
          free_slot t idx;
          t.live <- t.live - 1;
          incr fired;
          f (Int64.of_int time) v
        end
        else
          (* Budget exhausted: push the popped entry back verbatim —
             same time, same generation, same slot — so the next call
             dispatches the remainder in the same (deadline, tie)
             order. *)
          Eventq.push t.q ~time ~seq ~payload:idx
      end
      else if t.dead > 0 then
        (* The cancel/re-arm counted a corpse we had already popped. *)
        t.dead <- t.dead - 1)
    batch;
  Fire_outcome.pack ~scanned ~fired:!fired
[@@lint.allow "ALLOC001"] [@@lint.allow "ALLOC002"] [@@lint.allow "ALLOC003"]
