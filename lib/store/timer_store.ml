module type S = sig
  type 'a t

  type 'a handle

  val name : string

  val create : tick:Time_ns.span -> unit -> 'a t
  val schedule : 'a t -> at:Time_ns.t -> 'a -> 'a handle
  val schedule_i : 'a t -> at_i:int -> 'a -> 'a handle
  val cancel : 'a t -> 'a handle -> unit
  val rearm : 'a t -> 'a handle -> at:Time_ns.t -> bool
  val pending : 'a t -> int
  val resident : 'a t -> int
  val next_deadline : 'a t -> Time_ns.t option
  val words : 'a t -> int
  val handle_pending : 'a t -> 'a handle -> bool
  val handle_deadline : 'a t -> 'a handle -> Time_ns.t

  val fire_due :
    'a t ->
    ?prefetch:('a -> unit) ->
    now:Time_ns.t ->
    limit:int ->
    (Time_ns.t -> 'a -> unit) ->
    Fire_outcome.t
end

(* ------------------------------------------------------------------ *)
(* Reference model.                                                    *)

module Reference : S = struct
  let name = "reference"

  type rstate = Pending | Cancelled | Fired

  type 'a handle = {
    mutable rat : Time_ns.t;
    mutable rseq : int;
    mutable rstate : rstate;
    rval : 'a;
  }

  type 'a t = {
    mutable entries : 'a handle list;  (* pending entries, unordered *)
    mutable next_seq : int;
  }

  let create ~tick () =
    ignore tick;
    { entries = []; next_seq = 0 }

  let fresh_seq t =
    let s = t.next_seq in
    t.next_seq <- s + 1;
    s

  let schedule t ~at v =
    let h = { rat = at; rseq = fresh_seq t; rstate = Pending; rval = v } in
    t.entries <- h :: t.entries;
    h

  let schedule_i t ~at_i v = schedule t ~at:(Int64.of_int at_i) v

  let cancel t h =
    if h.rstate = Pending then begin
      h.rstate <- Cancelled;
      t.entries <- List.filter (fun e -> e != h) t.entries
    end

  let rearm t h ~at =
    if h.rstate <> Pending then false
    else begin
      (* Exactly cancel + schedule(same value): new deadline, fresh tie
         position, same handle. *)
      h.rat <- at;
      h.rseq <- fresh_seq t;
      true
    end

  let pending t = List.length t.entries
  let resident t = List.length t.entries

  let next_deadline t =
    List.fold_left
      (fun acc h ->
        match acc with
        | None -> Some h.rat
        | Some m -> if Time_ns.(h.rat < m) then Some h.rat else acc)
      None t.entries

  let handle_pending _t h = h.rstate = Pending
  let handle_deadline _t h = h.rat

  (* Record (3) + per entry: cons (3) + handle (5) + int64 box (3). *)
  let words t = 3 + (11 * List.length t.entries)

  let fire_due t ?prefetch:_ ~now ~limit f =
    (* Snapshot: only entries that existed (and were due) at call time
       are candidates; [seq_limit] excludes anything scheduled or
       re-armed by a callback during this call. *)
    let seq_limit = t.next_seq in
    let due =
      List.filter (fun h -> h.rseq < seq_limit && Time_ns.(h.rat <= now)) t.entries
      |> List.sort (fun a b ->
             let c = Time_ns.compare a.rat b.rat in
             if c <> 0 then c else compare a.rseq b.rseq)
    in
    let scanned = List.length due in
    let fired = ref 0 in
    List.iter
      (fun h ->
        (* Re-check: an earlier callback may have cancelled or re-armed
           this entry.  Entries beyond the budget simply stay in
           [t.entries] (removal happens only at fire time), so their
           deadline and tie position are preserved for the next call. *)
        if
          !fired < limit
          && h.rstate = Pending
          && h.rseq < seq_limit
          && Time_ns.(h.rat <= now)
        then begin
          h.rstate <- Fired;
          t.entries <- List.filter (fun e -> e != h) t.entries;
          incr fired;
          f h.rat h.rval
        end)
      due;
    Fire_outcome.pack ~scanned ~fired:!fired
end

(* ------------------------------------------------------------------ *)
(* Lifting a Timer_backend.S into a Timer_store.S.                     *)

module Of_base (B : Timer_backend.S) : S = struct
  let name = B.name

  type cstate = Pending | Cancelled | Fired

  type 'a cell = {
    mutable cat : Time_ns.t;
    cval : 'a;
    mutable cgen : int;  (* bumped on every re-arm *)
    mutable cbh : B.handle option;  (* [None] only during construction *)
    mutable cstate : cstate;
  }

  type 'a handle = 'a cell

  type 'a t = { b : ('a cell * int) B.t; mutable live : int }

  let create ~tick () = { b = B.create ~tick (); live = 0 }

  let schedule t ~at v =
    let cell = { cat = at; cval = v; cgen = 0; cbh = None; cstate = Pending } in
    cell.cbh <- Some (B.schedule t.b ~at (cell, 0));
    t.live <- t.live + 1;
    cell

  (* The cell boxes the deadline anyway; nothing to save here. *)
  let schedule_i t ~at_i v = schedule t ~at:(Int64.of_int at_i) v

  let cancel_base t cell =
    match cell.cbh with Some bh -> B.cancel t.b bh | None -> ()

  let cancel t cell =
    if cell.cstate = Pending then begin
      cell.cstate <- Cancelled;
      t.live <- t.live - 1;
      cancel_base t cell
    end

  let rearm t cell ~at =
    if cell.cstate <> Pending then false
    else begin
      (* Cancel + schedule in the base store: the old entry becomes a
         corpse (reclaimed by the base's compaction), the new one takes
         a fresh tie position, and the generation stamp keeps any
         already-extracted old entry from firing. *)
      cancel_base t cell;
      cell.cgen <- cell.cgen + 1;
      cell.cat <- at;
      cell.cbh <- Some (B.schedule t.b ~at (cell, cell.cgen));
      true
    end

  let pending t = t.live
  let resident t = B.resident t.b
  let next_deadline t = B.next_deadline t.b
  let handle_pending _t cell = cell.cstate = Pending
  let handle_deadline _t cell = cell.cat

  (* Base store + our record (3) + per base-resident payload tuple (3)
     + per live cell: record (6) + [Some] box (2); the cell's boxed
     deadline is the same box the base already counted. *)
  let words t = B.words t.b + 3 + (3 * B.resident t.b) + (8 * t.live)

  (* ALLOC001: one dispatch-wrapper closure per fire_due call, shared
     by every timer in the batch.  [cancel_base] keeps the base store in
     sync with the cell states, so every base-level fire of a current
     generation is a store-level fire: the base's outcome (scanned and
     fired counts, budget accounting) is ours verbatim. *)
  let[@hot] fire_due t ?prefetch:_ ~now ~limit f =
    B.fire_due t.b ~now ~limit (fun d (cell, gen) ->
        if gen = cell.cgen && cell.cstate = Pending then begin
          cell.cstate <- Fired;
          t.live <- t.live - 1;
          f d cell.cval
        end)
  [@@lint.allow "ALLOC001"]
end

(* ------------------------------------------------------------------ *)
(* The production wheel, with configurable slot count.                 *)

let wheel ?(slots = 512) () : (module S) =
  let module W = struct
    let name = "wheel"

    type 'a t = 'a Timing_wheel.t

    type handle = Timing_wheel.handle

    let create ~tick () = Timing_wheel.create ~slots ~tick ()
    let schedule t ~at v = Timing_wheel.schedule t ~at v
    let cancel = Timing_wheel.cancel
    let pending = Timing_wheel.pending
    let resident = Timing_wheel.resident
    let next_deadline = Timing_wheel.next_deadline
    let words = Timing_wheel.words
    let fire_due t ~now ~limit f = Timing_wheel.fire_due t ~now ~limit f
  end in
  (module Of_base (W))

(* ------------------------------------------------------------------ *)
(* Approximate-firing oracle: any store M with every deadline rounded
   UP to the tick granularity at schedule/rearm time.  This is the
   semantics contract of the approximate stores (Pacing_wheel): they
   must behave exactly like [Quantize (Reference)] — same fire times,
   same order, same counts — which the equivalence suite checks by
   string equality.  Rounding up (never down) preserves the sanitizer's
   never-early-fire invariant.                                         *)

module Quantize (M : S) : S = struct
  let name = "quantize-" ^ M.name

  type 'a t = { q : int; inner : 'a M.t }

  type 'a handle = 'a M.handle

  let create ~tick () =
    let q = Int64.to_int tick in
    { q = (if q <= 0 then 1 else q); inner = M.create ~tick () }

  let quant t at = Int64.of_int ((Int64.to_int at + t.q - 1) / t.q * t.q)

  let schedule t ~at v = M.schedule t.inner ~at:(quant t at) v
  let schedule_i t ~at_i v = M.schedule_i t.inner ~at_i:((at_i + t.q - 1) / t.q * t.q) v
  let cancel t h = M.cancel t.inner h
  let rearm t h ~at = M.rearm t.inner h ~at:(quant t at)
  let pending t = M.pending t.inner
  let resident t = M.resident t.inner
  let next_deadline t = M.next_deadline t.inner
  let words t = 3 + M.words t.inner
  let handle_pending t h = M.handle_pending t.inner h
  let handle_deadline t h = M.handle_deadline t.inner h

  (* [now] is not quantized: an entry fires once its rounded-up
     deadline has arrived, reported at that rounded deadline. *)
  let fire_due t ?prefetch ~now ~limit f = M.fire_due t.inner ?prefetch ~now ~limit f
end

(* ------------------------------------------------------------------ *)
(* Closure-based instances: let a consumer hold one store of each kind
   without threading first-class module types through its own API.     *)

type ticket = {
  tk_cancel : unit -> unit;
  tk_rearm : Time_ns.t -> bool;
  tk_pending : unit -> bool;
  tk_deadline : unit -> Time_ns.t;
}

type 'a inst = {
  i_name : string;
  i_schedule : at:Time_ns.t -> 'a -> ticket;
  i_next_deadline : unit -> Time_ns.t option;
  i_fire_due :
    now:Time_ns.t -> limit:int -> (Time_ns.t -> 'a -> unit) -> Fire_outcome.t;
  i_pending : unit -> int;
  i_resident : unit -> int;
  i_words : unit -> int;
}

let instantiate (type a) (module M : S) ~tick () : a inst =
  let t : a M.t = M.create ~tick () in
  {
    i_name = M.name;
    i_schedule =
      (fun ~at v ->
        let h = M.schedule t ~at v in
        {
          tk_cancel = (fun () -> M.cancel t h);
          tk_rearm = (fun at -> M.rearm t h ~at);
          tk_pending = (fun () -> M.handle_pending t h);
          tk_deadline = (fun () -> M.handle_deadline t h);
        });
    i_next_deadline = (fun () -> M.next_deadline t);
    i_fire_due = (fun ~now ~limit f -> M.fire_due t ~now ~limit f);
    i_pending = (fun () -> M.pending t);
    i_resident = (fun () -> M.resident t);
    i_words = (fun () -> M.words t);
  }
