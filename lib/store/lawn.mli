(** Lawn-style timer store (Lev-Libfeld, "Lawn: an unbound low latency
    timer data structure", 2019).

    Entries are grouped into per-{e duration} FIFO buckets (duration =
    deadline minus the store's notion of "now" at insert time).  Because
    the store's clock only moves forward, entries of equal duration are
    inserted with non-decreasing deadlines, so each bucket is sorted by
    construction: insert is an O(1) tail append, cancel an O(1) unlink
    (physical — a Lawn never holds corpses, [resident = pending]), and
    expiry pops due heads.  Re-arm is unlink + re-append, also O(1).

    The structure is ideal when timer durations are {e few and repeated}
    — exactly the TCP retransmit / delayed-ACK shape the soft-timers
    paper targets, where every connection uses the same handful of
    timeout constants.  Its weak spot is many {e distinct} durations:
    the earliest-deadline query and expiry sweep are linear in the
    number of buckets ever seen (buckets are never deleted; there is one
    per distinct duration).

    Conforms to the {!Timer_store.S} contract; see [timer_store.mli] for
    the fire/re-arm semantics. *)

include Timer_store.S
