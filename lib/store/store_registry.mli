(** Every production timer store, by name.

    The arena bench, the cross-backend equivalence suite and the CLI's
    [--store] flag all draw from this one list:

    - ["wheel"] — the production hashed {!Timing_wheel} (512 slots);
    - ["sorted-list"], ["binary-heap"], ["hierarchical-wheel"] — the
      [Timer_backend] references, lifted via {!Timer_store.Of_base};
    - ["eventq"] — the engine slot-table technique ({!Eventq_store});
    - ["lawn"] — per-duration FIFO buckets ({!Lawn});
    - ["grouped-sorting"] — range-partitioned groups with in-place
      deadline updates ({!Grouped_sorting}).

    {!Timer_store.Reference} is deliberately absent: it is the oracle
    the others are tested against, not a production store. *)

val all : (module Timer_store.S) list

val names : string list

val find : string -> (module Timer_store.S) option
