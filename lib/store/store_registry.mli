(** Every production timer store, by name.

    The arena bench, the cross-backend equivalence suite and the CLI's
    [--store] flag all draw from this one list:

    - ["wheel"] — the production hashed {!Timing_wheel} (512 slots);
    - ["sorted-list"], ["binary-heap"], ["hierarchical-wheel"] — the
      [Timer_backend] references, lifted via {!Timer_store.Of_base};
    - ["eventq"] — the engine slot-table technique ({!Eventq_store});
    - ["lawn"] — per-duration FIFO buckets ({!Lawn});
    - ["grouped-sorting"] — range-partitioned groups with in-place
      deadline updates ({!Grouped_sorting});
    - ["pacing-wheel"] — the Eiffel-style FFS bucket wheel
      ({!Pacing_wheel}), the one {e approximate} store: deadlines are
      rounded up to the tick granularity (the
      {!Timer_store.Quantize} contract extension).

    {!Timer_store.Reference} is deliberately absent: it is the oracle
    the others are tested against, not a production store. *)

val exact : (module Timer_store.S) list
(** Stores that fire at the exact requested deadline — the ones the
    exact cross-store equivalence and digest suites range over. *)

val approximate : (module Timer_store.S) list
(** Stores that fire at the deadline rounded up to the tick
    granularity; each is tested against its quantized oracle instead. *)

val all : (module Timer_store.S) list
(** [exact @ approximate]. *)

val names : string list

val find : string -> (module Timer_store.S) option
(** Lookup by name; underscores are accepted for hyphens, so
    ["pacing_wheel"] finds ["pacing-wheel"]. *)
