(** Grouped sorting queue with dynamic in-place deadline updates
    (after Wang et al.'s NIC timer-management queue).

    Entries live in {e groups} whose deadline ranges partition time:
    groups are ordered by range, {e unsorted inside}.  Insert binary- /
    linear-searches the group covering the deadline and appends — no
    comparison against the group's members.  Sorting is deferred to
    expiry: a group is sorted only when time reaches it, so entries that
    are cancelled or re-armed away first are never sorted at all.  A
    group outgrowing ~256 entries splits at its median deadline.

    The headline operation is {e re-arm}: when the new deadline falls
    within the node's current group range the update is truly in place —
    the node does not move (it does take a fresh tie position, keeping
    re-arm equivalent to cancel + schedule).  TCP retransmit timers,
    which are pushed out by a few RTOs at a time, hit this case almost
    always.  Cancellation is a physical O(1) swap-pop: no corpses,
    [resident = pending].

    Conforms to the {!Timer_store.S} contract; see [timer_store.mli] for
    the fire/re-arm semantics. *)

include Timer_store.S
