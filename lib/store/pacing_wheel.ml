(* An Eiffel/Carousel-style pacing wheel: an approximate-time bucketed
   priority queue for million-flow rate-based clocking.

   Deadlines are rounded UP to the store's tick granularity [gns] and
   bucketed by tick.  Two levels of circular bucket arrays, each with a
   find-first-set occupancy bitmap, give O(1) schedule / cancel / re-arm
   and O(due) dispatch regardless of population:

   - level 1: one bucket per tick over the current epoch of [n1] ticks
     ([epoch_base, epoch_base + n1)); bucket index = tick mod n1.  Each
     bucket holds exactly one tick and is an append-only (slot, seq)
     pair vector, so it is (deadline, tie)-sorted for free and dispatch
     reads it sequentially instead of pointer-chasing a chain.
   - level 2: one bucket per [n1]-tick span over the current level-2
     epoch of [n2] spans; when the level-1 epoch advances, the matching
     level-2 bucket cascades into level 1 (each entry moves at most
     once per level — amortised O(1)).
   - far list: beyond the level-2 horizon (default 4096 × 4096 ticks ≈
     167 s at 10 µs); FIFO with a cached minimum, cascaded into level 2
     when the level-2 epoch advances.
   - past list: entries whose quantized deadline fell below [cur_tick]
     at link time.  They are already due (the wheel only advances past
     a tick once [now] reaches it), strictly earlier than anything in
     the wheel, and dispatched first, sorted by (deadline, tie).

   Entries live in a packed struct-of-arrays slot arena: one flat int
   slab, stride 8, holding deadline / tie / prev / next / location /
   generation per slot — a whole entry in one cache line, which is what
   keeps dispatch flat when a million-slot arena no longer fits in
   cache — plus one value array.  A handle is an immediate int —
   (generation << 24) | slot — so steady-state schedule / fire / re-arm
   allocates nothing but the one boxed [Time_ns.t] handed to the fire
   callback.

   Semantics: exactly [Timer_store.Quantize] applied to the reference
   store — the §7.1 contract with every deadline rounded up to the tick
   granularity (never early).  The cross-store suite checks this by
   string-equality against the quantized oracle. *)

let name = "pacing-wheel"

(* The empty vector is OCaml's static atom — installing it allocates
   nothing; buckets hold it whenever their buffer is parked or dropped. *)
let empty_vec : int array = [||]

let default_buckets = 4096

(* Location codes for a slot's loc field: a level-1 bucket index in
   [0, n1), a level-2 bucket index offset by [n1], or one of the
   sentinels. *)
let loc_free = -1
let loc_past = -2
let loc_far = -3

(* Slot index lives in the low 24 bits of a handle, the slot generation
   above it.  The generation is bumped on every free, so a stale handle
   never validates; 2^38 generations per slot outlast any realistic
   run.  2^24 slots bounds one store at ~16.7M concurrent timers. *)
let max_slots = 1 lsl 24

type 'a t = {
  gns : int;  (* bucket granularity, ns per tick *)
  n1 : int;  (* level-1 buckets (power of two) *)
  n2 : int;  (* level-2 buckets (power of two) *)
  v1 : int array array;  (* level-1 (slot, seq) pair vectors, see below *)
  f1 : int array;  (* level-1 vector fill, in pairs (live + dead) *)
  h2 : int array;  (* level-2 chain heads, -1 empty *)
  t2 : int array;
  c1 : int array;  (* per-bucket live counts: O(1) due-counting *)
  c2 : int array;
  occ1 : int array;  (* occupancy bitmaps, 32 bits per word *)
  occ2 : int array;
  mutable cur_tick : int;  (* lowest tick that may still hold wheel entries *)
  mutable past_h : int;
  mutable past_t : int;
  mutable past_n : int;
  mutable far_h : int;
  mutable far_t : int;
  mutable far_n : int;
  mutable far_min : int;  (* cached min deadline of the far list *)
  mutable far_min_ok : bool;
  mutable n1_count : int;  (* entries linked in level 1 *)
  mutable n2_count : int;
  mutable count : int;  (* all pending entries *)
  mutable next_seq : int;
  (* slot arena: stride-8 rows of [slab] (fields below) + values *)
  mutable cap : int;
  mutable slab : int array;
  mutable s_val : 'a array;  (* length 0 until the first schedule *)
  mutable free_top : int;
  mutable free_stk : int array;
  mutable scratch : int array;  (* slot snapshot for past-list retirement *)
  spares : int array array;  (* parked level-1 vector buffers, see [link1_tail] *)
  mutable spare_n : int;
  mutable dispatching : int;  (* bucket being dispatched (-1 none): see [unlink] *)
}

type 'a handle = int

let idx_of h = h land (max_slots - 1)
let gen_of h = h lsr 24
let pack gen idx = (gen lsl 24) lor idx

(* ---- slot fields ---------------------------------------------------
   One stride-8 slab row per slot: quantized deadline (ns), tie, prev,
   next, location, generation, level-1 vector position (+1 pad word to
   keep rows line-aligned).  prev/next serve the level-2/past/far
   chains; pos serves the level-1 pair vectors — a slot is only ever in
   one of the two structures. *)

let[@inline] s_at t i = t.slab.(i lsl 3)
let[@inline] set_at t i v = t.slab.(i lsl 3) <- v
let[@inline] s_seq t i = t.slab.((i lsl 3) + 1)
let[@inline] set_seq t i v = t.slab.((i lsl 3) + 1) <- v
let[@inline] s_prev t i = t.slab.((i lsl 3) + 2)
let[@inline] set_prev t i v = t.slab.((i lsl 3) + 2) <- v
let[@inline] s_next t i = t.slab.((i lsl 3) + 3)
let[@inline] set_next t i v = t.slab.((i lsl 3) + 3) <- v
let[@inline] s_loc t i = t.slab.((i lsl 3) + 4)
let[@inline] set_loc t i v = t.slab.((i lsl 3) + 4) <- v
let[@inline] s_gen t i = t.slab.((i lsl 3) + 5)
let[@inline] set_gen t i v = t.slab.((i lsl 3) + 5) <- v
let[@inline] s_pos t i = t.slab.((i lsl 3) + 6)
let[@inline] set_pos t i v = t.slab.((i lsl 3) + 6) <- v

(* ---- occupancy bitmaps -------------------------------------------- *)

let set_bit occ i = occ.(i lsr 5) <- occ.(i lsr 5) lor (1 lsl (i land 31))
let clear_bit occ i = occ.(i lsr 5) <- occ.(i lsr 5) land lnot (1 lsl (i land 31))

(* Index of the lowest set bit of a nonzero 32-bit word. *)
let lsb w =
  let x = ref (w land (-w)) in
  let n = ref 0 in
  if !x land 0xFFFF = 0 then begin
    n := 16;
    x := !x lsr 16
  end;
  if !x land 0xFF = 0 then begin
    n := !n + 8;
    x := !x lsr 8
  end;
  if !x land 0xF = 0 then begin
    n := !n + 4;
    x := !x lsr 4
  end;
  if !x land 0x3 = 0 then begin
    n := !n + 2;
    x := !x lsr 2
  end;
  if !x land 0x1 = 0 then incr n;
  !n

(* First occupied bucket in the inclusive index range [from, upto], or
   -1.  Epochs are aligned, so a scan never wraps: it masks the first
   word below [from] and walks whole words up to [upto]'s word. *)
let ffs_in_range occ ~from ~upto =
  if from > upto then -1
  else begin
    let res = ref (-1) in
    let iw = ref (from lsr 5) in
    let last_w = upto lsr 5 in
    let first = occ.(!iw) land ((-1) lsl (from land 31)) in
    if first <> 0 then res := (!iw lsl 5) + lsb first
    else begin
      incr iw;
      while !res < 0 && !iw <= last_w do
        let w = occ.(!iw) in
        if w <> 0 then res := (!iw lsl 5) + lsb w;
        incr iw
      done
    end;
    if !res >= 0 && !res <= upto then !res else -1
  end

(* ---- construction -------------------------------------------------- *)

let rec pow2_at_least k n = if k >= n then k else pow2_at_least (k * 2) n

let create_sized ~buckets ~tick () =
  let n = pow2_at_least 4 (if buckets < 4 then 4 else buckets) in
  let g =
    let g = Int64.to_int tick in
    if g <= 0 then 1 else g
  in
  {
    gns = g;
    n1 = n;
    n2 = n;
    v1 = Array.make n [||];
    f1 = Array.make n 0;
    h2 = Array.make n (-1);
    t2 = Array.make n (-1);
    c1 = Array.make n 0;
    c2 = Array.make n 0;
    occ1 = Array.make ((n + 31) lsr 5) 0;
    occ2 = Array.make ((n + 31) lsr 5) 0;
    cur_tick = 0;
    past_h = -1;
    past_t = -1;
    past_n = 0;
    far_h = -1;
    far_t = -1;
    far_n = 0;
    far_min = 0;
    far_min_ok = true;
    n1_count = 0;
    n2_count = 0;
    count = 0;
    next_seq = 0;
    cap = 0;
    slab = [||];
    s_val = [||];
    free_top = 0;
    free_stk = [||];
    scratch = [||];
    spares = Array.make 64 [||];
    spare_n = 0;
    dispatching = -1;
  }

let create ~tick () = create_sized ~buckets:default_buckets ~tick ()

(* ---- slot arena ---------------------------------------------------- *)

let grow t v =
  let newcap = if t.cap = 0 then 16 else t.cap * 2 in
  if newcap > max_slots then failwith "Pacing_wheel: slot arena exceeds 2^24 entries";
  let slab = Array.make (newcap * 8) 0 in
  Array.blit t.slab 0 slab 0 (t.cap * 8);
  t.slab <- slab;
  for i = t.cap to newcap - 1 do
    let b = i lsl 3 in
    slab.(b + 2) <- -1;  (* prev *)
    slab.(b + 3) <- -1;  (* next *)
    slab.(b + 4) <- loc_free
  done;
  (* Freed slots keep their last value alive until reuse — bounded by
     the arena capacity, the price of a non-optional value array. *)
  let vals = Array.make newcap v in
  Array.blit t.s_val 0 vals 0 (Array.length t.s_val);
  t.s_val <- vals;
  let stk = Array.make newcap 0 in
  Array.blit t.free_stk 0 stk 0 t.free_top;
  for i = newcap - 1 downto t.cap do
    stk.(t.free_top + (newcap - 1 - i)) <- i
  done;
  t.free_stk <- stk;
  t.free_top <- t.free_top + (newcap - t.cap);
  t.cap <- newcap

let alloc_slot t v =
  if t.free_top = 0 then grow t v;
  t.free_top <- t.free_top - 1;
  let i = t.free_stk.(t.free_top) in
  t.s_val.(i) <- v;
  i

let free_slot t i =
  set_gen t i (s_gen t i + 1);
  set_loc t i loc_free;
  t.free_stk.(t.free_top) <- i;
  t.free_top <- t.free_top + 1

let valid t h =
  let i = idx_of h in
  i < t.cap && s_gen t i = gen_of h && s_loc t i <> loc_free

(* ---- intrusive chains ---------------------------------------------- *)

(* Level-1 buckets are (slot, seq) pair vectors, not chains: dispatch
   iterates them sequentially (index arithmetic the prefetcher can run
   ahead of) instead of pointer-chasing one cold slab row to find the
   next — at a million slots, the difference between one overlapped and
   one serial DRAM round-trip per due entry.  Appends keep seq
   ascending (every append carries a fresh, globally increasing tie),
   removal marks the pair dead in place (slot := -1, O(1), order
   preserved), and a bucket compacts when dead pairs outnumber live
   ones — amortized against the cancels that created them. *)
let link1_tail t b i =
  let pos = t.f1.(b) in
  (if Array.length t.v1.(b) < (pos + 1) * 2 then begin
     let vec = t.v1.(b) in
     let need = (pos + 1) * 2 in
     (* Prefer a parked buffer from a retired bucket: buckets retire at
        one per tick and start growing at about the same rate (each rate
        class appends to a new target bucket every tick), so a small
        ring of full-lap-sized spares keeps the steady state free of
        fresh vector allocations, doubling blits, and the major-GC churn
        of discarded ladders — at a million flows that churn is ~0.5 MB
        of array traffic per tick.  A growing bucket takes a spare at
        its first growth step and never doubles again this lap. *)
     let nv =
       if t.spare_n > 0 && Array.length t.spares.(t.spare_n - 1) >= need then begin
         t.spare_n <- t.spare_n - 1;
         let s = t.spares.(t.spare_n) in
         t.spares.(t.spare_n) <- empty_vec;
         s
       end
       else Array.make (Int.max 16 (Int.max need (Array.length vec * 2))) 0
     in
     Array.blit vec 0 nv 0 (pos * 2);
     t.v1.(b) <- nv
   end);
  let vec = t.v1.(b) in
  vec.(pos * 2) <- i;
  vec.((pos * 2) + 1) <- s_seq t i;
  set_loc t i b;
  set_pos t i pos;
  t.f1.(b) <- pos + 1;
  if t.c1.(b) = 0 then set_bit t.occ1 b;
  t.c1.(b) <- t.c1.(b) + 1;
  t.n1_count <- t.n1_count + 1

(* Drop the dead pairs of bucket [b], preserving (ascending-seq) order. *)
let compact_bucket t b =
  let vec = t.v1.(b) in
  let w = ref 0 in
  for q = 0 to t.f1.(b) - 1 do
    let s = vec.(q * 2) in
    if s >= 0 then begin
      vec.(!w * 2) <- s;
      vec.((!w * 2) + 1) <- vec.((q * 2) + 1);
      set_pos t s !w;
      incr w
    end
  done;
  t.f1.(b) <- !w

let link2_tail t b i =
  set_prev t i t.t2.(b);
  set_next t i (-1);
  if t.t2.(b) >= 0 then set_next t t.t2.(b) i
  else begin
    t.h2.(b) <- i;
    set_bit t.occ2 b
  end;
  t.t2.(b) <- i;
  set_loc t i (t.n1 + b);
  t.c2.(b) <- t.c2.(b) + 1;
  t.n2_count <- t.n2_count + 1

let link_past_tail t i =
  set_prev t i t.past_t;
  set_next t i (-1);
  if t.past_t >= 0 then set_next t t.past_t i else t.past_h <- i;
  t.past_t <- i;
  set_loc t i loc_past;
  t.past_n <- t.past_n + 1

let link_far_tail t i =
  set_prev t i t.far_t;
  set_next t i (-1);
  if t.far_t >= 0 then set_next t t.far_t i else t.far_h <- i;
  t.far_t <- i;
  set_loc t i loc_far;
  let at = s_at t i in
  if t.far_n = 0 then begin
    t.far_min <- at;
    t.far_min_ok <- true
  end
  else if t.far_min_ok && at < t.far_min then t.far_min <- at;
  t.far_n <- t.far_n + 1

let unlink t i =
  let loc = s_loc t i in
  if loc >= 0 && loc < t.n1 then begin
    (* Level-1: mark the pair dead in place. *)
    t.v1.(loc).(s_pos t i * 2) <- -1;
    t.c1.(loc) <- t.c1.(loc) - 1;
    t.n1_count <- t.n1_count - 1;
    (* Never restructure the bucket [fire_due] is iterating: compaction
       moves pairs and the reset swaps the buffer out from under the
       dispatch cursor.  The dispatch loop does its own cleanup. *)
    if loc <> t.dispatching then begin
      if t.c1.(loc) = 0 then begin
        t.f1.(loc) <- 0;
        clear_bit t.occ1 loc;
        (* Retire the buffer: a bucket drains once per lap, and holding
           its peak capacity for the next 4096 ticks would retain a
           whole lap's worth of dead vectors.  Park it in the spare ring
           for the buckets currently growing; small ones stay put, and
           overflow beyond the ring goes to the GC. *)
        let vec = t.v1.(loc) in
        if Array.length vec > 64 then begin
          if t.spare_n < Array.length t.spares then begin
            t.spares.(t.spare_n) <- vec;
            t.spare_n <- t.spare_n + 1
          end;
          t.v1.(loc) <- empty_vec
        end
      end
      else if t.f1.(loc) >= 8 && t.f1.(loc) > 2 * t.c1.(loc) then compact_bucket t loc
    end
  end
  else begin
    let p = s_prev t i and n = s_next t i in
    if p >= 0 then set_next t p n;
    if n >= 0 then set_prev t n p;
    if loc >= t.n1 then begin
      let b = loc - t.n1 in
      if p < 0 then t.h2.(b) <- n;
      if n < 0 then t.t2.(b) <- p;
      if t.h2.(b) < 0 then clear_bit t.occ2 b;
      t.c2.(b) <- t.c2.(b) - 1;
      t.n2_count <- t.n2_count - 1
    end
    else if loc = loc_past then begin
      if p < 0 then t.past_h <- n;
      if n < 0 then t.past_t <- p;
      t.past_n <- t.past_n - 1
    end
    else begin
      (* far *)
      if p < 0 then t.far_h <- n;
      if n < 0 then t.far_t <- p;
      t.far_n <- t.far_n - 1;
      if t.far_min_ok && t.far_n > 0 && s_at t i <= t.far_min then t.far_min_ok <- false
    end;
    set_prev t i (-1);
    set_next t i (-1)
  end

let ensure_far_min t =
  if (not t.far_min_ok) && t.far_n > 0 then begin
    let m = ref max_int in
    let i = ref t.far_h in
    while !i >= 0 do
      if s_at t !i < !m then m := s_at t !i;
      i := s_next t !i
    done;
    t.far_min <- !m;
    t.far_min_ok <- true
  end

(* ---- routing ------------------------------------------------------- *)

(* Epoch bounds, derived from [cur_tick].  Level 1 holds ticks in
   [epoch1_base, epoch1_base + n1); level 2 holds spans ([tick / n1])
   strictly above the current one and below [epoch2_end]. *)
let epoch1_base t = t.cur_tick - (t.cur_tick land (t.n1 - 1))

let route t i =
  let tick = s_at t i / t.gns in
  if tick < t.cur_tick then link_past_tail t i
  else begin
    let e1 = epoch1_base t + t.n1 in
    if tick < e1 then link1_tail t (tick land (t.n1 - 1)) i
    else begin
      let tick2 = tick / t.n1 in
      let cur2 = t.cur_tick / t.n1 in
      let e2 = cur2 - (cur2 land (t.n2 - 1)) + t.n2 in
      if tick2 < e2 then link2_tail t (tick2 land (t.n2 - 1)) i
      else link_far_tail t i
    end
  end

(* ---- the public surface -------------------------------------------- *)

let quantize t ati = (ati + t.gns - 1) / t.gns * t.gns

(* The native entry point: deadline as integer nanoseconds, no box in
   or out — with the wheel's int handles, a schedule allocates nothing
   (arena growth amortized aside). *)
let schedule_i t ~at_i v =
  let i = alloc_slot t v in
  set_at t i (quantize t at_i);
  set_seq t i t.next_seq;
  t.next_seq <- t.next_seq + 1;
  route t i;
  t.count <- t.count + 1;
  pack (s_gen t i) i

let schedule t ~at v = schedule_i t ~at_i:(Int64.to_int at) v

let cancel t h =
  if valid t h then begin
    let i = idx_of h in
    unlink t i;
    free_slot t i;
    t.count <- t.count - 1
  end

let rearm t h ~at =
  if not (valid t h) then false
  else begin
    let i = idx_of h in
    unlink t i;
    set_at t i (quantize t (Int64.to_int at));
    set_seq t i t.next_seq;
    t.next_seq <- t.next_seq + 1;
    route t i;
    true
  end

let pending t = t.count
let resident t = t.count (* cancellation unlinks and frees: no corpses *)

(* Analytic heap footprint, 64-bit words.  Everything is flat int
   arrays, so this is exact up to a few shared empty-array atoms:
   record (37) + the fixed per-level arrays + the slot arena
   (stride-8 slab, value array, free stack) + the live level-1 pair
   vectors and parked spare buffers. *)
let words t =
  let arr a = if Array.length a = 0 then 0 else Array.length a + 1 in
  let vecs = Array.fold_left (fun acc v -> acc + arr v) 0 t.v1 in
  let spare = Array.fold_left (fun acc v -> acc + arr v) 0 t.spares in
  37
  + (Array.length t.v1 + 1)
  + arr t.f1 + arr t.h2 + arr t.t2 + arr t.c1 + arr t.c2
  + arr t.occ1 + arr t.occ2
  + arr t.slab
  + (if Array.length t.s_val = 0 then 0 else Array.length t.s_val + 1)
  + arr t.free_stk + arr t.scratch
  + (Array.length t.spares + 1)
  + vecs + spare

let handle_pending t h = valid t h
let handle_deadline t h = if valid t h then Int64.of_int (s_at t (idx_of h)) else Time_ns.zero

let next_deadline t =
  if t.count = 0 then None
  else begin
    let best = ref max_int in
    (* past: unsorted, walk in full (short-lived: drained every fire) *)
    let i = ref t.past_h in
    while !i >= 0 do
      if s_at t !i < !best then best := s_at t !i;
      i := s_next t !i
    done;
    (* level 1: buckets are single-tick, so the first occupied bucket is
       the level minimum *)
    let base = epoch1_base t in
    let idx = ffs_in_range t.occ1 ~from:(t.cur_tick - base) ~upto:(t.n1 - 1) in
    if idx >= 0 then begin
      let cand = (base + idx) * t.gns in
      if cand < !best then best := cand
    end;
    (* level 2: the first occupied bucket spans n1 ticks, unsorted —
       walk that one chain *)
    let cur2 = t.cur_tick / t.n1 in
    let idx2 = ffs_in_range t.occ2 ~from:((cur2 land (t.n2 - 1)) + 1) ~upto:(t.n2 - 1) in
    if idx2 >= 0 then begin
      let j = ref t.h2.(idx2) in
      while !j >= 0 do
        if s_at t !j < !best then best := s_at t !j;
        j := s_next t !j
      done
    end;
    if t.far_n > 0 then begin
      ensure_far_min t;
      if t.far_min < !best then best := t.far_min
    end;
    Some (Int64.of_int !best)
  end

(* ---- cascades ------------------------------------------------------ *)

(* The level-1 epoch just advanced to [cur_tick] (a multiple of n1):
   spill the matching level-2 bucket into level 1.  The chain is walked
   head-to-tail, so FIFO (= tie) order is preserved, and every target
   level-1 bucket is empty (ticks of the new epoch could not be
   scheduled into level 1 before now), so each bucket ends up
   tie-sorted. *)
let cascade_bucket t idx2 =
  let h = ref t.h2.(idx2) in
  t.h2.(idx2) <- -1;
  t.t2.(idx2) <- -1;
  t.c2.(idx2) <- 0;
  clear_bit t.occ2 idx2;
  while !h >= 0 do
    let i = !h in
    h := s_next t i;
    t.n2_count <- t.n2_count - 1;
    let tick = s_at t i / t.gns in
    link1_tail t (tick land (t.n1 - 1)) i
  done

(* The level-2 epoch just advanced to span [tick2_new] (a multiple of
   n2): move far entries now inside the level-2 horizon into their
   bucket.  Far entries always predate any direct level-2 schedule for
   the same span (a span inside the horizon is never routed to far, and
   the horizon only ever grows at these cascade points), so the target
   buckets are empty and tie order is preserved. *)
let cascade_far t tick2_new =
  let e2 = tick2_new + t.n2 in
  let i = ref t.far_h in
  while !i >= 0 do
    let j = !i in
    i := s_next t j;
    let tk2 = s_at t j / t.gns / t.n1 in
    if tk2 < e2 then begin
      unlink t j;
      link2_tail t (tk2 land (t.n2 - 1)) j
    end
  done

(* Fast-forward used when both wheel levels are empty: re-route the far
   list against the advanced [cur_tick] instead of walking epochs one
   by one.  Walk order is FIFO, so entries landing in the same (empty)
   bucket keep tie order; entries still beyond the horizon re-append to
   far in their original order. *)
let reroute_far t =
  (* Detach the whole chain first: [route] may re-append an entry that
     is still beyond the horizon to the (fresh) far list, and walking a
     list that grows at the tail would never terminate. *)
  let h = ref t.far_h in
  t.far_h <- -1;
  t.far_t <- -1;
  t.far_n <- 0;
  t.far_min_ok <- true;
  while !h >= 0 do
    let j = !h in
    h := s_next t j;
    set_prev t j (-1);
    set_next t j (-1);
    route t j
  done

(* ---- fire ---------------------------------------------------------- *)

(* Entries whose bucket is being retired but whose tie position is at or
   past this call's snapshot boundary (scheduled by a callback during
   the call): move them to the past list so advancing [cur_tick] cannot
   strand them.  They are due, so the next call dispatches them from
   the past list, sorted — exactly the reference behaviour. *)
let retire_bucket_to_past t b =
  (* Snapshot the live slots first: [unlink] mutates the vector (dead
     marks, compaction, fill reset) under an in-place walk. *)
  let fill = t.f1.(b) in
  if Array.length t.scratch < fill then t.scratch <- Array.make (Int.max 64 (fill * 2)) 0;
  let vec = t.v1.(b) in
  let m = ref 0 in
  for q = 0 to fill - 1 do
    let s = vec.(q * 2) in
    if s >= 0 then begin
      t.scratch.(!m) <- s;
      incr m
    end
  done;
  for k = 0 to !m - 1 do
    let i = t.scratch.(k) in
    unlink t i;
    link_past_tail t i
  done

(* Count the due batch before any callback runs ([Fire_outcome.scanned]
   counts entries cancelled mid-batch too, so counting after dispatch
   would undercount).  Level-1 buckets are single-tick, so a bucket at
   or below [target] is due in full and its maintained count is the
   answer — no chain walk, which matters because walking the chain here
   would be a second cold pointer-chase over every due row before
   dispatch does the same. *)
let count_due t ~now_i ~target =
  let scanned = ref t.past_n in
  let base = epoch1_base t in
  if target >= t.cur_tick && t.n1_count > 0 then begin
    let upto =
      let lap = base + t.n1 - 1 in
      if target < lap then target - base else t.n1 - 1
    in
    let idx = ref (ffs_in_range t.occ1 ~from:(t.cur_tick - base) ~upto) in
    while !idx >= 0 do
      scanned := !scanned + t.c1.(!idx);
      idx := if !idx + 1 > upto then -1 else ffs_in_range t.occ1 ~from:(!idx + 1) ~upto
    done
  end;
  if target >= base + t.n1 && t.n2_count > 0 then begin
    let target2 = target / t.n1 in
    let cur2 = t.cur_tick / t.n1 in
    let base2 = cur2 - (cur2 land (t.n2 - 1)) in
    let from2 = (cur2 land (t.n2 - 1)) + 1 in
    let idx2 = ref (ffs_in_range t.occ2 ~from:from2 ~upto:(t.n2 - 1)) in
    let stop = ref false in
    while (not !stop) && !idx2 >= 0 do
      let tick2 = base2 + !idx2 in
      if tick2 > target2 then stop := true
      else begin
        (* A bucket strictly below the target span is due in full; only
           the bucket containing the target tick needs a walk. *)
        if tick2 < target2 then scanned := !scanned + t.c2.(!idx2)
        else begin
          let j = ref t.h2.(!idx2) in
          while !j >= 0 do
            if s_at t !j <= now_i then incr scanned;
            j := s_next t !j
          done
        end;
        idx2 :=
          if !idx2 + 1 > t.n2 - 1 then -1
          else ffs_in_range t.occ2 ~from:(!idx2 + 1) ~upto:(t.n2 - 1)
      end
    done
  end;
  if t.far_n > 0 then begin
    ensure_far_min t;
    if t.far_min <= now_i then begin
      let j = ref t.far_h in
      while !j >= 0 do
        if s_at t !j <= now_i then incr scanned;
        j := s_next t !j
      done
    end
  end;
  !scanned

(* Dispatch the past list, sorted by (deadline, tie).  Only reached
   when a deadline was quantized below an already-retired tick or a
   budget stop left due work behind — never the steady pacing path. *)
let dispatch_past t ~seq_limit ~limit ~fired f =
  let n = t.past_n in
  let arr = Array.make n 0 in
  let i = ref t.past_h and k = ref 0 in
  while !i >= 0 do
    arr.(!k) <- !i;
    incr k;
    i := s_next t !i
  done;
  Array.sort
    (fun a b ->
      let c = Int.compare (s_at t a) (s_at t b) in
      if c <> 0 then c else Int.compare (s_seq t a) (s_seq t b))
    arr;
  let k = ref 0 in
  while !k < n && !fired < limit do
    let h = arr.(!k) in
    (* Re-check: an earlier callback may have cancelled or re-armed the
       entry (the slot is then free, or reused with seq >= seq_limit). *)
    if s_loc t h = loc_past && s_seq t h < seq_limit then begin
      unlink t h;
      let at = s_at t h and v = t.s_val.(h) in
      free_slot t h;
      t.count <- t.count - 1;
      incr fired;
      f (Int64.of_int at) v
    end;
    incr k
  done
(* ALLOC001/2/3: the snapshot array, the (at, tie) comparator closure
   and the re-boxed deadline — per-batch work on the slow past-list
   path only (deadlines quantized below an already-retired tick, or a
   budget stop), never the steady in-horizon pacing path. *)
[@@lint.allow "ALLOC001"] [@@lint.allow "ALLOC002"] [@@lint.allow "ALLOC003"]

(* ALLOC001/2/3: the slow past-list path snapshots and sorts slot
   indices (array + comparator closure), each dispatched deadline is
   re-boxed once at the callback boundary (Int64.of_int), and the
   retirement scratch array doubles amortized (it grows to the largest
   mid-call-append batch ever seen, then is reused forever) — the
   steady in-horizon pacing path touches only int arrays. *)
let[@hot] fire_due t ?prefetch ~now ~limit f =
  let pf = match prefetch with Some g -> g | None -> ignore in
  let seq_limit = t.next_seq in
  let now_i = Int64.to_int now in
  let target = now_i / t.gns in
  if t.count = 0 then begin
    (* Nothing anywhere: retire the whole range in O(1).  The wheel and
       far list are empty, so no cascade state is skipped. *)
    if target >= t.cur_tick then t.cur_tick <- target + 1;
    Fire_outcome.pack ~scanned:0 ~fired:0
  end
  else begin
    let scanned = count_due t ~now_i ~target in
    let fired = ref 0 in
    if t.past_n > 0 then dispatch_past t ~seq_limit ~limit ~fired f;
    let break_ = ref false in
    if !fired >= limit && scanned > !fired then break_ := true;
    while (not !break_) && t.cur_tick <= target do
      if t.n1_count = 0 && t.n2_count = 0 then begin
        (* Both wheel levels empty: fast-forward to the earliest far
           entry (or past the whole range) instead of walking epochs. *)
        let jump =
          if t.far_n = 0 then target + 1
          else begin
            ensure_far_min t;
            let fmt = t.far_min / t.gns in
            if fmt > target then target + 1 else if fmt > t.cur_tick then fmt else t.cur_tick
          end
        in
        t.cur_tick <- jump;
        if t.far_n > 0 then reroute_far t;
        if t.cur_tick > target then break_ := true
      end
      else begin
        let base = epoch1_base t in
        let lap_end = if target < base + t.n1 - 1 then target else base + t.n1 - 1 in
        let scanning = ref true in
        while !scanning do
          let idx = ffs_in_range t.occ1 ~from:(t.cur_tick - base) ~upto:(lap_end - base) in
          if idx < 0 then begin
            t.cur_tick <- lap_end + 1;
            scanning := false
          end
          else begin
            let tick = base + idx in
            t.cur_tick <- tick;
            (* Dispatch straight off the pair vector — no snapshot, and
               no slab reads at all on this path.  The vector is ground
               truth: [unlink] marks a cancelled or re-armed pair dead
               in place, so re-reading the pair just before firing IS
               the validity check; the deadline is [tick * gns] by
               construction (a single-tick bucket holds exactly the
               entries quantized to it); and the seq rides in the pair,
               ascending, so the scan stops at the first entry
               scheduled during this call.  Mid-dispatch appends land
               at fill positions past the cut (fresh seq >= seq_limit)
               and are retired to the past list below; restructuring
               (compaction, buffer reset) is suppressed for this one
               bucket via [dispatching], so positions stay stable.  The
               slab row is only written, once, when the fired slot's
               generation is bumped — stores do not stall retirement
               the way demand loads do.

               The scan runs in chunks of 64, each chunk in two phases.
               The warm phase touches every entry's cold lines back to
               back — the payload, then (through the caller's
               [?prefetch] hint) whatever the callback will chase,
               e.g. the pool's flow row — so the touches' cache misses
               overlap up to the core's memory-level parallelism
               instead of serializing one per callback; the dispatch
               phase then runs on warm lines.  Two sweeps, not one:
               [pf]'s target address depends on the payload load, so
               fusing them would serialize each pair.  A touch may hit
               an entry a callback later in the chunk cancels — the
               hint contract allows it. *)
            let fired_here = ref 0 in
            (* One boxed deadline per bucket, not per fire: every entry
               in a single-tick bucket fires at the same quantized time.
               [opaque_identity] pins the box — without it the compiler
               unboxes the let and re-boxes at every [f at64 v] call,
               which is 3 minor words per fire back. *)
            let at64 = Sys.opaque_identity (Int64.of_int (tick * t.gns)) in
            t.dispatching <- idx;
            let stop = ref t.f1.(idx) in
            let q = ref 0 in
            while !q < !stop && not !break_ do
              let chunk_end = if !q + 64 < !stop then !q + 64 else !stop in
              let vec = t.v1.(idx) in
              let a = ref !q in
              while !a < chunk_end && !a < !stop do
                let s = vec.(!a * 2) in
                if s >= 0 then begin
                  if vec.((!a * 2) + 1) >= seq_limit then stop := !a
                  else begin
                    (* Load the slab row too: [free_slot] is about to
                       store to it, and a warmed line turns that RFO
                       miss (which would pile up in the store buffer)
                       into an ownership upgrade. *)
                    ignore (Sys.opaque_identity (s_gen t s));
                    ignore (Sys.opaque_identity t.s_val.(s))
                  end
                end;
                incr a
              done;
              let hi = if chunk_end < !stop then chunk_end else !stop in
              for a = !q to hi - 1 do
                let s = vec.(a * 2) in
                if s >= 0 then pf t.s_val.(s)
              done;
              while !q < hi && not !break_ do
                if !fired >= limit then begin
                  (* Budget stop: withheld entries stay linked with
                     their deadline and tie intact; cur_tick rests on
                     this tick so the next call resumes here. *)
                  scanning := false;
                  break_ := true
                end
                else begin
                  (* Re-read through [t.v1]: a callback's schedule may
                     have grown (replaced) the vector, and a callback's
                     cancel may have killed this pair since the warm
                     sweep. *)
                  let vec = t.v1.(idx) in
                  let s = vec.(!q * 2) in
                  if s >= 0 then begin
                    vec.(!q * 2) <- -1;
                    let v = t.s_val.(s) in
                    free_slot t s;
                    t.count <- t.count - 1;
                    incr fired;
                    incr fired_here;
                    f at64 v
                  end;
                  incr q
                end
              done
            done;
            t.dispatching <- -1;
            (* Bulk accounting for the fired entries (their pairs were
               marked dead above without going through [unlink]). *)
            t.c1.(idx) <- t.c1.(idx) - !fired_here;
            t.n1_count <- t.n1_count - !fired_here;
            if t.c1.(idx) = 0 then begin
              t.f1.(idx) <- 0;
              clear_bit t.occ1 idx;
              let vec = t.v1.(idx) in
              if Array.length vec > 64 then begin
                if t.spare_n < Array.length t.spares then begin
                  t.spares.(t.spare_n) <- vec;
                  t.spare_n <- t.spare_n + 1
                end;
                t.v1.(idx) <- empty_vec
              end
            end;
            if not !break_ then begin
              (* Anything still linked was scheduled or re-armed during
                 this call (tie at or past the snapshot boundary): move
                 it to the past list so advancing cur_tick cannot strand
                 it.  It is due, and the next call dispatches it from
                 there, sorted — exactly the reference behaviour. *)
              if t.c1.(idx) > 0 then retire_bucket_to_past t idx;
              t.cur_tick <- tick + 1
            end
          end
        done;
        if (not !break_) && t.cur_tick = base + t.n1 then begin
          (* Epoch advance.  Far cascades first: a far entry for the
             incoming span must reach its level-2 bucket before that
             bucket spills into level 1. *)
          let tick2 = t.cur_tick / t.n1 in
          if tick2 land (t.n2 - 1) = 0 && t.far_n > 0 then cascade_far t tick2;
          let idx2 = tick2 land (t.n2 - 1) in
          if t.h2.(idx2) >= 0 then cascade_bucket t idx2
        end
      end
    done;
    Fire_outcome.pack ~scanned ~fired:!fired
  end
[@@lint.allow "ALLOC001"] [@@lint.allow "ALLOC002"] [@@lint.allow "ALLOC003"]

(* ---- sized instances for the test suite ---------------------------- *)

module type SIZE = sig
  val buckets : int
end

module Sized (B : SIZE) = struct
  let name = name

  type nonrec 'a t = 'a t
  type nonrec 'a handle = 'a handle

  let create ~tick () = create_sized ~buckets:B.buckets ~tick ()
  let schedule = schedule
  let schedule_i = schedule_i
  let cancel = cancel
  let rearm = rearm
  let pending = pending
  let resident = resident
  let next_deadline = next_deadline
  let words = words
  let handle_pending = handle_pending
  let handle_deadline = handle_deadline
  let fire_due = fire_due
end
