(** The pluggable pending-timer store: the [Timer_backend] operations
    plus {e re-arm} (dynamic deadline update) and stable per-entry
    handles.

    The soft-timer clients that matter — TCP retransmit and delayed-ACK
    timers — re-arm far more often than they fire: every ACK pushes the
    retransmit deadline out.  A store signature without re-arm forces
    cancel + schedule through the public API, which both loses the O(1)
    in-place-update opportunity of modern stores (Lawn's per-duration
    buckets, the grouped sorting queue's in-range update) and invalidates
    the caller's handle.  [Timer_store.S] makes re-arm first-class:
    handles survive any number of re-arms.

    {2 Semantics}

    All implementations share one contract, enforced by the cross-backend
    equivalence suite in [test/test_store.ml]:

    - [schedule] assigns each entry a fresh, monotonically increasing tie
      position; expiry order is (deadline, tie position).
    - [rearm t h ~at] behaves exactly like [cancel t h] followed by
      [schedule t ~at] of the same value — new deadline, {e fresh} tie
      position — except that [h] remains valid.  Returns [false] (and
      does nothing) when the entry already fired or was cancelled.
    - [fire_due t ~now ~limit f] dispatches the {e snapshot} of pending
      entries with deadline [<= now] at call time, in (deadline, tie)
      order.  Entries scheduled or re-armed by callbacks during the call
      are never dispatched in the same call, even if already due.  Each
      entry's state is re-checked immediately before its callback runs:
      an entry cancelled or re-armed by an earlier callback in the same
      batch is skipped.  At most [limit] callbacks run ([max_int] for no
      budget); withheld entries keep their deadline and tie position, so
      the next call dispatches the remainder in the same order, and
      recheck-skips do not consume the budget.  Returns the packed batch
      size and callback count ({!Fire_outcome}); [Fire_outcome.scanned]
      counts the whole due batch, withheld entries included.  [fire_due]
      must not be called from within a callback.
    - [resident] (entries physically held, including any lazily-cancelled
      corpses) stays within [2 * max (pending t) floor] for a small
      per-store constant [floor] — no store leaks cancelled entries.
    - Deadlines must be non-negative and [now] must not go backwards
      across [fire_due] calls. *)

module type S = sig
  type 'a t

  type 'a handle
  (** Stable identity of a scheduled entry; survives re-arms. *)

  val name : string

  val create : tick:Time_ns.span -> unit -> 'a t
  (** [tick] is the finest scheduling granularity (used by wheel-shaped
      stores; others ignore it). *)

  val schedule : 'a t -> at:Time_ns.t -> 'a -> 'a handle

  val schedule_i : 'a t -> at_i:int -> 'a -> 'a handle
  (** [schedule] with the deadline already in integer nanoseconds —
      semantically identical ([schedule_i t ~at_i] = [schedule t
      ~at:(Int64.of_int at_i)]), but the caller skips boxing the
      deadline.  For pools that keep time as native ints
      ({!Rate_clock.Pool}), this is what makes the steady reschedule
      path allocation-free end to end. *)

  val cancel : 'a t -> 'a handle -> unit
  (** No-op on an already-cancelled or fired entry. *)

  val rearm : 'a t -> 'a handle -> at:Time_ns.t -> bool
  (** Move a pending entry to a new deadline, equivalent to
      cancel + schedule (fresh tie position) but keeping the handle
      valid.  [false] when the entry is no longer pending. *)

  val pending : 'a t -> int

  val resident : 'a t -> int
  (** Entries physically held, including lazily-cancelled corpses. *)

  val next_deadline : 'a t -> Time_ns.t option
  (** Exact earliest pending deadline. *)

  val words : 'a t -> int
  (** Analytic estimate of the store's own heap footprint in 64-bit
      words — records, handles, backing arrays, boxed deadlines — but
      {e not} the payload values it borrows.  O(resident) worst case,
      O(1) for the array-backed stores.  Cross-checked against
      [Obj.reachable_words] (with immediate payloads) in
      [test/test_mem.ml]; the memory observatory reports words/timer
      and words/flow from it. *)

  val handle_pending : 'a t -> 'a handle -> bool
  val handle_deadline : 'a t -> 'a handle -> Time_ns.t

  val fire_due :
    'a t ->
    ?prefetch:('a -> unit) ->
    now:Time_ns.t ->
    limit:int ->
    (Time_ns.t -> 'a -> unit) ->
    Fire_outcome.t
  (** [?prefetch] is a memory-warming hint, not a semantic hook: a store
      {e may} call it with the payload of an entry it expects to dispatch
      a few iterations from now, so the callback's state (e.g. a
      flow-id-indexed row in {!Rate_clock.Pool}) is in cache by the time
      the real callback runs.  It may be called with payloads of entries
      that turn out to be cancelled, re-armed, or budget-withheld — it
      must be a pure touch with no observable effect.  Stores are free to
      ignore it; only batch-shaped dispatchers (the pacing wheel) use it. *)
end

module Reference : S
(** Naive model: an unordered list, linear everything.  The oracle the
    equivalence suite compares every real store against. *)

module Of_base (_ : Timer_backend.S) : S
(** Lift a [Timer_backend.S] (ground handles, no re-arm) into the full
    signature.  Re-arm is implemented as base-level cancel + schedule
    behind a stable wrapper cell; a generation stamp keeps a stale base
    entry that was already extracted into a fire batch from firing. *)

val wheel : ?slots:int -> unit -> (module S)
(** The production {!Timing_wheel} with [slots] slots (default 512),
    lifted via {!Of_base}. *)

module Quantize (_ : S) : S
(** The approximate-firing contract extension (§7.2): the wrapped store
    with every deadline rounded {e up} to the [tick] granularity at
    schedule / re-arm time.  All other contract clauses are unchanged —
    tie positions, snapshot batches, budgets, residency.  An
    approximate store such as {!Pacing_wheel} must be observationally
    identical to [Quantize (Reference)]; rounding up means entries
    never fire before their requested deadline. *)

(** {2 Closure-based instances}

    [Softtimer] holds one store chosen at attach time; packing the
    choice as closures avoids threading first-class-module types through
    its API. *)

type ticket = {
  tk_cancel : unit -> unit;
  tk_rearm : Time_ns.t -> bool;
  tk_pending : unit -> bool;
  tk_deadline : unit -> Time_ns.t;
}

type 'a inst = {
  i_name : string;
  i_schedule : at:Time_ns.t -> 'a -> ticket;
  i_next_deadline : unit -> Time_ns.t option;
  i_fire_due :
    now:Time_ns.t -> limit:int -> (Time_ns.t -> 'a -> unit) -> Fire_outcome.t;
  i_pending : unit -> int;
  i_resident : unit -> int;
  i_words : unit -> int;
}

val instantiate : (module S) -> tick:Time_ns.span -> unit -> 'a inst
(** A fresh store of the given kind, packed as closures. *)
