let name = "grouped-sorting"

(* Tuning: a group splits at the median once it outgrows this. *)
let group_max = 256

type gstate =
  | Linked  (* in a group's item array *)
  | Extracted  (* pulled into a fire batch, callback not yet run *)
  | Done  (* fired or cancelled *)

type 'a node = {
  mutable gat : Time_ns.t;
  mutable gseq : int;
  gval : 'a;
  mutable gstate : gstate;
  mutable ggroup : 'a group option;  (* [Some] iff Linked *)
  mutable gidx : int;  (* index in the group's items when Linked *)
}

and 'a group = {
  mutable glo : Time_ns.t;  (* deadline range [glo, ghi) *)
  mutable ghi : Time_ns.t;
  mutable gitems : 'a node option array;
  mutable gn : int;
  (* Split eligibility in O(1): while [gdistinct] is false every item's
     deadline equals [gfirst].  Removals can leave [gdistinct]
     conservatively stale-true; [split] repairs that after sorting. *)
  mutable gfirst : Time_ns.t;
  mutable gdistinct : bool;
}

type 'a t = {
  mutable groups : 'a group list;  (* ascending, ranges partition time *)
  mutable count : int;
  mutable next_seq : int;
  mutable cached_min : Time_ns.t;
  mutable min_valid : bool;
}

type 'a handle = 'a node

let lo_inf = Int64.min_int
let hi_inf = Int64.max_int

(* ALLOC002: one group record (plus its 8-slot array) per split or
   drained-range sweep — amortized over the >= group_max timers that
   flowed through the group. *)
let fresh_group ~lo ~hi =
  {
    glo = lo;
    ghi = hi;
    gitems = Array.make 8 None;
    gn = 0;
    gfirst = Time_ns.zero;
    gdistinct = false;
  }
[@@lint.allow "ALLOC002"]

let create ~tick () =
  ignore tick;
  {
    groups = [ fresh_group ~lo:lo_inf ~hi:hi_inf ];
    count = 0;
    next_seq = 0;
    cached_min = Time_ns.zero;
    min_valid = true;
  }

let fresh_seq t =
  let s = t.next_seq in
  t.next_seq <- s + 1;
  s

(* ALLOC002: the [Some] boxes (and occasional growth doubling) of the
   option-array representation — one box per appended node.  Reachable
   from [fire_due] only on the budget-withheld relink path. *)
let group_append g n =
  if g.gn = 0 then begin
    g.gfirst <- n.gat;
    g.gdistinct <- false
  end
  else if (not g.gdistinct) && not Time_ns.(n.gat = g.gfirst) then g.gdistinct <- true;
  if g.gn = Array.length g.gitems then begin
    let bigger = Array.make (2 * g.gn) None in
    Array.blit g.gitems 0 bigger 0 g.gn;
    g.gitems <- bigger
  end;
  g.gitems.(g.gn) <- Some n;
  n.ggroup <- Some g;
  n.gidx <- g.gn;
  n.gstate <- Linked;
  g.gn <- g.gn + 1
[@@lint.allow "ALLOC002"]

(* Swap-pop: O(1) removal by filling the hole with the last item. *)
let group_remove g n =
  let last = g.gn - 1 in
  (match g.gitems.(last) with
  | Some m when m != n ->
    (* ALLOC002: re-wrapping the moved node is the price of the
       option-array representation; one box per physical removal. *)
    g.gitems.(n.gidx) <- (Some m [@lint.allow "ALLOC002"]);
    m.gidx <- n.gidx
  | _ -> ());
  g.gitems.(last) <- None;
  g.gn <- last;
  n.ggroup <- None

let node_at g i = match g.gitems.(i) with Some n -> n | None -> assert false

(* Split an oversized group: sort, cut at the median deadline (or the
   first deadline above the minimum when the median ties it), and give
   the upper half its own range.  A group of identical deadlines cannot
   split (one side would be empty); it just stays large, which is fine —
   expiry drains it whole.  [gdistinct] filters those out in O(1) at the
   insert site, but removals can leave it stale-true, so the all-equal
   case is re-detected here (sorted extremes coincide) and the flag
   repaired instead of splitting. *)
let split g =
  let nodes = Array.init g.gn (fun i -> node_at g i) in
  Array.sort
    (fun a b ->
      let c = Time_ns.compare a.gat b.gat in
      if c <> 0 then c else Int.compare a.gseq b.gseq)
    nodes;
  let lowest = nodes.(0).gat in
  let highest = nodes.(Array.length nodes - 1).gat in
  if Time_ns.(highest = lowest) then begin
    g.gfirst <- lowest;
    g.gdistinct <- false;
    None
  end
  else begin
    let median = nodes.(Array.length nodes / 2).gat in
    let m =
      if Time_ns.(median > lowest) then median
      else begin
        (* Some deadline above the minimum exists (extremes differ). *)
        let i = ref 0 in
        while Time_ns.(nodes.(!i).gat = lowest) do
          incr i
        done;
        nodes.(!i).gat
      end
    in
    let upper = fresh_group ~lo:m ~hi:g.ghi in
    g.ghi <- m;
    g.gn <- 0;
    Array.fill g.gitems 0 (Array.length g.gitems) None;
    Array.iter
      (fun n -> if Time_ns.(n.gat < m) then group_append g n else group_append upper n)
      nodes;
    Some upper
  end

(* The group whose range contains [at]; ranges partition all of time, so
   one always matches. *)
let rec target_group groups at =
  match groups with
  | [] -> assert false
  | [ g ] -> g
  | g :: rest -> if Time_ns.(at < g.ghi) then g else target_group rest at

let insert t n at =
  n.gat <- at;
  let g = target_group t.groups at in
  group_append g n;
  if g.gn > group_max && g.gdistinct then
    match split g with
    | None -> ()
    | Some upper ->
      let rec add = function
        | [] -> assert false
        | x :: rest -> if x == g then x :: upper :: rest else x :: add rest
      in
      t.groups <- add t.groups

let note_scheduled t at =
  if t.min_valid then
    if t.count = 0 then t.cached_min <- at else t.cached_min <- Time_ns.min t.cached_min at

let schedule t ~at v =
  let n =
    { gat = at; gseq = fresh_seq t; gval = v; gstate = Linked; ggroup = None; gidx = -1 }
  in
  insert t n at;
  note_scheduled t at;
  t.count <- t.count + 1;
  n

let schedule_i t ~at_i v = schedule t ~at:(Int64.of_int at_i) v

let cancel t n =
  match n.gstate with
  | Done -> ()
  | Linked ->
    (match n.ggroup with Some g -> group_remove g n | None -> assert false);
    n.gstate <- Done;
    t.count <- t.count - 1;
    if t.min_valid && t.count > 0 && Time_ns.(n.gat <= t.cached_min) then t.min_valid <- false
  | Extracted ->
    n.gstate <- Done;
    t.count <- t.count - 1

let rearm t n ~at =
  match n.gstate with
  | Done -> false
  | Linked ->
    let g = match n.ggroup with Some g -> g | None -> assert false in
    if t.min_valid && Time_ns.(n.gat <= t.cached_min) then t.min_valid <- false;
    n.gseq <- fresh_seq t;
    if Time_ns.(g.glo <= at) && Time_ns.(at < g.ghi) then begin
      (* The in-place dynamic update the grouped queue is built for: the
         new deadline stays within the group's range, so the node does
         not move at all. *)
      n.gat <- at;
      if g.gn = 1 then g.gfirst <- at
      else if (not g.gdistinct) && not Time_ns.(at = g.gfirst) then g.gdistinct <- true
    end
    else begin
      group_remove g n;
      insert t n at
    end;
    note_scheduled t at;
    true
  | Extracted ->
    (* Leaves the fire batch (dispatch skips non-Extracted nodes) and
       re-enters a group with a fresh tie position. *)
    n.gseq <- fresh_seq t;
    insert t n at;
    note_scheduled t at;
    true

let pending t = t.count
let resident t = t.count  (* cancellation is a physical swap-pop *)

(* Record (6) + boxed cached_min (3) + per group: record (7) + groups
   cons (3) + range/first boxes (~6) + its item array (capacity + 1) +
   per linked node: record (7) + boxed deadline (3) + [Some] item box
   (2) + [Some] group box (2). *)
let words t =
  let groups =
    List.fold_left (fun acc g -> acc + 17 + Array.length g.gitems) 0 t.groups
  in
  6 + 3 + groups + (14 * t.count)

let handle_pending _t n = n.gstate <> Done
let handle_deadline _t n = n.gat

let scan_min t =
  (* Ranges are disjoint and ascending: the first non-empty group holds
     the global minimum; groups are unsorted inside, so scan its items
     (at most ~2x group_max of them). *)
  let rec first = function
    | [] -> None
    | g :: rest ->
      if g.gn = 0 then first rest
      else begin
        let best = ref (node_at g 0).gat in
        for i = 1 to g.gn - 1 do
          let at = (node_at g i).gat in
          if Time_ns.(at < !best) then best := at
        done;
        Some !best
      end
  in
  first t.groups

let next_deadline t =
  if t.count = 0 then None
  else if t.min_valid then Some t.cached_min
  else begin
    match scan_min t with
    | Some m ->
      t.cached_min <- m;
      t.min_valid <- true;
      Some m
    | None -> None  (* unreachable: count > 0 implies a linked node *)
  end

(* ALLOC001/2: snapshot-batch contract (timer_store.mli) — the sweep
   extracts due nodes into a list before any callback runs; the cons
   cells, the sweep/extract closures and the replacement group for a
   drained range are per-batch work, not per trigger-state check. *)
let[@hot] fire_due t ?prefetch:_ ~now ~limit f =
  let batch = ref [] in
  let extract n =
    n.ggroup <- None;
    n.gstate <- Extracted;
    batch := n :: !batch
  in
  (* Sweep groups from the low end.  A group entirely below [now] is
     drained whole (sorting happens only now, at expiry — the "sorting
     queue" half of the design); the straddling group is partitioned in
     place; everything beyond is untouched.  Groups emptied by the sweep
     are dropped, with the successor inheriting their range so the
     ranges keep partitioning all of time. *)
  let rec sweep groups =
    match groups with
    | [] -> [ fresh_group ~lo:lo_inf ~hi:hi_inf ]
    | g :: rest ->
      if Time_ns.(g.ghi <= now) || g.gn = 0 then begin
        for i = 0 to g.gn - 1 do
          extract (node_at g i)
        done;
        Array.fill g.gitems 0 (Array.length g.gitems) None;
        g.gn <- 0;
        let tail = sweep rest in
        (match tail with x :: _ -> x.glo <- g.glo | [] -> ());
        tail
      end
      else if Time_ns.(g.glo > now) then groups
      else begin
        (* Straddling group: extract due items by swap-pop. *)
        let i = ref 0 in
        while !i < g.gn do
          let n = node_at g !i in
          if Time_ns.(n.gat <= now) then begin
            group_remove g n;
            extract n
          end
          else incr i
        done;
        groups
      end
  in
  t.groups <- sweep t.groups;
  let due =
    List.sort
      (fun a b ->
        let c = Time_ns.compare a.gat b.gat in
        if c <> 0 then c else Int.compare a.gseq b.gseq)
      !batch
  in
  (match due with [] -> () | _ :: _ -> t.min_valid <- false);
  let scanned = List.length due in
  let fired = ref 0 in
  List.iter
    (fun n ->
      if n.gstate = Extracted then
        if !fired < limit then begin
          n.gstate <- Done;
          t.count <- t.count - 1;
          incr fired;
          f n.gat n.gval
        end
        else begin
          (* Budget exhausted: relink into the covering group with
             [gseq] untouched (and [t.count] never decremented), so the
             next call's expiry sort dispatches the remainder in the
             same (deadline, tie) order.  Groups are unsorted inside, so
             append position is irrelevant. *)
          group_append (target_group t.groups n.gat) n
        end)
    due;
  Fire_outcome.pack ~scanned ~fired:!fired
[@@lint.allow "ALLOC001"] [@@lint.allow "ALLOC002"]
