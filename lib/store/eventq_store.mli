(** Timer store over the engine's flat 4-ary event queue.

    The same technique the simulation engine's slot table uses
    ([lib/simcore/engine.ml]): a {!Eventq} of [(time, generation)] keys
    whose payloads index a slot array, lazy cancellation by generation
    mismatch, and threshold compaction via [Eventq.rebuild] once stale
    entries reach both a floor (64) and the live count.  Re-arm pushes a
    fresh queue entry under a new generation and lets the old one go
    stale — O(log n), no search.

    Cache-friendly (three unboxed int arrays) and allocation-light, at
    the price of corpses: [resident] can transiently exceed [pending]
    by the compaction slack.

    Deadlines must fit in an OCaml [int] (63-bit nanoseconds — ~292
    simulated years), which the simulation guarantees by construction.

    Conforms to the {!Timer_store.S} contract; see [timer_store.mli] for
    the fire/re-arm semantics. *)

include Timer_store.S
