let name = "lawn"

type nstate =
  | Linked  (* in its bucket's FIFO *)
  | Extracted  (* pulled into a fire batch, callback not yet run *)
  | Done  (* fired or cancelled *)

type 'a node = {
  mutable nat : Time_ns.t;
  mutable nseq : int;
  nval : 'a;
  mutable nstate : nstate;
  mutable nprev : 'a node option;
  mutable nnext : 'a node option;
  mutable nbucket : 'a bucket;
}

and 'a bucket = {
  bdur : Time_ns.span;
  mutable bhead : 'a node option;
  mutable btail : 'a node option;
}

type 'a t = {
  tbl : (Time_ns.span, 'a bucket) Hashtbl.t;  (* lookup only (DET004) *)
  mutable buckets_rev : 'a bucket list;  (* creation order, reversed *)
  mutable last_now : Time_ns.t;
  mutable count : int;
  mutable next_seq : int;
  mutable cached_min : Time_ns.t;
  mutable min_valid : bool;
}

type 'a handle = 'a node

let create ~tick () =
  ignore tick;
  {
    tbl = Hashtbl.create 16;
    buckets_rev = [];
    last_now = Time_ns.zero;
    count = 0;
    next_seq = 0;
    cached_min = Time_ns.zero;
    min_valid = true;  (* vacuously: empty *)
  }

let fresh_seq t =
  let s = t.next_seq in
  t.next_seq <- s + 1;
  s

let bucket_for t dur =
  match Hashtbl.find_opt t.tbl dur with
  | Some b -> b
  | None ->
    let b = { bdur = dur; bhead = None; btail = None } in
    Hashtbl.replace t.tbl dur b;
    t.buckets_rev <- b :: t.buckets_rev;
    b

(* Append at the tail.  Within a bucket, deadlines are non-decreasing in
   insertion order: equal durations inserted under a monotone [last_now]
   produce monotone deadlines.  The only exception is the zero-duration
   bucket, which absorbs clamped past deadlines — but those are all
   already due, so head-popping still never strands a due entry (the
   zero bucket is walked in full instead of popped, see below). *)
let link_tail b n =
  n.nprev <- b.btail;
  n.nnext <- None;
  (match b.btail with Some tl -> tl.nnext <- Some n | None -> b.bhead <- Some n);
  b.btail <- Some n

(* Prepend at the head: only used to return budget-withheld due nodes
   to their bucket.  A withheld node's deadline is [<= now], hence no
   later than anything the pop loop left behind, so head insertion
   preserves the bucket's monotone-deadline invariant. *)
let link_head b n =
  n.nnext <- b.bhead;
  n.nprev <- None;
  (match b.bhead with Some hd -> hd.nprev <- Some n | None -> b.btail <- Some n);
  b.bhead <- Some n
(* ALLOC002: the [Some _] links allocate, but this only runs for
   budget-withheld nodes — the truncated tail of a [fire_due] batch,
   never the steady-state fire path. *)
[@@lint.allow "ALLOC002"]

let unlink b n =
  (match n.nprev with Some p -> p.nnext <- n.nnext | None -> b.bhead <- n.nnext);
  (match n.nnext with Some s -> s.nprev <- n.nprev | None -> b.btail <- n.nprev);
  n.nprev <- None;
  n.nnext <- None

let note_scheduled t at =
  if t.min_valid then
    if t.count = 0 then t.cached_min <- at else t.cached_min <- Time_ns.min t.cached_min at

let insert t n at =
  let dur = Time_ns.max (Time_ns.( - ) at t.last_now) 0L in
  let b = bucket_for t dur in
  n.nat <- at;
  n.nbucket <- b;
  link_tail b n

let schedule t ~at v =
  let dur = Time_ns.max (Time_ns.( - ) at t.last_now) 0L in
  let b = bucket_for t dur in
  let n =
    {
      nat = at;
      nseq = fresh_seq t;
      nval = v;
      nstate = Linked;
      nprev = None;
      nnext = None;
      nbucket = b;
    }
  in
  link_tail b n;
  note_scheduled t at;
  t.count <- t.count + 1;
  n

let schedule_i t ~at_i v = schedule t ~at:(Int64.of_int at_i) v

let cancel t n =
  match n.nstate with
  | Done -> ()
  | Linked ->
    unlink n.nbucket n;
    n.nstate <- Done;
    t.count <- t.count - 1;
    if t.min_valid && t.count > 0 && Time_ns.(n.nat <= t.cached_min) then t.min_valid <- false
  | Extracted ->
    (* Already pulled into the current fire batch; the dispatch loop
       will skip it. *)
    n.nstate <- Done;
    t.count <- t.count - 1

let rearm t n ~at =
  match n.nstate with
  | Done -> false
  | Linked ->
    unlink n.nbucket n;
    (* The departing deadline may have been the cached minimum. *)
    if t.min_valid && Time_ns.(n.nat <= t.cached_min) then t.min_valid <- false;
    n.nseq <- fresh_seq t;
    insert t n at;
    note_scheduled t at;
    true
  | Extracted ->
    (* Re-arming a batch member: it leaves the batch (the dispatch loop
       skips non-Extracted nodes) and re-enters a bucket with a fresh
       tie position, exactly cancel + schedule. *)
    n.nseq <- fresh_seq t;
    n.nstate <- Linked;
    insert t n at;
    note_scheduled t at;
    true

let pending t = t.count
let resident t = t.count  (* cancellation unlinks physically: no corpses *)

(* Record (8) + hashtable (record 5 + 17-slot bucket array) + two boxed
   int64 fields (6) + per duration bucket: hashtable binding (4) +
   bucket record (4) + boxed duration key (3) + [buckets_rev] cons (3)
   + per linked node: record (8) + boxed deadline (3) + on average two
   [Some] link boxes pointing at it (4). *)
let words t =
  8 + 22 + 6 + (14 * List.length t.buckets_rev) + (15 * t.count)

let handle_pending _t n = n.nstate <> Done
let handle_deadline _t n = n.nat

let scan_min t =
  let best = ref None in
  let consider at =
    match !best with
    | None -> best := Some at
    | Some m -> if Time_ns.(at < m) then best := Some at
  in
  List.iter
    (fun b ->
      if Time_ns.(b.bdur = 0L) then begin
        (* The zero bucket may hold clamped past deadlines out of order;
           walk it in full.  It is drained at every fire_due, so it is
           short-lived. *)
        let rec walk = function
          | None -> ()
          | Some n ->
            consider n.nat;
            walk n.nnext
        in
        walk b.bhead
      end
      else match b.bhead with Some n -> consider n.nat | None -> ())
    (List.rev t.buckets_rev);
  !best

let next_deadline t =
  if t.count = 0 then None
  else if t.min_valid then Some t.cached_min
  else begin
    match scan_min t with
    | Some m ->
      t.cached_min <- m;
      t.min_valid <- true;
      Some m
    | None -> None  (* unreachable: count > 0 implies a linked node *)
  end

(* ALLOC001/2: snapshot-batch contract (timer_store.mli) — due nodes
   are unlinked into a list before any callback runs, so the cons cells
   and local walk/pop/extract closures are per-batch work amortized
   over the fired timers; a check that fires nothing allocates nothing
   (the buckets are walked in place). *)
let[@hot] fire_due t ?prefetch:_ ~now ~limit f =
  t.last_now <- Time_ns.max t.last_now now;
  (* Collect the due snapshot: pop each positive-duration bucket from the
     head while due (FIFO order = deadline order within a bucket), walk
     the zero bucket in full. *)
  let batch = ref [] in
  let extract n =
    n.nstate <- Extracted;
    batch := n :: !batch
  in
  List.iter
    (fun b ->
      if Time_ns.(b.bdur = 0L) then begin
        let rec walk = function
          | None -> ()
          | Some n ->
            let next = n.nnext in
            if Time_ns.(n.nat <= now) then begin
              unlink b n;
              extract n
            end;
            walk next
        in
        walk b.bhead
      end
      else begin
        let rec pop () =
          match b.bhead with
          | Some n when Time_ns.(n.nat <= now) ->
            unlink b n;
            extract n;
            pop ()
          | _ -> ()
        in
        pop ()
      end)
    (List.rev t.buckets_rev);
  let due =
    List.sort
      (fun a b ->
        let c = Time_ns.compare a.nat b.nat in
        if c <> 0 then c else Int.compare a.nseq b.nseq)
      !batch
  in
  (match due with [] -> () | _ :: _ -> t.min_valid <- false);
  let scanned = List.length due in
  let fired = ref 0 in
  let withheld = ref [] in
  List.iter
    (fun n ->
      (* Still Extracted = not cancelled or re-armed by an earlier
         callback in this batch. *)
      if n.nstate = Extracted then
        if !fired < limit then begin
          n.nstate <- Done;
          t.count <- t.count - 1;
          incr fired;
          f n.nat n.nval
        end
        else withheld := n :: !withheld)
    due;
  (* Budget exhausted: relink withheld nodes at the head of their
     original bucket, latest first so the earliest ends up at the head —
     the next call pops the remainder in the same (deadline, tie) order
     ([nseq] untouched, [t.count] never decremented for them). *)
  List.iter
    (fun n ->
      n.nstate <- Linked;
      link_head n.nbucket n)
    !withheld;
  Fire_outcome.pack ~scanned ~fired:!fired
[@@lint.allow "ALLOC001"] [@@lint.allow "ALLOC002"]
