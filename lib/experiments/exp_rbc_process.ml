type row = {
  min_interval_us : float;
  avg_interval_us : float;
  stddev_us : float;
  sends : int;
}

type table = {
  target_us : float;
  soft : row list;
  hw_avg_us : float;
  hw_stddev_us : float;
  hw_lost_pct : float;
}

let a_flow_send = Profile.intern [ "kernel"; "ip_output"; "rbc_flow" ]

(* Every transmission of the measured flow is a real trip through the IP
   output loop of the busy machine (the flow's own 1 Gbps interface). *)
let send_cost machine _now =
  Machine.submit_quantum machine ~attr:a_flow_send ~prio:Cpu.prio_kernel ~work_us:7.0
    ~trigger:(Some Trigger.Ip_output)
    (fun _ -> ());
  true

let soft_cell (cfg : Exp_config.t) ~target_us ~min_us =
  let wcfg =
    { Webserver.default_config with Webserver.attach_facility = true; seed = cfg.Exp_config.seed }
  in
  let t = Webserver.create wcfg in
  let st = match Webserver.facility t with Some s -> s | None -> assert false in
  let machine = Webserver.machine t in
  let clock =
    (* Each table cell reads its own clock's mean/stddev, so the clock
       opts out of the shared cohort histogram. *)
    Rate_clock.create st
      ~intervals:(Hdr.create ~lowest:0.01 ())
      ~target_interval:(Time_ns.of_us target_us)
      ~min_interval:(Time_ns.of_us min_us)
      ~send:(send_cost machine)
      ()
  in
  ignore
    (Engine.schedule_after (Webserver.engine t) (Exp_config.warmup cfg) (fun () ->
         Rate_clock.start clock)
      : Engine.handle);
  Webserver.run t ~warmup:(Exp_config.warmup cfg) ~measure:(Exp_config.measure cfg);
  let s = Rate_clock.intervals clock in
  {
    min_interval_us = min_us;
    avg_interval_us = Hdr.mean s;
    stddev_us = Hdr.stddev s;
    sends = Rate_clock.sends clock;
  }

let hw_cell (cfg : Exp_config.t) ~target_us =
  let wcfg = { Webserver.default_config with Webserver.seed = cfg.Exp_config.seed } in
  let t = Webserver.create wcfg in
  let machine = Webserver.machine t in
  let pacer =
    Hw_pacer.create machine ~interval:(Time_ns.of_us target_us) ~send:(send_cost machine) ()
  in
  ignore
    (Engine.schedule_after (Webserver.engine t) (Exp_config.warmup cfg) (fun () ->
         Hw_pacer.start pacer)
      : Engine.handle);
  Webserver.run t ~warmup:(Exp_config.warmup cfg) ~measure:(Exp_config.measure cfg);
  let s = Hw_pacer.intervals pacer in
  ( Hdr.mean s,
    Hdr.stddev s,
    100.0 *. float_of_int (Hw_pacer.ticks_lost pacer)
    /. float_of_int (max 1 (Hw_pacer.ticks_raised pacer)) )

let min_intervals (cfg : Exp_config.t) =
  if cfg.Exp_config.quick then [ 12.0; 20.0; 35.0 ] else [ 12.0; 15.0; 20.0; 25.0; 30.0; 35.0 ]

let compute cfg =
  let per_target target_us =
    let soft = List.map (fun m -> soft_cell cfg ~target_us ~min_us:m) (min_intervals cfg) in
    let hw_avg, hw_std, hw_lost = hw_cell cfg ~target_us in
    { target_us; soft; hw_avg_us = hw_avg; hw_stddev_us = hw_std; hw_lost_pct = hw_lost }
  in
  [ per_target 40.0; per_target 60.0 ]

let paper_soft = function
  | 40.0, 12.0 -> Some (40.0, 34.5)
  | 40.0, 15.0 -> Some (48.0, 31.6)
  | 40.0, 20.0 -> Some (51.9, 30.9)
  | 40.0, 25.0 -> Some (57.5, 30.9)
  | 40.0, 30.0 -> Some (61.0, 30.5)
  | 40.0, 35.0 -> Some (65.9, 30.1)
  | 60.0, 12.0 -> Some (60.0, 35.9)
  | 60.0, 15.0 -> Some (60.0, 33.2)
  | 60.0, 20.0 -> Some (60.0, 32.3)
  | 60.0, 25.0 -> Some (60.0, 31.2)
  | 60.0, 30.0 -> Some (61.0, 30.5)
  | 60.0, 35.0 -> Some (65.9, 30.0)
  | _ -> None

let render _cfg tables =
  let open Tablefmt in
  String.concat "\n"
    (List.map
       (fun tab ->
         let t =
           create
             ~title:
               (Printf.sprintf
                  "Table %d -- rate-based clocking, target transmission interval = %.0f us"
                  (if tab.target_us = 40.0 then 4 else 5)
                  tab.target_us)
             ~columns:
               [
                 ("min intvl (us)", Right);
                 ("soft avg (us)", Right);
                 ("soft stddev", Right);
                 ("paper avg", Right);
                 ("paper stddev", Right);
               ]
         in
         List.iter
           (fun r ->
             let pa, ps =
               match paper_soft (tab.target_us, r.min_interval_us) with
               | Some (a, s) -> (cell_f ~decimals:1 a, cell_f ~decimals:1 s)
               | None -> ("-", "-")
             in
             add_row t
               [
                 cell_f ~decimals:0 r.min_interval_us;
                 cell_f ~decimals:1 r.avg_interval_us;
                 cell_f ~decimals:1 r.stddev_us;
                 pa;
                 ps;
               ])
           tab.soft;
         add_rule t;
         let paper_hw = if tab.target_us = 40.0 then (43.6, 26.8) else (63.0, 27.7) in
         add_row t
           [
             "hardware timer";
             cell_f ~decimals:1 tab.hw_avg_us;
             cell_f ~decimals:1 tab.hw_stddev_us;
             cell_f ~decimals:1 (fst paper_hw);
             cell_f ~decimals:1 (snd paper_hw);
           ];
         render t
         ^ Printf.sprintf "  hardware timer ticks lost to disabled sections: %.1f%%\n"
             tab.hw_lost_pct)
       tables)

let run cfg =
  Exp_config.header "Tables 4/5: rate-clocked transmission process" ^ render cfg (compute cfg)
