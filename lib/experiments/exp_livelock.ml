type row = {
  offered_kpps : float;
  interrupt_goodput : float;
  hybrid_goodput : float;
  softpoll_goodput : float;
}

type mode = Interrupts | Hybrid | Softpoll

(* Per-packet protocol+app processing beyond the interrupt cost. *)
let process_us = 10.0
let warm = 0.7

let a_rx_cold = Profile.intern [ "softintr"; "rx_process"; "cold" ]
let a_rx_warm = Profile.intern [ "softintr"; "rx_process"; "warm" ]

let goodput (cfg : Exp_config.t) ~mode ~rate_pps =
  let engine = Engine.create () in
  let machine = Machine.create engine in
  let processed = ref 0 in
  let nic_ref = ref None in
  let the_nic () = match !nic_ref with Some n -> n | None -> assert false in
  (* Process a batch: first packet cold, rest warm; in hybrid mode, ask
     the NIC for more work when done and keep going. *)
  let on_rx_batch _now batch =
    let items =
      List.concat
        (List.mapi
           (fun i _pkt ->
             let cost = if i = 0 then process_us else process_us *. warm in
             let attr = if i = 0 then a_rx_cold else a_rx_warm in
             [
               Exec.Quantum
                 {
                   Kernel.prio = Cpu.prio_softintr;
                   work_us = cost;
                   trigger = None;
                   attr;
                   entry_us = 0.0;
                   entry_attr = attr;
                 };
               Exec.emit (fun _ -> incr processed);
             ])
           batch)
    in
    Exec.run machine items (fun _ ->
        if mode = Hybrid then
          (* Poll-on-completion: the drain hands us the next batch
             through on_rx_batch; 0 means interrupts were re-enabled. *)
          ignore (Nic.hybrid_done (the_nic ()) : int))
  in
  let nic =
    Nic.create machine ~name:"flood0" ~bandwidth_bps:1e9 ~wire_latency:(Time_ns.of_us 5.0)
      ~tx_deliver:(fun _ _ -> ())
      ~on_rx_batch ~rx_ring_capacity:256 ()
  in
  nic_ref := Some nic;
  let facility_poller =
    match mode with
    | Interrupts ->
      Nic.set_mode nic Nic.Interrupt_driven;
      None
    | Hybrid ->
      Nic.set_mode nic Nic.Hybrid;
      None
    | Softpoll ->
      Nic.set_mode nic Nic.Polled;
      let st = Softtimer.attach machine in
      let poller =
        Net_poll.create st ~quota:4.0 ~poll:(fun _ -> Nic.poll nic) ()
      in
      Net_poll.start poller;
      Some poller
  in
  ignore facility_poller;
  (* The flood: deterministic exponential inter-arrivals at [rate_pps]. *)
  let rng = Prng.create ~seed:cfg.Exp_config.seed in
  let gap_dist = Dist.Exponential (1e6 /. rate_pps) in
  let rec flood () =
    ignore
      (Engine.schedule_after engine (Dist.span gap_dist rng) (fun () ->
           Nic.deliver nic
             (Packet.create ~size_bytes:1500 ~meta:() ~born:(Engine.now engine));
           flood ())
        : Engine.handle)
  in
  flood ();
  let span = if cfg.Exp_config.quick then 0.4 else 1.5 in
  Engine.run_until engine (Time_ns.of_sec span);
  float_of_int !processed /. span

let rates (cfg : Exp_config.t) =
  if cfg.Exp_config.quick then [ 20e3; 60e3; 120e3; 200e3 ]
  else [ 10e3; 20e3; 40e3; 60e3; 80e3; 100e3; 140e3; 200e3; 300e3 ]

let compute cfg =
  List.map
    (fun rate_pps ->
      {
        offered_kpps = rate_pps /. 1e3;
        interrupt_goodput = goodput cfg ~mode:Interrupts ~rate_pps;
        hybrid_goodput = goodput cfg ~mode:Hybrid ~rate_pps;
        softpoll_goodput = goodput cfg ~mode:Softpoll ~rate_pps;
      })
    (rates cfg)

let render _cfg rows =
  let open Tablefmt in
  let t =
    create
      ~title:
        "Extension -- receiver livelock under overload (goodput, packets/s; 10 us/packet stack cost)"
      ~columns:
        [
          ("offered (kpps)", Right);
          ("interrupts", Right);
          ("MR hybrid", Right);
          ("soft-timer poll", Right);
        ]
  in
  List.iter
    (fun r ->
      add_row t
        [
          cell_f ~decimals:0 r.offered_kpps;
          cell_f ~decimals:0 r.interrupt_goodput;
          cell_f ~decimals:0 r.hybrid_goodput;
          cell_f ~decimals:0 r.softpoll_goodput;
        ])
    rows;
  render t
  ^ "  expected: interrupt goodput collapses past saturation (livelock); the hybrid and\n\
    \  soft-timer polling saturate flat (Mogul & Ramakrishnan '97; paper Section 6).\n"

let run cfg =
  Exp_config.header "Extension: receiver livelock (interrupts vs hybrid vs soft polling)"
  ^ render cfg (compute cfg)
