(** Extension experiment: million-flow rate-based clocking.

    Sweeps a {!Paced_sender.Fleet} of rate-clocked flows from 10^3 to
    10^6 (10^4 under [--quick]) over the approximate pacing wheel and
    the eventq / lawn exact baselines, reporting sends, catch-up
    fraction, fire-delay quantiles and resident bytes per flow.

    Runs entirely on simulated time with seeded randomness — the
    [--store] flag does not affect it (the sweep instantiates its own
    stores, that comparison being the experiment).  Wall-clock ns per
    flow per tick is measured separately by [bench/pacer_bench.exe]. *)

type cell = {
  store : string;
  flows : int;
  sends : int;
  catch_up_pct : float;
  d50_us : float;
  d99_us : float;
  dmax_us : float;
  kb_per_flow : float;
  store_words : int;  (** analytic store footprint ({!Timer_store.S.words}) *)
  pool_words : int;  (** fleet pool arrays: flow state + handles *)
}

val words_per_flow : cell -> float
(** Analytic (store + pool) words per flow — the memory-gap number
    tracked by EXPERIMENTS.md against ROADMAP item 4. *)

val compute : Exp_config.t -> cell list
(** One cell per (store variant, fleet size), in sweep order. *)

val run_census : Exp_config.t -> cell list
(** The same sweep as {!compute}, but each fleet is registered as a
    live {!Memstats} census source under [mem;pacer;<store>;<flows>]
    (split store vs pool) and kept alive by the provider closures until
    [Memstats.reset_census] — so the conservation invariant holds over
    the registered words.  Main-domain-only (census registration
    mutates the Profile category registry): call it from the CLI [mem]
    path, never inside a Runner job. *)

val run : Exp_config.t -> string
