(** Extension experiment: million-flow rate-based clocking.

    Sweeps a {!Paced_sender.Fleet} of rate-clocked flows from 10^3 to
    10^6 (10^4 under [--quick]) over the approximate pacing wheel and
    the eventq / lawn exact baselines, reporting sends, catch-up
    fraction, fire-delay quantiles and resident bytes per flow.

    Runs entirely on simulated time with seeded randomness — the
    [--store] flag does not affect it (the sweep instantiates its own
    stores, that comparison being the experiment).  Wall-clock ns per
    flow per tick is measured separately by [bench/pacer_bench.exe]. *)

type cell = {
  store : string;
  flows : int;
  sends : int;
  catch_up_pct : float;
  d50_us : float;
  d99_us : float;
  dmax_us : float;
  kb_per_flow : float;
}

val compute : Exp_config.t -> cell list
(** One cell per (store variant, fleet size), in sweep order. *)

val run : Exp_config.t -> string
