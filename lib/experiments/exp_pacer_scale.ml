(* Million-flow rate-based clocking (extension of §4.1/§5.7).

   The paper paces a handful of connections; datacenter NICs pace
   millions (Carousel, SIGCOMM'17; Eiffel, NSDI'19).  This experiment
   sweeps a fleet of rate-clocked flows from 10^3 to 10^6 over three
   timer stores — the Eiffel-style approximate pacing wheel against the
   eventq and lawn exact baselines — and reports, per cell: segments
   sent, catch-up fraction, fire-delay quantiles (for the wheel these
   include the deadline quantization, which is the point of measuring
   them) and resident fleet bytes per flow.

   Everything runs on simulated time driven by a fixed check cadence
   (one {!Paced_sender.Fleet.check} per facility tick), with flow rates
   drawn from a seeded {!Prng}: two same-seed runs are bit-identical,
   so verify-determinism covers this experiment like any other.  The
   wall-clock cost side (ns per flow per tick) lives in
   [bench/pacer_bench.exe], which shares this fleet setup. *)

let tick_us = 10.0
let tick = Time_ns.of_us tick_us

(* 32 rate classes spanning 103 µs .. 2056 µs target intervals — the
   short-to-long mix of a busy egress, all far above the 12 µs burst
   floor.  Deliberately off the 10 µs tick grid, so the wheel's
   round-up quantization actually shows in the delay columns. *)
let classes = 32
let class_target_us k = 103.0 +. (63.0 *. float_of_int k)

type cell = {
  store : string;
  flows : int;
  sends : int;
  catch_up_pct : float;
  d50_us : float;
  d99_us : float;
  dmax_us : float;
  kb_per_flow : float;
  store_words : int;  (* analytic store footprint (Timer_store words) *)
  pool_words : int;  (* fleet pool arrays: flow state + handles *)
}

let words_per_flow c = float_of_int (c.store_words + c.pool_words) /. float_of_int (max 1 c.flows)

module type RUNNER = sig
  val max_flows : int
  val run : Exp_config.t -> flows:int -> window:Time_ns.span -> cell

  val run_live : Exp_config.t -> flows:int -> window:Time_ns.span -> cell * (unit -> int) * (unit -> int)
  (** Same sweep, but also returns live store/pool word providers whose
      closures keep the fleet alive — for the memory-observatory census,
      where conservation (attributed <= GC live) only makes sense over
      memory that is actually retained. *)
end

(* [store_tick_us] is the granularity handed to the store — for the
   pacing wheel, its bucket width.  Checks always run every [tick_us],
   so a coarser store tick isolates the cost of approximation itself. *)
module type CONF = sig
  module Store : Timer_store.S

  val label : string
  val store_tick_us : float
end

module Make_runner (C : CONF) = struct
  module F = Paced_sender.Fleet (C.Store)

  let name = C.label
  let max_flows = max_int

  let run_fleet (cfg : Exp_config.t) ~flows ~window =
    (* Per-cell stream: independent of sweep order, stable across
       quick/full size lists. *)
    let rng = Prng.create ~seed:(cfg.Exp_config.seed + (31 * flows)) in
    let bytes_on_wire = ref 0 in
    let fleet =
      F.create
        ~intervals:(Hdr.create ~lowest:0.01 ())
        ~tick:(Time_ns.of_us C.store_tick_us)
        ~transmit:(fun _fid c -> bytes_on_wire := !bytes_on_wire + c.Packet.Pool.size_bytes)
        ()
    in
    for fid = 0 to flows - 1 do
      let target_us = class_target_us (Prng.int rng classes) in
      let id =
        F.add fleet ~total_segments:max_int
          ~target_interval:(Time_ns.of_us target_us)
          ~min_interval:(Time_ns.of_us 12.0)
      in
      assert (id = fid);
      (* Stagger train starts across ~1 ms so the sweep measures steady
         pacing, not one synchronized thundering herd. *)
      F.start fleet fid ~now:(Time_ns.of_us (tick_us *. float_of_int (fid mod 101)))
    done;
    let steps = Int64.to_int (Int64.div window (Time_ns.of_us tick_us)) in
    for s = 1 to steps do
      ignore (F.check fleet ~now:(Time_ns.mul tick s) ~limit:max_int : Fire_outcome.t)
    done;
    let sends = F.sends fleet in
    let d = F.delays fleet in
    let words = Obj.reachable_words (Obj.repr fleet) in
    ( {
      store = name;
      flows;
      sends;
      catch_up_pct = 100.0 *. float_of_int (F.catch_ups fleet) /. float_of_int (max 1 sends);
      d50_us = Hdr.percentile d 50.0;
      d99_us = Hdr.percentile d 99.0;
      dmax_us = Hdr.max d;
      kb_per_flow = float_of_int (words * 8) /. 1024.0 /. float_of_int (max 1 flows);
      store_words = F.store_words fleet;
      pool_words = F.pool_words fleet;
    },
    fleet )

  let run cfg ~flows ~window = fst (run_fleet cfg ~flows ~window)

  let run_live cfg ~flows ~window =
    let cell, fleet = run_fleet cfg ~flows ~window in
    (cell, (fun () -> F.store_words fleet), (fun () -> F.pool_words fleet))
end

let runners : (module RUNNER) list =
  [
    (module Make_runner (struct
      module Store = Pacing_wheel

      let label = "pacing-wheel"
      let store_tick_us = tick_us
    end));
    (module Make_runner (struct
      module Store = Pacing_wheel

      (* Bucket width 10x the check cadence: the approximation is no
         longer hidden under dispatch granularity, so this row prices
         coarse buckets in delay terms. *)
      let label = "pacing-wheel/100us"
      let store_tick_us = 100.0
    end));
    (module Make_runner (struct
      module Store = Eventq_store

      let label = "eventq"
      let store_tick_us = tick_us
    end));
    (module Make_runner (struct
      module Store = Lawn

      let label = "lawn"
      let store_tick_us = tick_us
    end));
  ]

let sizes (cfg : Exp_config.t) =
  if cfg.Exp_config.quick then [ 1_000; 10_000 ]
  else [ 1_000; 10_000; 100_000; 1_000_000 ]

(* Shrink the measurement window as the fleet grows: the aggregate send
   rate scales with the flow count, and the quantile estimates converge
   long before 10^7 sends. *)
let window (cfg : Exp_config.t) ~flows =
  if cfg.Exp_config.quick then Time_ns.of_ms 10.0
  else if flows <= 10_000 then Time_ns.of_ms 20.0
  else if flows <= 100_000 then Time_ns.of_ms 10.0
  else Time_ns.of_ms 5.0

let compute cfg =
  List.concat_map
    (fun (module R : RUNNER) ->
      List.filter_map
        (fun flows ->
          if flows > R.max_flows then None
          else Some (R.run cfg ~flows ~window:(window cfg ~flows)))
        (sizes cfg))
    runners

let render cells =
  let open Tablefmt in
  let t =
    create ~title:"Fleet pacing at scale -- fire delay vs requested deadline, memory per flow"
      ~columns:
        [
          ("store", Left);
          ("flows", Right);
          ("sends", Right);
          ("catch-up %", Right);
          ("delay p50 (us)", Right);
          ("p99", Right);
          ("max", Right);
          ("KB/flow", Right);
          ("words/flow", Right);
        ]
  in
  let last_store = ref "" in
  List.iter
    (fun c ->
      if !last_store <> "" && !last_store <> c.store then add_rule t;
      last_store := c.store;
      add_row t
        [
          c.store;
          cell_i c.flows;
          cell_i c.sends;
          cell_f ~decimals:1 c.catch_up_pct;
          cell_f ~decimals:1 c.d50_us;
          cell_f ~decimals:1 c.d99_us;
          cell_f ~decimals:1 c.dmax_us;
          cell_f ~decimals:2 c.kb_per_flow;
          cell_f ~decimals:1 (words_per_flow c);
        ])
    cells;
  render t
  ^ "  pacing-wheel delays include deadline quantization to the 10 us tick;\n\
    \  exact stores pay instead in per-operation cost (see bench/pacer_bench.exe).\n"

(* The sweep again, but with every fleet registered as a live
   memory-observatory census source under mem;pacer;<store>;<flows>,
   split store vs pool.  The registered provider closures keep the
   fleets alive until [Memstats.reset_census], so the conservation
   invariant (attributed live words <= GC live words) genuinely holds
   over them — which is why this cannot just [Memstats.note] the cells
   of [compute] (those fleets are garbage by the time anyone reads the
   census).

   Main-domain-only (census registration mutates the Profile category
   registry): `softtimers-cli mem` calls it directly, never from a
   Runner.map/map_sim job — which is why [run] does not. *)
let run_census cfg =
  List.concat_map
    (fun (module R : RUNNER) ->
      List.filter_map
        (fun flows ->
          if flows > R.max_flows then None
          else begin
            let cell, store_w, pool_w = R.run_live cfg ~flows ~window:(window cfg ~flows) in
            let path = [ "pacer"; cell.store; string_of_int cell.flows ] in
            Memstats.register ~path:(path @ [ "store" ]) store_w;
            Memstats.register ~path:(path @ [ "pool" ]) pool_w;
            Memstats.sample ~label:(Printf.sprintf "pacer %s %d" cell.store cell.flows);
            Some cell
          end)
        (sizes cfg))
    runners

let run cfg =
  Exp_config.header "Extension: million-flow rate-based clocking across timer stores"
  ^ render (compute cfg)
