type pacing_row = {
  intr_scale : float;
  hw_overhead_pct : float;
  soft_overhead_pct : float;
}

type polling_row = { sensitivity : float; polling_ratio : float }

type result = { pacing : pacing_row list; polling : polling_row list }

let scaled_profile scale =
  let p = Costs.pentium_ii_300 in
  {
    p with
    Costs.name = Printf.sprintf "P-II-300 (intr x%.2g)" scale;
    intr_save_restore_us = p.Costs.intr_save_restore_us *. scale;
    intr_cache_pollution_us = p.Costs.intr_cache_pollution_us *. scale;
  }

let throughput (cfg : Exp_config.t) wcfg =
  let t = Webserver.create wcfg in
  Webserver.run t ~warmup:(Exp_config.warmup cfg) ~measure:(Exp_config.measure cfg);
  Webserver.requests_per_sec t

let pacing_at cfg ~scale =
  let profile = scaled_profile scale in
  let base_cfg p =
    { Webserver.default_config with Webserver.profile; pacing = p; seed = cfg.Exp_config.seed }
  in
  let base = throughput cfg (base_cfg Webserver.No_pacing) in
  let hw = throughput cfg (base_cfg (Webserver.Hw_pacing (Time_ns.of_us 20.0))) in
  let soft = throughput cfg (base_cfg Webserver.Soft_pacing) in
  {
    intr_scale = scale;
    hw_overhead_pct = 100.0 *. (1.0 -. (hw /. base));
    soft_overhead_pct = 100.0 *. (1.0 -. (soft /. base));
  }

let polling_at cfg ~sensitivity =
  let locality = { Cache.flash with Cache.sensitivity } in
  let base_cfg net =
    {
      Webserver.default_config with
      Webserver.kind = Webserver.Flash;
      net;
      locality_override = Some locality;
      seed = cfg.Exp_config.seed;
    }
  in
  let intr = throughput cfg (base_cfg Webserver.Interrupts) in
  let polled = throughput cfg (base_cfg (Webserver.Soft_polling 5.0)) in
  { sensitivity; polling_ratio = polled /. intr }

let scales (cfg : Exp_config.t) =
  if cfg.Exp_config.quick then [ 0.5; 1.0; 2.0 ] else [ 0.25; 0.5; 1.0; 1.5; 2.0 ]

let sensitivities (cfg : Exp_config.t) =
  if cfg.Exp_config.quick then [ 0.0; 2.0 ] else [ 0.0; 0.5; 1.0; 2.0; 3.0 ]

(* Each cell is an independent simulation from an explicit seed, so
   the sweep fans out across domains; [Runner.map_sim] returns results
   in input order (and merges any captured traces in the same order),
   keeping the table and trace digest identical to a sequential run. *)
let compute cfg =
  {
    pacing = Runner.map_sim (fun s -> pacing_at cfg ~scale:s) (scales cfg);
    polling = Runner.map_sim (fun s -> polling_at cfg ~sensitivity:s) (sensitivities cfg);
  }

let render _cfg r =
  let open Tablefmt in
  let t1 =
    create
      ~title:
        "Extension -- sensitivity: pacing overhead (Apache) vs per-interrupt cost (x4.45 us)"
      ~columns:
        [ ("interrupt cost scale", Right); ("HW-timer overhead", Right); ("soft overhead", Right) ]
  in
  List.iter
    (fun row ->
      add_row t1
        [
          Printf.sprintf "x%.2f" row.intr_scale;
          cell_f ~decimals:1 row.hw_overhead_pct ^ "%";
          cell_f ~decimals:1 row.soft_overhead_pct ^ "%";
        ])
    r.pacing;
  let t2 =
    create
      ~title:
        "Extension -- sensitivity: polling win (Flash, quota 5) vs cache-locality sensitivity"
      ~columns:[ ("sensitivity", Right); ("polled/interrupt throughput", Right) ]
  in
  List.iter
    (fun row ->
      add_row t2
        [ Printf.sprintf "%.1f" row.sensitivity; Printf.sprintf "%.3f" row.polling_ratio ])
    r.polling;
  render t1 ^ "\n" ^ render t2
  ^ "  expected: the hardware/soft pacing gap persists at half and double the measured\n\
    \  interrupt cost; polling keeps winning even with no pollution to avoid, and the\n\
    \  win grows with locality sensitivity (the paper's Flash-vs-Apache ordering).\n"

let run cfg =
  Exp_config.header "Extension: cost-model sensitivity" ^ render cfg (compute cfg)
