(* Per-session state is one stride-4 row of a flat int array — total,
   sent, live flag and a pad word — so the per-send bookkeeping touches
   one cache line per session instead of three parallel arrays (three
   random lines at million-flow scale). *)

let o_total = 0  (* segments to send; max_int = unbounded *)
let o_sent = 1
let o_live = 2  (* 0/1 *)

type t = {
  mutable cap : int;
  mutable n : int;  (* high-water slot count, = length of used prefix *)
  mutable s : int array;  (* stride-4 rows, indexed [sid lsl 2 + o_*] *)
  mutable free_stk : int array;  (* stack of released slot ids *)
  mutable free_top : int;
  mutable live_n : int;
  mutable total_sends : int;
  mutable completed : int;
}

let create ?(initial = 64) () =
  if initial < 1 then invalid_arg "Session_arena.create: initial < 1";
  {
    cap = initial;
    n = 0;
    s = Array.make (initial * 4) 0;
    free_stk = Array.make initial 0;
    free_top = 0;
    live_n = 0;
    total_sends = 0;
    completed = 0;
  }

let grow_int a cap =
  let b = Array.make cap 0 in
  Array.blit a 0 b 0 (Array.length a);
  b

let reserve t =
  if t.n = t.cap then begin
    let cap = t.cap * 2 in
    t.s <- grow_int t.s (cap * 4);
    t.free_stk <- grow_int t.free_stk cap;
    t.cap <- cap
  end

let acquire t ~total_segments =
  if total_segments < 0 then invalid_arg "Session_arena.acquire: negative transfer size";
  let sid =
    if t.free_top > 0 then begin
      t.free_top <- t.free_top - 1;
      t.free_stk.(t.free_top)
    end
    else begin
      reserve t;
      let sid = t.n in
      t.n <- sid + 1;
      sid
    end
  in
  let base = sid lsl 2 in
  t.s.(base + o_total) <- total_segments;
  t.s.(base + o_sent) <- 0;
  t.s.(base + o_live) <- 1;
  t.live_n <- t.live_n + 1;
  sid

let release t sid =
  if t.s.((sid lsl 2) + o_live) = 0 then
    invalid_arg "Session_arena.release: session is not live";
  t.s.((sid lsl 2) + o_live) <- 0;
  t.live_n <- t.live_n - 1;
  t.free_stk.(t.free_top) <- sid;
  t.free_top <- t.free_top + 1

(* One segment leaves the session: the fleet's per-send bookkeeping.
   Pure int-array state — this sits inside every pool fire. *)
let[@hot] on_send t sid =
  let base = sid lsl 2 in
  if t.s.(base + o_live) = 1 && t.s.(base + o_sent) < t.s.(base + o_total) then begin
    let sent = t.s.(base + o_sent) + 1 in
    t.s.(base + o_sent) <- sent;
    t.total_sends <- t.total_sends + 1;
    if sent = t.s.(base + o_total) then t.completed <- t.completed + 1;
    true
  end
  else false

(* Batched form of [on_send]: settle [k] segments at once.  The fleet
   path counts per-send in pool-row state (the same cache line its fire
   already touched) and settles the arena only when a transfer
   completes, keeping the arena row off the per-send path. *)
let note_sends t sid k =
  if k < 0 then invalid_arg "Session_arena.note_sends: negative count";
  let base = sid lsl 2 in
  if t.s.(base + o_live) = 1 then begin
    let before = t.s.(base + o_sent) in
    let sent = Int.min (before + k) t.s.(base + o_total) in
    t.s.(base + o_sent) <- sent;
    t.total_sends <- t.total_sends + (sent - before);
    if before < t.s.(base + o_total) && sent = t.s.(base + o_total) then
      t.completed <- t.completed + 1
  end

let complete t sid =
  let base = sid lsl 2 in
  t.s.(base + o_live) = 1 && t.s.(base + o_sent) >= t.s.(base + o_total)

let live_session t sid = t.s.((sid lsl 2) + o_live) = 1
let sent t sid = t.s.((sid lsl 2) + o_sent)
let total t sid = t.s.((sid lsl 2) + o_total)
let remaining t sid = t.s.((sid lsl 2) + o_total) - t.s.((sid lsl 2) + o_sent)
let live t = t.live_n
let slots t = t.n
let capacity t = t.cap
let sends t = t.total_sends
let completed t = t.completed
