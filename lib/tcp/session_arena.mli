(** Pooled struct-of-arrays arena of paced transfer sessions.

    One {!Paced_sender} (or {!Sender}) per connection is a boxed record
    plus closures; a million-flow pacing fleet keeps session state in
    parallel unboxed [int] arrays instead and names sessions by dense
    integer id.  Released slots go on a freelist and are reused, so a
    steady churn of short transfers neither grows the arena nor
    allocates.

    The arena tracks transfer progress only (segments to send, segments
    sent); rate state lives in {!Rate_clock.Pool} and wire packets in
    {!Packet.Pool}.  {!Paced_sender.Fleet} wires the three together. *)

type t

val create : ?initial:int -> unit -> t
(** [initial] (default 64) is the starting slot capacity; the arena
    doubles as needed.  @raise Invalid_argument if [initial < 1]. *)

val acquire : t -> total_segments:int -> int
(** Open a session; returns its id (freelist slot if one is parked,
    else a fresh one).  Pass [max_int] for an unbounded (long-running
    pacing) session.  @raise Invalid_argument if [total_segments < 0]. *)

val release : t -> int -> unit
(** Close a session and park its slot for reuse.  The id must not be
    used afterwards.  @raise Invalid_argument on double release. *)

val on_send : t -> int -> bool
(** Record one segment leaving the session.  Returns [false] — and
    records nothing — when the session is complete or released, i.e.
    exactly the "nothing pending" signal a rate clock's [send] callback
    reports to end its train.  Pure int-array state; safe inside the
    per-fire hot path. *)

val note_sends : t -> int -> int -> unit
(** [note_sends t sid k] settles [k] segments in one batch (clamped to
    the session total; no-op on a released session) — for callers that
    count per-send elsewhere and batch the arena bookkeeping, as
    {!Paced_sender.Fleet} does at transfer completion.
    @raise Invalid_argument if [k < 0]. *)

val complete : t -> int -> bool
(** The session sent all its segments (and is still live). *)

val live_session : t -> int -> bool
val sent : t -> int -> int
val total : t -> int -> int
val remaining : t -> int -> int

val live : t -> int
(** Sessions currently open. *)

val slots : t -> int
(** High-water slot count (arena rows ever used). *)

val capacity : t -> int
val sends : t -> int
val completed : t -> int
