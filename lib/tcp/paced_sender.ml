type t = {
  total : int;
  mutable sent : int;
  mutable start_fn : unit -> unit;
}

let create engine params ~total_segments ~interval ~transmit ?(jitter = fun () -> 0L)
    ?(on_last_sent = fun _ -> ()) () =
  if total_segments < 0 then invalid_arg "Paced_sender.create: negative transfer size";
  if Time_ns.(interval <= 0L) then invalid_arg "Paced_sender.create: interval must be positive";
  let t = { total = total_segments; sent = 0; start_fn = (fun () -> ()) } in
  let rec send_one ideal () =
    if t.sent < t.total then begin
      let now = Engine.now engine in
      transmit now (Tcp_types.make_data params ~seq:t.sent ~born:now);
      t.sent <- t.sent + 1;
      if t.sent = t.total then on_last_sent now
      else begin
        let next_ideal = Time_ns.(ideal + interval) in
        let at = Time_ns.(next_ideal + jitter ()) in
        ignore (Engine.schedule_at engine at (send_one next_ideal) : Engine.handle)
      end
    end
  in
  t.start_fn <-
    (fun () ->
      let now = Engine.now engine in
      ignore (Engine.schedule_at engine Time_ns.(now + jitter ()) (send_one now) : Engine.handle));
  t

let start t = t.start_fn ()
let sent t = t.sent

let create_with_rate_clock st params ~total_segments ~target_interval ~min_interval ~transmit
    ?(on_last_sent = fun _ -> ()) () =
  if total_segments < 0 then
    invalid_arg "Paced_sender.create_with_rate_clock: negative transfer size";
  let t = { total = total_segments; sent = 0; start_fn = (fun () -> ()) } in
  let clock =
    Rate_clock.create st ~target_interval ~min_interval
      ~send:(fun now ->
        if t.sent >= t.total then false
        else begin
          transmit now (Tcp_types.make_data params ~seq:t.sent ~born:now);
          t.sent <- t.sent + 1;
          if t.sent = t.total then on_last_sent now;
          true
        end)
      ()
  in
  t.start_fn <- (fun () -> Rate_clock.start clock);
  (t, clock)

(* ------------------------------------------------------------------ *)
(* Fleet pacing: many transfers over one Rate_clock.Pool.

   The single-sender shapes above box a record and closures per
   connection; the fleet names flows by dense integer id and keeps all
   state in three pooled struct-of-arrays structures — rate state in
   {!Rate_clock.Pool}, transfer progress in {!Session_arena}, wire
   packets in {!Packet.Pool} — so the steady send path of a
   million-flow sweep over the pacing wheel allocates nothing: even the
   reschedule deadline crosses the store API as a native int
   ([schedule_i]). *)

module Fleet (M : Timer_store.S) = struct
  module P = Rate_clock.Pool (M)

  type t = {
    mutable pool : P.t;
    arena : Session_arena.t;
    packets : int Packet.Pool.t;  (* meta = segment seq *)
    seg_bytes : int;
    transmit : int -> int Packet.Pool.cell -> unit;
    mutable now : Time_ns.t;  (* boxed once per check; stamped into cells *)
  }

  (* One pacing event for flow [fid]: run a segment through the packet
     pool and keep the train alive until the transfer completes.  No
     allocation: the cell is recycled, the meta is an int, and [born]
     reuses the boxed [now] of the current check.  No extra memory
     traffic either: the remaining-segment count lives in the pool
     row's scratch word and the segment seq is the pool's own send
     counter — both on the cache line the firing pool just touched —
     so the arena row (a cold line per send at million-flow scale) is
     only settled once, when the transfer completes. *)
  let[@hot] fleet_send t fid =
    let rem = P.user t.pool fid in
    if rem = 0 then false
    else begin
      let seq = P.flow_sends t.pool fid in
      let c =
        Packet.Pool.acquire t.packets ~size_bytes:t.seg_bytes ~meta:seq ~born:t.now
      in
      t.transmit fid c;
      Packet.Pool.release t.packets c;
      if rem = max_int then true (* unbounded pacing flow *)
      else begin
        let rem = rem - 1 in
        P.set_user t.pool fid rem;
        if rem = 0 then
          Session_arena.note_sends t.arena fid (Session_arena.total t.arena fid);
        (* Every transmitted segment answers true — the pool's contract
           is "false = nothing was sent" — so the train ends on the
           next fire, which finds rem = 0 and refuses. *)
        true
      end
    end

  let create ?stat_every ?intervals ?delays ?(params = Tcp_types.default) ~tick ~transmit () =
    let t =
      {
        (* Placeholder pool: replaced below once [t] exists for the
           send closure to capture ([P.create] application keeps the
           record out of [let rec] territory). *)
        pool = P.create ~tick ~send:(fun _ -> false) ();
        arena = Session_arena.create ();
        packets = Packet.Pool.create ();
        seg_bytes = params.Tcp_types.mss + Packet.frame_overhead;
        transmit;
        now = Time_ns.zero;
      }
    in
    t.pool <-
      P.create ?stat_every ?intervals ?delays ~tick ~send:(fun fid -> fleet_send t fid) ();
    t

  let add t ~total_segments ~target_interval ~min_interval =
    let fid = P.add t.pool ~target_interval ~min_interval in
    let sid = Session_arena.acquire t.arena ~total_segments in
    (* Flow ids and session ids advance in lockstep: the fleet never
       releases arena slots, so both are dense and equal. *)
    assert (fid = sid);
    P.set_user t.pool fid total_segments;
    fid

  let start t fid ~now = P.start t.pool fid ~now
  let stop t fid = P.stop t.pool fid

  let[@hot] check t ~now ~limit =
    t.now <- now;
    P.check t.pool ~now ~limit

  let flows t = P.flows t.pool
  let active t = P.active t.pool
  let sends t = P.sends t.pool
  let catch_ups t = P.catch_ups t.pool
  let sent t fid = P.flow_sends t.pool fid
  let complete t fid = P.user t.pool fid = 0
  let completed t = Session_arena.completed t.arena
  let intervals t = P.intervals t.pool
  let delays t = P.delays t.pool
  let store_pending t = P.store_pending t.pool
  let store_words t = P.store_words t.pool
  let pool_words t = P.words t.pool
  let packet_cells_created t = Packet.Pool.created t.packets
  let packet_reuses t = Packet.Pool.reuses t.packets
  let store_name = M.name
end
