type t = {
  engine : Engine.t;
  params : Tcp_types.params;
  total : int;
  transmit : Time_ns.t -> Tcp_types.segment Packet.t -> unit;
  on_complete : Time_ns.t -> unit;
  cwnd : Cwnd.t;
  mutable sent : int;
  mutable acked : int;
  mutable done_ : bool;
  mutable max_burst : int;
  mutable dupacks : int;
  mutable recover : int;  (* fast-retransmit at most once per window *)
  mutable retransmits : int;
  mutable rto_handle : Engine.handle option;
}

let create engine params ~total_segments ~transmit ?(on_complete = fun _ -> ()) () =
  if total_segments < 0 then invalid_arg "Sender.create: negative transfer size";
  {
    engine;
    params;
    total = total_segments;
    transmit;
    on_complete;
    cwnd = Cwnd.create params;
    sent = 0;
    acked = 0;
    done_ = false;
    max_burst = 0;
    dupacks = 0;
    recover = 0;
    retransmits = 0;
    rto_handle = None;
  }

let e_retransmit = Profile.intern [ "tcp"; "retransmit" ]
let e_rto_fired = Profile.intern [ "tcp"; "rto_fired" ]
let e_fast_retransmit = Profile.intern [ "tcp"; "fast_retransmit" ]

let retransmit_first_unacked t =
  let now = Engine.now t.engine in
  t.retransmits <- t.retransmits + 1;
  Profile.event e_retransmit;
  t.transmit now (Tcp_types.make_data t.params ~seq:t.acked ~born:now)

let cancel_rto t =
  (match t.rto_handle with Some h -> Engine.cancel t.engine h | None -> ());
  t.rto_handle <- None

let rec arm_rto t =
  cancel_rto t;
  if (not t.done_) && t.acked < t.sent then
    t.rto_handle <-
      Some
        (Engine.schedule_after t.engine t.params.Tcp_types.rto (fun () ->
             t.rto_handle <- None;
             if (not t.done_) && t.acked < t.sent then begin
               Profile.event e_rto_fired;
               Cwnd.on_timeout t.cwnd ~flight:(t.sent - t.acked);
               t.recover <- t.sent;
               t.dupacks <- 0;
               retransmit_first_unacked t;
               arm_rto t
             end))

let fill_window t =
  let now = Engine.now t.engine in
  let burst = ref 0 in
  let window = min (Cwnd.window t.cwnd) t.params.Tcp_types.awnd in
  while t.sent < t.total && t.sent - t.acked < window do
    t.transmit now (Tcp_types.make_data t.params ~seq:t.sent ~born:now);
    t.sent <- t.sent + 1;
    incr burst
  done;
  if !burst > t.max_burst then t.max_burst <- !burst

let start t =
  if t.total = 0 then t.on_complete (Engine.now t.engine)
  else begin
    fill_window t;
    arm_rto t
  end

let on_ack t ~ack_upto =
  if not t.done_ then begin
    if ack_upto > t.acked then begin
      t.acked <- min ack_upto t.total;
      t.dupacks <- 0;
      Cwnd.on_ack t.cwnd;
      arm_rto t
    end
    else if ack_upto = t.acked && t.acked < t.sent then begin
      t.dupacks <- t.dupacks + 1;
      if t.dupacks = 3 && t.acked >= t.recover then begin
        (* Fast retransmit + Reno halving; at most once per window. *)
        Profile.event e_fast_retransmit;
        Cwnd.on_fast_retransmit t.cwnd ~flight:(t.sent - t.acked);
        t.recover <- t.sent;
        retransmit_first_unacked t;
        arm_rto t
      end
    end;
    if t.acked >= t.total then begin
      t.done_ <- true;
      cancel_rto t;
      t.on_complete (Engine.now t.engine)
    end
    else fill_window t
  end

let sent t = t.sent
let acked t = t.acked
let complete t = t.done_
let max_burst_observed t = t.max_burst
let retransmits t = t.retransmits

let stop t =
  t.done_ <- true;
  cancel_rto t
