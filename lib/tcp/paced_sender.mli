(** Rate-clocked TCP sender (the paper's modified stack, §5.8).

    Skips slow-start entirely: when the available capacity is known, the
    sender transmits at that rate from the first segment, one packet per
    pacing event.  In the paper the pacing events come from the
    soft-timer facility; on the unloaded server of §5.8 the idle loop
    makes them essentially exact, so the default here is exact pacing.
    An optional jitter sampler adds a per-event firing delay drawn from
    a trigger-gap model, for studying loaded-server pacing; and
    {!create_with_rate_clock} drives transmissions through a real
    {!Rate_clock} on a simulated machine. *)

type t

val create :
  Engine.t ->
  Tcp_types.params ->
  total_segments:int ->
  interval:Time_ns.span ->
  transmit:(Time_ns.t -> Tcp_types.segment Packet.t -> unit) ->
  ?jitter:(unit -> Time_ns.span) ->
  ?on_last_sent:(Time_ns.t -> unit) ->
  unit ->
  t
(** Send segment [k] at [start_time + k * interval (+ jitter)].
    [interval] is normally the bottleneck serialisation time of one
    full-size frame. *)

val start : t -> unit
val sent : t -> int

val create_with_rate_clock :
  Softtimer.t ->
  Tcp_types.params ->
  total_segments:int ->
  target_interval:Time_ns.span ->
  min_interval:Time_ns.span ->
  transmit:(Time_ns.t -> Tcp_types.segment Packet.t -> unit) ->
  ?on_last_sent:(Time_ns.t -> unit) ->
  unit ->
  t * Rate_clock.t
(** The integrated form: a {!Rate_clock} on the facility's machine emits
    the pacing events; transmission order and count are identical, the
    timing reflects the machine's trigger-state process.  Call
    {!Rate_clock.start} on the returned clock to begin. *)

(** Fleet pacing: many transfers over one {!Rate_clock.Pool}.

    The single-sender shapes above box a record and closures per
    connection; the fleet names flows by dense integer id and keeps all
    state in pooled struct-of-arrays structures — rate state in
    {!Rate_clock.Pool}, transfer progress in {!Session_arena}, wire
    packets in {!Packet.Pool} — so the steady send path allocates only
    the boxed deadline each reschedule hands the timer store. *)
module Fleet (M : Timer_store.S) : sig
  type t

  val create :
    ?stat_every:int ->
    ?intervals:Hdr.t ->
    ?delays:Hdr.t ->
    ?params:Tcp_types.params ->
    tick:Time_ns.span ->
    transmit:(int -> int Packet.Pool.cell -> unit) ->
    unit ->
    t
  (** [transmit fid cell] hands one full-size segment of flow [fid] to
      the wire; [cell.meta] is the segment's sequence number and the
      cell is released (and recycled) as soon as [transmit] returns, so
      it must not be retained.  [stat_every], [intervals] and [delays]
      are passed to the underlying {!Rate_clock.Pool}. *)

  val add :
    t -> total_segments:int -> target_interval:Time_ns.span -> min_interval:Time_ns.span -> int
  (** Open a flow; returns its id.  Pass [max_int] segments for an
      unbounded pacing flow.  Flows are never removed — {!stop} idles
      one — so ids stay dense. *)

  val start : t -> int -> now:Time_ns.t -> unit
  (** Begin the flow's train: first segment due immediately, sent on
      the next {!check}. *)

  val stop : t -> int -> unit

  val check : t -> now:Time_ns.t -> limit:int -> Fire_outcome.t
  (** Dispatch due transmissions across all flows — the fleet's trigger
      state.  A flow's train ends by itself when its transfer
      completes. *)

  val flows : t -> int
  val active : t -> int
  val sends : t -> int
  val catch_ups : t -> int
  val sent : t -> int -> int
  val complete : t -> int -> bool
  val completed : t -> int

  val intervals : t -> Hdr.t
  (** Cohort inter-send gaps, µs (sampled; see {!Rate_clock.Pool}). *)

  val delays : t -> Hdr.t
  (** Cohort fire delay vs requested deadline, µs — for an approximate
      store this includes the quantization error. *)

  val store_pending : t -> int

  val store_words : t -> int
  (** The timer store's analytic heap footprint
      ([Timer_store.S.words]), 64-bit words. *)

  val pool_words : t -> int
  (** The rate-clock pool's own flow-state footprint (packed rows +
      handle array), excluding the store. *)

  val packet_cells_created : t -> int
  (** Packet cells ever boxed; constant once the pool is warm (the
      allocation-free steady-state witness). *)

  val packet_reuses : t -> int
  val store_name : string
end
