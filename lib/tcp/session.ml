type mode =
  [ `Regular
  | `Paced
  | `Paced_jitter of (unit -> Time_ns.span) ]

type result = {
  segments : int;
  response_time : Time_ns.span;
  throughput_bps : float;
  wan_drops : int;
  biggest_ack : int;
  max_burst : int;
  retransmits : int;
}

let bottleneck_interval ~bottleneck_bps ?(params = Tcp_types.default) () =
  let frame_bits = (params.Tcp_types.mss + Packet.frame_overhead) * 8 in
  Time_ns.of_sec (float_of_int frame_bits /. bottleneck_bps)

let run_transfer ?(params = Tcp_types.default) ?(access_bps = 100e6) ?(wan_queue = 2048)
    ~bottleneck_bps ~one_way_delay ~segments mode =
  if segments <= 0 then invalid_arg "Session.run_transfer: segments must be positive";
  let engine = Engine.create () in
  Trace.sim_start ~at:(Engine.now engine);
  let finish_time = ref None in
  let biggest_ack = ref 0 in
  let max_burst = ref 0 in
  let retransmits = ref (fun () -> 0) in
  (* Forward path: server NIC -> access link -> WAN (bottleneck + delay)
     -> client.  Reverse path: client -> WAN (delay; bottleneck idle in
     that direction) -> server. *)
  let client_rx : (Time_ns.t -> Tcp_types.segment Packet.t -> unit) ref =
    ref (fun _ _ -> ())
  in
  let server_rx : (Time_ns.t -> Tcp_types.segment Packet.t -> unit) ref =
    ref (fun _ _ -> ())
  in
  let wan_fwd =
    Wan.create engine ~bottleneck_bps ~one_way_delay ~queue_capacity:wan_queue
      ~deliver:(fun now p -> !client_rx now p)
      ()
  in
  let wan_rev =
    Wan.create engine ~bottleneck_bps ~one_way_delay ~queue_capacity:wan_queue
      ~deliver:(fun now p -> !server_rx now p)
      ()
  in
  let access =
    Link.create engine ~bandwidth_bps:access_bps ~latency:(Time_ns.of_us 10.0)
      ~deliver:(fun _now p -> Wan.forward wan_fwd p)
      ()
  in
  let transmit _now p = Link.send access p in
  let receiver =
    Receiver.create engine params ~send_ack:(fun now ~ack_upto ->
        Wan.forward wan_rev (Tcp_types.make_ack ~ack_upto ~born:now))
  in
  (* Server side: dispatch on transfer mode once the request arrives. *)
  let started = ref false in
  let start_server now =
    ignore now;
    match mode with
    | `Regular ->
      let sender =
        Sender.create engine params ~total_segments:segments ~transmit ()
      in
      retransmits := (fun () -> Sender.retransmits sender);
      server_rx :=
        (fun _now p ->
          if p.Packet.meta.Tcp_types.is_ack then begin
            Sender.on_ack sender ~ack_upto:p.Packet.meta.Tcp_types.ack_upto;
            max_burst := max !max_burst (Sender.max_burst_observed sender)
          end);
      Sender.start sender;
      max_burst := max !max_burst (Sender.max_burst_observed sender)
    | `Paced ->
      let interval = bottleneck_interval ~bottleneck_bps ~params () in
      let sender =
        Paced_sender.create engine params ~total_segments:segments ~interval ~transmit ()
      in
      server_rx := (fun _ _ -> ());
      max_burst := 1;
      Paced_sender.start sender
    | `Paced_jitter jitter ->
      let interval = bottleneck_interval ~bottleneck_bps ~params () in
      let sender =
        Paced_sender.create engine params ~total_segments:segments ~interval ~transmit ~jitter
          ()
      in
      server_rx := (fun _ _ -> ());
      max_burst := 1;
      Paced_sender.start sender
  in
  client_rx :=
    (fun _now p ->
      if not p.Packet.meta.Tcp_types.is_ack then begin
        Receiver.on_data receiver ~seq:p.Packet.meta.Tcp_types.seq;
        biggest_ack := max !biggest_ack (Receiver.biggest_ack receiver);
        if Receiver.delivered receiver >= segments && Option.is_none !finish_time then
          finish_time := Some (Engine.now engine)
      end);
  (* The client's request: one small packet across the reverse path. *)
  server_rx :=
    (fun now _p ->
      if not !started then begin
        started := true;
        start_server now
      end);
  Wan.forward wan_rev
    (Packet.create ~size_bytes:200
       ~meta:{ Tcp_types.seq = -1; is_ack = false; ack_upto = 0 }
       ~born:Time_ns.zero);
  (* Run until the transfer completes (bounded safety horizon). *)
  let horizon = Time_ns.of_sec 3600.0 in
  let rec pump () =
    match !finish_time with
    | Some _ -> ()
    | None ->
      if Engine.pending engine = 0 || Time_ns.(Engine.now engine > horizon) then ()
      else if Engine.step engine then pump ()
  in
  pump ();
  Receiver.stop receiver;
  let response_time =
    match !finish_time with
    | Some t -> t
    | None -> invalid_arg "Session.run_transfer: transfer did not complete (lossy setup?)"
  in
  let payload_bits = float_of_int (segments * params.Tcp_types.mss * 8) in
  {
    segments;
    response_time;
    throughput_bps = payload_bits /. Time_ns.to_sec response_time;
    wan_drops = Wan.drops wan_fwd;
    biggest_ack = !biggest_ack;
    max_burst = !max_burst;
    retransmits = !retransmits ();
  }
