(* Domain-pool map with deterministic, index-ordered results.

   Work distribution is a single atomic counter over an array of
   inputs: workers (spawned domains plus the calling domain) claim the
   next index, run the job, and write the result into its slot.  The
   claim order is racy; the result order is not — slot [i] always
   holds job [i], and the caller reads the slots only after every
   worker has joined. *)

(* [0] = auto ([recommended_jobs]).  Read once per [map] call. *)
let default = Atomic.make 0

let recommended_jobs () = Domain.recommended_domain_count ()

let set_default_jobs n =
  if n < 0 then invalid_arg "Runner.set_default_jobs: negative job count";
  Atomic.set default n

let default_jobs () =
  match Atomic.get default with 0 -> recommended_jobs () | n -> n

(* Nested [map] calls (a job that fans out again) must not spawn
   domains of their own: the pool is already saturated, and a worker
   blocking in [Domain.join] while holding a claim slot would serialise
   the outer map anyway.  A domain-local flag makes inner maps run
   inline. *)
let in_worker : bool ref Domain.DLS.key = Domain.DLS.new_key (fun () -> ref false)

let sequential_map f xs = List.map f xs

let map ?jobs f xs =
  let n = List.length xs in
  let jobs = match jobs with Some j when j >= 1 -> j | Some _ | None -> default_jobs () in
  let jobs = min jobs n in
  if jobs <= 1 || n <= 1 || !(Domain.DLS.get in_worker) then sequential_map f xs
  else begin
    let input = Array.of_list xs in
    let results : ('b, exn * Printexc.raw_backtrace) result option array = Array.make n None in
    (* Domain-local Metrics instruments accumulated by job [i].  Each
       job runs inside a fresh Local context (so nothing it records
       races with the parent or a sibling on the same domain), and the
       parent absorbs the contexts in index order after the join —
       counter totals and histogram contents are then identical at any
       job count. *)
    let ctxs : Metrics.Local.ctx option array = Array.make n None in
    let next = Atomic.make 0 in
    let work () =
      let flag = Domain.DLS.get in_worker in
      flag := true;
      let rec loop () =
        let i = Atomic.fetch_and_add next 1 in
        if i < n then begin
          let saved = Metrics.Local.swap_fresh () in
          let r =
            try Ok (f input.(i))
            with e -> Error (e, Printexc.get_raw_backtrace ())
          in
          ctxs.(i) <- Some (Metrics.Local.swap saved);
          results.(i) <- Some r;
          loop ()
        end
      in
      loop ();
      flag := false
    in
    let domains = List.init (jobs - 1) (fun _ -> Domain.spawn work) in
    work ();
    List.iter Domain.join domains;
    Array.iter (function Some c -> Metrics.Local.absorb c | None -> ()) ctxs;
    Array.to_list results
    |> List.map (function
         | Some (Ok v) -> v
         | Some (Error (e, bt)) -> Printexc.raise_with_backtrace e bt
         | None -> assert false (* every index < n was claimed *))
  end

let map_sim ?jobs f xs =
  match Trace.installed () with
  | _ when Trace.tap_installed () || Profile.enabled () ->
    (* Synchronous consumers need the exact event order; run inline. *)
    sequential_map f xs
  | None -> map ?jobs f xs
  | Some parent ->
    let capacity = Trace.capacity parent in
    let outcomes =
      map ?jobs
        (fun x ->
          (* Runs in an arbitrary domain — possibly the calling one, so
             save and restore its sink around the private ring. *)
          let saved = Trace.installed () in
          let ring = Trace.create ~capacity () in
          Trace.install ring;
          let fin () = match saved with None -> Trace.uninstall () | Some s -> Trace.install s in
          let v = try f x with e -> fin (); raise e in
          fin ();
          (v, ring))
        xs
    in
    List.map
      (fun (v, ring) ->
        Trace.absorb ring;
        v)
      outcomes
