(** Deterministic multicore fan-out for independent simulations.

    Every experiment cell in this project is an independent, fully
    deterministic simulation: it builds its own {!Engine} and {!Prng}
    from an explicit seed and shares no mutable state with its
    siblings.  [Runner] exploits that by fanning a list of such jobs
    across OCaml 5 domains and merging the results {e in input order},
    so the observable output of a parallel run is byte-identical to
    the sequential one — `--jobs N` changes wall-clock time and
    nothing else.  See DESIGN.md §8.4 for the determinism argument.

    Worker domains start with no trace ring, tap, or profiler
    installed (those sinks are domain-local, see {!Trace}), so jobs
    cannot race on the parent's observability state. *)

val recommended_jobs : unit -> int
(** [Domain.recommended_domain_count ()]: the runtime's estimate of
    useful parallelism on this machine. *)

val set_default_jobs : int -> unit
(** Set the job count used when [?jobs] is omitted.  [0] (the initial
    value) means {!recommended_jobs}; [1] forces sequential execution.
    Negative values raise [Invalid_argument].  This is what the
    [--jobs] flags of the CLI and bench harness set. *)

val default_jobs : unit -> int
(** The resolved default ([recommended_jobs ()] when unset/auto). *)

val map : ?jobs:int -> ('a -> 'b) -> 'a list -> 'b list
(** [map f xs] applies [f] to every element of [xs], possibly in
    parallel, and returns the results in input order.

    [f] must be self-contained in the sense above: it may not mutate
    state shared with other jobs.  Domain-local {!Metrics} instruments
    ([dcounter]/[dhistogram]) are safe and deterministic: each job runs
    in a fresh {!Metrics.Local} context, and the contexts are absorbed
    into the caller's in input order after the join, so totals are
    byte-identical at any [jobs].

    At most [jobs] elements run concurrently (the calling domain works
    too, so [jobs] = total parallelism).  If any job raises, the
    exception of the lowest-indexed failing job is re-raised after all
    workers have drained.

    Nested calls — a job that itself calls [map] — run sequentially
    inside the worker rather than spawning further domains. *)

val map_sim : ?jobs:int -> ('a -> 'b) -> 'a list -> 'b list
(** {!map} for jobs that are traced simulations.  Behaves exactly like
    [map], with observability made deterministic:

    - If the calling domain has a {!Trace} ring installed, each job
      runs with a fresh private ring of the same capacity, and after
      all jobs complete the private rings are {!Trace.absorb}ed into
      the parent's in job order.  Because each job is a self-contained
      simulation, the merged stream — and hence the trace digest — is
      identical to a sequential run's.
    - If a tap (runtime sanitizer) or a {!Profile} profiler is
      installed, the jobs run sequentially in the calling domain
      instead: both consumers need the exact synchronous event order,
      and a bounded private ring could overflow and silently hide
      events from them.  Determinism of results is unaffected either
      way. *)
