(** Network packets.

    Packets are generic in their metadata so the same links, queues and
    NICs serve both the web-server workload models (whose metadata is a
    connection-level event) and the packet-level TCP simulator (whose
    metadata is a TCP segment). *)

type 'a t = { size_bytes : int; meta : 'a; born : Time_ns.t }

val create : size_bytes:int -> meta:'a -> born:Time_ns.t -> 'a t
(** @raise Invalid_argument if [size_bytes < 0]. *)

val bits : 'a t -> int
(** Size on the wire, in bits. *)

val mtu_payload : int
(** 1448 bytes: the TCP payload of a 1500-byte Ethernet frame after
    20 + 20 + 12 bytes of IP/TCP/options headers — the paper's transfer
    unit (Tables 6 and 7). *)

val frame_overhead : int
(** 52 bytes of IP + TCP + options headers. *)

val ack_size : int
(** Size of a bare ACK segment on the wire. *)

type 'a packet = 'a t
(** Alias so {!Pool.to_packet} can name the packet type from inside the
    submodule, where [t] means the pool. *)

(** Freelist pool of mutable packet cells.

    {!create} boxes a fresh record per packet — fine for the
    connection-level workloads, but steady-state pacing at a million
    flows would churn the minor heap at the aggregate send rate.  A
    pool recycles cells through a stack: after warm-up,
    {!Pool.acquire} is pop + overwrite and {!Pool.release} is push,
    with no allocation on either side. *)
module Pool : sig
  type 'a cell = {
    mutable size_bytes : int;
    mutable meta : 'a;
    mutable born : Time_ns.t;
    mutable in_use : bool;
  }

  type 'a t

  val create : unit -> 'a t

  val acquire : 'a t -> size_bytes:int -> meta:'a -> born:Time_ns.t -> 'a cell
  (** Pop a recycled cell (or box a fresh one on pool miss) and fill
      it.  The cell is live until {!release}.
      @raise Invalid_argument if [size_bytes < 0]. *)

  val release : 'a t -> 'a cell -> unit
  (** Return a cell to the freelist.  The caller must not touch the
      cell afterwards; the pool will hand it out again.
      @raise Invalid_argument if the cell is not live (double release). *)

  val to_packet : 'a cell -> 'a packet
  (** Boundary conversion to an immutable {!type:t} — allocates; for
      handing a pooled packet to code that retains it. *)

  val bits : 'a cell -> int

  val live : 'a t -> int
  (** Cells currently acquired. *)

  val free : 'a t -> int
  (** Cells parked on the freelist. *)

  val created : 'a t -> int
  (** Cells ever boxed — stops growing once the pool is warm. *)

  val acquires : 'a t -> int

  val reuses : 'a t -> int
  (** Acquires served from the freelist; [acquires - reuses = created]. *)
end
