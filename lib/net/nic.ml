let m_rx = Metrics.dcounter Metrics.default "nic.rx_packets"
let m_tx = Metrics.dcounter Metrics.default "nic.tx_packets"
let m_drop = Metrics.dcounter Metrics.default "nic.rx_dropped"
let m_batches = Metrics.dcounter Metrics.default "nic.rx_batches"

type mode = Interrupt_driven | Polled | Hybrid

type 'a t = {
  machine : Machine.t;
  name : string;
  mutable mode : mode;
  rx_ring : 'a Packet.t Queue.t;
  mutable rx_line : Interrupt.line option;
  mutable tx_line : Interrupt.line option;
  mutable link : 'a Link.t option;
  on_rx_batch : Time_ns.t -> 'a Packet.t list -> unit;
  tx_intr_coalesce : int;
  rx_handler_work_us : float;
  rx_intr_delay : Time_ns.span;
  rx_ring_capacity : int;
  mutable rx_intr_armed : bool;
  mutable hybrid_processing : bool;
  mutable tx_since_intr : int;
  mutable rx_packets : int;
  mutable rx_batches : int;
  mutable rx_dropped : int;
}

let drain_ring t now =
  let rec take acc =
    match Queue.take_opt t.rx_ring with None -> List.rev acc | Some p -> take (p :: acc)
  in
  let batch = take [] in
  match batch with
  | [] -> 0
  | _ :: _ ->
    let n = List.length batch in
    t.rx_packets <- t.rx_packets + n;
    t.rx_batches <- t.rx_batches + 1;
    Metrics.dincr ~by:n m_rx;
    Metrics.dincr m_batches;
    Trace.pkt_rx ~at:now ~nic:t.name ~batch:n;
    t.on_rx_batch now batch;
    n

let create machine ~name ~bandwidth_bps ~wire_latency ~tx_deliver ~on_rx_batch
    ?(tx_intr_coalesce = 0) ?(rx_handler_work_us = 1.0) ?(rx_intr_delay = 0L)
    ?(rx_ring_capacity = max_int) () =
  let t =
    {
      machine;
      name;
      mode = Interrupt_driven;
      rx_ring = Queue.create ();
      rx_line = None;
      tx_line = None;
      link = None;
      on_rx_batch;
      tx_intr_coalesce;
      rx_handler_work_us;
      rx_intr_delay;
      rx_ring_capacity;
      rx_intr_armed = false;
      hybrid_processing = false;
      tx_since_intr = 0;
      rx_packets = 0;
      rx_batches = 0;
      rx_dropped = 0;
    }
  in
  let rx_line =
    Machine.interrupt_line machine ~name:(name ^ "-rx") ~source:Trigger.Ip_intr
      ~handler:(fun now -> ignore (drain_ring t now : int))
      ()
  in
  let tx_line =
    Machine.interrupt_line machine ~name:(name ^ "-tx") ~source:Trigger.Ip_intr
      ~handler:(fun _now -> ())
      ()
  in
  let on_sent now _p =
    Metrics.dincr m_tx;
    Trace.pkt_tx ~at:now ~nic:t.name;
    if t.mode <> Polled && t.tx_intr_coalesce > 0 then begin
      t.tx_since_intr <- t.tx_since_intr + 1;
      if t.tx_since_intr >= t.tx_intr_coalesce then begin
        t.tx_since_intr <- 0;
        (* Freeing transmitted buffers is cheap. *)
        ignore (Machine.raise_irq machine tx_line ~handler_work_us:1.0 () : bool)
      end
    end
  in
  let link =
    Link.create (Machine.engine machine) ~bandwidth_bps ~latency:wire_latency ~on_sent
      ~deliver:tx_deliver ()
  in
  t.rx_line <- Some rx_line;
  t.tx_line <- Some tx_line;
  t.link <- Some link;
  t

let set_mode t m = t.mode <- m
let mode t = t.mode

let the_link t = match t.link with Some l -> l | None -> assert false
let rx_line t = match t.rx_line with Some l -> l | None -> assert false
let tx_line t = match t.tx_line with Some l -> l | None -> assert false

let transmit t p = Link.send (the_link t) p

(* Interrupt-mitigation: assert the receive interrupt [rx_intr_delay]
   after the first packet lands, so closely-spaced packets coalesce. *)
let maybe_arm_rx_intr t =
  if (not t.rx_intr_armed) && not (Queue.is_empty t.rx_ring) then begin
    t.rx_intr_armed <- true;
    let fire () =
      t.rx_intr_armed <- false;
      if not (Queue.is_empty t.rx_ring) then
        ignore
          (Machine.raise_irq t.machine (rx_line t) ~handler_work_us:t.rx_handler_work_us ()
            : bool)
    in
    if Time_ns.(t.rx_intr_delay <= 0L) then fire ()
    else
      ignore
        (Engine.schedule_after (Machine.engine t.machine) t.rx_intr_delay (fun () -> fire ())
          : Engine.handle)
  end

let deliver t p =
  if Queue.length t.rx_ring >= t.rx_ring_capacity then begin
    t.rx_dropped <- t.rx_dropped + 1;
    Metrics.dincr m_drop;
    Trace.pkt_drop ~at:(Engine.now (Machine.engine t.machine)) ~nic:t.name
  end
  else begin
    Queue.add p t.rx_ring;
    Trace.pkt_enqueue
      ~at:(Engine.now (Machine.engine t.machine))
      ~nic:t.name ~qlen:(Queue.length t.rx_ring)
  end;
  let interrupt_mode =
    match t.mode with
    | Interrupt_driven -> true
    | Hybrid ->
      (* Interrupt only when no processing is in progress; the stack
         polls for the rest of the burst itself. *)
      if t.hybrid_processing then false
      else begin
        t.hybrid_processing <- true;
        true
      end
    | Polled ->
      (* Â§5.9: polling is turned off and interrupts re-enabled whenever
         a CPU is idle, so delivery is never needlessly delayed. *)
      Machine.any_cpu_idle t.machine
  in
  if interrupt_mode then maybe_arm_rx_intr t

let poll t = drain_ring t (Engine.now (Machine.engine t.machine))

let hybrid_done t =
  if Queue.is_empty t.rx_ring then begin
    t.hybrid_processing <- false;
    0
  end
  else begin
    t.hybrid_processing <- true;
    drain_ring t (Engine.now (Machine.engine t.machine))
  end

let rx_dropped t = t.rx_dropped

let rx_ring_length t = Queue.length t.rx_ring
let rx_packets t = t.rx_packets
let rx_batches t = t.rx_batches
let tx_packets t = Link.sent (the_link t)
