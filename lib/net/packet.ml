type 'a t = { size_bytes : int; meta : 'a; born : Time_ns.t }

let create ~size_bytes ~meta ~born =
  if size_bytes < 0 then invalid_arg "Packet.create: negative size";
  { size_bytes; meta; born }

let bits p = p.size_bytes * 8
let mtu_payload = 1448
let frame_overhead = 52
let ack_size = frame_overhead

type 'a packet = 'a t

(* Freelist pool of mutable packet cells.

   [create] boxes a fresh record per packet — fine for connection-level
   workloads, but a million-flow pacing loop emitting one segment per
   flow per interval would churn the minor heap at the aggregate send
   rate.  The pool recycles cells through a stack: steady state is
   pop → overwrite three fields → push, no allocation. *)
module Pool = struct
  type 'a cell = {
    mutable size_bytes : int;
    mutable meta : 'a;
    mutable born : Time_ns.t;
    mutable in_use : bool;
  }

  type 'a t = {
    mutable free : 'a cell array;  (* stack of recycled cells *)
    mutable free_top : int;
    mutable live : int;
    mutable created : int;
    mutable acquires : int;
    mutable reuses : int;
  }

  let create () =
    { free = [||]; free_top = 0; live = 0; created = 0; acquires = 0; reuses = 0 }

  (* Pool-miss path: the one place a cell is boxed. *)
  let fresh p ~size_bytes ~meta ~born =
    p.created <- p.created + 1;
    { size_bytes; meta; born; in_use = true }
  (* ALLOC002: the cell record is built only on a pool miss (cold
     warm-up path); steady state pops the freelist instead. *)
  [@@lint.allow "ALLOC002"]

  let[@hot] acquire p ~size_bytes ~meta ~born =
    if size_bytes < 0 then invalid_arg "Packet.Pool.acquire: negative size";
    p.acquires <- p.acquires + 1;
    p.live <- p.live + 1;
    if p.free_top > 0 then begin
      p.reuses <- p.reuses + 1;
      let i = p.free_top - 1 in
      p.free_top <- i;
      let c = p.free.(i) in
      c.size_bytes <- size_bytes;
      c.meta <- meta;
      c.born <- born;
      c.in_use <- true;
      c
    end
    else fresh p ~size_bytes ~meta ~born

  (* Freelist growth: doubling, filled with the cell being released (it
     is immediately overwritten slot by slot). *)
  let grow_free p c =
    let cap = Array.length p.free in
    let cap' = if cap = 0 then 16 else cap * 2 in
    let b = Array.make cap' c in
    Array.blit p.free 0 b 0 cap;
    p.free <- b

  let[@hot] release p c =
    if not c.in_use then invalid_arg "Packet.Pool.release: cell is not live";
    c.in_use <- false;
    p.live <- p.live - 1;
    if p.free_top = Array.length p.free then grow_free p c;
    p.free.(p.free_top) <- c;
    p.free_top <- p.free_top + 1

  let to_packet c : _ packet = { size_bytes = c.size_bytes; meta = c.meta; born = c.born }
  let bits c = c.size_bytes * 8
  let live p = p.live
  let free p = p.free_top
  let created p = p.created
  let acquires p = p.acquires
  let reuses p = p.reuses
end
