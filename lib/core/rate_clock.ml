let m_sends = Metrics.dcounter Metrics.default "rate_clock.sends"
let m_trains = Metrics.dcounter Metrics.default "rate_clock.trains"
let h_intervals = Metrics.hdr Metrics.default "rate_clock.interval_us"

(* A catch-up send: soft-timer dispatch latency pushed us past the ideal
   send time, so the next interval was clamped to min_interval — the
   burstiness the paper's Figure 5 jitter discussion is about. *)
let e_catch_up = Profile.intern [ "rate_clock"; "catch_up_send" ]

type t = {
  st : Softtimer.t;
  target : Time_ns.span;
  min_interval : Time_ns.span;
  send : Time_ns.t -> bool;
  mutable active : bool;
  mutable train_start : Time_ns.t;
  mutable sent_in_train : int;
  mutable last_send : Time_ns.t;
  mutable sends : int;
  mutable outstanding : Softtimer.handle option;
  intervals : Hdr.t;
      (* Constant-memory: a clock sends once per interval for the whole
         run, so retaining every gap (the old [Stats.Sample.t]) grew
         without bound — one float per packet, forever. *)
}

let create st ~target_interval ~min_interval ~send () =
  if Time_ns.(min_interval <= 0L) || Time_ns.(min_interval > target_interval) then
    invalid_arg "Rate_clock.create: need 0 < min_interval <= target_interval";
  {
    st;
    target = target_interval;
    min_interval;
    send;
    active = false;
    train_start = Time_ns.zero;
    sent_in_train = 0;
    last_send = Time_ns.zero;
    sends = 0;
    outstanding = None;
    (* Values are microseconds; 10 ns absolute resolution is far below
       the 1% relative bound and keeps the bucket array small. *)
    intervals = Hdr.create ~lowest:0.01 ();
  }

let rec on_event t now =
  t.outstanding <- None;
  if t.active then begin
    if t.send now then begin
      if t.sent_in_train > 0 then begin
        let gap_us = Time_ns.to_us Time_ns.(now - t.last_send) in
        Hdr.record t.intervals gap_us;
        Hdr.record h_intervals gap_us
      end;
      t.last_send <- now;
      t.sent_in_train <- t.sent_in_train + 1;
      t.sends <- t.sends + 1;
      Metrics.dincr m_sends;
      Trace.rbc_send ~at:now;
      schedule_next t now
    end
    else
      (* Nothing pending: the train ends; a later [kick] starts a new
         train with a fresh rate average. *)
      t.active <- false
  end

(* The next packet's ideal send time is train_start + n * target; when we
   are already past it (soft-timer delays accumulated), catch up at the
   maximal allowable burst rate. *)
and schedule_next t now =
  let ideal = Time_ns.(t.train_start + Time_ns.mul t.target t.sent_in_train) in
  let delay = Time_ns.(ideal - now) in
  if Time_ns.(delay < t.min_interval) then Profile.event e_catch_up;
  let delay = Time_ns.max delay t.min_interval in
  t.outstanding <- Some (Softtimer.schedule_after t.st delay (on_event t))

let begin_train t =
  Metrics.dincr m_trains;
  t.active <- true;
  let now = Engine.now (Machine.engine (Softtimer.machine t.st)) in
  t.train_start <- now;
  t.sent_in_train <- 0;
  (* First transmission at the first trigger state from now. *)
  t.outstanding <- Some (Softtimer.schedule_soft_event t.st ~ticks:0L (on_event t))

let start t = if not t.active then begin_train t
let kick t = if not t.active then begin_train t

let stop t =
  t.active <- false;
  (match t.outstanding with Some h -> Softtimer.cancel t.st h | None -> ());
  t.outstanding <- None

let active t = t.active
let sends t = t.sends
let intervals t = t.intervals
