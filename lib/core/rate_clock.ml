let m_sends = Metrics.dcounter Metrics.default "rate_clock.sends"
let m_trains = Metrics.dcounter Metrics.default "rate_clock.trains"
let h_intervals = Metrics.hdr Metrics.default "rate_clock.interval_us"

(* A catch-up send: soft-timer dispatch latency pushed us past the ideal
   send time, so the next interval was clamped to min_interval — the
   burstiness the paper's Figure 5 jitter discussion is about. *)
let e_catch_up = Profile.intern [ "rate_clock"; "catch_up_send" ]

(* The default interval histogram is shared by every clock that does not
   opt into its own: an Hdr costs ~a KB of buckets, and a million paced
   flows must not carry a million of them (the per-flow copy used to
   cost GBs at that scale).  Clocks whose statistics must be read in
   isolation pass [~intervals:(Hdr.create ~lowest:0.01 ())]. *)
(* RACE002: cohort state shares the registry's single-domain contract —
   experiment workers that record in parallel pass their own
   [~intervals]; the shared default is only touched from sequential
   runs. *)
let cohort_intervals = Hdr.create ~lowest:0.01 () [@@lint.allow "RACE002"]

type t = {
  st : Softtimer.t;
  target : Time_ns.span;
  min_interval : Time_ns.span;
  send : Time_ns.t -> bool;
  mutable active : bool;
  mutable train_start : Time_ns.t;
  mutable sent_in_train : int;
  mutable last_send : Time_ns.t;
  mutable sends : int;
  mutable outstanding : Softtimer.handle option;
  intervals : Hdr.t;
      (* Constant-memory: a clock sends once per interval for the whole
         run, so retaining every gap (the old [Stats.Sample.t]) grew
         without bound — one float per packet, forever.  Shared with
         the cohort by default; see [cohort_intervals]. *)
}

let create ?(intervals = cohort_intervals) st ~target_interval ~min_interval ~send () =
  if Time_ns.(min_interval <= 0L) || Time_ns.(min_interval > target_interval) then
    invalid_arg "Rate_clock.create: need 0 < min_interval <= target_interval";
  {
    st;
    target = target_interval;
    min_interval;
    send;
    active = false;
    train_start = Time_ns.zero;
    sent_in_train = 0;
    last_send = Time_ns.zero;
    sends = 0;
    outstanding = None;
    intervals;
  }

let rec on_event t now =
  t.outstanding <- None;
  if t.active then begin
    if t.send now then begin
      if t.sent_in_train > 0 then begin
        let gap_us = Time_ns.to_us Time_ns.(now - t.last_send) in
        Hdr.record t.intervals gap_us;
        Hdr.record h_intervals gap_us
      end;
      t.last_send <- now;
      t.sent_in_train <- t.sent_in_train + 1;
      t.sends <- t.sends + 1;
      Metrics.dincr m_sends;
      Trace.rbc_send ~at:now;
      schedule_next t now
    end
    else
      (* Nothing pending: the train ends; a later [kick] starts a new
         train with a fresh rate average. *)
      t.active <- false
  end

(* The next packet's ideal send time is train_start + n * target; when we
   are already past it (soft-timer delays accumulated), catch up at the
   maximal allowable burst rate. *)
and schedule_next t now =
  let ideal = Time_ns.(t.train_start + Time_ns.mul t.target t.sent_in_train) in
  let delay = Time_ns.(ideal - now) in
  if Time_ns.(delay < t.min_interval) then Profile.event e_catch_up;
  let delay = Time_ns.max delay t.min_interval in
  t.outstanding <- Some (Softtimer.schedule_after t.st delay (on_event t))

let begin_train t =
  Metrics.dincr m_trains;
  t.active <- true;
  let now = Engine.now (Machine.engine (Softtimer.machine t.st)) in
  t.train_start <- now;
  t.sent_in_train <- 0;
  (* First transmission at the first trigger state from now. *)
  t.outstanding <- Some (Softtimer.schedule_soft_event t.st ~ticks:0L (on_event t))

let start t = if not t.active then begin_train t
let kick t = if not t.active then begin_train t

let stop t =
  t.active <- false;
  (match t.outstanding with Some h -> Softtimer.cancel t.st h | None -> ());
  t.outstanding <- None

let active t = t.active
let sends t = t.sends
let intervals t = t.intervals

(* ------------------------------------------------------------------ *)
(* Million-flow pacing: flow-id-indexed rate clocks over one shared
   timer store.

   The closure-per-flow shape above is right for a handful of paced
   senders but wrong at datacenter-egress scale: a boxed record, a
   [send] closure, an optional handle and (formerly) a private Hdr per
   flow is hundreds of bytes of pointer-chased state, and a binary-heap
   store underneath makes every send O(log n).  The pool keeps all flow
   state in parallel unboxed int arrays (struct-of-arrays, nanoseconds
   as native ints), drives whichever [Timer_store.S] it is built over
   directly through the int-deadline [schedule_i] entry point, and uses
   the flow id itself as the timer payload, so with the pacing wheel's
   int handles the steady send → re-schedule cycle allocates nothing at
   all.

   Histograms are cohort-shared and sampled: one interval Hdr and one
   fire-delay Hdr serve the whole pool, fed every [stat_every]-th send
   per pool, keeping floats off the per-send path. *)

module Pool (M : Timer_store.S) = struct
  (* Per-flow state is one stride-8 row of a flat int array — eight
     fields, 64 bytes, exactly one cache line — rather than eight
     parallel arrays.  At a million flows the fire path is
     memory-latency-bound, and one line per flow instead of eight is
     the difference between flat and 4x per-send cost. *)
  let o_target = 0  (* ns *)
  let o_min_iv = 1  (* ns *)
  let o_train_start = 2  (* ns *)
  let o_sent = 3  (* sends in the current train; -1 = inactive *)
  let o_sends = 4  (* lifetime sends *)
  let o_last_send = 5  (* ns *)
  let o_next_at = 6  (* requested deadline of the pending send, ns *)
  let o_user = 7  (* caller scratch word, see [user] *)

  type pool = {
    store : int M.t;
    send : int -> bool;  (* flow id -> keep pacing? *)
    intervals : Hdr.t;
    delays : Hdr.t;  (* fire delay vs the requested (unquantized) deadline, µs *)
    stat_every : int;
    mutable stat_ctr : int;
    mutable cap : int;
    mutable n : int;
    mutable f : int array;  (* stride-8 rows, indexed [fid lsl 3 + o_*] *)
    mutable handles : int M.handle array;  (* seeded from the first schedule *)
    mutable total_sends : int;
    mutable catch_ups : int;
    mutable active_n : int;
    mutable now_cache : int;  (* ns, set by [check] for the fire callback *)
    mutable on_fire : Time_ns.t -> int -> unit;  (* preallocated, reused every check *)
    mutable on_pf : int -> unit;  (* prefetch hint handed to the store, see [check] *)
  }

  type t = pool

  let grow_to a len fill =
    let b = Array.make len fill in
    Array.blit a 0 b 0 (Array.length a);
    b

  let reserve p =
    if p.n = p.cap then begin
      let cap = if p.cap = 0 then 64 else p.cap * 2 in
      p.f <- grow_to p.f (cap * 8) 0;
      if Array.length p.handles > 0 then p.handles <- grow_to p.handles cap p.handles.(0);
      p.cap <- cap
    end

  let set_handle p fid h =
    if Array.length p.handles = 0 then p.handles <- Array.make p.cap h;
    p.handles.(fid) <- h

  (* Record the sampled statistics for one fire.  Floats and Hdr bucket
     arithmetic live here, behind the [stat_every] gate, off the
     per-send int path.  [base] is the flow's row offset. *)
  let record_stats p base now_i =
    let last = p.f.(base + o_last_send) in
    if p.f.(base + o_sent) > 0 then begin
      let gap_us = float_of_int (now_i - last) /. 1_000.0 in
      Hdr.record p.intervals gap_us;
      Hdr.record h_intervals gap_us
    end;
    let delay_us = float_of_int (now_i - p.f.(base + o_next_at)) /. 1_000.0 in
    Hdr.record p.delays delay_us
  (* ALLOC003: float conversions feed the two cohort histograms — the
     sampled statistics path, one fire in [stat_every]. *)
  [@@lint.allow "ALLOC003"]

  (* Memory-warming hint for the store's batch dispatcher (the pacing
     wheel calls it a chunk ahead of the real callbacks): touch the
     flow's packed row so [fire]'s otherwise-serial DRAM miss at
     million-flow scale overlaps with its neighbours', and the handle
     slot so [fire]'s store to it upgrades a present line instead of
     filing an RFO miss in the store buffer.  May be called with a flow
     whose entry is then cancelled — pure loads, no observable
     effect. *)
  let[@inline] prefetch_flow p fid =
    ignore (Sys.opaque_identity p.f.(fid lsl 3));
    if Array.length p.handles > 0 then ignore (Sys.opaque_identity p.handles.(fid))

  (* One send for flow [fid]: the paper's rate-based clocking loop over
     packed SoA state.  The ideal time of send k is
     train_start + k * target; when dispatch latency has pushed us past
     it, catch up at the maximal burst rate (min_interval). *)
  let[@hot] fire p _at fid =
    let base = fid lsl 3 in
    if p.f.(base + o_sent) >= 0 then begin
      let now_i = p.now_cache in
      if p.send fid then begin
        p.stat_ctr <- p.stat_ctr + 1;
        if p.stat_ctr >= p.stat_every then begin
          p.stat_ctr <- 0;
          record_stats p base now_i
        end;
        p.f.(base + o_last_send) <- now_i;
        let sent = p.f.(base + o_sent) + 1 in
        p.f.(base + o_sent) <- sent;
        p.f.(base + o_sends) <- p.f.(base + o_sends) + 1;
        p.total_sends <- p.total_sends + 1;
        let ideal = p.f.(base + o_train_start) + (p.f.(base + o_target) * sent) in
        let floor = now_i + p.f.(base + o_min_iv) in
        let next_at =
          if ideal < floor then begin
            p.catch_ups <- p.catch_ups + 1;
            floor
          end
          else ideal
        in
        p.f.(base + o_next_at) <- next_at;
        set_handle p fid (M.schedule_i p.store ~at_i:next_at fid)
      end
      else begin
        (* Train over: idle until [kick]. *)
        p.f.(base + o_sent) <- -1;
        p.active_n <- p.active_n - 1
      end
    end

  let create ?(stat_every = 1) ?(intervals = cohort_intervals)
      ?(delays = Hdr.create ~lowest:0.01 ()) ~tick ~send () =
    if stat_every < 1 then invalid_arg "Rate_clock.Pool.create: stat_every < 1";
    let rec p =
      {
        store = M.create ~tick ();
        send;
        intervals;
        delays;
        stat_every;
        stat_ctr = 0;
        cap = 0;
        n = 0;
        f = [||];
        handles = [||];
        total_sends = 0;
        catch_ups = 0;
        active_n = 0;
        now_cache = 0;
        on_fire = (fun at fid -> fire p at fid);
        on_pf = (fun fid -> prefetch_flow p fid);
      }
    in
    p

  let add p ~target_interval ~min_interval =
    if Time_ns.(min_interval <= 0L) || Time_ns.(min_interval > target_interval) then
      invalid_arg "Rate_clock.Pool.add: need 0 < min_interval <= target_interval";
    reserve p;
    let fid = p.n in
    p.n <- fid + 1;
    let base = fid lsl 3 in
    p.f.(base + o_target) <- Int64.to_int target_interval;
    p.f.(base + o_min_iv) <- Int64.to_int min_interval;
    p.f.(base + o_sent) <- -1;
    fid

  let kick p fid ~now =
    let base = fid lsl 3 in
    if p.f.(base + o_sent) < 0 then begin
      let now_i = Int64.to_int now in
      p.active_n <- p.active_n + 1;
      p.f.(base + o_train_start) <- now_i;
      p.f.(base + o_sent) <- 0;
      p.f.(base + o_next_at) <- now_i;
      (* First transmission due immediately: it fires on the next check,
         the pool's trigger state. *)
      set_handle p fid (M.schedule p.store ~at:now fid)
    end

  let start = kick

  let stop p fid =
    let base = fid lsl 3 in
    if p.f.(base + o_sent) >= 0 then begin
      p.f.(base + o_sent) <- -1;
      p.active_n <- p.active_n - 1;
      M.cancel p.store p.handles.(fid)
    end

  (* The scratch word shares the flow's packed row — by the time the
     [send] callback reads it, [fire] has already pulled that cache
     line, so per-send caller state costs no extra memory traffic.
     {!Paced_sender.Fleet} keeps its remaining-segment count here. *)
  let user p fid = p.f.((fid lsl 3) + o_user)
  let set_user p fid v = p.f.((fid lsl 3) + o_user) <- v

  let[@hot] check p ~now ~limit =
    p.now_cache <- Int64.to_int now;
    M.fire_due p.store ~prefetch:p.on_pf ~now ~limit p.on_fire

  let flows p = p.n
  let active p = p.active_n
  let sends p = p.total_sends
  let catch_ups p = p.catch_ups
  let flow_sends p fid = p.f.((fid lsl 3) + o_sends)
  let flow_active p fid = p.f.((fid lsl 3) + o_sent) >= 0
  let intervals p = p.intervals
  let delays p = p.delays
  let store_pending p = M.pending p.store
  let store_name = M.name
  let store_words p = M.words p.store

  (* Pool-owned flow state, excluding the store: record (16) + the
     stride-8 row array and handle array.  Handles are immediate ints
     for the arena stores; boxed handles are charged to the store's own
     accounting, not double-counted here. *)
  let words p =
    let arr n = if n = 0 then 0 else n + 1 in
    16 + arr (Array.length p.f) + arr (Array.length p.handles)
end
