let m_polls = Metrics.dcounter Metrics.default "net_poll.polls"
let m_packets = Metrics.dcounter Metrics.default "net_poll.packets"

(* Span-less profiler events: interval clamping shows why the adaptive
   poller stopped tracking its aggregation quota. *)
let e_empty_poll = Profile.intern [ "net_poll"; "empty_poll" ]
let e_clamp_min = Profile.intern [ "net_poll"; "interval_clamped_min" ]
let e_clamp_max = Profile.intern [ "net_poll"; "interval_clamped_max" ]

type t = {
  st : Softtimer.t;
  quota : float;
  poll : Time_ns.t -> int;
  min_interval : Time_ns.span;
  max_interval : Time_ns.span;
  mutable interval : Time_ns.span;
  mutable ewma_batch : float;
  mutable running : bool;
  mutable outstanding : Softtimer.handle option;
  mutable polls : int;
  mutable packets : int;
}

let create st ~quota ~poll ?(min_interval = Time_ns.of_us 10.0)
    ?(max_interval = Time_ns.of_ms 1.0) ?(initial_interval = Time_ns.of_us 50.0) () =
  if quota <= 0.0 then invalid_arg "Net_poll.create: quota must be positive";
  {
    st;
    quota;
    poll;
    min_interval;
    max_interval;
    interval = initial_interval;
    ewma_batch = quota;
    running = false;
    outstanding = None;
    polls = 0;
    packets = 0;
  }

(* Multiplicative adaptation toward the aggregation quota, smoothed by
   an EWMA of the observed batch size and clamped to 2x per step so a
   single empty or bursty poll cannot destabilise the interval. *)
let adapt t found =
  let alpha = 0.2 in
  t.ewma_batch <- (alpha *. float_of_int found) +. ((1.0 -. alpha) *. t.ewma_batch);
  let ratio = t.quota /. Float.max t.ewma_batch 0.125 in
  let ratio = Float.min 2.0 (Float.max 0.5 ratio) in
  let next = Time_ns.scale t.interval ratio in
  if Time_ns.(next < t.min_interval) then Profile.event e_clamp_min
  else if Time_ns.(next > t.max_interval) then Profile.event e_clamp_max;
  t.interval <- Time_ns.min t.max_interval (Time_ns.max t.min_interval next)

let rec on_event t now =
  t.outstanding <- None;
  if t.running then begin
    let found = t.poll now in
    t.polls <- t.polls + 1;
    t.packets <- t.packets + found;
    Metrics.dincr m_polls;
    Metrics.dincr ~by:found m_packets;
    if found = 0 then Profile.event e_empty_poll;
    Trace.poll ~at:now ~found;
    adapt t found;
    t.outstanding <- Some (Softtimer.schedule_after t.st t.interval (on_event t))
  end

let start t =
  if not t.running then begin
    t.running <- true;
    t.outstanding <- Some (Softtimer.schedule_after t.st t.interval (on_event t))
  end

let stop t =
  t.running <- false;
  (match t.outstanding with Some h -> Softtimer.cancel t.st h | None -> ());
  t.outstanding <- None

let current_interval t = t.interval
let polls t = t.polls
let packets t = t.packets
let mean_batch t = if t.polls = 0 then 0.0 else float_of_int t.packets /. float_of_int t.polls
