type t = {
  machine : Machine.t;
  interval : Time_ns.span;
  send : Time_ns.t -> bool;
  dispatch_work_us : float;
  mutable line : Interrupt.line option;
  mutable running : bool;
  mutable dispatch_pending : bool;
  mutable epoch : int;
  mutable sends : int;
  mutable last_send : Time_ns.t option;
  intervals : Hdr.t;  (* constant-memory, like Rate_clock.intervals *)
}

let a_dispatch = Profile.intern [ "softintr"; "hw_pacer" ]
let e_coalesced = Profile.intern [ "hw_pacer"; "tick_coalesced" ]

(* The interrupt handler only wakes the software interrupt; the packet
   is transmitted from softintr context, like the BSD thread dispatch
   the paper describes for its hardware-timer experiment (§5.6). *)
let on_tick t _now =
  if t.dispatch_pending then
    (* the previous tick's transmission has not run yet: the callout
       coalesces and this tick's transmission is effectively lost *)
    Profile.event e_coalesced
  else begin
    t.dispatch_pending <- true;
    Machine.submit_quantum t.machine ~attr:a_dispatch ~prio:Cpu.prio_softintr
      ~work_us:t.dispatch_work_us ~trigger:None (fun now ->
        t.dispatch_pending <- false;
        if t.running && t.send now then begin
        (match t.last_send with
        | Some prev -> Hdr.record t.intervals (Time_ns.to_us Time_ns.(now - prev))
        | None -> ());
          t.last_send <- Some now;
          t.sends <- t.sends + 1
        end)
  end

let create machine ~interval ~send ?(dispatch_work_us = 1.2) () =
  if Time_ns.(interval <= 0L) then invalid_arg "Hw_pacer.create: interval must be positive";
  let t =
    {
      machine;
      interval;
      send;
      dispatch_work_us;
      line = None;
      running = false;
      dispatch_pending = false;
      epoch = 0;
      sends = 0;
      last_send = None;
      intervals = Hdr.create ~lowest:0.01 ();
    }
  in
  let line =
    Machine.interrupt_line machine ~name:"pacer-8253" ~source:Trigger.Clock_tick ~latch_depth:1
      ~spl_blockable:true
      ~handler:(fun now -> on_tick t now)
      ()
  in
  t.line <- Some line;
  t

let the_line t = match t.line with Some l -> l | None -> assert false

let rec tick_loop t epoch () =
  if t.running && t.epoch = epoch then begin
    ignore (Machine.raise_irq t.machine (the_line t) ~handler_work_us:0.4 () : bool);
    ignore
      (Engine.schedule_after (Machine.engine t.machine) t.interval (tick_loop t epoch)
        : Engine.handle)
  end

let start t =
  if not t.running then begin
    t.running <- true;
    t.epoch <- t.epoch + 1;
    ignore
      (Engine.schedule_after (Machine.engine t.machine) t.interval (tick_loop t t.epoch)
        : Engine.handle)
  end

let stop t = t.running <- false
let sends t = t.sends
let ticks_raised t = Interrupt.raised (the_line t)
let ticks_lost t = Interrupt.lost (the_line t)
let intervals t = t.intervals
