(** Adaptive rate-based clocking over soft timers (paper §4.1).

    A rate clock transmits one packet per soft-timer event, aiming at a
    target inter-transmission interval.  Because soft-timer events fire
    probabilistically late, scheduling each event a fixed interval ahead
    would drift below the target rate; the paper's algorithm instead
    tracks the average transmission rate since the start of the current
    packet train and, when behind, schedules the next transmission at
    the maximal allowable burst rate (the [min_interval], e.g. the link
    speed) until the average catches up.

    Only one transmission event is outstanding at any time, so a long
    trigger-state gap produces one late packet, not a burst. *)

type t

val create :
  Softtimer.t ->
  target_interval:Time_ns.span ->
  min_interval:Time_ns.span ->
  send:(Time_ns.t -> bool) ->
  unit ->
  t
(** [send now] must transmit one packet and return [true], or return
    [false] when nothing is pending — which ends the current train (the
    clock goes idle until {!kick}).
    @raise Invalid_argument unless [0 < min_interval <= target_interval]. *)

val start : t -> unit
(** Begin a train: the first transmission is attempted at the next
    trigger state. *)

val kick : t -> unit
(** Restart after the clock went idle (new data queued).  No-op while a
    train is active. *)

val stop : t -> unit
(** Go idle; the outstanding event is cancelled. *)

val active : t -> bool
val sends : t -> int

val intervals : t -> Hdr.t
(** Inter-transmission gaps within trains, in microseconds — the
    statistic of the paper's Tables 4 and 5.  A constant-memory
    histogram: memory is bounded by the number of distinct buckets, not
    by the number of sends, so a long-lived clock never grows. *)
