(** Adaptive rate-based clocking over soft timers (paper §4.1).

    A rate clock transmits one packet per soft-timer event, aiming at a
    target inter-transmission interval.  Because soft-timer events fire
    probabilistically late, scheduling each event a fixed interval ahead
    would drift below the target rate; the paper's algorithm instead
    tracks the average transmission rate since the start of the current
    packet train and, when behind, schedules the next transmission at
    the maximal allowable burst rate (the [min_interval], e.g. the link
    speed) until the average catches up.

    Only one transmission event is outstanding at any time, so a long
    trigger-state gap produces one late packet, not a burst.

    Two shapes are provided: the single-flow {!t} (one closure-driven
    clock per sender, right for a handful of flows and for tests that
    inspect one clock in isolation), and the flow-id-indexed {!Pool}
    (struct-of-arrays state over one shared timer store, right for the
    million-flow pacing experiment). *)

type t

val cohort_intervals : Hdr.t
(** The interval histogram shared by every clock and pool that does not
    opt into a private one.  An [Hdr.t] costs on the order of a
    kilobyte; at a million flows a per-flow copy is gigabytes of bucket
    arrays, so sharing is the default and isolation is the opt-in. *)

val create :
  ?intervals:Hdr.t ->
  Softtimer.t ->
  target_interval:Time_ns.span ->
  min_interval:Time_ns.span ->
  send:(Time_ns.t -> bool) ->
  unit ->
  t
(** [send now] must transmit one packet and return [true], or return
    [false] when nothing is pending — which ends the current train (the
    clock goes idle until {!kick}).

    [intervals] defaults to {!cohort_intervals}; pass
    [~intervals:(Hdr.create ~lowest:0.01 ())] to give this clock a
    private histogram whose statistics can be read in isolation.
    @raise Invalid_argument unless [0 < min_interval <= target_interval]. *)

val start : t -> unit
(** Begin a train: the first transmission is attempted at the next
    trigger state. *)

val kick : t -> unit
(** Restart after the clock went idle (new data queued).  No-op while a
    train is active. *)

val stop : t -> unit
(** Go idle; the outstanding event is cancelled. *)

val active : t -> bool
val sends : t -> int

val intervals : t -> Hdr.t
(** Inter-transmission gaps within trains, in microseconds — the
    statistic of the paper's Tables 4 and 5.  A constant-memory
    histogram: memory is bounded by the number of distinct buckets, not
    by the number of sends, so a long-lived clock never grows.  Shared
    with the cohort unless the clock was created with a private one. *)

(** Flow-id-indexed rate clocks over one shared timer store.

    All per-flow state lives in parallel unboxed [int] arrays
    (nanoseconds as native ints) — no record, closure, handle box or
    histogram per flow — and the flow id itself is the timer payload,
    so the steady send → reschedule cycle allocates only the one boxed
    deadline handed to the store API.  Interval and fire-delay
    statistics go to cohort histograms, sampled every [stat_every]-th
    send. *)
module Pool (M : Timer_store.S) : sig
  type t

  val create :
    ?stat_every:int ->
    ?intervals:Hdr.t ->
    ?delays:Hdr.t ->
    tick:Time_ns.span ->
    send:(int -> bool) ->
    unit ->
    t
  (** [send fid] transmits one packet for flow [fid] and returns [true],
      or [false] to end that flow's train (idle until {!kick}).
      [stat_every] (default 1) samples every n-th fire into the
      histograms; [intervals] defaults to {!cohort_intervals}; [delays]
      defaults to a fresh pool-private histogram.
      @raise Invalid_argument if [stat_every < 1]. *)

  val add : t -> target_interval:Time_ns.span -> min_interval:Time_ns.span -> int
  (** Register a flow; returns its id.  The flow starts idle.
      @raise Invalid_argument unless
      [0 < min_interval <= target_interval]. *)

  val start : t -> int -> now:Time_ns.t -> unit
  (** Begin a train for the flow: its first transmission is due
      immediately (it fires on the next {!check}).  No-op while
      active. *)

  val kick : t -> int -> now:Time_ns.t -> unit
  (** Same as {!start}: restart an idle flow's train. *)

  val stop : t -> int -> unit
  (** Idle the flow and cancel its pending transmission. *)

  val check : t -> now:Time_ns.t -> limit:int -> Fire_outcome.t
  (** Dispatch due transmissions — the pool's trigger state.  [limit]
      bounds the batch exactly as {!Timer_store.S.fire_due} does. *)

  val flows : t -> int
  val active : t -> int
  val sends : t -> int

  val catch_ups : t -> int
  (** Sends whose next deadline was clamped to [now + min_interval]
      because dispatch latency pushed the flow behind its ideal
      schedule — the pool-level counterpart of the single-flow
      [rate_clock/catch_up_send] profile event. *)

  val flow_sends : t -> int -> int
  val flow_active : t -> int -> bool

  val user : t -> int -> int
  (** Per-flow caller scratch word, initially 0.  It lives in the
      flow's packed state row, so reading or writing it from inside the
      [send] callback touches a cache line the fire path has already
      pulled — per-send caller state with no extra memory traffic.
      {!Paced_sender.Fleet} keeps its remaining-segment count here. *)

  val set_user : t -> int -> int -> unit

  val intervals : t -> Hdr.t
  (** Sampled inter-transmission gaps across the whole cohort, µs. *)

  val delays : t -> Hdr.t
  (** Sampled fire delay vs the {e requested} (unquantized) deadline,
      µs — for an approximate store this includes the quantization
      error, which is the point of measuring it. *)

  val store_pending : t -> int
  val store_name : string

  val store_words : t -> int
  (** The underlying store's analytic heap footprint
      ([Timer_store.S.words]), 64-bit words. *)

  val words : t -> int
  (** The pool's own flow-state footprint (packed rows + handle array),
      excluding the store — add {!store_words} for the total. *)
end
