let m_checks = Metrics.dcounter Metrics.default "softtimer.checks"
let m_fired = Metrics.dcounter Metrics.default "softtimer.fired"
let m_scheduled = Metrics.dcounter Metrics.default "softtimer.scheduled"
let m_cancelled = Metrics.dcounter Metrics.default "softtimer.cancelled"
let h_fire_delay = Metrics.dhistogram Metrics.default "softtimer.fire_delay_us"

type pending_event = { id : int; due : Time_ns.t; handler : Time_ns.t -> unit }

type t = {
  machine : Machine.t;
  store : pending_event Timer_store.inst;
  store_slots : int;  (* slot figure reported to the sanitizer *)
  measure_hz : int64;
  intr_hz : int64;
  ns_per_tick : float;
  check_budget : int;  (* max handler dispatches per trigger-state check *)
  mutable next_id : int;  (* timer identity carried by the trace events *)
  mutable fired : int;
  mutable checks : int;
  mutable attached : bool;
  mutable record_delays : bool;
  delays : Stats.Sample.t;
}

(* The ticket plus the trace identity: cancel and re-arm must stamp the
   same [id] the schedule carried, so the audit can chain them. *)
type handle = { ticket : Timer_store.ticket; ev_id : int }

(* Process-wide default store, consulted when [attach] is not given an
   explicit one.  Lets the CLI (or a test) swap the facility's pending
   set without threading a parameter through every experiment.
   RACE002: written only from the main domain before any parallel
   fan-out (CLI argument parsing); experiment workers read it at
   attach time and never write it. *)
let default_store : (module Timer_store.S) option ref =
  ref None
[@@lint.allow "RACE002"]

let set_default_store s = default_store := s

(* Process-wide check budget (paper §4.2 batching discussion): at most
   this many handlers dispatch per trigger-state check; the remainder of
   a due batch waits for the next trigger state or the backup interrupt.
   [Atomic] rather than [ref]: workers of a parallel sweep may attach
   while the main domain still holds the CLI value — a plain ref would
   be a data race under the lint's RACE rules. *)
let default_check_budget = Atomic.make max_int

let set_default_check_budget n =
  if n < 1 then invalid_arg "Softtimer.set_default_check_budget: budget must be >= 1";
  Atomic.set default_check_budget n

let machine t = t.machine
let measure_resolution t = t.measure_hz
let interrupt_clock_resolution t = t.intr_hz
let x_ratio t = Int64.div t.measure_hz t.intr_hz

let measure_time t =
  let now = Engine.now (Machine.engine t.machine) in
  Int64.of_float (Int64.to_float now /. t.ns_per_tick)

let ns_of_tick t tick =
  (* Round up: a tick boundary maps to the first instant at or after it. *)
  Int64.of_float (Float.ceil (Int64.to_float tick *. t.ns_per_tick))

let a_fire = Profile.intern [ "softtimer"; "fire" ]

(* The per-trigger-state check: compare the cached earliest deadline with
   now and fire anything due.  Firing charges the dispatch cost (a
   procedure call) to the CPU and runs the handler inline.  [kind] is
   the trigger state that performed this check — the profiler's
   per-trigger dispatch breakdown (paper Table 1) records which state
   fired each event and at what latency. *)
let check t kind now =
  t.checks <- t.checks + 1;
  Metrics.dincr m_checks;
  match t.store.Timer_store.i_next_deadline () with
  | Some d when Time_ns.(d <= now) ->
    let fire_cost = (Machine.profile t.machine).Costs.softtimer_fire_us in
    let fire_attr = if Profile.enabled () then Some a_fire else None in
    let source = Trigger.name kind in
    let outcome =
      t.store.Timer_store.i_fire_due ~now ~limit:t.check_budget (fun due ev ->
          t.fired <- t.fired + 1;
          Metrics.dincr m_fired;
          Trace.soft_fire ~at:now ~id:ev.id ~due;
          Profile.dispatch ~source ~delay:Time_ns.(now - due);
          if t.record_delays then
            Stats.Sample.add t.delays (Time_ns.to_us Time_ns.(now - due));
          Metrics.drecord h_fire_delay (Time_ns.to_us Time_ns.(now - due));
          Machine.submit_quantum t.machine ?attr:fire_attr ~prio:Cpu.prio_intr
            ~klass:Cpu.klass_timer ~work_us:fire_cost ~trigger:None (fun _ -> ());
          ev.handler now)
    in
    (* One record per check that found work: the audit uses
       [scanned > fired] to see that a check reached the store but a
       budget kept it from this timer.  Emitted after the batch's
       [Soft_fire]s — same timestamp, dispatch order. *)
    let scanned = Fire_outcome.scanned outcome in
    if scanned > 0 then
      Trace.soft_check ~at:now ~src:source ~scanned ~fired:(Fire_outcome.fired outcome)
  | Some _ | None -> ()

let attach ?store ?(wheel_tick = Time_ns.of_us 10.0) ?(wheel_slots = 512) machine =
  if Machine.check_hook_attached machine then
    invalid_arg "Softtimer.attach: a facility is already attached to this machine";
  let profile = Machine.profile machine in
  let store_mod =
    match store with
    | Some s -> s
    | None -> (
      match !default_store with
      | Some s -> s
      | None -> Timer_store.wheel ~slots:wheel_slots ())
  in
  let t =
    {
      machine;
      store = Timer_store.instantiate store_mod ~tick:wheel_tick ();
      store_slots = wheel_slots;
      measure_hz = Int64.of_float (profile.Costs.cpu_mhz *. 1e6);
      intr_hz = Int64.of_float profile.Costs.interrupt_clock_hz;
      ns_per_tick = 1e9 /. (profile.Costs.cpu_mhz *. 1e6);
      check_budget = Atomic.get default_check_budget;
      next_id = 0;
      fired = 0;
      checks = 0;
      attached = true;
      record_delays = false;
      delays = Stats.Sample.create ();
    }
  in
  Machine.set_check_hook machine (Some (check t));
  Machine.set_idle_deadline_fn machine (Some (fun () -> t.store.Timer_store.i_next_deadline ()));
  Machine.start_interrupt_clock machine;
  (* Pull-style store stats: the sanitizer (lib/check) reads these to
     assert the residency bound during runs.  The slots figure is the
     configured wheel size; every store's compaction floor is at or
     below it, so the sanitizer's [resident <= 2 * max pending slots]
     invariant is store-independent. *)
  Metrics.probe Metrics.default "softtimer.wheel_resident" (fun () ->
      float_of_int (t.store.Timer_store.i_resident ()));
  Metrics.probe Metrics.default "softtimer.wheel_pending" (fun () ->
      float_of_int (t.store.Timer_store.i_pending ()));
  Metrics.probe Metrics.default "softtimer.wheel_slots" (fun () ->
      float_of_int t.store_slots);
  t

let detach t =
  if t.attached then begin
    t.attached <- false;
    Machine.set_check_hook t.machine None;
    Machine.set_idle_deadline_fn t.machine None
  end

let store_name t = t.store.Timer_store.i_name

let notify_if_earliest t due =
  (* If this event became the earliest, an idle checking CPU may be
     armed for a later (or no) deadline: wake it up for this one. *)
  match t.store.Timer_store.i_next_deadline () with
  | Some d when t.attached && Time_ns.(d = due) -> Machine.notify_deadline_changed t.machine
  | _ -> ()

let schedule_soft_event t ~ticks handler =
  if Int64.compare ticks 0L < 0 then
    invalid_arg "Softtimer.schedule_soft_event: negative ticks";
  let sched = measure_time t in
  (* Fires once measure_time > sched + ticks, i.e. at tick sched+ticks+1. *)
  let due = ns_of_tick t (Int64.add sched (Int64.add ticks 1L)) in
  let id = t.next_id in
  t.next_id <- id + 1;
  Metrics.dincr m_scheduled;
  Trace.soft_sched ~at:(Engine.now (Machine.engine t.machine)) ~id ~due;
  let ticket = t.store.Timer_store.i_schedule ~at:due { id; due; handler } in
  notify_if_earliest t due;
  { ticket; ev_id = id }

let schedule_after t span handler =
  let span = Time_ns.max span 0L in
  let ticks = Int64.of_float (Float.ceil (Int64.to_float span /. t.ns_per_tick)) in
  schedule_soft_event t ~ticks handler

let cancel t h =
  if h.ticket.Timer_store.tk_pending () then begin
    Metrics.dincr m_cancelled;
    Trace.soft_cancel
      ~at:(Engine.now (Machine.engine t.machine))
      ~id:h.ev_id
      ~due:(h.ticket.Timer_store.tk_deadline ())
  end;
  h.ticket.Timer_store.tk_cancel ()

let rearm t h ~ticks =
  if Int64.compare ticks 0L < 0 then invalid_arg "Softtimer.rearm: negative ticks";
  if not (h.ticket.Timer_store.tk_pending ()) then false
  else begin
    let at = Engine.now (Machine.engine t.machine) in
    Trace.soft_cancel ~at ~id:h.ev_id ~due:(h.ticket.Timer_store.tk_deadline ());
    let sched = measure_time t in
    let due = ns_of_tick t (Int64.add sched (Int64.add ticks 1L)) in
    (* A re-arm is cancel + schedule with the handle kept; the trace
       records it as exactly that pair — same id, so the audit keeps
       one causal chain per handle — and digests are independent of
       whether a client re-arms or reschedules. *)
    Trace.soft_sched ~at ~id:h.ev_id ~due;
    Metrics.dincr m_scheduled;
    let moved = h.ticket.Timer_store.tk_rearm due in
    if moved then notify_if_earliest t due;
    moved
  end

let pending t = t.store.Timer_store.i_pending ()

let wheel_stats t =
  (t.store.Timer_store.i_resident (), t.store.Timer_store.i_pending (), t.store_slots)
let fired t = t.fired
let checks t = t.checks
let set_record_delays t b = t.record_delays <- b
let delays t = t.delays
