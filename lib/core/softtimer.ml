let m_checks = Metrics.counter Metrics.default "softtimer.checks"
let m_fired = Metrics.counter Metrics.default "softtimer.fired"
let m_scheduled = Metrics.counter Metrics.default "softtimer.scheduled"
let m_cancelled = Metrics.counter Metrics.default "softtimer.cancelled"
let h_fire_delay = Metrics.hdr Metrics.default "softtimer.fire_delay_us"

type pending_event = { due : Time_ns.t; handler : Time_ns.t -> unit }

type t = {
  machine : Machine.t;
  wheel : pending_event Timing_wheel.t;
  measure_hz : int64;
  intr_hz : int64;
  ns_per_tick : float;
  mutable fired : int;
  mutable checks : int;
  mutable attached : bool;
  mutable record_delays : bool;
  delays : Stats.Sample.t;
}

type handle = Timing_wheel.handle

let machine t = t.machine
let measure_resolution t = t.measure_hz
let interrupt_clock_resolution t = t.intr_hz
let x_ratio t = Int64.div t.measure_hz t.intr_hz

let measure_time t =
  let now = Engine.now (Machine.engine t.machine) in
  Int64.of_float (Int64.to_float now /. t.ns_per_tick)

let ns_of_tick t tick =
  (* Round up: a tick boundary maps to the first instant at or after it. *)
  Int64.of_float (Float.ceil (Int64.to_float tick *. t.ns_per_tick))

let a_fire = Profile.intern [ "softtimer"; "fire" ]

(* The per-trigger-state check: compare the cached earliest deadline with
   now and fire anything due.  Firing charges the dispatch cost (a
   procedure call) to the CPU and runs the handler inline.  [kind] is
   the trigger state that performed this check — the profiler's
   per-trigger dispatch breakdown (paper Table 1) records which state
   fired each event and at what latency. *)
let check t kind now =
  t.checks <- t.checks + 1;
  Metrics.incr m_checks;
  match Timing_wheel.next_deadline t.wheel with
  | Some d when Time_ns.(d <= now) ->
    let fire_cost = (Machine.profile t.machine).Costs.softtimer_fire_us in
    let fire_attr = if Profile.enabled () then Some a_fire else None in
    let source = Trigger.name kind in
    ignore
      (Timing_wheel.fire_due t.wheel ~now (fun due ev ->
           t.fired <- t.fired + 1;
           Metrics.incr m_fired;
           Trace.soft_fire ~at:now ~due;
           Profile.dispatch ~source ~delay:Time_ns.(now - due);
           if t.record_delays then
             Stats.Sample.add t.delays (Time_ns.to_us Time_ns.(now - due));
           Hdr.record h_fire_delay (Time_ns.to_us Time_ns.(now - due));
           Machine.submit_quantum t.machine ?attr:fire_attr ~prio:Cpu.prio_intr
             ~work_us:fire_cost ~trigger:None (fun _ -> ());
           ev.handler now)
        : int)
  | Some _ | None -> ()

let attach ?(wheel_tick = Time_ns.of_us 10.0) ?(wheel_slots = 512) machine =
  if Machine.check_hook_attached machine then
    invalid_arg "Softtimer.attach: a facility is already attached to this machine";
  let profile = Machine.profile machine in
  let t =
    {
      machine;
      wheel = Timing_wheel.create ~slots:wheel_slots ~tick:wheel_tick ();
      measure_hz = Int64.of_float (profile.Costs.cpu_mhz *. 1e6);
      intr_hz = Int64.of_float profile.Costs.interrupt_clock_hz;
      ns_per_tick = 1e9 /. (profile.Costs.cpu_mhz *. 1e6);
      fired = 0;
      checks = 0;
      attached = true;
      record_delays = false;
      delays = Stats.Sample.create ();
    }
  in
  Machine.set_check_hook machine (Some (check t));
  Machine.set_idle_deadline_fn machine (Some (fun () -> Timing_wheel.next_deadline t.wheel));
  Machine.start_interrupt_clock machine;
  (* Pull-style wheel stats: the sanitizer (lib/check) reads these to
     assert the residency bound during runs. *)
  Metrics.probe Metrics.default "softtimer.wheel_resident" (fun () ->
      float_of_int (Timing_wheel.resident t.wheel));
  Metrics.probe Metrics.default "softtimer.wheel_pending" (fun () ->
      float_of_int (Timing_wheel.pending t.wheel));
  Metrics.probe Metrics.default "softtimer.wheel_slots" (fun () ->
      float_of_int (Timing_wheel.slots t.wheel));
  t

let detach t =
  if t.attached then begin
    t.attached <- false;
    Machine.set_check_hook t.machine None;
    Machine.set_idle_deadline_fn t.machine None
  end

let schedule_soft_event t ~ticks handler =
  if Int64.compare ticks 0L < 0 then
    invalid_arg "Softtimer.schedule_soft_event: negative ticks";
  let sched = measure_time t in
  (* Fires once measure_time > sched + ticks, i.e. at tick sched+ticks+1. *)
  let due = ns_of_tick t (Int64.add sched (Int64.add ticks 1L)) in
  Metrics.incr m_scheduled;
  Trace.soft_sched ~at:(Engine.now (Machine.engine t.machine)) ~due;
  let h = Timing_wheel.schedule t.wheel ~at:due { due; handler } in
  (* If this event became the earliest, an idle checking CPU may be
     armed for a later (or no) deadline: wake it up for this one. *)
  (match Timing_wheel.next_deadline t.wheel with
  | Some d when t.attached && Time_ns.(d = due) -> Machine.notify_deadline_changed t.machine
  | _ -> ());
  h

let schedule_after t span handler =
  let span = Time_ns.max span 0L in
  let ticks = Int64.of_float (Float.ceil (Int64.to_float span /. t.ns_per_tick)) in
  schedule_soft_event t ~ticks handler

let cancel t h =
  if Timing_wheel.handle_pending h then begin
    Metrics.incr m_cancelled;
    Trace.soft_cancel
      ~at:(Engine.now (Machine.engine t.machine))
      ~due:(Timing_wheel.handle_deadline h)
  end;
  Timing_wheel.cancel t.wheel h
let pending t = Timing_wheel.pending t.wheel

let wheel_stats t =
  (Timing_wheel.resident t.wheel, Timing_wheel.pending t.wheel, Timing_wheel.slots t.wheel)
let fired t = t.fired
let checks t = t.checks
let set_record_delays t b = t.record_delays <- b
let delays t = t.delays
