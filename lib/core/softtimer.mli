(** The soft-timer facility (paper §3).

    Soft timers schedule events at microsecond granularity without
    dedicated hardware timer interrupts: at every {e trigger state} the
    kernel reaches (system-call return, trap return, interrupt return,
    network-subsystem loops, idle loop), the facility compares the
    current time against the earliest pending event and fires due
    handlers at the cost of a procedure call.  A periodic hardware
    interrupt — the ordinary system clock — backs the facility up, so an
    event scheduled [T] ticks ahead fires after more than [T] but less
    than [T + X + 1] ticks, where
    [X = measure_resolution / interrupt_clock_resolution] (Figure 1).

    The facility's interface is the paper's, verbatim:
    {!measure_resolution}, {!measure_time}, {!schedule_soft_event} and
    {!interrupt_clock_resolution}.  Pending events live in a pluggable
    {!Timer_store} (the paper's modified hashed timing wheel by
    default); the per-trigger check costs one cached comparison
    whichever store backs it. *)

type t

type handle
(** A scheduled event; cancellable (and re-armable) until it fires. *)

val set_default_store : (module Timer_store.S) option -> unit
(** Process-wide store used by {!attach} when no explicit [?store] is
    given; [None] restores the built-in default (the hashed wheel).
    Lets the CLI swap the facility's pending set for a whole run. *)

val set_default_check_budget : int -> unit
(** Process-wide cap on handler dispatches per trigger-state check,
    read by {!attach} (default: unlimited).  With a budget [b], a check
    that finds more than [b] due events fires the earliest [b] and
    leaves the remainder — deadline and tie order intact — for the next
    trigger state or the backup interrupt; the trace's [Soft_check]
    records ([scanned] vs [fired]) make the withheld dispatches visible
    to the why-late audit as {e check-skipped} delay.
    @raise Invalid_argument if the budget is less than 1. *)

val attach :
  ?store:(module Timer_store.S) ->
  ?wheel_tick:Time_ns.span ->
  ?wheel_slots:int ->
  Machine.t ->
  t
(** Install the facility on a machine: hooks the per-trigger-state
    check, provides the idle loop's next-deadline oracle and starts the
    machine's periodic interrupt clock (the backup).  At most one
    facility may be attached to a machine at a time.
    [store] defaults to the store set via {!set_default_store}, falling
    back to the hashed wheel with [wheel_slots] slots.  [wheel_tick]
    (every store's [tick]) defaults to 10 us, [wheel_slots] to 512. *)

val store_name : t -> string
(** Name of the store backing this facility (see {!Store_registry}). *)

val detach : t -> unit
(** Unhook the facility.  Pending events never fire afterwards. *)

val machine : t -> Machine.t

(** {2 The paper's four operations} *)

val measure_resolution : t -> int64
(** Resolution of the measurement clock in Hz — the CPU clock (the
    paper reads the Pentium cycle counter). *)

val measure_time : t -> int64
(** Current time in ticks of the measurement clock.  Not synchronised
    with any standard time base; meant for measuring intervals. *)

val interrupt_clock_resolution : t -> int64
(** Frequency (Hz) of the periodic timer interrupt that schedules
    overdue soft-timer events — the facility's worst-case granularity. *)

val schedule_soft_event : t -> ticks:int64 -> (Time_ns.t -> unit) -> handle
(** [schedule_soft_event t ~ticks handler] arranges for [handler] to be
    called at least [ticks] measurement-clock ticks in the future: at
    the first trigger state at which [measure_time] exceeds its
    schedule-time value by at least [ticks + 1] (the +1 accounts for the
    schedule instant not coinciding with a tick edge), and in any case
    by the next backup interrupt after that.
    @raise Invalid_argument if [ticks < 0]. *)

(** {2 Convenience and introspection} *)

val schedule_after : t -> Time_ns.span -> (Time_ns.t -> unit) -> handle
(** Like {!schedule_soft_event} with the delay given as a span (rounded
    up to whole measurement ticks). *)

val x_ratio : t -> int64
(** [X = measure_resolution / interrupt_clock_resolution]; the width of
    the firing window in measurement ticks. *)

val cancel : t -> handle -> unit

val rearm : t -> handle -> ticks:int64 -> bool
(** [rearm t h ~ticks] moves a pending event to a new deadline [ticks]
    measurement ticks ahead, exactly as if it were cancelled and
    rescheduled (the trace records that pair) but keeping [h] valid —
    the TCP retransmit push-out operation.  [false] when the event
    already fired or was cancelled.
    @raise Invalid_argument if [ticks < 0]. *)

val pending : t -> int

(** [(resident, pending, slots)] of the backing store — the figures
    behind the sanitizer's residency invariant
    [resident <= 2 * max pending slots] ([slots] is the configured
    wheel size; every store's compaction floor is at or below it).
    Also published as the [softtimer.wheel_*] probes in
    {!Metrics.default}. *)
val wheel_stats : t -> int * int * int
val fired : t -> int
(** Events fired so far. *)

val checks : t -> int
(** Trigger-state checks performed so far. *)

val set_record_delays : t -> bool -> unit
(** When enabled, the firing delay of every event (actual minus
    scheduled due time, in microseconds) is recorded in {!delays}. *)

val delays : t -> Stats.Sample.t
