(** Rate-based clocking with a conventional hardware interrupt timer —
    the baseline the paper compares soft timers against (§5.6, §5.7).

    A periodic hardware timer is programmed at the target transmission
    interval; every delivered tick dispatches a BSD software interrupt
    that transmits one pending packet.  Each tick pays the full
    interrupt cost (state save/restore + cache/TLB pollution), and ticks
    that arrive while the previous one is still unserviced — interrupts
    disabled, long critical sections — are lost, which is why the
    measured average interval falls short of the programmed rate
    (Tables 4 and 5: 43.6 us at a 40 us target). *)

type t

val create :
  Machine.t ->
  interval:Time_ns.span ->
  send:(Time_ns.t -> bool) ->
  ?dispatch_work_us:float ->
  unit ->
  t
(** [send] transmits one pending packet ([false] = nothing pending; the
    tick is then idle but still paid for).  [dispatch_work_us] is the
    software-interrupt dispatch cost per tick (default 1.2). *)

val start : t -> unit
val stop : t -> unit
val sends : t -> int
val ticks_raised : t -> int
val ticks_lost : t -> int

val intervals : t -> Hdr.t
(** Inter-transmission gaps in microseconds (constant-memory
    histogram). *)
