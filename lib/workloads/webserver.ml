type server_kind = Apache | Flash

type http_mode = Http | Persistent of int

type net_mode = Interrupts | Soft_polling of float

type pacing = No_pacing | Soft_pacing | Hw_pacing of Time_ns.span

type config = {
  kind : server_kind;
  http : http_mode;
  net : net_mode;
  pacing : pacing;
  profile : Costs.profile;
  connections : int;
  nic_count : int;
  seed : int;
  extra_timer_hz : float option;
  attach_facility : bool;
  background_compute : bool;
  locality_override : Cache.locality option;
}

let default_config =
  {
    kind = Apache;
    http = Http;
    net = Interrupts;
    pacing = No_pacing;
    profile = Costs.pentium_ii_300;
    connections = 16;
    nic_count = 3;
    seed = 7;
    extra_timer_hz = None;
    attach_facility = false;
    background_compute = false;
    locality_override = None;
  }

(* ------------------------------------------------------------------ *)
(* Packet metadata on the simulated LAN.                               *)

type wkind =
  | Syn
  | Synack
  | Handshake_ack
  | Get
  | Ack_small  (** server's ACK of a GET / other bare ACK to client *)
  | Data of int  (** i-th data segment of the current response *)
  | Data_ack
  | Fin  (** client closes *)
  | Fin_ack  (** server's FIN+ACK back *)
  | Last_ack

type wmeta = { conn : int; wkind : wkind }

(* ------------------------------------------------------------------ *)
(* The request anatomy: every duration in microseconds at 300 MHz      *)
(* (Kernel steps rescale them to the machine's profile).               *)

type anatomy = {
  locality : Cache.locality;
  rx_process_us : float;  (** per-packet input protocol processing *)
  p_tcpip_trigger : float;
      (** probability an input-processing quantum ends in one of the
          network subsystem's additional trigger states (§5.2) *)
  setup_syscalls : int;
  setup_syscall_body : Dist.t;
  setup_user_segments : int;
  setup_user : Dist.t;
  setup_kernel_extra_us : float;  (** socket/PCB allocation etc. *)
  setup_traps : float;  (** expected page faults at connection setup *)
  pre_syscalls : int;
  pre_syscall_body : Dist.t;
  pre_user_segments : int;
  pre_user : Dist.t;
  data_packets : int;
  copy_per_packet_us : float;  (** socket copy + checksum *)
  writev_every : int;  (** a write(2) syscall per this many packets *)
  post_syscalls : int;
  post_syscall_body : Dist.t;
  post_user_segments : int;
  post_user : Dist.t;
  request_ctx_switches : int;
  window_updates : int;  (** bare ACK/window-update packets per request *)
  teardown_syscalls : int;
  teardown_syscall_body : Dist.t;
  teardown_user_us : float;
}

let lognormal ~median ~sigma = Dist.Lognormal { mu = log median; sigma }

let apache_anatomy =
  {
    locality = Cache.apache;
    rx_process_us = 13.0;
    p_tcpip_trigger = 0.20;
    setup_syscalls = 5;
    setup_syscall_body = Dist.Erlang { k = 2; mean = 7.0 };
    setup_user_segments = 2;
    setup_user =
      Dist.Mixture
        [ (0.7, lognormal ~median:55.0 ~sigma:0.5); (0.3, Dist.Uniform (88.0, 138.0)) ];
    setup_kernel_extra_us = 130.0;
    setup_traps = 1.0;
    pre_syscalls = 6;
    pre_syscall_body = Dist.Erlang { k = 2; mean = 7.5 };
    pre_user_segments = 6;
    pre_user =
      Dist.Mixture
        [
          (0.30, Dist.Uniform (0.5, 3.0));  (* back-to-back syscalls *)
          (0.57, lognormal ~median:46.0 ~sigma:0.5);
          (0.13, Dist.Uniform (88.0, 138.0));
        ];
    data_packets = 5;
    copy_per_packet_us = 19.0;
    writev_every = 3;
    post_syscalls = 4;
    post_syscall_body = Dist.Erlang { k = 2; mean = 7.5 };
    post_user_segments = 3;
    post_user =
      Dist.Mixture
        [
          (0.30, Dist.Uniform (0.5, 3.0));  (* back-to-back syscalls *)
          (0.57, lognormal ~median:46.0 ~sigma:0.5);
          (0.13, Dist.Uniform (88.0, 138.0));
        ];
    request_ctx_switches = 2;
    window_updates = 2;
    teardown_syscalls = 2;
    teardown_syscall_body = Dist.Erlang { k = 2; mean = 5.0 };
    teardown_user_us = 25.0;
  }

let flash_anatomy =
  {
    locality = Cache.flash;
    rx_process_us = 10.0;
    p_tcpip_trigger = 0.20;
    setup_syscalls = 7;
    setup_syscall_body = Dist.Erlang { k = 2; mean = 7.0 };
    setup_user_segments = 2;
    setup_user =
      Dist.Mixture
        [ (0.85, lognormal ~median:62.0 ~sigma:0.35); (0.15, Dist.Uniform (95.0, 130.0)) ];
    setup_kernel_extra_us = 120.0;
    setup_traps = 0.15;
    pre_syscalls = 2;
    pre_syscall_body = Dist.Erlang { k = 2; mean = 5.0 };
    pre_user_segments = 1;
    pre_user =
      Dist.Mixture
        [ (0.9, lognormal ~median:12.0 ~sigma:0.5); (0.1, Dist.Uniform (85.0, 115.0)) ];
    data_packets = 5;
    copy_per_packet_us = 6.0;
    writev_every = 5;
    post_syscalls = 1;
    post_syscall_body = Dist.Erlang { k = 2; mean = 5.0 };
    post_user_segments = 0;
    post_user = Dist.Constant 0.0;
    request_ctx_switches = 0;
    window_updates = 1;
    teardown_syscalls = 3;
    teardown_syscall_body = Dist.Erlang { k = 2; mean = 6.0 };
    teardown_user_us = 40.0;
  }

let anatomy_of = function Apache -> apache_anatomy | Flash -> flash_anatomy

(* Client-side latencies (not CPU-scaled: they belong to the LAN and the
   client machines, which are never the bottleneck). *)
let wire_latency = Time_ns.of_us 30.0
let client_turnaround = Time_ns.of_us 50.0
let client_think = Time_ns.of_us 80.0
let client_restart = Time_ns.of_us 120.0

(* ------------------------------------------------------------------ *)

type conn_client_state = {
  mutable data_got : int;
  mutable reqs_left : int;
}

type t = {
  cfg : config;
  anatomy : anatomy;
  engine : Engine.t;
  machine : Machine.t;
  facility : Softtimer.t option;
  mutable poller : Net_poll.t option;
  rng : Prng.t;
  nics : wmeta Nic.t array;
  clients : conn_client_state array;
  mutable completed : int;
  mutable measuring : bool;
  mutable measured : int;
  mutable measure_span : Time_ns.span;
  (* pacing *)
  pace_queue : (Time_ns.t -> unit) Queue.t;
  mutable pace_in_train : bool;
  mutable pace_last : Time_ns.t;
  mutable pace_sends : int;
  pace_intervals : Stats.Sample.t;
  mutable hw_pacer : Hw_pacer.t option;
  mutable started : bool;
}

let config t = t.cfg
let engine t = t.engine
let machine t = t.machine
let facility t = t.facility
let poller t = t.poller
let completed_requests t = t.completed
let pacing_intervals t = t.pace_intervals
let pacer_sends t = t.pace_sends

let rx_interrupts t =
  Array.fold_left (fun acc nic -> acc + Interrupt.delivered (Nic.rx_line nic)) 0 t.nics

let rx_packets t = Array.fold_left (fun acc nic -> acc + Nic.rx_packets nic) 0 t.nics
let rx_batches t = Array.fold_left (fun acc nic -> acc + Nic.rx_batches nic) 0 t.nics

let small_packet t conn wkind =
  Packet.create ~size_bytes:64 ~meta:{ conn; wkind } ~born:(Engine.now t.engine)

let data_packet t conn i =
  Packet.create ~size_bytes:1500 ~meta:{ conn; wkind = Data i } ~born:(Engine.now t.engine)

let nic_of t conn = t.nics.(conn mod Array.length t.nics)

(* Client -> server, after the client's turnaround and the wire. *)
let client_send t conn ~after wkind =
  let nic = nic_of t conn in
  ignore
    (Engine.schedule_after t.engine
       Time_ns.(after + wire_latency)
       (fun () -> Nic.deliver nic (small_packet t conn wkind))
      : Engine.handle)

(* ------------------------------------------------------------------ *)
(* Server-side scripts.                                                *)

(* Attribution categories for this workload's inline submissions. *)
let a_kernel_work = Profile.intern [ "kernel"; "work" ]
let a_socket_copy = Profile.intern [ "kernel"; "socket_copy" ]
let a_conn_setup = Profile.intern [ "kernel"; "conn_setup" ]
let a_ip_output_handler = Profile.intern [ "kernel"; "ip_output"; "in_handler" ]
let a_rx_cold = Profile.intern [ "softintr"; "rx_process"; "cold" ]
let a_rx_warm = Profile.intern [ "softintr"; "rx_process"; "warm" ]
let a_tcp_sweep = Profile.intern [ "softintr"; "tcp_timer"; "sweep" ]
let a_background = Profile.intern [ "user"; "background" ]
let a_poll_status = Profile.intern [ "softtimer"; "net_poll"; "status_read" ]
let a_pace_touch = Profile.intern [ "softtimer"; "rbc"; "handler_touch" ]

let step_kernel_work ?(attr = a_kernel_work) m ~work_us =
  {
    Kernel.prio = Cpu.prio_kernel;
    work_us = Costs.scale_us (Machine.profile m) work_us;
    trigger = None;
    attr;
    entry_us = 0.0;
    entry_attr = attr;
  }

let syscall_steps t n body =
  List.init n (fun _ -> Exec.quantum (Kernel.step_syscall ~work_us:(Dist.draw body t.rng) t.machine))

let interleave xs ys =
  (* x1 y1 x2 y2 ... with leftovers appended *)
  let rec go acc xs ys =
    match (xs, ys) with
    | [], rest | rest, [] -> List.rev_append acc rest
    | x :: xs, y :: ys -> go (y :: x :: acc) xs ys
  in
  go [] xs ys

let user_steps t n dist =
  List.init n (fun _ ->
      Exec.quantum (Kernel.step_user t.machine ~work_us:(Dist.draw dist t.rng)))

(* Transmit one packet: the IP output loop's work and trigger state,
   then the wire. *)
let tx_items t conn pkt =
  [
    Exec.quantum (Kernel.step_ip_output t.machine);
    Exec.emit (fun _now -> Nic.transmit (nic_of t conn) pkt);
  ]

let pace_record t now =
  if t.pace_in_train then
    Stats.Sample.add t.pace_intervals (Time_ns.to_us Time_ns.(now - t.pace_last));
  t.pace_last <- now;
  t.pace_sends <- t.pace_sends + 1

(* One paced transmission: pop a pending packet, account the interval,
   transmit.  Returns false when nothing is pending. *)
let pace_send t now =
  match Queue.take_opt t.pace_queue with
  | None ->
    t.pace_in_train <- false;
    false
  | Some do_tx ->
    pace_record t now;
    t.pace_in_train <- not (Queue.is_empty t.pace_queue);
    do_tx now;
    true

(* Transmission performed from inside a timer handler: the IP output
   work is charged, but it happens within the handler's context rather
   than ending in a fresh trigger state of its own. *)
let tx_items_in_handler t conn pkt =
  [
    Exec.quantum
      {
        Kernel.prio = Cpu.prio_kernel;
        work_us = Costs.scale_us (Machine.profile t.machine) 7.0;
        trigger = None;
        attr = a_ip_output_handler;
        entry_us = 0.0;
        entry_attr = a_ip_output_handler;
      };
    Exec.emit (fun _now -> Nic.transmit (nic_of t conn) pkt);
  ]

(* Emission of a data packet: inline, or deferred through the pacer. *)
let data_tx_item t conn i =
  match t.cfg.pacing with
  | No_pacing -> tx_items t conn (data_packet t conn i)
  | Soft_pacing | Hw_pacing _ ->
    [
      Exec.emit
        (fun _now ->
          let pkt = data_packet t conn i in
          Queue.add
            (fun _send_time -> Exec.run t.machine (tx_items_in_handler t conn pkt) ignore)
            t.pace_queue);
    ]

let write_phase_items t conn =
  let a = t.anatomy in
  let items = ref [] in
  for i = 0 to a.data_packets - 1 do
    if i mod a.writev_every = 0 then
      items :=
        Exec.quantum (Kernel.step_syscall ~work_us:(Dist.draw a.pre_syscall_body t.rng) t.machine)
        :: !items;
    items :=
      Exec.quantum
        (step_kernel_work ~attr:a_socket_copy t.machine ~work_us:a.copy_per_packet_us)
      :: !items;
    items := List.rev_append (List.rev (data_tx_item t conn i)) !items
  done;
  List.rev !items

let maybe_trap t p =
  if Prng.float t.rng < p then [ Exec.quantum (Kernel.step_trap t.machine) ] else []

let ctx_steps t n = List.init n (fun _ -> Exec.quantum (Kernel.step_ctx_switch t.machine))

(* The application-level handling of one GET. *)
let request_items t conn =
  let a = t.anatomy in
  let pre =
    interleave (user_steps t a.pre_user_segments a.pre_user) (syscall_steps t a.pre_syscalls a.pre_syscall_body)
  in
  let post =
    interleave (syscall_steps t a.post_syscalls a.post_syscall_body) (user_steps t a.post_user_segments a.post_user)
  in
  let ctx = ctx_steps t a.request_ctx_switches in
  let ctx_in, ctx_out =
    match ctx with [] -> ([], []) | [ c ] -> ([ c ], []) | c1 :: rest -> ([ c1 ], rest)
  in
  let window_update =
    if a.window_updates >= 1 then tx_items t conn (small_packet t conn Ack_small) else []
  in
  let window_update2 =
    if a.window_updates >= 2 then tx_items t conn (small_packet t conn Ack_small) else []
  in
  ctx_in @ pre @ write_phase_items t conn @ window_update @ post @ window_update2 @ ctx_out

let setup_items t =
  let a = t.anatomy in
  ctx_steps t (match t.cfg.kind with Apache -> 1 | Flash -> 0)
  @ interleave (user_steps t a.setup_user_segments a.setup_user) (syscall_steps t a.setup_syscalls a.setup_syscall_body)
  @ [
      Exec.quantum
        (step_kernel_work ~attr:a_conn_setup t.machine ~work_us:a.setup_kernel_extra_us);
    ]
  @ maybe_trap t a.setup_traps

let teardown_items t conn =
  let a = t.anatomy in
  tx_items t conn (small_packet t conn Ack_small)
  @ syscall_steps t a.teardown_syscalls a.teardown_syscall_body
  @ [ Exec.quantum (Kernel.step_user t.machine ~work_us:a.teardown_user_us) ]
  @ tx_items t conn (small_packet t conn Fin_ack)

(* ------------------------------------------------------------------ *)
(* Client behaviour (runs on the client machines: pure engine events). *)

let on_response_complete t conn =
  t.completed <- t.completed + 1;
  if t.measuring then t.measured <- t.measured + 1;
  let st = t.clients.(conn) in
  if st.reqs_left > 0 then begin
    st.reqs_left <- st.reqs_left - 1;
    st.data_got <- 0;
    client_send t conn ~after:client_think Get
  end
  else client_send t conn ~after:client_turnaround Fin

let rec client_handle t now pkt =
  ignore now;
  let conn = pkt.Packet.meta.conn in
  let st = t.clients.(conn) in
  match pkt.Packet.meta.wkind with
  | Synack ->
    client_send t conn ~after:client_turnaround Handshake_ack;
    client_send t conn ~after:Time_ns.(client_turnaround + Time_ns.of_us 8.0) Get
  | Data i ->
    ignore i;
    st.data_got <- st.data_got + 1;
    if st.data_got mod 2 = 0 || st.data_got = t.anatomy.data_packets then
      client_send t conn ~after:client_turnaround Data_ack;
    if st.data_got = t.anatomy.data_packets then on_response_complete t conn
  | Ack_small -> ()
  | Fin_ack ->
    client_send t conn ~after:client_turnaround Last_ack;
    (* Connection over: this client starts a fresh one. *)
    ignore
      (Engine.schedule_after t.engine client_restart (fun () -> start_connection t conn)
        : Engine.handle)
  | Syn | Handshake_ack | Get | Data_ack | Fin | Last_ack ->
    (* Server-bound kinds never reach the client. *)
    ()

and start_connection t conn =
  let st = t.clients.(conn) in
  st.data_got <- 0;
  st.reqs_left <- (match t.cfg.http with Http -> 0 | Persistent n -> max 0 (n - 1));
  client_send t conn ~after:Time_ns.zero Syn

(* ------------------------------------------------------------------ *)
(* Server-side packet dispatch (after input protocol processing).      *)

let server_dispatch t pkt =
  let conn = pkt.Packet.meta.conn in
  match pkt.Packet.meta.wkind with
  | Syn ->
    (* PCB allocation + SYN-ACK transmission. *)
    Exec.run t.machine
      (Exec.quantum (step_kernel_work t.machine ~work_us:14.0)
       :: tx_items t conn (small_packet t conn Synack))
      ignore
  | Handshake_ack ->
    (* Completes the handshake; connection setup work happens when the
       server application accepts. *)
    Exec.run t.machine (setup_items t) ignore
  | Get ->
    (* TCP ACKs the request, then the application handles it. *)
    Exec.run t.machine
      (tx_items t conn (small_packet t conn Ack_small) @ request_items t conn)
      ignore
  | Data_ack -> ()
  | Fin -> Exec.run t.machine (teardown_items t conn) ignore
  | Last_ack -> ()
  | Synack | Ack_small | Data _ | Fin_ack ->
    (* Client-bound kinds never reach the server. *)
    ()

(* Input protocol processing of one received batch: the first packet
   pays the full per-packet cost, the rest run warm (aggregation
   benefit, §5.9). *)
let on_rx_batch t _now batch =
  let a = t.anatomy in
  (* In interrupt mode the batch is processed from a software interrupt:
     its dispatch and the cold-cache protocol processing cost extra
     compared with polled processing, which runs in an
     already-locality-shifted trigger state (the paper's Â§4.2
     argument). *)
  let intr_mode = match t.cfg.net with Interrupts -> true | Soft_polling _ -> false in
  let softintr_surcharge =
    if intr_mode then 2.5 +. (2.0 *. a.locality.Cache.sensitivity) else 0.0
  in
  let items =
    List.concat
      (List.mapi
         (fun i pkt ->
           let cost =
             if i = 0 then a.rx_process_us +. softintr_surcharge
             else a.rx_process_us *. a.locality.Cache.warm_fraction
           in
           let trigger =
             if Prng.float t.rng < a.p_tcpip_trigger then Some Trigger.Tcpip_other else None
           in
           let attr = if i = 0 then a_rx_cold else a_rx_warm in
           [
             Exec.Quantum
               {
                 Kernel.prio = Cpu.prio_softintr;
                 work_us = cost;
                 trigger;
                 attr;
                 entry_us = 0.0;
                 entry_attr = attr;
               };
             Exec.emit (fun _ -> server_dispatch t pkt);
           ])
         batch)
  in
  Exec.run t.machine items ignore

(* ------------------------------------------------------------------ *)

let start_tcp_timer_sweeps t =
  let period = Time_ns.of_ms 200.0 in
  let rec sweep () =
    for _ = 1 to t.cfg.connections do
      Machine.submit_quantum t.machine ~attr:a_tcp_sweep ~prio:Cpu.prio_softintr
        ~work_us:1.5
        ~trigger:(Some Trigger.Tcpip_other)
        (fun _ -> ())
    done;
    ignore (Engine.schedule_after t.engine period sweep : Engine.handle)
  in
  ignore (Engine.schedule_after t.engine period sweep : Engine.handle)

let start_background_compute t =
  (* An endless CPU hog at background priority: big syscall-free quanta. *)
  let rec churn _now =
    Machine.submit_quantum t.machine ~attr:a_background ~prio:Cpu.prio_background
      ~work_us:400.0 ~trigger:None churn
  in
  churn Time_ns.zero

let create cfg =
  let engine = Engine.create () in
  let machine = Machine.create ~profile:cfg.profile engine in
  let anatomy = anatomy_of cfg.kind in
  let anatomy =
    match cfg.locality_override with
    | None -> anatomy
    | Some locality -> { anatomy with locality }
  in
  Machine.set_locality machine anatomy.locality;
  let needs_facility =
    cfg.attach_facility
    || (match cfg.net with Soft_polling _ -> true | Interrupts -> false)
    || (match cfg.pacing with Soft_pacing -> true | No_pacing | Hw_pacing _ -> false)
  in
  let facility = if needs_facility then Some (Softtimer.attach machine) else None in
  if not needs_facility then Machine.start_interrupt_clock machine;
  (* FreeBSD's spl-protected critical sections: they defer (and can
     lose) periodic-timer ticks, Â§5.7. *)
  Machine.start_spl_sections machine ~seed:(cfg.seed + 101) ();
  (match cfg.extra_timer_hz with
  | Some hz -> ignore (Machine.add_periodic_timer machine ~hz (fun _ -> ()) : Interrupt.line)
  | None -> ());
  let t_ref = ref None in
  let the_t () = match !t_ref with Some t -> t | None -> assert false in
  let nics =
    Array.init cfg.nic_count (fun i ->
        Nic.create machine
          ~name:(Printf.sprintf "fxp%d" i)
          ~bandwidth_bps:100e6 ~wire_latency
          ~tx_deliver:(fun now pkt -> client_handle (the_t ()) now pkt)
          ~on_rx_batch:(fun now batch -> on_rx_batch (the_t ()) now batch)
          ~tx_intr_coalesce:8 ~rx_intr_delay:(Time_ns.of_us 25.0) ())
  in
  let t =
    {
      cfg;
      anatomy;
      engine;
      machine;
      facility;
      poller = None;
      rng = Prng.create ~seed:cfg.seed;
      nics;
      clients =
        Array.init cfg.connections (fun _ -> { data_got = 0; reqs_left = 0 });
      completed = 0;
      measuring = false;
      measured = 0;
      measure_span = 0L;
      pace_queue = Queue.create ();
      pace_in_train = false;
      pace_last = Time_ns.zero;
      pace_sends = 0;
      pace_intervals = Stats.Sample.create ();
      hw_pacer = None;
      started = false;
    }
  in
  t_ref := Some t;
  (* Network polling. *)
  (match (cfg.net, facility) with
  | Soft_polling quota, Some st ->
    Array.iter (fun nic -> Nic.set_mode nic Nic.Polled) nics;
    let poll _now =
      (* Reading the interfaces' status registers costs a little even
         when nothing is found. *)
      Machine.submit_quantum machine ~attr:a_poll_status ~prio:Cpu.prio_intr
        ~work_us:(0.4 *. float_of_int (Array.length nics))
        ~trigger:None
        (fun _ -> ());
      Array.fold_left (fun acc nic -> acc + Nic.poll nic) 0 nics
    in
    t.poller <- Some (Net_poll.create st ~quota ~poll ())
  | Soft_polling _, None -> assert false
  | Interrupts, _ -> ());
  (* Pacing of data transmissions. *)
  (match (cfg.pacing, facility) with
  | Soft_pacing, Some st ->
    (* A soft-timer event at every trigger state; transmit one packet
       whenever the handler runs and a packet is pending (the paper's
       rate-clocking overhead experiment).  Each invocation touches the
       pacing and TCP state, whose cache footprint costs more on a
       locality-sensitive server - the residual 2-6% overhead of the
       paper's Table 3. *)
    let handler_touch_us = 0.5 *. anatomy.locality.Cache.sensitivity in
    let rec arm () =
      ignore
        (Softtimer.schedule_soft_event st ~ticks:0L (fun now ->
             Machine.submit_quantum machine ~attr:a_pace_touch ~prio:Cpu.prio_intr
               ~work_us:handler_touch_us ~trigger:None (fun _ -> ());
             ignore (pace_send t now : bool);
             arm ())
          : Softtimer.handle)
    in
    arm ()
  | Soft_pacing, None -> assert false
  | Hw_pacing interval, _ ->
    let pacer =
      Hw_pacer.create machine ~interval ~send:(fun now -> pace_send t now) ()
    in
    t.hw_pacer <- Some pacer
  | No_pacing, _ -> ());
  t

let requests_per_sec t =
  if Time_ns.(t.measure_span <= 0L) then nan
  else float_of_int t.measured /. Time_ns.to_sec t.measure_span

let run t ~warmup ~measure =
  if t.started then invalid_arg "Webserver.run: already run";
  t.started <- true;
  start_tcp_timer_sweeps t;
  if t.cfg.background_compute then start_background_compute t;
  (match t.poller with Some p -> Net_poll.start p | None -> ());
  (match t.hw_pacer with Some p -> Hw_pacer.start p | None -> ());
  (* Stagger connection starts to avoid a synchronised thundering herd. *)
  Array.iteri
    (fun conn _ ->
      ignore
        (Engine.schedule_after t.engine
           (Time_ns.mul (Time_ns.of_us 37.0) conn)
           (fun () -> start_connection t conn)
          : Engine.handle))
    t.clients;
  Engine.run_until t.engine warmup;
  t.measuring <- true;
  t.measured <- 0;
  t.measure_span <- measure;
  Engine.run_until t.engine Time_ns.(warmup + measure);
  t.measuring <- false
