(* Decode loop: a burst of user-mode work, then a cheap system call —
   the player's clock read / read / ioctl, all *simulated* as kernel
   quanta (no real wall-clock is consulted here).  Occasional longer
   decode stretches give the distribution its tail; the 1 kHz clock
   bounds it at 1 ms. *)

let user_segment =
  Dist.Mixture
    [
      (0.90, Dist.Lognormal { mu = log 3.6; sigma = 0.55 });
      (0.0997, Dist.Uniform (15.0, 45.0));
      (0.0003, Dist.Uniform (100.0, 900.0));
    ]

let syscall_body = Dist.Exponential 1.0

let start machine ~seed =
  Machine.start_interrupt_clock machine;
  let rng = Prng.create ~seed in
  let rec loop _now =
    let u = Dist.draw user_segment rng in
    let b = Dist.draw syscall_body rng in
    Kernel.user machine ~work_us:u (fun _ -> Kernel.syscall machine ~work_us:b loop)
  in
  loop Time_ns.zero;
  (* The live audio stream: ~40 packets/s of receive interrupts. *)
  let line =
    Machine.interrupt_line machine ~name:"audio-rx" ~source:Trigger.Ip_intr
      ~handler:(fun _ -> ())
      ()
  in
  let engine = Machine.engine machine in
  let rec stream () =
    let gap = Dist.span (Dist.Exponential 25_000.0) rng in
    ignore
      (Engine.schedule_after engine gap (fun () ->
           ignore (Machine.raise_irq machine line ~handler_work_us:3.0 () : bool);
           stream ())
        : Engine.handle)
  in
  stream ()
