type item =
  | Quantum of Kernel.step
  | Emit of (Time_ns.t -> unit)

let run m items k =
  let rec go = function
    | [] -> k (Engine.now (Machine.engine m))
    | Quantum s :: rest ->
      Machine.submit_quantum m ?attr:(Kernel.step_attr s) ~prio:s.Kernel.prio
        ~work_us:s.Kernel.work_us ~trigger:s.Kernel.trigger (fun _now -> go rest)
    | Emit f :: rest ->
      f (Engine.now (Machine.engine m));
      go rest
  in
  go items

let quantum s = Quantum s
let emit f = Emit f
