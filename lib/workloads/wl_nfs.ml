let request_interarrival = Dist.Exponential 3_600.0  (* us: ~280 req/s *)
let disk_latency = Dist.Uniform (2_000.0, 8_000.0)  (* us *)
let nfsd_syscall_body = Dist.Erlang { k = 2; mean = 8.0 }

(* Block-layer work between trigger states; rarely a long directory or
   metadata scan. *)
let kernel_segment =
  Dist.Mixture
    [
      (0.65, Dist.Uniform (15.0, 90.0));
      (0.315, Dist.Uniform (120.0, 360.0));
      (0.035, Dist.Uniform (400.0, 880.0));
    ]

let a_nfsd_segment = Profile.intern [ "kernel"; "nfsd_segment" ]

let start machine ~seed =
  Machine.start_interrupt_clock machine;
  Machine.set_idle_poll machine (Some (Time_ns.of_us (Machine.profile machine).Costs.idle_loop_us));
  let rng = Prng.create ~seed in
  let engine = Machine.engine machine in
  let rx_line =
    Machine.interrupt_line machine ~name:"nfs-rx" ~source:Trigger.Ip_intr
      ~handler:(fun _ -> ())
      ()
  in
  let disk_line =
    Machine.interrupt_line machine ~name:"nfs-disk" ~source:Trigger.Dev_intr
      ~handler:(fun _ -> ())
      ()
  in
  let serve_request () =
    ignore (Machine.raise_irq machine rx_line ~handler_work_us:4.0 () : bool);
    let items =
      [
        Exec.quantum (Kernel.step_syscall ~work_us:(Dist.draw nfsd_syscall_body rng) machine);
        Exec.quantum
          {
            Kernel.prio = Cpu.prio_kernel;
            work_us = Dist.draw kernel_segment rng;
            trigger = None;
            attr = a_nfsd_segment;
            entry_us = 0.0;
            entry_attr = a_nfsd_segment;
          };
        Exec.quantum (Kernel.step_syscall ~work_us:(Dist.draw nfsd_syscall_body rng) machine);
      ]
    in
    Exec.run machine items (fun _ ->
        let wait = Dist.span disk_latency rng in
        ignore
          (Engine.schedule_after engine wait (fun () ->
               ignore (Machine.raise_irq machine disk_line ~handler_work_us:5.0 () : bool);
               (* Completion: hand the reply back and send it. *)
               Exec.run machine
                 [
                   Exec.quantum (Kernel.step_ip_output machine);
                   Exec.quantum
                     (Kernel.step_syscall ~work_us:(Dist.draw nfsd_syscall_body rng) machine);
                 ]
                 ignore)
            : Engine.handle))
  in
  let rec arrivals () =
    let gap = Dist.span request_interarrival rng in
    ignore
      (Engine.schedule_after engine gap (fun () ->
           serve_request ();
           arrivals ())
        : Engine.handle)
  in
  arrivals ()
