(** Constant-memory streaming histogram with bounded relative error.

    An [Hdr.t] is a log-linear bucketed histogram in the style of
    HdrHistogram: values are quantized to integer multiples of a lowest
    discernible value, small quanta get exact unit-wide buckets, and
    each power-of-two octave above that is split into equal sub-buckets
    sized so any member is within the configured relative error of the
    bucket's reported representative.

    Unlike {!Stats.Sample} (which retains every observation), recording
    is O(1) with no per-observation allocation and memory is bounded by
    the number of distinct buckets (a few KiB regardless of how many
    values are recorded), so these histograms stay always-on in hot
    paths and on arbitrarily long runs.  Bucket indexing is pure integer
    bit math — no [log] calls — so results are deterministic across
    platforms.

    Two histograms created with the same parameters have identical
    (aligned) bucket boundaries; {!merge} is then a lossless bucket-wise
    sum: merging separate recordings of streams A and B yields exactly
    the counts of recording A followed by B. *)

type t

val create : ?rel_error:float -> ?lowest:float -> unit -> t
(** A fresh histogram.  [rel_error] (default [0.01]) bounds the relative
    error of {!quantile} results; the achieved bound (the next power of
    two at or below the request) is reported by {!rel_error}.  [lowest]
    (default [1e-3]) is the lowest discernible value: values are
    quantized to its multiples, giving absolute resolution [lowest] near
    zero.  Negative values are clamped to zero.
    @raise Invalid_argument if [rel_error] is outside (0, 0.5] or
    [lowest] is not positive. *)

val record : t -> float -> unit
(** O(1), allocation-free except when the bucket array grows (at most
    O(log max-value) times over the histogram's life). *)

val clear : t -> unit

val count : t -> int
val sum : t -> float

val mean : t -> float
(** Exact (from the running sum), [nan] when empty. *)

val stddev : t -> float
(** Population standard deviation, exact up to float rounding (from the
    running first and second moments, not the buckets).  [nan] when
    empty. *)

val min : t -> float
(** Exact smallest recorded value, [nan] when empty. *)

val max : t -> float
(** Exact largest recorded value, [nan] when empty. *)

val quantile : t -> float -> float
(** [quantile t q] for [q] in [0, 1]: the representative of the bucket
    containing the ceil(q*n)-th smallest observation — within
    [rel_error t] (relative) plus one quantization unit (absolute) of
    the exact order statistic.  [nan] when empty.
    @raise Invalid_argument if [q] is outside [0, 1]. *)

val percentile : t -> float -> float
(** [percentile t p] is [quantile t (p /. 100.)]. *)

val cdf_points : t -> (float * float) list
(** [(upper_edge, cumulative_fraction)] for every non-empty bucket in
    ascending value order; the last fraction is 1.  Empty list when no
    values were recorded. *)

val merge : t -> t -> t
(** Lossless bucket-wise sum of two histograms with identical layouts.
    @raise Invalid_argument if the layouts differ. *)

val rel_error : t -> float
(** The achieved relative-error bound (a power of two [<=] the value
    requested at {!create}). *)

val lowest : t -> float

val bucket_count : t -> int
(** Allocated buckets — the memory footprint; grows logarithmically
    with the largest recorded value and is independent of {!count}. *)
