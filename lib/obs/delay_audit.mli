(** Fire-delay attribution: "why was this timer late?"

    For every fired soft timer, partition its delay [fire_at - due]
    into an exact, conservation-checked breakdown of causes,
    reconstructed post-hoc (or via a live {!Trace.set_tap}) from the
    deterministic trace stream.  Nothing here emits trace events, so
    trace digests and verify-determinism are unaffected by auditing.

    {2 The partition}

    Segments are indexed [0 .. nseg-1]:

    - [0..5] — {e trigger-gap} sub-attributed to CPU-0 work class
      ({!klass_label}: intr, softintr, kernel, user, background,
      timer): no trigger-state check had yet reached the store because
      the CPU was busy running this class of work.  Class [5] (timer)
      is the handler of {e another} soft timer.
    - [6] — trigger-gap spent in the CPU idle loop before wakeup.
    - [7] — "other": gap time not covered by the CPU-0 busy/idle
      timeline.  Attribution is reconstructed from CPU-0's run/idle
      events only, so on multi-CPU machines activity elsewhere lands
      here (documented honesty, not a conservation leak).
    - [8] — {e check-skipped}: a trigger-state check reached the store
      while this timer was due ([Soft_check] with the timer still
      pending), but the per-check dispatch budget withheld it.
    - [9] — {e batch-queueing}: time between the dispatching check and
      the handler call.  Structurally zero in this simulator (handlers
      run inline at the check timestamp) but kept in the partition so
      the schema survives a deferred-dispatch model.

    {2 Conservation contract}

    For every late fire, [sum_(k) segs.(k) = fire_at - due] {e
    exactly}: the attribution cursor starts at [due] and each span is
    attributed to exactly one segment (split at the first skipping
    check).  A runtime check re-verifies the sum on every late fire;
    {!violations} counts failures (asserted zero by the qcheck property
    in [test/test_obs.ml]).  See DESIGN.md §8.6. *)

type t

val nseg : int
(** Number of partition segments (10). *)

val seg_idle : int
val seg_other : int
val seg_check_skipped : int
val seg_batch_queue : int

val klass_label : int -> string
(** [0..5] are the {!Cpu} work classes ([intr], [softintr], [kernel],
    [user], [background], [timer]); [6] is [idle]; anything else is
    [other].  Mirrors [Cpu.klass_name] (lib/obs cannot depend on
    lib/machine). *)

val seg_label : int -> string
(** Short label for segment [k]: ["gap.<klass>"] for [0..7],
    ["check-skipped"], ["batch-queue"]. *)

val create : ?worst:int -> unit -> t
(** A fresh audit.  [worst] (default 10) bounds the exemplar table. *)

val on_event : t -> at:Time_ns.t -> Trace.event -> unit
(** Feed one event.  Suitable as a live {!Trace.set_tap} (the audit
    never emits trace events) or for manual replay.  Events must arrive
    in stream order. *)

val collect : ?worst:int -> Trace.t -> t
(** Replay a recorded trace oldest-first through a fresh audit.  A
    [sim.start] mark resets matching state and counts still-pending
    timers as abandoned (reported via {!pending_at_exit}). *)

(** {2 Results} *)

val fired : t -> int
val ontime : t -> int
val late : t -> int

val untracked : t -> int
(** Fires whose [Soft_sched] was lost (ring overflow / partial trace). *)

val violations : t -> int
(** Late fires whose segments did not sum to the delay.  Always 0
    unless the event stream itself violates its ordering contract. *)

val pending_at_exit : t -> int
(** Timers scheduled but never fired nor cancelled within the trace,
    including those abandoned at a [sim.start] reset.  The
    never-closed spans of {!Span}. *)

val checks_seen : t -> int
val skip_checks : t -> int
(** Checks whose scanned count exceeded their fired count. *)

val cause_ns : t -> int -> int64
(** Total nanoseconds attributed to segment [k] over all late fires. *)

val total_late_ns : t -> int64

val cause_hdr : t -> int -> Hdr.t
(** Per-late-fire distribution of segment [k], in microseconds
    (recorded only when the fire's segment is non-zero). *)

val delay_hdr : t -> Hdr.t
(** Fire delay of {e every} fire, in microseconds. *)

type exemplar = {
  x_id : int;
  x_due : Time_ns.t;
  x_fire : Time_ns.t;
  x_delay : Time_ns.span;
  x_end_trigger : string;
      (** trigger state whose check finally dispatched it (paper §4.1) *)
  x_batch_pos : int;  (** 1-based position among that check's fires *)
  x_checks : int;  (** checks that scanned but skipped this timer *)
  x_first_check : Time_ns.t option;
  x_segs : int64 array;  (** length {!nseg}; sums to [x_delay] *)
}

val exemplars : t -> exemplar list
(** Worst fires, descending by (delay, then ascending id); at most
    [worst]. *)

val trigger_rows : t -> (string * int * int64 * int64 array) list
(** Per ending-trigger-state aggregation, sorted by name:
    [(trigger, late_fires, total_delay_ns, seg_totals)]. *)

(** {2 Renderers} *)

val to_text : t -> string
(** Human-readable report: summary counts, cause-breakdown table,
    ending-trigger cross-tab, worst-N exemplars with causal chains. *)

val to_json : t -> string
(** Single-line JSON, schema ["softtimers-whylate/1"]. *)

val to_prometheus : t -> string
(** Prometheus text exposition ([softtimer_whylate_*] families). *)
