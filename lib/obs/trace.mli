(** Bounded event tracing for the simulator.

    A [Trace.t] is a fixed-capacity ring buffer of timestamped, typed
    simulation events.  Subsystems emit events through the module-level
    emitters below; when no trace is installed ({!install} has not been
    called, or {!uninstall} ran) every emitter is a single load and
    branch — no allocation, no work — so instrumentation can stay in
    hot paths permanently.

    Exactly one trace can be installed {e per domain}: the installed
    sink (and tap) live in domain-local storage, so a freshly spawned
    domain starts untraced and parallel experiment workers
    (lib/parallel) never write into a ring installed by the parent —
    each captures into a private ring that the runner {!absorb}s in
    deterministic job order.  Once a buffer is full the oldest records
    are overwritten and counted in {!dropped}.

    Consumers read records back with {!iter}/{!to_list} (oldest first)
    or export them with {!Trace_export}. *)

(** What happened.  Each constructor mirrors one instrumentation point
    in the simulator; see DESIGN.md ("Observability") for the full
    schema and how each maps onto Chrome [trace_event] records. *)
type event =
  | Trigger of string  (** a trigger state was reached (kind name) *)
  | Soft_sched of { id : int; due : Time_ns.t }
      (** soft event [id] scheduled; a re-arm emits cancel + sched with
          the id kept, so [id] names the timer across its whole life *)
  | Soft_fire of { id : int; due : Time_ns.t; delay : Time_ns.span }
      (** soft event fired [delay] after its due time *)
  | Soft_cancel of { id : int; due : Time_ns.t }
      (** pending soft event cancelled *)
  | Soft_check of { src : string; scanned : int; fired : int }
      (** a facility check from trigger state [src] found work: the due
          batch held [scanned] pending entries, [fired] were dispatched
          (the rest were withheld by the check budget).  Emitted after
          the batch's [Soft_fire]s, only when [scanned > 0]. *)
  | Cpu_run of { cpu : int; klass : int; dur : Time_ns.span }
      (** CPU executed one work quantum: start at [at - dur], end at
          [at]; [klass] is the {!Cpu} work class (see [Cpu.klass_name]) *)
  | Irq of { line : string; cpu : int; dur : Time_ns.span }
      (** interrupt dispatch completed: entry at [at - dur], exit at [at] *)
  | Irq_raised of { line : string }  (** device asserted the line *)
  | Irq_lost of { line : string }  (** tick lost (latch full / spl) *)
  | Cpu_busy of { cpu : int }  (** CPU left the idle loop *)
  | Cpu_idle of { cpu : int }  (** CPU entered the idle loop *)
  | Pkt_enqueue of { nic : string; qlen : int }  (** packet into rx ring *)
  | Pkt_tx of { nic : string }  (** packet fully serialised onto the wire *)
  | Pkt_rx of { nic : string; batch : int }  (** rx batch handed to the stack *)
  | Pkt_drop of { nic : string }  (** rx ring overflow *)
  | Poll of { found : int }  (** soft-timer network poll, batch size *)
  | Rbc_send  (** rate-based clocking transmitted a packet *)
  | Mark of string  (** free-form annotation *)

type record = { at : Time_ns.t; ev : event }

type t

val create : ?capacity:int -> unit -> t
(** A fresh, empty trace.  [capacity] defaults to 65536 records.
    @raise Invalid_argument if [capacity <= 0]. *)

val install : t -> unit
(** Make [t] the sink of every emitter until {!uninstall} (or another
    [install]) replaces it. *)

val uninstall : unit -> unit
(** Disable tracing: emitters return to their single-branch no-op. *)

val installed : unit -> t option

val enabled : unit -> bool
(** Whether a ring buffer is installed. *)

val set_tap : (at:Time_ns.t -> event -> unit) option -> unit
(** Install (or, with [None], remove) a synchronous tap.  The tap is
    called with every emitted event — whether or not a ring buffer is
    installed — before the event is recorded.  At most one tap exists at
    a time; the runtime invariant sanitizer ({!Sanitizer} in lib/check)
    is the intended consumer.  Taps must not emit trace events. *)

val tap_installed : unit -> bool

val capacity : t -> int

val length : t -> int
(** Records currently held ([<= capacity]). *)

val dropped : t -> int
(** Records overwritten because the buffer was full. *)

val total : t -> int
(** Records ever emitted into [t]: [length t + dropped t]. *)

val clear : t -> unit

val iter : t -> (record -> unit) -> unit
(** Oldest first. *)

val to_list : t -> record list
(** Oldest first. *)

(** {2 Emitters}

    Each is a no-op unless a trace is installed.  [at] is the current
    simulation time. *)

val emit : at:Time_ns.t -> event -> unit
val trigger : at:Time_ns.t -> string -> unit
val soft_sched : at:Time_ns.t -> id:int -> due:Time_ns.t -> unit
val soft_fire : at:Time_ns.t -> id:int -> due:Time_ns.t -> unit
val soft_cancel : at:Time_ns.t -> id:int -> due:Time_ns.t -> unit
val soft_check : at:Time_ns.t -> src:string -> scanned:int -> fired:int -> unit
val cpu_run : at:Time_ns.t -> cpu:int -> klass:int -> dur:Time_ns.span -> unit
val irq : at:Time_ns.t -> line:string -> cpu:int -> dur:Time_ns.span -> unit
val irq_raised : at:Time_ns.t -> line:string -> unit
val irq_lost : at:Time_ns.t -> line:string -> unit
val cpu_busy : at:Time_ns.t -> cpu:int -> unit
val cpu_idle : at:Time_ns.t -> cpu:int -> unit
val pkt_enqueue : at:Time_ns.t -> nic:string -> qlen:int -> unit
val pkt_tx : at:Time_ns.t -> nic:string -> unit
val pkt_rx : at:Time_ns.t -> nic:string -> batch:int -> unit
val pkt_drop : at:Time_ns.t -> nic:string -> unit
val poll : at:Time_ns.t -> found:int -> unit
val rbc_send : at:Time_ns.t -> unit
val mark : at:Time_ns.t -> string -> unit

val sim_start_mark : string
(** The [Mark] payload that declares "a fresh simulation begins here".
    Emitted by [Machine.create] and [Session.run_transfer]; consumers
    tracking causality (the sanitizer) reset their clock on it.  Any
    code that builds a fresh {!Engine} outside those paths should emit
    it too. *)

val sim_start : at:Time_ns.t -> unit
(** [mark ~at sim_start_mark]. *)

val absorb : t -> unit
(** [absorb src] replays every record of [src], oldest first, into the
    calling domain's installed consumers (tap and ring) via {!emit},
    then adds [dropped src] to the installed ring's drop count.  Used
    by the parallel runner to merge per-worker rings in job order; the
    merged ring's contents, {!dropped} and {!total} are identical to
    what a single sequential run would have produced. *)
