let escape s =
  let b = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

(* trace_event timestamps are in microseconds; keep ns as fractionals. *)
let us_of ns = Int64.to_float ns /. 1e3

type ev = {
  name : string;
  cat : string;
  ph : string;  (* "i" instant, "X" complete, "C" counter *)
  ts : float;
  tid : int;
  dur : float option;
  args : (string * string) list;  (* values are pre-rendered JSON *)
}

let json_of_ev e =
  let b = Buffer.create 128 in
  Buffer.add_string b
    (Printf.sprintf "{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"%s\",\"ts\":%.3f,\"pid\":1,\"tid\":%d"
       (escape e.name) (escape e.cat) e.ph e.ts e.tid);
  (match e.dur with Some d -> Buffer.add_string b (Printf.sprintf ",\"dur\":%.3f" d) | None -> ());
  if e.ph = "i" then Buffer.add_string b ",\"s\":\"t\"";
  if e.args <> [] then begin
    Buffer.add_string b ",\"args\":{";
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char b ',';
        Buffer.add_string b (Printf.sprintf "\"%s\":%s" (escape k) v))
      e.args;
    Buffer.add_char b '}'
  end;
  Buffer.add_char b '}';
  Buffer.contents b

let f v = Printf.sprintf "%g" v
let i v = string_of_int v
let str v = Printf.sprintf "\"%s\"" (escape v)

let ev_of_record { Trace.at; ev } =
  let ts = us_of at in
  let instant ?(tid = 0) ?(args = []) ~cat name =
    { name; cat; ph = "i"; ts; tid; dur = None; args }
  in
  match ev with
  | Trace.Trigger kind -> instant ~cat:"trigger" kind
  | Trace.Soft_sched { id; due } ->
    instant ~cat:"softtimer" "soft-sched"
      ~args:[ ("timer", i id); ("due_us", f (us_of due)) ]
  | Trace.Soft_fire { id; due; delay } ->
    instant ~cat:"softtimer" "soft-fire"
      ~args:[ ("timer", i id); ("due_us", f (us_of due)); ("delay_us", f (us_of delay)) ]
  | Trace.Soft_cancel { id; due } ->
    instant ~cat:"softtimer" "soft-cancel"
      ~args:[ ("timer", i id); ("due_us", f (us_of due)) ]
  | Trace.Soft_check { src; scanned; fired } ->
    instant ~cat:"softtimer" "soft-check"
      ~args:[ ("src", str src); ("scanned", i scanned); ("fired", i fired) ]
  | Trace.Cpu_run { cpu; klass; dur } ->
    (* Like Irq: stamped at quantum end; the slice starts at entry. *)
    {
      name = "run." ^ Delay_audit.klass_label klass;
      cat = "cpu";
      ph = "X";
      ts = us_of Time_ns.(at - dur);
      tid = cpu;
      dur = Some (us_of dur);
      args = [];
    }
  | Trace.Irq { line; cpu; dur } ->
    (* The record is stamped at handler exit; the slice starts at entry. *)
    {
      name = line;
      cat = "irq";
      ph = "X";
      ts = us_of Time_ns.(at - dur);
      tid = cpu;
      dur = Some (us_of dur);
      args = [];
    }
  | Trace.Irq_raised { line } -> instant ~cat:"irq" (line ^ "-raised")
  | Trace.Irq_lost { line } -> instant ~cat:"irq" (line ^ "-lost")
  | Trace.Cpu_busy { cpu } ->
    {
      name = Printf.sprintf "cpu%d.busy" cpu;
      cat = "cpu";
      ph = "C";
      ts;
      tid = cpu;
      dur = None;
      args = [ ("busy", "1") ];
    }
  | Trace.Cpu_idle { cpu } ->
    {
      name = Printf.sprintf "cpu%d.busy" cpu;
      cat = "cpu";
      ph = "C";
      ts;
      tid = cpu;
      dur = None;
      args = [ ("busy", "0") ];
    }
  | Trace.Pkt_enqueue { nic; qlen } ->
    instant ~cat:"net" "pkt-enqueue" ~args:[ ("nic", str nic); ("qlen", i qlen) ]
  | Trace.Pkt_tx { nic } -> instant ~cat:"net" "pkt-tx" ~args:[ ("nic", str nic) ]
  | Trace.Pkt_rx { nic; batch } ->
    instant ~cat:"net" "pkt-rx" ~args:[ ("nic", str nic); ("batch", i batch) ]
  | Trace.Pkt_drop { nic } -> instant ~cat:"net" "pkt-drop" ~args:[ ("nic", str nic) ]
  | Trace.Poll { found } -> instant ~cat:"softtimer" "net-poll" ~args:[ ("found", i found) ]
  | Trace.Rbc_send -> instant ~cat:"softtimer" "rbc-send"
  | Trace.Mark s -> instant ~cat:"mark" s

(* Per-window "C" counter tracks derived from a {!Timeseries}.  Each
   window contributes one sample per track, stamped at the window's
   start; viewers step the counter to the next sample, so the tracks
   read as rates-per-window. *)
let add_series_events b (ts : Timeseries.t) =
  List.iter
    (fun (s : Timeseries.snapshot) ->
      let counter name args =
        Buffer.add_char b ',';
        Buffer.add_string b
          (json_of_ev
             { name; cat = "timeseries"; ph = "C"; ts = s.Timeseries.s_start_us;
               tid = 0; dur = None; args })
      in
      counter "softtimer"
        [ ("sched", i s.s_sched); ("fired", i s.s_fired); ("cancelled", i s.s_cancelled) ];
      counter "net"
        [ ("tx", i s.s_pkt_tx); ("rx", i s.s_pkt_rx_pkts); ("drop", i s.s_pkt_drop) ];
      counter "polls" [ ("polls", i s.s_polls); ("found", i s.s_poll_found) ];
      if s.s_delay_count > 0 then
        counter "fire_delay_us"
          [ ("p50", f s.s_delay_p50_us); ("p99", f s.s_delay_p99_us) ])
    (Timeseries.snapshots ts)

(* Closed spans become paired async "b"/"e" events (cat "span"); spans
   still open at the end of the trace have no end and are skipped so
   every "b" is balanced by an "e". *)
let add_span_events b (sp : Span.t) =
  List.iter
    (fun (s : Span.span) ->
      match s.Span.finish with
      | None -> ()
      | Some fin ->
        let name, tid =
          match s.Span.kind with
          | Span.Timer -> ("timer", 0)
          | Span.Packet nic -> ("pkt-" ^ nic, 0)
        in
        let outcome =
          match s.Span.outcome with
          | Some Span.Fired -> "fired"
          | Some Span.Cancelled -> "cancelled"
          | Some Span.Delivered -> "delivered"
          | None -> "open"
        in
        let async ph ts args =
          Buffer.add_char b ',';
          Buffer.add_string b
            (Printf.sprintf
               "{\"name\":\"%s\",\"cat\":\"span\",\"ph\":\"%s\",\"ts\":%.3f,\"pid\":1,\"tid\":%d,\"id\":%d%s}"
               (escape name) ph ts tid s.Span.id args)
        in
        async "b" (us_of s.Span.start)
          (Printf.sprintf ",\"args\":{\"outcome\":\"%s\"}" outcome);
        async "e" (us_of fin) "")
    (Span.spans sp)

(* Flow arrows linking each timer's schedule to its fire, keyed by the
   timer id the facility stamps on both events: the viewer draws an
   arrow from the point the timer was armed to the point it went off,
   making long-delayed fires visually obvious.  A re-arm emits another
   "s" with the same id, extending the chain; a cancelled timer's flow
   simply never terminates. *)
let add_flow_event b { Trace.at; ev } =
  let flow ph ~id ~extra =
    Buffer.add_char b ',';
    Buffer.add_string b
      (Printf.sprintf
         "{\"name\":\"timer-flow\",\"cat\":\"softtimer\",\"ph\":\"%s\",\"id\":%d,\"ts\":%.3f,\"pid\":1,\"tid\":0%s}"
         ph id (us_of at) extra)
  in
  match ev with
  | Trace.Soft_sched { id; _ } -> flow "s" ~id ~extra:""
  | Trace.Soft_fire { id; _ } -> flow "f" ~id ~extra:",\"bp\":\"e\""
  | _ -> ()

let to_chrome_json ?series ?spans t =
  let b = Buffer.create 4096 in
  Buffer.add_string b "{\"traceEvents\":[";
  Buffer.add_string b
    "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"tid\":0,\"args\":{\"name\":\"softtimers-sim\"}}";
  (* Ring overflow: without a banner a truncated trace masquerades as a
     complete run.  The instant event is the first thing a viewer shows;
     the top-level field is for programmatic consumers. *)
  if Trace.dropped t > 0 then
    Buffer.add_string b
      (Printf.sprintf
         ",{\"name\":\"TRACE TRUNCATED: %d oldest events dropped (ring \
          overflow)\",\"cat\":\"warning\",\"ph\":\"i\",\"ts\":0,\"pid\":1,\"tid\":0,\"s\":\"g\"}"
         (Trace.dropped t));
  Trace.iter t (fun r ->
      Buffer.add_char b ',';
      Buffer.add_string b (json_of_ev (ev_of_record r));
      add_flow_event b r);
  (match series with Some ts -> add_series_events b ts | None -> ());
  (match spans with Some sp -> add_span_events b sp | None -> ());
  Buffer.add_string b "],\"displayTimeUnit\":\"ns\"";
  if Trace.dropped t > 0 then
    Buffer.add_string b (Printf.sprintf ",\"droppedEvents\":%d" (Trace.dropped t));
  Buffer.add_string b "}";
  Buffer.contents b

let csv_row { Trace.at; ev } =
  let detail =
    match ev with
    | Trace.Trigger kind -> [ "trigger"; "kind=" ^ kind ]
    | Trace.Soft_sched { id; due } ->
      [ "soft-sched"; Printf.sprintf "timer=%d;due_ns=%Ld" id due ]
    | Trace.Soft_fire { id; due; delay } ->
      [ "soft-fire"; Printf.sprintf "timer=%d;due_ns=%Ld;delay_ns=%Ld" id due delay ]
    | Trace.Soft_cancel { id; due } ->
      [ "soft-cancel"; Printf.sprintf "timer=%d;due_ns=%Ld" id due ]
    | Trace.Soft_check { src; scanned; fired } ->
      [ "soft-check"; Printf.sprintf "src=%s;scanned=%d;fired=%d" src scanned fired ]
    | Trace.Cpu_run { cpu; klass; dur } ->
      [ "cpu-run";
        Printf.sprintf "cpu=%d;klass=%s;dur_ns=%Ld" cpu (Delay_audit.klass_label klass) dur
      ]
    | Trace.Irq { line; cpu; dur } ->
      [ "irq"; Printf.sprintf "line=%s;cpu=%d;dur_ns=%Ld" line cpu dur ]
    | Trace.Irq_raised { line } -> [ "irq-raised"; "line=" ^ line ]
    | Trace.Irq_lost { line } -> [ "irq-lost"; "line=" ^ line ]
    | Trace.Cpu_busy { cpu } -> [ "cpu-busy"; Printf.sprintf "cpu=%d" cpu ]
    | Trace.Cpu_idle { cpu } -> [ "cpu-idle"; Printf.sprintf "cpu=%d" cpu ]
    | Trace.Pkt_enqueue { nic; qlen } ->
      [ "pkt-enqueue"; Printf.sprintf "nic=%s;qlen=%d" nic qlen ]
    | Trace.Pkt_tx { nic } -> [ "pkt-tx"; "nic=" ^ nic ]
    | Trace.Pkt_rx { nic; batch } -> [ "pkt-rx"; Printf.sprintf "nic=%s;batch=%d" nic batch ]
    | Trace.Pkt_drop { nic } -> [ "pkt-drop"; "nic=" ^ nic ]
    | Trace.Poll { found } -> [ "net-poll"; Printf.sprintf "found=%d" found ]
    | Trace.Rbc_send -> [ "rbc-send"; "" ]
    | Trace.Mark s -> [ "mark"; s ]
  in
  Printf.sprintf "%Ld,%s" at (String.concat "," detail)

let to_csv t =
  let b = Buffer.create 4096 in
  if Trace.dropped t > 0 then
    Buffer.add_string b
      (Printf.sprintf "# WARNING: trace truncated, %d oldest events dropped (ring overflow)\n"
         (Trace.dropped t));
  Buffer.add_string b "time_ns,event,detail\n";
  Trace.iter t (fun r ->
      Buffer.add_string b (csv_row r);
      Buffer.add_char b '\n');
  Buffer.contents b

let write_file path contents =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc contents)

let write_chrome_json ?series ?spans t path =
  write_file path (to_chrome_json ?series ?spans t)
let write_csv t path = write_file path (to_csv t)
