let escape s =
  let b = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

(* trace_event timestamps are in microseconds; keep ns as fractionals. *)
let us_of ns = Int64.to_float ns /. 1e3

type ev = {
  name : string;
  cat : string;
  ph : string;  (* "i" instant, "X" complete, "C" counter *)
  ts : float;
  tid : int;
  dur : float option;
  args : (string * string) list;  (* values are pre-rendered JSON *)
}

let json_of_ev e =
  let b = Buffer.create 128 in
  Buffer.add_string b
    (Printf.sprintf "{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"%s\",\"ts\":%.3f,\"pid\":1,\"tid\":%d"
       (escape e.name) (escape e.cat) e.ph e.ts e.tid);
  (match e.dur with Some d -> Buffer.add_string b (Printf.sprintf ",\"dur\":%.3f" d) | None -> ());
  if e.ph = "i" then Buffer.add_string b ",\"s\":\"t\"";
  if e.args <> [] then begin
    Buffer.add_string b ",\"args\":{";
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char b ',';
        Buffer.add_string b (Printf.sprintf "\"%s\":%s" (escape k) v))
      e.args;
    Buffer.add_char b '}'
  end;
  Buffer.add_char b '}';
  Buffer.contents b

let f v = Printf.sprintf "%g" v
let i v = string_of_int v
let str v = Printf.sprintf "\"%s\"" (escape v)

let ev_of_record { Trace.at; ev } =
  let ts = us_of at in
  let instant ?(tid = 0) ?(args = []) ~cat name =
    { name; cat; ph = "i"; ts; tid; dur = None; args }
  in
  match ev with
  | Trace.Trigger kind -> instant ~cat:"trigger" kind
  | Trace.Soft_sched { due } ->
    instant ~cat:"softtimer" "soft-sched" ~args:[ ("due_us", f (us_of due)) ]
  | Trace.Soft_fire { due; delay } ->
    instant ~cat:"softtimer" "soft-fire"
      ~args:[ ("due_us", f (us_of due)); ("delay_us", f (us_of delay)) ]
  | Trace.Soft_cancel { due } ->
    instant ~cat:"softtimer" "soft-cancel" ~args:[ ("due_us", f (us_of due)) ]
  | Trace.Irq { line; cpu; dur } ->
    (* The record is stamped at handler exit; the slice starts at entry. *)
    {
      name = line;
      cat = "irq";
      ph = "X";
      ts = us_of Time_ns.(at - dur);
      tid = cpu;
      dur = Some (us_of dur);
      args = [];
    }
  | Trace.Irq_raised { line } -> instant ~cat:"irq" (line ^ "-raised")
  | Trace.Irq_lost { line } -> instant ~cat:"irq" (line ^ "-lost")
  | Trace.Cpu_busy { cpu } ->
    {
      name = Printf.sprintf "cpu%d.busy" cpu;
      cat = "cpu";
      ph = "C";
      ts;
      tid = cpu;
      dur = None;
      args = [ ("busy", "1") ];
    }
  | Trace.Cpu_idle { cpu } ->
    {
      name = Printf.sprintf "cpu%d.busy" cpu;
      cat = "cpu";
      ph = "C";
      ts;
      tid = cpu;
      dur = None;
      args = [ ("busy", "0") ];
    }
  | Trace.Pkt_enqueue { nic; qlen } ->
    instant ~cat:"net" "pkt-enqueue" ~args:[ ("nic", str nic); ("qlen", i qlen) ]
  | Trace.Pkt_tx { nic } -> instant ~cat:"net" "pkt-tx" ~args:[ ("nic", str nic) ]
  | Trace.Pkt_rx { nic; batch } ->
    instant ~cat:"net" "pkt-rx" ~args:[ ("nic", str nic); ("batch", i batch) ]
  | Trace.Pkt_drop { nic } -> instant ~cat:"net" "pkt-drop" ~args:[ ("nic", str nic) ]
  | Trace.Poll { found } -> instant ~cat:"softtimer" "net-poll" ~args:[ ("found", i found) ]
  | Trace.Rbc_send -> instant ~cat:"softtimer" "rbc-send"
  | Trace.Mark s -> instant ~cat:"mark" s

let to_chrome_json t =
  let b = Buffer.create 4096 in
  Buffer.add_string b "{\"traceEvents\":[";
  Buffer.add_string b
    "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"tid\":0,\"args\":{\"name\":\"softtimers-sim\"}}";
  (* Ring overflow: without a banner a truncated trace masquerades as a
     complete run.  The instant event is the first thing a viewer shows;
     the top-level field is for programmatic consumers. *)
  if Trace.dropped t > 0 then
    Buffer.add_string b
      (Printf.sprintf
         ",{\"name\":\"TRACE TRUNCATED: %d oldest events dropped (ring \
          overflow)\",\"cat\":\"warning\",\"ph\":\"i\",\"ts\":0,\"pid\":1,\"tid\":0,\"s\":\"g\"}"
         (Trace.dropped t));
  Trace.iter t (fun r ->
      Buffer.add_char b ',';
      Buffer.add_string b (json_of_ev (ev_of_record r)));
  Buffer.add_string b "],\"displayTimeUnit\":\"ns\"";
  if Trace.dropped t > 0 then
    Buffer.add_string b (Printf.sprintf ",\"droppedEvents\":%d" (Trace.dropped t));
  Buffer.add_string b "}";
  Buffer.contents b

let csv_row { Trace.at; ev } =
  let detail =
    match ev with
    | Trace.Trigger kind -> [ "trigger"; "kind=" ^ kind ]
    | Trace.Soft_sched { due } -> [ "soft-sched"; Printf.sprintf "due_ns=%Ld" due ]
    | Trace.Soft_fire { due; delay } ->
      [ "soft-fire"; Printf.sprintf "due_ns=%Ld;delay_ns=%Ld" due delay ]
    | Trace.Soft_cancel { due } -> [ "soft-cancel"; Printf.sprintf "due_ns=%Ld" due ]
    | Trace.Irq { line; cpu; dur } ->
      [ "irq"; Printf.sprintf "line=%s;cpu=%d;dur_ns=%Ld" line cpu dur ]
    | Trace.Irq_raised { line } -> [ "irq-raised"; "line=" ^ line ]
    | Trace.Irq_lost { line } -> [ "irq-lost"; "line=" ^ line ]
    | Trace.Cpu_busy { cpu } -> [ "cpu-busy"; Printf.sprintf "cpu=%d" cpu ]
    | Trace.Cpu_idle { cpu } -> [ "cpu-idle"; Printf.sprintf "cpu=%d" cpu ]
    | Trace.Pkt_enqueue { nic; qlen } ->
      [ "pkt-enqueue"; Printf.sprintf "nic=%s;qlen=%d" nic qlen ]
    | Trace.Pkt_tx { nic } -> [ "pkt-tx"; "nic=" ^ nic ]
    | Trace.Pkt_rx { nic; batch } -> [ "pkt-rx"; Printf.sprintf "nic=%s;batch=%d" nic batch ]
    | Trace.Pkt_drop { nic } -> [ "pkt-drop"; "nic=" ^ nic ]
    | Trace.Poll { found } -> [ "net-poll"; Printf.sprintf "found=%d" found ]
    | Trace.Rbc_send -> [ "rbc-send"; "" ]
    | Trace.Mark s -> [ "mark"; s ]
  in
  Printf.sprintf "%Ld,%s" at (String.concat "," detail)

let to_csv t =
  let b = Buffer.create 4096 in
  if Trace.dropped t > 0 then
    Buffer.add_string b
      (Printf.sprintf "# WARNING: trace truncated, %d oldest events dropped (ring overflow)\n"
         (Trace.dropped t));
  Buffer.add_string b "time_ns,event,detail\n";
  Trace.iter t (fun r ->
      Buffer.add_string b (csv_row r);
      Buffer.add_char b '\n');
  Buffer.contents b

let write_file path contents =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc contents)

let write_chrome_json t path = write_file path (to_chrome_json t)
let write_csv t path = write_file path (to_csv t)
