(* Shared GC accounting around a timed section.

   Every bench harness used to hand-roll its own [Gc.minor_words]
   pair; this helper measures one section with one convention:
   allocation deltas (minor/major/promoted words) plus the heap
   high-water mark, so words/op columns mean the same thing in
   [bench/main.ml], [bench/store_arena.ml] and [bench/pacer_bench.ml]. *)

type delta = {
  d_minor_words : float;  (* words allocated in the minor heap *)
  d_major_words : float;  (* words allocated directly in the major heap *)
  d_promoted_words : float;  (* words surviving into the major heap *)
  d_heap_words : int;  (* major heap size after the section *)
  d_top_heap_words : int;  (* process-lifetime heap high-water mark *)
}

let measure f =
  let s0 = Gc.quick_stat () in
  let x = f () in
  let s1 = Gc.quick_stat () in
  ( x,
    {
      d_minor_words = s1.Gc.minor_words -. s0.Gc.minor_words;
      d_major_words = s1.Gc.major_words -. s0.Gc.major_words;
      d_promoted_words = s1.Gc.promoted_words -. s0.Gc.promoted_words;
      d_heap_words = s1.Gc.heap_words;
      d_top_heap_words = s1.Gc.top_heap_words;
    } )

(* Major-heap words the section allocated net of promotion: what a
   "major words/op" column wants (promoted words would double-count
   minor allocation). *)
let major_alloc d = d.d_major_words -. d.d_promoted_words

let to_json d =
  Printf.sprintf
    "{\"minor_words\":%.0f,\"major_words\":%.0f,\"promoted_words\":%.0f,\
     \"heap_words\":%d,\"top_heap_words\":%d}"
    d.d_minor_words d.d_major_words d.d_promoted_words d.d_heap_words
    d.d_top_heap_words
