(* Fire-delay attribution: partition every fired timer's delay
   (fire_at - due) into an exact, conservation-checked breakdown of
   causes, reconstructed from the deterministic trace stream.

   The partition has ten segments, indexed 0..nseg-1:

   - 0..5  trigger-gap time sub-attributed to CPU-0 activity by work
           class (intr, softintr, kernel, user, background, timer) —
           the CPU was busy doing *this* and reached no trigger state;
   - 6     trigger-gap time the CPU spent idle before its wakeup
           (the idle checker had not yet polled);
   - 7     trigger-gap time not covered by the CPU-0 busy/idle timeline
           (activity on another CPU, or trace truncation);
   - 8     check-skipped: a trigger-state check reached the store while
           this timer was due, but a dispatch budget kept it from this
           timer (Soft_check with scanned > fired);
   - 9     batch-queueing: time between this timer's dispatching check
           and its handler invocation.  Structurally zero in this
           simulator — dispatch runs handlers inline at the check's
           timestamp — but kept in the partition so the contract (and
           the output schema) survives a deferred-dispatch model.

   Conservation is exact by construction: each timer carries a cursor
   that starts at its due time and only advances by attributing the
   crossed span to exactly one segment, ending at the fire time.  A
   runtime check still verifies sum(segs) = delay on every late fire
   and counts violations (the qcheck property asserts zero).

   Timeline reconstruction leans on the emit-order guarantees of the
   simulator: Cpu_run is emitted by Cpu.charge *before* the completing
   task's callback runs its trigger check, so when a Soft_fire at time
   F is processed, CPU-0 busy coverage of [0, F) is already complete;
   Soft_check follows the batch's Soft_fires at the same timestamp, so
   a check event seen by a still-pending due timer is precisely a check
   that scanned but skipped it. *)

let nklass = 6  (* Cpu work classes; mirrors Cpu.klass_count *)
let seg_idle = 6
let seg_other = 7
let seg_check_skipped = 8
let seg_batch_queue = 9
let nseg = 10

let klass_label = function
  | 0 -> "intr"
  | 1 -> "softintr"
  | 2 -> "kernel"
  | 3 -> "user"
  | 4 -> "background"
  | 5 -> "timer"
  | 6 -> "idle"
  | _ -> "other"

let seg_label = function
  | 8 -> "check-skipped"
  | 9 -> "batch-queue"
  | k -> "gap." ^ klass_label k

(* Long-form descriptions for the text report (paper §4.1 causes). *)
let seg_describe = function
  | 0 -> "interrupt handler running"
  | 1 -> "software-interrupt (protocol) processing"
  | 2 -> "system-call/trap body"
  | 3 -> "user-mode computation"
  | 4 -> "background compute"
  | 5 -> "handler of another soft timer"
  | 6 -> "CPU idle before wakeup"
  | 7 -> "uncovered (other CPU / truncated trace)"
  | 8 -> "check ran but dispatch budget skipped this timer"
  | 9 -> "queued within dispatching batch"
  | _ -> "?"

(* A tracked late timer: promoted from the heap once the stream clock
   passes its deadline. *)
type lt = {
  lid : int;
  ldue : Time_ns.t;
  mutable lcursor : Time_ns.t;  (* attributed up to here; >= ldue *)
  lsegs : int64 array;  (* nseg *)
  mutable lchecks : int;  (* checks that scanned-but-skipped this timer *)
  mutable lc1 : Time_ns.t;  (* first such check; Int64.max_int = none *)
}

type exemplar = {
  x_id : int;
  x_due : Time_ns.t;
  x_fire : Time_ns.t;
  x_delay : Time_ns.span;
  x_end_trigger : string;  (* trigger state whose check dispatched it *)
  x_batch_pos : int;  (* 1-based position among that check's fires *)
  x_checks : int;
  x_first_check : Time_ns.t option;
  x_segs : int64 array;
}

(* Per-ending-trigger aggregation: the §4.1 cross-tab. *)
type trig_row = {
  mutable t_fires : int;
  mutable t_delay : int64;
  t_segs : int64 array;
}

(* Min-heap of (due, id) promotion points with lazy deletion: an entry
   is live iff [pending] still maps its id to the same due time. *)
type heap = { mutable hdue : int64 array; mutable hid : int array; mutable hn : int }

type t = {
  worst : int;
  pending : (int, Time_ns.t) Hashtbl.t;  (* scheduled, not yet fired *)
  active : (int, lt) Hashtbl.t;  (* due-and-still-pending (late) *)
  heap : heap;
  mutable idle_open : bool;
  mutable idle_since : Time_ns.t;
  mutable last_trigger : string;
  mutable fires_since_trigger : int;
  mutable fired : int;
  mutable ontime : int;
  mutable late : int;
  mutable untracked : int;
  mutable violations : int;
  mutable abandoned : int;  (* pending at a sim.start reset *)
  mutable checks_seen : int;
  mutable skip_checks : int;  (* checks with scanned > fired *)
  cause_ns : int64 array;  (* nseg; totals over late fires *)
  cause_hdr : Hdr.t array;  (* nseg; per-late-fire segment, us *)
  delay_hdr : Hdr.t;  (* every fire, us *)
  trig_tbl : (string, trig_row) Hashtbl.t;
  mutable exemplars : exemplar list;  (* desc by (delay, -id); <= worst *)
}

let create ?(worst = 10) () =
  {
    worst = Stdlib.max 0 worst;
    pending = Hashtbl.create 256;
    active = Hashtbl.create 64;
    heap = { hdue = Array.make 64 0L; hid = Array.make 64 0; hn = 0 };
    idle_open = false;
    idle_since = Time_ns.zero;
    last_trigger = "?";
    fires_since_trigger = 0;
    fired = 0;
    ontime = 0;
    late = 0;
    untracked = 0;
    violations = 0;
    abandoned = 0;
    checks_seen = 0;
    skip_checks = 0;
    cause_ns = Array.make nseg 0L;
    cause_hdr = Array.init nseg (fun _ -> Hdr.create ());
    delay_hdr = Hdr.create ();
    trig_tbl = Hashtbl.create 8;
    exemplars = [];
  }

(* ---------------- heap ---------------- *)

let heap_less h i j =
  let c = Int64.compare h.hdue.(i) h.hdue.(j) in
  if c <> 0 then c < 0 else h.hid.(i) < h.hid.(j)

let heap_swap h i j =
  let d = h.hdue.(i) and x = h.hid.(i) in
  h.hdue.(i) <- h.hdue.(j);
  h.hid.(i) <- h.hid.(j);
  h.hdue.(j) <- d;
  h.hid.(j) <- x

let heap_push h ~due ~id =
  if h.hn = Array.length h.hdue then begin
    let cap = 2 * h.hn in
    let nd = Array.make cap 0L and ni = Array.make cap 0 in
    Array.blit h.hdue 0 nd 0 h.hn;
    Array.blit h.hid 0 ni 0 h.hn;
    h.hdue <- nd;
    h.hid <- ni
  end;
  h.hdue.(h.hn) <- due;
  h.hid.(h.hn) <- id;
  h.hn <- h.hn + 1;
  let i = ref (h.hn - 1) in
  while !i > 0 && heap_less h !i ((!i - 1) / 2) do
    heap_swap h !i ((!i - 1) / 2);
    i := (!i - 1) / 2
  done

let heap_pop h =
  let due = h.hdue.(0) and id = h.hid.(0) in
  h.hn <- h.hn - 1;
  if h.hn > 0 then begin
    h.hdue.(0) <- h.hdue.(h.hn);
    h.hid.(0) <- h.hid.(h.hn);
    let i = ref 0 in
    let continue = ref true in
    while !continue do
      let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
      let m = ref !i in
      if l < h.hn && heap_less h l !m then m := l;
      if r < h.hn && heap_less h r !m then m := r;
      if !m = !i then continue := false
      else begin
        heap_swap h !i !m;
        i := !m
      end
    done
  end;
  (due, id)

(* ---------------- attribution ---------------- *)

let no_check = Int64.max_int

(* Attribute [s, e) as class [k], split at the first skipping check:
   time before [lc1] is trigger-gap of class [k], time at or after it
   is check-skipped (the check had already reached the store; what the
   CPU did next no longer explains the wait). *)
let add_range lt ~s ~e ~k =
  let gap_end = Time_ns.min e lt.lc1 in
  if Time_ns.(gap_end > s) then
    lt.lsegs.(k) <- Int64.add lt.lsegs.(k) Time_ns.(gap_end - s);
  let cs_start = Time_ns.max s lt.lc1 in
  if Time_ns.(e > cs_start) then
    lt.lsegs.(seg_check_skipped) <-
      Int64.add lt.lsegs.(seg_check_skipped) Time_ns.(e - cs_start)

(* Advance [lt]'s cursor through [s, e): the part below the cursor is
   already accounted for; a hole between the cursor and [s] means no
   CPU-0 timeline event covered it, which is exactly [seg_other].
   Attributing the hole eagerly keeps conservation exact by
   construction on any stream, covered or not. *)
let add_span lt ~s ~e ~k =
  if Time_ns.(e > lt.lcursor) then begin
    let s0 = Time_ns.max s lt.lcursor in
    if Time_ns.(s0 > lt.lcursor) then add_range lt ~s:lt.lcursor ~e:s0 ~k:seg_other;
    if Time_ns.(e > s0) then add_range lt ~s:s0 ~e ~k;
    lt.lcursor <- e
  end

(* Each callback touches only its own [lt] — independent, commutative
   per-timer updates — so the unspecified table order cannot leak into
   any result (DET004: justified, not sorted; this runs per check). *)
let[@lint.allow "DET004"] each_active t f = Hashtbl.iter (fun _ lt -> f lt) t.active

(* Promote every pending timer whose deadline passed strictly before the
   stream clock [at]: from here on it accumulates attributable delay. *)
let promote t ~at =
  let h = t.heap in
  while h.hn > 0 && Int64.compare h.hdue.(0) at < 0 do
    let due, id = heap_pop h in
    match Hashtbl.find_opt t.pending id with
    | Some d when Time_ns.(d = due) ->
      if not (Hashtbl.mem t.active id) then
        Hashtbl.replace t.active id
          {
            lid = id;
            ldue = due;
            (* A timer due mid-way through an open idle period starts
               inside it; the idle close (or the fire) attributes the
               [due, wakeup) part, so the cursor starts at due. *)
            lcursor = due;
            lsegs = Array.make nseg 0L;
            lchecks = 0;
            lc1 = no_check;
          }
    | Some _ | None -> () (* stale heap entry: cancelled or re-armed *)
  done

let record_interval t ~s ~e ~k = each_active t (fun lt -> add_span lt ~s ~e ~k)

(* ---------------- exemplars ---------------- *)

let exemplar_worse a b =
  let c = Int64.compare a.x_delay b.x_delay in
  if c <> 0 then c > 0 else a.x_id < b.x_id

let insert_exemplar t x =
  if t.worst > 0 then begin
    let rec ins = function
      | [] -> [ x ]
      | y :: rest -> if exemplar_worse x y then x :: y :: rest else y :: ins rest
    in
    let l = ins t.exemplars in
    t.exemplars <-
      (if List.length l > t.worst then List.filteri (fun i _ -> i < t.worst) l else l)
  end

(* ---------------- event stream ---------------- *)

let trig_row t name =
  match Hashtbl.find_opt t.trig_tbl name with
  | Some r -> r
  | None ->
    let r = { t_fires = 0; t_delay = 0L; t_segs = Array.make nseg 0L } in
    Hashtbl.replace t.trig_tbl name r;
    r

let finish_fire t ~at lt =
  let id = lt.lid and due = lt.ldue in
  (* Idle stretch still open at the fire (the fire came from the idle
     checker's poll): attribute it up to now for this timer only; the
     eventual Cpu_busy closes it for the others. *)
  if t.idle_open && Time_ns.(t.idle_since < at) then
    add_span lt ~s:t.idle_since ~e:at ~k:seg_idle;
  (* Whatever the CPU-0 timeline did not cover. *)
  add_span lt ~s:lt.lcursor ~e:at ~k:seg_other;
  let delay = Time_ns.(at - due) in
  let sum = Array.fold_left Int64.add 0L lt.lsegs in
  if Int64.compare sum delay <> 0 then t.violations <- t.violations + 1;
  t.late <- t.late + 1;
  for k = 0 to nseg - 1 do
    t.cause_ns.(k) <- Int64.add t.cause_ns.(k) lt.lsegs.(k);
    if Int64.compare lt.lsegs.(k) 0L > 0 then
      Hdr.record t.cause_hdr.(k) (Time_ns.to_us lt.lsegs.(k))
  done;
  let row = trig_row t t.last_trigger in
  row.t_fires <- row.t_fires + 1;
  row.t_delay <- Int64.add row.t_delay delay;
  for k = 0 to nseg - 1 do
    row.t_segs.(k) <- Int64.add row.t_segs.(k) lt.lsegs.(k)
  done;
  insert_exemplar t
    {
      x_id = id;
      x_due = due;
      x_fire = at;
      x_delay = delay;
      x_end_trigger = t.last_trigger;
      x_batch_pos = t.fires_since_trigger;
      x_checks = lt.lchecks;
      x_first_check = (if Int64.equal lt.lc1 no_check then None else Some lt.lc1);
      x_segs = Array.copy lt.lsegs;
    }

let reset_run t =
  t.abandoned <- t.abandoned + Hashtbl.length t.pending;
  Hashtbl.reset t.pending;
  Hashtbl.reset t.active;
  t.heap.hn <- 0;
  t.idle_open <- false;
  t.last_trigger <- "?";
  t.fires_since_trigger <- 0

let on_event t ~at (ev : Trace.event) =
  promote t ~at;
  match ev with
  | Trace.Trigger kind ->
    t.last_trigger <- kind;
    t.fires_since_trigger <- 0
  | Trace.Cpu_run { cpu; klass; dur } ->
    if cpu = 0 then
      let k = if klass >= 0 && klass < nklass then klass else seg_other in
      record_interval t ~s:Time_ns.(at - dur) ~e:at ~k
  | Trace.Cpu_idle { cpu } ->
    if cpu = 0 then begin
      t.idle_open <- true;
      t.idle_since <- at
    end
  | Trace.Cpu_busy { cpu } ->
    if cpu = 0 && t.idle_open then begin
      t.idle_open <- false;
      if Time_ns.(t.idle_since < at) then
        record_interval t ~s:t.idle_since ~e:at ~k:seg_idle
    end
  | Trace.Soft_sched { id; due } ->
    Hashtbl.replace t.pending id due;
    heap_push t.heap ~due ~id
  | Trace.Soft_cancel { id; _ } ->
    Hashtbl.remove t.pending id;
    Hashtbl.remove t.active id
  | Trace.Soft_check { scanned; fired; _ } ->
    t.checks_seen <- t.checks_seen + 1;
    if scanned > fired then t.skip_checks <- t.skip_checks + 1;
    (* Every still-pending due timer was in this check's scanned batch
       (its Soft_fire would have preceded this event otherwise): the
       check reached the store but a budget kept it from the timer. *)
    each_active t (fun lt ->
        lt.lchecks <- lt.lchecks + 1;
        if Int64.equal lt.lc1 no_check then lt.lc1 <- at)
  | Trace.Soft_fire { id; due; _ } ->
    t.fired <- t.fired + 1;
    t.fires_since_trigger <- t.fires_since_trigger + 1;
    Hdr.record t.delay_hdr (Time_ns.to_us Time_ns.(at - due));
    if not (Hashtbl.mem t.pending id) then t.untracked <- t.untracked + 1
    else begin
      Hashtbl.remove t.pending id;
      match Hashtbl.find_opt t.active id with
      | Some lt ->
        Hashtbl.remove t.active id;
        finish_fire t ~at lt
      | None ->
        if Time_ns.(at > due) then
          (* Due and fired between two stream timestamps without a
             promotion point in between; account the whole (tiny) delay
             through the normal path. *)
          finish_fire t ~at
            {
              lid = id;
              ldue = due;
              lcursor = due;
              lsegs = Array.make nseg 0L;
              lchecks = 0;
              lc1 = no_check;
            }
        else t.ontime <- t.ontime + 1
    end
  | Trace.Mark m when String.equal m Trace.sim_start_mark -> reset_run t
  | Trace.Irq _ | Trace.Irq_raised _ | Trace.Irq_lost _ | Trace.Pkt_enqueue _
  | Trace.Pkt_tx _ | Trace.Pkt_rx _ | Trace.Pkt_drop _ | Trace.Poll _ | Trace.Rbc_send
  | Trace.Mark _ ->
    ()

let collect ?worst tr =
  let t = create ?worst () in
  Trace.iter tr (fun { Trace.at; ev } -> on_event t ~at ev);
  t

(* ---------------- accessors ---------------- *)

let fired t = t.fired
let late t = t.late
let ontime t = t.ontime
let untracked t = t.untracked
let violations t = t.violations
let checks_seen t = t.checks_seen
let skip_checks t = t.skip_checks
let pending_at_exit t = t.abandoned + Hashtbl.length t.pending
let cause_ns t k = t.cause_ns.(k)
let cause_hdr t k = t.cause_hdr.(k)
let delay_hdr t = t.delay_hdr
let exemplars t = t.exemplars

let total_late_ns t = Array.fold_left Int64.add 0L t.cause_ns

(* DET004: the fold's order is immediately erased by the sort below. *)
let[@lint.allow "DET004"] trigger_rows t =
  Hashtbl.fold (fun name r acc -> (name, r.t_fires, r.t_delay, Array.copy r.t_segs) :: acc)
    t.trig_tbl []
  |> List.sort (fun (a, _, _, _) (b, _, _, _) -> String.compare a b)

(* ---------------- renderers ---------------- *)

let us_of ns = Int64.to_float ns /. 1e3

let to_text t =
  let b = Buffer.create 2048 in
  let addf fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  addf "Why-late: fire-delay attribution\n";
  addf "  fired %d (on-time %d, late %d), untracked %d, pending at exit %d\n" t.fired
    t.ontime t.late t.untracked (pending_at_exit t);
  addf "  checks seen %d (budget-limited %d), conservation violations %d\n" t.checks_seen
    t.skip_checks t.violations;
  let total = total_late_ns t in
  if t.late > 0 then begin
    addf "\nCause breakdown (%d late fires, %.3f ms attributed)\n" t.late
      (Int64.to_float total /. 1e6);
    addf "  %-18s %12s %7s %9s %9s %9s\n" "cause" "total_us" "share" "fires" "p50_us"
      "p99_us";
    for k = 0 to nseg - 1 do
      let ns = t.cause_ns.(k) in
      let h = t.cause_hdr.(k) in
      if Int64.compare ns 0L > 0 || Hdr.count h > 0 then
        addf "  %-18s %12.1f %6.1f%% %9d %9.1f %9.1f  (%s)\n" (seg_label k) (us_of ns)
          (if Int64.compare total 0L > 0 then
             100.0 *. Int64.to_float ns /. Int64.to_float total
           else 0.0)
          (Hdr.count h)
          (Hdr.quantile h 0.5) (Hdr.quantile h 0.99) (seg_describe k)
    done;
    addf "\nEnding trigger state (which check finally dispatched the late timer)\n";
    addf "  %-12s %7s %12s %9s  dominant cause\n" "trigger" "fires" "delay_us" "avg_us";
    List.iter
      (fun (name, fires, delay, segs) ->
        let dom = ref 0 in
        Array.iteri (fun k v -> if Int64.compare v segs.(!dom) > 0 then dom := k) segs;
        addf "  %-12s %7d %12.1f %9.1f  %s\n" name fires (us_of delay)
          (us_of delay /. float_of_int (Stdlib.max 1 fires))
          (seg_label !dom))
      (trigger_rows t);
    (match t.exemplars with
    | [] -> ()
    | exs ->
      addf "\nWorst %d late fires\n" (List.length exs);
      addf "  %-8s %12s %10s %-12s %6s %6s %12s  causal chain\n" "timer" "due_us"
        "delay_us" "end_trigger" "batch" "skips" "1st_chk_us";
      List.iter
        (fun x ->
          let chain =
            let parts = ref [] in
            for k = nseg - 1 downto 0 do
              if Int64.compare x.x_segs.(k) 0L > 0 then
                parts :=
                  Printf.sprintf "%s=%.1fus" (seg_label k) (us_of x.x_segs.(k)) :: !parts
            done;
            String.concat " -> " !parts
          in
          addf "  %-8d %12.1f %10.1f %-12s %6d %6d %12s  %s\n" x.x_id (us_of x.x_due)
            (us_of x.x_delay) x.x_end_trigger x.x_batch_pos x.x_checks
            (match x.x_first_check with
            | None -> "-"
            | Some c -> Printf.sprintf "%.1f" (us_of c))
            chain)
        exs)
  end
  else addf "\nNo late fires: every dispatched timer fired at its deadline.\n";
  Buffer.contents b

let json_escape s =
  let b = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 0x20 -> Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let to_json t =
  let b = Buffer.create 4096 in
  let addf fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  addf "{\"schema\":\"softtimers-whylate/1\"";
  addf ",\"fired\":%d,\"ontime\":%d,\"late\":%d,\"untracked\":%d" t.fired t.ontime t.late
    t.untracked;
  addf ",\"pending_at_exit\":%d,\"checks_seen\":%d,\"budget_limited_checks\":%d"
    (pending_at_exit t) t.checks_seen t.skip_checks;
  addf ",\"conservation_violations\":%d" t.violations;
  addf ",\"causes\":[";
  let first = ref true in
  for k = 0 to nseg - 1 do
    if not !first then addf ",";
    first := false;
    let h = t.cause_hdr.(k) in
    addf "{\"cause\":\"%s\",\"total_ns\":%Ld,\"fires\":%d" (seg_label k) t.cause_ns.(k)
      (Hdr.count h);
    if Hdr.count h > 0 then
      addf ",\"p50_us\":%.3f,\"p99_us\":%.3f,\"max_us\":%.3f" (Hdr.quantile h 0.5)
        (Hdr.quantile h 0.99) (Hdr.max h);
    addf "}"
  done;
  addf "],\"end_triggers\":[";
  List.iteri
    (fun i (name, fires, delay, segs) ->
      if i > 0 then addf ",";
      addf "{\"trigger\":\"%s\",\"fires\":%d,\"delay_ns\":%Ld,\"segs\":{" (json_escape name)
        fires delay;
      let first = ref true in
      Array.iteri
        (fun k v ->
          if Int64.compare v 0L > 0 then begin
            if not !first then addf ",";
            first := false;
            addf "\"%s\":%Ld" (seg_label k) v
          end)
        segs;
      addf "}}")
    (trigger_rows t);
  addf "],\"worst\":[";
  List.iteri
    (fun i x ->
      if i > 0 then addf ",";
      addf
        "{\"timer\":%d,\"due_ns\":%Ld,\"fire_ns\":%Ld,\"delay_ns\":%Ld,\"end_trigger\":\"%s\",\"batch_pos\":%d,\"checks_skipped\":%d"
        x.x_id x.x_due x.x_fire x.x_delay (json_escape x.x_end_trigger) x.x_batch_pos
        x.x_checks;
      (match x.x_first_check with
      | Some c -> addf ",\"first_check_ns\":%Ld" c
      | None -> ());
      addf ",\"segs\":{";
      let first = ref true in
      Array.iteri
        (fun k v ->
          if Int64.compare v 0L > 0 then begin
            if not !first then addf ",";
            first := false;
            addf "\"%s\":%Ld" (seg_label k) v
          end)
        x.x_segs;
      addf "}}")
    t.exemplars;
  addf "]}";
  Buffer.contents b

let prom_sanitize s =
  String.map
    (fun c ->
      match c with 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' -> c | _ -> '_')
    s

let to_prometheus t =
  let b = Buffer.create 2048 in
  let addf fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  addf "# TYPE softtimer_whylate_fired counter\nsofttimer_whylate_fired %d\n" t.fired;
  addf "# TYPE softtimer_whylate_late counter\nsofttimer_whylate_late %d\n" t.late;
  addf "# TYPE softtimer_whylate_untracked counter\nsofttimer_whylate_untracked %d\n"
    t.untracked;
  addf
    "# TYPE softtimer_whylate_pending_at_exit gauge\nsofttimer_whylate_pending_at_exit %d\n"
    (pending_at_exit t);
  addf
    "# TYPE softtimer_whylate_violations counter\nsofttimer_whylate_violations %d\n"
    t.violations;
  addf "# TYPE softtimer_whylate_cause_ns counter\n";
  for k = 0 to nseg - 1 do
    addf "softtimer_whylate_cause_ns{cause=\"%s\"} %Ld\n" (prom_sanitize (seg_label k))
      t.cause_ns.(k)
  done;
  addf "# TYPE softtimer_whylate_cause_us summary\n";
  for k = 0 to nseg - 1 do
    let h = t.cause_hdr.(k) in
    if Hdr.count h > 0 then begin
      let c = prom_sanitize (seg_label k) in
      List.iter
        (fun q ->
          addf "softtimer_whylate_cause_us{cause=\"%s\",quantile=\"%g\"} %.6g\n" c q
            (Hdr.quantile h q))
        [ 0.5; 0.9; 0.99; 1.0 ];
      addf "softtimer_whylate_cause_us_count{cause=\"%s\"} %d\n" c (Hdr.count h)
    end
  done;
  addf "# TYPE softtimer_whylate_end_trigger counter\n";
  List.iter
    (fun (name, fires, _, _) ->
      addf "softtimer_whylate_end_trigger{trigger=\"%s\"} %d\n" (prom_sanitize name) fires)
    (trigger_rows t);
  Buffer.contents b
