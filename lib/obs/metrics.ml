(* The two Hashtbl iterations below never let bucket order reach any
   output: [reset] zeroes instruments regardless of visit order, and
   [iter] folds the names out only to sort them before reading. *)
[@@@lint.allow "DET004"]

type counter = { mutable c : int }
type gauge = { mutable g : float }

(* Domain-local instruments are dense integer handles into per-domain
   value arrays (below); the registry only remembers the id, so the
   handle binding itself carries no mutable state and the RACE rules
   have nothing to flag at registration sites. *)
type dcounter = int
type dhistogram = int

type instrument =
  | I_counter of counter
  | I_gauge of gauge
  | I_hdr of Hdr.t
  | I_probe of (unit -> float)
  | I_dcounter of int
  | I_dhdr of int

type t = { tbl : (string, instrument) Hashtbl.t }

let create () = { tbl = Hashtbl.create 64 }

(* ------------------------------------------------------------------ *)
(* Domain-local value storage.  Ids are allocated process-wide (module
   initialisation runs before any domain spawns, so the id space is
   fixed by the time workers exist); each domain lazily grows a private
   array pair, and the parallel runner merges worker contexts back into
   the parent in deterministic job order via [Local].                   *)

let next_dcounter = Atomic.make 0
let next_dhdr = Atomic.make 0

type local = { mutable lc : int array; mutable lh : Hdr.t array }

let local_key : local Domain.DLS.key =
  Domain.DLS.new_key (fun () -> { lc = [||]; lh = [||] })

let ensure_lc l n =
  if Array.length l.lc < n then begin
    let a = Array.make (let m = n * 2 in if m < 64 then 64 else m) 0 in
    Array.blit l.lc 0 a 0 (Array.length l.lc);
    l.lc <- a
  end

let ensure_lh l n =
  if Array.length l.lh < n then begin
    let old = l.lh in
    let len = Array.length old in
    let a =
      Array.init
        (let m = n * 2 in if m < 8 then 8 else m)
        (fun i -> if i < len then old.(i) else Hdr.create ())
    in
    l.lh <- a
  end

let dincr ?(by = 1) (id : dcounter) =
  let l = Domain.DLS.get local_key in
  ensure_lc l (id + 1);
  l.lc.(id) <- l.lc.(id) + by

let dcounter_value (id : dcounter) =
  let l = Domain.DLS.get local_key in
  if id < Array.length l.lc then l.lc.(id) else 0

let drecord (id : dhistogram) v =
  let l = Domain.DLS.get local_key in
  ensure_lh l (id + 1);
  Hdr.record l.lh.(id) v

let dhistogram_hdr (id : dhistogram) =
  let l = Domain.DLS.get local_key in
  ensure_lh l (id + 1);
  l.lh.(id)

module Local = struct
  type ctx = local

  let swap ctx =
    let prev = Domain.DLS.get local_key in
    Domain.DLS.set local_key ctx;
    prev

  let swap_fresh () = swap { lc = [||]; lh = [||] }

  let absorb (ctx : ctx) =
    let l = Domain.DLS.get local_key in
    ensure_lc l (Array.length ctx.lc);
    Array.iteri (fun i v -> if v <> 0 then l.lc.(i) <- l.lc.(i) + v) ctx.lc;
    ensure_lh l (Array.length ctx.lh);
    Array.iteri
      (fun i h -> if Hdr.count h > 0 then l.lh.(i) <- Hdr.merge l.lh.(i) h)
      ctx.lh
end

(* RACE002: the process-wide registry all library instruments hang off.
   The table itself is only extended during module init and sequential
   setup (instrument interning), never from parallel jobs; the
   instruments hanging off it are separate toplevel states, and those
   stay flagged — frozen as known single-domain debt in
   tools/lint/BASELINE.json until the planned SMP work (ROADMAP item 2)
   moves them to Domain.DLS or Atomic. *)
let default = create () [@@lint.allow "RACE002"]

let kind_name = function
  | I_counter _ -> "counter"
  | I_gauge _ -> "gauge"
  | I_hdr _ -> "histogram"
  | I_probe _ -> "probe"
  | I_dcounter _ -> "domain-local counter"
  | I_dhdr _ -> "domain-local histogram"

let wrong_kind name want got =
  invalid_arg
    (Printf.sprintf "Metrics: %S is a %s, not a %s" name (kind_name got) want)

let counter t name =
  match Hashtbl.find_opt t.tbl name with
  | Some (I_counter c) -> c
  | Some other -> wrong_kind name "counter" other
  | None ->
    let c = { c = 0 } in
    Hashtbl.replace t.tbl name (I_counter c);
    c

let incr ?(by = 1) c = c.c <- c.c + by
let counter_value c = c.c

let gauge t name =
  match Hashtbl.find_opt t.tbl name with
  | Some (I_gauge g) -> g
  | Some other -> wrong_kind name "gauge" other
  | None ->
    let g = { g = nan } in
    Hashtbl.replace t.tbl name (I_gauge g);
    g

let set_gauge g v = g.g <- v
let gauge_value g = g.g

let hdr t name =
  match Hashtbl.find_opt t.tbl name with
  | Some (I_hdr h) -> h
  | Some other -> wrong_kind name "histogram" other
  | None ->
    let h = Hdr.create () in
    Hashtbl.replace t.tbl name (I_hdr h);
    h

let probe t name f =
  match Hashtbl.find_opt t.tbl name with
  | Some (I_probe _) | None -> Hashtbl.replace t.tbl name (I_probe f)
  | Some other -> wrong_kind name "probe" other

let dcounter t name =
  match Hashtbl.find_opt t.tbl name with
  | Some (I_dcounter id) -> id
  | Some other -> wrong_kind name "domain-local counter" other
  | None ->
    let id = Atomic.fetch_and_add next_dcounter 1 in
    Hashtbl.replace t.tbl name (I_dcounter id);
    id

let dhistogram t name =
  match Hashtbl.find_opt t.tbl name with
  | Some (I_dhdr id) -> id
  | Some other -> wrong_kind name "domain-local histogram" other
  | None ->
    let id = Atomic.fetch_and_add next_dhdr 1 in
    Hashtbl.replace t.tbl name (I_dhdr id);
    id

let reset t =
  (* Instruments are held by reference at registration sites, so zero
     them in place.  Probes are kept: they are registered explicitly
     (often at module init or facility attach) and dropping them made
     the second run in one process silently lose its pull-style metrics
     — a re-registration under the same name still replaces. *)
  Hashtbl.iter
    (fun _name i ->
      match i with
      | I_counter c -> c.c <- 0
      | I_gauge g -> g.g <- nan
      | I_hdr h -> Hdr.clear h
      | I_probe _ -> ()
      | I_dcounter id ->
        let l = Domain.DLS.get local_key in
        if id < Array.length l.lc then l.lc.(id) <- 0
      | I_dhdr id ->
        let l = Domain.DLS.get local_key in
        if id < Array.length l.lh then Hdr.clear l.lh.(id))
    t.tbl

type value =
  | Counter of int
  | Gauge of float
  | Histogram of Hdr.t
  | Probe of float

let iter t f =
  let names = Hashtbl.fold (fun name _ acc -> name :: acc) t.tbl [] in
  List.iter
    (fun name ->
      match Hashtbl.find t.tbl name with
      | I_counter c -> f name (Counter c.c)
      | I_gauge g -> f name (Gauge g.g)
      | I_hdr h -> f name (Histogram h)
      | I_probe p -> f name (Probe (p ()))
      | I_dcounter id -> f name (Counter (dcounter_value id))
      | I_dhdr id -> f name (Histogram (dhistogram_hdr id)))
    (List.sort String.compare names)

let dump t =
  let b = Buffer.create 1024 in
  iter t (fun name v ->
      match v with
      | Counter c -> Buffer.add_string b (Printf.sprintf "%-42s %12d\n" name c)
      | Gauge g -> Buffer.add_string b (Printf.sprintf "%-42s %12.3f\n" name g)
      | Probe p -> Buffer.add_string b (Printf.sprintf "%-42s %12.3f\n" name p)
      | Histogram h ->
        let n = Hdr.count h in
        if n = 0 then Buffer.add_string b (Printf.sprintf "%-42s      (empty)\n" name)
        else
          Buffer.add_string b
            (Printf.sprintf "%-42s n=%d mean=%.3f p50=%.3f p99=%.3f max=%.3f\n" name n
               (Hdr.mean h) (Hdr.quantile h 0.5) (Hdr.quantile h 0.99) (Hdr.max h)));
  Buffer.contents b

(* ------------------------------------------------------------------ *)
(* Prometheus text exposition (version 0.0.4).                         *)

let prom_name name =
  String.map
    (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | ':' -> c
      | _ -> '_')
    name

let prom_float v =
  if Float.is_nan v then "NaN"
  else if Float.is_integer v && Float.abs v < 1e15 then Printf.sprintf "%.0f" v
  else Printf.sprintf "%.9g" v

let to_prometheus t =
  let b = Buffer.create 2048 in
  let addf fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  iter t (fun name v ->
      let n = prom_name name in
      match v with
      | Counter c ->
        addf "# TYPE %s counter\n%s %d\n" n n c
      | Gauge g ->
        if not (Float.is_nan g) then addf "# TYPE %s gauge\n%s %s\n" n n (prom_float g)
      | Probe p -> addf "# TYPE %s gauge\n%s %s\n" n n (prom_float p)
      | Histogram h ->
        addf "# TYPE %s summary\n" n;
        if Hdr.count h > 0 then begin
          List.iter
            (fun q ->
              addf "%s{quantile=\"%s\"} %s\n" n
                (Printf.sprintf "%g" q)
                (prom_float (Hdr.quantile h q)))
            [ 0.5; 0.9; 0.99; 1.0 ]
        end;
        addf "%s_sum %s\n%s_count %d\n" n (prom_float (Hdr.sum h)) n (Hdr.count h));
  Buffer.contents b
