(* The two Hashtbl iterations below never let bucket order reach any
   output: [reset] zeroes instruments regardless of visit order, and
   [iter] folds the names out only to sort them before reading. *)
[@@@lint.allow "DET004"]

type counter = { mutable c : int }
type gauge = { mutable g : float }

type instrument =
  | I_counter of counter
  | I_gauge of gauge
  | I_hist of Stats.Sample.t
  | I_probe of (unit -> float)

type t = { tbl : (string, instrument) Hashtbl.t }

let create () = { tbl = Hashtbl.create 64 }
let default = create ()

let kind_name = function
  | I_counter _ -> "counter"
  | I_gauge _ -> "gauge"
  | I_hist _ -> "histogram"
  | I_probe _ -> "probe"

let wrong_kind name want got =
  invalid_arg
    (Printf.sprintf "Metrics: %S is a %s, not a %s" name (kind_name got) want)

let counter t name =
  match Hashtbl.find_opt t.tbl name with
  | Some (I_counter c) -> c
  | Some other -> wrong_kind name "counter" other
  | None ->
    let c = { c = 0 } in
    Hashtbl.replace t.tbl name (I_counter c);
    c

let incr ?(by = 1) c = c.c <- c.c + by
let counter_value c = c.c

let gauge t name =
  match Hashtbl.find_opt t.tbl name with
  | Some (I_gauge g) -> g
  | Some other -> wrong_kind name "gauge" other
  | None ->
    let g = { g = nan } in
    Hashtbl.replace t.tbl name (I_gauge g);
    g

let set_gauge g v = g.g <- v
let gauge_value g = g.g

let histogram t name =
  match Hashtbl.find_opt t.tbl name with
  | Some (I_hist h) -> h
  | Some other -> wrong_kind name "histogram" other
  | None ->
    let h = Stats.Sample.create () in
    Hashtbl.replace t.tbl name (I_hist h);
    h

let probe t name f =
  match Hashtbl.find_opt t.tbl name with
  | Some (I_probe _) | None -> Hashtbl.replace t.tbl name (I_probe f)
  | Some other -> wrong_kind name "probe" other

let sampling_on = ref false
let sampling () = !sampling_on
let set_sampling b = sampling_on := b

let reset t =
  (* Instruments are held by reference at registration sites, so zero
     them in place; probes (explicitly registered) are dropped. *)
  let stale = ref [] in
  Hashtbl.iter
    (fun name i ->
      match i with
      | I_counter c -> c.c <- 0
      | I_gauge g -> g.g <- nan
      | I_hist h -> Stats.Sample.clear h
      | I_probe _ -> stale := name :: !stale)
    t.tbl;
  List.iter (Hashtbl.remove t.tbl) !stale

type value =
  | Counter of int
  | Gauge of float
  | Histogram of Stats.Sample.t
  | Probe of float

let iter t f =
  let names = Hashtbl.fold (fun name _ acc -> name :: acc) t.tbl [] in
  List.iter
    (fun name ->
      match Hashtbl.find t.tbl name with
      | I_counter c -> f name (Counter c.c)
      | I_gauge g -> f name (Gauge g.g)
      | I_hist h -> f name (Histogram h)
      | I_probe p -> f name (Probe (p ())))
    (List.sort String.compare names)

let dump t =
  let b = Buffer.create 1024 in
  iter t (fun name v ->
      match v with
      | Counter c -> Buffer.add_string b (Printf.sprintf "%-42s %12d\n" name c)
      | Gauge g -> Buffer.add_string b (Printf.sprintf "%-42s %12.3f\n" name g)
      | Probe p -> Buffer.add_string b (Printf.sprintf "%-42s %12.3f\n" name p)
      | Histogram h ->
        let n = Stats.Sample.count h in
        if n = 0 then Buffer.add_string b (Printf.sprintf "%-42s      (empty)\n" name)
        else
          Buffer.add_string b
            (Printf.sprintf "%-42s n=%d mean=%.3f p50=%.3f p99=%.3f max=%.3f\n" name n
               (Stats.Sample.mean h) (Stats.Sample.median h)
               (Stats.Sample.percentile h 99.0) (Stats.Sample.max h)));
  Buffer.contents b
