(* The two Hashtbl iterations below never let bucket order reach any
   output: [reset] zeroes instruments regardless of visit order, and
   [iter] folds the names out only to sort them before reading. *)
[@@@lint.allow "DET004"]

type counter = { mutable c : int }
type gauge = { mutable g : float }

type instrument =
  | I_counter of counter
  | I_gauge of gauge
  | I_hdr of Hdr.t
  | I_probe of (unit -> float)

type t = { tbl : (string, instrument) Hashtbl.t }

let create () = { tbl = Hashtbl.create 64 }

(* RACE002: the process-wide registry all library instruments hang off.
   The table itself is only extended during module init and sequential
   setup (instrument interning), never from parallel jobs; the
   instruments hanging off it are separate toplevel states, and those
   stay flagged — frozen as known single-domain debt in
   tools/lint/BASELINE.json until the planned SMP work (ROADMAP item 2)
   moves them to Domain.DLS or Atomic. *)
let default = create () [@@lint.allow "RACE002"]

let kind_name = function
  | I_counter _ -> "counter"
  | I_gauge _ -> "gauge"
  | I_hdr _ -> "histogram"
  | I_probe _ -> "probe"

let wrong_kind name want got =
  invalid_arg
    (Printf.sprintf "Metrics: %S is a %s, not a %s" name (kind_name got) want)

let counter t name =
  match Hashtbl.find_opt t.tbl name with
  | Some (I_counter c) -> c
  | Some other -> wrong_kind name "counter" other
  | None ->
    let c = { c = 0 } in
    Hashtbl.replace t.tbl name (I_counter c);
    c

let incr ?(by = 1) c = c.c <- c.c + by
let counter_value c = c.c

let gauge t name =
  match Hashtbl.find_opt t.tbl name with
  | Some (I_gauge g) -> g
  | Some other -> wrong_kind name "gauge" other
  | None ->
    let g = { g = nan } in
    Hashtbl.replace t.tbl name (I_gauge g);
    g

let set_gauge g v = g.g <- v
let gauge_value g = g.g

let hdr t name =
  match Hashtbl.find_opt t.tbl name with
  | Some (I_hdr h) -> h
  | Some other -> wrong_kind name "histogram" other
  | None ->
    let h = Hdr.create () in
    Hashtbl.replace t.tbl name (I_hdr h);
    h

let probe t name f =
  match Hashtbl.find_opt t.tbl name with
  | Some (I_probe _) | None -> Hashtbl.replace t.tbl name (I_probe f)
  | Some other -> wrong_kind name "probe" other

let reset t =
  (* Instruments are held by reference at registration sites, so zero
     them in place.  Probes are kept: they are registered explicitly
     (often at module init or facility attach) and dropping them made
     the second run in one process silently lose its pull-style metrics
     — a re-registration under the same name still replaces. *)
  Hashtbl.iter
    (fun _name i ->
      match i with
      | I_counter c -> c.c <- 0
      | I_gauge g -> g.g <- nan
      | I_hdr h -> Hdr.clear h
      | I_probe _ -> ())
    t.tbl

type value =
  | Counter of int
  | Gauge of float
  | Histogram of Hdr.t
  | Probe of float

let iter t f =
  let names = Hashtbl.fold (fun name _ acc -> name :: acc) t.tbl [] in
  List.iter
    (fun name ->
      match Hashtbl.find t.tbl name with
      | I_counter c -> f name (Counter c.c)
      | I_gauge g -> f name (Gauge g.g)
      | I_hdr h -> f name (Histogram h)
      | I_probe p -> f name (Probe (p ())))
    (List.sort String.compare names)

let dump t =
  let b = Buffer.create 1024 in
  iter t (fun name v ->
      match v with
      | Counter c -> Buffer.add_string b (Printf.sprintf "%-42s %12d\n" name c)
      | Gauge g -> Buffer.add_string b (Printf.sprintf "%-42s %12.3f\n" name g)
      | Probe p -> Buffer.add_string b (Printf.sprintf "%-42s %12.3f\n" name p)
      | Histogram h ->
        let n = Hdr.count h in
        if n = 0 then Buffer.add_string b (Printf.sprintf "%-42s      (empty)\n" name)
        else
          Buffer.add_string b
            (Printf.sprintf "%-42s n=%d mean=%.3f p50=%.3f p99=%.3f max=%.3f\n" name n
               (Hdr.mean h) (Hdr.quantile h 0.5) (Hdr.quantile h 0.99) (Hdr.max h)));
  Buffer.contents b

(* ------------------------------------------------------------------ *)
(* Prometheus text exposition (version 0.0.4).                         *)

let prom_name name =
  String.map
    (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | ':' -> c
      | _ -> '_')
    name

let prom_float v =
  if Float.is_nan v then "NaN"
  else if Float.is_integer v && Float.abs v < 1e15 then Printf.sprintf "%.0f" v
  else Printf.sprintf "%.9g" v

let to_prometheus t =
  let b = Buffer.create 2048 in
  let addf fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  iter t (fun name v ->
      let n = prom_name name in
      match v with
      | Counter c ->
        addf "# TYPE %s counter\n%s %d\n" n n c
      | Gauge g ->
        if not (Float.is_nan g) then addf "# TYPE %s gauge\n%s %s\n" n n (prom_float g)
      | Probe p -> addf "# TYPE %s gauge\n%s %s\n" n n (prom_float p)
      | Histogram h ->
        addf "# TYPE %s summary\n" n;
        if Hdr.count h > 0 then begin
          List.iter
            (fun q ->
              addf "%s{quantile=\"%s\"} %s\n" n
                (Printf.sprintf "%g" q)
                (prom_float (Hdr.quantile h q)))
            [ 0.5; 0.9; 0.99; 1.0 ]
        end;
        addf "%s_sum %s\n%s_count %d\n" n (prom_float (Hdr.sum h)) n (Hdr.count h));
  Buffer.contents b
