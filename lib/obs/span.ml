(* Id-stamped async lifecycles reconstructed from a recorded trace.

   Spans are derived post-hoc from the event stream — no new trace
   events are emitted, so trace digests (and verify-determinism) are
   unaffected by collecting them.  Ids are assigned in stream order of
   the opening event, which makes them deterministic for a given trace.

   Matching is FIFO per key: a [Soft_fire]/[Soft_cancel] closes the
   oldest open timer span scheduled for the same due time; a [Pkt_rx]
   of batch [b] closes the [b] oldest open enqueues on that NIC (the rx
   ring is a FIFO).  [Pkt_drop] opens nothing: the NIC emits it instead
   of [Pkt_enqueue] when the ring is full, so a dropped packet never
   had a lifecycle to track.  The open-span tables are Hashtbls used
   with find/replace only — no iteration order ever reaches output. *)

type kind = Timer | Packet of string

type outcome = Fired | Cancelled | Delivered

type span = {
  id : int;  (* stream order of the opening event *)
  kind : kind;
  start : Time_ns.t;
  mutable finish : Time_ns.t option;  (* [None]: still open at end of trace *)
  mutable outcome : outcome option;
}

type t = {
  spans : span list;  (* creation (id) order *)
  timer_latency : Hdr.t;  (* sched -> fire, us (fired spans only) *)
  packet_latency : Hdr.t;  (* enqueue -> rx, us *)
  timers_total : int;
  timers_fired : int;
  timers_cancelled : int;
  timers_open : int;
  packets_total : int;
  packets_delivered : int;
  packets_open : int;
}

let spans t = t.spans
let timer_latency t = t.timer_latency
let packet_latency t = t.packet_latency
let timers_total t = t.timers_total
let timers_fired t = t.timers_fired
let timers_cancelled t = t.timers_cancelled
let timers_open t = t.timers_open
let packets_total t = t.packets_total
let packets_delivered t = t.packets_delivered
let packets_open t = t.packets_open

let collect tr =
  let next_id = ref 0 in
  let rev_spans = ref [] in
  let timer_latency = Hdr.create () in
  let packet_latency = Hdr.create () in
  let timers_total = ref 0
  and timers_fired = ref 0
  and timers_cancelled = ref 0
  and packets_total = ref 0
  and packets_delivered = ref 0 in
  (* Open spans, FIFO per key.  find/replace only: never iterated. *)
  let timer_open : (Time_ns.t, span Queue.t) Hashtbl.t = Hashtbl.create 256 in
  let pkt_open : (string, span Queue.t) Hashtbl.t = Hashtbl.create 8 in
  let open_span kind start =
    let s = { id = !next_id; kind; start; finish = None; outcome = None } in
    incr next_id;
    rev_spans := s :: !rev_spans;
    s
  in
  let fifo tbl key =
    match Hashtbl.find_opt tbl key with
    | Some q -> q
    | None ->
      let q = Queue.create () in
      Hashtbl.replace tbl key q;
      q
  in
  let close_timer ~at due outcome =
    match Hashtbl.find_opt timer_open due with
    | Some q when not (Queue.is_empty q) ->
      let s = Queue.pop q in
      s.finish <- Some at;
      s.outcome <- Some outcome;
      (match outcome with
      | Fired ->
        incr timers_fired;
        Hdr.record timer_latency (Time_ns.to_us Time_ns.(at - s.start))
      | Cancelled -> incr timers_cancelled
      | Delivered -> ())
    | _ -> () (* opening event lost to ring overflow; nothing to close *)
  in
  Trace.iter tr (fun { Trace.at; ev } ->
      match ev with
      | Trace.Soft_sched { due; _ } ->
        incr timers_total;
        Queue.push (open_span Timer at) (fifo timer_open due)
      | Trace.Soft_fire { due; _ } -> close_timer ~at due Fired
      | Trace.Soft_cancel { due; _ } -> close_timer ~at due Cancelled
      | Trace.Pkt_enqueue { nic; _ } ->
        incr packets_total;
        Queue.push (open_span (Packet nic) at) (fifo pkt_open nic)
      | Trace.Pkt_rx { nic; batch } ->
        let q = fifo pkt_open nic in
        for _ = 1 to Stdlib.min batch (Queue.length q) do
          let s = Queue.pop q in
          s.finish <- Some at;
          s.outcome <- Some Delivered;
          incr packets_delivered;
          Hdr.record packet_latency (Time_ns.to_us Time_ns.(at - s.start))
        done
      | Trace.Mark m when String.equal m Trace.sim_start_mark ->
        (* A fresh simulation: whatever is still open will never close.
           Leave those spans open (orphans) and stop matching against
           them so the new run's events cannot close the old run's. *)
        Hashtbl.reset timer_open;
        Hashtbl.reset pkt_open
      | _ -> ());
  let spans = List.rev !rev_spans in
  {
    spans;
    timer_latency;
    packet_latency;
    timers_total = !timers_total;
    timers_fired = !timers_fired;
    timers_cancelled = !timers_cancelled;
    timers_open = !timers_total - !timers_fired - !timers_cancelled;
    packets_total = !packets_total;
    packets_delivered = !packets_delivered;
    packets_open = !packets_total - !packets_delivered;
  }
