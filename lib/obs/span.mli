(** Async lifecycle spans reconstructed from a recorded trace.

    A span tracks one entity across the simulation: a soft timer from
    [Soft_sched] to its [Soft_fire] or [Soft_cancel], or a packet from
    [Pkt_enqueue] to the [Pkt_rx] batch that delivered it.  Spans are
    derived {e post-hoc} from a {!Trace.t} — nothing new is emitted
    into the trace, so trace digests and verify-determinism results are
    unchanged by collecting them.

    Matching is FIFO per key (due time for timers, NIC for packets),
    mirroring the simulator's own queue discipline.  In particular, two
    timers scheduled for the {e same} due time are closed in schedule
    order: the stores dispatch equal deadlines in (deadline, tie
    position) order and the trace replays schedules in stream order, so
    the oldest open span is exactly the timer that fired — the FIFO
    tie-break is the dispatch tie-break (see
    [test/test_obs.ml:span_fifo_tie]).  [Pkt_drop] opens no span: the
    NIC emits it {e instead of} [Pkt_enqueue] when its ring is full.
    Span ids are assigned in stream order of the opening event, so they
    are deterministic for a given trace and survive job-order
    [Trace.absorb] merges unchanged. *)

type kind = Timer | Packet of string  (** [Packet nic] *)

type outcome = Fired | Cancelled | Delivered

type span = {
  id : int;  (** stream order of the opening event *)
  kind : kind;
  start : Time_ns.t;
  mutable finish : Time_ns.t option;  (** [None]: never closed *)
  mutable outcome : outcome option;
}

type t

val collect : Trace.t -> t
(** Scan [tr] oldest-first and reconstruct every span.  A
    [sim.start] mark abandons all still-open spans (they stay open
    forever) so a second simulation in the same trace cannot close the
    first one's entities. *)

val spans : t -> span list
(** In id (creation) order. *)

val timer_latency : t -> Hdr.t
(** Schedule-to-fire latency of fired timers, in microseconds. *)

val packet_latency : t -> Hdr.t
(** Enqueue-to-rx latency of delivered packets, in microseconds. *)

val timers_total : t -> int
val timers_fired : t -> int
val timers_cancelled : t -> int

val timers_open : t -> int
(** Scheduled but neither fired nor cancelled within the trace. *)

val packets_total : t -> int
val packets_delivered : t -> int

val packets_open : t -> int
(** Enqueued but not yet handed to the stack within the trace. *)
