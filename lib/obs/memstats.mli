(** Memory observatory: GC telemetry and a live-word census attributed
    to the interned {!Profile} category tree.

    Symmetric with the cycle profiler: where {!Profile} answers "where
    did the nanoseconds go", this module answers "where do the words
    live".  Subsystems register pull-style word providers (usually an
    analytic [words] accessor — store backends, the rate-clock pool,
    obs itself) under a category path rooted at ["mem"]; the census
    samples every provider at report time.

    Nothing here touches a hot path, emits a trace event, or writes to
    {!Metrics.default}, so determinism digests, tables and stats JSON
    stay byte-identical whether the observatory is consulted or not.
    GC probes live in a dedicated registry because GC word counts are
    not jobs-invariant.

    Registration and sampling are main-domain-only (the same
    single-domain contract as the Profile registry): record retention
    notes after a parallel fan-out returns, never inside a
    [Runner.map]/[map_sim] job. *)

val registry : Metrics.t
(** The observatory's own metrics registry: [gc.minor_words],
    [gc.major_words], [gc.promoted_words], [gc.heap_words],
    [gc.live_words], [gc.compactions], [gc.minor_collections],
    [gc.major_collections], all pull-style probes. *)

val live_words : unit -> int
(** Exact words live on the major heap ([Gc.stat] — walks the heap;
    report-time cost). *)

val to_prometheus : unit -> string
(** Prometheus text exposition of {!registry}. *)

val dump : unit -> string
(** Human-readable table of {!registry}. *)

(** {1 Census sources} *)

val register : path:string list -> (unit -> int) -> unit
(** [register ~path words] registers a live-word provider under
    [["mem"] @ path] in the category registry.  Re-registering a path
    replaces the provider, keeping its census position. *)

val note : path:string list -> int -> unit
(** One-shot retention note: a constant snapshot of a measurement taken
    earlier (the memory may have been freed since), marked as such in
    the census and excluded from the conservation invariant.  The way
    to record a measurement taken inside a parallel job — compute the
    words in the job, return them with the result, and [note] them from
    the main domain afterwards. *)

val reset_census : unit -> unit

val census : unit -> (int * string * int) list
(** [(registry id, full path, words)] per source, registration order
    (deterministic), providers sampled now. *)

val attributed_words : unit -> int
(** Sum of all providers (live and notes), sampled now. *)

val live_attributed_words : unit -> int
(** Sum of the live ({!register}ed) providers only. *)

val conservation_ok : unit -> bool
(** Live attributed words [<=] GC live words.  A violation means a
    double-counted or stale provider.  Notes are excluded: they
    describe memory measured at some earlier point. *)

(** {1 GC sample track}

    A bounded ring (64 entries, oldest evicted) of labelled GC
    snapshots taken at phase boundaries — constant memory for
    arbitrarily long runs. *)

type sample = {
  sm_label : string;
  sm_minor_words : float;
  sm_promoted_words : float;
  sm_major_words : float;
  sm_heap_words : int;
  sm_compactions : int;
}

val sample : label:string -> unit
val samples : unit -> sample list
val evicted_samples : unit -> int
val reset_samples : unit -> unit

(** {1 Renderers} *)

val tree_table : unit -> string
(** Indented live-word tree over the ["mem"] subtree, with per-node
    share of the attributed total. *)

val retention_table : unit -> string
(** Per-source words, share of GC live words, attributed total and the
    conservation verdict. *)

val samples_table : unit -> string

val report : unit -> string
(** {!retention_table}, {!tree_table}, {!samples_table} and the GC
    probe dump, concatenated. *)

val to_json : unit -> string
(** JSON object: census sources, attributed/live words, conservation
    verdict and GC counters.  Embedded by [softtimers-cli mem --json]
    and the bench harnesses' [mem] sections. *)
