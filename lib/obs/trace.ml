type event =
  | Trigger of string
  | Soft_sched of { id : int; due : Time_ns.t }
  | Soft_fire of { id : int; due : Time_ns.t; delay : Time_ns.span }
  | Soft_cancel of { id : int; due : Time_ns.t }
  | Soft_check of { src : string; scanned : int; fired : int }
  | Cpu_run of { cpu : int; klass : int; dur : Time_ns.span }
  | Irq of { line : string; cpu : int; dur : Time_ns.span }
  | Irq_raised of { line : string }
  | Irq_lost of { line : string }
  | Cpu_busy of { cpu : int }
  | Cpu_idle of { cpu : int }
  | Pkt_enqueue of { nic : string; qlen : int }
  | Pkt_tx of { nic : string }
  | Pkt_rx of { nic : string; batch : int }
  | Pkt_drop of { nic : string }
  | Poll of { found : int }
  | Rbc_send
  | Mark of string

type record = { at : Time_ns.t; ev : event }

type t = {
  buf : record array;  (* ring; slot [head] is the oldest record *)
  mutable head : int;
  mutable len : int;
  mutable dropped : int;
}

let dummy = { at = Time_ns.zero; ev = Mark "" }

let create ?(capacity = 65536) () =
  if capacity <= 0 then invalid_arg "Trace.create: capacity must be positive";
  { buf = Array.make capacity dummy; head = 0; len = 0; dropped = 0 }

(* The installed sink.  Emitters read this once; [None] is the disabled
   fast path.  Both the sink and the tap are domain-local: a freshly
   spawned domain starts with neither, so parallel experiment workers
   (lib/parallel) never write into a ring installed by the main domain
   — each worker captures into its own ring, which the runner then
   {!absorb}s into the parent's in deterministic job order. *)
let sink : t option ref Domain.DLS.key = Domain.DLS.new_key (fun () -> ref None)

(* A synchronous tap (the runtime sanitizer, lib/check): sees every
   emitted event whether or not a ring buffer is installed. *)
let tap : (at:Time_ns.t -> event -> unit) option ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref None)

let install t = Domain.DLS.get sink := Some t
let uninstall () = Domain.DLS.get sink := None
let installed () = !(Domain.DLS.get sink)
let enabled () = !(Domain.DLS.get sink) <> None
let set_tap f = Domain.DLS.get tap := f
let tap_installed () = Option.is_some !(Domain.DLS.get tap)

let capacity t = Array.length t.buf
let length t = t.len
let dropped t = t.dropped
let total t = t.len + t.dropped

let clear t =
  t.head <- 0;
  t.len <- 0;
  t.dropped <- 0

(* Ring overflow is easy to miss (the trace still looks complete); the
   metric makes it visible in every metrics dump, and the exporters add
   a warning banner keyed off [dropped t]. *)
let m_dropped = Metrics.dcounter Metrics.default "trace.dropped"

let push t r =
  let cap = Array.length t.buf in
  if t.len = cap then begin
    (* Full: overwrite the oldest record. *)
    t.buf.(t.head) <- r;
    t.head <- (t.head + 1) mod cap;
    t.dropped <- t.dropped + 1;
    Metrics.dincr m_dropped
  end
  else begin
    t.buf.((t.head + t.len) mod cap) <- r;
    t.len <- t.len + 1
  end

let iter t f =
  let cap = Array.length t.buf in
  for i = 0 to t.len - 1 do
    f t.buf.((t.head + i) mod cap)
  done

let to_list t =
  let acc = ref [] in
  iter t (fun r -> acc := r :: !acc);
  List.rev !acc

(* Emitters.  Each one checks for consumers before constructing the
   record, so a disabled trace costs two loads and a branch. *)

let[@inline] armed () =
  Option.is_some !(Domain.DLS.get sink) || Option.is_some !(Domain.DLS.get tap)

let emit ~at ev =
  (match !(Domain.DLS.get tap) with None -> () | Some f -> f ~at ev);
  match !(Domain.DLS.get sink) with None -> () | Some t -> push t { at; ev }

let trigger ~at kind = if armed () then emit ~at (Trigger kind)
let soft_sched ~at ~id ~due = if armed () then emit ~at (Soft_sched { id; due })

let soft_fire ~at ~id ~due =
  if armed () then emit ~at (Soft_fire { id; due; delay = Time_ns.(at - due) })

let soft_cancel ~at ~id ~due = if armed () then emit ~at (Soft_cancel { id; due })

let soft_check ~at ~src ~scanned ~fired =
  if armed () then emit ~at (Soft_check { src; scanned; fired })

let cpu_run ~at ~cpu ~klass ~dur =
  if armed () then emit ~at (Cpu_run { cpu; klass; dur })
let irq ~at ~line ~cpu ~dur = if armed () then emit ~at (Irq { line; cpu; dur })
let irq_raised ~at ~line = if armed () then emit ~at (Irq_raised { line })
let irq_lost ~at ~line = if armed () then emit ~at (Irq_lost { line })
let cpu_busy ~at ~cpu = if armed () then emit ~at (Cpu_busy { cpu })
let cpu_idle ~at ~cpu = if armed () then emit ~at (Cpu_idle { cpu })
let pkt_enqueue ~at ~nic ~qlen = if armed () then emit ~at (Pkt_enqueue { nic; qlen })
let pkt_tx ~at ~nic = if armed () then emit ~at (Pkt_tx { nic })
let pkt_rx ~at ~nic ~batch = if armed () then emit ~at (Pkt_rx { nic; batch })
let pkt_drop ~at ~nic = if armed () then emit ~at (Pkt_drop { nic })
let poll ~at ~found = if armed () then emit ~at (Poll { found })
let rbc_send ~at = if armed () then emit ~at Rbc_send
let mark ~at s = if armed () then emit ~at (Mark s)

let sim_start_mark = "sim.start"
let sim_start ~at = mark ~at sim_start_mark

(* Replay a worker ring into this domain's consumers, oldest first,
   through [emit] so the tap and the installed ring both see the
   records; then account the worker's own overflow so [dropped]/
   [total] — and the digest that folds them — match what one shared
   sequential ring would have reported. *)
let absorb src =
  iter src (fun r -> emit ~at:r.at r.ev);
  let d = dropped src in
  if d > 0 then
    match !(Domain.DLS.get sink) with
    | None -> ()
    | Some dst -> dst.dropped <- dst.dropped + d
