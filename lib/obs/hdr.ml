(* Log-linear bucketed histogram (HdrHistogram-style) with bounded
   relative error, O(1) record and exact lossless merge.

   Values are quantized to integer multiples of [lowest] (the lowest
   discernible value).  Quantized values u below 2^k land in a linear
   region of unit-wide buckets (exact); above it each octave
   [2^e, 2^(e+1)) is split into 2^(k-1) equal sub-buckets, so the bucket
   width relative to its lower edge is 2^(1-k) and a midpoint
   representative is within 2^-k of any member — the configured relative
   error bound.  The bucket index is pure integer bit math (no libm), so
   indexing is deterministic across platforms and cheap enough for
   always-on hot paths.

   Two histograms with the same (lowest, k) have identical bucket
   boundaries, so merging is a bucket-wise sum — recording streams A
   then B yields byte-identical counts to merging separate recordings
   of A and B. *)

(* Running moments live in a flat float array rather than mutable
   record fields: float arrays are unboxed, so [record] updates them in
   place, whereas a float field of this mixed record would be re-boxed
   on every store (one minor allocation per sample — lint ALLOC003). *)
let m_sum = 0
let m_sum_sq = 1  (* of squared raw values: stddev stays exact *)
let m_min = 2
let m_max = 3

type t = {
  lowest : float;  (* value of one quantization unit *)
  sub_bits : int;  (* k: linear region [0, 2^k); 2^(k-1) sub-buckets/octave *)
  rel_error : float;  (* 2^-k, <= the requested bound *)
  mutable counts : int array;
  mutable total : int;
  moments : float array;  (* indexed by [m_sum] .. [m_max] *)
}

let create ?(rel_error = 0.01) ?(lowest = 1e-3) () =
  if not (rel_error > 0.0 && rel_error <= 0.5) then
    invalid_arg "Hdr.create: rel_error must be in (0, 0.5]";
  if not (lowest > 0.0) then invalid_arg "Hdr.create: lowest must be positive";
  (* Smallest k >= 1 with 2^-k <= rel_error (capped: k=20 is 1e-6). *)
  let k = ref 1 in
  while !k < 20 && 1.0 /. float_of_int (1 lsl !k) > rel_error do
    incr k
  done;
  {
    lowest;
    sub_bits = !k;
    rel_error = 1.0 /. float_of_int (1 lsl !k);
    counts = Array.make (1 lsl !k) 0;
    total = 0;
    moments = [| 0.0; 0.0; infinity; neg_infinity |];
  }

let rel_error t = t.rel_error
let lowest t = t.lowest
let count t = t.total
let sum t = t.moments.(m_sum)
let mean t = if t.total = 0 then nan else t.moments.(m_sum) /. float_of_int t.total

(* Population stddev from the running moments — exact (up to float
   rounding), not bucket-quantized. *)
let stddev t =
  if t.total = 0 then nan
  else begin
    let n = float_of_int t.total in
    let m = t.moments.(m_sum) /. n in
    Float.sqrt (Float.max 0.0 ((t.moments.(m_sum_sq) /. n) -. (m *. m)))
  end
let min t = if t.total = 0 then nan else t.moments.(m_min)
let max t = if t.total = 0 then nan else t.moments.(m_max)
let bucket_count t = Array.length t.counts

(* Position of the most significant set bit of [u] (u > 0). *)
let[@inline] msb u =
  let e = ref 0 and u = ref u in
  if !u >= 1 lsl 32 then begin e := !e + 32; u := !u lsr 32 end;
  if !u >= 1 lsl 16 then begin e := !e + 16; u := !u lsr 16 end;
  if !u >= 1 lsl 8 then begin e := !e + 8; u := !u lsr 8 end;
  if !u >= 1 lsl 4 then begin e := !e + 4; u := !u lsr 4 end;
  if !u >= 1 lsl 2 then begin e := !e + 2; u := !u lsr 2 end;
  if !u >= 2 then incr e;
  !e

let[@inline] index t u =
  let k = t.sub_bits in
  if u < 1 lsl k then u
  else begin
    let e = msb u in
    let pos = (u - (1 lsl e)) lsr (e - k + 1) in
    (1 lsl k) + (((e - k) lsl (k - 1)) + pos)
  end

(* Quantized-unit bounds [lo, hi) of bucket [i]. *)
let bucket_bounds t i =
  let k = t.sub_bits in
  if i < 1 lsl k then (i, i + 1)
  else begin
    let j = i - (1 lsl k) in
    let o = j lsr (k - 1) in
    let pos = j land ((1 lsl (k - 1)) - 1) in
    let w = 1 lsl (o + 1) in
    let lo = (1 lsl (k + o)) + (pos * w) in
    (lo, lo + w)
  end

(* The representative value reported for members of bucket [i].  Linear
   buckets hold exactly one quantized value, so they are exact; log
   buckets report their midpoint (within rel_error of any member). *)
let representative t i =
  let lo, hi = bucket_bounds t i in
  if i < 1 lsl t.sub_bits then float_of_int lo *. t.lowest
  else float_of_int (lo + hi) /. 2.0 *. t.lowest

let grow t needed =
  let cap = Array.length t.counts in
  let ncap = Int.max needed (2 * cap) in
  let grown = Array.make ncap 0 in
  Array.blit t.counts 0 grown 0 cap;
  t.counts <- grown

(* Quantized values are capped so bucket indexing never overflows; at
   the default lowest=1e-3 the cap sits beyond 4.6e15, far outside any
   simulated duration. *)
let u_cap = (1 lsl 62) - 1

let[@hot] record t x =
  let u =
    if x <= 0.0 then 0
    else begin
      let q = (x /. t.lowest) +. 0.5 in
      if q >= float_of_int u_cap then u_cap else int_of_float q
    end
  in
  let i = index t u in
  if i >= Array.length t.counts then grow t (i + 1);
  t.counts.(i) <- t.counts.(i) + 1;
  t.total <- t.total + 1;
  let m = t.moments in
  m.(m_sum) <- m.(m_sum) +. x;
  m.(m_sum_sq) <- m.(m_sum_sq) +. (x *. x);
  if x < m.(m_min) then m.(m_min) <- x;
  if x > m.(m_max) then m.(m_max) <- x

let clear t =
  Array.fill t.counts 0 (Array.length t.counts) 0;
  t.total <- 0;
  t.moments.(m_sum) <- 0.0;
  t.moments.(m_sum_sq) <- 0.0;
  t.moments.(m_min) <- infinity;
  t.moments.(m_max) <- neg_infinity

(* Nearest-rank quantile: the representative of the bucket holding the
   ceil(q*n)-th smallest observation, clamped into [min, max] (the
   clamp only ever moves the value closer to the true order statistic,
   so the rel_error bound is preserved). *)
let quantile t q =
  if q < 0.0 || q > 1.0 then invalid_arg "Hdr.quantile: q out of [0,1]";
  if t.total = 0 then nan
  else begin
    let rank = Stdlib.max 1 (int_of_float (Float.ceil (q *. float_of_int t.total))) in
    let n = Array.length t.counts in
    let acc = ref 0 and found = ref (n - 1) and i = ref 0 in
    while !i < n && !acc < rank do
      acc := !acc + t.counts.(!i);
      if !acc >= rank then found := !i;
      incr i
    done;
    Float.min t.moments.(m_max) (Float.max t.moments.(m_min) (representative t !found))
  end

let percentile t p =
  if p < 0.0 || p > 100.0 then invalid_arg "Hdr.percentile: p out of [0,100]";
  quantile t (p /. 100.0)

let cdf_points t =
  if t.total = 0 then []
  else begin
    let pts = ref [] and acc = ref 0 in
    for i = 0 to Array.length t.counts - 1 do
      if t.counts.(i) > 0 then begin
        acc := !acc + t.counts.(i);
        let _, hi = bucket_bounds t i in
        pts :=
          (float_of_int hi *. t.lowest, float_of_int !acc /. float_of_int t.total) :: !pts
      end
    done;
    List.rev !pts
  end

let compatible a b =
  a.sub_bits = b.sub_bits && Float.equal a.lowest b.lowest

let merge a b =
  if not (compatible a b) then
    invalid_arg "Hdr.merge: histograms have different bucket layouts";
  let m =
    {
      lowest = a.lowest;
      sub_bits = a.sub_bits;
      rel_error = a.rel_error;
      counts = Array.make (Stdlib.max (Array.length a.counts) (Array.length b.counts)) 0;
      total = a.total + b.total;
      moments =
        [|
          a.moments.(m_sum) +. b.moments.(m_sum);
          a.moments.(m_sum_sq) +. b.moments.(m_sum_sq);
          Float.min a.moments.(m_min) b.moments.(m_min);
          Float.max a.moments.(m_max) b.moments.(m_max);
        |];
    }
  in
  Array.iteri (fun i c -> m.counts.(i) <- c) a.counts;
  Array.iteri (fun i c -> m.counts.(i) <- m.counts.(i) + c) b.counts;
  m
