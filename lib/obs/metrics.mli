(** Named metrics registry.

    A registry maps dotted names ("softtimer.fired", "nic.rx_packets")
    to metric instruments.  Subsystems register their instruments at
    module initialisation into {!default} (or into a registry of their
    own) and update them unconditionally: every instrument kind is
    cheap enough for the simulator's hot paths.

    Four instrument kinds:
    - {e counters}: monotonically increasing ints ({!counter}, {!incr});
    - {e gauges}: last-written floats ({!gauge}, {!set_gauge});
    - {e histograms}: constant-memory streaming distributions backed by
      {!Hdr} — O(1) record with bounded relative error, so hot paths
      record into them unconditionally (no sampling gate);
    - {e probes}: pull-style closures evaluated at {!dump} time, for
      values a subsystem already maintains itself.

    Instruments are get-or-create: asking twice for the same name (with
    the same kind) yields the same instrument, so module-level
    registration composes across libraries. *)

type t
(** A registry. *)

type counter
type gauge

val create : unit -> t

val default : t
(** The process-wide registry every built-in subsystem registers into. *)

val counter : t -> string -> counter
(** Get or create the counter [name].
    @raise Invalid_argument if [name] exists with a different kind. *)

val incr : ?by:int -> counter -> unit
val counter_value : counter -> int

val gauge : t -> string -> gauge
(** Get or create the gauge [name]. *)

val set_gauge : gauge -> float -> unit
val gauge_value : gauge -> float
(** [nan] until first set. *)

val hdr : t -> string -> Hdr.t
(** Get or create the streaming histogram [name] (default {!Hdr.create}
    parameters: 1% relative error, [1e-3] lowest discernible value).
    Observe with {!Hdr.record}: O(1) and constant-memory, safe to call
    unconditionally on hot paths. *)

val probe : t -> string -> (unit -> float) -> unit
(** Register a pull-style metric.  Re-registering a probe name replaces
    the closure (a fresh simulation replaces a dead one's probes). *)

(** {2 Domain-local instruments}

    Counters and histograms whose values live in domain-local storage:
    a handle is a dense integer id, the registry remembers only the id,
    and each domain accumulates into a private array pair.  Updating
    one from a parallel worker therefore never races with the parent
    or with sibling workers; the runner (lib/parallel) swaps a fresh
    context in around each job and {!Local.absorb}s it back in job
    order, so totals are deterministic at any [--jobs].

    Register at module initialisation (before any domain fan-out):
    the id space is fixed once workers exist.  {!iter}, {!dump},
    {!to_prometheus} and {!reset} act on the {e calling} domain's
    values. *)

type dcounter
type dhistogram

val dcounter : t -> string -> dcounter
(** Get or create the domain-local counter [name].
    @raise Invalid_argument if [name] exists with a different kind. *)

val dincr : ?by:int -> dcounter -> unit
val dcounter_value : dcounter -> int
(** The calling domain's accumulated count. *)

val dhistogram : t -> string -> dhistogram
(** Get or create the domain-local histogram [name] (default
    {!Hdr.create} parameters). *)

val drecord : dhistogram -> float -> unit
(** O(1) record into the calling domain's histogram. *)

val dhistogram_hdr : dhistogram -> Hdr.t
(** The calling domain's backing {!Hdr.t} (created on first access). *)

module Local : sig
  type ctx
  (** One domain's accumulated domain-local instrument values. *)

  val swap_fresh : unit -> ctx
  (** Install a fresh, all-zero context in the calling domain and
      return the previously installed one.  Pair with {!swap} to
      restore, and hand the fresh context to the parent for
      {!absorb}. *)

  val swap : ctx -> ctx
  (** Install [ctx]; returns the previously installed context. *)

  val absorb : ctx -> unit
  (** Merge [ctx] into the calling domain's context: counters add,
      histograms bucket-wise sum. *)
end

val reset : t -> unit
(** Zero all counters, clear gauges and histograms.  Probes are kept
    (re-registering the same name still replaces): they are pull-style
    views into live state, and dropping them on reset silently lost
    wheel-residency metrics for the second run in one process. *)

(** {2 Reading} *)

type value =
  | Counter of int
  | Gauge of float
  | Histogram of Hdr.t
  | Probe of float  (** the closure's value at read time *)

val iter : t -> (string -> value -> unit) -> unit
(** In ascending name order. *)

val dump : t -> string
(** Human-readable table of every instrument, in name order; histograms
    show count/mean/p50/p99/max. *)

val to_prometheus : t -> string
(** Prometheus text exposition (format 0.0.4): counters as [counter],
    gauges and probes as [gauge] (unset gauges skipped), histograms as
    [summary] with p50/p90/p99/p100 quantiles plus [_sum]/[_count].
    Dots in metric names become underscores.  Deterministic: name-sorted
    and free of timestamps. *)
