(** Named metrics registry.

    A registry maps dotted names ("softtimer.fired", "nic.rx_packets")
    to metric instruments.  Subsystems register their instruments at
    module initialisation into {!default} (or into a registry of their
    own) and update them unconditionally: every instrument kind is
    cheap enough for the simulator's hot paths.

    Four instrument kinds:
    - {e counters}: monotonically increasing ints ({!counter}, {!incr});
    - {e gauges}: last-written floats ({!gauge}, {!set_gauge});
    - {e histograms}: constant-memory streaming distributions backed by
      {!Hdr} — O(1) record with bounded relative error, so hot paths
      record into them unconditionally (no sampling gate);
    - {e probes}: pull-style closures evaluated at {!dump} time, for
      values a subsystem already maintains itself.

    Instruments are get-or-create: asking twice for the same name (with
    the same kind) yields the same instrument, so module-level
    registration composes across libraries. *)

type t
(** A registry. *)

type counter
type gauge

val create : unit -> t

val default : t
(** The process-wide registry every built-in subsystem registers into. *)

val counter : t -> string -> counter
(** Get or create the counter [name].
    @raise Invalid_argument if [name] exists with a different kind. *)

val incr : ?by:int -> counter -> unit
val counter_value : counter -> int

val gauge : t -> string -> gauge
(** Get or create the gauge [name]. *)

val set_gauge : gauge -> float -> unit
val gauge_value : gauge -> float
(** [nan] until first set. *)

val hdr : t -> string -> Hdr.t
(** Get or create the streaming histogram [name] (default {!Hdr.create}
    parameters: 1% relative error, [1e-3] lowest discernible value).
    Observe with {!Hdr.record}: O(1) and constant-memory, safe to call
    unconditionally on hot paths. *)

val probe : t -> string -> (unit -> float) -> unit
(** Register a pull-style metric.  Re-registering a probe name replaces
    the closure (a fresh simulation replaces a dead one's probes). *)

val reset : t -> unit
(** Zero all counters, clear gauges and histograms.  Probes are kept
    (re-registering the same name still replaces): they are pull-style
    views into live state, and dropping them on reset silently lost
    wheel-residency metrics for the second run in one process. *)

(** {2 Reading} *)

type value =
  | Counter of int
  | Gauge of float
  | Histogram of Hdr.t
  | Probe of float  (** the closure's value at read time *)

val iter : t -> (string -> value -> unit) -> unit
(** In ascending name order. *)

val dump : t -> string
(** Human-readable table of every instrument, in name order; histograms
    show count/mean/p50/p99/max. *)

val to_prometheus : t -> string
(** Prometheus text exposition (format 0.0.4): counters as [counter],
    gauges and probes as [gauge] (unset gauges skipped), histograms as
    [summary] with p50/p90/p99/p100 quantiles plus [_sum]/[_count].
    Dots in metric names become underscores.  Deterministic: name-sorted
    and free of timestamps. *)
