(** Named metrics registry.

    A registry maps dotted names ("softtimer.fired", "nic.rx_packets")
    to metric instruments.  Subsystems register their instruments at
    module initialisation into {!default} (or into a registry of their
    own) and update them unconditionally: a counter bump is one mutable
    increment, cheap enough for every hot path in the simulator.

    Four instrument kinds:
    - {e counters}: monotonically increasing ints ({!counter}, {!incr});
    - {e gauges}: last-written floats ({!gauge}, {!set_gauge});
    - {e histograms}: full-sample distributions backed by
      {!Stats.Sample} — these allocate per observation, so subsystems
      gate them behind {!sampling};
    - {e probes}: pull-style closures evaluated at {!dump} time, for
      values a subsystem already maintains itself.

    Instruments are get-or-create: asking twice for the same name (with
    the same kind) yields the same instrument, so module-level
    registration composes across libraries. *)

type t
(** A registry. *)

type counter
type gauge

val create : unit -> t

val default : t
(** The process-wide registry every built-in subsystem registers into. *)

val counter : t -> string -> counter
(** Get or create the counter [name].
    @raise Invalid_argument if [name] exists with a different kind. *)

val incr : ?by:int -> counter -> unit
val counter_value : counter -> int

val gauge : t -> string -> gauge
(** Get or create the gauge [name]. *)

val set_gauge : gauge -> float -> unit
val gauge_value : gauge -> float
(** [nan] until first set. *)

val histogram : t -> string -> Stats.Sample.t
(** Get or create the histogram [name].  Observe with
    {!Stats.Sample.add}; callers on hot paths should first check
    {!sampling}. *)

val probe : t -> string -> (unit -> float) -> unit
(** Register a pull-style metric.  Re-registering a probe name replaces
    the closure (a fresh simulation replaces a dead one's probes). *)

val sampling : unit -> bool
(** Whether histogram observation is requested.  Off by default:
    histograms retain every observation, which is unbounded memory on
    long runs. *)

val set_sampling : bool -> unit

val reset : t -> unit
(** Zero all counters, clear gauges and histograms, drop probes. *)

(** {2 Reading} *)

type value =
  | Counter of int
  | Gauge of float
  | Histogram of Stats.Sample.t
  | Probe of float  (** the closure's value at read time *)

val iter : t -> (string -> value -> unit) -> unit
(** In ascending name order. *)

val dump : t -> string
(** Human-readable table of every instrument, in name order; histograms
    show count/mean/p50/p99/max. *)
