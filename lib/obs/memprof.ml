(* Statistical allocation profiler over [Gc.Memprof], attributing
   sampled allocations and retained words to the interned Profile
   category tree under ["mem"; "alloc"; ...].

   Engine availability is a runtime property: statmemprof was removed
   from the multicore runtime in OCaml 5.0 and restored in 5.3, so on
   5.0-5.2 [Gc.Memprof.start] compiles but raises [Failure].  Every
   entry point here is gated on a one-shot probe; when the engine is
   unavailable the profiler degrades to an empty site table with an
   explicit status marker, and the census/words half of the memory
   observatory (Memstats) carries the report.

   Attribution is by context, not callstack: the caller brackets a
   phase with [with_context] and sampled allocations land on the
   current context's site.  Decoding backtrace slots would tie output
   to build layout; context paths are stable and deterministic.

   Opt-in (the [--mem] flag) and off the hot path: when not [running],
   the only residue is the [Gc.Memprof] tracker closures never being
   installed.  No trace events are emitted, so determinism digests and
   tables are byte-identical with the profiler on or off. *)

(* Lint MEM001 confines [Gc.Memprof] to this module: the tracker
   callbacks run at arbitrary allocation points, so any second user
   would silently fight over the single runtime engine. *)

type site = {
  st_id : int;  (* Profile registry id *)
  st_full : string;
  mutable st_allocs : int;  (* sampled allocation events *)
  mutable st_samples : int;  (* Poisson samples (>= allocs) *)
  mutable st_alloc_words : int;  (* words of sampled blocks, cumulative *)
  mutable st_live_words : int;  (* words of sampled blocks still live *)
}

(* All state below is main-domain-only by the same contract as the
   Profile registry; tracker callbacks run on the allocating domain,
   which is the main domain for every surface that enables [--mem]. *)
let sites : site list ref = ref [] [@@lint.allow "RACE002"]
let site_by_id : (int, site) Hashtbl.t = Hashtbl.create 16 [@@lint.allow "RACE002"]

let default_context = [ "unattributed" ]

let site_of path =
  let id = Profile.intern_id ([ "mem"; "alloc" ] @ path) in
  match Hashtbl.find_opt site_by_id id with
  | Some s -> s
  | None ->
    let s =
      {
        st_id = id;
        st_full = Profile.id_full id;
        st_allocs = 0;
        st_samples = 0;
        st_alloc_words = 0;
        st_live_words = 0;
      }
    in
    Hashtbl.replace site_by_id id s;
    sites := !sites @ [ s ];
    s

let context : site ref = ref (site_of default_context) [@@lint.allow "RACE002"]
let set_context path = context := site_of path

let with_context path f =
  let old = !context in
  context := site_of path;
  Fun.protect ~finally:(fun () -> context := old) f

(* ---- engine gate --------------------------------------------------- *)

let unavailable_reason = ref None [@@lint.allow "RACE002"]
let probed = ref false [@@lint.allow "RACE002"]

let probe () =
  if not !probed then begin
    probed := true;
    (try
       Gc.Memprof.start ~sampling_rate:1e-9 Gc.Memprof.null_tracker;
       Gc.Memprof.stop ()
     with Failure msg -> unavailable_reason := Some msg)
  end

let available () =
  probe ();
  !unavailable_reason = None

let status () =
  probe ();
  match !unavailable_reason with
  | None -> "ok"
  | Some msg -> "engine unavailable: " ^ msg

(* ---- tracking ------------------------------------------------------ *)

type tracked = { tr_site : site; tr_words : int }

let running_flag = ref false [@@lint.allow "RACE002"]
let rate = ref 0.0 [@@lint.allow "RACE002"]

let track (a : Gc.Memprof.allocation) =
  let s = !context in
  s.st_allocs <- s.st_allocs + 1;
  s.st_samples <- s.st_samples + a.Gc.Memprof.n_samples;
  s.st_alloc_words <- s.st_alloc_words + a.Gc.Memprof.size;
  s.st_live_words <- s.st_live_words + a.Gc.Memprof.size;
  { tr_site = s; tr_words = a.Gc.Memprof.size }

let untrack t = t.tr_site.st_live_words <- t.tr_site.st_live_words - t.tr_words

let tracker : (tracked, tracked) Gc.Memprof.tracker =
  {
    Gc.Memprof.alloc_minor = (fun a -> Some (track a));
    alloc_major = (fun a -> Some (track a));
    promote = (fun t -> Some t);
    dealloc_minor = untrack;
    dealloc_major = untrack;
  }

let default_sampling_rate = 1e-3

let start ?(sampling_rate = default_sampling_rate) () =
  probe ();
  match !unavailable_reason with
  | Some msg -> Error ("engine unavailable: " ^ msg)
  | None ->
    if !running_flag then Error "already running"
    else begin
      rate := sampling_rate;
      Gc.Memprof.start ~sampling_rate ~callstack_size:0 tracker;
      running_flag := true;
      Ok ()
    end

let stop () =
  if !running_flag then begin
    Gc.Memprof.stop ();
    running_flag := false
  end

let running () = !running_flag
let sampling_rate () = !rate

let reset () =
  sites := [];
  Hashtbl.reset site_by_id;
  context := site_of default_context

(* ---- readers ------------------------------------------------------- *)

type row = {
  r_full : string;
  r_allocs : int;
  r_samples : int;
  r_alloc_words : int;
  r_live_words : int;
}

let rows () =
  List.filter_map
    (fun s ->
      if s.st_allocs = 0 then None
      else
        Some
          {
            r_full = s.st_full;
            r_allocs = s.st_allocs;
            r_samples = s.st_samples;
            r_alloc_words = s.st_alloc_words;
            r_live_words = s.st_live_words;
          })
    !sites

(* Largest cumulative sampled allocation first; ties by path so the
   order is deterministic. *)
let top ~n =
  let sorted =
    List.sort
      (fun a b ->
        let c = Int.compare b.r_alloc_words a.r_alloc_words in
        if c <> 0 then c else String.compare a.r_full b.r_full)
      (rows ())
  in
  List.filteri (fun i _ -> i < n) sorted

let table ~n =
  let buf = Buffer.create 512 in
  Buffer.add_string buf
    (Printf.sprintf "allocation sites (top %d by sampled words, rate %g) — %s\n" n
       !rate (status ()));
  Buffer.add_string buf
    (Printf.sprintf "  %-44s %8s %10s %12s %12s\n" "site" "allocs" "samples"
       "alloc_words" "live_words");
  (match top ~n with
  | [] -> Buffer.add_string buf "  (no sampled allocations)\n"
  | rows ->
    List.iter
      (fun r ->
        Buffer.add_string buf
          (Printf.sprintf "  %-44s %8d %10d %12d %12d\n" r.r_full r.r_allocs
             r.r_samples r.r_alloc_words r.r_live_words))
      rows);
  Buffer.contents buf

let to_json ~n =
  let buf = Buffer.create 256 in
  Buffer.add_string buf
    (Printf.sprintf "{\"status\":%S,\"sampling_rate\":%g,\"sites\":[" (status ())
       !rate);
  List.iteri
    (fun i r ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf
        (Printf.sprintf
           "{\"path\":%S,\"allocs\":%d,\"samples\":%d,\"alloc_words\":%d,\
            \"live_words\":%d}"
           r.r_full r.r_allocs r.r_samples r.r_alloc_words r.r_live_words))
    (top ~n);
  Buffer.add_string buf "]}";
  Buffer.contents buf
