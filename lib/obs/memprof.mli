(** Statistical allocation profiler over [Gc.Memprof], attributing
    sampled allocations and retained words to the interned {!Profile}
    category tree under [["mem"; "alloc"; ...]].

    {b Engine availability is a runtime property}: statmemprof was
    removed from the multicore runtime in OCaml 5.0 and restored in
    5.3, so on 5.0–5.2 [Gc.Memprof.start] compiles but raises.  Every
    entry point is gated on a one-shot probe ({!available}/{!status});
    when the engine is unavailable {!start} returns [Error] and the
    site table stays empty with an explicit status marker — the
    census/words half of the observatory ({!Memstats}) carries the
    report.

    Attribution is by {e context}, not callstack: bracket a phase with
    {!with_context} and sampled allocations land on the current
    context's site.  Context paths are stable and deterministic, unlike
    backtrace slot names.

    Opt-in (the [--mem] flag), main-domain-only, and emits no trace
    events: determinism digests, tables and stats JSON are
    byte-identical with the profiler on or off.

    [Gc.Memprof] use is confined to this module by lint rule MEM001 —
    the tracker callbacks run at arbitrary allocation points, so a
    second user would silently fight over the single runtime engine. *)

val available : unit -> bool
(** Whether the runtime's statmemprof engine works (probed once). *)

val status : unit -> string
(** ["ok"], or ["engine unavailable: <reason>"]. *)

val start : ?sampling_rate:float -> unit -> (unit, string) result
(** Install the tracker ([sampling_rate] defaults to [1e-3] — one
    sample per ~1000 allocated words).  [Error] when the engine is
    unavailable or already running. *)

val stop : unit -> unit
(** Uninstall the tracker; accumulated sites are kept for reporting. *)

val running : unit -> bool
val sampling_rate : unit -> float

val set_context : string list -> unit
(** Route subsequent samples to [["mem"; "alloc"] @ path]. *)

val with_context : string list -> (unit -> 'a) -> 'a
(** Scoped {!set_context}; restores the previous context on exit. *)

val reset : unit -> unit
(** Drop all sites and reset the context. *)

(** {1 Readers} *)

type row = {
  r_full : string;  (** full category path *)
  r_allocs : int;  (** sampled allocation events *)
  r_samples : int;  (** Poisson samples (>= allocs) *)
  r_alloc_words : int;  (** words of sampled blocks, cumulative *)
  r_live_words : int;  (** words of sampled blocks still live *)
}

val rows : unit -> row list
(** Sites with at least one sample, registration order. *)

val top : n:int -> row list
(** Top [n] sites by cumulative sampled words (ties by path). *)

val table : n:int -> string
(** Human-readable top-[n] site table, status marker included. *)

val to_json : n:int -> string
(** JSON object with status, rate and the top-[n] sites. *)
