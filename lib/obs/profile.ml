(* Hierarchical cycle attribution over the simulator's cost model.

   Every unit of CPU time the simulator charges (via [Cpu.charge], the
   single choke point through which all busy time flows) carries an
   attribution value ([attr]) naming a category path such as
   ["interrupt"; "fxp0-rx"; "pollution"].  When a profiler is installed
   the charge is added to a per-CPU cell for that path; when none is
   installed the charge site costs a single load and branch, mirroring
   the [Trace] discipline, so instrumentation can live in hot paths
   permanently.

   Because attribution happens at the same place busy time is
   accumulated, the conservation invariant — the attribution tree total
   equals [Cpu.busy_ns] for every CPU — holds by construction; a qcheck
   property in test/test_profile.ml checks it across random experiments
   and seeds anyway.

   Category paths are interned into a global registry (ids are stable
   within a process run and assigned in deterministic program order), so
   the hot path is an array index plus an int64 add.  [Seq] attributions
   split a single submitted quantum across several categories — e.g. an
   interrupt quantum into save/restore, cache/TLB pollution and handler
   body — and consume their parts in order even when the quantum is
   delivered in several charges due to preemption. *)

(* DET004 note: this module lives in lib/obs, a result-producing scope,
   so it must not use Hashtbl.iter/fold.  The interning table below is
   only ever probed with find_opt/replace; all reporting walks the
   deterministic [reg] array. *)

type info = { name : string; parent : int; full : string }

(* RACE002: the interning registry grows only during module
   initialization and sequential experiment setup ([intern] on toplevel
   bindings); parallel jobs read interned ids but never intern — same
   single-domain contract as [Metrics.default], revisited with the
   planned SMP work (ROADMAP item 2). *)
let reg : info array ref = ref [||] [@@lint.allow "RACE002"]
let reg_n = ref 0 [@@lint.allow "RACE002"]
let index : (string, int) Hashtbl.t = Hashtbl.create 64 [@@lint.allow "RACE002"]

let add_info info =
  let cap = Array.length !reg in
  if !reg_n = cap then begin
    let grown = Array.make (Int.max 16 (2 * cap)) info in
    Array.blit !reg 0 grown 0 !reg_n;
    reg := grown
  end;
  !reg.(!reg_n) <- info;
  incr reg_n;
  !reg_n - 1

(* ';' separates collapsed-stack frames and ' ' separates the frame
   stack from its value, so neither may appear inside a segment. *)
let sanitize seg =
  String.map (fun c -> if c = ';' || c = ' ' || c = '\n' then '_' else c) seg

let intern_path segs =
  if segs = [] then invalid_arg "Profile.intern: empty path";
  let rec go parent full = function
    | [] -> parent
    | seg :: rest ->
      let seg = sanitize seg in
      let full = if String.equal full "" then seg else full ^ ";" ^ seg in
      let id =
        match Hashtbl.find_opt index full with
        | Some id -> id
        | None ->
          let id = add_info { name = seg; parent; full } in
          Hashtbl.replace index full id;
          id
      in
      go id full rest
  in
  go (-1) "" segs

type attr =
  | Leaf of int
  | Seq of seq

and seq = { mutable parts : (int * Time_ns.span) list; tail : attr }

let intern segs = Leaf (intern_path segs)

let seq parts ~tail =
  let parts =
    List.filter_map
      (fun (a, span) ->
        if Int64.compare (Time_ns.to_ns span) 0L <= 0 then None
        else
          match a with
          | Leaf id -> Some (id, span)
          | Seq _ -> invalid_arg "Profile.seq: parts must be interned leaves")
      parts
  in
  Seq { parts; tail }

(* ------------------------------------------------------------------ *)
(* Profiler instances                                                  *)

type cell = { mutable self : Time_ns.span; mutable charges : int }

type dispatch_row = {
  source : string;
  mutable fires : int;
  mutable delay_sum : Time_ns.span;
  mutable delay_max : Time_ns.span;
  delays : Hdr.t;
}

type t = {
  mutable cells : cell array array; (* cpu -> path id -> cell *)
  mutable events : int array; (* path id -> occurrence count *)
  mutable disp : dispatch_row list; (* reverse registration order *)
  mutable ndisp : int;
}

let create () = { cells = [||]; events = [||]; disp = []; ndisp = 0 }

(* The installed profiler is domain-local: each domain of the parallel
   experiment runner (lib/parallel) profiles — or, usually, doesn't —
   independently, and worker simulations can never race on a profiler
   installed by the main domain. *)
let sink : t option ref Domain.DLS.key = Domain.DLS.new_key (fun () -> ref None)
let install p = Domain.DLS.get sink := Some p
let uninstall () = Domain.DLS.get sink := None
let installed () = !(Domain.DLS.get sink)
let enabled () = Option.is_some !(Domain.DLS.get sink)

let cpu_row p cpu =
  if cpu >= Array.length p.cells then begin
    let grown = Array.make (cpu + 1) [||] in
    Array.blit p.cells 0 grown 0 (Array.length p.cells);
    p.cells <- grown
  end;
  let row = p.cells.(cpu) in
  if Array.length row < !reg_n then begin
    let n = max !reg_n (2 * Array.length row) in
    let grown =
      Array.init n (fun i ->
          if i < Array.length row then row.(i) else { self = 0L; charges = 0 })
    in
    p.cells.(cpu) <- grown;
    grown
  end
  else row

let bump p ~cpu id span =
  let row = cpu_row p cpu in
  let c = row.(id) in
  c.self <- Time_ns.(c.self + span);
  c.charges <- c.charges + 1

(* Consume a [Seq]'s parts in order; whatever exceeds the declared parts
   flows to the tail.  A partially-charged quantum (preemption) resumes
   exactly where it left off because the remaining budget is written
   back into the mutable parts list. *)
let rec charge_inner p ~cpu attr span =
  if Int64.compare (Time_ns.to_ns span) 0L > 0 then
    match attr with
    | Leaf id -> bump p ~cpu id span
    | Seq s -> (
      match s.parts with
      | [] -> charge_inner p ~cpu s.tail span
      | (id, avail) :: rest ->
        let used = Time_ns.min avail span in
        bump p ~cpu id used;
        let left = Time_ns.(avail - used) in
        if Int64.compare (Time_ns.to_ns left) 0L <= 0 then s.parts <- rest
        else s.parts <- (id, left) :: rest;
        charge_inner p ~cpu attr Time_ns.(span - used))

let charge attr ~cpu span =
  match !(Domain.DLS.get sink) with None -> () | Some p -> charge_inner p ~cpu attr span

let record_event p id =
  if id >= Array.length p.events then begin
    let grown = Array.make (Int.max !reg_n (2 * Array.length p.events)) 0 in
    Array.blit p.events 0 grown 0 (Array.length p.events);
    p.events <- grown
  end;
  p.events.(id) <- p.events.(id) + 1

let event attr =
  match !(Domain.DLS.get sink) with
  | None -> ()
  | Some p -> ( match attr with Leaf id -> record_event p id | Seq _ -> ())

let dispatch ~source ~delay =
  match !(Domain.DLS.get sink) with
  | None -> ()
  | Some p ->
    let row =
      let rec find = function
        | [] ->
          let row =
            {
              source;
              fires = 0;
              delay_sum = 0L;
              delay_max = 0L;
              delays = Hdr.create ();
            }
          in
          p.disp <- row :: p.disp;
          p.ndisp <- p.ndisp + 1;
          row
        | r :: rest -> if String.equal r.source source then r else find rest
      in
      find p.disp
    in
    let delay = Time_ns.max delay 0L in
    row.fires <- row.fires + 1;
    row.delay_sum <- Time_ns.(row.delay_sum + delay);
    row.delay_max <- Time_ns.max row.delay_max delay;
    Hdr.record row.delays (Time_ns.to_us delay)

(* ------------------------------------------------------------------ *)
(* Readers                                                             *)

let cpu_count p = Array.length p.cells

let attributed_ns p ~cpu =
  if cpu >= Array.length p.cells then 0L
  else
    Array.fold_left (fun acc c -> Time_ns.(acc + c.self)) 0L p.cells.(cpu)

let total_attributed_ns p =
  let total = ref 0L in
  for cpu = 0 to cpu_count p - 1 do
    total := Time_ns.(!total + attributed_ns p ~cpu)
  done;
  !total

let id_of_path segs =
  match segs with
  | [] -> None
  | _ -> Hashtbl.find_opt index (String.concat ";" (List.map sanitize segs))

(* Sum [f cell] for [id] across CPUs; rows may be shorter than reg_n
   when paths were interned after the row last grew. *)
let sum_cells p id f =
  let acc = ref 0L in
  Array.iter
    (fun row -> if id < Array.length row then acc := Int64.add !acc (f row.(id)))
    p.cells;
  !acc

let self_ns p segs =
  match id_of_path segs with
  | None -> 0L
  | Some id -> sum_cells p id (fun c -> c.self)

let charges p segs =
  match id_of_path segs with
  | None -> 0
  | Some id -> Int64.to_int (sum_cells p id (fun c -> Int64.of_int c.charges))

let prefixed full child_full =
  let n = String.length full in
  String.length child_full > n
  && String.equal (String.sub child_full 0 n) full
  && Char.equal child_full.[n] ';'

let subtree_ns p segs =
  match id_of_path segs with
  | None -> 0L
  | Some id ->
    let full = !reg.(id).full in
    let acc = ref (sum_cells p id (fun c -> c.self)) in
    for i = 0 to !reg_n - 1 do
      if prefixed full !reg.(i).full then
        acc := Time_ns.(!acc + sum_cells p i (fun c -> c.self))
    done;
    !acc

let event_count p segs =
  match id_of_path segs with
  | None -> 0
  | Some id -> if id < Array.length p.events then p.events.(id) else 0

let dispatch_rows p =
  List.rev_map (fun r -> (r.source, r.fires)) p.disp

let fired_total p = List.fold_left (fun acc r -> acc + r.fires) 0 p.disp

(* ------------------------------------------------------------------ *)
(* Renderers                                                           *)

let buf_addf buf fmt = Printf.ksprintf (Buffer.add_string buf) fmt

(* Collapsed-stack flamegraph lines: "cpuN;frame;frame <ns>", one line
   per (cpu, leaf-with-self-time), sorted for byte-stable output.
   Feed to inferno/flamegraph.pl/speedscope directly. *)
let to_collapsed p =
  let lines = ref [] in
  for cpu = 0 to cpu_count p - 1 do
    let row = p.cells.(cpu) in
    for id = 0 to min (Array.length row) !reg_n - 1 do
      let c = row.(id) in
      if Int64.compare (Time_ns.to_ns c.self) 0L > 0 then
        lines :=
          Printf.sprintf "cpu%d;%s %Ld" cpu !reg.(id).full (Time_ns.to_ns c.self)
          :: !lines
    done
  done;
  let lines = List.sort String.compare !lines in
  String.concat "" (List.map (fun l -> l ^ "\n") lines)

(* Children lists in registration order (deterministic). *)
let children_of id =
  let kids = ref [] in
  for i = !reg_n - 1 downto 0 do
    if !reg.(i).parent = id then kids := i :: !kids
  done;
  !kids

let roots () = children_of (-1)

let rec node_total p id =
  let self = sum_cells p id (fun c -> c.self) in
  List.fold_left
    (fun acc kid -> Time_ns.(acc + node_total p kid))
    self (children_of id)

let roots_ns p =
  let rows =
    List.filter_map
      (fun id ->
        let total = node_total p id in
        if Time_ns.(total > zero) then Some (!reg.(id).name, total) else None)
      (roots ())
  in
  List.sort
    (fun (na, a) (nb, b) ->
      match Int64.compare b a with 0 -> String.compare na nb | c -> c)
    rows

let to_table p =
  let buf = Buffer.create 4096 in
  let grand = total_attributed_ns p in
  buf_addf buf "Cycle attribution (%d CPU%s, %.1f us attributed total)\n"
    (cpu_count p)
    (if cpu_count p = 1 then "" else "s")
    (Time_ns.to_us grand);
  for cpu = 0 to cpu_count p - 1 do
    buf_addf buf "  cpu%d: %.1f us\n" cpu (Time_ns.to_us (attributed_ns p ~cpu))
  done;
  buf_addf buf "\n%-46s %12s %12s %8s %10s\n" "category" "total_us" "self_us"
    "%total" "charges";
  buf_addf buf "%s\n" (String.make 92 '-');
  let pct ns =
    if Int64.compare grand 0L = 0 then 0.0
    else 100.0 *. Int64.to_float ns /. Int64.to_float grand
  in
  let rec render depth id =
    let total = node_total p id in
    if Int64.compare (Time_ns.to_ns total) 0L > 0 then begin
      let self = sum_cells p id (fun c -> c.self) in
      let nch = Int64.to_int (sum_cells p id (fun c -> Int64.of_int c.charges)) in
      buf_addf buf "%-46s %12.1f %12.1f %7.1f%% %10d\n"
        (String.make (2 * depth) ' ' ^ !reg.(id).name)
        (Time_ns.to_us total) (Time_ns.to_us self) (pct total) nch;
      let kids =
        List.sort
          (fun a b ->
            let wa = node_total p a and wb = node_total p b in
            let c = Int64.compare wb wa in
            if c <> 0 then c else String.compare !reg.(a).name !reg.(b).name)
          (children_of id)
      in
      List.iter (render (depth + 1)) kids
    end
  in
  let top =
    List.sort
      (fun a b ->
        let wa = node_total p a and wb = node_total p b in
        let c = Int64.compare wb wa in
        if c <> 0 then c else String.compare !reg.(a).name !reg.(b).name)
      (roots ())
  in
  List.iter (render 0) top;
  (* Span-less occurrence counters (wheel maintenance, retransmits, ...). *)
  let events = ref [] in
  for id = 0 to min (Array.length p.events) !reg_n - 1 do
    if p.events.(id) > 0 then events := (!reg.(id).full, p.events.(id)) :: !events
  done;
  (match List.sort (fun (a, _) (b, _) -> String.compare a b) !events with
  | [] -> ()
  | evs ->
    buf_addf buf "\nEvent counters\n";
    List.iter (fun (name, n) -> buf_addf buf "  %-44s %10d\n" name n) evs);
  Buffer.contents buf

(* Paper Table 1 / §4.1: which trigger state dispatched each soft-timer
   firing, and at what latency past its deadline. *)
let trigger_table p =
  let buf = Buffer.create 1024 in
  let total = fired_total p in
  buf_addf buf "Soft-timer dispatch by trigger state (%d firings)\n" total;
  buf_addf buf "%-16s %10s %8s %10s %10s %10s %10s\n" "trigger" "fires"
    "share" "mean_us" "p50_us" "p99_us" "max_us";
  buf_addf buf "%s\n" (String.make 80 '-');
  let rows =
    List.sort
      (fun a b ->
        let c = compare b.fires a.fires in
        if c <> 0 then c else String.compare a.source b.source)
      p.disp
  in
  List.iter
    (fun r ->
      let share =
        if total = 0 then 0.0 else 100.0 *. float_of_int r.fires /. float_of_int total
      in
      let mean =
        if r.fires = 0 then 0.0
        else Time_ns.to_us r.delay_sum /. float_of_int r.fires
      in
      let pc p = if Hdr.count r.delays = 0 then 0.0 else Hdr.percentile r.delays p in
      buf_addf buf "%-16s %10d %7.1f%% %10.2f %10.2f %10.2f %10.2f\n" r.source
        r.fires share mean (pc 50.0) (pc 99.0)
        (Time_ns.to_us r.delay_max))
    rows;
  Buffer.contents buf

(* Per-interrupt-line cost split — the decomposition behind the paper's
   Tables 2-4 argument: save/restore + cache/TLB pollution dominates the
   handler body.  Relies on the category convention established by
   [Interrupt.deliver]: interrupt;<line>;{save_restore,pollution,handler}. *)
let interrupt_table p =
  let buf = Buffer.create 1024 in
  match id_of_path [ "interrupt" ] with
  | None ->
    Buffer.add_string buf "No interrupt costs attributed.\n";
    Buffer.contents buf
  | Some root ->
    buf_addf buf "Per-interrupt cost split (all CPUs)\n";
    buf_addf buf "%-18s %10s %12s %12s %12s %12s %12s\n" "line" "delivered"
      "save_us" "pollute_us" "handler_us" "total_us" "avg_us/intr";
    buf_addf buf "%s\n" (String.make 94 '-');
    let part line leaf =
      match id_of_path [ "interrupt"; line; leaf ] with
      | None -> (0L, 0)
      | Some id ->
        ( sum_cells p id (fun c -> c.self),
          Int64.to_int (sum_cells p id (fun c -> Int64.of_int c.charges)) )
    in
    let lines =
      List.sort
        (fun a b ->
          let wa = node_total p a and wb = node_total p b in
          let c = Int64.compare wb wa in
          if c <> 0 then c else String.compare !reg.(a).name !reg.(b).name)
        (children_of root)
    in
    let t_save = ref 0L and t_pol = ref 0L and t_body = ref 0L and t_n = ref 0 in
    List.iter
      (fun id ->
        let line = !reg.(id).name in
        let save, n_save = part line "save_restore" in
        let pol, _ = part line "pollution" in
        let body, _ = part line "handler" in
        let total = Time_ns.(Time_ns.(save + pol) + body) in
        if Int64.compare total 0L > 0 || n_save > 0 then begin
          t_save := Time_ns.(!t_save + save);
          t_pol := Time_ns.(!t_pol + pol);
          t_body := Time_ns.(!t_body + body);
          t_n := !t_n + n_save;
          let avg =
            if n_save = 0 then 0.0 else Time_ns.to_us total /. float_of_int n_save
          in
          buf_addf buf "%-18s %10d %12.1f %12.1f %12.1f %12.1f %12.2f\n" line
            n_save (Time_ns.to_us save) (Time_ns.to_us pol) (Time_ns.to_us body)
            (Time_ns.to_us total) avg
        end)
      lines;
    buf_addf buf "%s\n" (String.make 94 '-');
    let g_total = Time_ns.(Time_ns.(!t_save + !t_pol) + !t_body) in
    let g_avg =
      if !t_n = 0 then 0.0 else Time_ns.to_us g_total /. float_of_int !t_n
    in
    buf_addf buf "%-18s %10d %12.1f %12.1f %12.1f %12.1f %12.2f\n" "TOTAL" !t_n
      (Time_ns.to_us !t_save) (Time_ns.to_us !t_pol) (Time_ns.to_us !t_body)
      (Time_ns.to_us g_total) g_avg;
    Buffer.contents buf

let report p =
  String.concat "\n" [ to_table p; interrupt_table p; trigger_table p ]

(* ---- Category-registry readers ------------------------------------

   The memory observatory (Memstats / Memprof) attributes words to the
   same interned category tree the cycle profiler charges time to; it
   keeps its own id-indexed side tables and renders by walking the
   registry through these readers. *)

let intern_id = intern_path
let id_name id = !reg.(id).name
let id_full id = !reg.(id).full
let id_parent id = !reg.(id).parent
let id_children = children_of
let id_roots = roots
let registry_size () = !reg_n

(* Analytic footprint of the registry itself, in 64-bit words: the
   backing array, one 4-word info record and two string blocks per
   node, and a 4-word hashtable binding (the key shares the [full]
   string).  The hashtable's record and bucket array are charged at
   their initial size; resizes are ignored. *)
let registry_words () =
  let str s = 2 + (String.length s / 8) in
  let acc = ref (Array.length !reg + 1 + 5 + 65) in
  for i = 0 to !reg_n - 1 do
    let info = !reg.(i) in
    acc := !acc + 4 + 4 + str info.name + str info.full
  done;
  !acc
