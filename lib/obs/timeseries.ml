(* Windowed aggregation of the trace event stream over simulated time.

   A collector is installed as the synchronous trace tap
   ([Trace.set_tap (Some (on_event ts))]) so it sees every emitted
   event whether or not a ring buffer is also installed — including
   events replayed by [Trace.absorb] when the parallel runner merges
   per-worker rings in job order, which is what keeps the series
   byte-identical at every --jobs value.

   Windows are keyed by simulated time ([at / window]); closed windows
   live in a bounded ring (oldest evicted first, evictions counted) so
   memory stays constant no matter how long the run.  A fresh
   simulation starting inside the same process (several experiment
   cells in one run, or absorbed worker rings) shows up as simulated
   time jumping backwards; the collector closes the current window and
   opens a new [epoch], so windows of different simulations never
   merge. *)

type window = {
  epoch : int;
  index : int;  (* window number: start time = index * window *)
  mutable triggers : int;
  mutable sched : int;
  mutable fired : int;
  mutable cancelled : int;
  mutable polls : int;
  mutable poll_found : int;
  mutable rbc_sends : int;
  mutable pkt_enqueued : int;
  mutable pkt_tx : int;
  mutable pkt_rx_batches : int;
  mutable pkt_rx_pkts : int;
  mutable pkt_drop : int;
  mutable irqs : int;
  mutable irq_ns : int64;
  mutable cpu_wakeups : int;
  mutable qlen_last : int;  (* gauge last-write; -1 until first seen *)
  delay : Hdr.t;  (* soft-timer fire delays observed in this window, us *)
}

type t = {
  window : Time_ns.span;
  max_windows : int;
  ring : window array;  (* closed windows; slot [head] is the oldest *)
  mutable head : int;
  mutable len : int;
  mutable evicted : int;
  mutable cur : window option;
  mutable epoch : int;
  mutable last_at : Time_ns.t;
  overall_delay : Hdr.t;  (* all fire delays, across every window *)
  mutable events : int;
}

let fresh_window ~epoch ~index =
  {
    epoch;
    index;
    triggers = 0;
    sched = 0;
    fired = 0;
    cancelled = 0;
    polls = 0;
    poll_found = 0;
    rbc_sends = 0;
    pkt_enqueued = 0;
    pkt_tx = 0;
    pkt_rx_batches = 0;
    pkt_rx_pkts = 0;
    pkt_drop = 0;
    irqs = 0;
    irq_ns = 0L;
    cpu_wakeups = 0;
    qlen_last = -1;
    delay = Hdr.create ();
  }

let create ?(window = Time_ns.of_us 1000.0) ?(max_windows = 4096) () =
  if Int64.compare (Time_ns.to_ns window) 0L <= 0 then
    invalid_arg "Timeseries.create: window must be positive";
  if max_windows <= 0 then invalid_arg "Timeseries.create: max_windows must be positive";
  let dummy = fresh_window ~epoch:0 ~index:0 in
  {
    window;
    max_windows;
    ring = Array.make max_windows dummy;
    head = 0;
    len = 0;
    evicted = 0;
    cur = None;
    epoch = 0;
    last_at = Time_ns.zero;
    overall_delay = Hdr.create ();
    events = 0;
  }

let window_span t = t.window
let epochs t = t.epoch + 1
let evicted_windows t = t.evicted
let event_count t = t.events
let overall_delay t = t.overall_delay

let push_closed t w =
  if t.len = t.max_windows then begin
    t.ring.(t.head) <- w;
    t.head <- (t.head + 1) mod t.max_windows;
    t.evicted <- t.evicted + 1
  end
  else begin
    t.ring.((t.head + t.len) mod t.max_windows) <- w;
    t.len <- t.len + 1
  end

let close t =
  match t.cur with
  | None -> ()
  | Some w ->
    push_closed t w;
    t.cur <- None

let current_window t ~at =
  (match t.cur with
  | Some _ when Time_ns.(at < t.last_at) ->
    (* Simulated time went backwards: a fresh simulation begins. *)
    close t;
    t.epoch <- t.epoch + 1
  | None when t.len > 0 && Time_ns.(at < t.last_at) -> t.epoch <- t.epoch + 1
  | _ -> ());
  let index = Int64.to_int (Int64.div at t.window) in
  match t.cur with
  | Some w when w.index = index -> w
  | Some w ->
    if w.index < index then begin
      close t;
      let w' = fresh_window ~epoch:t.epoch ~index in
      t.cur <- Some w';
      w'
    end
    else w (* same-instant reordering inside an absorb; keep the window *)
  | None ->
    let w = fresh_window ~epoch:t.epoch ~index in
    t.cur <- Some w;
    w

let on_event t ~at (ev : Trace.event) =
  t.events <- t.events + 1;
  let w = current_window t ~at in
  t.last_at <- at;
  (match ev with
  | Trace.Trigger _ -> w.triggers <- w.triggers + 1
  | Trace.Soft_sched _ -> w.sched <- w.sched + 1
  | Trace.Soft_fire { delay; _ } ->
    w.fired <- w.fired + 1;
    let us = Time_ns.to_us delay in
    Hdr.record w.delay us;
    Hdr.record t.overall_delay us
  | Trace.Soft_cancel _ -> w.cancelled <- w.cancelled + 1
  (* Forensics-only events: the audit consumes them; the per-window
     counters deliberately ignore them so stats output stays stable. *)
  | Trace.Soft_check _ -> ()
  | Trace.Cpu_run _ -> ()
  | Trace.Irq { dur; _ } ->
    w.irqs <- w.irqs + 1;
    w.irq_ns <- Int64.add w.irq_ns (Time_ns.to_ns dur)
  | Trace.Irq_raised _ | Trace.Irq_lost _ -> ()
  | Trace.Cpu_busy _ -> w.cpu_wakeups <- w.cpu_wakeups + 1
  | Trace.Cpu_idle _ -> ()
  | Trace.Pkt_enqueue { qlen; _ } ->
    w.pkt_enqueued <- w.pkt_enqueued + 1;
    w.qlen_last <- qlen
  | Trace.Pkt_tx _ -> w.pkt_tx <- w.pkt_tx + 1
  | Trace.Pkt_rx { batch; _ } ->
    w.pkt_rx_batches <- w.pkt_rx_batches + 1;
    w.pkt_rx_pkts <- w.pkt_rx_pkts + batch
  | Trace.Pkt_drop _ -> w.pkt_drop <- w.pkt_drop + 1
  | Trace.Poll { found } ->
    w.polls <- w.polls + 1;
    w.poll_found <- w.poll_found + found
  | Trace.Rbc_send -> w.rbc_sends <- w.rbc_sends + 1
  | Trace.Mark _ -> ())

(* ------------------------------------------------------------------ *)
(* Reading                                                             *)

type snapshot = {
  s_epoch : int;
  s_index : int;
  s_start_us : float;
  s_triggers : int;
  s_sched : int;
  s_fired : int;
  s_cancelled : int;
  s_polls : int;
  s_poll_found : int;
  s_rbc_sends : int;
  s_pkt_enqueued : int;
  s_pkt_tx : int;
  s_pkt_rx_batches : int;
  s_pkt_rx_pkts : int;
  s_pkt_drop : int;
  s_irqs : int;
  s_irq_us : float;
  s_cpu_wakeups : int;
  s_qlen_last : int option;
  s_delay_count : int;
  s_delay_p50_us : float;  (* nan when the window saw no firings *)
  s_delay_p99_us : float;
  s_delay_max_us : float;
}

let snapshot_of t (w : window) =
  let window_us = Time_ns.to_us t.window in
  {
    s_epoch = w.epoch;
    s_index = w.index;
    s_start_us = float_of_int w.index *. window_us;
    s_triggers = w.triggers;
    s_sched = w.sched;
    s_fired = w.fired;
    s_cancelled = w.cancelled;
    s_polls = w.polls;
    s_poll_found = w.poll_found;
    s_rbc_sends = w.rbc_sends;
    s_pkt_enqueued = w.pkt_enqueued;
    s_pkt_tx = w.pkt_tx;
    s_pkt_rx_batches = w.pkt_rx_batches;
    s_pkt_rx_pkts = w.pkt_rx_pkts;
    s_pkt_drop = w.pkt_drop;
    s_irqs = w.irqs;
    s_irq_us = Int64.to_float w.irq_ns /. 1e3;
    s_cpu_wakeups = w.cpu_wakeups;
    s_qlen_last = (if w.qlen_last < 0 then None else Some w.qlen_last);
    s_delay_count = Hdr.count w.delay;
    s_delay_p50_us = Hdr.quantile w.delay 0.5;
    s_delay_p99_us = Hdr.quantile w.delay 0.99;
    s_delay_max_us = Hdr.max w.delay;
  }

let snapshots t =
  let acc = ref [] in
  for i = t.len - 1 downto 0 do
    acc := snapshot_of t t.ring.((t.head + i) mod t.max_windows) :: !acc
  done;
  (match t.cur with Some w -> acc := !acc @ [ snapshot_of t w ] | None -> ());
  !acc

(* ------------------------------------------------------------------ *)
(* Exporters                                                           *)

let csv_header =
  "epoch,index,start_us,triggers,sched,fired,cancelled,polls,poll_found,rbc_sends,pkt_enqueued,pkt_tx,pkt_rx_batches,pkt_rx_pkts,pkt_drop,irqs,irq_us,cpu_wakeups,qlen_last,delay_count,delay_p50_us,delay_p99_us,delay_max_us"

let fnum v = if Float.is_nan v then "" else Printf.sprintf "%.6g" v

let csv_row s =
  Printf.sprintf "%d,%d,%.6g,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%.6g,%d,%s,%d,%s,%s,%s"
    s.s_epoch s.s_index s.s_start_us s.s_triggers s.s_sched s.s_fired s.s_cancelled
    s.s_polls s.s_poll_found s.s_rbc_sends s.s_pkt_enqueued s.s_pkt_tx s.s_pkt_rx_batches
    s.s_pkt_rx_pkts s.s_pkt_drop s.s_irqs s.s_irq_us s.s_cpu_wakeups
    (match s.s_qlen_last with None -> "" | Some q -> string_of_int q)
    s.s_delay_count (fnum s.s_delay_p50_us) (fnum s.s_delay_p99_us)
    (fnum s.s_delay_max_us)

let to_csv t =
  let b = Buffer.create 4096 in
  if t.evicted > 0 then
    Buffer.add_string b
      (Printf.sprintf "# WARNING: %d oldest windows evicted (bounded ring)\n" t.evicted);
  Buffer.add_string b csv_header;
  Buffer.add_char b '\n';
  List.iter
    (fun s ->
      Buffer.add_string b (csv_row s);
      Buffer.add_char b '\n')
    (snapshots t);
  Buffer.contents b

let jnum v = if Float.is_nan v then "null" else Printf.sprintf "%.6g" v

let json_of_snapshot s =
  Printf.sprintf
    "{\"epoch\":%d,\"index\":%d,\"start_us\":%s,\"triggers\":%d,\"sched\":%d,\"fired\":%d,\"cancelled\":%d,\"polls\":%d,\"poll_found\":%d,\"rbc_sends\":%d,\"pkt_enqueued\":%d,\"pkt_tx\":%d,\"pkt_rx_batches\":%d,\"pkt_rx_pkts\":%d,\"pkt_drop\":%d,\"irqs\":%d,\"irq_us\":%s,\"cpu_wakeups\":%d,\"qlen_last\":%s,\"delay_count\":%d,\"delay_p50_us\":%s,\"delay_p99_us\":%s,\"delay_max_us\":%s}"
    s.s_epoch s.s_index (jnum s.s_start_us) s.s_triggers s.s_sched s.s_fired s.s_cancelled
    s.s_polls s.s_poll_found s.s_rbc_sends s.s_pkt_enqueued s.s_pkt_tx s.s_pkt_rx_batches
    s.s_pkt_rx_pkts s.s_pkt_drop s.s_irqs (jnum s.s_irq_us) s.s_cpu_wakeups
    (match s.s_qlen_last with None -> "null" | Some q -> string_of_int q)
    s.s_delay_count (jnum s.s_delay_p50_us) (jnum s.s_delay_p99_us)
    (jnum s.s_delay_max_us)

let to_json t =
  "[" ^ String.concat "," (List.map json_of_snapshot (snapshots t)) ^ "]"
