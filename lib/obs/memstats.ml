(* Memory observatory: always-on GC telemetry plus a live-word census
   attributed to the interned Profile category tree.

   Symmetric with the cycle profiler: where [Profile] answers "where
   did the nanoseconds go", this module answers "where do the words
   live".  Attribution is pull-style — subsystems register a word
   provider (usually an analytic [words] accessor: store backends,
   the rate-clock pool, obs itself) under a category path, and the
   census samples every provider at report time.  Nothing here touches
   a hot path, emits a trace event, or feeds the default metrics
   registry, so determinism digests, tables and stats JSON stay
   byte-identical whether the observatory is consulted or not. *)

(* GC probes live in a dedicated registry, NOT [Metrics.default]: GC
   word counts are not jobs-invariant (each domain allocates its own
   minor heaps), and the [stats] subcommand's exposition of the default
   registry must stay byte-identical at any [--jobs]. *)
let registry = Metrics.create ()

let () =
  Metrics.probe registry "gc.minor_words" (fun () -> Gc.minor_words ());
  Metrics.probe registry "gc.major_words" (fun () ->
      let s = Gc.quick_stat () in
      s.Gc.major_words);
  Metrics.probe registry "gc.promoted_words" (fun () ->
      let s = Gc.quick_stat () in
      s.Gc.promoted_words);
  Metrics.probe registry "gc.heap_words" (fun () ->
      float_of_int (Gc.quick_stat ()).Gc.heap_words);
  Metrics.probe registry "gc.compactions" (fun () ->
      float_of_int (Gc.quick_stat ()).Gc.compactions);
  Metrics.probe registry "gc.minor_collections" (fun () ->
      float_of_int (Gc.quick_stat ()).Gc.minor_collections);
  Metrics.probe registry "gc.major_collections" (fun () ->
      float_of_int (Gc.quick_stat ()).Gc.major_collections);
  (* [Gc.stat] walks the heap — report-time cost, the price of an
     exact live count at the scrape. *)
  Metrics.probe registry "gc.live_words" (fun () ->
      float_of_int (Gc.stat ()).Gc.live_words)

let live_words () = (Gc.stat ()).Gc.live_words
let to_prometheus () = Metrics.to_prometheus registry
let dump () = Metrics.dump registry

(* ---- census sources ----------------------------------------------- *)

type source = {
  src_id : int;  (* Profile registry id, under the "mem" root *)
  src_full : string;
  src_words : unit -> int;
  src_live : bool;  (* pull provider over live state vs snapshot note *)
}

let mem_root = [ "mem" ]

(* RACE002: registered during sequential setup and sampled at report
   time, always on the main domain; parallel jobs never touch the
   census — same single-domain contract as the Profile registry. *)
let sources : source list ref = ref [] [@@lint.allow "RACE002"]

let add_source ~path ~live words =
  let id = Profile.intern_id (mem_root @ path) in
  let src =
    { src_id = id; src_full = Profile.id_full id; src_words = words; src_live = live }
  in
  (* Re-registering a path replaces the provider (a fresh simulation
     replaces a dead one's stores), keeping the original census
     position so output order stays deterministic. *)
  let rec replace seen = function
    | [] -> List.rev (src :: seen)
    | s :: rest ->
      if s.src_id = id then List.rev_append seen (src :: rest)
      else replace (s :: seen) rest
  in
  sources := replace [] !sources

let register ~path words = add_source ~path ~live:true words
let note ~path words = add_source ~path ~live:false (fun () -> words)

let reset_census () = sources := []

let census () =
  List.map (fun s -> (s.src_id, s.src_full, s.src_words ())) !sources

let attributed_words () =
  List.fold_left (fun acc s -> acc + s.src_words ()) 0 !sources

let live_attributed_words () =
  List.fold_left
    (fun acc s -> if s.src_live then acc + s.src_words () else acc)
    0 !sources

(* Live providers report heap the process retains right now, so their
   sum can never exceed the GC's live-word count; a violation means a
   double-counted or stale provider.  Snapshot notes describe memory
   measured at some earlier point (possibly freed since), so they are
   excluded from the invariant. *)
let conservation_ok () = live_attributed_words () <= live_words ()

(* ---- GC sample track ----------------------------------------------

   A bounded ring of labelled GC snapshots — the window track of the
   observatory.  Surfaces call [sample] at phase boundaries (run
   start/end, per sweep cell); memory stays constant for arbitrarily
   long runs, oldest windows evicted first. *)

type sample = {
  sm_label : string;
  sm_minor_words : float;
  sm_promoted_words : float;
  sm_major_words : float;
  sm_heap_words : int;
  sm_compactions : int;
}

let max_samples = 64

(* RACE002: same main-domain-only contract as [sources] above. *)
let samples_ring : sample option array = Array.make max_samples None
  [@@lint.allow "RACE002"]

let samples_n = ref 0 [@@lint.allow "RACE002"]
let samples_evicted = ref 0 [@@lint.allow "RACE002"]

let sample ~label =
  let s = Gc.quick_stat () in
  let sm =
    {
      sm_label = label;
      sm_minor_words = s.Gc.minor_words;
      sm_promoted_words = s.Gc.promoted_words;
      sm_major_words = s.Gc.major_words;
      sm_heap_words = s.Gc.heap_words;
      sm_compactions = s.Gc.compactions;
    }
  in
  if !samples_n = max_samples then incr samples_evicted;
  samples_ring.(!samples_n mod max_samples) <- Some sm;
  incr samples_n

let samples () =
  let n = Int.min !samples_n max_samples in
  let first = if !samples_n > max_samples then !samples_n mod max_samples else 0 in
  List.init n (fun i ->
      match samples_ring.((first + i) mod max_samples) with
      | Some sm -> sm
      | None -> assert false)

let evicted_samples () = !samples_evicted

let reset_samples () =
  Array.fill samples_ring 0 max_samples None;
  samples_n := 0;
  samples_evicted := 0

(* ---- renderers ----------------------------------------------------- *)

(* Sum of the census over a registry subtree: a node's words are its
   own provider (if any) plus all descendants'.  Providers sit at
   leaves in practice, but nothing requires it. *)
let subtree_words census_rows id =
  let direct id =
    List.fold_left
      (fun acc (sid, _, w) -> if sid = id then acc + w else acc)
      0 census_rows
  in
  let rec go id =
    List.fold_left (fun acc kid -> acc + go kid) (direct id) (Profile.id_children id)
  in
  go id

(* Indented live-word tree over the "mem" subtree of the category
   registry, registration order (deterministic). *)
let tree_table () =
  let rows = census () in
  let buf = Buffer.create 512 in
  Buffer.add_string buf "live words by subsystem\n";
  (match Profile.id_of_path mem_root with
  | None -> Buffer.add_string buf "  (no census sources registered)\n"
  | Some root ->
    let total = subtree_words rows root in
    let rec emit depth id =
      let w = subtree_words rows id in
      let pct = if total = 0 then 0.0 else 100.0 *. float_of_int w /. float_of_int total in
      Buffer.add_string buf
        (Printf.sprintf "  %-40s %12d  %5.1f%%\n"
           (String.make (2 * depth) ' ' ^ Profile.id_name id)
           w pct);
      List.iter (emit (depth + 1)) (Profile.id_children id)
    in
    List.iter (emit 0) (Profile.id_children root);
    Buffer.add_string buf (Printf.sprintf "  %-40s %12d\n" "total attributed" total));
  Buffer.contents buf

let retention_table () =
  let rows = List.map (fun s -> (s.src_full, s.src_words (), s.src_live)) !sources in
  let attributed = List.fold_left (fun acc (_, w, _) -> acc + w) 0 rows in
  let live_sum =
    List.fold_left (fun acc (_, w, l) -> if l then acc + w else acc) 0 rows
  in
  let live = live_words () in
  let buf = Buffer.create 512 in
  Buffer.add_string buf "retention (words)\n";
  Buffer.add_string buf
    (Printf.sprintf "  %-44s %14s %7s\n" "source" "words" "%live");
  List.iter
    (fun (full, w, is_live) ->
      let pct = if live = 0 then 0.0 else 100.0 *. float_of_int w /. float_of_int live in
      Buffer.add_string buf
        (Printf.sprintf "  %-44s %14d %6.2f%%%s\n" full w pct
           (if is_live then "" else "  (note)")))
    rows;
  Buffer.add_string buf
    (Printf.sprintf "  %-44s %14d\n" "attributed total" attributed);
  Buffer.add_string buf
    (Printf.sprintf "  %-44s %14d\n" "attributed live (excl. notes)" live_sum);
  Buffer.add_string buf (Printf.sprintf "  %-44s %14d\n" "gc live words" live);
  Buffer.add_string buf
    (Printf.sprintf "  conservation (attributed live <= gc live): %s\n"
       (if live_sum <= live then "ok" else "VIOLATED"));
  Buffer.contents buf

let samples_table () =
  let buf = Buffer.create 256 in
  Buffer.add_string buf "gc samples\n";
  Buffer.add_string buf
    (Printf.sprintf "  %-28s %14s %14s %14s %12s %5s\n" "label" "minor_words"
       "promoted" "major_words" "heap_words" "cmpct");
  List.iter
    (fun sm ->
      Buffer.add_string buf
        (Printf.sprintf "  %-28s %14.0f %14.0f %14.0f %12d %5d\n" sm.sm_label
           sm.sm_minor_words sm.sm_promoted_words sm.sm_major_words sm.sm_heap_words
           sm.sm_compactions))
    (samples ());
  if !samples_evicted > 0 then
    Buffer.add_string buf
      (Printf.sprintf "  (%d oldest samples evicted)\n" !samples_evicted);
  Buffer.contents buf

let report () =
  String.concat "\n" [ retention_table (); tree_table (); samples_table (); dump () ]

(* JSON fragment (an object, no trailing newline) with the census,
   conservation verdict and GC counters — embedded by the CLI [mem]
   report and the bench harnesses' [mem] sections. *)
let to_json () =
  let buf = Buffer.create 512 in
  let rows = List.map (fun s -> (s.src_full, s.src_words (), s.src_live)) !sources in
  let attributed = List.fold_left (fun acc (_, w, _) -> acc + w) 0 rows in
  let live_sum =
    List.fold_left (fun acc (_, w, l) -> if l then acc + w else acc) 0 rows
  in
  let live = live_words () in
  let s = Gc.quick_stat () in
  Buffer.add_string buf "{\"sources\":[";
  List.iteri
    (fun i (full, w, is_live) ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf
        (Printf.sprintf "{\"path\":%S,\"words\":%d,\"live\":%b}" full w is_live))
    rows;
  Buffer.add_string buf
    (Printf.sprintf
       "],\"attributed_words\":%d,\"live_attributed_words\":%d,\"live_words\":%d,\
        \"conservation_ok\":%b,"
       attributed live_sum live (live_sum <= live));
  Buffer.add_string buf
    (Printf.sprintf
       "\"gc\":{\"minor_words\":%.0f,\"promoted_words\":%.0f,\"major_words\":%.0f,\
        \"heap_words\":%d,\"compactions\":%d,\"minor_collections\":%d,\
        \"major_collections\":%d}}"
       s.Gc.minor_words s.Gc.promoted_words s.Gc.major_words s.Gc.heap_words
       s.Gc.compactions s.Gc.minor_collections s.Gc.major_collections);
  Buffer.contents buf
