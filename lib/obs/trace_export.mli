(** Trace exporters.

    {!to_chrome_json} renders a {!Trace.t} in the Chrome [trace_event]
    JSON format (the "JSON Array Format" with a [traceEvents] wrapper),
    loadable in [chrome://tracing] and {{:https://ui.perfetto.dev}
    Perfetto}.  Mapping:

    - [Irq] records become complete ("X") slices on the track of their
      CPU, spanning handler entry to exit;
    - [Cpu_busy]/[Cpu_idle] become a per-CPU "C" counter track
      [cpuN.busy] stepping between 0 and 1;
    - everything else becomes a thread-scoped instant ("i") event with
      its payload under [args].

    Timestamps are microseconds (the format's unit) with nanosecond
    precision preserved as fractional digits.

    {!to_csv} renders one record per line —
    [time_ns,event,field=value;...] — for ad-hoc processing. *)

val to_chrome_json : Trace.t -> string

val write_chrome_json : Trace.t -> string -> unit
(** [write_chrome_json t path] writes {!to_chrome_json} to [path]. *)

val to_csv : Trace.t -> string

val write_csv : Trace.t -> string -> unit
