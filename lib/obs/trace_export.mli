(** Trace exporters.

    {!to_chrome_json} renders a {!Trace.t} in the Chrome [trace_event]
    JSON format (the "JSON Array Format" with a [traceEvents] wrapper),
    loadable in [chrome://tracing] and {{:https://ui.perfetto.dev}
    Perfetto}.  Mapping:

    - [Irq] records become complete ("X") slices on the track of their
      CPU, spanning handler entry to exit;
    - [Cpu_busy]/[Cpu_idle] become a per-CPU "C" counter track
      [cpuN.busy] stepping between 0 and 1;
    - everything else becomes a thread-scoped instant ("i") event with
      its payload under [args].

    Timestamps are microseconds (the format's unit) with nanosecond
    precision preserved as fractional digits.

    Two optional overlays extend the stream:
    - [?series] adds "C" counter tracks (cat ["timeseries"], one sample
      per window at the window's start) for scheduled/fired/cancelled
      timers, packet tx/rx/drop, polls and per-window fire-delay
      p50/p99;
    - [?spans] adds paired async "b"/"e" events (cat ["span"]) for
      every {e closed} span, id-stamped so viewers nest concurrent
      lifecycles; spans still open at the end of the trace are skipped
      so begins and ends always balance.

    {!to_csv} renders one record per line —
    [time_ns,event,field=value;...] — for ad-hoc processing. *)

val to_chrome_json : ?series:Timeseries.t -> ?spans:Span.t -> Trace.t -> string

val write_chrome_json : ?series:Timeseries.t -> ?spans:Span.t -> Trace.t -> string -> unit
(** [write_chrome_json t path] writes {!to_chrome_json} to [path]. *)

val to_csv : Trace.t -> string

val write_csv : Trace.t -> string -> unit
