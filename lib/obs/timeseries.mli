(** Windowed time-series aggregation of the trace event stream.

    A collector turns the flat trace event stream into per-window
    aggregates over {e simulated} time: counter deltas (timers
    scheduled/fired/cancelled, packets tx/rx/dropped, polls, IRQs, ...),
    gauge last-writes (NIC queue length) and a constant-memory {!Hdr}
    of soft-timer fire delays per window.

    Install it as the synchronous trace tap:
    {[ Trace.set_tap (Some (Timeseries.on_event ts)) ]}
    It then sees every event in emission order — including events
    replayed by [Trace.absorb] when the parallel runner merges worker
    rings in job order — so the resulting series is byte-identical at
    every [--jobs] value.

    Closed windows are kept in a bounded ring (oldest evicted first,
    evictions counted), so memory is constant for arbitrarily long runs.
    Simulated time jumping backwards (a second experiment cell, or the
    next absorbed run) closes the current window and starts a new
    {e epoch}; windows of different simulations never merge. *)

type t

val create : ?window:Time_ns.span -> ?max_windows:int -> unit -> t
(** A fresh collector.  [window] (default 1 ms) is the aggregation
    window width in simulated time; [max_windows] (default 4096) bounds
    the retained closed windows.
    @raise Invalid_argument if [window] is not positive or
    [max_windows] is not positive. *)

val on_event : t -> at:Time_ns.t -> Trace.event -> unit
(** Feed one event; O(1).  Suitable directly as a [Trace.set_tap]
    argument. *)

val close : t -> unit
(** Close the in-progress window (if any) so it appears in
    {!snapshots}.  Call once after the run completes. *)

val window_span : t -> Time_ns.span

val epochs : t -> int
(** Number of distinct simulations observed (at least 1). *)

val evicted_windows : t -> int
(** Closed windows dropped because the ring was full. *)

val event_count : t -> int
(** Total events fed via {!on_event}. *)

val overall_delay : t -> Hdr.t
(** Fire-delay distribution across the whole run (all windows). *)

(** {2 Reading} *)

type snapshot = {
  s_epoch : int;
  s_index : int;  (** window number within its epoch *)
  s_start_us : float;  (** window start in simulated microseconds *)
  s_triggers : int;
  s_sched : int;
  s_fired : int;
  s_cancelled : int;
  s_polls : int;
  s_poll_found : int;
  s_rbc_sends : int;
  s_pkt_enqueued : int;
  s_pkt_tx : int;
  s_pkt_rx_batches : int;
  s_pkt_rx_pkts : int;
  s_pkt_drop : int;
  s_irqs : int;
  s_irq_us : float;  (** total IRQ handler time in the window *)
  s_cpu_wakeups : int;  (** idle->busy transitions *)
  s_qlen_last : int option;  (** last NIC queue length seen, if any *)
  s_delay_count : int;
  s_delay_p50_us : float;  (** [nan] when the window saw no firings *)
  s_delay_p99_us : float;
  s_delay_max_us : float;
}

val snapshots : t -> snapshot list
(** Retained windows in (epoch, index) order, including the still-open
    window if {!close} has not been called.  Windows with no events are
    absent (the series is sparse). *)

(** {2 Exporters} *)

val to_csv : t -> string
(** One header line then one row per window; a leading [# WARNING]
    banner reports evictions.  Empty delay quantiles render as empty
    cells. *)

val to_json : t -> string
(** JSON array of window objects (same fields as {!snapshot}; [nan]
    quantiles render as [null]). *)
