(** Shared GC accounting around a timed section.

    One convention for every bench harness: measure a section's
    allocation deltas (minor/major/promoted words) and the heap
    high-water mark, so words/op columns mean the same thing in
    [bench/main.ml], [bench/store_arena.ml] and
    [bench/pacer_bench.ml]. *)

type delta = {
  d_minor_words : float;  (** words allocated in the minor heap *)
  d_major_words : float;  (** words allocated directly in the major heap *)
  d_promoted_words : float;  (** words surviving into the major heap *)
  d_heap_words : int;  (** major heap size after the section *)
  d_top_heap_words : int;  (** process-lifetime heap high-water mark *)
}

val measure : (unit -> 'a) -> 'a * delta
(** [measure f] runs [f] and returns its result with the GC deltas
    around it ([Gc.quick_stat] — no heap walk, safe around timed
    sections). *)

val major_alloc : delta -> float
(** Major-heap words allocated net of promotion (promoted words would
    double-count minor allocation). *)

val to_json : delta -> string
(** JSON object with the five fields. *)
