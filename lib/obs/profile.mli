(** Hierarchical cycle-attribution profiler.

    Attributes every unit of CPU time the simulator charges to a
    category path (e.g. [["interrupt"; "fxp0-rx"; "pollution"]]),
    aggregated per CPU.  Attribution happens inside [Cpu.charge], the
    single choke point through which all busy time flows, so the
    conservation invariant — attributed total = [Cpu.busy_ns] for every
    CPU — holds by construction.

    Off-by-default with the same single-load-and-branch discipline as
    {!Trace}: when no profiler is {!install}ed, {!charge}, {!event} and
    {!dispatch} cost one ref load and one branch, so instrumentation
    stays in hot paths permanently.  Charge sites should guard any
    allocation (notably {!seq}) behind {!enabled}. *)

type t
(** A profiler instance: per-CPU attribution cells, span-less event
    counters and the per-trigger-state dispatch breakdown. *)

type attr
(** An attribution value carried by charged work.  Either a single
    interned category path, or a {!seq} that splits one quantum across
    several categories. *)

val intern : string list -> attr
(** [intern path] returns the attribution for a category path, creating
    registry nodes as needed.  Interning is cheap but not free — do it
    once at setup time (module init, line/workload creation) and reuse
    the result.  Segments containing [';'], [' '] or newline are
    sanitized (replaced with ['_']) so exports stay parseable.
    @raise Invalid_argument on an empty path. *)

val seq : (attr * Time_ns.span) list -> tail:attr -> attr
(** [seq parts ~tail] splits a quantum: the first [span] of charged time
    goes to the first part's category, and so on; time beyond the
    declared parts flows to [tail].  Parts are consumed statefully in
    order, so a quantum delivered in several charges (preemption)
    resumes where it left off — consequently a [seq] value must be used
    for exactly one submitted quantum.  Non-positive parts are dropped.
    Only allocate when {!enabled} returns [true].
    @raise Invalid_argument if a part is itself a [seq]. *)

val create : unit -> t

val install : t -> unit
(** Make [t] the live sink for {!charge}/{!event}/{!dispatch}. *)

val uninstall : unit -> unit
val installed : unit -> t option

val enabled : unit -> bool
(** [true] iff a profiler is installed.  Guard allocations with this. *)

(** {1 Hot-path recording} *)

val charge : attr -> cpu:int -> Time_ns.span -> unit
(** Attribute [span] of busy time on [cpu].  Called by [Cpu.charge];
    no-op (load + branch) when disabled. *)

val event : attr -> unit
(** Count a span-less occurrence (wheel compaction, retransmit, ...).
    [seq] attrs are ignored.  No-op when disabled. *)

val dispatch : source:string -> delay:Time_ns.span -> unit
(** Record that a soft-timer firing was dispatched by trigger state
    [source] with latency [delay] past its deadline (clamped to >= 0).
    No-op when disabled. *)

(** {1 Readers} *)

val cpu_count : t -> int
(** Number of CPUs that received at least one attributed charge. *)

val attributed_ns : t -> cpu:int -> Time_ns.span
(** Total attributed time on [cpu]; equals [Cpu.busy_ns] when every
    charge site is instrumented (the conservation invariant). *)

val total_attributed_ns : t -> Time_ns.span

val self_ns : t -> string list -> Time_ns.span
(** Self time of exactly this path, summed across CPUs; [0] if the path
    was never interned. *)

val subtree_ns : t -> string list -> Time_ns.span
(** Self time of this path plus all descendants, summed across CPUs. *)

val charges : t -> string list -> int
(** Number of charges recorded against exactly this path. *)

val event_count : t -> string list -> int

val dispatch_rows : t -> (string * int) list
(** [(trigger-state name, firings)] in first-dispatch order. *)

val fired_total : t -> int
(** Sum of firings across all dispatch rows; equals the
    [softtimer.fired] metric when dispatch is instrumented. *)

val roots_ns : t -> (string * Time_ns.span) list
(** Top-level categories with their subtree time summed across CPUs,
    largest first (ties by name; zero-time event-only roots omitted).
    The pairs sum to {!total_attributed_ns}. *)

(** {1 Renderers} *)

val to_collapsed : t -> string
(** Collapsed-stack flamegraph lines ["cpuN;frame;frame <ns>"], sorted;
    compatible with inferno / flamegraph.pl / speedscope. *)

val to_table : t -> string
(** Indented attribution tree with total/self microseconds, percentage
    of attributed time and charge counts, plus event counters. *)

val trigger_table : t -> string
(** Paper Table 1 / §4.1: firings, share and dispatch-latency
    distribution (mean/p50/p99/max) per trigger state. *)

val interrupt_table : t -> string
(** Per-interrupt-line cost split: save/restore vs. cache/TLB pollution
    vs. handler body, per delivery and in total (paper Tables 2-4). *)

val report : t -> string
(** {!to_table}, {!interrupt_table} and {!trigger_table} concatenated. *)

(** {1 Category-registry readers}

    The interned category tree is shared infrastructure: the cycle
    profiler charges nanoseconds to it, and the memory observatory
    ([Memstats]/[Memprof]) attributes words to it.  These readers
    expose the registry itself — node ids are dense ints, stable for
    the process lifetime, and enumeration order is registration order
    (deterministic). *)

val intern_id : string list -> int
(** Like {!intern} but returns the node's registry id.  Same
    sanitization and creation semantics.
    @raise Invalid_argument on an empty path. *)

val id_of_path : string list -> int option
(** Lookup without interning. *)

val id_name : int -> string
(** Leaf segment of the node's path. *)

val id_full : int -> string
(** Full path, [";"]-separated. *)

val id_parent : int -> int
(** Parent id, or [-1] for a root. *)

val id_children : int -> int list
(** Children in registration order. *)

val id_roots : unit -> int list

val registry_size : unit -> int
(** Nodes interned so far. *)

val registry_words : unit -> int
(** Analytic estimate of the registry's own heap footprint in 64-bit
    words — the obs subsystem's entry in the memory census. *)
