type rule = Causality | Early_fire | Overdue | Residency | Counter_monotone

let rule_name = function
  | Causality -> "CAUSALITY"
  | Early_fire -> "EARLY_FIRE"
  | Overdue -> "OVERDUE"
  | Residency -> "WHEEL_RESIDENCY"
  | Counter_monotone -> "COUNTER_MONOTONE"

type violation = { at : Time_ns.t; rule : rule; detail : string }

exception Violation of violation

type t = {
  fail_fast : bool;
  period : Time_ns.span;  (* backup hard-clock period *)
  overdue_periods : float;
  counter_check_every : int;
  max_reported : int;
  registry : Metrics.t;
  mutable last_at : Time_ns.t;
  mutable max_irq : Time_ns.span;  (* longest interrupt dispatch seen *)
  mutable events_seen : int;
  mutable installed : bool;
  counters : (string, int) Hashtbl.t;  (* last snapshot, per counter name *)
  mutable violations_rev : violation list;  (* newest first, bounded *)
  mutable stored : int;
  mutable count : int;
}

let create ?(fail_fast = false) ?(hard_clock_hz = 1000.0) ?(overdue_periods = 2.0)
    ?(counter_check_every = 4096) ?(max_reported = 32) ?(registry = Metrics.default) () =
  if hard_clock_hz <= 0.0 then invalid_arg "Sanitizer.create: hard_clock_hz must be positive";
  if overdue_periods <= 0.0 then
    invalid_arg "Sanitizer.create: overdue_periods must be positive";
  if counter_check_every <= 0 then
    invalid_arg "Sanitizer.create: counter_check_every must be positive";
  if max_reported <= 0 then invalid_arg "Sanitizer.create: max_reported must be positive";
  {
    fail_fast;
    period = Time_ns.of_sec (1.0 /. hard_clock_hz);
    overdue_periods;
    counter_check_every;
    max_reported;
    registry;
    last_at = Time_ns.zero;
    max_irq = 0L;
    events_seen = 0;
    installed = false;
    counters = Hashtbl.create 64;
    violations_rev = [];
    stored = 0;
    count = 0;
  }

let violation_count t = t.count
let ok t = t.count = 0
let events_seen t = t.events_seen
let violations t = List.rev t.violations_rev

let violate t ~at rule detail =
  let v = { at; rule; detail } in
  t.count <- t.count + 1;
  if t.stored < t.max_reported then begin
    t.violations_rev <- v :: t.violations_rev;
    t.stored <- t.stored + 1
  end;
  if t.fail_fast then raise (Violation v)

let check_wheel t ~at ~resident ~pending ~slots =
  let bound = 2 * Stdlib.max pending slots in
  if resident > bound then
    violate t ~at Residency
      (Printf.sprintf "wheel resident=%d exceeds 2*max(pending=%d, slots=%d)=%d" resident
         pending slots bound)

(* Counter / probe scan.  Metrics.iter visits in sorted name order and
   evaluates probes; we piggyback the wheel-residency check on the
   softtimer.wheel_* probes Softtimer registers. *)
let scan_registry t ~at =
  let resident = ref None and pending = ref None and slots = ref None in
  Metrics.iter t.registry (fun name v ->
      match v with
      | Metrics.Counter c ->
        if c < 0 then
          violate t ~at Counter_monotone (Printf.sprintf "counter %s is negative (%d)" name c);
        (match Hashtbl.find_opt t.counters name with
        | Some prev when c < prev ->
          violate t ~at Counter_monotone
            (Printf.sprintf "counter %s decreased (%d -> %d)" name prev c)
        | _ -> ());
        Hashtbl.replace t.counters name c
      | Metrics.Probe p -> (
        match name with
        | "softtimer.wheel_resident" -> resident := Some (int_of_float p)
        | "softtimer.wheel_pending" -> pending := Some (int_of_float p)
        | "softtimer.wheel_slots" -> slots := Some (int_of_float p)
        | _ -> ())
      | Metrics.Gauge _ | Metrics.Histogram _ -> ());
  match (!resident, !pending, !slots) with
  | Some r, Some p, Some s -> check_wheel t ~at ~resident:r ~pending:p ~slots:s
  | _ -> ()

let overdue_bound t = Time_ns.(Time_ns.scale t.period t.overdue_periods + t.max_irq)

let observe t ~at ev =
  t.events_seen <- t.events_seen + 1;
  (match ev with
  | Trace.Mark m when String.equal m Trace.sim_start_mark ->
    (* A fresh simulation: its clock legitimately restarts. *)
    t.last_at <- at
  | _ ->
    if Time_ns.(at < t.last_at) then
      violate t ~at Causality
        (Printf.sprintf "time moved backwards: %s after %s (no %s mark)"
           (Time_ns.to_string at) (Time_ns.to_string t.last_at) Trace.sim_start_mark)
    else t.last_at <- at);
  (match ev with
  | Trace.Soft_fire { due; delay; _ } ->
    if Time_ns.(at < due) then
      violate t ~at Early_fire
        (Printf.sprintf "soft timer fired %s before its deadline %s"
           (Time_ns.to_string Time_ns.(due - at))
           (Time_ns.to_string due))
    else begin
      let bound = overdue_bound t in
      if Time_ns.(delay > bound) then
        violate t ~at Overdue
          (Printf.sprintf
             "soft timer fired %s after its deadline (bound: %.1f hard-clock periods + max \
              irq = %s)"
             (Time_ns.to_string delay) t.overdue_periods (Time_ns.to_string bound))
    end
  | Trace.Irq { dur; _ } -> t.max_irq <- Time_ns.max t.max_irq dur
  | _ -> ());
  if t.events_seen mod t.counter_check_every = 0 then scan_registry t ~at

let install t =
  t.installed <- true;
  Trace.set_tap (Some (fun ~at ev -> observe t ~at ev))

let uninstall t =
  if t.installed then begin
    t.installed <- false;
    Trace.set_tap None;
    scan_registry t ~at:t.last_at
  end

let report t =
  let b = Buffer.create 256 in
  if ok t then
    Buffer.add_string b
      (Printf.sprintf "sanitizer: OK — %d events checked, 0 violations\n" t.events_seen)
  else begin
    Buffer.add_string b
      (Printf.sprintf "sanitizer: %d violation(s) in %d events%s\n" t.count t.events_seen
         (if t.count > t.stored then Printf.sprintf " (first %d shown)" t.stored else ""));
    List.iter
      (fun v ->
        Buffer.add_string b
          (Printf.sprintf "  [%s] at %s: %s\n" (rule_name v.rule) (Time_ns.to_string v.at)
             v.detail))
      (violations t)
  end;
  Buffer.contents b
