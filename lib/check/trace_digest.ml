let record_string (r : Trace.record) =
  let ev =
    match r.ev with
    | Trace.Trigger k -> "trigger " ^ k
    | Soft_sched { id; due } -> Printf.sprintf "soft_sched id=%d due=%Ld" id due
    | Soft_fire { id; due; delay } ->
      Printf.sprintf "soft_fire id=%d due=%Ld delay=%Ld" id due delay
    | Soft_cancel { id; due } -> Printf.sprintf "soft_cancel id=%d due=%Ld" id due
    | Soft_check { src; scanned; fired } ->
      Printf.sprintf "soft_check src=%s scanned=%d fired=%d" src scanned fired
    | Cpu_run { cpu; klass; dur } ->
      Printf.sprintf "cpu_run cpu=%d klass=%d dur=%Ld" cpu klass dur
    | Irq { line; cpu; dur } -> Printf.sprintf "irq line=%s cpu=%d dur=%Ld" line cpu dur
    | Irq_raised { line } -> "irq_raised line=" ^ line
    | Irq_lost { line } -> "irq_lost line=" ^ line
    | Cpu_busy { cpu } -> Printf.sprintf "cpu_busy cpu=%d" cpu
    | Cpu_idle { cpu } -> Printf.sprintf "cpu_idle cpu=%d" cpu
    | Pkt_enqueue { nic; qlen } -> Printf.sprintf "pkt_enqueue nic=%s qlen=%d" nic qlen
    | Pkt_tx { nic } -> "pkt_tx nic=" ^ nic
    | Pkt_rx { nic; batch } -> Printf.sprintf "pkt_rx nic=%s batch=%d" nic batch
    | Pkt_drop { nic } -> "pkt_drop nic=" ^ nic
    | Poll { found } -> Printf.sprintf "poll found=%d" found
    | Rbc_send -> "rbc_send"
    | Mark s -> "mark " ^ s
  in
  Printf.sprintf "%Ld %s" r.at ev

(* 64-bit FNV-1a. *)
let offset_basis = 0xcbf29ce484222325L
let prime = 0x100000001b3L

let fold_string h s =
  let h = ref h in
  String.iter
    (fun c -> h := Int64.mul (Int64.logxor !h (Int64.of_int (Char.code c))) prime)
    s;
  !h

let digest tr =
  let h = ref offset_basis in
  Trace.iter tr (fun r ->
      h := fold_string !h (record_string r);
      h := Int64.mul (Int64.logxor !h 10L) prime (* '\n' record separator *));
  (* A truncated ring must not digest equal to a complete one that
     happens to retain the same window: fold the overflow count in.
     Complete traces keep their historical digests. *)
  if Trace.dropped tr > 0 then
    h := fold_string !h (Printf.sprintf "dropped=%d" (Trace.dropped tr));
  !h

let hex h = Printf.sprintf "%016Lx" h
