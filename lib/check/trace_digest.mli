(** Order-sensitive digest of a trace, for replay diffing.

    [verify-determinism] runs an experiment twice with the same seed and
    compares these digests: identical event sequences (kind, fields and
    timestamps, oldest to newest) yield identical digests.  The hash is
    64-bit FNV-1a over a canonical per-record rendering — not
    cryptographic, but incremental (no materialised copy of the ring
    buffer) and stable across runs and processes. *)

val digest : Trace.t -> int64
(** Digest of every record currently held, oldest first.  The empty
    trace has the FNV offset basis as its digest.  When the ring
    overflowed, the number of dropped events is folded in as a final
    record, so a truncated trace never digests equal to a complete
    trace retaining the same window. *)

val hex : int64 -> string
(** 16-digit lowercase hex rendering. *)

val record_string : Trace.record -> string
(** The canonical rendering fed to the hash — one line per record;
    exposed for tests and for diffing two traces by eye. *)
