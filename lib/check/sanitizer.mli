(** Runtime invariant sanitizer.

    The static lint (tools/lint) keeps non-determinism out of the
    source; this module checks, during a run, that the simulation's
    *semantic* invariants hold.  It consumes the observability stream
    through {!Trace.set_tap} — no subsystem needs sanitizer-specific
    instrumentation — and polls the {!Metrics} registry on a sampled
    cadence, so arming it (the CLI's [--sanitize] flag) costs one extra
    closure call per trace event.

    Invariants checked:

    - {b CAUSALITY}: event timestamps never move backwards within one
      simulation.  A [Mark sim_start_mark] record (emitted by
      [Machine.create] / [Session.run_transfer]) declares a fresh
      simulation and resets the clock.
    - {b EARLY_FIRE}: a soft timer never fires before its deadline
      (paper §3: an event scheduled [T] ticks ahead fires after {e more}
      than [T] ticks).
    - {b OVERDUE}: a soft timer fires at most [overdue_periods] backup
      hard-clock periods, plus the longest interrupt dispatch observed
      so far, after its deadline (the paper's [T + X + 1] bound, with
      one extra period of slack for a latch-lost backup tick).
    - {b WHEEL_RESIDENCY}: the timing wheel's physically resident entry
      count stays within [2 * max pending slots] (the cancel-churn bound
      documented in {!Timing_wheel.resident}); read from the
      [softtimer.wheel_*] metrics probes on the counter cadence.
    - {b COUNTER_MONOTONE}: every registry counter is non-negative and
      never decreases (checked every [counter_check_every] events).

    Violations are collected into a report; with [fail_fast] (the mode
    tests use) the first violation raises {!Violation} instead. *)

type rule = Causality | Early_fire | Overdue | Residency | Counter_monotone

val rule_name : rule -> string
(** Stable machine-readable names: CAUSALITY, EARLY_FIRE, OVERDUE,
    WHEEL_RESIDENCY, COUNTER_MONOTONE. *)

type violation = { at : Time_ns.t; rule : rule; detail : string }

exception Violation of violation

type t

val create :
  ?fail_fast:bool ->
  ?hard_clock_hz:float ->
  ?overdue_periods:float ->
  ?counter_check_every:int ->
  ?max_reported:int ->
  ?registry:Metrics.t ->
  unit ->
  t
(** [fail_fast] (default [false]) raises on the first violation.
    [hard_clock_hz] (default 1000., the Pentium-II profile's backup
    clock) and [overdue_periods] (default 2.) parameterise the OVERDUE
    bound.  [counter_check_every] (default 4096) is the registry-scan
    cadence in trace events.  [max_reported] (default 32) bounds stored
    violations; the total count keeps counting past it.
    @raise Invalid_argument on non-positive parameters. *)

val install : t -> unit
(** Arm the sanitizer: becomes the process-wide trace tap (replacing any
    previous one) and sees every event until {!uninstall}. *)

val uninstall : t -> unit
(** Remove the process-wide tap, then run a final registry scan so
    counter/residency regressions near the end of a run are not
    missed.  No-op if this sanitizer was never installed. *)

val observe : t -> at:Time_ns.t -> Trace.event -> unit
(** Feed one event by hand — what the tap does internally; exposed so
    tests can inject invariant-violating histories (e.g. a fire before
    its deadline) without building a machine. *)

val check_wheel : t -> at:Time_ns.t -> resident:int -> pending:int -> slots:int -> unit
(** Assert the wheel-residency bound on explicit figures (tests, or
    wheels not registered in the metrics registry). *)

val scan_registry : t -> at:Time_ns.t -> unit
(** Force a counter/residency scan now instead of waiting for the
    cadence. *)

val violation_count : t -> int
val violations : t -> violation list
(** Oldest first; at most [max_reported] entries. *)

val ok : t -> bool
(** [violation_count t = 0]. *)

val events_seen : t -> int

val report : t -> string
(** Human-readable summary (one line per stored violation, plus
    totals); ends in a newline. *)
