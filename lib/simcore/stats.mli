(** Sample statistics.

    Two collectors are provided.  {!Online} accumulates count, mean and
    variance in O(1) space (Welford's algorithm) and is used where only
    moments are needed.  {!Sample} retains every observation so that
    medians, percentiles, maxima and tail fractions — the quantities in
    the paper's Table 1 — can be computed exactly. *)

module Online : sig
  type t

  val create : unit -> t
  val add : t -> float -> unit

  val clear : t -> unit
  (** Forget every observation. *)

  val count : t -> int
  val mean : t -> float
  (** [nan] when empty. *)

  val variance : t -> float
  (** Unbiased sample variance; [nan] with fewer than two points. *)

  val stddev : t -> float
  val min : t -> float
  val max : t -> float
  val sum : t -> float
  val merge : t -> t -> t
  (** Combine two collectors as if all points were added to one. *)
end

module Sample : sig
  type t

  val create : unit -> t
  val add : t -> float -> unit

  val clear : t -> unit
  (** Forget every observation (capacity is retained). *)

  val count : t -> int
  val mean : t -> float
  val stddev : t -> float
  val min : t -> float
  val max : t -> float

  val percentile : t -> float -> float
  (** [percentile t p] with [p] in [\[0, 100\]], linear interpolation
      between order statistics.  @raise Invalid_argument when empty or
      [p] out of range. *)

  val median : t -> float
  (** [percentile t 50.] *)

  val fraction_above : t -> float -> float
  (** [fraction_above t x] is the fraction of observations strictly
      greater than [x]; [0.] when empty. *)

  val sorted : t -> float array
  (** A sorted copy of the observations. *)

  val values : t -> float array
  (** Observations in insertion order (copy). *)
end
