(* 4-ary min-heap over (time, seq) int keys, parallel unboxed arrays.

   Layout: entry i's children are 4i+1 .. 4i+4.  A 4-ary heap does at
   most half the levels of a binary one; sift-down scans four sibling
   keys that sit adjacent in [kt], which the prefetcher likes.  All
   three arrays move together so an entry's key and payload share an
   index.

   The compiler is not flambda, so the hot paths avoid cross-function
   indirection and use unsafe array accesses.  Safety argument: every
   index is bounded by [t.size], and [t.size <= Array.length t.kt =
   Array.length t.ks = Array.length t.kp] is maintained by [push]
   (which grows first) and only ever decreased elsewhere. *)

type t = {
  mutable kt : int array;  (* time keys *)
  mutable ks : int array;  (* seq tie-breakers (unique) *)
  mutable kp : int array;  (* payloads (engine slot indices) *)
  mutable size : int;
}

let create ?(capacity = 256) () =
  let capacity = if capacity < 4 then 4 else capacity in
  {
    kt = Array.make capacity 0;
    ks = Array.make capacity 0;
    kp = Array.make capacity 0;
    size = 0;
  }

let length t = t.size
let is_empty t = t.size = 0
let capacity t = Array.length t.kt

let grow t =
  let cap = Array.length t.kt in
  let ncap = cap * 2 in
  let nkt = Array.make ncap 0 and nks = Array.make ncap 0 and nkp = Array.make ncap 0 in
  Array.blit t.kt 0 nkt 0 t.size;
  Array.blit t.ks 0 nks 0 t.size;
  Array.blit t.kp 0 nkp 0 t.size;
  t.kt <- nkt;
  t.ks <- nks;
  t.kp <- nkp

(* Move the hole at [i] up until [(time, seq)] fits (lexicographic;
   seqs are unique so strict compares suffice), then write the entry.
   Writing once at the end beats repeated triple swaps. *)
let[@hot] rec sift_up t i ~time ~seq ~payload =
  let fits =
    i = 0
    ||
    let parent = (i - 1) / 4 in
    let pt = Array.unsafe_get t.kt parent in
    not (time < pt || (time = pt && seq < Array.unsafe_get t.ks parent))
  in
  if fits then begin
    Array.unsafe_set t.kt i time;
    Array.unsafe_set t.ks i seq;
    Array.unsafe_set t.kp i payload
  end
  else begin
    let parent = (i - 1) / 4 in
    Array.unsafe_set t.kt i (Array.unsafe_get t.kt parent);
    Array.unsafe_set t.ks i (Array.unsafe_get t.ks parent);
    Array.unsafe_set t.kp i (Array.unsafe_get t.kp parent);
    sift_up t parent ~time ~seq ~payload
  end

let[@hot] push t ~time ~seq ~payload =
  if t.size = Array.length t.kt then grow t;
  let i = t.size in
  t.size <- i + 1;
  sift_up t i ~time ~seq ~payload

let min_time t = t.kt.(0)
let min_seq t = t.ks.(0)
let min_payload t = t.kp.(0)

(* Sift the entry [time, seq, payload] down from the hole at [i]. *)
let[@hot] rec sift_down t i ~time ~seq ~payload =
  let first = (4 * i) + 1 in
  if first >= t.size then begin
    Array.unsafe_set t.kt i time;
    Array.unsafe_set t.ks i seq;
    Array.unsafe_set t.kp i payload
  end
  else begin
    (* Smallest of up to four children. *)
    let last = first + 3 in
    let last = if last < t.size then last else t.size - 1 in
    let best = ref first in
    let bt = ref (Array.unsafe_get t.kt first) in
    let bs = ref (Array.unsafe_get t.ks first) in
    for c = first + 1 to last do
      let ct = Array.unsafe_get t.kt c in
      if ct < !bt || (ct = !bt && Array.unsafe_get t.ks c < !bs) then begin
        best := c;
        bt := ct;
        bs := Array.unsafe_get t.ks c
      end
    done;
    if !bt < time || (!bt = time && !bs < seq) then begin
      let b = !best in
      Array.unsafe_set t.kt i !bt;
      Array.unsafe_set t.ks i !bs;
      Array.unsafe_set t.kp i (Array.unsafe_get t.kp b);
      sift_down t b ~time ~seq ~payload
    end
    else begin
      Array.unsafe_set t.kt i time;
      Array.unsafe_set t.ks i seq;
      Array.unsafe_set t.kp i payload
    end
  end

let[@hot] drop_min t =
  if t.size > 0 then begin
    let n = t.size - 1 in
    t.size <- n;
    if n > 0 then
      sift_down t 0 ~time:(Array.unsafe_get t.kt n) ~seq:(Array.unsafe_get t.ks n)
        ~payload:(Array.unsafe_get t.kp n)
  end

let clear t = t.size <- 0

let iter t f =
  for i = 0 to t.size - 1 do
    f ~time:t.kt.(i) ~seq:t.ks.(i) ~payload:t.kp.(i)
  done

(* Floyd heap construction: compact the survivors to a prefix, then
   heapify bottom-up in O(n). *)
let rebuild t ~keep =
  let n = t.size in
  let w = ref 0 in
  for r = 0 to n - 1 do
    if keep ~seq:t.ks.(r) ~payload:t.kp.(r) then begin
      let i = !w in
      t.kt.(i) <- t.kt.(r);
      t.ks.(i) <- t.ks.(r);
      t.kp.(i) <- t.kp.(r);
      w := i + 1
    end
  done;
  t.size <- !w;
  for i = ((t.size - 2) / 4) downto 0 do
    sift_down t i ~time:t.kt.(i) ~seq:t.ks.(i) ~payload:t.kp.(i)
  done

let to_sorted t =
  let copy =
    {
      kt = Array.sub t.kt 0 t.size;
      ks = Array.sub t.ks 0 t.size;
      kp = Array.sub t.kp 0 t.size;
      size = t.size;
    }
  in
  let acc = ref [] in
  while not (is_empty copy) do
    acc := (min_time copy, min_seq copy, min_payload copy) :: !acc;
    drop_min copy
  done;
  List.rev !acc
