module Online = struct
  type t = {
    mutable n : int;
    mutable mean : float;
    mutable m2 : float;
    mutable min : float;
    mutable max : float;
    mutable sum : float;
  }

  let create () =
    { n = 0; mean = 0.0; m2 = 0.0; min = infinity; max = neg_infinity; sum = 0.0 }

  let add t x =
    t.n <- t.n + 1;
    let delta = x -. t.mean in
    t.mean <- t.mean +. (delta /. float_of_int t.n);
    t.m2 <- t.m2 +. (delta *. (x -. t.mean));
    if x < t.min then t.min <- x;
    if x > t.max then t.max <- x;
    t.sum <- t.sum +. x

  let clear t =
    t.n <- 0;
    t.mean <- 0.0;
    t.m2 <- 0.0;
    t.min <- infinity;
    t.max <- neg_infinity;
    t.sum <- 0.0

  let count t = t.n
  let mean t = if t.n = 0 then nan else t.mean
  let variance t = if t.n < 2 then nan else t.m2 /. float_of_int (t.n - 1)
  let stddev t = sqrt (variance t)
  let min t = t.min
  let max t = t.max
  let sum t = t.sum

  let merge a b =
    if a.n = 0 then { b with n = b.n }
    else if b.n = 0 then { a with n = a.n }
    else begin
      let n = a.n + b.n in
      let delta = b.mean -. a.mean in
      let mean = a.mean +. (delta *. float_of_int b.n /. float_of_int n) in
      let m2 =
        a.m2 +. b.m2
        +. (delta *. delta *. float_of_int a.n *. float_of_int b.n /. float_of_int n)
      in
      {
        n;
        mean;
        m2;
        min = Float.min a.min b.min;
        max = Float.max a.max b.max;
        sum = a.sum +. b.sum;
      }
    end
end

module Sample = struct
  type t = {
    mutable data : float array;
    mutable size : int;
    mutable sorted_cache : float array option;
    online : Online.t;
  }

  let create () = { data = [||]; size = 0; sorted_cache = None; online = Online.create () }

  let add t x =
    let cap = Array.length t.data in
    if t.size = cap then begin
      let ncap = if cap = 0 then 64 else cap * 2 in
      let ndata = Array.make ncap 0.0 in
      Array.blit t.data 0 ndata 0 t.size;
      t.data <- ndata
    end;
    t.data.(t.size) <- x;
    t.size <- t.size + 1;
    t.sorted_cache <- None;
    Online.add t.online x

  let clear t =
    t.size <- 0;
    t.sorted_cache <- None;
    Online.clear t.online

  let count t = t.size
  let mean t = Online.mean t.online
  let stddev t = Online.stddev t.online
  let min t = Online.min t.online
  let max t = Online.max t.online

  let sorted t =
    match t.sorted_cache with
    | Some s -> s
    | None ->
      let s = Array.sub t.data 0 t.size in
      Array.sort Float.compare s;
      t.sorted_cache <- Some s;
      s

  let percentile t p =
    if t.size = 0 then invalid_arg "Stats.Sample.percentile: empty sample";
    if p < 0.0 || p > 100.0 then invalid_arg "Stats.Sample.percentile: p out of range";
    let s = sorted t in
    let n = Array.length s in
    if n = 1 then s.(0)
    else begin
      let rank = p /. 100.0 *. float_of_int (n - 1) in
      let lo = int_of_float (Float.floor rank) in
      let hi = Stdlib.min (lo + 1) (n - 1) in
      let frac = rank -. float_of_int lo in
      s.(lo) +. (frac *. (s.(hi) -. s.(lo)))
    end

  let median t = percentile t 50.0

  let fraction_above t x =
    if t.size = 0 then 0.0
    else begin
      (* Binary search over the sorted copy for the first index > x. *)
      let s = sorted t in
      let n = Array.length s in
      let rec search lo hi = if lo >= hi then lo else begin
        let mid = (lo + hi) / 2 in
        if s.(mid) <= x then search (mid + 1) hi else search lo mid
      end in
      let first_above = search 0 n in
      float_of_int (n - first_above) /. float_of_int n
    end

  let values t = Array.sub t.data 0 t.size
end
