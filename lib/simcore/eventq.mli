(** Specialized event-queue heap for the simulation engine.

    A 4-ary min-heap over [(time, seq)] keys with an [int] payload,
    stored as three parallel unboxed [int array]s.  Compared to the
    generic {!Heap} (closure comparison over boxed records whose
    [int64] time field lives behind a pointer), every comparison here
    is a monomorphic immediate-int compare against a flat array — no
    indirection, no allocation, and a 4-ary layout that halves the
    tree depth and keeps sibling keys in one or two cache lines.

    Keys are [(time, seq)] ordered lexicographically: [time] is the
    instant in integer nanoseconds and [seq] a unique, monotonically
    increasing tie-breaker, so equal-time entries pop in push (FIFO)
    order.  The payload is an arbitrary [int] (the engine stores a
    slot-table index).

    Times and sequence numbers must be non-negative and fit in an
    OCaml [int] (63-bit: ~292 simulated years in nanoseconds), which
    every simulation in this project satisfies by construction.

    Operations never allocate except when the backing arrays grow. *)

type t

val create : ?capacity:int -> unit -> t
(** An empty queue.  [capacity] (default 256) pre-sizes the arrays. *)

val length : t -> int
(** Entries currently stored, including any the owner considers dead
    ({!rebuild} is how dead entries are shed). *)

val is_empty : t -> bool

val capacity : t -> int
(** Length of each backing array (≥ {!length}); what the queue's
    memory footprint is proportional to. *)

val push : t -> time:int -> seq:int -> payload:int -> unit
(** Insert an entry.  O(log4 n), allocation-free when within
    capacity. *)

val min_time : t -> int
(** Key/payload of the minimum entry.  Undefined (but memory-safe)
    when empty; guard with {!is_empty}. *)

val min_seq : t -> int
val min_payload : t -> int

val drop_min : t -> unit
(** Remove the minimum entry.  No-op when empty. *)

val clear : t -> unit
(** Remove all entries (keeps the backing arrays). *)

val iter : t -> (time:int -> seq:int -> payload:int -> unit) -> unit
(** Visit every entry in unspecified order. *)

val rebuild : t -> keep:(seq:int -> payload:int -> bool) -> unit
(** Drop every entry [keep] rejects (judged by its unique [seq] and
    its payload), then restore the heap invariant in place.  O(n); the
    engine's lazy-cancellation compaction choke point. *)

val to_sorted : t -> (int * int * int) list
(** [(time, seq, payload)] triples in ascending key order,
    non-destructively.  O(n log n); for tests and debugging. *)
