(* The event queue is an {!Eventq} (4-ary heap over unboxed (time,
   seq) int keys) whose payloads index a slot table of pooled event
   records.  Scheduling allocates nothing beyond the caller's closure:
   a slot is popped from the freelist, mutated in place, and its index
   pushed into the heap; firing or cancelling returns it.

   Handles are immediate ints packing (seq, slot index).  [seq] is
   unique per engine, so a handle stays valid across slot reuse: a
   stale handle's seq no longer matches the slot's occupant and every
   handle operation degrades to a no-op, exactly the semantics the old
   record-per-event representation had.

   Cancellation is lazy (the heap entry stays behind and is skipped on
   pop) with threshold-triggered compaction: once dead entries exceed
   both a floor and half the queue, one O(n) {!Eventq.rebuild} sheds
   them, so cancel-heavy workloads (rate-based clocking reschedules
   per packet) keep O(live) residency — the same fix PR 1 applied to
   the timing wheel.

   Times ride as immediate ints internally ([Time_ns.t] is int64 at
   the API); the boxed clock is refreshed only when the clock actually
   advances, so same-instant event cascades re-box nothing. *)

type slot = {
  mutable seq : int;  (* unique id of the occupant; -1 when free *)
  mutable action : unit -> unit;
}

(* Handle layout: [seq lsl idx_bits | idx].  25 index bits allow 33M
   concurrent events; the remaining 37 seq bits allow 1.4e11 schedules
   per engine.  Both are far beyond any simulation here and checked
   where cheap. *)
let idx_bits = 25
let idx_mask = (1 lsl idx_bits) - 1

type handle = int

type t = {
  mutable clock : Time_ns.t;  (* boxed mirror of [clock_i] *)
  mutable clock_i : int;
  mutable next_seq : int;
  mutable live : int;  (* scheduled, not yet run, not cancelled *)
  mutable dead : int;  (* cancelled entries still in the heap *)
  q : Eventq.t;
  mutable slots : slot array;
  mutable free : int array;  (* stack of free slot indices *)
  mutable free_top : int;
}

let nop () = ()

let create () =
  {
    clock = Time_ns.zero;
    clock_i = 0;
    next_seq = 0;
    live = 0;
    dead = 0;
    q = Eventq.create ();
    slots = [||];
    free = [||];
    free_top = 0;
  }

let now t = t.clock
let pending t = t.live

let queue_length t = Eventq.length t.q
(* Heap residency including dead entries; exposed so tests can bound
   the lazy-cancellation overhead. *)

(* Array.make needs a fill element; every new index is immediately
   overwritten with a fresh record by [alloc_slot].  RACE002: written
   once at module init and never mutated afterwards (its fields only
   exist to satisfy the slot type), so sharing it across domains is
   safe. *)
let dummy_slot = { seq = -1; action = nop } [@@lint.allow "RACE002"]

let grow_slots t =
  let cap = Array.length t.slots in
  let ncap = if cap = 0 then 16 else cap * 2 in
  if ncap > idx_mask then invalid_arg "Engine: too many concurrent events";
  let nslots = Array.make ncap dummy_slot in
  Array.blit t.slots 0 nslots 0 cap;
  t.slots <- nslots

(* [t.free_top <= Array.length t.free] always; the unsafe accesses
   below stay inside the in-capacity branches. *)
let free_push t idx =
  let cap = Array.length t.free in
  if t.free_top = cap then begin
    let ncap = if cap = 0 then 16 else cap * 2 in
    let nfree = Array.make ncap 0 in
    Array.blit t.free 0 nfree 0 t.free_top;
    t.free <- nfree
  end;
  Array.unsafe_set t.free t.free_top idx;
  t.free_top <- t.free_top + 1

(* The freed slot keeps its action closure until the slot is reused:
   clearing it to [nop] would cost a write barrier per event, and the
   retention is bounded by the engine's peak concurrency. *)
let release t idx (s : slot) =
  s.seq <- -1;
  free_push t idx

(* Pop a free slot index, growing the table when exhausted. *)
let alloc_slot t =
  if t.free_top = 0 then begin
    let cap = Array.length t.slots in
    grow_slots t;
    let ncap = Array.length t.slots in
    (* Push new indices high-to-low so the lowest pops first.
       ALLOC002: the fresh records are pool growth — amortized O(1)
       per schedule and precisely the allocation the pool exists to
       front-load. *)
    for i = ncap - 1 downto cap do
      t.slots.(i) <- ({ seq = -1; action = nop } [@lint.allow "ALLOC002"]);
      free_push t i
    done
  end;
  let top = t.free_top - 1 in
  t.free_top <- top;
  Array.unsafe_get t.free top

let[@hot] schedule_i t time_i f =
  let idx = alloc_slot t in
  let s = Array.unsafe_get t.slots idx in
  let seq = t.next_seq in
  t.next_seq <- seq + 1;
  s.seq <- seq;
  s.action <- f;
  t.live <- t.live + 1;
  Eventq.push t.q ~time:time_i ~seq ~payload:idx;
  (seq lsl idx_bits) lor idx

let[@hot] schedule_at t time f =
  let time_i = Int64.to_int time in
  (* Clamp times in the past (including anything that overflowed the
     int range) to the current instant. *)
  let time_i = if time_i < t.clock_i then t.clock_i else time_i in
  schedule_i t time_i f

(* All-immediate arithmetic: no boxed intermediates on the relative
   scheduling path every subsystem uses. *)
let[@hot] schedule_after t d f =
  let d_i = Int64.to_int d in
  let d_i = if d_i < 0 then 0 else d_i in
  schedule_i t (t.clock_i + d_i) f

(* An entry is live iff its seq still matches the slot occupant's:
   firing and cancelling invalidate the slot, and slot reuse installs
   a fresh seq.  Payloads in the queue always index within [t.slots]
   (the table never shrinks), so the lookups are unsafe-safe. *)

let is_scheduled t h =
  let idx = h land idx_mask in
  idx < Array.length t.slots && (Array.unsafe_get t.slots idx).seq = h lsr idx_bits

(* Shed dead heap entries once they exceed both a floor (compaction is
   O(n); don't bother for small queues) and half the residency (so the
   amortized cost per cancel is O(1) and residency stays O(live)). *)
let compact_threshold = 64

let maybe_compact t =
  if t.dead > compact_threshold && t.dead * 2 > Eventq.length t.q then begin
    (* ALLOC001: the [~keep] closure is one allocation per O(n)
       compaction, not per cancel — amortized away by the threshold. *)
    Eventq.rebuild t.q
      ~keep:((fun ~seq ~payload -> t.slots.(payload).seq = seq) [@lint.allow "ALLOC001"]);
    t.dead <- 0
  end

let[@hot] cancel t h =
  let idx = h land idx_mask in
  if idx < Array.length t.slots then begin
    let s = Array.unsafe_get t.slots idx in
    if s.seq = h lsr idx_bits then begin
      release t idx s;
      t.live <- t.live - 1;
      t.dead <- t.dead + 1;
      maybe_compact t
    end
  end

(* The single choke point that skips lazily-cancelled entries: after
   [drop_stale] the queue is either empty or headed by a live event.
   Both [step] and [run_until] go through it. *)
let[@hot] drop_stale t =
  let q = t.q in
  while
    (not (Eventq.is_empty q))
    && (Array.unsafe_get t.slots (Eventq.min_payload q)).seq <> Eventq.min_seq q
  do
    Eventq.drop_min q;
    t.dead <- t.dead - 1
  done

(* Fire the head event (caller guarantees it is live): advance the
   clock, release the slot, then run the action.  The slot is released
   before the action runs so the handle reads as no-longer-scheduled
   inside its own handler, matching the old state-machine order. *)
let[@hot] fire_head t =
  let q = t.q in
  let time = Eventq.min_time q in
  let idx = Eventq.min_payload q in
  Eventq.drop_min q;
  let s = Array.unsafe_get t.slots idx in
  let action = s.action in
  release t idx s;
  t.live <- t.live - 1;
  if time > t.clock_i then begin
    t.clock_i <- time;
    (* ALLOC003: the boxed mirror is refreshed only when the clock
       actually advances; same-instant cascades skip this branch. *)
    t.clock <- (Int64.of_int time [@lint.allow "ALLOC003"])
  end;
  action ()

let[@hot] step t =
  drop_stale t;
  if Eventq.is_empty t.q then false
  else begin
    fire_head t;
    true
  end

let[@hot] run_until t limit =
  let limit_i = Int64.to_int (Time_ns.max limit 0L) in
  (* A while loop rather than a local [let rec loop]: the recursive
     closure captured [t]/[limit_i] and cost one allocation per call;
     the [continue] ref compiles to a stack variable
     (Simplif.eliminate_ref). *)
  let continue = ref true in
  while !continue do
    drop_stale t;
    if Eventq.is_empty t.q then continue := false
    else begin
      (* Immediate-int key comparison (DET003 targets boxed Time_ns). *)
      let head = Eventq.min_time t.q in
      if head <= limit_i then fire_head t else continue := false
    end
  done;
  if limit_i > t.clock_i then begin
    t.clock_i <- limit_i;
    t.clock <- limit
  end

let run t = while step t do () done
