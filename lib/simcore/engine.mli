(** Discrete-event simulation engine.

    A single-threaded engine with a virtual clock: events are closures
    scheduled at absolute instants and executed in time order.  Ties are
    broken by scheduling order (FIFO among simultaneous events), which
    together with the explicit {!Prng} streams makes whole simulations
    bit-for-bit reproducible.

    Handlers may schedule and cancel further events freely, including at
    the current instant (such events run before the clock advances).

    The queue is a specialized 4-ary heap over unboxed integer keys
    ({!Eventq}) backed by a pool of event slots, so scheduling performs
    no allocation beyond the caller's closure and cancellation is lazy
    with threshold-triggered compaction (residency stays proportional
    to the number of pending events even under heavy cancel/reschedule
    churn).  See DESIGN.md §8.4. *)

type t

type handle
(** Identifies a scheduled event so it can be cancelled.  Handles are
    immediate ints (no allocation) and remain safe to use after the
    event has run or been cancelled: every operation on a stale handle
    is a no-op. *)

val create : unit -> t
(** A fresh engine with the clock at {!Time_ns.zero} and no events. *)

val now : t -> Time_ns.t
(** Current virtual time. *)

val pending : t -> int
(** Number of scheduled, not-yet-run, not-cancelled events. *)

val queue_length : t -> int
(** Internal heap residency, including lazily-cancelled entries not
    yet compacted away ([>= pending t]).  Exposed so tests can bound
    the compaction policy; not part of the simulation semantics. *)

val schedule_at : t -> Time_ns.t -> (unit -> unit) -> handle
(** [schedule_at t time f] runs [f] when the clock reaches [time].
    Times in the past are clamped to [now t] (the event runs as soon as
    control returns to the event loop). *)

val schedule_after : t -> Time_ns.span -> (unit -> unit) -> handle
(** [schedule_after t d f] is [schedule_at t (now t + max d 0)]. *)

val cancel : t -> handle -> unit
(** Prevent the event from running.  Cancelling an already-run or
    already-cancelled event is a no-op. *)

val is_scheduled : t -> handle -> bool
(** Whether the event is still pending (not run, not cancelled). *)

val run_until : t -> Time_ns.t -> unit
(** Execute events in order until the queue is exhausted or the next
    event lies strictly beyond the limit, then set the clock to the
    limit. *)

val run : t -> unit
(** Execute events until none remain.  Diverges if handlers schedule
    unboundedly. *)

val step : t -> bool
(** Execute the single next event.  Returns [false] when no event was
    available. *)
