type t = {
  lo : float;
  hi : float;
  bins : int;
  width : float;
  counts : int array;  (* length bins + 1; last is overflow *)
  mutable underflow : int;  (* observations below lo *)
  mutable total : int;
}

let create ~lo ~hi ~bins =
  if bins <= 0 then invalid_arg "Histogram.create: bins must be positive";
  if hi <= lo then invalid_arg "Histogram.create: hi must exceed lo";
  {
    lo;
    hi;
    bins;
    width = (hi -. lo) /. float_of_int bins;
    counts = Array.make (bins + 1) 0;
    underflow = 0;
    total = 0;
  }

(* Bin index for an in-range or overflowing value; callers route x < lo
   to the underflow bucket first.  Folding underflow into bin 0 (the old
   behaviour) silently inflated the first CDF step. *)
let index t x =
  if x >= t.hi then t.bins
  else begin
    let i = int_of_float ((x -. t.lo) /. t.width) in
    if i >= t.bins then t.bins - 1 else if i < 0 then 0 else i
  end

let add t x =
  if x < t.lo then t.underflow <- t.underflow + 1
  else t.counts.(index t x) <- t.counts.(index t x) + 1;
  t.total <- t.total + 1

let count t = t.total
let underflow_count t = t.underflow

let bin_count t i =
  if i < 0 || i > t.bins then invalid_arg "Histogram.bin_count: index out of range";
  t.counts.(i)

let bin_edges t i =
  if i < 0 || i > t.bins then invalid_arg "Histogram.bin_edges: index out of range";
  if i = t.bins then (t.hi, infinity)
  else (t.lo +. (float_of_int i *. t.width), t.lo +. (float_of_int (i + 1) *. t.width))

let cdf_at t x =
  if t.total = 0 then 0.0
  else begin
    (* The underflow bucket covers (-inf, lo): entirely at or below [x]
       exactly when [lo <= x]. *)
    let acc = ref (if t.lo <= x then t.underflow else 0) in
    for i = 0 to t.bins do
      let _, hi_edge = bin_edges t i in
      if hi_edge <= x then acc := !acc + t.counts.(i)
    done;
    float_of_int !acc /. float_of_int t.total
  end

let cdf_points t =
  let acc = ref t.underflow in
  let frac n = if t.total = 0 then 0.0 else float_of_int n /. float_of_int t.total in
  let points = ref [ (t.lo, frac t.underflow) ] in
  for i = 0 to t.bins do
    acc := !acc + t.counts.(i);
    let edge = if i = t.bins then t.hi else snd (bin_edges t i) in
    points := (edge, frac !acc) :: !points
  done;
  List.rev !points

let render_ascii ?(width = 72) ?(height = 20) ~series () =
  match series with
  | [] -> ""
  | (_, first) :: _ ->
    let lo = first.lo and hi = first.hi in
    let buf = Buffer.create 4096 in
    let grid = Array.make_matrix height width ' ' in
    let markers = [| '*'; 'o'; '+'; 'x'; '#'; '@'; '%'; '&' |] in
    List.iteri
      (fun si (_, h) ->
        let marker = markers.(si mod Array.length markers) in
        for col = 0 to width - 1 do
          let x = lo +. ((hi -. lo) *. float_of_int col /. float_of_int (width - 1)) in
          let y = cdf_at h x in
          let row = height - 1 - int_of_float (y *. float_of_int (height - 1)) in
          let row = Stdlib.max 0 (Stdlib.min (height - 1) row) in
          grid.(row).(col) <- marker
        done)
      series;
    Buffer.add_string buf
      (Printf.sprintf "  CDF (y: 0..100%%, x: %.0f..%.0f us)\n" lo hi);
    Array.iteri
      (fun i row ->
        let label =
          if i = 0 then "100%|"
          else if i = height - 1 then "  0%|"
          else "    |"
        in
        Buffer.add_string buf label;
        Buffer.add_string buf (String.init width (fun j -> row.(j)));
        Buffer.add_char buf '\n')
      grid;
    Buffer.add_string buf ("    +" ^ String.make width '-' ^ "\n");
    List.iteri
      (fun si (name, _) ->
        Buffer.add_string buf
          (Printf.sprintf "      %c %s\n" markers.(si mod Array.length markers) name))
      series;
    Buffer.contents buf
