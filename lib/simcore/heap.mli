(** Array-based binary min-heap.

    The heap is the backing store of the simulation event queue and of
    the reference timer implementation that the timing wheel is tested
    against.  Elements are ordered by the comparison supplied at
    creation; ties are resolved arbitrarily (the event queue layers a
    sequence number on top to obtain stable ordering). *)

type 'a t

val create : cmp:('a -> 'a -> int) -> 'a t
(** [create ~cmp] is an empty heap ordered by [cmp]. *)

val length : 'a t -> int
(** Number of elements currently stored. *)

val is_empty : 'a t -> bool

val capacity : 'a t -> int
(** Length of the backing array (≥ {!length}); what the heap's memory
    footprint is proportional to, as opposed to its live size. *)

val push : 'a t -> 'a -> unit
(** [push h x] inserts [x].  O(log n). *)

val peek : 'a t -> 'a option
(** Smallest element, or [None] when empty.  O(1). *)

val pop : 'a t -> 'a option
(** Remove and return the smallest element.  O(log n). *)

val pop_exn : 'a t -> 'a
(** Like {!pop}.  @raise Invalid_argument when empty. *)

val clear : 'a t -> unit
(** Remove all elements (keeps the backing array). *)

val filter_in_place : 'a t -> ('a -> bool) -> unit
(** Drop every element [keep] rejects, then restore the heap invariant
    in place (Floyd heapify).  O(n); the lazy-cancellation compaction
    choke point of the flag-cancelling timer backends. *)

val iter_unordered : 'a t -> ('a -> unit) -> unit
(** Visit every element in unspecified order. *)

val to_sorted_list : 'a t -> 'a list
(** Non-destructively extract all elements in ascending order.
    O(n log n); intended for tests and debugging. *)
