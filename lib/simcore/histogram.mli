(** Fixed-bin histograms and CDF extraction.

    Used to render the paper's cumulative-distribution figures (Figs. 4
    and 6) from trigger-interval samples.  Bins are uniform over
    [\[lo, hi)]; values below [lo] go to a dedicated underflow bucket
    and values at or above [hi] to a dedicated overflow bin, so
    out-of-range observations never distort the first or last in-range
    step of the CDF. *)

type t

val create : lo:float -> hi:float -> bins:int -> t
(** @raise Invalid_argument if [bins <= 0] or [hi <= lo]. *)

val add : t -> float -> unit

val count : t -> int
(** Total observations recorded, including under- and overflow. *)

val underflow_count : t -> int
(** Observations below [lo]. *)

val bin_count : t -> int -> int
(** Observations in bin [i] (the overflow bin is index [bins]).
    @raise Invalid_argument for out-of-range indices. *)

val bin_edges : t -> int -> float * float
(** [bin_edges t i] is the half-open value interval covered by bin [i];
    the overflow bin's upper edge is [infinity]. *)

val cdf_at : t -> float -> float
(** [cdf_at t x] is the fraction of observations in bins entirely at or
    below [x] — a staircase approximation of the empirical CDF with
    resolution equal to the bin width. *)

val cdf_points : t -> (float * float) list
(** [(upper_edge, cumulative_fraction)] for every bucket: the underflow
    bucket first (its edge reported as [lo]), then every bin, with the
    overflow bin last (its edge reported as [hi]); [bins + 2] points,
    suitable for plotting. *)

val render_ascii :
  ?width:int -> ?height:int -> series:(string * t) list -> unit -> string
(** A textual CDF plot of several histograms on common axes, used by the
    bench harness to reproduce the paper's CDF figures. [width] and
    [height] are the plot body size in characters. *)
