(* Tests for the TCP substrate: congestion-window accounting, the
   delayed-ACK receiver, the self-clocked sender, the paced sender and
   whole-transfer sessions over the WAN emulator, including delivery
   conservation properties. *)

let ms = Time_ns.of_ms
let us = Time_ns.of_us

(* ------------------------------------------------------------------ *)
(* Cwnd *)

let test_cwnd_slow_start_growth () =
  let c = Cwnd.create Tcp_types.default in
  Alcotest.(check int) "initial" 1 (Cwnd.window c);
  Alcotest.(check bool) "in slow start" true (Cwnd.in_slow_start c);
  Cwnd.on_ack c;
  Cwnd.on_ack c;
  Alcotest.(check int) "1 + 2 acks" 3 (Cwnd.window c);
  Alcotest.(check int) "acks seen" 2 (Cwnd.acks_seen c)

let test_cwnd_congestion_avoidance () =
  let c = Cwnd.create { Tcp_types.default with Tcp_types.ssthresh = 4; initial_cwnd = 4 } in
  Alcotest.(check bool) "out of slow start" false (Cwnd.in_slow_start c);
  for _ = 1 to 4 do
    Cwnd.on_ack c
  done;
  (* cwnd grows by ~1/cwnd per ACK: four ACKs at cwnd ~4 add just under
     one segment. *)
  Alcotest.(check int) "still 4 after four acks" 4 (Cwnd.window c);
  for _ = 1 to 5 do
    Cwnd.on_ack c
  done;
  Alcotest.(check int) "reaches 5 after nine" 5 (Cwnd.window c)

(* ------------------------------------------------------------------ *)
(* Receiver *)

let make_receiver ?(params = Tcp_types.default) e =
  let acks = ref [] in
  let r =
    Receiver.create e params ~send_ack:(fun now ~ack_upto -> acks := (now, ack_upto) :: !acks)
  in
  (r, acks)

let test_receiver_acks_every_second_segment () =
  let e = Engine.create () in
  let r, acks = make_receiver e in
  Receiver.on_data r ~seq:0;
  Alcotest.(check int) "no ack after 1 segment" 0 (List.length !acks);
  Receiver.on_data r ~seq:1;
  Alcotest.(check (list (pair int64 int))) "ack covers 2" [ (Time_ns.zero, 2) ] (List.rev !acks);
  Receiver.stop r

let test_receiver_heartbeat_flushes () =
  let e = Engine.create () in
  let r, acks = make_receiver e in
  Receiver.on_data r ~seq:0;
  Engine.run_until e (ms 450.0);
  Receiver.stop r;
  (* The 200 ms heartbeat flushed the single pending segment. *)
  match List.rev !acks with
  | [ (t, 1) ] -> Alcotest.(check int64) "flushed at 200ms boundary" (ms 200.0) t
  | other -> Alcotest.failf "unexpected acks (%d)" (List.length other)

let test_receiver_out_of_order_buffering () =
  let e = Engine.create () in
  let r, acks = make_receiver e in
  Receiver.on_data r ~seq:1;
  Receiver.on_data r ~seq:2;
  Alcotest.(check int) "nothing deliverable yet" 0 (Receiver.next_expected r);
  Receiver.on_data r ~seq:0;
  Alcotest.(check int) "hole filled, all delivered" 3 (Receiver.next_expected r);
  Alcotest.(check int) "cumulative ack covers 3" 3 (snd (List.hd !acks));
  Alcotest.(check int) "big-ack detector" 3 (Receiver.biggest_ack r);
  Receiver.stop r

let test_receiver_duplicate_ignored () =
  let e = Engine.create () in
  let r, _ = make_receiver e in
  Receiver.on_data r ~seq:0;
  Receiver.on_data r ~seq:0;
  Alcotest.(check int) "duplicate does not advance" 1 (Receiver.next_expected r);
  Receiver.stop r

let test_receiver_slow_reader_big_acks () =
  let e = Engine.create () in
  let r, acks = make_receiver e in
  Receiver.set_app_read_delay r (Some (ms 5.0));
  for seq = 0 to 9 do
    Receiver.on_data r ~seq
  done;
  Alcotest.(check int) "no ack before the app reads" 0 (List.length !acks);
  Engine.run_until e (ms 6.0);
  Receiver.stop r;
  Alcotest.(check int) "one big ack" 1 (List.length !acks);
  Alcotest.(check int) "covers all 10" 10 (snd (List.hd !acks));
  Alcotest.(check int) "biggest_ack" 10 (Receiver.biggest_ack r)

(* ------------------------------------------------------------------ *)
(* Sender *)

let test_sender_initial_window_and_growth () =
  let e = Engine.create () in
  let sent = ref [] in
  let s =
    Sender.create e Tcp_types.default ~total_segments:10
      ~transmit:(fun _ p -> sent := p.Packet.meta.Tcp_types.seq :: !sent)
      ()
  in
  Sender.start s;
  Alcotest.(check (list int)) "initial window of 1" [ 0 ] (List.rev !sent);
  Sender.on_ack s ~ack_upto:1;
  Alcotest.(check (list int)) "cwnd 2 after ack" [ 0; 1; 2 ] (List.rev !sent);
  Alcotest.(check int) "acked" 1 (Sender.acked s)

let test_sender_completion_and_burst_tracking () =
  let e = Engine.create () in
  let done_at = ref None in
  let s =
    Sender.create e
      { Tcp_types.default with Tcp_types.initial_cwnd = 4 }
      ~total_segments:4
      ~transmit:(fun _ _ -> ())
      ~on_complete:(fun t -> done_at := Some t)
      ()
  in
  Sender.start s;
  Alcotest.(check int) "burst of 4" 4 (Sender.max_burst_observed s);
  Sender.on_ack s ~ack_upto:4;
  Alcotest.(check bool) "complete" true (Sender.complete s);
  Alcotest.(check bool) "on_complete fired" true (!done_at <> None);
  (* Stale ACKs after completion are ignored. *)
  Sender.on_ack s ~ack_upto:4;
  Alcotest.(check int) "sent unchanged" 4 (Sender.sent s)

let test_sender_respects_awnd () =
  let e = Engine.create () in
  let sent = ref 0 in
  let s =
    Sender.create e
      { Tcp_types.default with Tcp_types.initial_cwnd = 100; awnd = 8 }
      ~total_segments:50
      ~transmit:(fun _ _ -> incr sent)
      ()
  in
  Sender.start s;
  Alcotest.(check int) "clamped by advertised window" 8 !sent

(* ------------------------------------------------------------------ *)
(* Loss recovery *)

let test_fast_retransmit_on_dupacks () =
  let e = Engine.create () in
  let sent = ref [] in
  let s =
    Sender.create e
      { Tcp_types.default with Tcp_types.initial_cwnd = 8 }
      ~total_segments:20
      ~transmit:(fun _ p -> sent := p.Packet.meta.Tcp_types.seq :: !sent)
      ()
  in
  Sender.start s;
  (* Segment 0 is lost; duplicate ACKs (ack_upto = 0) arrive. *)
  Sender.on_ack s ~ack_upto:0;
  Sender.on_ack s ~ack_upto:0;
  Alcotest.(check int) "no retransmit before 3 dupacks" 0 (Sender.retransmits s);
  Sender.on_ack s ~ack_upto:0;
  Alcotest.(check int) "fast retransmit on the 3rd" 1 (Sender.retransmits s);
  Alcotest.(check bool) "segment 0 retransmitted" true (List.mem 0 (List.tl (List.rev !sent)));
  (* More dupacks in the same window must not retransmit again. *)
  Sender.on_ack s ~ack_upto:0;
  Sender.on_ack s ~ack_upto:0;
  Sender.on_ack s ~ack_upto:0;
  Alcotest.(check int) "once per window" 1 (Sender.retransmits s);
  Sender.stop s

let test_rto_recovers_lost_window () =
  let e = Engine.create () in
  let sent = ref 0 in
  let s =
    Sender.create e Tcp_types.default ~total_segments:5 ~transmit:(fun _ _ -> incr sent) ()
  in
  Sender.start s;
  Alcotest.(check int) "one segment out" 1 !sent;
  (* No ACK ever arrives: the retransmission timer must fire. *)
  Engine.run_until e (Time_ns.of_sec 1.5);
  Alcotest.(check bool) "timeout retransmitted" true (Sender.retransmits s >= 1);
  Sender.stop s;
  let n = Sender.retransmits s in
  Engine.run_until e (Time_ns.of_sec 5.0);
  Alcotest.(check int) "stop cancels the timer" n (Sender.retransmits s)

let test_cwnd_loss_response () =
  let c = Cwnd.create { Tcp_types.default with Tcp_types.initial_cwnd = 16 } in
  Cwnd.on_timeout c ~flight:16;
  Alcotest.(check int) "timeout collapses to 1" 1 (Cwnd.window c);
  Alcotest.(check int) "ssthresh halved" 8 (Cwnd.ssthresh c);
  let c2 = Cwnd.create { Tcp_types.default with Tcp_types.initial_cwnd = 16 } in
  Cwnd.on_fast_retransmit c2 ~flight:16;
  Alcotest.(check int) "fast rtx halves" 8 (Cwnd.window c2)

let test_receiver_dup_acks_on_gap () =
  let e = Engine.create () in
  let acks = ref [] in
  let r =
    Receiver.create e Tcp_types.default ~send_ack:(fun _ ~ack_upto -> acks := ack_upto :: !acks)
  in
  Receiver.on_data r ~seq:0;
  Receiver.on_data r ~seq:1;  (* cumulative ack 2 *)
  Receiver.on_data r ~seq:3;  (* hole at 2 -> dup ack 2 *)
  Receiver.on_data r ~seq:4;  (* still hole -> dup ack 2 *)
  Alcotest.(check (list int)) "dup acks repeat the cumulative point" [ 2; 2; 2 ]
    (List.rev !acks);
  Receiver.stop r

let test_lossy_transfer_completes () =
  let r =
    Session.run_transfer ~bottleneck_bps:50e6 ~one_way_delay:(ms 50.0) ~wan_queue:16
      ~segments:500 `Regular
  in
  Alcotest.(check int) "all delivered despite drops" 500 r.Session.segments;
  Alcotest.(check bool) "losses occurred" true (r.Session.wan_drops > 0);
  Alcotest.(check bool) "losses repaired" true (r.Session.retransmits >= r.Session.wan_drops)

(* ------------------------------------------------------------------ *)
(* Paced sender *)

let test_paced_sender_spacing () =
  let e = Engine.create () in
  let times = ref [] in
  let s =
    Paced_sender.create e Tcp_types.default ~total_segments:5 ~interval:(us 100.0)
      ~transmit:(fun now _ -> times := now :: !times)
      ()
  in
  Paced_sender.start s;
  Engine.run e;
  let times = List.rev !times in
  Alcotest.(check int) "all sent" 5 (Paced_sender.sent s);
  List.iteri
    (fun i t -> Alcotest.(check int64) (Printf.sprintf "packet %d on schedule" i)
        (Time_ns.mul (us 100.0) i) t)
    times

let test_paced_sender_on_last_sent () =
  let e = Engine.create () in
  let last = ref None in
  let s =
    Paced_sender.create e Tcp_types.default ~total_segments:3 ~interval:(us 50.0)
      ~transmit:(fun _ _ -> ())
      ~on_last_sent:(fun t -> last := Some t)
      ()
  in
  Paced_sender.start s;
  Engine.run e;
  Alcotest.(check (option int64)) "last at 2 intervals" (Some (us 100.0)) !last

let test_paced_sender_with_jitter_monotone () =
  let e = Engine.create () in
  let rng = Prng.create ~seed:5 in
  let times = ref [] in
  let s =
    Paced_sender.create e Tcp_types.default ~total_segments:50 ~interval:(us 100.0)
      ~jitter:(fun () -> Time_ns.of_us (Prng.float_range rng 0.0 30.0))
      ~transmit:(fun now _ -> times := now :: !times)
      ()
  in
  Paced_sender.start s;
  Engine.run e;
  let times = Array.of_list (List.rev !times) in
  Alcotest.(check int) "all sent" 50 (Array.length times);
  (* The ideal grid advances by the interval regardless of jitter, so the
     average interval stays at ~100 us. *)
  let total = Time_ns.to_us Time_ns.(times.(49) - times.(0)) in
  Alcotest.(check bool) "average interval near 100us" true
    (total /. 49.0 > 95.0 && total /. 49.0 < 110.0)

(* ------------------------------------------------------------------ *)
(* Capacity estimation (packet pair) *)

let test_capacity_exact_on_clean_gaps () =
  let est = Capacity.create ~packet_bits:12_000 () in
  (* Back-to-back 1500 B packets through a 50 Mbps bottleneck arrive
     240 us apart. *)
  let t = ref Time_ns.zero in
  for _ = 1 to 10 do
    Capacity.on_arrival est !t;
    t := Time_ns.(!t + us 240.0)
  done;
  (match Capacity.estimate_bps est with
  | None -> Alcotest.fail "no estimate"
  | Some bps -> Alcotest.(check (float 1e4)) "50 Mbps" 50e6 bps);
  Alcotest.(check int) "9 gaps" 9 (Capacity.samples est)

let test_capacity_median_rejects_outliers () =
  let est = Capacity.create ~packet_bits:12_000 () in
  let t = ref Time_ns.zero in
  let arrive gap_us =
    t := Time_ns.(!t + us gap_us);
    Capacity.on_arrival est !t
  in
  Capacity.on_arrival est !t;
  (* Mostly clean 240 us gaps with a few stretched (cross traffic) and a
     compressed one (queueing artefact). *)
  List.iter arrive [ 240.; 240.; 950.; 240.; 240.; 60.; 240.; 1500.; 240. ];
  match Capacity.estimate_bps est with
  | None -> Alcotest.fail "no estimate"
  | Some bps -> Alcotest.(check (float 1e5)) "median survives outliers" 50e6 bps

let test_capacity_reset_burst () =
  let est = Capacity.create ~packet_bits:12_000 () in
  Capacity.on_arrival est Time_ns.zero;
  Capacity.reset_burst est;
  (* This arrival starts a new burst: the 5 ms inter-train gap must not
     become a (tiny) capacity sample. *)
  Capacity.on_arrival est (ms 5.0);
  Alcotest.(check int) "no sample across the reset" 0 (Capacity.samples est);
  Capacity.on_arrival est Time_ns.(ms 5.0 + us 240.0);
  Alcotest.(check int) "next gap counts" 1 (Capacity.samples est)

let test_capacity_pacing_interval () =
  let est = Capacity.create ~packet_bits:12_000 () in
  Alcotest.(check (option int64)) "no estimate yet" None
    (Capacity.pacing_interval est ~packet_bits:12_000);
  Capacity.on_arrival est Time_ns.zero;
  Capacity.on_arrival est (us 120.0);
  (match Capacity.pacing_interval est ~packet_bits:12_000 with
  | None -> Alcotest.fail "expected interval"
  | Some iv -> Alcotest.(check int64) "120 us at 100 Mbps" (us 120.0) iv);
  Alcotest.check_raises "bad packet size"
    (Invalid_argument "Capacity.create: packet_bits must be positive") (fun () ->
      ignore (Capacity.create ~packet_bits:0 ()))

(* ------------------------------------------------------------------ *)
(* Session: whole transfers over the WAN *)

let test_session_paced_response_time () =
  let r =
    Session.run_transfer ~bottleneck_bps:50e6 ~one_way_delay:(ms 50.0) ~segments:5 `Paced
  in
  (* 100 ms of propagation (request + first data) + 5 x 240 us. *)
  let rt = Time_ns.to_ms r.Session.response_time in
  Alcotest.(check bool) (Printf.sprintf "~101.3ms (got %.1f)" rt) true (rt > 100.5 && rt < 102.5);
  Alcotest.(check int) "no drops" 0 r.Session.wan_drops;
  Alcotest.(check int) "paced sender never bursts" 1 r.Session.max_burst

let test_session_regular_slower_on_high_bdp () =
  let regular =
    Session.run_transfer ~bottleneck_bps:50e6 ~one_way_delay:(ms 50.0) ~segments:100 `Regular
  in
  let paced =
    Session.run_transfer ~bottleneck_bps:50e6 ~one_way_delay:(ms 50.0) ~segments:100 `Paced
  in
  Alcotest.(check bool) "slow start is several times slower" true
    (Time_ns.to_ms regular.Session.response_time
    > 4.0 *. Time_ns.to_ms paced.Session.response_time);
  Alcotest.(check bool) "regular uses multi-packet bursts" true (regular.Session.max_burst >= 2)

let test_session_throughput_consistency () =
  let r =
    Session.run_transfer ~bottleneck_bps:100e6 ~one_way_delay:(ms 50.0) ~segments:1000 `Paced
  in
  let expected = float_of_int (1000 * 1448 * 8) /. Time_ns.to_sec r.Session.response_time in
  Alcotest.(check (float 1.0)) "throughput = payload bits / response time" expected
    r.Session.throughput_bps

let test_session_jitter_mode_completes () =
  let rng = Prng.create ~seed:9 in
  let r =
    Session.run_transfer ~bottleneck_bps:50e6 ~one_way_delay:(ms 50.0) ~segments:50
      (`Paced_jitter (fun () -> Time_ns.of_us (Prng.float_range rng 0.0 60.0)))
  in
  Alcotest.(check int) "all delivered" 50 r.Session.segments;
  Alcotest.(check bool) "slower than exact pacing but sane" true
    (Time_ns.to_ms r.Session.response_time < 200.0)

(* Property: for random transfer sizes and bandwidths, both modes
   deliver every segment exactly once (the receiver's next_expected
   reaches the total), with no WAN drops in the default configuration. *)
let test_session_conservation =
  QCheck.Test.make ~name:"transfers complete without loss" ~count:25
    QCheck.(pair (int_range 1 400) (int_range 10 100))
    (fun (segments, mbps) ->
      let run mode =
        Session.run_transfer ~bottleneck_bps:(float_of_int mbps *. 1e6)
          ~one_way_delay:(ms 20.0) ~segments mode
      in
      let r = run `Regular and p = run `Paced in
      r.Session.segments = segments && p.Session.segments = segments
      && r.Session.wan_drops = 0 && p.Session.wan_drops = 0
      && Time_ns.(r.Session.response_time > 0L)
      && Time_ns.(p.Session.response_time <= r.Session.response_time))

let test_bottleneck_interval () =
  let iv = Session.bottleneck_interval ~bottleneck_bps:100e6 () in
  Alcotest.(check int64) "1500B at 100Mbps = 120us" (us 120.0) iv

let () =
  let qc = QCheck_alcotest.to_alcotest in
  Alcotest.run "tcp"
    [
      ( "cwnd",
        [
          Alcotest.test_case "slow-start growth" `Quick test_cwnd_slow_start_growth;
          Alcotest.test_case "congestion avoidance" `Quick test_cwnd_congestion_avoidance;
        ] );
      ( "receiver",
        [
          Alcotest.test_case "delayed ack every 2nd" `Quick test_receiver_acks_every_second_segment;
          Alcotest.test_case "heartbeat flushes" `Quick test_receiver_heartbeat_flushes;
          Alcotest.test_case "out-of-order buffering" `Quick test_receiver_out_of_order_buffering;
          Alcotest.test_case "duplicates ignored" `Quick test_receiver_duplicate_ignored;
          Alcotest.test_case "slow reader -> big ACK" `Quick test_receiver_slow_reader_big_acks;
        ] );
      ( "sender",
        [
          Alcotest.test_case "initial window and growth" `Quick test_sender_initial_window_and_growth;
          Alcotest.test_case "completion and bursts" `Quick test_sender_completion_and_burst_tracking;
          Alcotest.test_case "advertised window" `Quick test_sender_respects_awnd;
        ] );
      ( "loss-recovery",
        [
          Alcotest.test_case "fast retransmit" `Quick test_fast_retransmit_on_dupacks;
          Alcotest.test_case "rto" `Quick test_rto_recovers_lost_window;
          Alcotest.test_case "cwnd loss response" `Quick test_cwnd_loss_response;
          Alcotest.test_case "receiver dup acks" `Quick test_receiver_dup_acks_on_gap;
          Alcotest.test_case "lossy transfer completes" `Slow test_lossy_transfer_completes;
        ] );
      ( "paced_sender",
        [
          Alcotest.test_case "exact spacing" `Quick test_paced_sender_spacing;
          Alcotest.test_case "on_last_sent" `Quick test_paced_sender_on_last_sent;
          Alcotest.test_case "jitter keeps average rate" `Quick test_paced_sender_with_jitter_monotone;
        ] );
      ( "capacity",
        [
          Alcotest.test_case "exact on clean gaps" `Quick test_capacity_exact_on_clean_gaps;
          Alcotest.test_case "median rejects outliers" `Quick test_capacity_median_rejects_outliers;
          Alcotest.test_case "reset between bursts" `Quick test_capacity_reset_burst;
          Alcotest.test_case "pacing interval" `Quick test_capacity_pacing_interval;
        ] );
      ( "session",
        [
          Alcotest.test_case "paced response time" `Quick test_session_paced_response_time;
          Alcotest.test_case "slow start loses on high BDP" `Quick test_session_regular_slower_on_high_bdp;
          Alcotest.test_case "throughput consistency" `Quick test_session_throughput_consistency;
          Alcotest.test_case "jitter mode completes" `Quick test_session_jitter_mode_completes;
          Alcotest.test_case "bottleneck interval" `Quick test_bottleneck_interval;
          qc test_session_conservation;
        ] );
    ]
