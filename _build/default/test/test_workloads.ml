(* Tests for the workload models: the closed-loop web-server simulation
   (throughput, trigger mix, pacing and polling wiring) and the
   synthetic trigger-process generators. *)

let sec = Time_ns.of_sec

let run_server ?(warmup = 0.3) ?(measure = 1.0) cfg =
  let t = Webserver.create cfg in
  Webserver.run t ~warmup:(sec warmup) ~measure:(sec measure);
  t

let base_cfg = Webserver.default_config

(* ------------------------------------------------------------------ *)
(* Webserver: throughput and saturation *)

let test_apache_saturates_cpu () =
  let t = run_server base_cfg in
  let busy = Time_ns.to_sec (Cpu.busy_ns (Machine.cpu (Webserver.machine t))) in
  let total = Time_ns.to_sec (Engine.now (Webserver.engine t)) in
  Alcotest.(check bool) "CPU > 97% busy" true (busy /. total > 0.97);
  let tput = Webserver.requests_per_sec t in
  Alcotest.(check bool)
    (Printf.sprintf "throughput in paper band (got %.0f)" tput)
    true
    (tput > 650.0 && tput < 1000.0)

let test_flash_faster_than_apache () =
  let apache = run_server base_cfg in
  let flash = run_server { base_cfg with Webserver.kind = Webserver.Flash } in
  Alcotest.(check bool) "Flash outperforms Apache" true
    (Webserver.requests_per_sec flash > 1.3 *. Webserver.requests_per_sec apache)

let test_phttp_faster_than_http () =
  let http = run_server base_cfg in
  let phttp = run_server { base_cfg with Webserver.http = Webserver.Persistent 10 } in
  Alcotest.(check bool) "persistent connections amortise setup" true
    (Webserver.requests_per_sec phttp > 1.2 *. Webserver.requests_per_sec http)

let test_deterministic_per_seed () =
  let a = run_server base_cfg and b = run_server base_cfg in
  Alcotest.(check int) "identical request counts" (Webserver.completed_requests a)
    (Webserver.completed_requests b);
  Alcotest.(check int) "identical trigger totals"
    (Machine.trigger_total (Webserver.machine a))
    (Machine.trigger_total (Webserver.machine b));
  let c = run_server { base_cfg with Webserver.seed = 8 } in
  Alcotest.(check bool) "different seed differs" true
    (Machine.trigger_total (Webserver.machine a) <> Machine.trigger_total (Webserver.machine c))

let test_background_compute_harmless () =
  let plain = run_server base_cfg in
  let compute = run_server { base_cfg with Webserver.background_compute = true } in
  let r1 = Webserver.requests_per_sec plain and r2 = Webserver.requests_per_sec compute in
  Alcotest.(check bool)
    (Printf.sprintf "throughput unaffected (%.0f vs %.0f)" r1 r2)
    true
    (Float.abs (r1 -. r2) /. r1 < 0.06)

let test_run_only_once () =
  let t = run_server base_cfg in
  Alcotest.check_raises "second run rejected" (Invalid_argument "Webserver.run: already run")
    (fun () -> Webserver.run t ~warmup:0L ~measure:0L)

(* ------------------------------------------------------------------ *)
(* Webserver: trigger process *)

let test_apache_trigger_mix () =
  let cfg = base_cfg in
  let t = Webserver.create cfg in
  let rec_ = Delay_probe.Gap_recorder.attach (Webserver.machine t) in
  Webserver.run t ~warmup:(sec 0.3) ~measure:(sec 1.5);
  let fr = Delay_probe.Gap_recorder.source_fractions rec_ in
  let check name kind lo hi =
    let f = 100.0 *. List.assoc kind fr in
    Alcotest.(check bool) (Printf.sprintf "%s %.1f%% in [%g, %g]" name f lo hi) true
      (f >= lo && f <= hi)
  in
  (* Paper's Table 2: 47.7 / 28 / 16.4 / 5.4 / 2.5. *)
  check "syscalls" Trigger.Syscall 42.0 53.0;
  check "ip-output" Trigger.Ip_output 22.0 33.0;
  check "ip-intr" Trigger.Ip_intr 12.0 23.0;
  check "tcpip-others" Trigger.Tcpip_other 2.0 9.0;
  check "traps" Trigger.Trap 1.0 5.0

let test_apache_gap_distribution_shape () =
  let t = Webserver.create base_cfg in
  let rec_ = Delay_probe.Gap_recorder.attach (Webserver.machine t) in
  Webserver.run t ~warmup:(sec 0.3) ~measure:(sec 1.5);
  let s = Delay_probe.Gap_recorder.sample rec_ in
  let mean = Stats.Sample.mean s and median = Stats.Sample.median s in
  Alcotest.(check bool) (Printf.sprintf "mean ~31.5us (got %.1f)" mean) true
    (mean > 26.0 && mean < 37.0);
  Alcotest.(check bool) (Printf.sprintf "median ~18us (got %.1f)" median) true
    (median > 13.0 && median < 25.0);
  Alcotest.(check bool) "bounded by backup tick" true (Stats.Sample.max s <= 1_100.0);
  let tail = 100.0 *. Stats.Sample.fraction_above s 100.0 in
  Alcotest.(check bool) (Printf.sprintf ">100us ~5%% (got %.1f)" tail) true
    (tail > 2.0 && tail < 10.0)

let test_xeon_profile_scales_gaps () =
  let piii =
    { base_cfg with Webserver.profile = Costs.pentium_iii_500 }
  in
  let t300 = Webserver.create base_cfg in
  let r300 = Delay_probe.Gap_recorder.attach (Webserver.machine t300) in
  Webserver.run t300 ~warmup:(sec 0.3) ~measure:(sec 1.0);
  let t500 = Webserver.create piii in
  let r500 = Delay_probe.Gap_recorder.attach (Webserver.machine t500) in
  Webserver.run t500 ~warmup:(sec 0.3) ~measure:(sec 1.0);
  let m300 = Stats.Sample.mean (Delay_probe.Gap_recorder.sample r300) in
  let m500 = Stats.Sample.mean (Delay_probe.Gap_recorder.sample r500) in
  (* Paper: the mean scales roughly with CPU clock (31.5 -> 19.4). *)
  let ratio = m500 /. m300 in
  Alcotest.(check bool) (Printf.sprintf "ratio ~0.6 (got %.2f)" ratio) true
    (ratio > 0.5 && ratio < 0.78)

(* ------------------------------------------------------------------ *)
(* Webserver: pacing and polling *)

let test_soft_pacing_low_overhead () =
  let plain = run_server base_cfg in
  let paced = run_server { base_cfg with Webserver.pacing = Webserver.Soft_pacing } in
  let overhead =
    1.0 -. (Webserver.requests_per_sec paced /. Webserver.requests_per_sec plain)
  in
  Alcotest.(check bool) (Printf.sprintf "soft overhead < 8%% (got %.1f%%)" (100. *. overhead)) true
    (overhead < 0.08);
  Alcotest.(check bool) "packets were paced" true (Webserver.pacer_sends paced > 1_000)

let test_hw_pacing_heavy_overhead () =
  let plain = run_server base_cfg in
  let paced =
    run_server { base_cfg with Webserver.pacing = Webserver.Hw_pacing (Time_ns.of_us 20.0) }
  in
  let overhead =
    1.0 -. (Webserver.requests_per_sec paced /. Webserver.requests_per_sec plain)
  in
  Alcotest.(check bool)
    (Printf.sprintf "hw overhead > 18%% (got %.1f%%)" (100. *. overhead))
    true (overhead > 0.18)

let test_polling_beats_interrupts () =
  let intr = run_server { base_cfg with Webserver.kind = Webserver.Flash } in
  let polled =
    run_server
      { base_cfg with Webserver.kind = Webserver.Flash; net = Webserver.Soft_polling 5.0 }
  in
  Alcotest.(check bool) "polling wins" true
    (Webserver.requests_per_sec polled > Webserver.requests_per_sec intr);
  Alcotest.(check bool) "interrupts mostly gone" true
    (Webserver.rx_interrupts polled < Webserver.rx_interrupts intr / 10);
  match Webserver.poller polled with
  | None -> Alcotest.fail "poller missing"
  | Some p -> Alcotest.(check bool) "poller active" true (Net_poll.polls p > 1_000)

let test_facility_attached_when_needed () =
  let t = Webserver.create { base_cfg with Webserver.pacing = Webserver.Soft_pacing } in
  Alcotest.(check bool) "facility present" true (Webserver.facility t <> None);
  let t2 = Webserver.create base_cfg in
  Alcotest.(check bool) "no facility by default" true (Webserver.facility t2 = None)

let test_phttp_counts_requests_not_connections () =
  (* With 10 requests per connection, completed requests must far
     exceed what single-request connections could deliver in the same
     interval of per-connection setup work. *)
  let t = run_server { base_cfg with Webserver.http = Webserver.Persistent 10 } in
  Alcotest.(check bool) "many requests completed" true (Webserver.completed_requests t > 800)

let test_pacing_transmits_all_data () =
  let plain = run_server base_cfg in
  let paced = run_server { base_cfg with Webserver.pacing = Webserver.Soft_pacing } in
  (* Roughly the same number of data packets must flow either way:
     5 per completed request. *)
  let per_req t = float_of_int (Webserver.pacer_sends t) /. float_of_int (Webserver.completed_requests t) in
  ignore plain;
  Alcotest.(check bool)
    (Printf.sprintf "~5 paced sends per request (got %.2f)" (per_req paced))
    true
    (per_req paced > 4.0 && per_req paced < 6.0)

let test_all_table2_sources_present () =
  let t = Webserver.create base_cfg in
  Webserver.run t ~warmup:(sec 0.2) ~measure:(sec 0.8);
  let m = Webserver.machine t in
  List.iter
    (fun k ->
      Alcotest.(check bool)
        (Trigger.name k ^ " observed")
        true
        (Machine.trigger_count m k > 10))
    Trigger.table2_sources

let test_locality_override_applies () =
  let hot =
    run_server
      {
        base_cfg with
        Webserver.locality_override = Some { Cache.sensitivity = 4.0; warm_fraction = 0.9 };
      }
  in
  let base = run_server base_cfg in
  (* Quadruple pollution per interrupt must cost visible throughput. *)
  Alcotest.(check bool) "higher sensitivity costs throughput" true
    (Webserver.requests_per_sec hot < Webserver.requests_per_sec base)

(* ------------------------------------------------------------------ *)
(* Synthetic workloads *)

let run_synthetic start seconds =
  let e = Engine.create () in
  let m = Machine.create e in
  start m;
  let rec_ = Delay_probe.Gap_recorder.attach m in
  Engine.run_until e (sec 0.2);
  Delay_probe.Gap_recorder.reset_clock rec_;
  Engine.run_until e Time_ns.(Engine.now e + sec seconds);
  (m, Delay_probe.Gap_recorder.sample rec_)

let test_nfs_idle_dominated () =
  let m, s = run_synthetic (fun m -> Wl_nfs.start m ~seed:7) 0.8 in
  Alcotest.(check bool) (Printf.sprintf "median ~2us (got %.1f)" (Stats.Sample.median s)) true
    (Stats.Sample.median s < 3.0);
  Alcotest.(check bool) "mean small" true (Stats.Sample.mean s < 4.0);
  Alcotest.(check bool) "mostly idle triggers" true
    (Machine.trigger_count m Trigger.Idle > Machine.trigger_total m / 2);
  (* Disk-bound: the CPU is idle ~90% of the time. *)
  let busy = Time_ns.to_sec (Cpu.busy_ns (Machine.cpu m)) in
  Alcotest.(check bool) (Printf.sprintf "CPU mostly idle (busy %.2fs)" busy) true (busy < 0.35)

let test_realaudio_syscall_driven () =
  let m, s = run_synthetic (fun m -> Wl_realaudio.start m ~seed:7) 0.8 in
  let mean = Stats.Sample.mean s in
  Alcotest.(check bool) (Printf.sprintf "mean ~8.5us (got %.1f)" mean) true
    (mean > 6.0 && mean < 12.0);
  Alcotest.(check bool) "syscalls dominate" true
    (Machine.trigger_count m Trigger.Syscall > 2 * Machine.trigger_count m Trigger.Ip_intr);
  (* Player saturates the CPU. *)
  let busy = Time_ns.to_sec (Cpu.busy_ns (Machine.cpu m)) in
  Alcotest.(check bool) "CPU saturated" true (busy > 0.9)

let test_kernel_build_bimodal () =
  let _, s = run_synthetic (fun m -> Wl_kernel_build.start m ~seed:7) 1.2 in
  Alcotest.(check bool) (Printf.sprintf "median ~2us (got %.1f)" (Stats.Sample.median s)) true
    (Stats.Sample.median s < 3.5);
  let mean = Stats.Sample.mean s in
  Alcotest.(check bool) (Printf.sprintf "mean ~5.6us (got %.1f)" mean) true
    (mean > 3.5 && mean < 9.0);
  Alcotest.(check bool) "long tail exists" true (Stats.Sample.max s > 100.0)

let test_synthetic_traps_present () =
  let m, _ = run_synthetic (fun m -> Wl_kernel_build.start m ~seed:7) 0.5 in
  Alcotest.(check bool) "page-fault storms produce traps" true
    (Machine.trigger_count m Trigger.Trap > 100)

let () =
  Alcotest.run "workloads"
    [
      ( "webserver-throughput",
        [
          Alcotest.test_case "apache saturates" `Slow test_apache_saturates_cpu;
          Alcotest.test_case "flash faster" `Slow test_flash_faster_than_apache;
          Alcotest.test_case "p-http faster" `Slow test_phttp_faster_than_http;
          Alcotest.test_case "deterministic per seed" `Slow test_deterministic_per_seed;
          Alcotest.test_case "background compute harmless" `Slow test_background_compute_harmless;
          Alcotest.test_case "run once" `Quick test_run_only_once;
        ] );
      ( "webserver-triggers",
        [
          Alcotest.test_case "table-2 trigger mix" `Slow test_apache_trigger_mix;
          Alcotest.test_case "gap distribution shape" `Slow test_apache_gap_distribution_shape;
          Alcotest.test_case "xeon scaling" `Slow test_xeon_profile_scales_gaps;
        ] );
      ( "webserver-pacing-polling",
        [
          Alcotest.test_case "soft pacing cheap" `Slow test_soft_pacing_low_overhead;
          Alcotest.test_case "hw pacing expensive" `Slow test_hw_pacing_heavy_overhead;
          Alcotest.test_case "polling beats interrupts" `Slow test_polling_beats_interrupts;
          Alcotest.test_case "facility wiring" `Quick test_facility_attached_when_needed;
          Alcotest.test_case "p-http request counting" `Slow test_phttp_counts_requests_not_connections;
          Alcotest.test_case "pacing transmits all data" `Slow test_pacing_transmits_all_data;
          Alcotest.test_case "all table-2 sources present" `Slow test_all_table2_sources_present;
          Alcotest.test_case "locality override applies" `Slow test_locality_override_applies;
        ] );
      ( "synthetic",
        [
          Alcotest.test_case "nfs idle-dominated" `Slow test_nfs_idle_dominated;
          Alcotest.test_case "realaudio syscall-driven" `Slow test_realaudio_syscall_driven;
          Alcotest.test_case "kernel-build bimodal" `Slow test_kernel_build_bimodal;
          Alcotest.test_case "traps present" `Slow test_synthetic_traps_present;
        ] );
    ]
