(* Tests for the network substrate: packets, links, drop-tail queue, WAN
   emulator and the NIC's interrupt/polled receive paths. *)

let us = Time_ns.of_us

let mk_packet ?(size = 1500) meta = Packet.create ~size_bytes:size ~meta ~born:Time_ns.zero

(* ------------------------------------------------------------------ *)
(* Packet *)

let test_packet_basics () =
  let p = mk_packet ~size:100 "x" in
  Alcotest.(check int) "bits" 800 (Packet.bits p);
  Alcotest.(check int) "mtu payload" 1448 Packet.mtu_payload;
  Alcotest.(check int) "frame overhead" 52 Packet.frame_overhead;
  Alcotest.check_raises "negative size" (Invalid_argument "Packet.create: negative size")
    (fun () -> ignore (mk_packet ~size:(-1) "x"))

(* ------------------------------------------------------------------ *)
(* Link *)

let test_link_serialization_and_latency () =
  let e = Engine.create () in
  let deliveries = ref [] in
  (* 1500 B at 100 Mbps = 120 us on the wire; +30 us propagation. *)
  let link =
    Link.create e ~bandwidth_bps:100e6 ~latency:(us 30.0)
      ~deliver:(fun now p -> deliveries := (now, p.Packet.meta) :: !deliveries)
      ()
  in
  Link.send link (mk_packet "a");
  Link.send link (mk_packet "b");
  Alcotest.(check int) "both in flight" 2 (Link.in_flight link);
  Engine.run e;
  let deliveries = List.rev !deliveries in
  Alcotest.(check (list (pair int64 string)))
    "FIFO with back-to-back serialisation"
    [ (us 150.0, "a"); (us 270.0, "b") ]
    deliveries;
  Alcotest.(check int) "sent count" 2 (Link.sent link)

let test_link_on_sent_fires_before_delivery () =
  let e = Engine.create () in
  let log = ref [] in
  let link =
    Link.create e ~bandwidth_bps:100e6 ~latency:(us 30.0)
      ~on_sent:(fun now _ -> log := ("sent", now) :: !log)
      ~deliver:(fun now _ -> log := ("delivered", now) :: !log)
      ()
  in
  Link.send link (mk_packet "a");
  Engine.run e;
  Alcotest.(check (list (pair string int64)))
    "sent at serialisation end, delivery after latency"
    [ ("sent", us 120.0); ("delivered", us 150.0) ]
    (List.rev !log)

let test_link_idle_restarts () =
  let e = Engine.create () in
  let count = ref 0 in
  let link =
    Link.create e ~bandwidth_bps:100e6 ~latency:0L ~deliver:(fun _ _ -> incr count) ()
  in
  Link.send link (mk_packet "a");
  Engine.run e;
  Alcotest.(check bool) "idle" false (Link.busy link);
  Link.send link (mk_packet "b");
  Engine.run e;
  Alcotest.(check int) "second delivered after idle" 2 !count

(* ------------------------------------------------------------------ *)
(* Droptail *)

let test_droptail_bounds () =
  let q = Droptail.create ~capacity:2 in
  Alcotest.(check bool) "push 1" true (Droptail.push q 1);
  Alcotest.(check bool) "push 2" true (Droptail.push q 2);
  Alcotest.(check bool) "push 3 drops" false (Droptail.push q 3);
  Alcotest.(check int) "drops" 1 (Droptail.drops q);
  Alcotest.(check int) "accepted" 2 (Droptail.accepted q);
  Alcotest.(check (option int)) "fifo pop" (Some 1) (Droptail.pop q);
  Alcotest.(check bool) "room again" true (Droptail.push q 4);
  Alcotest.(check int) "length" 2 (Droptail.length q)

(* ------------------------------------------------------------------ *)
(* Wan *)

let test_wan_delay_and_bandwidth () =
  let e = Engine.create () in
  let arrivals = ref [] in
  let wan =
    Wan.create e ~bottleneck_bps:50e6 ~one_way_delay:(Time_ns.of_ms 50.0)
      ~deliver:(fun now _ -> arrivals := now :: !arrivals)
      ()
  in
  (* 1500 B at 50 Mbps = 240 us serialisation. *)
  Wan.forward wan (mk_packet "a");
  Wan.forward wan (mk_packet "b");
  Engine.run e;
  let arrivals = List.rev !arrivals in
  Alcotest.(check int64) "first: 240us + 50ms" Time_ns.(us 240.0 + Time_ns.of_ms 50.0)
    (List.nth arrivals 0);
  Alcotest.(check int64) "second: +240us" Time_ns.(us 480.0 + Time_ns.of_ms 50.0)
    (List.nth arrivals 1);
  Alcotest.(check int) "forwarded" 2 (Wan.forwarded wan)

let test_wan_drops_when_full () =
  let e = Engine.create () in
  let count = ref 0 in
  let wan =
    Wan.create e ~bottleneck_bps:1e6 ~one_way_delay:0L ~queue_capacity:3
      ~deliver:(fun _ _ -> incr count)
      ()
  in
  for _ = 1 to 10 do
    Wan.forward wan (mk_packet "x")
  done;
  Engine.run e;
  Alcotest.(check int) "3 delivered" 3 !count;
  Alcotest.(check int) "7 dropped" 7 (Wan.drops wan)

(* ------------------------------------------------------------------ *)
(* Nic *)

let make_nic ?(rx_intr_delay = 0L) ?(tx_intr_coalesce = 0) machine =
  let batches = ref [] in
  let tx_delivered = ref [] in
  let nic =
    Nic.create machine ~name:"test0" ~bandwidth_bps:100e6 ~wire_latency:(us 30.0)
      ~tx_deliver:(fun now p -> tx_delivered := (now, p.Packet.meta) :: !tx_delivered)
      ~on_rx_batch:(fun _now batch -> batches := List.map (fun p -> p.Packet.meta) batch :: !batches)
      ~tx_intr_coalesce ~rx_intr_delay ()
  in
  (nic, batches, tx_delivered)

let test_nic_interrupt_reception () =
  let e = Engine.create () in
  let m = Machine.create e in
  let nic, batches, _ = make_nic m in
  Nic.deliver nic (mk_packet "p1");
  Engine.run e;
  Alcotest.(check (list (list string))) "one batch of one" [ [ "p1" ] ] !batches;
  Alcotest.(check int) "ip-intr trigger" 1 (Machine.trigger_count m Trigger.Ip_intr);
  Alcotest.(check int) "rx packets" 1 (Nic.rx_packets nic)

let test_nic_coalesces_with_mitigation_delay () =
  let e = Engine.create () in
  let m = Machine.create e in
  let nic, batches, _ = make_nic ~rx_intr_delay:(us 25.0) m in
  Nic.deliver nic (mk_packet "p1");
  ignore (Engine.schedule_at e (us 10.0) (fun () -> Nic.deliver nic (mk_packet "p2")) : Engine.handle);
  Engine.run e;
  Alcotest.(check (list (list string))) "one interrupt, batch of two" [ [ "p1"; "p2" ] ] !batches;
  Alcotest.(check int) "one rx batch" 1 (Nic.rx_batches nic)

let test_nic_polled_mode_accumulates () =
  let e = Engine.create () in
  let m = Machine.create e in
  let nic, batches, _ = make_nic m in
  Nic.set_mode nic Nic.Polled;
  (* Keep the CPU busy so the idle fall-back does not kick in. *)
  let rec hog _ = Machine.submit_quantum m ~prio:Cpu.prio_background ~work_us:100.0 ~trigger:None hog in
  hog Time_ns.zero;
  ignore (Engine.schedule_at e (us 10.0) (fun () -> Nic.deliver nic (mk_packet "p1")) : Engine.handle);
  ignore (Engine.schedule_at e (us 20.0) (fun () -> Nic.deliver nic (mk_packet "p2")) : Engine.handle);
  Engine.run_until e (us 200.0);
  Alcotest.(check (list (list string))) "no interrupt processing" [] !batches;
  Alcotest.(check int) "ring holds both" 2 (Nic.rx_ring_length nic);
  let n = Nic.poll nic in
  Alcotest.(check int) "poll drains two" 2 n;
  Alcotest.(check (list (list string))) "batch delivered via poll" [ [ "p1"; "p2" ] ] !batches;
  Alcotest.(check int) "poll on empty ring" 0 (Nic.poll nic)

let test_nic_polled_idle_fallback () =
  let e = Engine.create () in
  let m = Machine.create e in
  let nic, batches, _ = make_nic m in
  Nic.set_mode nic Nic.Polled;
  (* CPU idle: delivery must raise an interrupt anyway (paper 5.9). *)
  Nic.deliver nic (mk_packet "p1");
  Engine.run e;
  Alcotest.(check (list (list string))) "processed via interrupt" [ [ "p1" ] ] !batches

let test_nic_transmit_path () =
  let e = Engine.create () in
  let m = Machine.create e in
  let nic, _, tx_delivered = make_nic ~tx_intr_coalesce:2 m in
  Nic.transmit nic (mk_packet "t1");
  Nic.transmit nic (mk_packet "t2");
  Engine.run e;
  Alcotest.(check int) "both on the wire" 2 (List.length !tx_delivered);
  Alcotest.(check int) "tx packets counted" 2 (Nic.tx_packets nic);
  (* Coalesce 2 -> exactly one tx-complete interrupt. *)
  Alcotest.(check int) "one tx interrupt" 1 (Interrupt.delivered (Nic.tx_line nic))

let test_nic_hybrid_one_interrupt_per_burst () =
  let e = Engine.create () in
  let m = Machine.create e in
  let batches = ref [] in
  let nic_ref = ref None in
  let nic =
    Nic.create m ~name:"h0" ~bandwidth_bps:100e6 ~wire_latency:(us 30.0)
      ~tx_deliver:(fun _ _ -> ())
      ~on_rx_batch:(fun _ batch ->
        batches := List.map (fun p -> p.Packet.meta) batch :: !batches;
        (* Processing takes 20 us, then poll-on-completion. *)
        Machine.submit_quantum m ~prio:Cpu.prio_softintr ~work_us:20.0 ~trigger:None
          (fun _ ->
            match !nic_ref with
            | Some nic -> ignore (Nic.hybrid_done nic : int)
            | None -> ()))
      ()
  in
  nic_ref := Some nic;
  Nic.set_mode nic Nic.Hybrid;
  (* A burst of 4 packets 10 us apart: the first interrupts; the rest
     are picked up by poll-on-completion without further interrupts. *)
  List.iter
    (fun t ->
      ignore
        (Engine.schedule_at e (us t) (fun () -> Nic.deliver nic (mk_packet (string_of_int (int_of_float t))))
          : Engine.handle))
    [ 0.0; 10.0; 20.0; 30.0 ];
  Engine.run_until e (Time_ns.of_ms 2.0);
  Alcotest.(check int) "one interrupt for the burst" 1 (Interrupt.delivered (Nic.rx_line nic));
  let total = List.fold_left (fun acc b -> acc + List.length b) 0 !batches in
  Alcotest.(check int) "all four processed" 4 total;
  Alcotest.(check bool) "more than one batch" true (List.length !batches >= 2);
  (* Ring empty: interrupts re-enabled; a later packet interrupts again. *)
  Nic.deliver nic (mk_packet "later");
  Engine.run_until e (Time_ns.of_ms 4.0);
  Alcotest.(check int) "interrupt re-enabled" 2 (Interrupt.delivered (Nic.rx_line nic))

let test_nic_ring_capacity_drops () =
  let e = Engine.create () in
  let m = Machine.create e in
  let nic =
    Nic.create m ~name:"b0" ~bandwidth_bps:100e6 ~wire_latency:(us 30.0)
      ~tx_deliver:(fun _ _ -> ())
      ~on_rx_batch:(fun _ _ -> ())
      ~rx_ring_capacity:2 ()
  in
  Nic.set_mode nic Nic.Polled;
  (* CPU busy: no idle fallback, the ring fills. *)
  let rec hog _ = Machine.submit_quantum m ~prio:Cpu.prio_background ~work_us:100.0 ~trigger:None hog in
  hog Time_ns.zero;
  for i = 1 to 5 do
    Nic.deliver nic (mk_packet (string_of_int i))
  done;
  Alcotest.(check int) "ring holds capacity" 2 (Nic.rx_ring_length nic);
  Alcotest.(check int) "overflow dropped" 3 (Nic.rx_dropped nic)

let test_nic_no_tx_interrupts_when_polled () =
  let e = Engine.create () in
  let m = Machine.create e in
  let nic, _, _ = make_nic ~tx_intr_coalesce:1 m in
  Nic.set_mode nic Nic.Polled;
  Nic.transmit nic (mk_packet "t1");
  Engine.run e;
  Alcotest.(check int) "no tx interrupt in polled mode" 0 (Interrupt.delivered (Nic.tx_line nic))

let () =
  Alcotest.run "net"
    [
      ("packet", [ Alcotest.test_case "basics" `Quick test_packet_basics ]);
      ( "link",
        [
          Alcotest.test_case "serialisation and latency" `Quick test_link_serialization_and_latency;
          Alcotest.test_case "on_sent hook" `Quick test_link_on_sent_fires_before_delivery;
          Alcotest.test_case "idle restart" `Quick test_link_idle_restarts;
        ] );
      ("droptail", [ Alcotest.test_case "bounds" `Quick test_droptail_bounds ]);
      ( "wan",
        [
          Alcotest.test_case "delay and bandwidth" `Quick test_wan_delay_and_bandwidth;
          Alcotest.test_case "drops when full" `Quick test_wan_drops_when_full;
        ] );
      ( "nic",
        [
          Alcotest.test_case "interrupt reception" `Quick test_nic_interrupt_reception;
          Alcotest.test_case "mitigation coalescing" `Quick test_nic_coalesces_with_mitigation_delay;
          Alcotest.test_case "polled accumulation" `Quick test_nic_polled_mode_accumulates;
          Alcotest.test_case "polled idle fallback" `Quick test_nic_polled_idle_fallback;
          Alcotest.test_case "transmit path" `Quick test_nic_transmit_path;
          Alcotest.test_case "no tx interrupts when polled" `Quick test_nic_no_tx_interrupts_when_polled;
          Alcotest.test_case "hybrid: one interrupt per burst" `Quick
            test_nic_hybrid_one_interrupt_per_burst;
          Alcotest.test_case "ring capacity drops" `Quick test_nic_ring_capacity_drops;
        ] );
    ]
