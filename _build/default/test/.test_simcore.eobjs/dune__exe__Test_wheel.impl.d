test/test_wheel.ml: Alcotest Fun Gen List Printf QCheck QCheck_alcotest String Time_ns Timer_backend Timing_wheel
