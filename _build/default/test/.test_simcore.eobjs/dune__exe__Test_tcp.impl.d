test/test_tcp.ml: Alcotest Array Capacity Cwnd Engine List Paced_sender Packet Printf Prng QCheck QCheck_alcotest Receiver Sender Session Tcp_types Time_ns
