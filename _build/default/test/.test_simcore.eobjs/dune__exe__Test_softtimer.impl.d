test/test_softtimer.ml: Alcotest Cpu Delay_probe Dist Engine Float Hw_pacer Int64 Kernel List Machine Net_poll Printf Prng QCheck QCheck_alcotest Rate_clock Softtimer Stats Time_ns Trigger
