test/test_softtimer.mli:
