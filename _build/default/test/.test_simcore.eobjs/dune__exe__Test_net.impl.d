test/test_net.ml: Alcotest Cpu Droptail Engine Interrupt Link List Machine Nic Packet Time_ns Trigger Wan
