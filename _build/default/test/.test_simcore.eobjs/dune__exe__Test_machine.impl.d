test/test_machine.ml: Alcotest Cache Costs Cpu Dist Engine Gen Hashtbl Int64 Interrupt Kernel List Machine Printf QCheck QCheck_alcotest Time_ns Trigger
