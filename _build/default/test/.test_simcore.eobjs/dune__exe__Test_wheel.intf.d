test/test_wheel.mli:
