test/test_workloads.ml: Alcotest Cache Costs Cpu Delay_probe Engine Float List Machine Net_poll Printf Stats Time_ns Trigger Webserver Wl_kernel_build Wl_nfs Wl_realaudio
