test/test_simcore.ml: Alcotest Array Dist Engine Float Fun Gen Heap Histogram Int64 List Printf Prng QCheck QCheck_alcotest Series Stats String Tablefmt Time_ns
