(** Network packets.

    Packets are generic in their metadata so the same links, queues and
    NICs serve both the web-server workload models (whose metadata is a
    connection-level event) and the packet-level TCP simulator (whose
    metadata is a TCP segment). *)

type 'a t = { size_bytes : int; meta : 'a; born : Time_ns.t }

val create : size_bytes:int -> meta:'a -> born:Time_ns.t -> 'a t
(** @raise Invalid_argument if [size_bytes < 0]. *)

val bits : 'a t -> int
(** Size on the wire, in bits. *)

val mtu_payload : int
(** 1448 bytes: the TCP payload of a 1500-byte Ethernet frame after
    20 + 20 + 12 bytes of IP/TCP/options headers — the paper's transfer
    unit (Tables 6 and 7). *)

val frame_overhead : int
(** 52 bytes of IP + TCP + options headers. *)

val ack_size : int
(** Size of a bare ACK segment on the wire. *)
