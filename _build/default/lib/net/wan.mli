(** WAN emulator.

    Reproduces the paper's laboratory "WAN": a router that forwards
    packets through a bottleneck of a given bandwidth and then delays
    them by a fixed one-way latency (§5.8: 50 ms delay, 50 or 100 Mbps
    bottleneck).  The bottleneck has a bounded drop-tail buffer; in the
    paper's experiments the buffer is large enough that no losses occur,
    and the default capacity preserves that. *)

type 'a t

val create :
  Engine.t ->
  bottleneck_bps:float ->
  one_way_delay:Time_ns.span ->
  ?queue_capacity:int ->
  deliver:(Time_ns.t -> 'a Packet.t -> unit) ->
  unit ->
  'a t
(** [queue_capacity] defaults to 2048 packets. *)

val forward : 'a t -> 'a Packet.t -> unit
(** Hand a packet to the emulator; it is delivered to [deliver] after
    queueing + serialisation at the bottleneck + the one-way delay, or
    silently dropped if the buffer is full. *)

val drops : 'a t -> int
val forwarded : 'a t -> int
val queue_length : 'a t -> int
