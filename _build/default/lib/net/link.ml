type 'a t = {
  engine : Engine.t;
  bandwidth_bps : float;
  latency : Time_ns.span;
  deliver : Time_ns.t -> 'a Packet.t -> unit;
  on_sent : Time_ns.t -> 'a Packet.t -> unit;
  queue : 'a Packet.t Queue.t;
  mutable busy : bool;
  mutable sent : int;
}

let create engine ~bandwidth_bps ~latency ?(on_sent = fun _ _ -> ()) ~deliver () =
  if bandwidth_bps <= 0.0 then invalid_arg "Link.create: bandwidth must be positive";
  if Time_ns.(latency < 0L) then invalid_arg "Link.create: negative latency";
  {
    engine;
    bandwidth_bps;
    latency;
    deliver;
    on_sent;
    queue = Queue.create ();
    busy = false;
    sent = 0;
  }

let serialization_time t p =
  Time_ns.of_sec (float_of_int (Packet.bits p) /. t.bandwidth_bps)

let rec start_next t =
  if Queue.is_empty t.queue then t.busy <- false
  else begin
    t.busy <- true;
    let p = Queue.pop t.queue in
    let ser = serialization_time t p in
    ignore
      (Engine.schedule_after t.engine ser (fun () ->
           t.sent <- t.sent + 1;
           t.on_sent (Engine.now t.engine) p;
           ignore
             (Engine.schedule_after t.engine t.latency (fun () ->
                  t.deliver (Engine.now t.engine) p)
               : Engine.handle);
           start_next t)
        : Engine.handle)
  end

let send t p =
  Queue.add p t.queue;
  if not t.busy then start_next t

let in_flight t = Queue.length t.queue + if t.busy then 1 else 0
let busy t = t.busy
let sent t = t.sent
