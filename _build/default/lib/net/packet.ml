type 'a t = { size_bytes : int; meta : 'a; born : Time_ns.t }

let create ~size_bytes ~meta ~born =
  if size_bytes < 0 then invalid_arg "Packet.create: negative size";
  { size_bytes; meta; born }

let bits p = p.size_bytes * 8
let mtu_payload = 1448
let frame_overhead = 52
let ack_size = frame_overhead
