type 'a t = {
  capacity : int;
  queue : 'a Queue.t;
  mutable drops : int;
  mutable accepted : int;
}

let create ~capacity =
  if capacity <= 0 then invalid_arg "Droptail.create: capacity must be positive";
  { capacity; queue = Queue.create (); drops = 0; accepted = 0 }

let push t x =
  if Queue.length t.queue >= t.capacity then begin
    t.drops <- t.drops + 1;
    false
  end
  else begin
    Queue.add x t.queue;
    t.accepted <- t.accepted + 1;
    true
  end

let pop t = Queue.take_opt t.queue
let length t = Queue.length t.queue
let is_empty t = Queue.is_empty t.queue
let capacity t = t.capacity
let drops t = t.drops
let accepted t = t.accepted
