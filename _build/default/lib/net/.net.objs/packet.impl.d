lib/net/packet.ml: Time_ns
