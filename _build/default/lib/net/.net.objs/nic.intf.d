lib/net/nic.mli: Interrupt Machine Packet Time_ns
