lib/net/packet.mli: Time_ns
