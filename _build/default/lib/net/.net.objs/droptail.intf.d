lib/net/droptail.mli:
