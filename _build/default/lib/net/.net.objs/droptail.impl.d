lib/net/droptail.ml: Queue
