lib/net/wan.mli: Engine Packet Time_ns
