lib/net/link.ml: Engine Packet Queue Time_ns
