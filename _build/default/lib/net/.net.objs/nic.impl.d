lib/net/nic.ml: Engine Interrupt Link List Machine Packet Queue Time_ns Trigger
