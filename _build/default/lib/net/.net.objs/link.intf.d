lib/net/link.mli: Engine Packet Time_ns
