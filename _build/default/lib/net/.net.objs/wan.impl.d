lib/net/wan.ml: Link
