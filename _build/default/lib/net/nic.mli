(** Network interface model.

    A NIC connects the simulated machine to a wire.  Reception has two
    modes (paper §4.2):

    - {b interrupt driven} (the conventional BSD path): an arriving
      packet is placed in the receive ring and an interrupt is raised;
      the handler drains the ring, so packets that arrive while an
      interrupt is latched are coalesced into one batch.  Transmit
      completions can also interrupt, optionally coalesced.
    - {b polled}: arriving packets accumulate in the ring until
      {!poll} is called (by the soft-timer polling module,
      {!Net_poll}).  Following §5.9, when the CPU is idle the NIC
      reverts to interrupts so packet processing is never needlessly
      delayed.

    Either way, the protocol stack receives whole batches through the
    [on_rx_batch] callback, so aggregation-locality benefits apply
    uniformly. *)

type 'a t

val create :
  Machine.t ->
  name:string ->
  bandwidth_bps:float ->
  wire_latency:Time_ns.span ->
  tx_deliver:(Time_ns.t -> 'a Packet.t -> unit) ->
  on_rx_batch:(Time_ns.t -> 'a Packet.t list -> unit) ->
  ?tx_intr_coalesce:int ->
  ?rx_handler_work_us:float ->
  ?rx_intr_delay:Time_ns.span ->
  ?rx_ring_capacity:int ->
  unit ->
  'a t
(** [tx_intr_coalesce] = raise a transmit-complete interrupt every k
    serialisation completions in interrupt mode (0, the default,
    disables transmit interrupts).  [rx_handler_work_us] is the receive
    interrupt handler's own ring-drain work (default 1.0).
    [rx_intr_delay] models hardware interrupt mitigation: the receive
    interrupt is asserted this long after the first packet lands in an
    empty ring, so closely-spaced arrivals share one interrupt
    (default 0).  [rx_ring_capacity] bounds the receive ring (default
    unbounded); arrivals beyond it are dropped and counted. *)

type mode =
  | Interrupt_driven
  | Polled
  | Hybrid
      (** Mogul & Ramakrishnan's livelock avoidance (paper §6): the
          first packet of a burst interrupts; reception interrupts then
          stay disabled while the stack processes, and on completion the
          stack calls {!hybrid_done} to poll for more — interrupts are
          re-enabled only when the ring is found empty. *)

val set_mode : 'a t -> mode -> unit
val mode : 'a t -> mode

val hybrid_done : 'a t -> int
(** In [Hybrid] mode: the stack finished processing a batch.  Drains any
    packets that arrived meanwhile into a new batch (returned count,
    delivered through [on_rx_batch]); when the ring is empty, re-enables
    the receive interrupt and returns 0. *)

val rx_dropped : 'a t -> int
(** Packets dropped because the receive ring was full. *)

val transmit : 'a t -> 'a Packet.t -> unit
(** Queue a packet for serialisation onto the wire.  Serialisation is
    FIFO at the NIC's bandwidth; delivery to [tx_deliver] happens a
    [wire_latency] later. *)

val deliver : 'a t -> 'a Packet.t -> unit
(** A packet arrived from the wire (called by the peer model). *)

val poll : 'a t -> int
(** Drain the receive ring, passing any batch to [on_rx_batch]; returns
    the batch size (0 when the ring was empty).  Meaningful in either
    mode, but normally driven by {!Net_poll} in [Polled] mode. *)

val rx_ring_length : 'a t -> int
val rx_line : 'a t -> Interrupt.line
val tx_line : 'a t -> Interrupt.line
val rx_packets : 'a t -> int
(** Packets handed to the stack so far. *)

val rx_batches : 'a t -> int
(** Batches handed to the stack so far. *)

val tx_packets : 'a t -> int
