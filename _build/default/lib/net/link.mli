(** Point-to-point link: FIFO serialisation at a fixed bandwidth plus a
    fixed propagation latency.

    A packet handed to {!send} waits for earlier packets to finish
    serialising, occupies the wire for [bits / bandwidth], and is
    delivered [latency] after its serialisation completes.  The queue is
    unbounded; bound it with {!Droptail} where loss matters. *)

type 'a t

val create :
  Engine.t ->
  bandwidth_bps:float ->
  latency:Time_ns.span ->
  ?on_sent:(Time_ns.t -> 'a Packet.t -> unit) ->
  deliver:(Time_ns.t -> 'a Packet.t -> unit) ->
  unit ->
  'a t
(** [on_sent] fires when a packet finishes serialising (before
    propagation) — the moment a NIC would signal transmit completion.
    @raise Invalid_argument if [bandwidth_bps <= 0] or [latency < 0]. *)

val send : 'a t -> 'a Packet.t -> unit

val in_flight : 'a t -> int
(** Packets queued or serialising (not counting those in propagation). *)

val busy : 'a t -> bool
(** Whether the transmitter is currently serialising. *)

val serialization_time : 'a t -> 'a Packet.t -> Time_ns.span
(** Time this packet occupies the wire. *)

val sent : 'a t -> int
(** Packets fully serialised so far. *)
