(** Bounded drop-tail packet queue.

    The router buffer of the WAN emulator: packets beyond the capacity
    are dropped (counted), everything else is FIFO. *)

type 'a t

val create : capacity:int -> 'a t
(** @raise Invalid_argument if [capacity <= 0]. *)

val push : 'a t -> 'a -> bool
(** [push t x] enqueues [x]; [false] (and a recorded drop) when full. *)

val pop : 'a t -> 'a option
val length : 'a t -> int
val is_empty : 'a t -> bool
val capacity : 'a t -> int
val drops : 'a t -> int
val accepted : 'a t -> int
