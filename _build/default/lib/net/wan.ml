(* The bottleneck link's FIFO *is* the router buffer: bounding its
   occupancy at forward time gives drop-tail semantics without a second
   queue whose hand-off would need a completion hook. *)
type 'a t = {
  capacity : int;
  bottleneck : 'a Link.t;
  mutable forwarded : int;
  mutable drops : int;
}

let create engine ~bottleneck_bps ~one_way_delay ?(queue_capacity = 2048) ~deliver () =
  {
    capacity = queue_capacity;
    bottleneck =
      Link.create engine ~bandwidth_bps:bottleneck_bps ~latency:one_way_delay ~deliver ();
    forwarded = 0;
    drops = 0;
  }

let forward t p =
  if Link.in_flight t.bottleneck >= t.capacity then t.drops <- t.drops + 1
  else begin
    Link.send t.bottleneck p;
    t.forwarded <- t.forwarded + 1
  end

let drops t = t.drops
let forwarded t = t.forwarded
let queue_length t = Link.in_flight t.bottleneck
