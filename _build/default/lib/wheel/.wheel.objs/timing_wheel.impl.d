lib/wheel/timing_wheel.ml: Array Int64 List Time_ns
