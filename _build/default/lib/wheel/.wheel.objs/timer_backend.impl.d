lib/wheel/timer_backend.ml: Array Heap Int64 List Time_ns Timing_wheel
