lib/wheel/timing_wheel.mli: Time_ns
