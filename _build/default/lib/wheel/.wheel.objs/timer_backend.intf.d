lib/wheel/timer_backend.mli: Time_ns
