(** ST-real-audio workload (paper §5.3, Table 1).

    A RealPlayer-like media player saturates the CPU with user-mode
    decoding but makes very frequent system calls (time queries, socket
    reads, audio-device writes), yielding a trigger-interval
    distribution with a ~8.5 us mean and a 6 us median despite the low
    interrupt rate.  A modest stream of network receive interrupts
    models the incoming live audio. *)

val start : Machine.t -> seed:int -> unit
(** Begin the endless player loop on the machine.  The machine's
    interrupt clock is started if it is not already running. *)
