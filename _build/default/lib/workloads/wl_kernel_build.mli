(** ST-kernel-build workload (paper §5.3, Table 1).

    Building the FreeBSD kernel from source: alternating phases of
    process-creation storms (fork/exec — dense page faults and system
    calls a couple of microseconds apart), pure compilation (user-mode
    bursts with sparse syscalls and occasional very long
    uninterrupted stretches, bounded at 1 ms by the clock tick), and
    disk I/O waits (idle-loop polling plus disk-completion
    interrupts). *)

val start : Machine.t -> seed:int -> unit
(** Begin the endless build loop.  Enables idle-loop polling and the
    interrupt clock. *)
