(** Closed-loop saturated web-server simulation.

    Reproduces the paper's testbed: a server machine (Apache-like
    multi-process or Flash-like event-driven) saturated by clients
    repeatedly requesting a 6 KB file over 100 Mbps Ethernet interfaces
    (§5.1, §5.6, §5.9).  Every kernel-level consequence of a request is
    modelled as CPU quanta ending in trigger states — system calls, page
    faults, the IP output loop per transmitted packet, NIC interrupts,
    software-interrupt protocol processing, TCP timer sweeps — so both
    the throughput (requests/s) and the trigger-state process emerge
    from the same simulation.

    The simulation is the substrate for Figures 2–6 and Tables 1–5 and 8:
    - an extra null-handler hardware timer measures base interrupt
      overhead (Figures 2/3);
    - a {!Delay_probe.Gap_recorder} attached to {!machine} measures the
      trigger-interval distribution (Table 1, Figures 4–6);
    - [pacing] routes data-packet transmissions through soft-timer or
      hardware-timer rate clocking (Table 3);
    - [net] switches the NICs between interrupt-driven reception and
      soft-timer polling with an aggregation quota (Table 8). *)

type server_kind = Apache | Flash

type http_mode =
  | Http  (** one request per connection *)
  | Persistent of int  (** P-HTTP: this many requests per connection *)

type net_mode =
  | Interrupts  (** conventional interrupt-driven reception *)
  | Soft_polling of float  (** soft-timer polling with this quota *)

type pacing =
  | No_pacing  (** transmit data packets inline (stock TCP on a LAN) *)
  | Soft_pacing
      (** §5.6: a soft-timer event at every trigger state transmits one
          pending packet *)
  | Hw_pacing of Time_ns.span
      (** a hardware timer at this period dispatches a software
          interrupt that transmits one pending packet *)

type config = {
  kind : server_kind;
  http : http_mode;
  net : net_mode;
  pacing : pacing;
  profile : Costs.profile;
  connections : int;  (** concurrent client connections (saturation) *)
  nic_count : int;  (** independent 100 Mbps interfaces (paper: 3–4) *)
  seed : int;
  extra_timer_hz : float option;
      (** Figures 2/3: an additional null-handler hardware timer *)
  attach_facility : bool;
      (** force the soft-timer facility on even when nothing uses it
          (it is attached automatically for soft polling/pacing) *)
  background_compute : bool;
      (** ST-Apache-compute: an infinite, syscall-free, low-priority
          compute process sharing the CPU *)
  locality_override : Cache.locality option;
      (** Replace the server's locality model (cost-model ablations). *)
}

val default_config : config
(** Apache, HTTP, interrupts, no pacing, Pentium-II profile, 48
    connections over 3 NICs, seed 7. *)

type t

val create : config -> t
val config : t -> config
val engine : t -> Engine.t
val machine : t -> Machine.t

val facility : t -> Softtimer.t option
(** The soft-timer facility, when one is attached. *)

val poller : t -> Net_poll.t option

val run : t -> warmup:Time_ns.span -> measure:Time_ns.span -> unit
(** Start the clients, simulate [warmup], reset counters, simulate
    [measure].  May be called once per [t]. *)

val requests_per_sec : t -> float
(** Completed requests per second over the measurement window. *)

val completed_requests : t -> int

val pacing_intervals : t -> Stats.Sample.t
(** Gaps between consecutive paced transmissions within continuous
    backlog, in microseconds (Table 3's "avg xmit interval"). *)

val pacer_sends : t -> int

val rx_interrupts : t -> int
(** Receive interrupts delivered across all NICs. *)

val rx_packets : t -> int
val rx_batches : t -> int
