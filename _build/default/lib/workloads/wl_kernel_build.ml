type phase = Exec_storm | Compile | Disk_wait

(* Phase durations, us. *)
let storm_duration = Dist.Uniform (800.0, 3_000.0)
let compile_duration = Dist.Uniform (4_000.0, 18_000.0)
let disk_duration = Dist.Uniform (1_000.0, 6_000.0)

(* Gaps within phases. *)
let storm_user = Dist.Exponential 1.2
let storm_body = Dist.Exponential 1.0

let compile_user =
  Dist.Mixture
    [
      (0.745, Dist.Lognormal { mu = log 6.5; sigma = 0.9 });
      (0.254, Dist.Uniform (25.0, 90.0));
      (0.001, Dist.Uniform (150.0, 950.0));
    ]

let compile_body = Dist.Exponential 2.0

let start machine ~seed =
  Machine.start_interrupt_clock machine;
  Machine.set_idle_poll machine (Some (Time_ns.of_us (Machine.profile machine).Costs.idle_loop_us));
  let rng = Prng.create ~seed in
  let engine = Machine.engine machine in
  let disk_line =
    Machine.interrupt_line machine ~name:"build-disk" ~source:Trigger.Dev_intr
      ~handler:(fun _ -> ())
      ()
  in
  let next_phase = function
    | Exec_storm -> Compile
    | Compile -> Disk_wait
    | Disk_wait -> Exec_storm
  in
  let rec run_phase phase =
    let duration = Dist.span (match phase with
      | Exec_storm -> storm_duration
      | Compile -> compile_duration
      | Disk_wait -> disk_duration) rng
    in
    let deadline = Time_ns.(Engine.now engine + duration) in
    match phase with
    | Disk_wait ->
      (* CPU idle; the idle loop polls.  A disk completion ends it. *)
      ignore
        (Engine.schedule_at engine deadline (fun () ->
             ignore (Machine.raise_irq machine disk_line ~handler_work_us:5.0 () : bool);
             run_phase (next_phase phase))
          : Engine.handle)
    | Exec_storm | Compile ->
      let user, body =
        match phase with
        | Exec_storm -> (storm_user, storm_body)
        | Compile | Disk_wait -> (compile_user, compile_body)
      in
      let rec churn _now =
        if Time_ns.(Engine.now engine >= deadline) then run_phase (next_phase phase)
        else begin
          let u = Dist.draw user rng in
          let b = Dist.draw body rng in
          (* Compilation alternates syscalls with page-fault traps. *)
          let entry k =
            if phase = Exec_storm && Prng.float rng < 0.45 then
              Kernel.trap machine ~work_us:(b +. 4.0) k
            else Kernel.syscall machine ~work_us:b k
          in
          Kernel.user machine ~work_us:u (fun _ -> entry churn)
        end
      in
      churn Time_ns.zero
  in
  run_phase Exec_storm
