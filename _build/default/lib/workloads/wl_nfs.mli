(** ST-nfs workload (paper §5.3, Table 1).

    A saturated but disk-bound NFS server: the CPU is idle roughly 90%
    of the time, so the vast majority of trigger states are idle-loop
    iterations ~2 us apart.  RPC requests arrive continuously; each
    costs a receive interrupt, a handful of nfsd system calls, some
    block-layer kernel work (occasionally long) and a disk-completion
    interrupt several milliseconds later. *)

val start : Machine.t -> seed:int -> unit
(** Begin serving.  Enables 2 us idle-loop polling on the machine and
    starts the interrupt clock. *)
