lib/workloads/webserver.ml: Array Cache Costs Cpu Dist Engine Exec Hw_pacer Interrupt Kernel List Machine Net_poll Nic Packet Printf Prng Queue Softtimer Stats Time_ns Trigger
