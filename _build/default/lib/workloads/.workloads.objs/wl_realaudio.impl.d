lib/workloads/wl_realaudio.ml: Dist Engine Kernel Machine Prng Time_ns Trigger
