lib/workloads/wl_kernel_build.mli: Machine
