lib/workloads/wl_realaudio.mli: Machine
