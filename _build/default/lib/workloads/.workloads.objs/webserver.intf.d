lib/workloads/webserver.mli: Cache Costs Engine Machine Net_poll Softtimer Stats Time_ns
