lib/workloads/exec.ml: Engine Kernel Machine Time_ns
