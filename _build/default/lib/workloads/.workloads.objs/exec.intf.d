lib/workloads/exec.mli: Kernel Machine Time_ns
