lib/workloads/wl_nfs.ml: Costs Cpu Dist Engine Exec Kernel Machine Prng Time_ns Trigger
