lib/workloads/wl_nfs.mli: Machine
