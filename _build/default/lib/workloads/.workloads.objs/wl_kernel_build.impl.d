lib/workloads/wl_kernel_build.ml: Costs Dist Engine Kernel Machine Prng Time_ns Trigger
