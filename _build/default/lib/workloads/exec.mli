(** Sequenced execution of kernel scripts with interleaved actions.

    Workload models describe a process's activity as a list of items:
    CPU quanta ({!Kernel.step}s, which end in trigger states) and
    zero-duration actions (packet transmissions, bookkeeping) that run
    when the sequence reaches them.  Items execute strictly in order;
    between items, interrupts and higher-priority work interleave via
    the CPU's scheduler. *)

type item =
  | Quantum of Kernel.step
  | Emit of (Time_ns.t -> unit)
      (** Zero-time side effect performed when reached. *)

val run : Machine.t -> item list -> (Time_ns.t -> unit) -> unit
(** Execute items in order, then the continuation. *)

val quantum : Kernel.step -> item
val emit : (Time_ns.t -> unit) -> item
