(** Trigger-state kinds.

    A trigger state is a point in kernel execution where invoking a
    soft-timer handler costs no more than a procedure call (paper §3):
    the return path of a system call, exception or interrupt handler,
    selected kernel loops (the TCP/IP output loop and the TCP timer
    loop, added by the authors in §5.2), and the idle loop.

    The kinds below mirror the event sources of the paper's Table 2,
    plus the periodic clock tick (which the paper's source accounting
    omits) and disk interrupts (present in the NFS and kernel-build
    workloads). *)

type kind =
  | Syscall  (** return from a system call *)
  | Trap  (** return from an exception (page fault, arithmetic, ...) *)
  | Ip_intr  (** return from a network interface interrupt *)
  | Ip_output  (** IP packet transmission loop *)
  | Tcpip_other  (** other network-subsystem loops (TCP timers, ...) *)
  | Dev_intr  (** return from a non-network device interrupt (disk) *)
  | Clock_tick  (** return from the periodic system timer interrupt *)
  | Idle  (** one iteration of the kernel idle loop *)

val all : kind list
(** Every kind, in declaration order. *)

val name : kind -> string
(** The paper's label for the source ("syscalls", "ip-output", ...). *)

val equal : kind -> kind -> bool

val table2_sources : kind list
(** The five sources accounted in the paper's Table 2: [Syscall],
    [Ip_output], [Ip_intr], [Tcpip_other], [Trap]. *)
