type kind =
  | Syscall
  | Trap
  | Ip_intr
  | Ip_output
  | Tcpip_other
  | Dev_intr
  | Clock_tick
  | Idle

let all = [ Syscall; Trap; Ip_intr; Ip_output; Tcpip_other; Dev_intr; Clock_tick; Idle ]

let name = function
  | Syscall -> "syscalls"
  | Trap -> "traps"
  | Ip_intr -> "ip-intr"
  | Ip_output -> "ip-output"
  | Tcpip_other -> "tcpip-others"
  | Dev_intr -> "dev-intr"
  | Clock_tick -> "clock-tick"
  | Idle -> "idle"

let equal a b =
  match (a, b) with
  | Syscall, Syscall
  | Trap, Trap
  | Ip_intr, Ip_intr
  | Ip_output, Ip_output
  | Tcpip_other, Tcpip_other
  | Dev_intr, Dev_intr
  | Clock_tick, Clock_tick
  | Idle, Idle ->
    true
  | (Syscall | Trap | Ip_intr | Ip_output | Tcpip_other | Dev_intr | Clock_tick | Idle), _ ->
    false

let table2_sources = [ Syscall; Ip_output; Ip_intr; Tcpip_other; Trap ]
