type step = { prio : int; work_us : float; trigger : Trigger.kind option }

let scaled m us = Costs.scale_us (Machine.profile m) us

let syscall m ~work_us cb =
  let entry = (Machine.profile m).Costs.syscall_entry_us in
  Machine.submit_quantum m ~prio:Cpu.prio_kernel
    ~work_us:(entry +. scaled m work_us)
    ~trigger:(Some Trigger.Syscall) cb

let trap m ~work_us cb =
  let entry = (Machine.profile m).Costs.trap_entry_us in
  Machine.submit_quantum m ~prio:Cpu.prio_kernel
    ~work_us:(entry +. scaled m work_us)
    ~trigger:(Some Trigger.Trap) cb

let user m ~work_us cb =
  Machine.submit_quantum m ~prio:Cpu.prio_user ~work_us:(scaled m work_us) ~trigger:None cb

let softintr m ~source ~work_us cb =
  Machine.submit_quantum m ~prio:Cpu.prio_softintr ~work_us:(scaled m work_us)
    ~trigger:(Some source) cb

let context_switch m cb =
  Machine.submit_quantum m ~prio:Cpu.prio_kernel
    ~work_us:(Machine.profile m).Costs.context_switch_us ~trigger:None cb

let step_syscall ?(work_us = 4.0) m =
  let entry = (Machine.profile m).Costs.syscall_entry_us in
  { prio = Cpu.prio_kernel; work_us = entry +. scaled m work_us; trigger = Some Trigger.Syscall }

let step_trap ?(work_us = 12.0) m =
  let entry = (Machine.profile m).Costs.trap_entry_us in
  { prio = Cpu.prio_kernel; work_us = entry +. scaled m work_us; trigger = Some Trigger.Trap }

let step_user m ~work_us = { prio = Cpu.prio_user; work_us = scaled m work_us; trigger = None }

let step_ip_output ?(work_us = 7.0) m =
  { prio = Cpu.prio_kernel; work_us = scaled m work_us; trigger = Some Trigger.Ip_output }

let step_tcp_timer ?(work_us = 1.5) m =
  { prio = Cpu.prio_softintr; work_us = scaled m work_us; trigger = Some Trigger.Tcpip_other }

let step_ctx_switch m =
  { prio = Cpu.prio_kernel; work_us = (Machine.profile m).Costs.context_switch_us; trigger = None }

let run_script m steps k =
  let rec go = function
    | [] -> k (Engine.now (Machine.engine m))
    | s :: rest ->
      Machine.submit_quantum m ~prio:s.prio ~work_us:s.work_us ~trigger:s.trigger (fun _now ->
          go rest)
  in
  go steps
