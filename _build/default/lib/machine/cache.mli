(** Memory-locality model.

    The paper's performance arguments hinge on two locality effects that
    this module quantifies:

    - {b interrupt pollution}: a hardware interrupt evicts cache and TLB
      state belonging to the interrupted computation; the cost of
      reloading it is charged to the interrupt (see {!Costs}).  How much
      state there is to lose depends on the running workload: the
      paper's Table 3 shows the tight, cache-resident Flash server
      suffering more added pollution per timer interrupt than the
      context-switch-heavy Apache.  [sensitivity] captures this as a
      multiplier on the profile's baseline pollution cost.

    - {b aggregation warmth}: when several packets are processed in one
      batch (soft-timer polling with an aggregation quota > 1, paper
      §5.9), the kernel's protocol-processing code and data stay warm
      after the first packet, so follow-on packets are cheaper.
      [batch_cost] applies a warm-packet discount. *)

type locality = {
  sensitivity : float;
      (** Multiplier on {!Costs.profile.intr_cache_pollution_us}: 1.0
          reproduces the paper's 4.45 us total interrupt cost under the
          Apache workload. *)
  warm_fraction : float;
      (** Fraction of per-packet protocol-processing work remaining for
          the second and subsequent packets of one aggregated batch
          (1.0 = no aggregation benefit; the calibrated models use
          ~0.6). *)
}

val apache : locality
(** Multi-process server: frequent context switches already spoil
    locality, so marginal interrupt pollution is the baseline. *)

val flash : locality
(** Single-process event-driven server: excellent locality, hence more
    cache state for an interrupt to destroy. *)

val neutral : locality
(** Sensitivity 1, no aggregation benefit; for microbenchmarks. *)

val batch_cost : locality -> per_packet_us:float -> packets:int -> float
(** [batch_cost l ~per_packet_us ~packets] is the total processing cost
    of a batch: the first packet at full cost, the rest discounted by
    [warm_fraction].  [packets <= 0] costs 0. *)
