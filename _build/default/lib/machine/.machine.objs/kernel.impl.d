lib/machine/kernel.ml: Costs Cpu Engine Machine Trigger
