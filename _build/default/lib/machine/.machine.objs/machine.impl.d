lib/machine/machine.ml: Array Cache Costs Cpu Engine Float Fun Interrupt List Printf Prng Time_ns Trigger
