lib/machine/cpu.ml: Array Engine Queue Time_ns
