lib/machine/cache.ml:
