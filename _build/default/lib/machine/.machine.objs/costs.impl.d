lib/machine/costs.ml:
