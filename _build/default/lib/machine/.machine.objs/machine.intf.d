lib/machine/machine.mli: Cache Costs Cpu Dist Engine Interrupt Time_ns Trigger
