lib/machine/interrupt.mli: Cache Costs Cpu Dist Engine Prng Time_ns Trigger
