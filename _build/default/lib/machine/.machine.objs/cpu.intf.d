lib/machine/cpu.mli: Engine Time_ns
