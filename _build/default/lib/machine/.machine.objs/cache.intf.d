lib/machine/cache.mli:
