lib/machine/interrupt.ml: Array Cache Costs Cpu Dist Engine List Time_ns Trigger
