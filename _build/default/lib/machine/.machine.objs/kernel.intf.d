lib/machine/kernel.mli: Machine Time_ns Trigger
