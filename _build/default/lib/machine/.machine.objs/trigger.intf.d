lib/machine/trigger.mli:
