lib/machine/costs.mli:
