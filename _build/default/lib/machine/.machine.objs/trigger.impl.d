lib/machine/trigger.ml:
