type locality = { sensitivity : float; warm_fraction : float }

let apache = { sensitivity = 1.0; warm_fraction = 0.55 }
let flash = { sensitivity = 2.0; warm_fraction = 0.45 }
let neutral = { sensitivity = 1.0; warm_fraction = 1.0 }

let batch_cost l ~per_packet_us ~packets =
  if packets <= 0 then 0.0
  else per_packet_us +. (float_of_int (packets - 1) *. per_packet_us *. l.warm_fraction)
