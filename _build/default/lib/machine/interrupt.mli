(** Interrupt controller.

    Devices raise interrupts on {e lines}.  Delivering an interrupt
    submits a non-preemptible quantum at {!Cpu.prio_intr} whose duration
    is the profile's save/restore cost, plus the cache/TLB pollution
    cost scaled by the current workload locality, plus the device
    handler's own work.  When the quantum completes, the line's handler
    callback runs and the machine observes a trigger state (the "return
    from interrupt" point of the paper's §3).

    Each line latches at most one interrupt while another is in flight
    (in service or queued), like the 8259/8253 pair of the paper's
    testbed: a third coincident interrupt is {e lost}.  This is the
    mechanism behind the paper's observation that hardware-timer-driven
    rate clocking misses its target rate ("some timer interrupts are
    lost during periods when interrupts are disabled", §5.7). *)

type t

type line

val create :
  engine:Engine.t ->
  cpus:Cpu.t array ->
  profile:Costs.profile ->
  on_trigger:(Trigger.kind -> Time_ns.t -> unit) ->
  unit ->
  t

val set_locality : t -> Cache.locality -> unit
(** Locality sensitivity of the currently-running workload; scales the
    pollution component of every subsequent delivery.  Defaults to
    {!Cache.neutral}. *)

val line :
  t ->
  name:string ->
  source:Trigger.kind ->
  ?latch_depth:int ->
  ?spl_blockable:bool ->
  ?cpu:int ->
  handler:(Time_ns.t -> unit) ->
  unit ->
  line
(** Register an interrupt line.  [source] is the trigger-state kind
    observed when the handler returns; [handler] receives the completion
    time of each delivered interrupt.  [latch_depth] is the number of
    in-flight interrupts the line can hold before losing new ones:
    2 (default) for ordinary device lines (one in service + one latched
    in the PIC), 1 for periodic timers whose tick is simply gone if the
    previous one has not been serviced in time.  A [spl_blockable] line
    (default false) is additionally subject to the kernel's
    interrupt-disabled windows (see {!start_spl_sections}): a tick
    raised inside a window is deferred to its end, and a second tick in
    the same window is lost — the mechanism behind the paper's Â§5.7
    observation that hardware-timer pacing misses its target rate.
    [cpu] is the line's interrupt affinity (default CPU 0). *)

val start_spl_sections :
  t -> rng:Prng.t -> ?rate_per_sec:float -> ?duration_us:Dist.t -> unit -> unit
(** Generate interrupt-disabled windows: they begin as a Poisson process
    of the given rate (default 1300/s) and last [duration_us] (default
    uniform 40-180 us) â FreeBSD's splhigh/splclock critical sections
    (callout processing, scheduler, console).  Only [spl_blockable]
    lines are affected. *)

val raise_irq : t -> line -> ?handler_work:Time_ns.span -> unit -> bool
(** Assert the line.  Returns [false] when the interrupt was lost to
    the latch limit.  [handler_work] is the device handler's own
    processing time, default 0. *)

val raised : line -> int
(** Interrupts asserted on this line so far. *)

val lost : line -> int
(** Interrupts lost to the latch limit. *)

val delivered : line -> int
(** Handler completions so far. *)
