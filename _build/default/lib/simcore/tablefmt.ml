type align = Left | Right
type row = Cells of string list | Rule

type t = {
  title : string;
  headers : string list;
  aligns : align list;
  mutable rows : row list;  (* reversed *)
}

let create ~title ~columns =
  { title; headers = List.map fst columns; aligns = List.map snd columns; rows = [] }

let add_row t cells =
  if List.length cells <> List.length t.headers then
    invalid_arg "Tablefmt.add_row: wrong number of cells";
  t.rows <- Cells cells :: t.rows

let add_rule t = t.rows <- Rule :: t.rows

let pad align width s =
  let n = String.length s in
  if n >= width then s
  else begin
    let fill = String.make (width - n) ' ' in
    match align with Left -> s ^ fill | Right -> fill ^ s
  end

let render t =
  let rows = List.rev t.rows in
  let widths =
    List.fold_left
      (fun acc row ->
        match row with
        | Rule -> acc
        | Cells cells -> List.map2 (fun w c -> Stdlib.max w (String.length c)) acc cells)
      (List.map String.length t.headers)
      rows
  in
  let buf = Buffer.create 1024 in
  let horizontal () =
    Buffer.add_char buf '+';
    List.iter (fun w -> Buffer.add_string buf (String.make (w + 2) '-'); Buffer.add_char buf '+') widths;
    Buffer.add_char buf '\n'
  in
  let emit_cells aligns cells =
    Buffer.add_char buf '|';
    List.iteri
      (fun i c ->
        let w = List.nth widths i in
        let a = List.nth aligns i in
        Buffer.add_char buf ' ';
        Buffer.add_string buf (pad a w c);
        Buffer.add_string buf " |")
      cells;
    Buffer.add_char buf '\n'
  in
  Buffer.add_string buf t.title;
  Buffer.add_char buf '\n';
  horizontal ();
  emit_cells (List.map (fun _ -> Left) t.headers) t.headers;
  horizontal ();
  List.iter
    (fun row -> match row with Rule -> horizontal () | Cells cells -> emit_cells t.aligns cells)
    rows;
  horizontal ();
  Buffer.contents buf

let print t = print_string (render t)

let cell_f ?(decimals = 2) f =
  if Float.is_nan f then "-" else Printf.sprintf "%.*f" decimals f

let cell_i i = string_of_int i

let cell_pct ?(decimals = 1) f =
  if Float.is_nan f then "-" else Printf.sprintf "%.*f%%" decimals (f *. 100.0)
