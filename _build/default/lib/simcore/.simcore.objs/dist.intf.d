lib/simcore/dist.mli: Prng Time_ns
