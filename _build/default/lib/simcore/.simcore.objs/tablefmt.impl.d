lib/simcore/tablefmt.ml: Buffer Float List Printf Stdlib String
