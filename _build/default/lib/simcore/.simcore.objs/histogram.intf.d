lib/simcore/histogram.mli:
