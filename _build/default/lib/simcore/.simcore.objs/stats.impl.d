lib/simcore/stats.ml: Array Float Stdlib
