lib/simcore/histogram.ml: Array Buffer List Printf Stdlib String
