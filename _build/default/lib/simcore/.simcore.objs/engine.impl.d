lib/simcore/engine.ml: Heap Time_ns
