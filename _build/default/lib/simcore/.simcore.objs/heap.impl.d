lib/simcore/heap.ml: Array List
