lib/simcore/tablefmt.mli:
