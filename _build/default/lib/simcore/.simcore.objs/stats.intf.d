lib/simcore/stats.mli:
