lib/simcore/dist.ml: Float List Prng Time_ns
