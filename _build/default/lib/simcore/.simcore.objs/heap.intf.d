lib/simcore/heap.mli:
