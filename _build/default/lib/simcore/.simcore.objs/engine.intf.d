lib/simcore/engine.mli: Time_ns
