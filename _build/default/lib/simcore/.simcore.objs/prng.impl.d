lib/simcore/prng.ml: Array Int64
