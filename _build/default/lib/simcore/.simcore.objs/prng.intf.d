lib/simcore/prng.mli:
