lib/simcore/time_ns.ml: Float Format Int64 Stdlib
