lib/simcore/series.ml: Array Float Int64 List Time_ns
