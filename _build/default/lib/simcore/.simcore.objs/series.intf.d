lib/simcore/series.mli: Time_ns
