(** Timestamped scalar series with windowed aggregation.

    Figure 5 of the paper plots the median trigger interval within
    consecutive 1 ms and 10 ms windows over a 10 s run; this module
    provides exactly that reduction. *)

type t

val create : unit -> t

val add : t -> Time_ns.t -> float -> unit
(** [add t time v] records observation [v] at [time].  Times must be
    non-decreasing; out-of-order points raise [Invalid_argument]. *)

val length : t -> int

val windowed_medians : t -> window:Time_ns.span -> (Time_ns.t * float) list
(** Partition the time axis into consecutive windows of the given span,
    starting at the first observation, and return
    [(window_start, median_within_window)] for every non-empty window.
    @raise Invalid_argument if [window <= 0]. *)

val windowed_means : t -> window:Time_ns.span -> (Time_ns.t * float) list
(** Same partition, mean instead of median. *)
