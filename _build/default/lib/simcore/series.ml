type t = {
  mutable times : Time_ns.t array;
  mutable values : float array;
  mutable size : int;
}

let create () = { times = [||]; values = [||]; size = 0 }

let add t time v =
  let last = t.size - 1 in
  if t.size > 0 && Time_ns.(time < t.times.(last)) then
    invalid_arg "Series.add: timestamps must be non-decreasing";
  let cap = Array.length t.times in
  if t.size = cap then begin
    let ncap = if cap = 0 then 64 else cap * 2 in
    let ntimes = Array.make ncap Time_ns.zero in
    let nvalues = Array.make ncap 0.0 in
    Array.blit t.times 0 ntimes 0 t.size;
    Array.blit t.values 0 nvalues 0 t.size;
    t.times <- ntimes;
    t.values <- nvalues
  end;
  t.times.(t.size) <- time;
  t.values.(t.size) <- v;
  t.size <- t.size + 1

let length t = t.size

let windowed t ~window ~reduce =
  if Time_ns.(window <= 0L) then invalid_arg "Series.windowed: window must be positive";
  if t.size = 0 then []
  else begin
    let origin = t.times.(0) in
    let result = ref [] in
    let bucket = ref [] in
    let bucket_start = ref origin in
    let flush () =
      match !bucket with
      | [] -> ()
      | vs -> result := (!bucket_start, reduce (List.rev vs)) :: !result
    in
    for i = 0 to t.size - 1 do
      let wstart =
        let offset = Time_ns.(t.times.(i) - origin) in
        let idx = Int64.div offset window in
        Time_ns.(origin + Int64.mul idx window)
      in
      if Time_ns.(wstart > !bucket_start) then begin
        flush ();
        bucket := [];
        bucket_start := wstart
      end;
      bucket := t.values.(i) :: !bucket
    done;
    flush ();
    List.rev !result
  end

let median_of_list vs =
  let a = Array.of_list vs in
  Array.sort Float.compare a;
  let n = Array.length a in
  if n mod 2 = 1 then a.(n / 2) else (a.((n / 2) - 1) +. a.(n / 2)) /. 2.0

let mean_of_list vs =
  List.fold_left ( +. ) 0.0 vs /. float_of_int (List.length vs)

let windowed_medians t ~window = windowed t ~window ~reduce:median_of_list
let windowed_means t ~window = windowed t ~window ~reduce:mean_of_list
