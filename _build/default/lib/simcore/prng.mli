(** Deterministic pseudo-random number generation.

    A small, explicit-state PRNG (xoshiro256++ seeded through splitmix64)
    so that every simulation run is reproducible from a single integer
    seed and no global state is touched.  Quality is far beyond what the
    stochastic workload models need, and the explicit state makes it easy
    to give independent streams to independent model components. *)

type t
(** Mutable generator state. *)

val create : seed:int -> t
(** [create ~seed] builds a generator deterministically from [seed].
    Equal seeds yield equal streams. *)

val split : t -> t
(** [split t] derives a new generator from [t], advancing [t].  The two
    streams are statistically independent; use this to hand sub-streams
    to model components so that adding draws in one component does not
    perturb another. *)

val copy : t -> t
(** [copy t] duplicates the state; the copy replays the same future
    stream as [t]. *)

val bits64 : t -> int64
(** Next raw 64-bit output. *)

val float : t -> float
(** [float t] is uniform in [\[0, 1)]. *)

val float_range : t -> float -> float -> float
(** [float_range t lo hi] is uniform in [\[lo, hi)].
    @raise Invalid_argument if [hi < lo]. *)

val int : t -> int -> int
(** [int t n] is uniform in [\[0, n)].  @raise Invalid_argument if
    [n <= 0]. *)

val bool : t -> bool
(** Fair coin. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)
