(** ASCII table rendering for the benchmark harness.

    Every experiment prints its results as a table mirroring the paper's
    layout, so a reader can diff "paper value" against "measured value"
    row by row.  Cells are strings; columns are sized to content. *)

type align = Left | Right

type t

val create : title:string -> columns:(string * align) list -> t
(** A table with the given title and column headers. *)

val add_row : t -> string list -> unit
(** @raise Invalid_argument when the arity differs from the header. *)

val add_rule : t -> unit
(** Insert a horizontal separator after the current last row. *)

val render : t -> string
(** The formatted table, trailing newline included. *)

val print : t -> unit
(** [print t] writes [render t] to stdout. *)

val cell_f : ?decimals:int -> float -> string
(** Format a float cell ([decimals] defaults to 2). *)

val cell_i : int -> string

val cell_pct : ?decimals:int -> float -> string
(** Format a percentage cell, e.g. [cell_pct 0.253 = "25.3%"] with
    [decimals = 1]. *)
