type event = {
  time : Time_ns.t;
  seq : int;
  action : unit -> unit;
  live : int ref;  (* shared with the owning engine's pending counter *)
  mutable state : [ `Pending | `Cancelled | `Done ];
}

type handle = event

type t = {
  mutable clock : Time_ns.t;
  mutable next_seq : int;
  live : int ref;
  heap : event Heap.t;
}

let compare_event a b =
  let c = Time_ns.compare a.time b.time in
  if c <> 0 then c else compare a.seq b.seq

let create () =
  { clock = Time_ns.zero; next_seq = 0; live = ref 0; heap = Heap.create ~cmp:compare_event }

let now t = t.clock
let pending t = !(t.live)

let schedule_at t time f =
  let time = Time_ns.max time t.clock in
  let ev = { time; seq = t.next_seq; action = f; live = t.live; state = `Pending } in
  t.next_seq <- t.next_seq + 1;
  incr t.live;
  Heap.push t.heap ev;
  ev

let schedule_after t d f =
  let d = Time_ns.max d 0L in
  schedule_at t Time_ns.(t.clock + d) f

let cancel ev =
  if ev.state = `Pending then begin
    ev.state <- `Cancelled;
    decr ev.live
  end

let is_scheduled ev = ev.state = `Pending

(* Pop the next pending event, discarding cancelled ones lazily. *)
let rec next_pending t =
  match Heap.pop t.heap with
  | None -> None
  | Some ev when ev.state = `Cancelled -> next_pending t
  | some -> some

let fire t ev =
  t.clock <- ev.time;
  ev.state <- `Done;
  decr t.live;
  ev.action ()

let step t =
  match next_pending t with
  | None -> false
  | Some ev ->
    fire t ev;
    true

let run_until t limit =
  let rec loop () =
    match Heap.peek t.heap with
    | None -> ()
    | Some ev when ev.state = `Cancelled ->
      ignore (Heap.pop t.heap : event option);
      loop ()
    | Some ev when Time_ns.(ev.time <= limit) ->
      (match next_pending t with
      | Some ev' ->
        fire t ev';
        loop ()
      | None -> ())
    | Some _ -> ()
  in
  loop ();
  if Time_ns.(limit > t.clock) then t.clock <- limit

let run t = while step t do () done
