type t =
  | Constant of float
  | Uniform of float * float
  | Exponential of float
  | Pareto of { scale : float; shape : float }
  | Lognormal of { mu : float; sigma : float }
  | Erlang of { k : int; mean : float }
  | Mixture of (float * t) list
  | Shifted of float * t

(* Box–Muller; one variate per call keeps the generator state simple. *)
let normal rng =
  let u1 = 1.0 -. Prng.float rng in
  let u2 = Prng.float rng in
  sqrt (-2.0 *. log u1) *. cos (2.0 *. Float.pi *. u2)

let rec draw_raw t rng =
  match t with
  | Constant c -> c
  | Uniform (lo, hi) -> Prng.float_range rng lo hi
  | Exponential mean ->
    let u = 1.0 -. Prng.float rng in
    -.mean *. log u
  | Pareto { scale; shape } ->
    let u = 1.0 -. Prng.float rng in
    scale /. (u ** (1.0 /. shape))
  | Lognormal { mu; sigma } -> exp (mu +. (sigma *. normal rng))
  | Erlang { k; mean } ->
    let rate = float_of_int k /. mean in
    let acc = ref 0.0 in
    for _ = 1 to k do
      let u = 1.0 -. Prng.float rng in
      acc := !acc -. (log u /. rate)
    done;
    !acc
  | Mixture branches ->
    let total = List.fold_left (fun acc (w, _) -> acc +. w) 0.0 branches in
    let x = Prng.float rng *. total in
    let rec pick acc = function
      | [] -> invalid_arg "Dist.draw: empty mixture"
      | [ (_, d) ] -> draw_raw d rng
      | (w, d) :: rest -> if x < acc +. w then draw_raw d rng else pick (acc +. w) rest
    in
    pick 0.0 branches
  | Shifted (c, d) -> c +. draw_raw d rng

let draw t rng = Float.max 0.0 (draw_raw t rng)

let rec mean = function
  | Constant c -> c
  | Uniform (lo, hi) -> (lo +. hi) /. 2.0
  | Exponential m -> m
  | Pareto { scale; shape } ->
    if shape <= 1.0 then infinity else scale *. shape /. (shape -. 1.0)
  | Lognormal { mu; sigma } -> exp (mu +. (sigma *. sigma /. 2.0))
  | Erlang { k = _; mean = m } -> m
  | Mixture branches ->
    let total = List.fold_left (fun acc (w, _) -> acc +. w) 0.0 branches in
    List.fold_left (fun acc (w, d) -> acc +. (w /. total *. mean d)) 0.0 branches
  | Shifted (c, d) -> c +. mean d

let span t rng = Time_ns.of_us (draw t rng)
