(** Simulation timestamps and durations, in integer nanoseconds.

    All simulation time in this project is carried as [int64] nanoseconds
    since the start of the simulation.  Nanosecond resolution comfortably
    expresses both the paper's measurement clock (CPU cycles at a few
    hundred MHz, i.e. a handful of ns per tick) and its interrupt clock
    (1 kHz, i.e. 1 ms), while [int64] gives ~292 years of range, far more
    than any simulated run. *)

type t = int64
(** A point in simulated time, in nanoseconds since simulation start. *)

type span = int64
(** A duration, in nanoseconds.  Spans may be added to times and to each
    other; negative spans are permitted in arithmetic but most consumers
    require non-negative values. *)

val zero : t
(** The simulation epoch. *)

val ( + ) : t -> span -> t
(** [t + d] is the instant [d] nanoseconds after [t]. *)

val ( - ) : t -> t -> span
(** [t1 - t2] is the (possibly negative) span from [t2] to [t1]. *)

val compare : t -> t -> int
(** Total order on instants. *)

val ( < ) : t -> t -> bool
val ( <= ) : t -> t -> bool
val ( > ) : t -> t -> bool
val ( >= ) : t -> t -> bool
val ( = ) : t -> t -> bool

val min : t -> t -> t
val max : t -> t -> t

val of_ns : int -> span
(** [of_ns n] is a span of [n] nanoseconds. *)

val of_us : float -> span
(** [of_us us] is a span of [us] microseconds, rounded to the nearest
    nanosecond. *)

val of_ms : float -> span
(** [of_ms ms] is a span of [ms] milliseconds, rounded to the nearest
    nanosecond. *)

val of_sec : float -> span
(** [of_sec s] is a span of [s] seconds, rounded to the nearest
    nanosecond. *)

val to_ns : span -> int64
(** Identity; exported for symmetry. *)

val to_us : span -> float
(** [to_us d] is [d] expressed in microseconds. *)

val to_ms : span -> float
(** [to_ms d] is [d] expressed in milliseconds. *)

val to_sec : span -> float
(** [to_sec d] is [d] expressed in seconds. *)

val mul : span -> int -> span
(** [mul d k] is [d] repeated [k] times. *)

val divide : span -> int -> span
(** [divide d k] is [d / k] using integer division.  @raise Division_by_zero
    when [k = 0]. *)

val scale : span -> float -> span
(** [scale d f] is [d] scaled by [f], rounded to the nearest nanosecond. *)

val pp : Format.formatter -> t -> unit
(** Human-readable rendering with an adaptive unit (ns, us, ms or s). *)

val to_string : t -> string
(** [to_string t] is [Format.asprintf "%a" pp t]. *)
