type t = int64
type span = int64

let zero = 0L
let ( + ) = Int64.add
let ( - ) = Int64.sub
let compare = Int64.compare
let ( < ) a b = Int64.compare a b < 0
let ( <= ) a b = Int64.compare a b <= 0
let ( > ) a b = Int64.compare a b > 0
let ( >= ) a b = Int64.compare a b >= 0
let ( = ) a b = Int64.equal a b
let min a b = if a <= b then a else b
let max a b = if a >= b then a else b
let of_ns n = Int64.of_int n
let round_float f = Int64.of_float (Float.round f)
let of_us us = round_float (us *. 1e3)
let of_ms ms = round_float (ms *. 1e6)
let of_sec s = round_float (s *. 1e9)
let to_ns d = d
let to_us d = Int64.to_float d /. 1e3
let to_ms d = Int64.to_float d /. 1e6
let to_sec d = Int64.to_float d /. 1e9
let mul d k = Int64.mul d (Int64.of_int k)
let divide d k = Int64.div d (Int64.of_int k)
let scale d f = round_float (Int64.to_float d *. f)

let pp ppf t =
  let open Stdlib in
  let abs = Int64.abs t in
  if Int64.compare abs 1_000L < 0 then Format.fprintf ppf "%Ldns" t
  else if Int64.compare abs 1_000_000L < 0 then
    Format.fprintf ppf "%.2fus" (to_us t)
  else if Int64.compare abs 1_000_000_000L < 0 then
    Format.fprintf ppf "%.3fms" (to_ms t)
  else Format.fprintf ppf "%.3fs" (to_sec t)

let to_string t = Format.asprintf "%a" pp t
