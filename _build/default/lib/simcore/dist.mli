(** Random-variate distributions used by the workload models.

    A [t] is a description of a distribution over non-negative durations
    (or scalars); [draw] samples it using an explicit generator.  The
    workload models in [Workloads] describe inter-arrival and service
    processes with these. *)

type t =
  | Constant of float  (** always the given value *)
  | Uniform of float * float  (** uniform on [\[lo, hi)] *)
  | Exponential of float  (** exponential with the given mean *)
  | Pareto of { scale : float; shape : float }
      (** Pareto with minimum [scale] and tail index [shape]; heavy-tailed
          for [shape <= 2].  Used for burstiness in workload models. *)
  | Lognormal of { mu : float; sigma : float }
      (** lognormal with parameters of the underlying normal *)
  | Erlang of { k : int; mean : float }
      (** sum of [k] exponentials; total mean [mean].  Lower variance
          than exponential, for service-like stages. *)
  | Mixture of (float * t) list
      (** weighted mixture; weights need not sum to one, they are
          normalised at draw time *)
  | Shifted of float * t  (** [Shifted (c, d)] draws [c + draw d] *)

val draw : t -> Prng.t -> float
(** [draw t rng] samples one variate.  Results are clamped below at
    [0.] for every constructor except [Shifted] with a negative shift,
    where the clamp applies after shifting. *)

val mean : t -> float
(** Analytic mean of the distribution (infinite Pareto means for
    [shape <= 1] are returned as [infinity]). *)

val span : t -> Prng.t -> Time_ns.span
(** [span t rng] draws a variate interpreted as microseconds and
    converts it to a {!Time_ns.span}.  All workload-model distributions
    in this project are parameterised in microseconds. *)
