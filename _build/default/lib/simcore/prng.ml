type t = { mutable s0 : int64; mutable s1 : int64; mutable s2 : int64; mutable s3 : int64 }

(* splitmix64: used only to expand the seed into the xoshiro state, per
   the xoshiro authors' recommendation. *)
let splitmix64 state =
  let open Int64 in
  state := add !state 0x9E3779B97F4A7C15L;
  let z = !state in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  logxor z (shift_right_logical z 31)

let create ~seed =
  let st = ref (Int64.of_int seed) in
  let s0 = splitmix64 st in
  let s1 = splitmix64 st in
  let s2 = splitmix64 st in
  let s3 = splitmix64 st in
  { s0; s1; s2; s3 }

let rotl x k = Int64.logor (Int64.shift_left x k) (Int64.shift_right_logical x (64 - k))

let bits64 t =
  let open Int64 in
  let result = add (rotl (add t.s0 t.s3) 23) t.s0 in
  let tmp = shift_left t.s1 17 in
  t.s2 <- logxor t.s2 t.s0;
  t.s3 <- logxor t.s3 t.s1;
  t.s1 <- logxor t.s1 t.s2;
  t.s0 <- logxor t.s0 t.s3;
  t.s2 <- logxor t.s2 tmp;
  t.s3 <- rotl t.s3 45;
  result

let split t =
  let st = ref (bits64 t) in
  let s0 = splitmix64 st in
  let s1 = splitmix64 st in
  let s2 = splitmix64 st in
  let s3 = splitmix64 st in
  { s0; s1; s2; s3 }

let copy t = { s0 = t.s0; s1 = t.s1; s2 = t.s2; s3 = t.s3 }

let float t =
  (* 53 high bits -> uniform double in [0,1). *)
  let bits = Int64.shift_right_logical (bits64 t) 11 in
  Int64.to_float bits *. 0x1.0p-53

let float_range t lo hi =
  if hi < lo then invalid_arg "Prng.float_range: hi < lo";
  lo +. ((hi -. lo) *. float t)

let int t n =
  if n <= 0 then invalid_arg "Prng.int: bound must be positive";
  (* Rejection-free for our purposes: modulo bias is negligible for the
     bounds used in this project (all far below 2^63). *)
  Int64.to_int (Int64.rem (Int64.shift_right_logical (bits64 t) 1) (Int64.of_int n))

let bool t = Int64.logand (bits64 t) 1L = 1L

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done
