lib/core/rate_clock.mli: Softtimer Stats Time_ns
