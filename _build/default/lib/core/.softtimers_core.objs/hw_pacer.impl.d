lib/core/hw_pacer.ml: Cpu Engine Interrupt Machine Stats Time_ns Trigger
