lib/core/softtimer.mli: Machine Stats Time_ns
