lib/core/rate_clock.ml: Engine Machine Softtimer Stats Time_ns
