lib/core/net_poll.mli: Softtimer Time_ns
