lib/core/hw_pacer.mli: Machine Stats Time_ns
