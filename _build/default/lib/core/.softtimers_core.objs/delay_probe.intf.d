lib/core/delay_probe.mli: Machine Series Softtimer Stats Trigger
