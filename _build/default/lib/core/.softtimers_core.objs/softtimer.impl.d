lib/core/softtimer.ml: Costs Cpu Engine Float Int64 Machine Stats Time_ns Timing_wheel
