lib/core/net_poll.ml: Float Softtimer Time_ns
