lib/core/delay_probe.ml: Float Int64 List Machine Series Softtimer Stats Time_ns Trigger
