(** Measurement probes for the paper's instrumentation.

    {!Gap_recorder} measures the time between successive trigger states
    (Table 1, Figures 4–6); {!Event_delay} measures how late soft-timer
    events fire relative to their scheduled time (§3's delay variable
    [d], §5.2's maximal-frequency handler). *)

module Gap_recorder : sig
  type t

  val attach :
    ?include_kinds:Trigger.kind list ->
    ?exclude_kinds:Trigger.kind list ->
    ?record_series:bool ->
    Machine.t ->
    t
  (** Record inter-trigger gaps.  A trigger kind is counted when it is
      in [include_kinds] (default: all) and not in [exclude_kinds]
      (default: none) — Figure 6 removes one source at a time this way.
      With [record_series] (default false), each gap is also stored with
      its timestamp for the windowed-median analysis of Figure 5. *)

  val sample : t -> Stats.Sample.t
  (** Gaps, in microseconds. *)

  val series : t -> Series.t
  (** Timestamped gaps (empty unless [record_series] was set). *)

  val count : t -> Trigger.kind -> int
  (** Triggers counted, by kind (after filtering). *)

  val total : t -> int

  val source_fractions : t -> (Trigger.kind * float) list
  (** Fraction of counted triggers contributed by each of the paper's
      Table 2 sources, in Table 2's order. *)

  val reset_clock : t -> unit
  (** Forget the previous trigger so the next one starts a fresh gap
      (use after a warm-up period). *)
end

module Event_delay : sig
  type t

  val start_periodic : Softtimer.t -> ticks:int64 -> t
  (** Repeatedly schedule a null-handler soft event [ticks] measurement
      ticks ahead (rescheduled from its own handler) and record each
      firing delay: actual minus scheduled time, in microseconds.
      [ticks = 0] reproduces §5.2's "event at every trigger state". *)

  val stop : t -> unit

  val delays : t -> Stats.Sample.t
  (** Firing delay beyond the scheduled instant, in microseconds. *)

  val inter_firing : t -> Stats.Sample.t
  (** Gaps between consecutive firings, in microseconds (§5.2 reports a
      31.5 us mean under the Apache workload for [ticks = 0]). *)

  val fired : t -> int
end
