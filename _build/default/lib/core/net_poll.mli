(** Soft-timer network polling (paper §4.2, §5.9).

    Instead of letting the network interfaces interrupt, a soft-timer
    event periodically polls them; packets found are processed as one
    batch, improving memory locality, and interrupt costs disappear.
    The poll interval is adapted so that on average a target number of
    packets — the {e aggregation quota} — is found per poll.

    The poller is decoupled from the NIC type: it drives a [poll]
    closure that drains the interfaces and returns the number of packets
    found.  (Switching the NICs to {!Nic.Polled} mode, and the idle-time
    fall-back to interrupts, is the caller's wiring; see
    {!Workloads.Webserver}.) *)

type t

val create :
  Softtimer.t ->
  quota:float ->
  poll:(Time_ns.t -> int) ->
  ?min_interval:Time_ns.span ->
  ?max_interval:Time_ns.span ->
  ?initial_interval:Time_ns.span ->
  unit ->
  t
(** [quota] is the target mean packets-per-poll (the paper evaluates 1,
    2, 5, 10, 15).  The interval is bounded to
    [[min_interval, max_interval]] (defaults 10 us and 1 ms — the
    backup-clock granularity).  [initial_interval] defaults to 50 us.
    @raise Invalid_argument if [quota <= 0]. *)

val start : t -> unit
val stop : t -> unit

val current_interval : t -> Time_ns.span
val polls : t -> int
val packets : t -> int

val mean_batch : t -> float
(** Mean packets found per poll so far. *)
