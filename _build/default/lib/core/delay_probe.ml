module Gap_recorder = struct
  type t = {
    machine : Machine.t;
    included : Trigger.kind -> bool;
    record_series : bool;
    sample : Stats.Sample.t;
    series : Series.t;
    counts : (Trigger.kind * int ref) list;
    mutable last : Time_ns.t option;
    mutable total : int;
  }

  let attach ?include_kinds ?(exclude_kinds = []) ?(record_series = false) machine =
    let included kind =
      (match include_kinds with
      | None -> true
      | Some kinds -> List.exists (Trigger.equal kind) kinds)
      && not (List.exists (Trigger.equal kind) exclude_kinds)
    in
    let t =
      {
        machine;
        included;
        record_series;
        sample = Stats.Sample.create ();
        series = Series.create ();
        counts = List.map (fun k -> (k, ref 0)) Trigger.all;
        last = None;
        total = 0;
      }
    in
    Machine.add_observer machine (fun kind now ->
        if t.included kind then begin
          incr (List.assq kind t.counts);
          t.total <- t.total + 1;
          (match t.last with
          | Some prev ->
            let gap_us = Time_ns.to_us Time_ns.(now - prev) in
            Stats.Sample.add t.sample gap_us;
            if t.record_series then Series.add t.series now gap_us
          | None -> ());
          t.last <- Some now
        end);
    t

  let sample t = t.sample
  let series t = t.series
  let count t kind = !(List.assq kind t.counts)
  let total t = t.total

  let source_fractions t =
    let counted = List.fold_left (fun acc k -> acc + count t k) 0 Trigger.table2_sources in
    List.map
      (fun k ->
        let f = if counted = 0 then 0.0 else float_of_int (count t k) /. float_of_int counted in
        (k, f))
      Trigger.table2_sources

  let reset_clock t = t.last <- None
end

module Event_delay = struct
  type t = {
    st : Softtimer.t;
    ticks : int64;
    delays : Stats.Sample.t;
    inter : Stats.Sample.t;
    mutable last_fire : Time_ns.t option;
    mutable running : bool;
    mutable fired : int;
  }

  let rec arm t =
    if t.running then begin
      let st = t.st in
      let sched_tick = Softtimer.measure_time st in
      let due_tick = Int64.add sched_tick (Int64.add t.ticks 1L) in
      let tick_ns = 1e9 /. Int64.to_float (Softtimer.measure_resolution st) in
      let due_ns = Int64.of_float (Float.ceil (Int64.to_float due_tick *. tick_ns)) in
      ignore
        (Softtimer.schedule_soft_event st ~ticks:t.ticks (fun now ->
             t.fired <- t.fired + 1;
             Stats.Sample.add t.delays (Time_ns.to_us Time_ns.(now - due_ns));
             (match t.last_fire with
             | Some prev -> Stats.Sample.add t.inter (Time_ns.to_us Time_ns.(now - prev))
             | None -> ());
             t.last_fire <- Some now;
             arm t)
          : Softtimer.handle)
    end

  let start_periodic st ~ticks =
    let t =
      {
        st;
        ticks;
        delays = Stats.Sample.create ();
        inter = Stats.Sample.create ();
        last_fire = None;
        running = true;
        fired = 0;
      }
    in
    arm t;
    t

  let stop t = t.running <- false
  let delays t = t.delays
  let inter_firing t = t.inter
  let fired t = t.fired
end
