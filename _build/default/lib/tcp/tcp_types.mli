(** Parameters of the FreeBSD-2.2.6-era TCP the paper builds on.

    The paper's Tables 6/7 compare this stack's slow-start behaviour
    against rate-based clocking on a high bandwidth-delay path, so the
    details that matter are the initial window (1 segment — pre-RFC2414),
    delayed ACKs (every second segment, backed by a coarse 200 ms
    heartbeat timer) and per-ACK window growth. *)

type params = {
  mss : int;  (** Segment payload, bytes (1448 on Ethernet, §5.8). *)
  initial_cwnd : int;  (** Initial congestion window, segments. *)
  ack_every : int;
      (** Receiver ACKs immediately once this many segments are
          unacknowledged (2, RFC 1122 delayed ACK). *)
  delack_period : Time_ns.span;
      (** The coarse delayed-ACK heartbeat: pending ACKs are flushed at
          absolute multiples of this period (200 ms in BSD). *)
  ssthresh : int;
      (** Slow-start threshold in segments; effectively unbounded in the
          paper's loss-free WAN experiments. *)
  awnd : int;
      (** Receiver's advertised window, segments.  1024 full-size
          segments (~1.5 MB with RFC 1323 window scaling) comfortably
          covers the paper's largest bandwidth-delay product while
          keeping the emulated router loss-free, matching §5.8. *)
  rto : Time_ns.span;
      (** Retransmission timeout (coarse, fixed: BSD's initial 1 s). *)
}

val default : params

type segment = {
  seq : int;  (** Segment index within the transfer, from 0. *)
  is_ack : bool;
  ack_upto : int;  (** Cumulative: all segments below this are acked. *)
}

val make_data : params -> seq:int -> born:Time_ns.t -> segment Packet.t
(** A full-size data segment (payload + 52 bytes of headers). *)

val make_ack : ack_upto:int -> born:Time_ns.t -> segment Packet.t
(** A bare cumulative ACK. *)
