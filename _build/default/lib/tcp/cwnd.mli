(** Congestion-window accounting: slow start and congestion avoidance.

    Growth is per received ACK (not per byte acked), as in BSD: below
    [ssthresh] each ACK adds one MSS (exponential growth, halved in
    practice by delayed ACKs — the "typically two more packets per
    acknowledged packet" of the paper's Appendix A.2); above it, each
    ACK adds [1/cwnd] MSS. *)

type t

val create : Tcp_types.params -> t

val window : t -> int
(** Current window, in whole segments (at least 1). *)

val on_ack : t -> unit
(** Account one received ACK. *)

val in_slow_start : t -> bool

val acks_seen : t -> int

val ssthresh : t -> int

val on_timeout : t -> flight:int -> unit
(** Retransmission timeout: [ssthresh <- max (flight/2) 2], window back
    to one segment (slow start restarts). *)

val on_fast_retransmit : t -> flight:int -> unit
(** Triple duplicate ACK: [ssthresh <- max (flight/2) 2] and the window
    continues from there (Reno-style halving, without the inflation
    bookkeeping). *)
