type t = {
  total : int;
  mutable sent : int;
  mutable start_fn : unit -> unit;
}

let create engine params ~total_segments ~interval ~transmit ?(jitter = fun () -> 0L)
    ?(on_last_sent = fun _ -> ()) () =
  if total_segments < 0 then invalid_arg "Paced_sender.create: negative transfer size";
  if Time_ns.(interval <= 0L) then invalid_arg "Paced_sender.create: interval must be positive";
  let t = { total = total_segments; sent = 0; start_fn = (fun () -> ()) } in
  let rec send_one ideal () =
    if t.sent < t.total then begin
      let now = Engine.now engine in
      transmit now (Tcp_types.make_data params ~seq:t.sent ~born:now);
      t.sent <- t.sent + 1;
      if t.sent = t.total then on_last_sent now
      else begin
        let next_ideal = Time_ns.(ideal + interval) in
        let at = Time_ns.(next_ideal + jitter ()) in
        ignore (Engine.schedule_at engine at (send_one next_ideal) : Engine.handle)
      end
    end
  in
  t.start_fn <-
    (fun () ->
      let now = Engine.now engine in
      ignore (Engine.schedule_at engine Time_ns.(now + jitter ()) (send_one now) : Engine.handle));
  t

let start t = t.start_fn ()
let sent t = t.sent

let create_with_rate_clock st params ~total_segments ~target_interval ~min_interval ~transmit
    ?(on_last_sent = fun _ -> ()) () =
  if total_segments < 0 then
    invalid_arg "Paced_sender.create_with_rate_clock: negative transfer size";
  let t = { total = total_segments; sent = 0; start_fn = (fun () -> ()) } in
  let clock =
    Rate_clock.create st ~target_interval ~min_interval
      ~send:(fun now ->
        if t.sent >= t.total then false
        else begin
          transmit now (Tcp_types.make_data params ~seq:t.sent ~born:now);
          t.sent <- t.sent + 1;
          if t.sent = t.total then on_last_sent now;
          true
        end)
      ()
  in
  t.start_fn <- (fun () -> Rate_clock.start clock);
  (t, clock)
