module Int_set = Set.Make (Int)

type t = {
  engine : Engine.t;
  params : Tcp_types.params;
  send_ack : Time_ns.t -> ack_upto:int -> unit;
  mutable next_expected : int;
  mutable ooo : Int_set.t;  (* out-of-order segments above next_expected *)
  mutable acked_upto : int;
  mutable app_read_upto : int;  (* segments the app has consumed *)
  mutable app_read_delay : Time_ns.span option;
  mutable acks_sent : int;
  mutable biggest_ack : int;
  mutable running : bool;
}

(* An ACK may only cover data the application has read (the socket
   buffer is drained by reads; Appendix A.3, Figure 7 step 3). *)
let ackable t =
  match t.app_read_delay with None -> t.next_expected | Some _ -> t.app_read_upto

let emit_ack t now =
  let upto = ackable t in
  if upto > t.acked_upto then begin
    t.biggest_ack <- max t.biggest_ack (upto - t.acked_upto);
    t.acked_upto <- upto;
    t.acks_sent <- t.acks_sent + 1;
    t.send_ack now ~ack_upto:upto
  end

let rec heartbeat t () =
  if t.running then begin
    emit_ack t (Engine.now t.engine);
    ignore (Engine.schedule_after t.engine t.params.Tcp_types.delack_period (heartbeat t)
             : Engine.handle)
  end

let create engine params ~send_ack =
  let t =
    {
      engine;
      params;
      send_ack;
      next_expected = 0;
      ooo = Int_set.empty;
      acked_upto = 0;
      app_read_upto = 0;
      app_read_delay = None;
      acks_sent = 0;
      biggest_ack = 0;
      running = true;
    }
  in
  (* Align the first heartbeat to an absolute multiple of the period. *)
  let period = params.Tcp_types.delack_period in
  let now = Engine.now engine in
  let next_multiple =
    let k = Int64.div now period in
    Int64.mul (Int64.add k 1L) period
  in
  ignore
    (Engine.schedule_at engine next_multiple (fun () -> heartbeat t ()) : Engine.handle);
  t

let schedule_app_read t seq =
  ignore seq;
  match t.app_read_delay with
  | None -> t.app_read_upto <- t.next_expected
  | Some d ->
    ignore
      (Engine.schedule_after t.engine d (fun () ->
           (* One read drains the whole socket buffer; reading sends any
              pending ACK (Figure 7, step 3). *)
           if t.next_expected > t.app_read_upto then begin
             t.app_read_upto <- t.next_expected;
             emit_ack t (Engine.now t.engine)
           end)
        : Engine.handle)

let on_data t ~seq =
  if seq >= t.next_expected then begin
    if seq = t.next_expected then begin
      t.next_expected <- t.next_expected + 1;
      let rec drain () =
        if Int_set.mem t.next_expected t.ooo then begin
          t.ooo <- Int_set.remove t.next_expected t.ooo;
          t.next_expected <- t.next_expected + 1;
          drain ()
        end
      in
      drain ()
    end
    else begin
      t.ooo <- Int_set.add seq t.ooo;
      (* A hole: send an immediate duplicate ACK so the sender's fast
         retransmit can trigger. *)
      t.acks_sent <- t.acks_sent + 1;
      t.send_ack (Engine.now t.engine) ~ack_upto:(ackable t)
    end;
    schedule_app_read t (t.next_expected - 1);
    let pending = ackable t - t.acked_upto in
    if pending >= t.params.Tcp_types.ack_every then emit_ack t (Engine.now t.engine)
  end

let next_expected t = t.next_expected
let delivered t = t.next_expected
let acks_sent t = t.acks_sent
let biggest_ack t = t.biggest_ack
let set_app_read_delay t d = t.app_read_delay <- d
let stop t = t.running <- false
