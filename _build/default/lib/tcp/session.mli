(** One HTTP-style transfer over the emulated WAN (paper §5.8).

    A client behind a high bandwidth-delay path sends a request; the
    server answers with [segments] full-size TCP segments, either
    self-clocked through slow-start ([`Regular]) or rate-clocked at the
    bottleneck bandwidth ([`Paced], optionally with a firing-jitter
    sampler standing in for a loaded machine's trigger-state delays).
    The response time is measured from the instant the client issues the
    request to the arrival of the last in-order byte, as in Tables 6/7
    (persistent connection assumed: no handshake). *)

type mode =
  [ `Regular  (** stock FreeBSD TCP: slow-start, delayed ACKs *)
  | `Paced  (** rate-based clocking at the bottleneck rate *)
  | `Paced_jitter of (unit -> Time_ns.span)
    (** rate-based clocking whose events are delayed by draws from the
        given sampler (a trigger-gap residual model) *) ]

type result = {
  segments : int;
  response_time : Time_ns.span;  (** request sent -> last byte received *)
  throughput_bps : float;  (** payload bits / response time *)
  wan_drops : int;
  biggest_ack : int;  (** largest segment count covered by one ACK *)
  max_burst : int;  (** largest back-to-back burst the sender emitted *)
  retransmits : int;  (** segments retransmitted after loss (0 if paced) *)
}

val run_transfer :
  ?params:Tcp_types.params ->
  ?access_bps:float ->
  ?wan_queue:int ->
  bottleneck_bps:float ->
  one_way_delay:Time_ns.span ->
  segments:int ->
  mode ->
  result
(** [access_bps] is the server's LAN link (default 100 Mbps; it shapes
    the burst rate of the self-clocked sender).  [wan_queue] is the
    router buffer in packets (default 2048: loss-free, as in the
    paper). *)

val bottleneck_interval : bottleneck_bps:float -> ?params:Tcp_types.params -> unit -> Time_ns.span
(** Serialisation time of one full-size frame at the bottleneck — the
    pacing interval rate-based clocking uses when the capacity is
    known. *)
