lib/tcp/sender.mli: Engine Packet Tcp_types Time_ns
