lib/tcp/receiver.ml: Engine Int Int64 Set Tcp_types Time_ns
