lib/tcp/capacity.ml: Array Float Time_ns
