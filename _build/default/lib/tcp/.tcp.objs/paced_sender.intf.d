lib/tcp/paced_sender.mli: Engine Packet Rate_clock Softtimer Tcp_types Time_ns
