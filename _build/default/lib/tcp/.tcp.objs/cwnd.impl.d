lib/tcp/cwnd.ml: Tcp_types
