lib/tcp/receiver.mli: Engine Tcp_types Time_ns
