lib/tcp/paced_sender.ml: Engine Rate_clock Tcp_types Time_ns
