lib/tcp/session.mli: Tcp_types Time_ns
