lib/tcp/capacity.mli: Time_ns
