lib/tcp/sender.ml: Cwnd Engine Packet Tcp_types Time_ns
