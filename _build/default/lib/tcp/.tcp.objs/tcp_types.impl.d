lib/tcp/tcp_types.ml: Packet Time_ns
