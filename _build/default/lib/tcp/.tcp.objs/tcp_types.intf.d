lib/tcp/tcp_types.mli: Packet Time_ns
