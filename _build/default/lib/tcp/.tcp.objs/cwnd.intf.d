lib/tcp/cwnd.mli: Tcp_types
