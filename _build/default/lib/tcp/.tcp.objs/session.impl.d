lib/tcp/session.ml: Engine Link Paced_sender Packet Receiver Sender Tcp_types Time_ns Wan
