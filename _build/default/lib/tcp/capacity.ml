type t = {
  packet_bits : int;
  window : int;
  samples : float array;  (* ring of recent bps estimates *)
  mutable count : int;
  mutable last_arrival : Time_ns.t option;
}

let create ?(window = 64) ~packet_bits () =
  if packet_bits <= 0 then invalid_arg "Capacity.create: packet_bits must be positive";
  if window <= 0 then invalid_arg "Capacity.create: window must be positive";
  { packet_bits; window; samples = Array.make window 0.0; count = 0; last_arrival = None }

let on_arrival t now =
  (match t.last_arrival with
  | Some prev when Time_ns.(now > prev) ->
    let gap_s = Time_ns.to_sec Time_ns.(now - prev) in
    let bps = float_of_int t.packet_bits /. gap_s in
    t.samples.(t.count mod t.window) <- bps;
    t.count <- t.count + 1
  | Some _ | None -> ());
  t.last_arrival <- Some now

let reset_burst t = t.last_arrival <- None
let samples t = t.count

let estimate_bps t =
  if t.count = 0 then None
  else begin
    let n = min t.count t.window in
    let a = Array.sub t.samples 0 n in
    Array.sort Float.compare a;
    let median =
      if n mod 2 = 1 then a.(n / 2) else (a.((n / 2) - 1) +. a.(n / 2)) /. 2.0
    in
    Some median
  end

let pacing_interval t ~packet_bits =
  match estimate_bps t with
  | None -> None
  | Some bps -> Some (Time_ns.of_sec (float_of_int packet_bits /. bps))
