(** Delayed-ACK TCP receiver.

    ACKs immediately once [ack_every] (normally 2) segments are pending,
    and otherwise from the coarse delayed-ACK heartbeat that fires at
    absolute multiples of [delack_period] — the BSD behaviour whose
    worst case stalls a 1-segment window for up to 200 ms (visible in
    the paper's Table 6 small-transfer rows).

    Out-of-order segments are buffered; ACKs are cumulative.  An
    application-read throttle can be installed to reproduce the big-ACK
    phenomenon of Appendix A.3: when reads lag, ACKs cover many segments
    at once. *)

type t

val create :
  Engine.t ->
  Tcp_types.params ->
  send_ack:(Time_ns.t -> ack_upto:int -> unit) ->
  t
(** The heartbeat timer starts on creation. *)

val on_data : t -> seq:int -> unit
(** A data segment arrived. *)

val next_expected : t -> int
(** Lowest sequence not yet received in order. *)

val delivered : t -> int
(** Segments received in order so far (= {!next_expected}). *)

val acks_sent : t -> int
(** Includes duplicate ACKs sent in response to out-of-order data. *)

val biggest_ack : t -> int
(** Largest number of segments covered by a single ACK (big-ACK
    detector; > [ack_every] indicates ACK aggregation). *)

val set_app_read_delay : t -> Time_ns.span option -> unit
(** With [Some d], arriving data is only acknowledged once the simulated
    application "reads" it, [d] after in-order arrival — the slow-reader
    scenario of Appendix A.3.  [None] (default) reads immediately. *)

val stop : t -> unit
(** Stop the heartbeat (end of connection). *)
