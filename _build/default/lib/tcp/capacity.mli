(** Bottleneck-capacity estimation from packet spacing.

    Rate-based clocking presupposes that the available capacity is known
    (paper §5.8 assumes it; §6 surveys how to measure it).  This module
    implements the receiver-side packet-pair/packet-bunch family
    (Keshav '91; Paxson's PBM; Allman & Paxson '99 argue receiver-side
    spacing is the reliable signal): packets that leave the sender
    back-to-back arrive spaced by the bottleneck's serialisation time,
    so each gap yields one capacity sample [bits / gap], and the median
    over many samples rejects the queueing noise. *)

type t

val create : ?window:int -> packet_bits:int -> unit -> t
(** [packet_bits] is the wire size of the probe packets; [window] is the
    number of most-recent samples kept (default 64).
    @raise Invalid_argument if [packet_bits <= 0]. *)

val on_arrival : t -> Time_ns.t -> unit
(** Record a probe-packet arrival.  Consecutive arrivals form gaps;
    gaps of zero are ignored. *)

val reset_burst : t -> unit
(** Forget the previous arrival: the next one starts a new burst (call
    between probe trains so inter-train gaps are not mistaken for
    serialisation gaps). *)

val samples : t -> int
(** Capacity samples collected so far. *)

val estimate_bps : t -> float option
(** Median capacity estimate in bits/s, or [None] before any sample. *)

val pacing_interval : t -> packet_bits:int -> Time_ns.span option
(** The rate-clocking interval for packets of the given size at the
    estimated capacity — what a paced sender feeds to {!Rate_clock}. *)
