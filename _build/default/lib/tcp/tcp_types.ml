type params = {
  mss : int;
  initial_cwnd : int;
  ack_every : int;
  delack_period : Time_ns.span;
  ssthresh : int;
  awnd : int;
  rto : Time_ns.span;
}

let default =
  {
    mss = Packet.mtu_payload;
    initial_cwnd = 1;
    ack_every = 2;
    delack_period = Time_ns.of_ms 200.0;
    ssthresh = max_int / 4;
    awnd = 1024;
    rto = Time_ns.of_sec 1.0;
  }

type segment = { seq : int; is_ack : bool; ack_upto : int }

let make_data params ~seq ~born =
  Packet.create
    ~size_bytes:(params.mss + Packet.frame_overhead)
    ~meta:{ seq; is_ack = false; ack_upto = 0 }
    ~born

let make_ack ~ack_upto ~born =
  Packet.create ~size_bytes:Packet.ack_size ~meta:{ seq = -1; is_ack = true; ack_upto } ~born
