(** Self-clocked TCP sender.

    Transmissions are paced purely by ACK arrivals (current-practice TCP
    in the paper's terms): on each ACK the window grows per {!Cwnd} and
    every segment newly admitted by the window is sent back-to-back — a
    burst at access-link speed, which is exactly the behaviour rate-based
    clocking smooths out.

    Loss recovery: three duplicate ACKs trigger a fast retransmit of the
    first unacknowledged segment with Reno-style window halving; a
    coarse retransmission timer (params.rto) catches everything else,
    collapsing the window to one segment. *)

type t

val create :
  Engine.t ->
  Tcp_types.params ->
  total_segments:int ->
  transmit:(Time_ns.t -> Tcp_types.segment Packet.t -> unit) ->
  ?on_complete:(Time_ns.t -> unit) ->
  unit ->
  t
(** [on_complete] fires when every segment has been acknowledged. *)

val start : t -> unit
(** Send the initial window. *)

val on_ack : t -> ack_upto:int -> unit
(** A cumulative ACK arrived. *)

val sent : t -> int
val acked : t -> int
val complete : t -> bool

val max_burst_observed : t -> int
(** Largest number of segments transmitted back-to-back in response to a
    single event (initial window or one ACK) — the burst size a big ACK
    provokes (Appendix A). *)

val retransmits : t -> int
(** Segments retransmitted (fast retransmit + timeouts). *)

val stop : t -> unit
(** Cancel the retransmission timer (end of connection). *)
