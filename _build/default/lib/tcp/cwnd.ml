type t = {
  mutable ssthresh : int;
  mutable cwnd : float;  (* segments *)
  mutable acks : int;
}

let create (p : Tcp_types.params) =
  { ssthresh = p.Tcp_types.ssthresh; cwnd = float_of_int (max 1 p.Tcp_types.initial_cwnd); acks = 0 }

let window t = max 1 (int_of_float t.cwnd)
let in_slow_start t = t.cwnd < float_of_int t.ssthresh

let on_ack t =
  t.acks <- t.acks + 1;
  if in_slow_start t then t.cwnd <- t.cwnd +. 1.0 else t.cwnd <- t.cwnd +. (1.0 /. t.cwnd)

let acks_seen t = t.acks
let ssthresh t = t.ssthresh

let halve t ~flight = t.ssthresh <- max (flight / 2) 2

let on_timeout t ~flight =
  halve t ~flight;
  t.cwnd <- 1.0

let on_fast_retransmit t ~flight =
  halve t ~flight;
  t.cwnd <- float_of_int t.ssthresh
