(** Rate-clocked TCP sender (the paper's modified stack, §5.8).

    Skips slow-start entirely: when the available capacity is known, the
    sender transmits at that rate from the first segment, one packet per
    pacing event.  In the paper the pacing events come from the
    soft-timer facility; on the unloaded server of §5.8 the idle loop
    makes them essentially exact, so the default here is exact pacing.
    An optional jitter sampler adds a per-event firing delay drawn from
    a trigger-gap model, for studying loaded-server pacing; and
    {!create_with_rate_clock} drives transmissions through a real
    {!Rate_clock} on a simulated machine. *)

type t

val create :
  Engine.t ->
  Tcp_types.params ->
  total_segments:int ->
  interval:Time_ns.span ->
  transmit:(Time_ns.t -> Tcp_types.segment Packet.t -> unit) ->
  ?jitter:(unit -> Time_ns.span) ->
  ?on_last_sent:(Time_ns.t -> unit) ->
  unit ->
  t
(** Send segment [k] at [start_time + k * interval (+ jitter)].
    [interval] is normally the bottleneck serialisation time of one
    full-size frame. *)

val start : t -> unit
val sent : t -> int

val create_with_rate_clock :
  Softtimer.t ->
  Tcp_types.params ->
  total_segments:int ->
  target_interval:Time_ns.span ->
  min_interval:Time_ns.span ->
  transmit:(Time_ns.t -> Tcp_types.segment Packet.t -> unit) ->
  ?on_last_sent:(Time_ns.t -> unit) ->
  unit ->
  t * Rate_clock.t
(** The integrated form: a {!Rate_clock} on the facility's machine emits
    the pacing events; transmission order and count are identical, the
    timing reflects the machine's trigger-state process.  Call
    {!Rate_clock.start} on the returned clock to begin. *)
