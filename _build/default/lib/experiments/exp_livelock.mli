(** Extension experiment: receiver livelock under overload.

    Not a table of the soft-timers paper — it reproduces the phenomenon
    the paper's §6 cites from Mogul & Ramakrishnan (TOCS'97) and
    positions soft-timer polling against their hybrid scheme.  A single
    interface is flooded at increasing packet rates while the stack
    spends a fixed cost per delivered packet:

    - {b interrupt-driven} reception livelocks: past saturation, all
      CPU goes to (highest-priority) receive interrupts and goodput
      collapses toward zero;
    - {b Mogul–Ramakrishnan hybrid} (interrupt once per burst, then
      poll-on-completion with interrupts disabled) saturates flat;
    - {b soft-timer polling} also saturates flat, without livelock, and
      keeps interrupts off even below saturation. *)

type row = {
  offered_kpps : float;  (** offered load, 1000 packets/s *)
  interrupt_goodput : float;  (** packets/s fully processed *)
  hybrid_goodput : float;
  softpoll_goodput : float;
}

val compute : Exp_config.t -> row list
val render : Exp_config.t -> row list -> string
val run : Exp_config.t -> string
