(** Figure 5: trigger-interval medians over 1 ms and 10 ms windows.

    Runs the ST-Apache-compute workload for 10 seconds, computes the
    median trigger interval within consecutive 1 ms and 10 ms windows,
    and summarises the variability: the paper finds most 1 ms-window
    medians between 14 and 26 us with fewer than 1.13% above 40 us,
    while 10 ms-window medians sit in a narrow 17–19 us band. *)

type window_stats = {
  window_ms : float;
  windows : int;
  min_median : float;
  p5 : float;  (** 5th percentile of window medians *)
  p95 : float;
  max_median : float;
  above_40us_pct : float;
}

type result = {
  one_ms : window_stats;
  ten_ms : window_stats;
  medians_1ms : (Time_ns.t * float) list;
}

val compute : Exp_config.t -> result
val render : Exp_config.t -> result -> string
val run : Exp_config.t -> string
