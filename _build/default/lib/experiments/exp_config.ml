type t = { quick : bool; seed : int }

let default = { quick = false; seed = 7 }
let quick = { quick = true; seed = 7 }
let warmup t = if t.quick then Time_ns.of_sec 0.3 else Time_ns.of_sec 1.0
let measure t = if t.quick then Time_ns.of_sec 1.0 else Time_ns.of_sec 5.0
let dist_window t = if t.quick then Time_ns.of_sec 0.8 else Time_ns.of_sec 5.0

let header title =
  let bar = String.make (String.length title + 4) '=' in
  Printf.sprintf "%s\n= %s =\n%s\n" bar title bar

let paper_note s = "  [paper] " ^ s ^ "\n"
