lib/experiments/exp_rbc_wan.mli: Exp_config
