lib/experiments/exp_sensitivity.ml: Cache Costs Exp_config List Printf Tablefmt Time_ns Webserver
