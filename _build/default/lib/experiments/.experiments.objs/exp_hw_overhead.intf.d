lib/experiments/exp_hw_overhead.mli: Exp_config
