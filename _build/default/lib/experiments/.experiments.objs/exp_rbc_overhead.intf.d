lib/experiments/exp_rbc_overhead.mli: Exp_config Webserver
