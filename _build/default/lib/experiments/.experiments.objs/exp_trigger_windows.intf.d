lib/experiments/exp_trigger_windows.mli: Exp_config Time_ns
