lib/experiments/exp_livelock.mli: Exp_config
