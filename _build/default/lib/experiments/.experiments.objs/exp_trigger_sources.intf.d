lib/experiments/exp_trigger_sources.mli: Exp_config Histogram Trigger
