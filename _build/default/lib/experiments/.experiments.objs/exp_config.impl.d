lib/experiments/exp_config.ml: Printf String Time_ns
