lib/experiments/exp_fig1.ml: Dist Engine Exp_config Int64 Kernel List Machine Prng Softtimer Tablefmt Time_ns
