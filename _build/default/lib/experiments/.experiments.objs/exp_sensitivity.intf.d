lib/experiments/exp_sensitivity.mli: Exp_config
