lib/experiments/exp_rbc_process.mli: Exp_config
