lib/experiments/exp_trigger_windows.ml: Array Buffer Delay_probe Exp_config List Printf Series Stats Time_ns Webserver
