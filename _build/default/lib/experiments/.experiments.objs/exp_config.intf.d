lib/experiments/exp_config.mli: Time_ns
