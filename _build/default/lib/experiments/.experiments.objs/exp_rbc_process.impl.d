lib/experiments/exp_rbc_process.ml: Cpu Engine Exp_config Hw_pacer List Machine Printf Rate_clock Stats String Tablefmt Time_ns Trigger Webserver
