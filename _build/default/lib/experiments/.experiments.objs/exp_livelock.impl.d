lib/experiments/exp_livelock.ml: Cpu Dist Engine Exec Exp_config Kernel List Machine Net_poll Nic Packet Prng Softtimer Tablefmt Time_ns
