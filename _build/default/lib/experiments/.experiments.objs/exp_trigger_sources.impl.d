lib/experiments/exp_trigger_sources.ml: Array Delay_probe Exp_config Histogram List Printf Stats Tablefmt Trigger Webserver
