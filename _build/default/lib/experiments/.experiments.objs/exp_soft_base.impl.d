lib/experiments/exp_soft_base.ml: Delay_probe Exp_config Printf Stats Webserver
