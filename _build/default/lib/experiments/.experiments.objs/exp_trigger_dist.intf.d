lib/experiments/exp_trigger_dist.mli: Exp_config Histogram
