lib/experiments/exp_trigger_dist.ml: Array Costs Delay_probe Engine Exp_config Histogram List Machine Stats Tablefmt Time_ns Webserver Wl_kernel_build Wl_nfs Wl_realaudio
