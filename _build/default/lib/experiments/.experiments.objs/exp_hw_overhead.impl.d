lib/experiments/exp_hw_overhead.ml: Costs Exp_config List Printf Tablefmt Webserver
