lib/experiments/exp_polling.mli: Exp_config Webserver
