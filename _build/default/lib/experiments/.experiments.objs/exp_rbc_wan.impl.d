lib/experiments/exp_rbc_wan.ml: Exp_config List Printf Session String Tablefmt Time_ns
