lib/experiments/exp_rbc_overhead.ml: Exp_config List Stats Tablefmt Time_ns Webserver
