lib/experiments/exp_soft_base.mli: Exp_config
