lib/experiments/exp_polling.ml: Exp_config List Net_poll Printf Tablefmt Webserver
