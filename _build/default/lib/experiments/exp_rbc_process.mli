(** Tables 4 and 5: statistics of the rate-clocked transmission process.

    A single connection with unlimited backlog is rate-clocked on the
    busy ST-Apache machine — the worst-case trigger-state process — at
    target intervals of 40 and 60 us, sweeping the maximal allowable
    burst interval (the 12 us minimum is the 1 Gbps line rate of the
    paper's scenario).  The hardware-timer baseline is programmed at the
    target interval and loses ticks inside interrupt-disabled sections,
    falling short of the target (43.6 us at a 40 us target). *)

type row = {
  min_interval_us : float;
  avg_interval_us : float;
  stddev_us : float;
  sends : int;
}

type table = {
  target_us : float;
  soft : row list;  (** one row per min-interval setting *)
  hw_avg_us : float;
  hw_stddev_us : float;
  hw_lost_pct : float;
}

val compute : Exp_config.t -> table list
(** Two tables: target 40 us and target 60 us. *)

val render : Exp_config.t -> table list -> string
val run : Exp_config.t -> string
