(** Common experiment settings.

    Every experiment takes one of these: [quick] shrinks simulated time
    so the whole suite can run inside the test harness; the default
    durations match (scaled-down) paper methodology. *)

type t = { quick : bool; seed : int }

val default : t
(** Full-length runs, seed 7. *)

val quick : t
(** Short runs for tests (~10x faster, noisier). *)

val warmup : t -> Time_ns.span
(** Simulated warm-up before measurement begins. *)

val measure : t -> Time_ns.span
(** Simulated measurement window for throughput experiments. *)

val dist_window : t -> Time_ns.span
(** Simulated time for trigger-distribution collection. *)

val header : string -> string
(** Render an experiment banner. *)

val paper_note : string -> string
(** Render a "paper reports ..." footnote. *)
