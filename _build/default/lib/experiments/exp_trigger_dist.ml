type workload =
  | ST_apache
  | ST_apache_compute
  | ST_flash
  | ST_realaudio
  | ST_nfs
  | ST_kernel_build
  | ST_apache_xeon

let workload_name = function
  | ST_apache -> "ST-Apache"
  | ST_apache_compute -> "ST-Apache-compute"
  | ST_flash -> "ST-Flash"
  | ST_realaudio -> "ST-real-audio"
  | ST_nfs -> "ST-nfs"
  | ST_kernel_build -> "ST-kernel-build"
  | ST_apache_xeon -> "ST-Apache (Xeon)"

let all_workloads =
  [ ST_apache; ST_apache_compute; ST_flash; ST_realaudio; ST_nfs; ST_kernel_build; ST_apache_xeon ]

type row = {
  workload : workload;
  samples : int;
  max_us : float;
  mean_us : float;
  median_us : float;
  stddev_us : float;
  above_100us_pct : float;
  above_150us_pct : float;
}

let webserver_gaps (cfg : Exp_config.t) ~kind ~background_compute ~profile =
  let wcfg =
    {
      Webserver.default_config with
      Webserver.kind;
      background_compute;
      profile;
      seed = cfg.Exp_config.seed;
    }
  in
  let t = Webserver.create wcfg in
  let rec_ = Delay_probe.Gap_recorder.attach (Webserver.machine t) in
  Webserver.run t ~warmup:(Exp_config.warmup cfg) ~measure:(Exp_config.dist_window cfg);
  Delay_probe.Gap_recorder.sample rec_

let synthetic_gaps (cfg : Exp_config.t) start =
  let engine = Engine.create () in
  let machine = Machine.create engine in
  start machine;
  let rec_ = Delay_probe.Gap_recorder.attach machine in
  (* Warm up, then reset the gap clock so partial gaps are dropped. *)
  Engine.run_until engine (Time_ns.of_sec 0.2);
  Delay_probe.Gap_recorder.reset_clock rec_;
  let extra = Exp_config.dist_window cfg in
  Engine.run_until engine Time_ns.(Engine.now engine + extra);
  Delay_probe.Gap_recorder.sample rec_

let gaps_of cfg = function
  | ST_apache ->
    webserver_gaps cfg ~kind:Webserver.Apache ~background_compute:false
      ~profile:Costs.pentium_ii_300
  | ST_apache_compute ->
    webserver_gaps cfg ~kind:Webserver.Apache ~background_compute:true
      ~profile:Costs.pentium_ii_300
  | ST_flash ->
    webserver_gaps cfg ~kind:Webserver.Flash ~background_compute:false
      ~profile:Costs.pentium_ii_300
  | ST_apache_xeon ->
    webserver_gaps cfg ~kind:Webserver.Apache ~background_compute:false
      ~profile:Costs.pentium_iii_500
  | ST_realaudio -> synthetic_gaps cfg (fun m -> Wl_realaudio.start m ~seed:cfg.Exp_config.seed)
  | ST_nfs -> synthetic_gaps cfg (fun m -> Wl_nfs.start m ~seed:cfg.Exp_config.seed)
  | ST_kernel_build ->
    synthetic_gaps cfg (fun m -> Wl_kernel_build.start m ~seed:cfg.Exp_config.seed)

let measure cfg workload =
  let sample = gaps_of cfg workload in
  let hist = Histogram.create ~lo:0.0 ~hi:150.0 ~bins:150 in
  Array.iter (fun g -> Histogram.add hist g) (Stats.Sample.values sample);
  let row =
    {
      workload;
      samples = Stats.Sample.count sample;
      max_us = Stats.Sample.max sample;
      mean_us = Stats.Sample.mean sample;
      median_us = Stats.Sample.median sample;
      stddev_us = Stats.Sample.stddev sample;
      above_100us_pct = 100.0 *. Stats.Sample.fraction_above sample 100.0;
      above_150us_pct = 100.0 *. Stats.Sample.fraction_above sample 150.0;
    }
  in
  (row, hist)

let compute cfg = List.map (measure cfg) all_workloads

let paper_rows =
  [
    (ST_apache, (476., 31.52, 18., 32., 5.3, 0.39));
    (ST_apache_compute, (585., 31.59, 18., 32.1, 5.3, 0.43));
    (ST_flash, (1000., 22.53, 17., 20.8, 1.09, 0.013));
    (ST_realaudio, (1000., 8.47, 6., 13.2, 0.025, 0.013));
    (ST_nfs, (910., 2.13, 2., 3.3, 0.021, 0.011));
    (ST_kernel_build, (1000., 5.63, 2., 47.9, 0.038, 0.033));
    (ST_apache_xeon, (1000., 19.41, 11., 23., 0.44, 0.13));
  ]

let render _cfg results =
  let open Tablefmt in
  let t =
    create ~title:"Table 1 -- trigger state interval distribution (measured | paper)"
      ~columns:
        [
          ("workload", Left);
          ("samples", Right);
          ("max (us)", Right);
          ("mean (us)", Right);
          ("median", Right);
          ("stddev", Right);
          (">100us %", Right);
          (">150us %", Right);
        ]
  in
  List.iter
    (fun (r, _) ->
      add_row t
        [
          workload_name r.workload;
          cell_i r.samples;
          cell_f ~decimals:0 r.max_us;
          cell_f r.mean_us;
          cell_f ~decimals:1 r.median_us;
          cell_f ~decimals:1 r.stddev_us;
          cell_f ~decimals:3 r.above_100us_pct;
          cell_f ~decimals:3 r.above_150us_pct;
        ];
      let mx, mean, med, sd, a100, a150 = List.assoc r.workload paper_rows in
      add_row t
        [
          "  [paper]";
          "2000000";
          cell_f ~decimals:0 mx;
          cell_f mean;
          cell_f ~decimals:1 med;
          cell_f ~decimals:1 sd;
          cell_f ~decimals:3 a100;
          cell_f ~decimals:3 a150;
        ];
      add_rule t)
    results;
  let cdf_series =
    List.filter_map
      (fun (r, h) ->
        match r.workload with
        | ST_apache_xeon -> None  (* Figure 4 shows the six P-II workloads *)
        | _ -> Some (workload_name r.workload, h))
      results
  in
  render t ^ "\nFigure 4 -- trigger state interval CDFs\n"
  ^ Histogram.render_ascii ~series:cdf_series ()

let run cfg =
  Exp_config.header "Table 1 / Figure 4: trigger intervals by workload" ^ render cfg (compute cfg)
