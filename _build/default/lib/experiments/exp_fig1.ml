type row = {
  ticks : int64;
  events : int;
  min_delay_ticks : float;
  max_delay_ticks : float;
  bound_violations : int;
}

(* A deliberately hostile trigger process: long, irregular gaps so that
   events routinely miss their due time and must be caught by the backup
   interrupt clock. *)
let start_sparse_triggers machine rng =
  let gap = Dist.Mixture [ (0.6, Dist.Exponential 120.0); (0.4, Dist.Uniform (300.0, 2_500.0)) ] in
  let rec loop _now =
    let u = Dist.draw gap rng in
    Kernel.user machine ~work_us:u (fun _ -> Kernel.syscall machine ~work_us:2.0 loop)
  in
  loop Time_ns.zero

let compute (cfg : Exp_config.t) =
  let trials = if cfg.Exp_config.quick then 300 else 3_000 in
  let per_t ticks =
    let engine = Engine.create () in
    let machine = Machine.create engine in
    let st = Softtimer.attach machine in
    let rng = Prng.create ~seed:cfg.Exp_config.seed in
    start_sparse_triggers machine rng;
    let x = Int64.to_float (Softtimer.x_ratio st) in
    let tick_hz = Int64.to_float (Softtimer.measure_resolution st) in
    let events = ref 0 in
    let min_d = ref infinity and max_d = ref neg_infinity in
    let violations = ref 0 in
    let rec arm () =
      if !events < trials then begin
        let sched = Softtimer.measure_time st in
        ignore
          (Softtimer.schedule_soft_event st ~ticks (fun now ->
               let actual_ticks =
                 Int64.to_float now /. 1e9 *. tick_hz -. Int64.to_float sched
               in
               incr events;
               if actual_ticks < !min_d then min_d := actual_ticks;
               if actual_ticks > !max_d then max_d := actual_ticks;
               if actual_ticks <= Int64.to_float ticks
                  || actual_ticks >= Int64.to_float ticks +. x +. 1.0
               then incr violations;
               arm ())
            : Softtimer.handle)
      end
    in
    arm ();
    (* Generous horizon: each event takes at most ~1 ms (the backup). *)
    Engine.run_until engine (Time_ns.of_sec (float_of_int trials *. 0.004));
    {
      ticks;
      events = !events;
      min_delay_ticks = !min_d;
      max_delay_ticks = !max_d;
      bound_violations = !violations;
    }
  in
  List.map per_t [ 0L; 300L; 3_000L; 30_000L ]

let render _cfg rows =
  let open Tablefmt in
  let t =
    create ~title:"Figure 1 -- soft-timer firing window: T < actual < T + X + 1 (ticks)"
      ~columns:
        [
          ("T (ticks)", Right);
          ("events", Right);
          ("min actual-sched", Right);
          ("max actual-sched", Right);
          ("T+X+1", Right);
          ("violations", Right);
        ]
  in
  List.iter
    (fun r ->
      add_row t
        [
          Int64.to_string r.ticks;
          cell_i r.events;
          cell_f ~decimals:0 r.min_delay_ticks;
          cell_f ~decimals:0 r.max_delay_ticks;
          Int64.to_string (Int64.add r.ticks 300_001L);
          cell_i r.bound_violations;
        ])
    rows;
  render t
  ^ Exp_config.paper_note
      "the window is (T, T + X + 1) with X = 300e6/1e3 = 300000 ticks on the P-II profile; \
       0 violations expected"

let run cfg = Exp_config.header "Figure 1: event scheduling bounds" ^ render cfg (compute cfg)
