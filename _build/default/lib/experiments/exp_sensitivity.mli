(** Extension experiment: sensitivity of the headline results to the
    calibrated cost model.

    The reproduction pins a handful of constants to the paper's own
    measurements (DESIGN.md §4).  This ablation perturbs the two that
    carry the most argumentative weight — the per-interrupt cost and the
    cache-locality sensitivity — and shows that the paper's qualitative
    conclusions survive across a wide band:

    - the soft-vs-hardware pacing gap (Table 3) persists even if
      interrupts were half or double their measured cost;
    - the polling win (Table 8) grows with locality sensitivity but
      remains a win even at none. *)

type pacing_row = {
  intr_scale : float;  (** multiplier on both interrupt cost components *)
  hw_overhead_pct : float;
  soft_overhead_pct : float;
}

type polling_row = {
  sensitivity : float;  (** cache-pollution sensitivity used for Flash *)
  polling_ratio : float;  (** quota-5 polled / interrupt throughput *)
}

type result = { pacing : pacing_row list; polling : polling_row list }

val compute : Exp_config.t -> result
val render : Exp_config.t -> result -> string
val run : Exp_config.t -> string
