type cell = { quota : float option; tput : float; ratio : float }

type row = {
  server : Webserver.server_kind;
  http : Webserver.http_mode;
  cells : cell list;
  mean_batch : float;
}

let quotas (cfg : Exp_config.t) =
  if cfg.Exp_config.quick then [ 1.0; 15.0 ] else [ 1.0; 2.0; 5.0; 10.0; 15.0 ]

let run_cell (cfg : Exp_config.t) ~kind ~http ~net =
  let wcfg =
    { Webserver.default_config with Webserver.kind; http; net; seed = cfg.Exp_config.seed }
  in
  let t = Webserver.create wcfg in
  Webserver.run t ~warmup:(Exp_config.warmup cfg) ~measure:(Exp_config.measure cfg);
  let batch = match Webserver.poller t with Some p -> Net_poll.mean_batch p | None -> nan in
  (Webserver.requests_per_sec t, batch)

let compute cfg =
  let per kind http =
    let base, _ = run_cell cfg ~kind ~http ~net:Webserver.Interrupts in
    let last_batch = ref nan in
    let cells =
      { quota = None; tput = base; ratio = 1.0 }
      :: List.map
           (fun q ->
             let tput, batch = run_cell cfg ~kind ~http ~net:(Webserver.Soft_polling q) in
             last_batch := batch;
             { quota = Some q; tput; ratio = tput /. base })
           (quotas cfg)
    in
    { server = kind; http; cells; mean_batch = !last_batch }
  in
  [
    per Webserver.Apache Webserver.Http;
    per Webserver.Flash Webserver.Http;
    per Webserver.Apache (Webserver.Persistent 10);
    per Webserver.Flash (Webserver.Persistent 10);
  ]

let row_name r =
  let s = match r.server with Webserver.Apache -> "Apache" | Webserver.Flash -> "Flash" in
  let h = match r.http with Webserver.Http -> "HTTP" | Webserver.Persistent _ -> "P-HTTP" in
  s ^ " " ^ h

let paper_ratios = function
  | "Apache HTTP" -> [ 1.0; 1.07; 1.09; 1.10; 1.11; 1.11 ]
  | "Flash HTTP" -> [ 1.0; 1.14; 1.17; 1.23; 1.24; 1.25 ]
  | "Apache P-HTTP" -> [ 1.0; 1.03; 1.04; 1.06; 1.07; 1.07 ]
  | "Flash P-HTTP" -> [ 1.0; 1.08; 1.14; 1.19; 1.21; 1.24 ]
  | _ -> []

let render (cfg : Exp_config.t) rows =
  let open Tablefmt in
  let quota_cols = quotas cfg in
  let t =
    create ~title:"Table 8 -- network polling throughput on 6 KB requests (req/s, ratio to interrupts)"
      ~columns:
        (("server", Left) :: ("interrupts", Right)
        :: List.map (fun q -> (Printf.sprintf "quota %.0f" q, Right)) quota_cols)
  in
  List.iter
    (fun r ->
      add_row t
        (row_name r
        :: List.map
             (fun c ->
               match c.quota with
               | None -> cell_f ~decimals:0 c.tput
               | Some _ -> Printf.sprintf "%.0f (%.2f)" c.tput c.ratio)
             r.cells);
      let paper = paper_ratios (row_name r) in
      if paper <> [] && not cfg.Exp_config.quick then
        add_row t
          ("  [paper ratio]"
          :: List.map (fun x -> Printf.sprintf "(%.2f)" x) paper);
      add_rule t)
    rows;
  render t
  ^ Exp_config.paper_note "improvements of 3%-25%; Flash gains more (better locality to lose)"

let run cfg = Exp_config.header "Table 8: soft-timer network polling" ^ render cfg (compute cfg)
