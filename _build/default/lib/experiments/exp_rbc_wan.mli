(** Tables 6 and 7: rate-based clocking network performance (§5.8).

    HTTP transfers of 5 to 100,000 full-size segments cross the emulated
    WAN (100 ms RTT; 50 or 100 Mbps bottleneck) with stock slow-start
    TCP versus rate-based clocking at the bottleneck bandwidth.  The
    paper's headline: response-time reductions from 2% (huge transfers)
    to 89% (100-packet transfers). *)

type row = {
  segments : int;
  regular_xput_mbps : float;
  regular_ms : float;
  paced_xput_mbps : float;
  paced_ms : float;
  reduction_pct : float;
}

type table = { bottleneck_mbps : float; rows : row list }

val compute : Exp_config.t -> table list
(** Two tables: 50 Mbps (Table 6) and 100 Mbps (Table 7). *)

val render : Exp_config.t -> table list -> string
val run : Exp_config.t -> string
