type row = {
  freq_khz : float;
  throughput : float;
  overhead_pct : float;
  us_per_interrupt : float;
}

type result = { rows : row list; per_intr_piii : float; per_intr_alpha : float }

let throughput_at (cfg : Exp_config.t) ~profile ~hz =
  let wcfg =
    {
      Webserver.default_config with
      Webserver.profile;
      extra_timer_hz = (if hz > 0.0 then Some hz else None);
      seed = cfg.Exp_config.seed;
    }
  in
  let t = Webserver.create wcfg in
  Webserver.run t ~warmup:(Exp_config.warmup cfg) ~measure:(Exp_config.measure cfg);
  Webserver.requests_per_sec t

let sweep_freqs (cfg : Exp_config.t) =
  if cfg.Exp_config.quick then [ 0.0; 20.0; 100.0 ]
  else [ 0.0; 10.0; 20.0; 30.0; 40.0; 50.0; 60.0; 70.0; 80.0; 90.0; 100.0 ]

let per_interrupt_cost ~base ~loaded ~hz =
  if hz <= 0.0 || base <= 0.0 then nan else (1.0 -. (loaded /. base)) /. hz *. 1e6

let single_point cfg profile =
  let hz = 50_000.0 in
  let base = throughput_at cfg ~profile ~hz:0.0 in
  let loaded = throughput_at cfg ~profile ~hz in
  per_interrupt_cost ~base ~loaded ~hz

let compute cfg =
  let profile = Costs.pentium_ii_300 in
  let freqs = sweep_freqs cfg in
  let base = throughput_at cfg ~profile ~hz:0.0 in
  let rows =
    List.map
      (fun khz ->
        let hz = khz *. 1000.0 in
        let tput = if khz = 0.0 then base else throughput_at cfg ~profile ~hz in
        let overhead = if khz = 0.0 then 0.0 else 100.0 *. (1.0 -. (tput /. base)) in
        {
          freq_khz = khz;
          throughput = tput;
          overhead_pct = overhead;
          us_per_interrupt = per_interrupt_cost ~base ~loaded:tput ~hz;
        })
      freqs
  in
  {
    rows;
    per_intr_piii = single_point cfg Costs.pentium_iii_500;
    per_intr_alpha = single_point cfg Costs.alpha_21164_500;
  }

let render _cfg r =
  let open Tablefmt in
  let t =
    create ~title:"Figures 2/3 -- Apache throughput vs added hardware-timer frequency (P-II 300)"
      ~columns:
        [
          ("freq (kHz)", Right);
          ("throughput (conn/s)", Right);
          ("overhead (%)", Right);
          ("us/interrupt", Right);
        ]
  in
  List.iter
    (fun row ->
      add_row t
        [
          cell_f ~decimals:0 row.freq_khz;
          cell_f ~decimals:0 row.throughput;
          cell_f ~decimals:1 row.overhead_pct;
          cell_f ~decimals:2 row.us_per_interrupt;
        ])
    r.rows;
  render t
  ^ Printf.sprintf "  cross-platform (50 kHz point): P-III 500 = %.2f us/intr, Alpha 21164 = %.2f us/intr\n"
      r.per_intr_piii r.per_intr_alpha
  ^ Exp_config.paper_note
      "linear growth, ~45% overhead at 100 kHz; 4.45 us (P-II), 4.36 us (P-III), 8.64 us (Alpha)"

let run cfg =
  Exp_config.header "Figures 2/3: base overhead of hardware timers" ^ render cfg (compute cfg)
