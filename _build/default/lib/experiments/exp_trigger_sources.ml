type source_row = { source : Trigger.kind; fraction_pct : float; paper_pct : float }

type removed = { removed : Trigger.kind option; mean_us : float; hist : Histogram.t }

type result = { sources : source_row list; cdfs : removed list }

let paper_fractions =
  [
    (Trigger.Syscall, 47.7);
    (Trigger.Ip_output, 28.0);
    (Trigger.Ip_intr, 16.4);
    (Trigger.Tcpip_other, 5.4);
    (Trigger.Trap, 2.5);
  ]

let run_apache (cfg : Exp_config.t) ~exclude =
  let wcfg = { Webserver.default_config with Webserver.seed = cfg.Exp_config.seed } in
  let t = Webserver.create wcfg in
  let rec_ =
    Delay_probe.Gap_recorder.attach ~exclude_kinds:exclude (Webserver.machine t)
  in
  Webserver.run t ~warmup:(Exp_config.warmup cfg) ~measure:(Exp_config.dist_window cfg);
  rec_

let hist_of sample =
  let h = Histogram.create ~lo:0.0 ~hi:150.0 ~bins:150 in
  Array.iter (fun g -> Histogram.add h g) (Stats.Sample.values sample);
  h

let compute cfg =
  let full = run_apache cfg ~exclude:[] in
  let sources =
    List.map
      (fun (source, frac) ->
        { source; fraction_pct = 100.0 *. frac; paper_pct = List.assoc source paper_fractions })
      (Delay_probe.Gap_recorder.source_fractions full)
  in
  let removed_of k =
    let rec_ = run_apache cfg ~exclude:[ k ] in
    let s = Delay_probe.Gap_recorder.sample rec_ in
    { removed = Some k; mean_us = Stats.Sample.mean s; hist = hist_of s }
  in
  let all =
    {
      removed = None;
      mean_us = Stats.Sample.mean (Delay_probe.Gap_recorder.sample full);
      hist = hist_of (Delay_probe.Gap_recorder.sample full);
    }
  in
  let cdfs =
    all
    :: List.map removed_of
         [ Trigger.Trap; Trigger.Ip_intr; Trigger.Ip_output; Trigger.Syscall ]
  in
  { sources; cdfs }

let render _cfg r =
  let open Tablefmt in
  let t =
    create ~title:"Table 2 -- trigger state sources (ST-Apache)"
      ~columns:[ ("source", Left); ("measured (%)", Right); ("paper (%)", Right) ]
  in
  List.iter
    (fun row ->
      add_row t
        [ Trigger.name row.source; cell_f ~decimals:1 row.fraction_pct; cell_f ~decimals:1 row.paper_pct ])
    r.sources;
  let series =
    List.map
      (fun c ->
        let name =
          match c.removed with
          | None -> "All"
          | Some k -> "no " ^ Trigger.name k
        in
        (Printf.sprintf "%-13s (mean %5.1f us)" name c.mean_us, c.hist))
      r.cdfs
  in
  render t ^ "\nFigure 6 -- CDFs with one trigger source removed\n"
  ^ Histogram.render_ascii ~series ()
  ^ Exp_config.paper_note
      "system calls and IP transmissions are the dominant sources; removing either \
       visibly shifts the CDF"

let run cfg =
  Exp_config.header "Table 2 / Figure 6: trigger sources (ST-Apache)" ^ render cfg (compute cfg)
