(** Figures 2 and 3 (+ the §5.1 cross-platform points): base overhead of
    hardware timer interrupts.

    An additional null-handler hardware timer runs at 0–100 kHz while
    the Apache workload saturates the server; throughput degradation
    measures the full per-interrupt cost, including cache/TLB effects.
    The paper reports ~4.45 us/interrupt on the 300 MHz P-II (45%
    overhead at 100 kHz), 4.36 us on the 500 MHz P-III and 8.64 us on
    the 500 MHz Alpha. *)

type row = {
  freq_khz : float;
  throughput : float;  (** requests/s (Figure 2) *)
  overhead_pct : float;  (** relative to the 0 kHz baseline (Figure 3) *)
  us_per_interrupt : float;  (** derived cost *)
}

type result = {
  rows : row list;  (** the frequency sweep on the P-II profile *)
  per_intr_piii : float;  (** single-point measurement, P-III profile *)
  per_intr_alpha : float;  (** single-point measurement, Alpha profile *)
}

val compute : Exp_config.t -> result
val render : Exp_config.t -> result -> string
val run : Exp_config.t -> string
