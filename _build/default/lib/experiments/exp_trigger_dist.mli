(** Table 1 + Figure 4: trigger-state interval distribution across
    workloads.

    Runs every workload of the paper's §5.3 — the Apache web server
    (with and without a compute-bound background process), the Flash
    web server, a RealPlayer-like media player, a disk-bound NFS
    server, a FreeBSD kernel build, and Apache on the 500 MHz P-III
    profile — records the time between successive trigger states, and
    reports the distribution statistics of Table 1 plus the cumulative
    distributions of Figure 4 as an ASCII plot. *)

type workload =
  | ST_apache
  | ST_apache_compute
  | ST_flash
  | ST_realaudio
  | ST_nfs
  | ST_kernel_build
  | ST_apache_xeon

val workload_name : workload -> string
val all_workloads : workload list

type row = {
  workload : workload;
  samples : int;
  max_us : float;
  mean_us : float;
  median_us : float;
  stddev_us : float;
  above_100us_pct : float;
  above_150us_pct : float;
}

val measure : Exp_config.t -> workload -> row * Histogram.t
(** Run one workload; the histogram covers 0–150 us for the CDF plot. *)

val compute : Exp_config.t -> (row * Histogram.t) list
val render : Exp_config.t -> (row * Histogram.t) list -> string
val run : Exp_config.t -> string
