type window_stats = {
  window_ms : float;
  windows : int;
  min_median : float;
  p5 : float;
  p95 : float;
  max_median : float;
  above_40us_pct : float;
}

type result = {
  one_ms : window_stats;
  ten_ms : window_stats;
  medians_1ms : (Time_ns.t * float) list;
}

let stats_of ~window_ms medians =
  let s = Stats.Sample.create () in
  List.iter (fun (_, m) -> Stats.Sample.add s m) medians;
  {
    window_ms;
    windows = Stats.Sample.count s;
    min_median = Stats.Sample.min s;
    p5 = Stats.Sample.percentile s 5.0;
    p95 = Stats.Sample.percentile s 95.0;
    max_median = Stats.Sample.max s;
    above_40us_pct = 100.0 *. Stats.Sample.fraction_above s 40.0;
  }

let compute (cfg : Exp_config.t) =
  let wcfg =
    {
      Webserver.default_config with
      Webserver.background_compute = true;
      seed = cfg.Exp_config.seed;
    }
  in
  let t = Webserver.create wcfg in
  let rec_ = Delay_probe.Gap_recorder.attach ~record_series:true (Webserver.machine t) in
  let span = if cfg.Exp_config.quick then Time_ns.of_sec 2.0 else Time_ns.of_sec 10.0 in
  Webserver.run t ~warmup:(Exp_config.warmup cfg) ~measure:span;
  let series = Delay_probe.Gap_recorder.series rec_ in
  let m1 = Series.windowed_medians series ~window:(Time_ns.of_ms 1.0) in
  let m10 = Series.windowed_medians series ~window:(Time_ns.of_ms 10.0) in
  { one_ms = stats_of ~window_ms:1.0 m1; ten_ms = stats_of ~window_ms:10.0 m10; medians_1ms = m1 }

let render_sparkline medians =
  (* A coarse time-series strip: one character per bucket of windows. *)
  let arr = Array.of_list (List.map snd medians) in
  let n = Array.length arr in
  if n = 0 then ""
  else begin
    let cols = 72 in
    let glyphs = [| '_'; '.'; '-'; '='; '+'; '*'; '#' |] in
    let buf = Buffer.create 128 in
    for c = 0 to cols - 1 do
      let lo = c * n / cols and hi = max (((c + 1) * n / cols) - 1) (c * n / cols) in
      let acc = ref 0.0 and cnt = ref 0 in
      for i = lo to min hi (n - 1) do
        acc := !acc +. arr.(i);
        incr cnt
      done;
      let v = !acc /. float_of_int (max 1 !cnt) in
      let idx = int_of_float (v /. 8.0) in
      Buffer.add_char buf glyphs.(max 0 (min 6 idx))
    done;
    Buffer.contents buf
  end

let render _cfg r =
  let line s =
    Printf.sprintf
      "  %4.0f ms windows: %5d windows, medians %5.1f..%5.1f us (p5 %.1f, p95 %.1f), %.2f%% above 40 us\n"
      s.window_ms s.windows s.min_median s.max_median s.p5 s.p95 s.above_40us_pct
  in
  line r.one_ms ^ line r.ten_ms
  ^ "  1 ms-window medians over time (each char ~ 8 us per level):\n  "
  ^ render_sparkline r.medians_1ms ^ "\n"
  ^ Exp_config.paper_note
      "1 ms windows: bulk of medians in 14-26 us, <1.13% above 40 us; 10 ms windows: \
       almost all in 17-19 us"

let run cfg =
  Exp_config.header "Figure 5: windowed trigger-interval medians (ST-Apache-compute)"
  ^ render cfg (compute cfg)
