type result = {
  base_throughput : float;
  facility_throughput : float;
  max_rate_throughput : float;
  overhead_pct : float;
  mean_firing_interval_us : float;
  delay_mean_us : float;
  delay_median_us : float;
  delay_p99_us : float;
  fired : int;
  hw_equiv_overhead_pct : float;
}

let run_server (cfg : Exp_config.t) ~attach_facility ~extra_timer_hz f =
  let wcfg =
    {
      Webserver.default_config with
      Webserver.attach_facility;
      extra_timer_hz;
      seed = cfg.Exp_config.seed;
    }
  in
  let t = Webserver.create wcfg in
  let aux = f t in
  Webserver.run t ~warmup:(Exp_config.warmup cfg) ~measure:(Exp_config.measure cfg);
  (Webserver.requests_per_sec t, aux)

let compute cfg =
  let base, () = run_server cfg ~attach_facility:false ~extra_timer_hz:None (fun _ -> ()) in
  let fac, () = run_server cfg ~attach_facility:true ~extra_timer_hz:None (fun _ -> ()) in
  let maxrate, probe =
    run_server cfg ~attach_facility:true ~extra_timer_hz:None (fun t ->
        match Webserver.facility t with
        | Some st -> Delay_probe.Event_delay.start_periodic st ~ticks:0L
        | None -> assert false)
  in
  let inter = Delay_probe.Event_delay.inter_firing probe in
  let delays = Delay_probe.Event_delay.delays probe in
  let mean_iv = Stats.Sample.mean inter in
  (* The hardware-timer equivalent: a timer at 1/mean_iv. *)
  let hw_hz = 1e6 /. mean_iv in
  let hw, () = run_server cfg ~attach_facility:false ~extra_timer_hz:(Some hw_hz) (fun _ -> ()) in
  {
    base_throughput = base;
    facility_throughput = fac;
    max_rate_throughput = maxrate;
    overhead_pct = 100.0 *. (1.0 -. (maxrate /. base));
    mean_firing_interval_us = mean_iv;
    delay_mean_us = Stats.Sample.mean delays;
    delay_median_us = Stats.Sample.median delays;
    delay_p99_us = Stats.Sample.percentile delays 99.0;
    fired = Delay_probe.Event_delay.fired probe;
    hw_equiv_overhead_pct = 100.0 *. (1.0 -. (hw /. base));
  }

let render _cfg r =
  Printf.sprintf
    "  Apache throughput, no soft timers:          %8.0f conn/s\n\
    \  ... facility attached, no events:           %8.0f conn/s\n\
    \  ... null soft event at every trigger state: %8.0f conn/s  (overhead %.1f%%)\n\
    \  handler invoked every %.1f us on average (%d firings)\n\
    \  firing delay d: mean %.1f us, median %.1f us, p99 %.0f us (skewed low)\n\
    \  a hardware timer at that rate costs %.1f%% throughput\n"
    r.base_throughput r.facility_throughput r.max_rate_throughput r.overhead_pct
    r.mean_firing_interval_us r.fired r.delay_mean_us r.delay_median_us r.delay_p99_us
    r.hw_equiv_overhead_pct
  ^ Exp_config.paper_note
      "no observable difference with soft timers; events every 31.5 us; worst-case delay \
       distribution: mean 31.6 us, median 18 us (section 3); a 33 kHz hardware timer would cost ~15%"

let run cfg = Exp_config.header "Section 5.2: base overhead of soft timers" ^ render cfg (compute cfg)
