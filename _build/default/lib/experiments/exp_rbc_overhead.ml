type server_rows = {
  server : Webserver.server_kind;
  base_tput : float;
  hw_tput : float;
  hw_overhead_pct : float;
  hw_interval_us : float;
  soft_tput : float;
  soft_overhead_pct : float;
  soft_interval_us : float;
}

let run_cell (cfg : Exp_config.t) ~kind ~pacing =
  let wcfg =
    { Webserver.default_config with Webserver.kind; pacing; seed = cfg.Exp_config.seed }
  in
  let t = Webserver.create wcfg in
  Webserver.run t ~warmup:(Exp_config.warmup cfg) ~measure:(Exp_config.measure cfg);
  let iv =
    let s = Webserver.pacing_intervals t in
    if Stats.Sample.count s = 0 then nan else Stats.Sample.mean s
  in
  (Webserver.requests_per_sec t, iv)

let compute cfg =
  let per_server kind =
    let base, _ = run_cell cfg ~kind ~pacing:Webserver.No_pacing in
    let hw, hw_iv = run_cell cfg ~kind ~pacing:(Webserver.Hw_pacing (Time_ns.of_us 20.0)) in
    let soft, soft_iv = run_cell cfg ~kind ~pacing:Webserver.Soft_pacing in
    {
      server = kind;
      base_tput = base;
      hw_tput = hw;
      hw_overhead_pct = 100.0 *. (1.0 -. (hw /. base));
      hw_interval_us = hw_iv;
      soft_tput = soft;
      soft_overhead_pct = 100.0 *. (1.0 -. (soft /. base));
      soft_interval_us = soft_iv;
    }
  in
  [ per_server Webserver.Apache; per_server Webserver.Flash ]

let render _cfg rows =
  let open Tablefmt in
  let t =
    create ~title:"Table 3 -- overhead of rate-based clocking (HW timer at 20 us vs soft timers)"
      ~columns:
        [
          ("", Left);
          ("Apache", Right);
          ("[paper]", Right);
          ("Flash", Right);
          ("[paper]", Right);
        ]
  in
  let a = List.nth rows 0 and f = List.nth rows 1 in
  add_row t [ "Base throughput (conn/s)"; cell_f ~decimals:0 a.base_tput; "774"; cell_f ~decimals:0 f.base_tput; "1303" ];
  add_row t [ "HW timer throughput (conn/s)"; cell_f ~decimals:0 a.hw_tput; "560"; cell_f ~decimals:0 f.hw_tput; "827" ];
  add_row t [ "HW timer overhead (%)"; cell_f ~decimals:1 a.hw_overhead_pct; "28"; cell_f ~decimals:1 f.hw_overhead_pct; "36" ];
  add_row t [ "HW timer avg xmit intvl (us)"; cell_f ~decimals:1 a.hw_interval_us; "31"; cell_f ~decimals:1 f.hw_interval_us; "35" ];
  add_row t [ "Soft timer throughput (conn/s)"; cell_f ~decimals:0 a.soft_tput; "756"; cell_f ~decimals:0 f.soft_tput; "1224" ];
  add_row t [ "Soft timer overhead (%)"; cell_f ~decimals:1 a.soft_overhead_pct; "2"; cell_f ~decimals:1 f.soft_overhead_pct; "6" ];
  add_row t [ "Soft timer avg xmit intvl (us)"; cell_f ~decimals:1 a.soft_interval_us; "34"; cell_f ~decimals:1 f.soft_interval_us; "24" ];
  render t

let run cfg =
  Exp_config.header "Table 3: rate-based clocking overhead" ^ render cfg (compute cfg)
