(** Figure 1: lower and upper bounds for soft-timer event scheduling.

    Schedules events [T] measurement ticks ahead on a machine whose only
    trigger source is a sparse synthetic stream, and verifies the
    paper's firing window
    [T < actual_event_time < T + X + 1]
    (in measurement ticks, X = measurement/interrupt clock ratio): the
    lower bound from the facility's +1 accounting, the upper bound from
    the backup interrupt clock. *)

type row = {
  ticks : int64;  (** requested T *)
  events : int;
  min_delay_ticks : float;  (** min observed (actual - schedule), ticks *)
  max_delay_ticks : float;
  bound_violations : int;  (** events outside (T, T + X + 1) *)
}

val compute : Exp_config.t -> row list
val render : Exp_config.t -> row list -> string
val run : Exp_config.t -> string
