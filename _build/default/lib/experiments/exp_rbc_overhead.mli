(** Table 3: overhead of rate-based clocking in TCP (§5.6).

    The web server's data-packet transmissions are routed through a
    pacer: either a soft-timer event firing at every trigger state, or a
    50 kHz (20 us) hardware interrupt timer dispatching a software
    interrupt.  The paper measures 28%/36% throughput loss with the
    hardware timer (Apache/Flash) against 2%/6% with soft timers. *)

type server_rows = {
  server : Webserver.server_kind;
  base_tput : float;
  hw_tput : float;
  hw_overhead_pct : float;
  hw_interval_us : float;
  soft_tput : float;
  soft_overhead_pct : float;
  soft_interval_us : float;
}

val compute : Exp_config.t -> server_rows list
val render : Exp_config.t -> server_rows list -> string
val run : Exp_config.t -> string
