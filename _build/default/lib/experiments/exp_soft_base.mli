(** §5.2: base overhead of soft timers.

    A soft-timer event is scheduled at the maximal possible frequency
    (rescheduled with T = 0 from its own null handler, so it fires at
    every trigger state) under the Apache workload.  The paper finds no
    observable throughput difference, with the handler invoked every
    31.5 us on average — versus ~15% overhead had a 33 kHz hardware
    timer been used instead. *)

type result = {
  base_throughput : float;  (** no facility attached *)
  facility_throughput : float;  (** facility attached, no events *)
  max_rate_throughput : float;  (** null handler at every trigger state *)
  overhead_pct : float;  (** max-rate vs base *)
  mean_firing_interval_us : float;
  delay_mean_us : float;
      (** mean of d = actual - scheduled (paper §3: 31.6 us worst case) *)
  delay_median_us : float;  (** paper §3: 18 us, heavily skewed low *)
  delay_p99_us : float;
  fired : int;
  hw_equiv_overhead_pct : float;
      (** measured overhead of a hardware timer at the same mean rate *)
}

val compute : Exp_config.t -> result
val render : Exp_config.t -> result -> string
val run : Exp_config.t -> string
