(** Table 2 + Figure 6: trigger-state sources and their impact.

    Under the ST-Apache workload, accounts the fraction of trigger
    states contributed by each event source (Table 2: syscalls 47.7%,
    ip-output 28%, ip-intr 16.4%, tcpip-others 5.4%, traps 2.5%), and
    recomputes the trigger-interval CDF with each source removed
    (Figure 6) to show which sources matter. *)

type source_row = { source : Trigger.kind; fraction_pct : float; paper_pct : float }

type removed = { removed : Trigger.kind option; mean_us : float; hist : Histogram.t }

type result = { sources : source_row list; cdfs : removed list }

val compute : Exp_config.t -> result
val render : Exp_config.t -> result -> string
val run : Exp_config.t -> string
