(** Table 8: network polling throughput (§5.9).

    Apache and Flash serve the 6 KB workload over HTTP and persistent
    HTTP, with conventional interrupt-driven reception versus soft-timer
    polling at aggregation quotas 1–15.  The paper reports improvements
    from 3% (Apache P-HTTP, quota 1) to 25% (Flash, quota 15). *)

type cell = { quota : float option; tput : float; ratio : float }
(** [quota = None] is the interrupt-driven baseline (ratio 1.0). *)

type row = {
  server : Webserver.server_kind;
  http : Webserver.http_mode;
  cells : cell list;
  mean_batch : float;  (** achieved packets/poll at the largest quota *)
}

val compute : Exp_config.t -> row list
val render : Exp_config.t -> row list -> string
val run : Exp_config.t -> string
