type row = {
  segments : int;
  regular_xput_mbps : float;
  regular_ms : float;
  paced_xput_mbps : float;
  paced_ms : float;
  reduction_pct : float;
}

type table = { bottleneck_mbps : float; rows : row list }

let sizes (cfg : Exp_config.t) =
  if cfg.Exp_config.quick then [ 5; 100; 1000 ] else [ 5; 100; 1_000; 10_000; 100_000 ]

let one_row ~bottleneck_bps segments =
  let delay = Time_ns.of_ms 50.0 in
  let r = Session.run_transfer ~bottleneck_bps ~one_way_delay:delay ~segments `Regular in
  let p = Session.run_transfer ~bottleneck_bps ~one_way_delay:delay ~segments `Paced in
  let rms = Time_ns.to_ms r.Session.response_time in
  let pms = Time_ns.to_ms p.Session.response_time in
  {
    segments;
    regular_xput_mbps = r.Session.throughput_bps /. 1e6;
    regular_ms = rms;
    paced_xput_mbps = p.Session.throughput_bps /. 1e6;
    paced_ms = pms;
    reduction_pct = 100.0 *. (1.0 -. (pms /. rms));
  }

let compute cfg =
  List.map
    (fun mbps ->
      { bottleneck_mbps = mbps; rows = List.map (one_row ~bottleneck_bps:(mbps *. 1e6)) (sizes cfg) })
    [ 50.0; 100.0 ]

let paper =
  [
    ( 50.0,
      [
        (5, (0.12, 496., 0.57, 101.2, 79.));
        (100, (1.01, 1145., 9.36, 123.7, 89.));
        (1000, (6.75, 1714., 34.07, 340., 80.));
        (10000, (29.95, 3867., 46.33, 2500., 35.));
        (100000, (45.54, 25432., 46.60, 24863., 2.));
      ] );
    ( 100.0,
      [
        (5, (0.16, 350., 0.58, 100.6, 71.));
        (100, (1.09, 1056., 10.34, 112., 89.));
        (1000, (6.38, 1815., 51.94, 223., 87.));
        (10000, (38.46, 3012., 86.77, 1335., 55.));
        (100000, (81.37, 14235., 91.92, 12601., 11.));
      ] );
  ]

let render _cfg tables =
  let open Tablefmt in
  String.concat "\n"
    (List.map
       (fun tab ->
         let t =
           create
             ~title:
               (Printf.sprintf
                  "Table %d -- rate-based clocking over the WAN (bottleneck %.0f Mbps, RTT 100 ms)"
                  (if tab.bottleneck_mbps = 50.0 then 6 else 7)
                  tab.bottleneck_mbps)
             ~columns:
               [
                 ("segments", Right);
                 ("TCP Mbps", Right);
                 ("TCP ms", Right);
                 ("paced Mbps", Right);
                 ("paced ms", Right);
                 ("reduction", Right);
               ]
         in
         let paper_rows = List.assoc tab.bottleneck_mbps paper in
         List.iter
           (fun r ->
             add_row t
               [
                 cell_i r.segments;
                 cell_f r.regular_xput_mbps;
                 cell_f ~decimals:1 r.regular_ms;
                 cell_f r.paced_xput_mbps;
                 cell_f ~decimals:1 r.paced_ms;
                 cell_pct ~decimals:0 (r.reduction_pct /. 100.0);
               ];
             match List.assoc_opt r.segments paper_rows with
             | Some (rx, rms, px, pms, red) ->
               add_row t
                 [
                   "  [paper]";
                   cell_f rx;
                   cell_f ~decimals:1 rms;
                   cell_f px;
                   cell_f ~decimals:1 pms;
                   Printf.sprintf "%.0f%%" red;
                 ];
               add_rule t
             | None -> add_rule t)
           tab.rows;
         render t)
       tables)

let run cfg =
  Exp_config.header "Tables 6/7: rate-based clocking over high-BDP paths" ^ render cfg (compute cfg)
