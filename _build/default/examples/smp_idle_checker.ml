(* The paper's "most pessimistic scenario" and the idle-CPU rescue
   (Sections 5.2/5.3).

   Build & run:  dune exec examples/smp_idle_checker.exe

   Soft timers degrade when every CPU is busy with code that reaches no
   trigger states (a tight compute loop): events then wait for the 1 kHz
   backup interrupt.  But "the soft timer facility can schedule events
   at very fine grain whenever a CPU is idle" -- and on a multiprocessor
   only ONE idle CPU polls for pending events while the others halt
   (Section 5.2).  This example measures event lateness in three
   machines and shows the checker arbitration at work. *)

let measure_lateness ~cpus ~busy_cpus =
  let engine = Engine.create () in
  let machine = Machine.create ~cpus engine in
  let facility = Softtimer.attach machine in
  (* Compute-bound, trigger-less work on the first [busy_cpus] CPUs:
     long quanta, no syscalls, nothing for soft timers to ride on. *)
  for cpu = 0 to busy_cpus - 1 do
    let rec hog _now =
      Machine.submit_quantum machine ~cpu ~prio:Cpu.prio_user ~work_us:800.0 ~trigger:None hog
    in
    hog Time_ns.zero
  done;
  let lateness = Stats.Sample.create () in
  let period = Time_ns.of_us 100.0 in
  let rec periodic () =
    let scheduled = Engine.now engine in
    ignore
      (Softtimer.schedule_after facility period (fun now ->
           Stats.Sample.add lateness (Time_ns.to_us Time_ns.(now - scheduled) -. 100.0);
           periodic ())
        : Softtimer.handle)
  in
  periodic ();
  Engine.run_until engine (Time_ns.of_sec 2.0);
  lateness

let () =
  print_endline "Periodic 100 us soft event; how late does it fire?\n";
  List.iter
    (fun (label, cpus, busy) ->
      let l = measure_lateness ~cpus ~busy_cpus:busy in
      Printf.printf "%-44s mean %7.1f us   median %7.1f us   max %7.1f us\n" label
        (Stats.Sample.mean l) (Stats.Sample.median l) (Stats.Sample.max l))
    [
      ("1 CPU, idle (idle loop checks):", 1, 0);
      ("1 CPU, compute-bound (backup clock only):", 1, 1);
      ("2 CPUs, one compute-bound (idle CPU checks):", 2, 1);
    ];
  print_newline ();
  (* Show the arbitration: with two idle CPUs, exactly one checks. *)
  let engine = Engine.create () in
  let machine = Machine.create ~cpus:2 engine in
  Machine.set_idle_poll machine (Some (Time_ns.of_us 2.0));
  Engine.run_until engine (Time_ns.of_ms 1.0);
  Printf.printf
    "2 idle CPUs for 1 ms: %d idle-loop polls (one checker, ~500 expected), checker = CPU %s\n"
    (Machine.trigger_count machine Trigger.Idle)
    (match Machine.checking_cpu machine with Some i -> string_of_int i | None -> "-");
  print_endline
    "\nWith every CPU compute-bound, events wait for the 1 ms backup tick; an idle\n\
     CPU restores ~exact firing, and only one idle CPU spends cycles checking."
