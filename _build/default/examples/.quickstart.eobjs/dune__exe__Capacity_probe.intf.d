examples/capacity_probe.mli:
