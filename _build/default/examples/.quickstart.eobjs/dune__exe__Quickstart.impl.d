examples/quickstart.ml: Dist Engine Kernel List Machine Printf Prng Softtimer Stats Time_ns
