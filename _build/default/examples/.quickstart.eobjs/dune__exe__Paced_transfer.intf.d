examples/paced_transfer.mli:
