examples/polling_server.ml: List Net_poll Printf Time_ns Webserver
