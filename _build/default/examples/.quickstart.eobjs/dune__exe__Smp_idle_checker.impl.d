examples/smp_idle_checker.ml: Cpu Engine List Machine Printf Softtimer Stats Time_ns Trigger
