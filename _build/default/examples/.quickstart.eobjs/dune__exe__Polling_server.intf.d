examples/polling_server.mli:
