examples/ack_compression.mli:
