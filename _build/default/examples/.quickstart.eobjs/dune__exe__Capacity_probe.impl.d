examples/capacity_probe.ml: Capacity Engine Link List Option Packet Printf Session Time_ns Wan
