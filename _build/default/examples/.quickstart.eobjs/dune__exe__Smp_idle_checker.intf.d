examples/smp_idle_checker.mli:
