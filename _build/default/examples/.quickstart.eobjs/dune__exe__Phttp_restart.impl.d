examples/phttp_restart.ml: Capacity Engine Packet Printf Receiver Sender Session Tcp_types Time_ns Wan
