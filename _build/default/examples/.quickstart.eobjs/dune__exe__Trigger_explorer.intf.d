examples/trigger_explorer.mli:
