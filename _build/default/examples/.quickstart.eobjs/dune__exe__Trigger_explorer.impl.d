examples/trigger_explorer.ml: Array Delay_probe Engine Histogram List Machine Printf Stats Sys Time_ns Trigger Webserver Wl_kernel_build Wl_nfs Wl_realaudio
