examples/ack_compression.ml: Engine List Paced_sender Packet Printf Receiver Sender Session Tcp_types Time_ns Wan
