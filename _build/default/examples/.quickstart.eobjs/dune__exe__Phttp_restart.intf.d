examples/phttp_restart.mli:
