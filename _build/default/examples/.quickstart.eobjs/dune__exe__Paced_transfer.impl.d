examples/paced_transfer.ml: Array Dist Engine Kernel List Machine Paced_sender Printf Prng Session Softtimer Stats Sys Tcp_types Time_ns
