examples/quickstart.mli:
