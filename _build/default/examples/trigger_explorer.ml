(* Explore the trigger-state processes of the paper's workloads.

   Build & run:  dune exec examples/trigger_explorer.exe [workload]

   Workloads: apache | apache-compute | flash | nfs | realaudio |
   kernel-build.  Prints the interval distribution and an ASCII CDF --
   the per-workload view behind Table 1 / Figure 4. *)

let usage () =
  prerr_endline "usage: trigger_explorer [apache|apache-compute|flash|nfs|realaudio|kernel-build]";
  exit 1

let gaps_of = function
  | "apache" | "apache-compute" | "flash" ->
    fun name ->
      let kind = if name = "flash" then Webserver.Flash else Webserver.Apache in
      let cfg =
        {
          Webserver.default_config with
          Webserver.kind;
          background_compute = name = "apache-compute";
        }
      in
      let t = Webserver.create cfg in
      let rec_ = Delay_probe.Gap_recorder.attach (Webserver.machine t) in
      Webserver.run t ~warmup:(Time_ns.of_sec 1.0) ~measure:(Time_ns.of_sec 4.0);
      Printf.printf "throughput: %.0f req/s\n" (Webserver.requests_per_sec t);
      rec_
  | "nfs" | "realaudio" | "kernel-build" ->
    fun name ->
      let engine = Engine.create () in
      let machine = Machine.create engine in
      (match name with
      | "nfs" -> Wl_nfs.start machine ~seed:7
      | "realaudio" -> Wl_realaudio.start machine ~seed:7
      | _ -> Wl_kernel_build.start machine ~seed:7);
      let rec_ = Delay_probe.Gap_recorder.attach machine in
      Engine.run_until engine (Time_ns.of_sec 4.0);
      rec_
  | _ -> usage ()

let () =
  let name = if Array.length Sys.argv > 1 then Sys.argv.(1) else "apache" in
  let rec_ = gaps_of name name in
  let s = Delay_probe.Gap_recorder.sample rec_ in
  Printf.printf
    "workload %s: %d trigger intervals\n\
    \  mean %.2f us, median %.2f us, stddev %.2f us, max %.0f us\n\
    \  >100 us: %.3f%%   >150 us: %.3f%%\n\n"
    name (Stats.Sample.count s) (Stats.Sample.mean s) (Stats.Sample.median s)
    (Stats.Sample.stddev s) (Stats.Sample.max s)
    (100.0 *. Stats.Sample.fraction_above s 100.0)
    (100.0 *. Stats.Sample.fraction_above s 150.0);
  Printf.printf "trigger sources:\n";
  List.iter
    (fun (k, f) -> Printf.printf "  %-14s %5.1f%%\n" (Trigger.name k) (100.0 *. f))
    (Delay_probe.Gap_recorder.source_fractions rec_);
  let h = Histogram.create ~lo:0.0 ~hi:150.0 ~bins:150 in
  Array.iter (fun g -> Histogram.add h g) (Stats.Sample.values s);
  print_newline ();
  print_string (Histogram.render_ascii ~series:[ (name, h) ] ())
