(* A saturated web server with interrupt-driven vs soft-timer-polled
   network reception (the paper's Section 5.9 experiment).

   Build & run:  dune exec examples/polling_server.exe

   With polling, NIC interrupts disappear and received packets are
   processed in warm batches; the poll interval adapts itself until the
   configured aggregation quota (mean packets per poll) is met. *)

let run_one name net =
  let cfg = { Webserver.default_config with Webserver.kind = Webserver.Flash; net } in
  let server = Webserver.create cfg in
  Webserver.run server ~warmup:(Time_ns.of_sec 1.0) ~measure:(Time_ns.of_sec 4.0);
  let tput = Webserver.requests_per_sec server in
  Printf.printf "%-28s %8.0f req/s   rx interrupts: %7d   batches: %6d (%.2f pkts/batch)\n"
    name tput
    (Webserver.rx_interrupts server)
    (Webserver.rx_batches server)
    (float_of_int (Webserver.rx_packets server) /. float_of_int (max 1 (Webserver.rx_batches server)));
  (match Webserver.poller server with
  | Some p ->
    Printf.printf "%-28s poll interval settled at %.1f us (%d polls, mean batch %.2f)\n" ""
      (Time_ns.to_us (Net_poll.current_interval p))
      (Net_poll.polls p) (Net_poll.mean_batch p)
  | None -> ());
  tput

let () =
  print_endline "Flash web server, 6 KB requests, saturated clients:\n";
  let base = run_one "interrupt-driven" Webserver.Interrupts in
  List.iter
    (fun q ->
      let tput = run_one (Printf.sprintf "soft polling (quota %.0f)" q) (Webserver.Soft_polling q) in
      Printf.printf "%-28s improvement over interrupts: %+.1f%%\n\n" ""
        (100.0 *. ((tput /. base) -. 1.0)))
    [ 1.0; 5.0; 15.0 ]
