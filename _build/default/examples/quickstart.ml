(* Quickstart: schedule soft-timer events on a simulated machine and
   watch when they fire.

   Build & run:  dune exec examples/quickstart.exe

   The soft-timer facility fires events at *trigger states* -- kernel
   entry points like system-call returns.  Here we give the machine a
   modest synthetic system-call workload (one syscall every ~25 us on
   average), schedule a handful of events, and print how late each one
   fired relative to its requested delay.  The backup interrupt clock
   (1 kHz) bounds the delay at ~1 ms even if trigger states stop. *)

let () =
  let engine = Engine.create () in
  let machine = Machine.create engine in
  let facility = Softtimer.attach machine in

  Printf.printf "measurement clock: %Ld Hz (CPU cycle counter)\n"
    (Softtimer.measure_resolution facility);
  Printf.printf "interrupt clock:   %Ld Hz (backup)\n" (Softtimer.interrupt_clock_resolution facility);
  Printf.printf "firing window:     (T, T + X + 1) with X = %Ld ticks\n\n"
    (Softtimer.x_ratio facility);

  (* A background workload that reaches trigger states every ~25 us. *)
  let rng = Prng.create ~seed:42 in
  let rec busy_process _now =
    let think = Dist.draw (Dist.Exponential 22.0) rng in
    Kernel.user machine ~work_us:think (fun _ -> Kernel.syscall machine ~work_us:3.0 busy_process)
  in
  busy_process Time_ns.zero;

  (* Schedule events at various delays and report their firing error. *)
  let delays_us = [ 10.0; 50.0; 100.0; 500.0; 2_000.0 ] in
  List.iter
    (fun d ->
      let requested = Time_ns.of_us d in
      let scheduled_at = Engine.now engine in
      ignore
        (Softtimer.schedule_after facility requested (fun now ->
             let actual = Time_ns.(now - scheduled_at) in
             Printf.printf "requested %8.1f us -> fired after %8.1f us  (late by %6.2f us)\n"
               d (Time_ns.to_us actual)
               (Time_ns.to_us actual -. d))
          : Softtimer.handle))
    delays_us;

  Engine.run_until engine (Time_ns.of_ms 10.0);

  (* Periodic events: reschedule from the handler.  Over many firings
     the mean lateness is the mean *residual* trigger gap. *)
  let lateness = Stats.Sample.create () in
  let period = Time_ns.of_us 100.0 in
  let rec periodic () =
    let scheduled_at = Engine.now engine in
    ignore
      (Softtimer.schedule_after facility period (fun now ->
           Stats.Sample.add lateness (Time_ns.to_us Time_ns.(now - scheduled_at) -. 100.0);
           periodic ())
        : Softtimer.handle)
  in
  periodic ();
  Engine.run_until engine (Time_ns.of_sec 2.0);

  Printf.printf
    "\nperiodic 100 us event, %d firings: lateness mean %.1f us, median %.1f us, max %.1f us\n"
    (Stats.Sample.count lateness) (Stats.Sample.mean lateness) (Stats.Sample.median lateness)
    (Stats.Sample.max lateness);
  Printf.printf "(facility stats: %d checks at trigger states, %d events fired)\n"
    (Softtimer.checks facility) (Softtimer.fired facility)
