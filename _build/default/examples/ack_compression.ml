(* Big ACKs and sender burstiness (paper, Appendix A).

   Build & run:  dune exec examples/ack_compression.exe

   A receiver whose application is slow to read from the socket buffer
   delays its ACKs; when one finally goes out it covers many segments (a
   "big ACK"), and the self-clocked sender answers it with a burst of
   back-to-back packets at access-link speed.  Rate-based clocking
   avoids the burst by pacing transmissions independently of ACK
   arrival. *)

let run ~app_read_delay ~paced =
  let engine = Engine.create () in
  (* Mid-transfer: the pipeline is already open (cwnd has grown), which
     is where big ACKs bite. *)
  let params = { Tcp_types.default with Tcp_types.initial_cwnd = 32 } in
  let segments = 300 in
  let one_way_delay = Time_ns.of_ms 10.0 in
  let bottleneck_bps = 50e6 in
  let client_rx = ref (fun _ _ -> ()) in
  let server_rx = ref (fun _ _ -> ()) in
  let wan_fwd =
    Wan.create engine ~bottleneck_bps ~one_way_delay ~deliver:(fun now p -> !client_rx now p) ()
  in
  let wan_rev =
    Wan.create engine ~bottleneck_bps ~one_way_delay ~deliver:(fun now p -> !server_rx now p) ()
  in
  let transmit _now p = Wan.forward wan_fwd p in
  let receiver =
    Receiver.create engine params ~send_ack:(fun now ~ack_upto ->
        Wan.forward wan_rev (Tcp_types.make_ack ~ack_upto ~born:now))
  in
  Receiver.set_app_read_delay receiver app_read_delay;
  let finish = ref Time_ns.zero in
  let max_burst = ref 1 in
  if paced then begin
    let interval = Session.bottleneck_interval ~bottleneck_bps () in
    let sender =
      Paced_sender.create engine params ~total_segments:segments ~interval ~transmit ()
    in
    Paced_sender.start sender
  end
  else begin
    let sender = Sender.create engine params ~total_segments:segments ~transmit () in
    server_rx :=
      (fun _now p ->
        if p.Packet.meta.Tcp_types.is_ack then begin
          Sender.on_ack sender ~ack_upto:p.Packet.meta.Tcp_types.ack_upto;
          max_burst := max !max_burst (Sender.max_burst_observed sender)
        end);
    Sender.start sender
  end;
  client_rx :=
    (fun now p ->
      if not p.Packet.meta.Tcp_types.is_ack then begin
        Receiver.on_data receiver ~seq:p.Packet.meta.Tcp_types.seq;
        if Receiver.delivered receiver >= segments then finish := now
      end);
  Engine.run_until engine (Time_ns.of_sec 30.0);
  Receiver.stop receiver;
  (Receiver.biggest_ack receiver, !max_burst, Time_ns.to_ms !finish)

let () =
  print_endline "300-segment transfer, 20 ms RTT, 50 Mbps bottleneck:\n";
  List.iter
    (fun (label, delay) ->
      let big_ack, burst, ms = run ~app_read_delay:delay ~paced:false in
      Printf.printf "%-34s biggest ACK covers %3d segs; sender max burst %3d pkts; done %.0f ms\n"
        ("self-clocked, " ^ label) big_ack burst ms)
    [
      ("receiver reads promptly", None);
      ("receiver reads 5 ms late", Some (Time_ns.of_ms 5.0));
      ("receiver reads 40 ms late", Some (Time_ns.of_ms 40.0));
    ];
  let big_ack, burst, ms = run ~app_read_delay:(Some (Time_ns.of_ms 40.0)) ~paced:true in
  Printf.printf "%-34s biggest ACK covers %3d segs; sender max burst %3d pkts; done %.0f ms\n"
    "rate-clocked, reads 40 ms late" big_ack burst ms;
  print_endline
    "\nBig ACKs provoke bursts from a self-clocked sender; the paced sender never bursts.";
  print_endline "(Paper: 40% of >20 KB transfers at the Rice CS web server showed big ACKs.)"
