(* Restarting an idle persistent-HTTP connection (paper §6).

   Build & run:  dune exec examples/phttp_restart.exe

   When a P-HTTP connection goes idle, TCP closes its congestion window;
   the next request then suffers a full slow-start, defeating the point
   of keeping the connection open (Visweswaraiah & Heidemann, cited by
   the paper).  With rate-based clocking the sender instead restarts at
   the capacity it measured during the previous busy period -- here
   estimated with packet pairs from the first transfer's arrivals. *)

let one_way_delay = Time_ns.of_ms 50.0
let bottleneck_bps = 50e6

(* First response: a regular slow-started transfer whose arrivals feed
   the capacity estimator (what the connection "learned"). *)
let first_transfer_and_estimate () =
  let engine = Engine.create () in
  let est = Capacity.create ~packet_bits:(1500 * 8) () in
  let finish = ref Time_ns.zero in
  let client_rx = ref (fun _ _ -> ()) in
  let server_rx = ref (fun _ _ -> ()) in
  let wan_fwd =
    Wan.create engine ~bottleneck_bps ~one_way_delay ~deliver:(fun now p -> !client_rx now p) ()
  in
  let wan_rev =
    Wan.create engine ~bottleneck_bps ~one_way_delay ~deliver:(fun now p -> !server_rx now p) ()
  in
  let params = Tcp_types.default in
  let receiver =
    Receiver.create engine params ~send_ack:(fun now ~ack_upto ->
        Wan.forward wan_rev (Tcp_types.make_ack ~ack_upto ~born:now))
  in
  let segments = 200 in
  let sender =
    Sender.create engine params ~total_segments:segments
      ~transmit:(fun _ p -> Wan.forward wan_fwd p)
      ()
  in
  server_rx :=
    (fun _ p ->
      if p.Packet.meta.Tcp_types.is_ack then
        Sender.on_ack sender ~ack_upto:p.Packet.meta.Tcp_types.ack_upto);
  client_rx :=
    (fun now p ->
      if not p.Packet.meta.Tcp_types.is_ack then begin
        (* The receiver-side estimator sees every data arrival. *)
        Capacity.on_arrival est now;
        Receiver.on_data receiver ~seq:p.Packet.meta.Tcp_types.seq;
        if Receiver.delivered receiver >= segments then finish := now
      end);
  Sender.start sender;
  Engine.run_until engine (Time_ns.of_sec 30.0);
  Sender.stop sender;
  Receiver.stop receiver;
  (Time_ns.to_ms !finish, Capacity.estimate_bps est)

let () =
  let first_ms, est = first_transfer_and_estimate () in
  Printf.printf "first response (200 segments, slow start):   %7.1f ms\n" first_ms;
  let est_bps = match est with Some b -> b | None -> failwith "no estimate" in
  Printf.printf "capacity learned from its arrivals:          %7.1f Mbps (true %.0f)\n\n"
    (est_bps /. 1e6) (bottleneck_bps /. 1e6);

  (* The connection idles; a new request arrives.  Compare restarting
     with slow-start (cwnd reset to 1, current practice) against
     rate-based clocking at the learned capacity. *)
  let next = 100 in
  let slow_start =
    Session.run_transfer ~bottleneck_bps ~one_way_delay ~segments:next `Regular
  in
  (* Pace at the *estimated* rate: interval derived from est_bps. *)
  let paced =
    Session.run_transfer ~bottleneck_bps:est_bps ~one_way_delay ~segments:next `Paced
  in
  Printf.printf "restart after idle, next response (%d segments):\n" next;
  Printf.printf "  slow-start from cwnd=1 (current practice): %7.1f ms\n"
    (Time_ns.to_ms slow_start.Session.response_time);
  Printf.printf "  rate-clocked at the learned capacity:      %7.1f ms  (%.0f%% lower)\n"
    (Time_ns.to_ms paced.Session.response_time)
    (100.0
    *. (1.0
       -. Time_ns.to_ms paced.Session.response_time
          /. Time_ns.to_ms slow_start.Session.response_time))
