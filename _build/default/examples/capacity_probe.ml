(* Estimating the bottleneck capacity with packet pairs, then using the
   estimate for rate-based clocking.

   Build & run:  dune exec examples/capacity_probe.exe

   Rate-based clocking needs to know the path capacity (the paper
   assumes it; its Section 6 points at packet-pair estimation).  Here a
   sender emits short back-to-back probe bursts through the emulated
   WAN; the receiver measures arrival spacing, takes the median, and the
   derived pacing interval drives a paced transfer that finishes within
   a few percent of one paced at the true capacity. *)

let probe ~bottleneck_bps ~bursts ~burst_len =
  let engine = Engine.create () in
  let est = Capacity.create ~packet_bits:(1500 * 8) () in
  let wan =
    Wan.create engine ~bottleneck_bps ~one_way_delay:(Time_ns.of_ms 50.0)
      ~deliver:(fun now _ -> Capacity.on_arrival est now)
      ()
  in
  (* Access link at 1 Gbps: probe pairs leave truly back-to-back. *)
  let access =
    Link.create engine ~bandwidth_bps:1e9 ~latency:(Time_ns.of_us 10.0)
      ~deliver:(fun _ p -> Wan.forward wan p)
      ()
  in
  for b = 0 to bursts - 1 do
    ignore
      (Engine.schedule_at engine
         (Time_ns.mul (Time_ns.of_ms 5.0) b)
         (fun () ->
           Capacity.reset_burst est;
           for _ = 1 to burst_len do
             Link.send access
               (Packet.create ~size_bytes:1500 ~meta:() ~born:(Engine.now engine))
           done)
        : Engine.handle)
  done;
  (* Inter-burst gaps must not pollute the estimate. *)
  let rec reset_between b =
    if b < bursts then
      ignore
        (Engine.schedule_at engine
           Time_ns.(Time_ns.mul (Time_ns.of_ms 5.0) b + Time_ns.of_ms 4.0)
           (fun () ->
             Capacity.reset_burst est;
             reset_between (b + 1))
          : Engine.handle)
  in
  reset_between 0;
  Engine.run engine;
  est

let () =
  List.iter
    (fun mbps ->
      let bottleneck_bps = mbps *. 1e6 in
      let est = probe ~bottleneck_bps ~bursts:12 ~burst_len:4 in
      match Capacity.estimate_bps est with
      | None -> print_endline "no estimate!"
      | Some bps ->
        Printf.printf "true bottleneck %6.1f Mbps -> estimated %6.1f Mbps (%d samples, %+.1f%%)\n"
          mbps (bps /. 1e6) (Capacity.samples est)
          (100.0 *. ((bps /. bottleneck_bps) -. 1.0)))
    [ 10.0; 50.0; 100.0; 155.0 ];

  (* Use the estimate to pace a transfer and compare with the oracle. *)
  print_newline ();
  let bottleneck_bps = 50e6 in
  let est = probe ~bottleneck_bps ~bursts:12 ~burst_len:4 in
  let est_bps = Option.get (Capacity.estimate_bps est) in
  let paced_oracle =
    Session.run_transfer ~bottleneck_bps ~one_way_delay:(Time_ns.of_ms 50.0) ~segments:1000
      `Paced
  in
  (* Pace at the estimated rate by pretending the bottleneck is the
     estimate (the sender only uses it to choose its interval). *)
  let iv_est = Session.bottleneck_interval ~bottleneck_bps:est_bps () in
  let iv_true = Session.bottleneck_interval ~bottleneck_bps () in
  Printf.printf
    "pacing interval from estimate: %.1f us (true: %.1f us)\n"
    (Time_ns.to_us iv_est) (Time_ns.to_us iv_true);
  Printf.printf "oracle-paced 1000-segment transfer: %.1f ms\n"
    (Time_ns.to_ms paced_oracle.Session.response_time)
