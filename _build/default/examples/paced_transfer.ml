(* A web transfer over a long fat pipe, with and without rate-based
   clocking -- the paper's motivating scenario (Section 5.8).

   Build & run:  dune exec examples/paced_transfer.exe [segments]

   A client 50 ms away requests a file; the server either lets stock TCP
   slow-start ramp up, or -- knowing the bottleneck bandwidth -- paces
   packets at exactly that rate using rate-based clocking.  For typical
   web-object sizes the paced transfer finishes several times sooner. *)

let () =
  let segments = if Array.length Sys.argv > 1 then int_of_string Sys.argv.(1) else 100 in
  let one_way_delay = Time_ns.of_ms 50.0 in
  Printf.printf "Transfer of %d x 1448-byte segments (%.1f KB), RTT 100 ms\n\n" segments
    (float_of_int (segments * 1448) /. 1024.0);
  List.iter
    (fun mbps ->
      let bottleneck_bps = mbps *. 1e6 in
      let regular =
        Session.run_transfer ~bottleneck_bps ~one_way_delay ~segments `Regular
      in
      let paced = Session.run_transfer ~bottleneck_bps ~one_way_delay ~segments `Paced in
      Printf.printf "bottleneck %3.0f Mbps:\n" mbps;
      Printf.printf "  regular TCP (slow-start): %8.1f ms  (%5.2f Mbps, max burst %d pkts)\n"
        (Time_ns.to_ms regular.Session.response_time)
        (regular.Session.throughput_bps /. 1e6)
        regular.Session.max_burst;
      Printf.printf "  rate-based clocking:      %8.1f ms  (%5.2f Mbps)\n"
        (Time_ns.to_ms paced.Session.response_time)
        (paced.Session.throughput_bps /. 1e6);
      Printf.printf "  response time reduction:  %8.0f%%\n\n"
        (100.0
        *. (1.0
           -. Time_ns.to_ms paced.Session.response_time
              /. Time_ns.to_ms regular.Session.response_time)))
    [ 50.0; 100.0 ];

  (* The same paced transfer driven through a real Rate_clock on a
     simulated machine, so pacing events ride actual trigger states. *)
  let engine = Engine.create () in
  let machine = Machine.create engine in
  let facility = Softtimer.attach machine in
  let rng = Prng.create ~seed:11 in
  let rec chatter _now =
    let think = Dist.draw (Dist.Exponential 25.0) rng in
    Kernel.user machine ~work_us:think (fun _ -> Kernel.syscall machine ~work_us:3.0 chatter)
  in
  chatter Time_ns.zero;
  let sent_at = Stats.Sample.create () in
  let last = ref None in
  let sender, clock =
    Paced_sender.create_with_rate_clock facility Tcp_types.default ~total_segments:500
      ~target_interval:(Time_ns.of_us 120.0) ~min_interval:(Time_ns.of_us 12.0)
      ~transmit:(fun now _pkt ->
        (match !last with
        | Some prev -> Stats.Sample.add sent_at (Time_ns.to_us Time_ns.(now - prev))
        | None -> ());
        last := Some now)
      ()
  in
  Paced_sender.start sender;
  Engine.run_until engine (Time_ns.of_sec 1.0);
  Printf.printf
    "Rate_clock on a live machine: %d segments paced at target 120 us -> measured mean %.1f us \
     (stddev %.1f)\n"
    (Paced_sender.sent sender) (Stats.Sample.mean sent_at) (Stats.Sample.stddev sent_at);
  ignore clock
