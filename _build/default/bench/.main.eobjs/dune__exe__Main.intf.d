bench/main.mli:
