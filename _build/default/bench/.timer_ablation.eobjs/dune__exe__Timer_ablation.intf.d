bench/timer_ablation.mli:
