bench/timer_ablation.ml: Array List Printf Prng Time_ns Timer_backend Unix
