(* Command-line front end: run any of the paper's experiments by id. *)

let experiments =
  [
    ("fig1", "Figure 1: soft-timer firing-window bounds", Exp_fig1.run);
    ("fig2-3", "Figures 2/3: hardware-timer base overhead", Exp_hw_overhead.run);
    ("soft-base", "Section 5.2: soft-timer base overhead", Exp_soft_base.run);
    ("table1", "Table 1 / Figure 4: trigger-interval distributions", Exp_trigger_dist.run);
    ("fig5", "Figure 5: windowed trigger-interval medians", Exp_trigger_windows.run);
    ("table2", "Table 2 / Figure 6: trigger sources", Exp_trigger_sources.run);
    ("table3", "Table 3: rate-based clocking overhead", Exp_rbc_overhead.run);
    ("table4-5", "Tables 4/5: rate-clocked transmission process", Exp_rbc_process.run);
    ("table6-7", "Tables 6/7: WAN transfer performance", Exp_rbc_wan.run);
    ("table8", "Table 8: network polling throughput", Exp_polling.run);
    ( "livelock",
      "Extension: receiver livelock (interrupts vs MR hybrid vs soft polling)",
      Exp_livelock.run );
    ( "sensitivity",
      "Extension: sensitivity of the headline results to the cost model",
      Exp_sensitivity.run );
  ]

let run_one cfg id =
  match List.find_opt (fun (name, _, _) -> name = id) experiments with
  | Some (_, _, f) ->
    print_string (f cfg);
    `Ok ()
  | None ->
    `Error
      ( false,
        Printf.sprintf "unknown experiment %S; known: %s" id
          (String.concat ", " (List.map (fun (n, _, _) -> n) experiments)) )

let run_all cfg =
  List.iter
    (fun (_, _, f) ->
      print_string (f cfg);
      print_newline ())
    experiments;
  `Ok ()

open Cmdliner

let quick =
  let doc = "Short runs (noisier, ~10x faster)." in
  Arg.(value & flag & info [ "quick"; "q" ] ~doc)

let seed =
  let doc = "Simulation seed (runs are deterministic per seed)." in
  Arg.(value & opt int 7 & info [ "seed"; "s" ] ~doc ~docv:"SEED")

let id =
  let doc = "Experiment id, or 'all'." in
  Arg.(value & pos 0 string "all" & info [] ~doc ~docv:"EXPERIMENT")

let cfg_of quick seed = { Exp_config.quick; seed }

let cmd =
  let doc = "Reproduce the experiments of 'Soft Timers' (Aron & Druschel, SOSP'99)" in
  let man =
    [
      `S Manpage.s_description;
      `P
        "Each experiment regenerates one table or figure of the paper on the simulated \
         testbed and prints measured values next to the paper's.";
      `S "EXPERIMENTS";
    ]
    @ List.map (fun (n, d, _) -> `P (Printf.sprintf "$(b,%s): %s" n d)) experiments
  in
  let term =
    Term.(
      ret
        (const (fun quick seed id ->
             let cfg = cfg_of quick seed in
             if id = "all" then run_all cfg else run_one cfg id)
        $ quick $ seed $ id))
  in
  Cmd.v (Cmd.info "softtimers-cli" ~version:"1.0.0" ~doc ~man) term

let () = exit (Cmd.eval cmd)
