(* Ablation: why the soft-timer facility uses a (hashed) timing wheel.

   dune exec bench/timer_ablation.exe

   Simulates the facility's real operation mix at different pending-timer
   populations N (a busy server keeps one or more timers per connection):
   each iteration performs one trigger-state check (next_deadline), and
   with the workload's probabilities a schedule, a cancel, or an expiry
   sweep.  Reports ns/op per backend: the sorted list degrades linearly
   in N on inserts, the heap logarithmically, and both wheels stay
   flat -- the paper's footnote-2 choice. *)

(* DET001: this ablation reports wall-clock ns/op of the competing
   timer backends — the wall clock is the measurand, never an input to
   the simulated operation mix. *)
[@@@lint.allow "DET001"]

let mix_iters = 200_000

let run_mix (module B : Timer_backend.S) ~n ~seed =
  let rng = Prng.create ~seed in
  let tick = Time_ns.of_us 10.0 in
  let w = B.create ~tick () in
  let now = ref Time_ns.zero in
  let handles = Array.make (max 1 n) None in
  (* Pre-populate N pending timers 0.1-200 ms out. *)
  for i = 0 to n - 1 do
    let at = Time_ns.(!now + Time_ns.of_us (Prng.float_range rng 100.0 200_000.0)) in
    handles.(i) <- Some (B.schedule w ~at i)
  done;
  (* Wall-clock read (lint DET001): legitimate here, and allowlisted in
     tools/lint/lint.ml — this benchmark's measurand *is* real elapsed
     time per operation; no simulated result depends on it. *)
  let t0 = Unix.gettimeofday () in
  for _ = 1 to mix_iters do
    (* Time advances ~20 us per trigger state. *)
    now := Time_ns.(!now + Time_ns.of_us (Prng.float_range rng 5.0 35.0));
    (* The per-trigger-state check. *)
    (match B.next_deadline w with
    | Some d when Time_ns.(d <= !now) ->
      ignore (B.fire_due w ~now:!now ~limit:max_int (fun _ _ -> ()) : Fire_outcome.t)
    | Some _ | None -> ());
    (* Connection timer churn: reschedule one timer (cancel + schedule),
       keeping the population at N. *)
    if n > 0 then begin
      let i = Prng.int rng n in
      (match handles.(i) with Some h -> B.cancel w h | None -> ());
      let at = Time_ns.(!now + Time_ns.of_us (Prng.float_range rng 100.0 200_000.0)) in
      handles.(i) <- Some (B.schedule w ~at i)
    end
  done;
  let dt = Unix.gettimeofday () -. t0 in
  dt /. float_of_int mix_iters *. 1e9

let () =
  (* Cells run sequentially by default: the measurand is real ns/op,
     and concurrent cells would contend for the core(s) and skew it.
     --jobs N (0 = auto) fans the (backend x N) grid out for a quick
     shape check when exact constants don't matter. *)
  let jobs = ref 1 in
  (match Array.to_list Sys.argv with
  | _ :: "--jobs" :: v :: _ -> (
    match int_of_string_opt v with
    | Some n when n >= 0 -> jobs := n
    | Some _ | None ->
      prerr_endline "usage: timer_ablation.exe [--jobs N]";
      exit 2)
  | _ -> ());
  Runner.set_default_jobs !jobs;
  let populations = [ 0; 16; 128; 1024; 8192 ] in
  Printf.printf
    "Timer-backend ablation: one trigger-state check + timer churn per op\n\
     (%d ops per cell; ns/op)\n\n" mix_iters;
  Printf.printf "%-20s" "pending timers N:";
  List.iter (fun n -> Printf.printf "%10d" n) populations;
  print_newline ();
  let grid =
    List.concat_map
      (fun (module B : Timer_backend.S) -> List.map (fun n -> ((module B : Timer_backend.S), n)) populations)
      Timer_backend.all
  in
  let cells =
    Runner.map (fun ((module B : Timer_backend.S), n) -> run_mix (module B) ~n ~seed:(7 + n)) grid
  in
  let rec rows backends cells =
    match backends with
    | [] -> ()
    | (module B : Timer_backend.S) :: rest ->
      let mine, others =
        (List.filteri (fun i _ -> i < List.length populations) cells,
         List.filteri (fun i _ -> i >= List.length populations) cells)
      in
      Printf.printf "%-20s" B.name;
      List.iter (fun ns -> Printf.printf "%10.0f" ns) mine;
      print_newline ();
      rows rest others
  in
  rows Timer_backend.all cells;
  print_newline ();
  print_endline
    "Shape: the sorted list degrades to tens of microseconds per operation\n\
     once a server-like timer population builds up (O(n) insertion); the\n\
     binary heap holds at ~1 us (O(log n)); the hashed wheel stays in the\n\
     sub-microsecond range across three orders of magnitude, and the\n\
     hierarchical variant trades a little constant-factor cascade work\n\
     for collision-free long deadlines.  This is why the paper (footnote\n\
     2) and this library keep soft-timer events in a timing wheel."
