(* Head-to-head timer-store arena: every Timer_store backend under the
   same server-like workloads at large live-timer populations.

   dune exec bench/store_arena.exe -- [--n N] [--ops K] [--seed S] [--out FILE]

   Three workloads, each at a steady population of N live timers:

     schedule_fire  advance time, fire what is due, schedule a
                    replacement from each callback (steady-state
                    connection timers; stresses fire_due + schedule).
     rearm_churn    re-arm a random live timer per op (the rate-clock /
                    TCP-retransmit pattern; stresses rearm, which the
                    grouped sorting queue serves in place and the wheel
                    as cancel+schedule).
     cancel_churn   cancel a random live timer and schedule a fresh one
                    per op (stresses cancellation residency: lazy-cancel
                    stores must compact, physical stores must unlink).

   Durations are drawn from a small discrete set (fixed protocol
   timeouts, as in a real stack), so per-duration stores (lawn) see a
   realistic bucket count rather than a degenerate one-bucket-per-timer
   universe.

   The ns/op figures are wall-clock (allowlisted for lint DET001, like
   timer_ablation.ml); the fired/rearm/resident counts are deterministic
   functions of (--seed, --n, --ops). *)

(* DET001: ns/op is wall-clock by definition here; every reproducible
   output (fired/rearm/resident counts) derives only from the seeded
   Prng, never from the clock. *)
[@@@lint.allow "DET001"]

(* Fixed timeout classes, 100 us .. 500 ms. *)
let durations_us =
  [| 100.0; 250.0; 500.0; 1_000.0; 2_500.0; 5_000.0; 10_000.0;
     25_000.0; 50_000.0; 100_000.0; 250_000.0; 500_000.0 |]

let pick_duration rng = Time_ns.of_us durations_us.(Prng.int rng (Array.length durations_us))

(* O(n)-insert stores cannot reach millions of live timers in reasonable
   time; cap them and say so rather than silently shrinking the arena. *)
let population_cap name = match name with "sorted-list" -> 20_000 | _ -> max_int

(* ...and even at the capped population their per-op cost is ~1000x the
   others', so give them fewer ops too (ns/op is unaffected). *)
let ops_cap name = match name with "sorted-list" -> 5_000 | _ -> max_int

type metrics = {
  ns_per_op : float;
  fired : int;
  rearms : int;
  max_resident : int;
  final_pending : int;
  major_mb : float;  (* major-heap size after the workload, MiB *)
  store_words : int;  (* analytic store footprint after the workload *)
  words_per_timer : float;  (* store_words / final resident population *)
}

type workload = Schedule_fire | Rearm_churn | Cancel_churn

let workload_name = function
  | Schedule_fire -> "schedule_fire"
  | Rearm_churn -> "rearm_churn"
  | Cancel_churn -> "cancel_churn"

let run_cell (module M : Timer_store.S) ~which ~n ~ops ~seed =
  let rng = Prng.create ~seed in
  let t = M.create ~tick:(Time_ns.of_us 10.0) () in
  let now = ref Time_ns.zero in
  let fired = ref 0 and rearms = ref 0 and max_resident = ref 0 in
  let handles = Array.make (max 1 n) None in
  for i = 0 to n - 1 do
    let at = Time_ns.(!now + pick_duration rng) in
    handles.(i) <- Some (M.schedule t ~at i)
  done;
  let note_resident () =
    let r = M.resident t in
    if r > !max_resident then max_resident := r
  in
  note_resident ();
  (* Steady-state fire rate is N / mean-duration; scale the per-op time
     advance so each fire_step expires a few timers regardless of N
     (otherwise large arenas drown in expiry volume and measure nothing
     else). *)
  let adv_us = 156_000.0 /. float_of_int (max 1 n) in
  let fire_step advance_us =
    now := Time_ns.(!now + Time_ns.of_us advance_us);
    (match M.next_deadline t with
    | Some d when Time_ns.(d <= !now) ->
      fired :=
        !fired
        + Fire_outcome.fired
            (M.fire_due t ~now:!now ~limit:max_int (fun _ i ->
                 (* Replace the fired timer so the population holds at N. *)
                 let at = Time_ns.(!now + pick_duration rng) in
                 handles.(i) <- Some (M.schedule t ~at i)))
    | Some _ | None -> ())
  in
  (* Wall-clock read (lint DET001): allowlisted — the measurand here is
     real elapsed time per operation; no simulated result depends on
     it. *)
  let t0 = Unix.gettimeofday () in
  let (), gc =
    Bench_mem.measure (fun () ->
        match which with
        | Schedule_fire ->
          for k = 1 to ops do
            fire_step (adv_us *. Prng.float_range rng 0.5 1.5);
            if k land 1023 = 0 then note_resident ()
          done
        | Rearm_churn ->
          for k = 1 to ops do
            (if n > 0 then
               let i = Prng.int rng n in
               match handles.(i) with
               | Some h ->
                 let at = Time_ns.(!now + pick_duration rng) in
                 if M.rearm t h ~at then incr rearms
               | None -> ());
            (* Let time move so re-arms race real expiries, not a frozen clock. *)
            if k land 63 = 0 then fire_step (64.0 *. adv_us);
            if k land 1023 = 0 then note_resident ()
          done
        | Cancel_churn ->
          for k = 1 to ops do
            (if n > 0 then begin
               let i = Prng.int rng n in
               (match handles.(i) with Some h -> M.cancel t h | None -> ());
               let at = Time_ns.(!now + pick_duration rng) in
               handles.(i) <- Some (M.schedule t ~at i)
             end);
            if k land 63 = 0 then fire_step (64.0 *. adv_us);
            if k land 1023 = 0 then note_resident ()
          done)
  in
  let dt = Unix.gettimeofday () -. t0 in
  note_resident ();
  let store_words = M.words t in
  let resident = max 1 (M.resident t) in
  {
    ns_per_op = dt /. float_of_int (max 1 ops) *. 1e9;
    fired = !fired;
    rearms = !rearms;
    max_resident = !max_resident;
    final_pending = M.pending t;
    major_mb = float_of_int gc.Bench_mem.d_heap_words *. 8.0 /. (1024.0 *. 1024.0);
    store_words;
    words_per_timer = float_of_int store_words /. float_of_int resident;
  }

let run_store (module M : Timer_store.S) ~n ~ops ~seed =
  let n = min n (population_cap M.name) in
  let ops = min ops (ops_cap M.name) in
  List.map
    (fun which -> (which, n, ops, run_cell (module M) ~which ~n ~ops ~seed))
    [ Schedule_fire; Rearm_churn; Cancel_churn ]

let () =
  let n = ref 1_000_000 in
  let ops = ref 200_000 in
  let seed = ref 7 in
  let out = ref None in
  let usage () =
    prerr_endline "usage: store_arena.exe [--n LIVE_TIMERS] [--ops K] [--seed S] [--out FILE]";
    exit 2
  in
  let rec parse = function
    | [] -> ()
    | "--n" :: v :: rest ->
      (match int_of_string_opt v with Some x when x > 0 -> n := x | _ -> usage ());
      parse rest
    | "--ops" :: v :: rest ->
      (match int_of_string_opt v with Some x when x > 0 -> ops := x | _ -> usage ());
      parse rest
    | "--seed" :: v :: rest ->
      (match int_of_string_opt v with Some x -> seed := x | _ -> usage ());
      parse rest
    | "--out" :: v :: rest ->
      out := Some v;
      parse rest
    | _ -> usage ()
  in
  parse (List.tl (Array.to_list Sys.argv));
  let buf = Buffer.create 4096 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string buf s; Buffer.add_char buf '\n') fmt in
  line "Timer-store arena: %d live timers, %d ops per workload, seed %d" !n !ops !seed;
  line "(ns/op is wall-clock; counts are deterministic per seed)";
  line "";
  line
    "| store | workload | live N | ops | ns/op | fired | rearms | max resident | final \
     pending | major MiB | words/timer |";
  line "|---|---|---:|---:|---:|---:|---:|---:|---:|---:|---:|";
  List.iter
    (fun (module M : Timer_store.S) ->
      if population_cap M.name < !n then
        Printf.eprintf "note: %s capped at %d live timers (O(n) insertion)\n%!" M.name
          (population_cap M.name);
      List.iter
        (fun (which, live, ops, m) ->
          line "| %s | %s | %d | %d | %.0f | %d | %d | %d | %d | %.1f | %.1f |" M.name
            (workload_name which) live ops m.ns_per_op m.fired m.rearms m.max_resident
            m.final_pending m.major_mb m.words_per_timer)
        (run_store (module M) ~n:!n ~ops:!ops ~seed:!seed);
      (* One store's arena at a time: drop its millions of nodes before
         building the next store's. *)
      Gc.compact ())
    Store_registry.all;
  print_string (Buffer.contents buf);
  match !out with
  | None -> ()
  | Some path ->
    let oc = open_out path in
    Fun.protect
      ~finally:(fun () -> close_out oc)
      (fun () -> output_string oc (Buffer.contents buf));
    Printf.printf "wrote %s\n" path
