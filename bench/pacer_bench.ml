(* Wall-clock cost of fleet pacing: ns per flow per tick across timer
   stores and fleet sizes.

   dune exec bench/pacer_bench.exe -- [--quick] [--seed S] [--json FILE]

   The deterministic side of this sweep (sends, catch-ups, fire-delay
   quantiles, bytes per flow) is the pacer-scale experiment
   (bin/softtimers_cli.exe pacer-scale); this binary shares its fleet
   setup — same rate classes, stagger and check cadence — and measures
   the one thing the experiment deliberately excludes: real elapsed
   time.  The acceptance story is the per-flow-per-tick cost staying
   flat as the fleet grows 100x, i.e. O(1) per-event store cost.

   Steady state is also the allocation story: after warm-up the pacing
   loop reuses packet cells and int-array slots, so minor-GC pressure
   (reported per cell) stays near zero for the wheel's int handles. *)

(* DET001: elapsed time is the measurand here; every reproducible count
   (sends, fires) derives only from the seeded Prng. *)
[@@@lint.allow "DET001"]

let tick_us = 10.0

let classes = 32
let class_target_us k = 103.0 +. (63.0 *. float_of_int k)

type cell = {
  store : string;
  flows : int;
  ticks : int;
  sends : int;
  ns_per_flow_tick : float;
  ns_per_send : float;
  minor_words_per_send : float;
  major_words_per_send : float;
  store_words : int;  (* analytic store footprint after the timed section *)
  pool_words : int;  (* fleet pool arrays (flow state, handles) *)
}

let words_per_flow c = float_of_int (c.store_words + c.pool_words) /. float_of_int c.flows

let run_cell (module M : Timer_store.S) ~flows ~ticks ~seed =
  let module F = Paced_sender.Fleet (M) in
  let rng = Prng.create ~seed:(seed + (31 * flows)) in
  (* Sparse histogram sampling: this binary reports cost, not
     quantiles, and per-send float recording would dominate the minor
     words/send column.  The experiment samples every send instead. *)
  let fleet =
    F.create ~stat_every:1024
      ~intervals:(Hdr.create ~lowest:0.01 ())
      ~tick:(Time_ns.of_us tick_us)
      ~transmit:(fun _ _ -> ())
      ()
  in
  for fid = 0 to flows - 1 do
    let target_us = class_target_us (Prng.int rng classes) in
    ignore
      (F.add fleet ~total_segments:max_int
         ~target_interval:(Time_ns.of_us target_us)
         ~min_interval:(Time_ns.of_us 12.0)
        : int);
    F.start fleet fid ~now:(Time_ns.of_us (tick_us *. float_of_int (fid mod 101)))
  done;
  (* Warm-up: flow starts drain, pools fill, the store reaches steady
     churn before the clock starts.  The floor covers one full rate
     horizon (the slowest class sends every ~206 ticks), so every class
     has completed at least one send → reschedule cycle and the wheel's
     bucket vectors have reached their steady footprint. *)
  let warm = max (ticks / 4) 256 in
  for s = 1 to warm do
    ignore (F.check fleet ~now:(Time_ns.mul (Time_ns.of_us tick_us) s) ~limit:max_int
            : Fire_outcome.t)
  done;
  let sends0 = F.sends fleet in
  let t0 = Unix.gettimeofday () in
  let (), gc =
    Bench_mem.measure (fun () ->
        for s = warm + 1 to warm + ticks do
          ignore (F.check fleet ~now:(Time_ns.mul (Time_ns.of_us tick_us) s) ~limit:max_int
                  : Fire_outcome.t)
        done)
  in
  let dt = Unix.gettimeofday () -. t0 in
  let sends = F.sends fleet - sends0 in
  {
    store = M.name;
    flows;
    ticks;
    sends;
    ns_per_flow_tick = dt *. 1e9 /. float_of_int ticks /. float_of_int flows;
    ns_per_send = dt *. 1e9 /. float_of_int (max 1 sends);
    minor_words_per_send = gc.Bench_mem.d_minor_words /. float_of_int (max 1 sends);
    major_words_per_send = Bench_mem.major_alloc gc /. float_of_int (max 1 sends);
    store_words = F.store_words fleet;
    pool_words = F.pool_words fleet;
  }

(* Min-of-N: the counts are deterministic (seeded Prng), so repeats
   differ only by machine noise; the minimum is the standard
   microbenchmark estimator for the undisturbed cost. *)
let run_cell_min (module M : Timer_store.S) ~flows ~ticks ~seed ~repeat =
  let best = ref (run_cell (module M) ~flows ~ticks ~seed) in
  for _ = 2 to repeat do
    let c = run_cell (module M) ~flows ~ticks ~seed in
    assert (c.sends = !best.sends);
    if c.ns_per_flow_tick < !best.ns_per_flow_tick then best := c
  done;
  !best

let stores : (module Timer_store.S) list =
  [ (module Pacing_wheel); (module Eventq_store); (module Lawn) ]

(* Fewer measured ticks at larger fleets: per-tick work scales with the
   aggregate send rate, and the mean stabilizes within a few hundred
   ticks. *)
let ticks_for flows = if flows <= 10_000 then 2_000 else if flows <= 100_000 then 1_000 else 500

let () =
  let quick = ref false in
  let seed = ref 7 in
  let json = ref None in
  let repeat = ref 1 in
  let only = ref None in
  let flows_override = ref None in
  let usage () =
    prerr_endline
      "usage: pacer_bench.exe [--quick] [--seed S] [--json FILE] [--repeat N] [--store NAME]";
    exit 2
  in
  let rec parse = function
    | [] -> ()
    | "--quick" :: rest ->
      quick := true;
      parse rest
    | "--seed" :: v :: rest ->
      (match int_of_string_opt v with Some x -> seed := x | _ -> usage ());
      parse rest
    | "--json" :: v :: rest ->
      json := Some v;
      parse rest
    | "--repeat" :: v :: rest ->
      (match int_of_string_opt v with Some x when x >= 1 -> repeat := x | _ -> usage ());
      parse rest
    | "--store" :: v :: rest ->
      only := Some v;
      parse rest
    | "--flows" :: v :: rest ->
      (match int_of_string_opt v with Some x when x >= 1 -> flows_override := Some x | _ -> usage ());
      parse rest
    | _ -> usage ()
  in
  parse (List.tl (Array.to_list Sys.argv));
  let sizes =
    match !flows_override with
    | Some n -> [ n ]
    | None -> if !quick then [ 1_000; 10_000 ] else [ 1_000; 10_000; 100_000; 1_000_000 ]
  in
  let stores =
    match !only with
    | None -> stores
    | Some n -> List.filter (fun (module M : Timer_store.S) -> M.name = n) stores
  in
  if stores = [] then usage ();
  let cells =
    List.concat_map
      (fun (module M : Timer_store.S) ->
        let rows =
          List.map
            (fun flows ->
              run_cell_min (module M) ~flows ~ticks:(ticks_for flows) ~seed:!seed
                ~repeat:!repeat)
            sizes
        in
        Gc.compact ();
        rows)
      stores
  in
  Printf.printf "Fleet pacing cost: ns per flow per tick (wall-clock), seed %d\n\n" !seed;
  Printf.printf
    "| store | flows | ticks | sends | ns/flow/tick | ns/send | minor words/send | major \
     words/send | words/flow |\n";
  Printf.printf "|---|---:|---:|---:|---:|---:|---:|---:|---:|\n";
  List.iter
    (fun c ->
      Printf.printf "| %s | %d | %d | %d | %.2f | %.0f | %.3f | %.3f | %.1f |\n" c.store
        c.flows c.ticks c.sends c.ns_per_flow_tick c.ns_per_send c.minor_words_per_send
        c.major_words_per_send (words_per_flow c))
    cells;
  (* Retention census: note each cell's analytic store + pool footprint
     under mem;pacer;<store>;<flows> so the JSON mem section attributes
     retained words the same way `softtimers-cli mem` does. *)
  List.iter
    (fun c ->
      Memstats.note ~path:[ "pacer"; c.store; string_of_int c.flows ]
        (c.store_words + c.pool_words))
    cells;
  match !json with
  | None -> ()
  | Some path ->
    let b = Buffer.create 1024 in
    Buffer.add_string b "{\"schema\":\"softtimers-pacer-bench/1\",";
    Buffer.add_string b (Printf.sprintf "\"seed\":%d,\"cells\":[" !seed);
    List.iteri
      (fun i c ->
        if i > 0 then Buffer.add_char b ',';
        Buffer.add_string b
          (Printf.sprintf
             "{\"store\":\"%s\",\"flows\":%d,\"ticks\":%d,\"sends\":%d,\
              \"ns_per_flow_tick\":%.3f,\"ns_per_send\":%.1f,\"minor_words_per_send\":%.3f,\
              \"major_words_per_send\":%.3f,\"store_words\":%d,\"pool_words\":%d,\
              \"words_per_flow\":%.1f}"
             c.store c.flows c.ticks c.sends c.ns_per_flow_tick c.ns_per_send
             c.minor_words_per_send c.major_words_per_send c.store_words c.pool_words
             (words_per_flow c)))
      cells;
    Buffer.add_string b "],\"mem\":";
    Buffer.add_string b (Memstats.to_json ());
    Buffer.add_string b "}\n";
    let oc = open_out path in
    Fun.protect
      ~finally:(fun () -> close_out oc)
      (fun () -> Buffer.output_buffer oc b);
    Printf.printf "\nwrote %s\n" path
