(* Focused Bechamel microbenchmarks of the discrete-event hot path:
   the operations every experiment cell spends most of its cycles in
   (Engine.schedule / fire / cancel and the backing event queue).

   dune exec bench/microbench.exe [-- --quota SECONDS]

   These are the numbers the PR-4 engine overhaul is judged by; the
   before/after table lives in EXPERIMENTS.md. *)

let bench_engine_schedule_fire () =
  (* Steady-state schedule+fire through the public API: one event in
     flight, no cancellations. *)
  let e = Engine.create () in
  let t = ref 0L in
  Bechamel.Staged.stage (fun () ->
      t := Int64.add !t 100L;
      ignore (Engine.schedule_at e !t (fun () -> ()) : Engine.handle);
      ignore (Engine.step e : bool))

let bench_engine_churn () =
  (* The rate-based-clocking pattern: schedule then cancel/reschedule,
     so the queue sees a stream of dead entries. *)
  let e = Engine.create () in
  let t = ref 0L in
  Bechamel.Staged.stage (fun () ->
      t := Int64.add !t 100L;
      let h = Engine.schedule_at e !t (fun () -> ()) in
      Engine.cancel e h;
      ignore (Engine.schedule_at e !t (fun () -> ()) : Engine.handle);
      ignore (Engine.step e : bool))

let bench_engine_pending64 () =
  (* schedule+fire with a resident population of 64 pending events, so
     sift depth is realistic rather than trivial. *)
  let e = Engine.create () in
  for i = 1 to 64 do
    ignore (Engine.schedule_at e (Int64.of_int (1_000_000_000 + i)) (fun () -> ()) : Engine.handle)
  done;
  let t = ref 0L in
  Bechamel.Staged.stage (fun () ->
      t := Int64.add !t 100L;
      ignore (Engine.schedule_at e !t (fun () -> ()) : Engine.handle);
      ignore (Engine.step e : bool))

let bench_engine_churn64 () =
  (* Churn with a resident population: the case lazy cancellation +
     compaction is designed for.  The old engine paid a full-depth
     sift per dead entry popped; the new one amortizes. *)
  let e = Engine.create () in
  for i = 1 to 64 do
    ignore (Engine.schedule_at e (Int64.of_int (1_000_000_000 + i)) (fun () -> ()) : Engine.handle)
  done;
  let t = ref 0L in
  Bechamel.Staged.stage (fun () ->
      t := Int64.add !t 100L;
      let h = Engine.schedule_at e !t (fun () -> ()) in
      Engine.cancel e h;
      ignore (Engine.schedule_at e !t (fun () -> ()) : Engine.handle);
      ignore (Engine.step e : bool))

let bench_eventq_push_pop () =
  (* The specialized int-keyed 4-ary heap, same shape as heap.push+pop
     below: 64 resident entries, one push+pop per iteration. *)
  let q = Eventq.create () in
  for i = 1 to 64 do
    Eventq.push q ~time:(1_000_000_000 + i) ~seq:i ~payload:i
  done;
  let counter = ref 0 in
  Bechamel.Staged.stage (fun () ->
      counter := !counter + 7_919;
      Eventq.push q ~time:!counter ~seq:!counter ~payload:0;
      Eventq.drop_min q)

let bench_heap_push_pop () =
  (* The generic closure-compared heap, for comparison. *)
  let heap = Heap.create ~cmp:Int64.compare in
  for i = 1 to 64 do
    Heap.push heap (Int64.of_int (1_000_000_000 + i))
  done;
  let counter = ref 0L in
  Bechamel.Staged.stage (fun () ->
      counter := Int64.add !counter 7_919L;
      Heap.push heap !counter;
      ignore (Heap.pop heap : int64 option))

let bench_hdr_record () =
  (* The PR-5 always-on histogram path: every soft-timer fire and
     rate-clock interval records into an Hdr unconditionally, so this
     must stay within a few tens of ns (acceptance: <= 25 ns/op). *)
  let h = Hdr.create () in
  let values =
    (* Spread across linear and log bucket regions, like real delays. *)
    [| 0.4; 1.7; 3.9; 12.5; 55.0; 240.0; 990.0; 4_321.0 |]
  in
  let i = ref 0 in
  Bechamel.Staged.stage (fun () ->
      i := (!i + 1) land 7;
      Hdr.record h values.(!i))

let bench_timeseries_event () =
  (* Steady-state tap cost: one trace event lands in the current
     window (1 ms) with time advancing 1 us per event, so a window
     flush amortizes over ~1000 events. *)
  let ts = Timeseries.create ~window:(Time_ns.of_us 1000.0) () in
  let t = ref 0L in
  Bechamel.Staged.stage (fun () ->
      t := Int64.add !t 1_000L;
      Timeseries.on_event ts ~at:!t (Trace.Poll { found = 1 }))

let bench_timeseries_window_flush () =
  (* Worst case: every event advances past the window edge, so each
     iteration closes the previous window into the bounded ring and
     opens a fresh one (the windowed counter flush). *)
  let ts = Timeseries.create ~window:(Time_ns.of_us 1.0) ~max_windows:64 () in
  let t = ref 0L in
  Bechamel.Staged.stage (fun () ->
      t := Int64.add !t 1_000L;
      Timeseries.on_event ts ~at:!t (Trace.Poll { found = 1 }))

(* The delay-audit tap hot path: [Delay_audit.on_event] runs once per
   trace event when auditing live, so the two per-check costs — folding
   a [Soft_check] over the active set and closing a fire — must stay
   cheap enough to leave the simulated hot loop unperturbed. *)

let bench_delay_audit_on_check () =
  (* Steady state: 8 late timers in flight, every event is a check that
     scanned-but-skipped them (the worst per-check fan-out). *)
  let da = Delay_audit.create () in
  let t = ref 0L in
  for i = 0 to 7 do
    Delay_audit.on_event da ~at:0L (Trace.Soft_sched { id = i; due = 1_000L })
  done;
  (* Promote past due so the 8 timers are active. *)
  Delay_audit.on_event da ~at:2_000L (Trace.Soft_check { src = "syscalls"; scanned = 8; fired = 0 });
  Bechamel.Staged.stage (fun () ->
      t := Int64.add !t 1_000L;
      Delay_audit.on_event da
        ~at:(Int64.add 2_000L !t)
        (Trace.Soft_check { src = "syscalls"; scanned = 8; fired = 0 }))

let bench_delay_audit_on_fire () =
  (* One sched+fire pair per iteration, 1 us late, with a covering
     Cpu_run quantum: the full tracked-fire close-out (span attribution,
     conservation check, aggregation, exemplar insert). *)
  let da = Delay_audit.create () in
  let t = ref 0L in
  let id = ref 0 in
  Bechamel.Staged.stage (fun () ->
      t := Int64.add !t 10_000L;
      incr id;
      let due = Int64.add !t 1_000L in
      let fire = Int64.add !t 2_000L in
      Delay_audit.on_event da ~at:!t (Trace.Soft_sched { id = !id; due });
      Delay_audit.on_event da ~at:fire
        (Trace.Cpu_run { cpu = 0; klass = 3; dur = 2_000L });
      Delay_audit.on_event da ~at:fire
        (Trace.Soft_fire { id = !id; due; delay = 1_000L });
      Delay_audit.on_event da ~at:fire
        (Trace.Soft_check { src = "syscalls"; scanned = 1; fired = 1 }))

(* Per-store fast-path costs at a steady 1024-timer population — the
   arena bench (store_arena.exe) covers the million-timer regime; these
   catch constant-factor regressions in any single backend. *)

let store_population = 1024

let bench_store_schedule_fire (module M : Timer_store.S) () =
  let t = M.create ~tick:(Time_ns.of_us 10.0) () in
  let now = ref 0L in
  (* 16 discrete deadline classes (distinct durations are duration-store
     buckets, so a 1024-way spread would be a degenerate setup, not a
     fast path): ~64 timers expire per class boundary, one iteration per
     10 us, replacements at the horizon. *)
  for i = 1 to store_population do
    ignore (M.schedule t ~at:(Int64.of_int (((i mod 16) + 1) * 640_000)) 0 : int M.handle)
  done;
  let horizon = Int64.of_int (store_population * 10_000) in
  Bechamel.Staged.stage (fun () ->
      now := Int64.add !now 10_000L;
      ignore (M.schedule t ~at:(Int64.add !now horizon) 0 : int M.handle);
      ignore (M.fire_due t ~now:!now ~limit:max_int (fun _ _ -> ()) : Fire_outcome.t))

let bench_store_rearm_churn (module M : Timer_store.S) () =
  let t = M.create ~tick:(Time_ns.of_us 10.0) () in
  let handles =
    Array.init store_population (fun i ->
        M.schedule t ~at:(Int64.of_int ((i + 1) * 10_000)) 0)
  in
  let i = ref 0 in
  let bump = ref 0L in
  Bechamel.Staged.stage (fun () ->
      i := (!i + 1) land (store_population - 1);
      (* Deadlines shuffle within the same horizon, so nothing expires:
         pure re-arm cost (in-place for grouped sorting, cancel+schedule
         for the wheel, stale-entry + compaction for the heaps). *)
      bump := Int64.rem (Int64.add !bump 70_001L) 10_000_000L;
      ignore (M.rearm t handles.(!i) ~at:(Int64.add 10_000L !bump) : bool))

let store_benches () =
  List.concat_map
    (fun (module M : Timer_store.S) ->
      let open Bechamel in
      [
        Test.make
          ~name:(Printf.sprintf "store.%s.schedule_fire" M.name)
          (bench_store_schedule_fire (module M) ());
        Test.make
          ~name:(Printf.sprintf "store.%s.rearm_churn" M.name)
          (bench_store_rearm_churn (module M) ());
      ])
    Store_registry.all

let () =
  let quota = ref 1.0 in
  (match Array.to_list Sys.argv with
  | _ :: "--quota" :: v :: _ -> (
    match float_of_string_opt v with Some q when q > 0.0 -> quota := q | _ -> ())
  | _ -> ());
  let open Bechamel in
  let open Toolkit in
  let test =
    Test.make_grouped ~name:"engine"
      ([
        Test.make ~name:"engine.schedule+fire" (bench_engine_schedule_fire ());
        Test.make ~name:"engine.churn(sched+cancel+sched+fire)" (bench_engine_churn ());
        Test.make ~name:"engine.schedule+fire@64pending" (bench_engine_pending64 ());
        Test.make ~name:"engine.churn@64pending" (bench_engine_churn64 ());
        Test.make ~name:"eventq.push+pop@64" (bench_eventq_push_pop ());
        Test.make ~name:"heap.push+pop@64" (bench_heap_push_pop ());
        Test.make ~name:"hdr.record" (bench_hdr_record ());
        Test.make ~name:"timeseries.on_event" (bench_timeseries_event ());
        Test.make ~name:"timeseries.window-flush" (bench_timeseries_window_flush ());
        Test.make ~name:"delay_audit.on_check" (bench_delay_audit_on_check ());
        Test.make ~name:"delay_audit.on_fire" (bench_delay_audit_on_fire ());
      ]
      @ store_benches ())
  in
  let benchmark test =
    let instances = Instance.[ monotonic_clock ] in
    let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second !quota) ~kde:(Some 1000) () in
    Benchmark.all cfg instances test
  in
  let analyze results =
    let ols = Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |] in
    Analyze.all ols Instance.monotonic_clock results
  in
  let results = analyze (benchmark test) in
  let rows = ref [] in
  Hashtbl.iter
    (fun name ols ->
      match Analyze.OLS.estimates ols with
      | Some [ est ] -> rows := (name, Some est) :: !rows
      | Some _ | None -> rows := (name, None) :: !rows)
    results;
  List.iter
    (fun (name, est) ->
      match est with
      | Some est -> Printf.printf "%-45s %10.1f ns/op\n" name est
      | None -> Printf.printf "%-45s (no estimate)\n" name)
    (List.sort (fun (a, _) (b, _) -> String.compare a b) !rows)
