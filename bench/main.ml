(* The full benchmark harness: regenerates every table and figure of the
   paper (printing measured values next to the paper's), then runs
   Bechamel microbenchmarks of the core data structures.

   Pass --quick for a fast, noisier pass (used by CI); pass an
   experiment id to run just one (see softtimers-cli for the list);
   pass --seed N to replay a specific PRNG seed and --json FILE to
   additionally write a machine-readable baseline (BENCH_<tag>.json,
   compared across commits by tools/benchdiff). *)

(* DET001: per-experiment wall_clock_s stamped into the --json baseline
   is the measurand here, not an input to any simulation — benchdiff
   never compares wall-clock keys, so reading the clock cannot perturb
   a reproducible result. *)
[@@@lint.allow "DET001"]

let experiments =
  [
    ("fig1", Exp_fig1.run);
    ("fig2-3", Exp_hw_overhead.run);
    ("soft-base", Exp_soft_base.run);
    ("table1", Exp_trigger_dist.run);
    ("fig5", Exp_trigger_windows.run);
    ("table2", Exp_trigger_sources.run);
    ("table3", Exp_rbc_overhead.run);
    ("table4-5", Exp_rbc_process.run);
    ("table6-7", Exp_rbc_wan.run);
    ("table8", Exp_polling.run);
    ("livelock", Exp_livelock.run);
    ("sensitivity", Exp_sensitivity.run);
  ]

(* ------------------------------------------------------------------ *)
(* Bechamel microbenchmarks: the operations on the soft-timer fast     *)
(* path whose cost the paper's argument depends on.                    *)

let bench_timing_wheel_schedule () =
  let wheel = Timing_wheel.create ~tick:(Time_ns.of_us 10.0) () in
  let counter = ref 0L in
  Bechamel.Staged.stage (fun () ->
      counter := Int64.add !counter 9_973L;
      let h = Timing_wheel.schedule wheel ~at:!counter () in
      Timing_wheel.cancel wheel h)

let bench_timing_wheel_check () =
  (* The per-trigger-state check: next_deadline on a wheel with pending
     entries (cache-hit path). *)
  let wheel = Timing_wheel.create ~tick:(Time_ns.of_us 10.0) () in
  for i = 1 to 64 do
    ignore
      (Timing_wheel.schedule wheel ~at:(Int64.of_int (i * 100_000)) () : Timing_wheel.handle)
  done;
  Bechamel.Staged.stage (fun () -> ignore (Timing_wheel.next_deadline wheel : Time_ns.t option))

let bench_heap_push_pop () =
  let heap = Heap.create ~cmp:Int64.compare in
  let counter = ref 0L in
  Bechamel.Staged.stage (fun () ->
      counter := Int64.add !counter 7_919L;
      Heap.push heap !counter;
      ignore (Heap.pop heap : int64 option))

let bench_softtimer_fire () =
  (* Schedule + fire one soft event through the whole facility. *)
  let engine = Engine.create () in
  let machine = Machine.create engine in
  let st = Softtimer.attach machine in
  Bechamel.Staged.stage (fun () ->
      ignore (Softtimer.schedule_soft_event st ~ticks:0L (fun _ -> ()) : Softtimer.handle);
      Machine.fire_trigger machine Trigger.Syscall;
      Engine.run_until engine Time_ns.(Engine.now engine + Time_ns.of_us 5.0))

let run_microbenchmarks () =
  let open Bechamel in
  let open Toolkit in
  print_string (Exp_config.header "Microbenchmarks (Bechamel): soft-timer fast path");
  let test =
    Test.make_grouped ~name:"softtimers"
      [
        Test.make ~name:"timing_wheel.schedule+cancel" (bench_timing_wheel_schedule ());
        Test.make ~name:"timing_wheel.next_deadline" (bench_timing_wheel_check ());
        Test.make ~name:"heap.push+pop" (bench_heap_push_pop ());
        Test.make ~name:"softtimer.schedule+fire" (bench_softtimer_fire ());
      ]
  in
  let benchmark test =
    let instances = Instance.[ monotonic_clock ] in
    let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~kde:(Some 1000) () in
    Benchmark.all cfg instances test
  in
  let analyze results =
    let ols = Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |] in
    Analyze.all ols Instance.monotonic_clock results
  in
  let results = analyze (benchmark test) in
  Hashtbl.iter
    (fun name ols ->
      match Analyze.OLS.estimates ols with
      | Some [ est ] -> Printf.printf "  %-40s %10.1f ns/op\n" name est
      | Some _ | None -> Printf.printf "  %-40s (no estimate)\n" name)
    results;
  print_newline ()

(* ------------------------------------------------------------------ *)
(* --json FILE: machine-readable baseline.                             *)
(*                                                                     *)
(* Everything under the simulated results (table cells, attribution)   *)
(* is a deterministic function of (seed, quick); only wall_clock_s     *)
(* varies between machines, and tools/benchdiff skips those keys.      *)
(* Hand-rolled writer: fixed field order, %.6g floats, sorted where    *)
(* the source order is not already deterministic.                      *)

let json_escape s =
  let b = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | c when Char.code c < 0x20 -> Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let jstr s = "\"" ^ json_escape s ^ "\""
let jnum v = if Float.is_finite v then Printf.sprintf "%.6g" v else "null"
let jlist items = "[" ^ String.concat "," items ^ "]"
let jobj fields = "{" ^ String.concat "," (List.map (fun (k, v) -> jstr k ^ ":" ^ v) fields) ^ "}"
let server_name = function Webserver.Apache -> "apache" | Webserver.Flash -> "flash"

let http_name = function
  | Webserver.Http -> "http"
  | Webserver.Persistent n -> Printf.sprintf "p-http-%d" n

let table3_json rows =
  jlist
    (List.map
       (fun (r : Exp_rbc_overhead.server_rows) ->
         jobj
           [
             ("server", jstr (server_name r.server));
             ("base_tput", jnum r.base_tput);
             ("hw_tput", jnum r.hw_tput);
             ("hw_overhead_pct", jnum r.hw_overhead_pct);
             ("hw_interval_us", jnum r.hw_interval_us);
             ("soft_tput", jnum r.soft_tput);
             ("soft_overhead_pct", jnum r.soft_overhead_pct);
             ("soft_interval_us", jnum r.soft_interval_us);
           ])
       rows)

let table8_json rows =
  jlist
    (List.map
       (fun (r : Exp_polling.row) ->
         jobj
           [
             ("server", jstr (server_name r.server));
             ("http", jstr (http_name r.http));
             ("mean_batch", jnum r.mean_batch);
             ( "cells",
               jlist
                 (List.map
                    (fun (c : Exp_polling.cell) ->
                      jobj
                        [
                          ("quota", match c.quota with None -> "null" | Some q -> jnum q);
                          ("tput", jnum c.tput);
                          ("ratio", jnum c.ratio);
                        ])
                    r.cells) );
           ])
       rows)

let table2_json (res : Exp_trigger_sources.result) =
  jlist
    (List.map
       (fun (r : Exp_trigger_sources.source_row) ->
         jobj
           [
             ("source", jstr (Trigger.name r.source));
             ("fraction_pct", jnum r.fraction_pct);
             ("paper_pct", jnum r.paper_pct);
           ])
       res.sources)

let attribution_json p =
  (* Re-sort by name: [roots_ns] is largest-first and [dispatch_rows]
     is first-dispatch order, both of which shuffle between seeds —
     benchdiff keys array elements by index, so the JSON needs an order
     that only depends on which categories exist. *)
  let by_name (a, _) (b, _) = String.compare a b in
  jobj
    [
      ("total_attributed_ns", Printf.sprintf "%Ld" (Profile.total_attributed_ns p));
      ("cpus", string_of_int (Profile.cpu_count p));
      ("fired_total", string_of_int (Profile.fired_total p));
      ( "categories",
        jlist
          (List.map
             (fun (name, ns) -> jobj [ ("path", jstr name); ("ns", Printf.sprintf "%Ld" ns) ])
             (List.sort by_name (Profile.roots_ns p))) );
      ( "dispatch",
        jlist
          (List.map
             (fun (source, fires) ->
               jobj [ ("source", jstr source); ("fires", string_of_int fires) ])
             (List.sort by_name (Profile.dispatch_rows p))) );
    ]

(* Late-fire attribution over the Table 3 workload, audited live
   through a trace tap (the audit emits no events, so digests and the
   table cells themselves are unchanged).  Only exact counts and
   attributed nanoseconds go in the JSON — they replay
   deterministically from (seed, quick) — so the cells gate under
   benchdiff --strict like any other. *)
let whylate_json da =
  let causes =
    List.filter_map
      (fun k ->
        let ns = Delay_audit.cause_ns da k in
        if Int64.equal ns 0L then None
        else
          Some
            (jobj
               [
                 ("cause", jstr (Delay_audit.seg_label k));
                 ("ns", Printf.sprintf "%Ld" ns);
               ]))
      (List.init Delay_audit.nseg Fun.id)
  in
  jobj
    [
      ("fired", string_of_int (Delay_audit.fired da));
      ("ontime", string_of_int (Delay_audit.ontime da));
      ("late", string_of_int (Delay_audit.late da));
      ("untracked", string_of_int (Delay_audit.untracked da));
      ("pending_at_exit", string_of_int (Delay_audit.pending_at_exit da));
      ("violations", string_of_int (Delay_audit.violations da));
      ("total_late_ns", Printf.sprintf "%Ld" (Delay_audit.total_late_ns da));
      ("causes", jlist causes);
      ( "end_triggers",
        jlist
          (List.map
             (fun (trig, n, ns, _) ->
               jobj
                 [
                   ("trigger", jstr trig);
                   ("late", string_of_int n);
                   ("ns", Printf.sprintf "%Ld" ns);
                 ])
             (Delay_audit.trigger_rows da)) );
    ]

(* Deterministic per-store workload counts: every Timer_store backend
   runs the same small churn mix (schedule / cancel / re-arm / expiry)
   in simulated time — no wall clock — so the cells gate under
   benchdiff --strict like any table cell.  The fired and rearm counts
   must agree across the exact stores (the equivalence contract); the
   approximate pacing-wheel rounds deadlines up to the tick, so its
   fired count is its own gated cell, not required to match.  The
   residency cells are per-store (lazy-cancel stores carry bounded
   corpses). *)
let stores_json cfg =
  let durations_us = [| 50.0; 100.0; 250.0; 500.0; 1_000.0; 2_500.0; 5_000.0; 10_000.0 |] in
  let run (module M : Timer_store.S) =
    let rng = Prng.create ~seed:(cfg.Exp_config.seed + 101) in
    let t = M.create ~tick:(Time_ns.of_us 10.0) () in
    let n = 1024 and ops = 8192 in
    let now = ref Time_ns.zero in
    let fired = ref 0 and rearms = ref 0 and max_resident = ref 0 in
    let pick () = Time_ns.of_us durations_us.(Prng.int rng (Array.length durations_us)) in
    let handles = Array.make n None in
    for i = 0 to n - 1 do
      handles.(i) <- Some (M.schedule t ~at:Time_ns.(!now + pick ()) i)
    done;
    for k = 1 to ops do
      let i = Prng.int rng n in
      (match handles.(i) with
      | Some h when k land 3 = 0 ->
        M.cancel t h;
        handles.(i) <- Some (M.schedule t ~at:Time_ns.(!now + pick ()) i)
      | Some h -> if M.rearm t h ~at:Time_ns.(!now + pick ()) then incr rearms
      | None -> ());
      (if k land 7 = 0 then begin
         now := Time_ns.(!now + Time_ns.of_us 20.0);
         match M.next_deadline t with
         | Some d when Time_ns.(d <= !now) ->
           fired :=
             !fired
             + Fire_outcome.fired
                 (M.fire_due t ~now:!now ~limit:max_int (fun _ i ->
                      handles.(i) <- Some (M.schedule t ~at:Time_ns.(!now + pick ()) i)))
         | Some _ | None -> ()
       end);
      let r = M.resident t in
      if r > !max_resident then max_resident := r
    done;
    (* Analytic words are a pure function of the store's final state —
       no GC involvement — so the mem cells gate under benchdiff
       --strict (and its memory thresholds) like any table cell. *)
    let words = M.words t in
    let pending = M.pending t in
    let row =
      jobj
        [
          ("store", jstr M.name);
          ("fired", string_of_int !fired);
          ("rearms", string_of_int !rearms);
          ("max_resident", string_of_int !max_resident);
          ("final_pending", string_of_int pending);
        ]
    in
    let mem =
      jobj
        [
          ("store", jstr M.name);
          ("words", string_of_int words);
          ("pending", string_of_int pending);
          ("words_per_timer", jnum (float_of_int words /. float_of_int (max 1 pending)));
        ]
    in
    (row, mem)
  in
  let cells = List.map run Store_registry.all in
  (jlist (List.map fst cells), jobj [ ("stores", jlist (List.map snd cells)) ])

let emit_json ~path ~cfg ~quick ~timings ~profile =
  (* The structured computes replay deterministically from the same
     (seed, quick) the rendered tables used, so the JSON cells always
     agree with what was just printed. *)
  (* Audit the Table 3 replay live: the tap sees every event of the
     sequential re-run (a tap makes [Runner.map_sim] run inline), and
     feeding it into [Delay_audit] costs nothing observable. *)
  let da = Delay_audit.create ~worst:5 () in
  Trace.set_tap (Some (fun ~at ev -> Delay_audit.on_event da ~at ev));
  let t3 =
    Fun.protect
      ~finally:(fun () -> Trace.set_tap None)
      (fun () -> Exp_rbc_overhead.compute cfg)
  in
  let t8 = Exp_polling.compute cfg in
  let t2 = Exp_trigger_sources.compute cfg in
  let stores_cells, mem_section = stores_json cfg in
  let doc =
    jobj
      [
        ("schema", jstr "softtimers-bench/1");
        ("seed", string_of_int cfg.Exp_config.seed);
        ("quick", if quick then "true" else "false");
        ("machine_profile", jstr Costs.pentium_ii_300.name);
        ( "experiments",
          jlist
            (List.map
               (fun (name, dt) -> jobj [ ("name", jstr name); ("wall_clock_s", jnum dt) ])
               timings) );
        ("table3", table3_json t3);
        ("table8", table8_json t8);
        ("table2_sources", table2_json t2);
        ("stores", stores_cells);
        ("mem", mem_section);
        ("whylate", whylate_json da);
        ("attribution", attribution_json profile);
      ]
  in
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc doc;
      output_char oc '\n')

let usage () =
  prerr_endline
    "usage: main.exe [--quick|-q] [--metrics] [--timeseries] [--window US] [--seed N] \
     [--jobs N] [--json FILE] [EXPERIMENT...]";
  exit 2

let () =
  let quick = ref false in
  let metrics = ref false in
  let timeseries = ref false in
  let window_us = ref 1000.0 in
  let seed = ref None in
  let jobs = ref None in
  let json = ref None in
  let wanted = ref [] in
  let rec parse = function
    | [] -> ()
    | ("--quick" | "-q") :: rest ->
      quick := true;
      parse rest
    | "--metrics" :: rest ->
      metrics := true;
      parse rest
    | "--timeseries" :: rest ->
      timeseries := true;
      parse rest
    | "--window" :: v :: rest ->
      (match float_of_string_opt v with
      | Some w when w > 0.0 -> window_us := w
      | Some _ | None ->
        Printf.eprintf "bench: --window expects a positive number of microseconds, got %S\n" v;
        usage ());
      parse rest
    | "--seed" :: v :: rest ->
      (match int_of_string_opt v with
      | Some n -> seed := Some n
      | None ->
        Printf.eprintf "bench: --seed expects an integer, got %S\n" v;
        usage ());
      parse rest
    | "--jobs" :: v :: rest ->
      (match int_of_string_opt v with
      | Some n when n >= 0 -> jobs := Some n
      | Some _ | None ->
        Printf.eprintf "bench: --jobs expects a non-negative integer (0 = auto), got %S\n" v;
        usage ());
      parse rest
    | "--json" :: path :: rest ->
      json := Some path;
      parse rest
    | [ ("--seed" | "--json" | "--jobs" | "--window") ] -> usage ()
    | a :: rest ->
      wanted := a :: !wanted;
      parse rest
  in
  parse (List.tl (Array.to_list Sys.argv));
  let wanted = List.rev !wanted in
  let base = if !quick then Exp_config.quick else Exp_config.default in
  let cfg = match !seed with None -> base | Some s -> { base with Exp_config.seed = s } in
  let to_run =
    match wanted with
    | [] -> experiments
    | ids -> List.filter (fun (n, _) -> List.mem n ids) experiments
  in
  (* --jobs 0 (or the flag's absence) lets the runtime pick; the value
     becomes the default for every Runner.map in this process,
     including the per-cell fan-out inside exp_sensitivity. *)
  (match !jobs with Some n -> Runner.set_default_jobs n | None -> ());
  if !metrics then begin
    (* Exact metric counts need single-threaded runs: shared counters
       are bumped racily (hence approximately) by parallel workers. *)
    if Runner.default_jobs () > 1 then
      prerr_endline "bench: --metrics forces --jobs 1 (counters must be exact)";
    Runner.set_default_jobs 1;
    Metrics.reset Metrics.default
  end;
  (* --timeseries taps the event stream into a windowed collector; the
     tap makes Runner.map_sim run sequentially, so the summary printed
     after the runs is deterministic at every --jobs value. *)
  let series =
    if not !timeseries then None
    else begin
      let ts = Timeseries.create ~window:(Time_ns.of_us !window_us) () in
      Trace.set_tap (Some (Timeseries.on_event ts));
      Some ts
    end
  in
  (* Every experiment is an independent deterministic simulation;
     fan the cells across domains and print in list order.  Wall-clock
     timings are taken inside each job (they overlap under parallelism
     and are excluded from benchdiff comparisons either way). *)
  let outputs =
    Runner.map_sim
      (fun (name, f) ->
        let t0 = Unix.gettimeofday () in
        let out = f cfg in
        (name, out, Unix.gettimeofday () -. t0))
      to_run
  in
  (match series with
  | None -> ()
  | Some ts ->
    Trace.set_tap None;
    Timeseries.close ts);
  let timings = List.map (fun (name, _, dt) -> (name, dt)) outputs in
  List.iter
    (fun (_, out, _) ->
      print_string out;
      print_newline ())
    outputs;
  if !metrics then begin
    print_string (Exp_config.header "Metrics registry (lib/obs) after the runs");
    print_string (Metrics.dump Metrics.default);
    print_newline ()
  end;
  (match series with
  | None -> ()
  | Some ts ->
    print_string
      (Exp_config.header
         (Printf.sprintf "Time series (window %g us of simulated time)" !window_us));
    let snaps = Timeseries.snapshots ts in
    Printf.printf "events %d, windows %d (%d evicted), epochs %d\n" (Timeseries.event_count ts)
      (List.length snaps)
      (Timeseries.evicted_windows ts)
      (Timeseries.epochs ts);
    let d = Timeseries.overall_delay ts in
    if Hdr.count d > 0 then
      Printf.printf "fire delay us: n=%d p50=%.3f p99=%.3f max=%.3f\n" (Hdr.count d)
        (Hdr.quantile d 0.5) (Hdr.quantile d 0.99) (Hdr.max d);
    (* Busiest windows by fired timers: a compact, deterministic digest
       of where the action was (full rows via softtimers-cli stats --csv). *)
    let by_fired =
      List.sort
        (fun (a : Timeseries.snapshot) b ->
          match compare b.s_fired a.s_fired with
          | 0 -> compare (a.s_epoch, a.s_index) (b.s_epoch, b.s_index)
          | c -> c)
        snaps
    in
    List.iteri
      (fun i (s : Timeseries.snapshot) ->
        if i < 5 && s.Timeseries.s_fired > 0 then
          Printf.printf
            "  window e%d/%d @%.0fus: fired=%d sched=%d polls=%d rx=%d p99=%.3fus\n"
            s.s_epoch s.s_index s.s_start_us s.s_fired s.s_sched s.s_polls s.s_pkt_rx_pkts
            s.s_delay_p99_us)
      by_fired;
    print_newline ());
  (match !json with
  | None -> ()
  | Some path ->
    (* The profiler is installed only around emit_json's sequential
       compute replays (below, in this domain), never around the
       possibly-parallel display runs: attribution stays exact and the
       emitted JSON is byte-identical at every --jobs value. *)
    let p = Profile.create () in
    Profile.install p;
    Fun.protect ~finally:Profile.uninstall (fun () ->
        emit_json ~path ~cfg ~quick:!quick ~timings ~profile:p);
    Printf.printf "wrote %s\n" path);
  if wanted = [] then run_microbenchmarks ()
