(* The full benchmark harness: regenerates every table and figure of the
   paper (printing measured values next to the paper's), then runs
   Bechamel microbenchmarks of the core data structures.

   Pass --quick for a fast, noisier pass (used by CI); pass an
   experiment id to run just one (see softtimers-cli for the list). *)

let experiments =
  [
    ("fig1", Exp_fig1.run);
    ("fig2-3", Exp_hw_overhead.run);
    ("soft-base", Exp_soft_base.run);
    ("table1", Exp_trigger_dist.run);
    ("fig5", Exp_trigger_windows.run);
    ("table2", Exp_trigger_sources.run);
    ("table3", Exp_rbc_overhead.run);
    ("table4-5", Exp_rbc_process.run);
    ("table6-7", Exp_rbc_wan.run);
    ("table8", Exp_polling.run);
    ("livelock", Exp_livelock.run);
    ("sensitivity", Exp_sensitivity.run);
  ]

(* ------------------------------------------------------------------ *)
(* Bechamel microbenchmarks: the operations on the soft-timer fast     *)
(* path whose cost the paper's argument depends on.                    *)

let bench_timing_wheel_schedule () =
  let wheel = Timing_wheel.create ~tick:(Time_ns.of_us 10.0) () in
  let counter = ref 0L in
  Bechamel.Staged.stage (fun () ->
      counter := Int64.add !counter 9_973L;
      let h = Timing_wheel.schedule wheel ~at:!counter () in
      Timing_wheel.cancel wheel h)

let bench_timing_wheel_check () =
  (* The per-trigger-state check: next_deadline on a wheel with pending
     entries (cache-hit path). *)
  let wheel = Timing_wheel.create ~tick:(Time_ns.of_us 10.0) () in
  for i = 1 to 64 do
    ignore
      (Timing_wheel.schedule wheel ~at:(Int64.of_int (i * 100_000)) () : Timing_wheel.handle)
  done;
  Bechamel.Staged.stage (fun () -> ignore (Timing_wheel.next_deadline wheel : Time_ns.t option))

let bench_heap_push_pop () =
  let heap = Heap.create ~cmp:Int64.compare in
  let counter = ref 0L in
  Bechamel.Staged.stage (fun () ->
      counter := Int64.add !counter 7_919L;
      Heap.push heap !counter;
      ignore (Heap.pop heap : int64 option))

let bench_softtimer_fire () =
  (* Schedule + fire one soft event through the whole facility. *)
  let engine = Engine.create () in
  let machine = Machine.create engine in
  let st = Softtimer.attach machine in
  Bechamel.Staged.stage (fun () ->
      ignore (Softtimer.schedule_soft_event st ~ticks:0L (fun _ -> ()) : Softtimer.handle);
      Machine.fire_trigger machine Trigger.Syscall;
      Engine.run_until engine Time_ns.(Engine.now engine + Time_ns.of_us 5.0))

let run_microbenchmarks () =
  let open Bechamel in
  let open Toolkit in
  print_string (Exp_config.header "Microbenchmarks (Bechamel): soft-timer fast path");
  let test =
    Test.make_grouped ~name:"softtimers"
      [
        Test.make ~name:"timing_wheel.schedule+cancel" (bench_timing_wheel_schedule ());
        Test.make ~name:"timing_wheel.next_deadline" (bench_timing_wheel_check ());
        Test.make ~name:"heap.push+pop" (bench_heap_push_pop ());
        Test.make ~name:"softtimer.schedule+fire" (bench_softtimer_fire ());
      ]
  in
  let benchmark test =
    let instances = Instance.[ monotonic_clock ] in
    let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~kde:(Some 1000) () in
    Benchmark.all cfg instances test
  in
  let analyze results =
    let ols = Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |] in
    Analyze.all ols Instance.monotonic_clock results
  in
  let results = analyze (benchmark test) in
  Hashtbl.iter
    (fun name ols ->
      match Analyze.OLS.estimates ols with
      | Some [ est ] -> Printf.printf "  %-40s %10.1f ns/op\n" name est
      | Some _ | None -> Printf.printf "  %-40s (no estimate)\n" name)
    results;
  print_newline ()

let () =
  let args = Array.to_list Sys.argv in
  let quick = List.mem "--quick" args || List.mem "-q" args in
  let metrics = List.mem "--metrics" args in
  let cfg = if quick then Exp_config.quick else Exp_config.default in
  let wanted =
    List.filter (fun a -> a <> "--quick" && a <> "-q" && a <> "--metrics") (List.tl args)
  in
  let to_run =
    match wanted with
    | [] -> experiments
    | ids -> List.filter (fun (n, _) -> List.mem n ids) experiments
  in
  if metrics then begin
    Metrics.reset Metrics.default;
    Metrics.set_sampling true
  end;
  List.iter
    (fun (_, f) ->
      print_string (f cfg);
      print_newline ())
    to_run;
  if metrics then begin
    print_string (Exp_config.header "Metrics registry (lib/obs) after the runs");
    print_string (Metrics.dump Metrics.default);
    print_newline ()
  end;
  if wanted = [] then run_microbenchmarks ()
