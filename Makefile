.PHONY: all build test bench profile-smoke bench-json benchdiff trace-smoke lint sanitize-smoke determinism clean

all: build

build:
	dune build

test:
	dune runtest

bench:
	dune exec bench/main.exe

# Cycle-attribution profiler smoke: run table3 under the profiler and
# export both the text report and a collapsed-stack flamegraph.
profile-smoke: build
	dune exec bin/softtimers_cli.exe -- profile table3 --quick --out /tmp/softtimers-table3-profile.txt
	dune exec bin/softtimers_cli.exe -- profile table3 --quick --flame --out /tmp/softtimers-table3.folded
	@echo "profile-smoke: report and /tmp/softtimers-table3.folded written"

# Machine-readable bench baseline (BENCH_<tag>.json).  BENCH_JSON names
# the output; the three structured tables are printed and their cells
# captured together with a cycle-attribution summary.
BENCH_JSON ?= BENCH_quick.json
bench-json: build
	dune exec bench/main.exe -- --quick --json $(BENCH_JSON) table2 table3 table8

# Compare a freshly generated baseline against the committed one
# (informational: nonzero only on malformed input; wall-clock keys are
# never compared).
benchdiff: bench-json
	dune exec tools/benchdiff/benchdiff.exe -- bench/BENCH_baseline.json $(BENCH_JSON)

# Export a quick fig1 trace and check the Chrome trace_event JSON is
# well-formed (Perfetto/chrome://tracing will accept what json.tool
# parses).
trace-smoke: build
	dune exec bin/softtimers_cli.exe -- trace fig1 --quick --out /tmp/softtimers-fig1.json
	python3 -m json.tool /tmp/softtimers-fig1.json > /dev/null
	@echo "trace-smoke: /tmp/softtimers-fig1.json is valid trace_event JSON"

# Static determinism lint (tools/lint): DET001..DET004 + MLI001 over
# lib/ bin/ examples/ bench/, with file:line:RULE diagnostics.
lint:
	dune build @lint

# Run two representative experiments with the runtime invariant
# sanitizer armed; any violation exits nonzero.
sanitize-smoke: build
	dune exec bin/softtimers_cli.exe -- table3 --quick --sanitize
	dune exec bin/softtimers_cli.exe -- table8 --quick --sanitize

# Replay-diff: each experiment runs twice with the same seed; the
# emitted tables and the trace digests must match bit-for-bit.
determinism: build
	dune exec bin/softtimers_cli.exe -- verify-determinism table3 --quick
	dune exec bin/softtimers_cli.exe -- verify-determinism table8 --quick
	dune exec bin/softtimers_cli.exe -- verify-determinism livelock --quick

clean:
	dune clean
