.PHONY: all build test bench bench-parallel microbench arena-bench pacer-smoke pacer-bench profile-smoke bench-json benchdiff mem-smoke mem-bench trace-smoke stats-smoke whylate-smoke lint lint-json lint-baseline sanitize-smoke determinism clean

all: build

build:
	dune build

test:
	dune runtest

bench:
	dune exec bench/main.exe

# Quick suite fanned over one domain per core.  Tables and JSON are
# byte-identical to the sequential run (wall-clock fields aside); on a
# single-core host this only adds contention, so it is a determinism
# exercise there, not a speedup.
bench-parallel: build
	dune exec bench/main.exe -- --quick --jobs 0

# Bechamel microbenchmarks of the engine/event-queue hot path (the
# numbers the PR-4 overhaul is judged by; table in EXPERIMENTS.md).
microbench: build
	dune exec bench/microbench.exe -- --quota 2

# Timer-store arena: every Timer_store backend head-to-head under
# schedule_fire / rearm_churn / cancel_churn at ARENA_N live timers
# (the EXPERIMENTS.md table ran at 1M and 4M).  Writes a markdown table
# to ARENA_OUT; CI runs a smaller population and uploads the table.
ARENA_N ?= 1000000
ARENA_OPS ?= 100000
ARENA_OUT ?= /tmp/softtimers-arena.md
arena-bench: build
	dune exec bench/store_arena.exe -- --n $(ARENA_N) --ops $(ARENA_OPS) --out $(ARENA_OUT)

# Million-flow pacing smoke: the deterministic pacer-scale experiment
# at reduced fleet sizes — per-store send counts must agree (they are
# asserted identical in test/test_experiments.ml; here we just run it).
pacer-smoke: build
	dune exec bin/softtimers_cli.exe -- pacer-scale --quick

# Wall-clock fleet-pacing sweep (the O(1)-per-tick acceptance story):
# ns/flow/tick across stores and fleet sizes up to PACER_FLOWS, JSON to
# PACER_OUT.  Committed reference: bench/PACER_bench.json.
PACER_OUT ?= /tmp/softtimers-pacer.json
PACER_REPEAT ?= 3
pacer-bench: build
	dune exec bench/pacer_bench.exe -- --repeat $(PACER_REPEAT) --json $(PACER_OUT)

# Cycle-attribution profiler smoke: run table3 under the profiler and
# export both the text report and a collapsed-stack flamegraph.
profile-smoke: build
	dune exec bin/softtimers_cli.exe -- profile table3 --quick --out /tmp/softtimers-table3-profile.txt
	dune exec bin/softtimers_cli.exe -- profile table3 --quick --flame --out /tmp/softtimers-table3.folded
	@echo "profile-smoke: report and /tmp/softtimers-table3.folded written"

# Machine-readable bench baseline (BENCH_<tag>.json).  BENCH_JSON names
# the output; the three structured tables are printed and their cells
# captured together with a cycle-attribution summary.
BENCH_JSON ?= BENCH_quick.json
bench-json: build
	dune exec bench/main.exe -- --quick --json $(BENCH_JSON) table2 table3 table8

# Compare a freshly generated baseline against the committed one.
# Gating since PR 4: the compared cells are deterministic simulation
# results (wall-clock keys are never compared), so any drift is a real
# behaviour change — regenerate bench/BENCH_baseline.json deliberately
# when one is intended.
benchdiff: bench-json
	dune exec tools/benchdiff/benchdiff.exe -- --strict --threshold 0 --mem-threshold 0 bench/BENCH_baseline.json $(BENCH_JSON)

# Memory-observatory smoke: run the mem report over fig1 and the
# pacer-scale sweep (quick sizes) and validate the JSON shape — schema
# marker, census sources with live flags, the conservation verdict
# (the subcommand itself exits nonzero on a violation), and per-store
# store/pool words for at least two stores.
mem-smoke: build
	dune exec bin/softtimers_cli.exe -- mem fig1 --quick --json --out /tmp/softtimers-fig1-mem.json
	dune exec bin/softtimers_cli.exe -- mem pacer-scale --quick --json --out /tmp/softtimers-pacer-mem.json
	python3 -c "import json; d = json.load(open('/tmp/softtimers-pacer-mem.json')); \
	assert d['schema'] == 'softtimers-mem/1', d['schema']; \
	ms = d['memstats']; assert ms['conservation_ok'], 'conservation violated'; \
	stores = {s['path'].split(';')[2] for s in ms['sources'] if s['path'].startswith('mem;pacer;')}; \
	assert len(stores) >= 2, stores; \
	assert all(s['words'] > 0 for s in ms['sources'] if s['path'].endswith(';store')), 'empty store source'; \
	print('mem-smoke: %d sources over %d stores, conservation ok' % (len(ms['sources']), len(stores)))"

# Full-size memory sweep: per-store words/flow at 10^3..10^6 flows
# (the EXPERIMENTS.md memory-gap table).  Writes MEM_OUT; CI uploads
# the quick variant as an artifact.
MEM_OUT ?= /tmp/softtimers-pacer-mem.json
mem-bench: build
	dune exec bin/softtimers_cli.exe -- mem pacer-scale --json --out $(MEM_OUT)
	@echo "mem-bench: wrote $(MEM_OUT)"

# Export a quick fig1 trace and check the Chrome trace_event JSON is
# well-formed (Perfetto/chrome://tracing will accept what json.tool
# parses).  --window adds the time-series counter tracks and async
# span events to the stream, so the parse covers the extended export.
trace-smoke: build
	dune exec bin/softtimers_cli.exe -- trace fig1 --quick --window 1000 --out /tmp/softtimers-fig1.json
	python3 -m json.tool /tmp/softtimers-fig1.json > /dev/null
	@echo "trace-smoke: /tmp/softtimers-fig1.json is valid trace_event JSON"

# Windowed time-series smoke: run the stats subcommand on table3 and
# validate the JSON report's shape (schema marker, non-empty window
# list, span summaries, metrics registry).  CI uploads the report as
# an artifact.
stats-smoke: build
	dune exec bin/softtimers_cli.exe -- stats table3 --quick --window 1000 --json --out /tmp/softtimers-table3-stats.json
	python3 -c "import json; d = json.load(open('/tmp/softtimers-table3-stats.json')); \
	assert d['schema'] == 'softtimers-stats/1', d['schema']; \
	assert isinstance(d['windows'], list) and d['windows'], 'windows missing/empty'; \
	assert {'timers', 'packets'} <= set(d['spans']), 'span summaries missing'; \
	assert isinstance(d['metrics'], dict) and d['metrics'], 'metrics missing/empty'; \
	assert d['window_us'] == 1000, d['window_us']; \
	print('stats-smoke: %d windows, %d metrics' % (len(d['windows']), len(d['metrics'])))"

# Late-fire forensics smoke: run the why-late audit over fig1 and
# validate the JSON report — schema marker, non-empty cause breakdown,
# and the conservation contract (zero violations; the subcommand also
# exits nonzero on any violation).  CI uploads the report.
whylate-smoke: build
	dune exec bin/softtimers_cli.exe -- why-late fig1 --quick --json --buf 4194304 --out /tmp/softtimers-fig1-whylate.json
	python3 -c "import json; d = json.load(open('/tmp/softtimers-fig1-whylate.json')); \
	assert d['schema'] == 'softtimers-whylate/1', d['schema']; \
	assert d['conservation_violations'] == 0, d['conservation_violations']; \
	assert d['late'] > 0 and isinstance(d['causes'], list) and d['causes'], 'no late fires attributed'; \
	assert isinstance(d['worst'], list) and d['worst'], 'worst exemplars missing'; \
	assert all(sum(w['segs'].values()) == w['delay_ns'] for w in d['worst']), 'exemplar segments do not sum'; \
	print('whylate-smoke: %d late fires, %d causes, worst %d' % (d['late'], len(d['causes']), len(d['worst'])))"

# Static-analysis suite (tools/lint): determinism (DET001..DET004,
# MLI001), Gc.Memprof confinement (MEM001), domain races
# (RACE001..RACE004) and hot-path allocations (ALLOC001..ALLOC003) over
# lib/ bin/ examples/ bench/ tools/, with file:line:RULE diagnostics,
# ratcheted against tools/lint/BASELINE.json (empty since the RACE002
# burn-down — any finding is fresh debt).
lint:
	dune build @lint

# Machine-readable findings: lint.json (softtimers-lint/1) and
# lint.sarif (SARIF 2.1.0, baseline'd findings marked as suppressions)
# for CI artifact upload and code-scanning viewers.  Exit status still
# reflects the ratchet, so `make lint-json` both exports and gates.
lint-json: build
	dune exec tools/lint/lint.exe -- --json lint.json --sarif lint.sarif lib bin examples bench tools

# Re-freeze the ratchet from the current findings.  Do this
# deliberately — after paying down frozen debt, or when knowingly
# accepting new debt with a justification — never to silence a fresh
# finding you could fix or [@lint.allow] with a reason.
lint-baseline: build
	dune exec tools/lint/lint.exe -- --write-baseline tools/lint/BASELINE.json lib bin examples bench tools

# Run two representative experiments with the runtime invariant
# sanitizer armed; any violation exits nonzero.
sanitize-smoke: build
	dune exec bin/softtimers_cli.exe -- table3 --quick --sanitize
	dune exec bin/softtimers_cli.exe -- table8 --quick --sanitize

# Replay-diff: each experiment runs twice with the same seed; the
# emitted tables and the trace digests must match bit-for-bit.  The
# sensitivity run repeats at --jobs 4 to check that parallel fan-out
# (lib/parallel) leaves tables and digests byte-identical.
determinism: build
	dune exec bin/softtimers_cli.exe -- verify-determinism table3 --quick
	dune exec bin/softtimers_cli.exe -- verify-determinism table8 --quick
	dune exec bin/softtimers_cli.exe -- verify-determinism livelock --quick
	dune exec bin/softtimers_cli.exe -- verify-determinism sensitivity --quick
	dune exec bin/softtimers_cli.exe -- verify-determinism sensitivity --quick --jobs 4
	dune exec bin/softtimers_cli.exe -- verify-determinism pacer-scale --quick

clean:
	dune clean
