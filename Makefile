.PHONY: all build test bench trace-smoke lint sanitize-smoke determinism clean

all: build

build:
	dune build

test:
	dune runtest

bench:
	dune exec bench/main.exe

# Export a quick fig1 trace and check the Chrome trace_event JSON is
# well-formed (Perfetto/chrome://tracing will accept what json.tool
# parses).
trace-smoke: build
	dune exec bin/softtimers_cli.exe -- trace fig1 --quick --out /tmp/softtimers-fig1.json
	python3 -m json.tool /tmp/softtimers-fig1.json > /dev/null
	@echo "trace-smoke: /tmp/softtimers-fig1.json is valid trace_event JSON"

# Static determinism lint (tools/lint): DET001..DET004 + MLI001 over
# lib/ bin/ examples/ bench/, with file:line:RULE diagnostics.
lint:
	dune build @lint

# Run two representative experiments with the runtime invariant
# sanitizer armed; any violation exits nonzero.
sanitize-smoke: build
	dune exec bin/softtimers_cli.exe -- table3 --quick --sanitize
	dune exec bin/softtimers_cli.exe -- table8 --quick --sanitize

# Replay-diff: each experiment runs twice with the same seed; the
# emitted tables and the trace digests must match bit-for-bit.
determinism: build
	dune exec bin/softtimers_cli.exe -- verify-determinism table3 --quick
	dune exec bin/softtimers_cli.exe -- verify-determinism table8 --quick
	dune exec bin/softtimers_cli.exe -- verify-determinism livelock --quick

clean:
	dune clean
