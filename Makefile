.PHONY: all build test bench trace-smoke clean

all: build

build:
	dune build

test:
	dune runtest

bench:
	dune exec bench/main.exe

# Export a quick fig1 trace and check the Chrome trace_event JSON is
# well-formed (Perfetto/chrome://tracing will accept what json.tool
# parses).
trace-smoke: build
	dune exec bin/softtimers_cli.exe -- trace fig1 --quick --out /tmp/softtimers-fig1.json
	python3 -m json.tool /tmp/softtimers-fig1.json > /dev/null
	@echo "trace-smoke: /tmp/softtimers-fig1.json is valid trace_event JSON"

clean:
	dune clean
