(* Command-line front end: run any of the paper's experiments by id. *)

let experiments =
  [
    ("fig1", "Figure 1: soft-timer firing-window bounds", Exp_fig1.run);
    ("fig2-3", "Figures 2/3: hardware-timer base overhead", Exp_hw_overhead.run);
    ("soft-base", "Section 5.2: soft-timer base overhead", Exp_soft_base.run);
    ("table1", "Table 1 / Figure 4: trigger-interval distributions", Exp_trigger_dist.run);
    ("fig5", "Figure 5: windowed trigger-interval medians", Exp_trigger_windows.run);
    ("table2", "Table 2 / Figure 6: trigger sources", Exp_trigger_sources.run);
    ("table3", "Table 3: rate-based clocking overhead", Exp_rbc_overhead.run);
    ("table4-5", "Tables 4/5: rate-clocked transmission process", Exp_rbc_process.run);
    ("table6-7", "Tables 6/7: WAN transfer performance", Exp_rbc_wan.run);
    ("table8", "Table 8: network polling throughput", Exp_polling.run);
    ( "livelock",
      "Extension: receiver livelock (interrupts vs MR hybrid vs soft polling)",
      Exp_livelock.run );
    ( "sensitivity",
      "Extension: sensitivity of the headline results to the cost model",
      Exp_sensitivity.run );
  ]

let unknown_experiment id =
  `Error
    ( false,
      Printf.sprintf "unknown experiment %S; known: %s" id
        (String.concat ", " (List.map (fun (n, _, _) -> n) experiments)) )

(* Run [f] with the runtime invariant sanitizer armed (when requested):
   it taps every trace event, checks causality / soft-timer firing
   bounds / wheel residency / counter monotonicity, and its report is
   printed after the run.  Violations turn into a nonzero exit. *)
let with_sanitizer enabled f =
  if not enabled then f ()
  else begin
    let s = Sanitizer.create () in
    Sanitizer.install s;
    let result =
      try f ()
      with e ->
        Sanitizer.uninstall s;
        raise e
    in
    Sanitizer.uninstall s;
    print_newline ();
    print_string (Sanitizer.report s);
    match result with
    | `Ok () when not (Sanitizer.ok s) ->
      `Error
        ( false,
          Printf.sprintf "sanitizer: %d invariant violation(s)" (Sanitizer.violation_count s)
        )
    | other -> other
  end

let run_one cfg sanitize id =
  match List.find_opt (fun (name, _, _) -> name = id) experiments with
  | Some (_, _, f) ->
    with_sanitizer sanitize (fun () ->
        print_string (f cfg);
        `Ok ())
  | None -> unknown_experiment id

let run_all cfg sanitize =
  with_sanitizer sanitize (fun () ->
      (* Independent deterministic sims: fan out, print in list order.
         (With --sanitize the tap forces sequential execution inside
         map_sim; output is identical either way.) *)
      Runner.map_sim (fun (_, _, f) -> f cfg) experiments
      |> List.iter (fun out ->
             print_string out;
             print_newline ());
      `Ok ())

(* Replay-diff harness: run one experiment twice from the same seed and
   compare the emitted table byte-for-byte and the trace digests (an
   order-sensitive hash of every event).  Any divergence means some
   hidden state — wall clock, global Random, hash order — leaked into
   the run, which is exactly what the determinism contract forbids. *)
let run_verify cfg buf jobs id =
  match List.find_opt (fun (name, _, _) -> name = id) experiments with
  | None -> unknown_experiment id
  | Some _ when buf <= 0 -> `Error (false, "--buf must be positive")
  | Some (_, _, f) ->
    let once ~jobs =
      Runner.set_default_jobs jobs;
      let tr = Trace.create ~capacity:buf () in
      Metrics.reset Metrics.default;
      Trace.install tr;
      let out = f cfg in
      Trace.uninstall ();
      (out, Trace_digest.digest tr, Trace.total tr)
    in
    (* Run 1 is always sequential; run 2 uses the requested job count,
       so `--jobs 4` directly proves a parallel run is bit-identical
       to the sequential reference, not merely self-consistent. *)
    let o1, d1, n1 = once ~jobs:1 in
    let o2, d2, n2 = once ~jobs in
    Printf.printf "verify-determinism %s (seed %d%s)\n" id cfg.Exp_config.seed
      (if cfg.Exp_config.quick then ", quick" else "");
    Printf.printf "  run 1 (jobs 1): trace digest %s (%d events)\n" (Trace_digest.hex d1) n1;
    Printf.printf "  run 2 (jobs %s): trace digest %s (%d events)\n"
      (if jobs = 0 then "auto" else string_of_int jobs)
      (Trace_digest.hex d2) n2;
    let tables_eq = String.equal o1 o2 in
    let traces_eq = Int64.equal d1 d2 && n1 = n2 in
    Printf.printf "  tables: %s\n" (if tables_eq then "identical" else "DIFFER");
    Printf.printf "  traces: %s\n" (if traces_eq then "identical" else "DIFFER");
    if tables_eq && traces_eq then begin
      Printf.printf "  PASS: two same-seed runs are bit-for-bit identical\n";
      `Ok ()
    end
    else begin
      if not tables_eq then begin
        let l1 = String.split_on_char '\n' o1 and l2 = String.split_on_char '\n' o2 in
        let rec first_diff i = function
          | a :: ra, b :: rb -> if String.equal a b then first_diff (i + 1) (ra, rb) else Some (i, a, b)
          | a :: _, [] -> Some (i, a, "<missing>")
          | [], b :: _ -> Some (i, "<missing>", b)
          | [], [] -> None
        in
        match first_diff 1 (l1, l2) with
        | Some (i, a, b) ->
          Printf.printf "  first differing table line (%d):\n    run 1: %s\n    run 2: %s\n" i
            a b
        | None -> ()
      end;
      `Error (false, "verify-determinism: same-seed runs differ — determinism broken")
    end

(* Run one experiment with the tracing/metrics layer armed, then export
   the ring buffer as Chrome trace_event JSON (or CSV). *)
let run_trace cfg id out csv buf metrics =
  match List.find_opt (fun (name, _, _) -> name = id) experiments with
  | None ->
    `Error
      ( false,
        Printf.sprintf "unknown experiment %S; known: %s" id
          (String.concat ", " (List.map (fun (n, _, _) -> n) experiments)) )
  | Some _ when buf <= 0 -> `Error (false, "--buf must be positive")
  | Some _ when (try close_out (open_out out); false with Sys_error _ -> true) ->
    (* Fail on an unwritable --out before spending time simulating. *)
    `Error (false, Printf.sprintf "cannot write trace output %S" out)
  | Some (_, _, f) ->
    let tr = Trace.create ~capacity:buf () in
    Metrics.reset Metrics.default;
    Metrics.set_sampling true;
    Trace.install tr;
    let output = f cfg in
    Trace.uninstall ();
    Metrics.set_sampling false;
    print_string output;
    let as_csv = csv || Filename.check_suffix out ".csv" in
    if as_csv then Trace_export.write_csv tr out else Trace_export.write_chrome_json tr out;
    Printf.printf "\ntrace: %d events captured (%d overwritten) -> %s (%s)\n" (Trace.length tr)
      (Trace.dropped tr) out
      (if as_csv then "csv" else "chrome trace_event json; open in chrome://tracing or Perfetto");
    if Trace.dropped tr > 0 then
      Printf.printf
        "WARNING: trace ring overflowed; the %d oldest events were dropped — the export is \
         truncated (raise --buf to capture everything)\n"
        (Trace.dropped tr);
    if metrics then begin
      print_newline ();
      print_string (Metrics.dump Metrics.default)
    end;
    `Ok ()

(* Run one experiment with the cycle-attribution profiler installed and
   print (or export) the attribution report: the tree, the per-interrupt
   cost split (save/restore vs pollution vs handler) and the per-trigger
   dispatch breakdown.  --flame switches to collapsed-stack flamegraph
   lines instead (inferno / flamegraph.pl / speedscope). *)
let run_profile cfg id out flame metrics =
  match List.find_opt (fun (name, _, _) -> name = id) experiments with
  | None -> unknown_experiment id
  | Some _
    when match out with
         | None -> false
         | Some f -> ( try close_out (open_out f); false with Sys_error _ -> true) ->
    `Error (false, Printf.sprintf "cannot write profile output %S" (Option.get out))
  | Some (_, _, f) ->
    let p = Profile.create () in
    Metrics.reset Metrics.default;
    Profile.install p;
    let output =
      try f cfg
      with e ->
        Profile.uninstall ();
        raise e
    in
    Profile.uninstall ();
    print_string output;
    print_newline ();
    Printf.printf "profile %s (seed %d%s)\n\n" id cfg.Exp_config.seed
      (if cfg.Exp_config.quick then ", quick" else "");
    let body = if flame then Profile.to_collapsed p else Profile.report p in
    (match out with
    | None -> print_string body
    | Some file ->
      let oc = open_out file in
      Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc body);
      Printf.printf "profile: %s -> %s\n"
        (if flame then "collapsed-stack flamegraph" else "attribution report")
        file;
      if flame then print_string (Profile.to_table p));
    if metrics then begin
      print_newline ();
      print_string (Metrics.dump Metrics.default)
    end;
    `Ok ()

open Cmdliner

let quick =
  let doc = "Short runs (noisier, ~10x faster)." in
  Arg.(value & flag & info [ "quick"; "q" ] ~doc)

let seed =
  let doc = "Simulation seed (runs are deterministic per seed)." in
  Arg.(value & opt int 7 & info [ "seed"; "s" ] ~doc ~docv:"SEED")

let jobs =
  let doc =
    "Number of worker domains for parallelizable work (independent experiment cells). \
     1 = sequential, 0 = one per core.  Results, tables and trace digests are identical \
     at every value; only wall-clock time changes."
  in
  Arg.(value & opt int 1 & info [ "jobs"; "j" ] ~doc ~docv:"N")

let sanitize =
  let doc =
    "Arm the runtime invariant sanitizer: every trace event is checked for causality, \
     soft-timer firing bounds, timing-wheel residency and counter monotonicity; a report \
     is printed after the run and violations exit nonzero."
  in
  Arg.(value & flag & info [ "sanitize" ] ~doc)

let id =
  let doc = "Experiment id, or 'all'." in
  Arg.(value & pos 0 string "all" & info [] ~doc ~docv:"EXPERIMENT")

let cfg_of quick seed = { Exp_config.quick; seed }

let trace_cmd =
  let doc = "Run one experiment with tracing enabled and export the event trace" in
  let man =
    [
      `S Manpage.s_description;
      `P
        "Arms the simulator-wide tracing layer (lib/obs), runs the given experiment, and \
         writes the captured events to $(b,--out).  The default format is Chrome \
         trace_event JSON, loadable in chrome://tracing or https://ui.perfetto.dev; pass \
         $(b,--csv) (or an .csv output path) for one event per line instead.";
    ]
  in
  let exp_id =
    let doc = "Experiment id to trace (one id, not 'all')." in
    Arg.(required & pos 0 (some string) None & info [] ~doc ~docv:"EXPERIMENT")
  in
  let out =
    let doc = "Output file for the exported trace." in
    Arg.(value & opt string "trace.json" & info [ "out"; "o" ] ~doc ~docv:"FILE")
  in
  let csv =
    let doc = "Export CSV instead of Chrome trace_event JSON." in
    Arg.(value & flag & info [ "csv" ] ~doc)
  in
  let buf =
    let doc = "Trace ring-buffer capacity in events; the oldest events are overwritten \
               once it fills." in
    Arg.(value & opt int 1_048_576 & info [ "buf" ] ~doc ~docv:"EVENTS")
  in
  let metrics =
    let doc = "Also dump the metrics registry after the run." in
    Arg.(value & flag & info [ "metrics" ] ~doc)
  in
  let term =
    Term.(
      ret
        (const (fun quick seed jobs id out csv buf metrics sanitize ->
             Runner.set_default_jobs jobs;
             with_sanitizer sanitize (fun () ->
                 run_trace (cfg_of quick seed) id out csv buf metrics))
        $ quick $ seed $ jobs $ exp_id $ out $ csv $ buf $ metrics $ sanitize))
  in
  Cmd.v (Cmd.info "trace" ~doc ~man) term

let profile_cmd =
  let doc = "Run one experiment with the cycle-attribution profiler and report who spent what" in
  let man =
    [
      `S Manpage.s_description;
      `P
        "Installs the cycle-attribution profiler (lib/obs Profile), runs the given \
         experiment and prints three reports: the hierarchical attribution tree (every \
         charged CPU cycle by category), the per-interrupt cost split (save/restore vs. \
         cache/TLB pollution vs. handler body — the decomposition behind the paper's \
         Tables 2-4), and the per-trigger-state soft-timer dispatch breakdown with \
         latencies (paper Table 1).  $(b,--flame) exports collapsed-stack lines for \
         inferno, flamegraph.pl or speedscope instead.";
    ]
  in
  let exp_id =
    let doc = "Experiment id to profile (one id, not 'all')." in
    Arg.(required & pos 0 (some string) None & info [] ~doc ~docv:"EXPERIMENT")
  in
  let out =
    let doc = "Write the report (or, with --flame, the collapsed stacks) to this file." in
    Arg.(value & opt (some string) None & info [ "out"; "o" ] ~doc ~docv:"FILE")
  in
  let flame =
    let doc = "Emit collapsed-stack flamegraph lines (cpuN;category;... <ns>) instead of \
               the text report." in
    Arg.(value & flag & info [ "flame" ] ~doc)
  in
  let metrics =
    let doc = "Also dump the metrics registry after the run." in
    Arg.(value & flag & info [ "metrics" ] ~doc)
  in
  let term =
    Term.(
      ret
        (const (fun quick seed jobs id out flame metrics sanitize ->
             Runner.set_default_jobs jobs;
             with_sanitizer sanitize (fun () ->
                 run_profile (cfg_of quick seed) id out flame metrics))
        $ quick $ seed $ jobs $ exp_id $ out $ flame $ metrics $ sanitize))
  in
  Cmd.v (Cmd.info "profile" ~doc ~man) term

let verify_cmd =
  let doc = "Replay-diff: run an experiment twice with the same seed and diff the results" in
  let man =
    [
      `S Manpage.s_description;
      `P
        "Runs the given experiment twice with identical configuration, capturing the full \
         event trace of each run, then compares the emitted table byte-for-byte and the \
         trace digests (an order-sensitive FNV-1a over every event).  Exits nonzero on any \
         divergence: two same-seed runs of a correct simulation are bit-for-bit identical.  \
         Run 1 is always sequential; with --jobs N the second run fans parallelizable work \
         across N domains, so a pass also proves parallel execution changes nothing.";
    ]
  in
  let exp_id =
    let doc = "Experiment id to verify (one id, not 'all')." in
    Arg.(required & pos 0 (some string) None & info [] ~doc ~docv:"EXPERIMENT")
  in
  let buf =
    let doc = "Trace ring-buffer capacity in events for each run." in
    Arg.(value & opt int 1_048_576 & info [ "buf" ] ~doc ~docv:"EVENTS")
  in
  let term =
    Term.(
      ret
        (const (fun quick seed jobs buf id -> run_verify (cfg_of quick seed) buf jobs id)
        $ quick $ seed $ jobs $ buf $ exp_id))
  in
  Cmd.v (Cmd.info "verify-determinism" ~doc ~man) term

let doc = "Reproduce the experiments of 'Soft Timers' (Aron & Druschel, SOSP'99)"

let man =
  [
    `S Manpage.s_description;
    `P
      "Each experiment regenerates one table or figure of the paper on the simulated \
       testbed and prints measured values next to the paper's.  The $(b,trace) \
       subcommand additionally exports a Chrome trace_event JSON of everything the \
       simulator did.";
    `S "EXPERIMENTS";
  ]
  @ List.map (fun (n, d, _) -> `P (Printf.sprintf "$(b,%s): %s" n d)) experiments

let default =
  Term.(
    ret
      (const (fun quick seed jobs sanitize id ->
           Runner.set_default_jobs jobs;
           let cfg = cfg_of quick seed in
           if id = "all" then run_all cfg sanitize else run_one cfg sanitize id)
      $ quick $ seed $ jobs $ sanitize $ id))

let group_cmd =
  Cmd.group ~default
    (Cmd.info "softtimers-cli" ~version:"1.0.0" ~doc ~man)
    [ trace_cmd; profile_cmd; verify_cmd ]

(* [Cmd.group ~default] rejects any first positional that is not a
   subcommand name, which would break the documented
   `softtimers-cli table3` form; route experiment-id invocations to a
   plain command instead, and everything else (no positional, flags
   only, `trace ...`) through the group. *)
let plain_cmd = Cmd.v (Cmd.info "softtimers-cli" ~version:"1.0.0" ~doc ~man) default

let () =
  let argv = Sys.argv in
  (* Find the first true positional.  Separated-value flags consume the
     following argv slot, so `--seed 9 table3` must skip the "9" — and a
     seed value must never be mistaken for a subcommand name. *)
  let value_flags = [ "--seed"; "-s"; "--out"; "-o"; "--buf"; "--jobs"; "-j" ] in
  let first_positional =
    let rec go i =
      if i >= Array.length argv then None
      else if List.mem argv.(i) value_flags then go (i + 2)
      else if String.length argv.(i) > 0 && argv.(i).[0] = '-' then go (i + 1)
      else Some argv.(i)
    in
    go 1
  in
  let is_subcommand =
    match first_positional with
    | Some ("trace" | "profile" | "verify-determinism") -> true
    | Some _ -> false
    | None -> false
  in
  let cmd = if is_subcommand || first_positional = None then group_cmd else plain_cmd in
  exit (Cmd.eval cmd)
