(* Command-line front end: run any of the paper's experiments by id. *)

let experiments =
  [
    ("fig1", "Figure 1: soft-timer firing-window bounds", Exp_fig1.run);
    ("fig2-3", "Figures 2/3: hardware-timer base overhead", Exp_hw_overhead.run);
    ("soft-base", "Section 5.2: soft-timer base overhead", Exp_soft_base.run);
    ("table1", "Table 1 / Figure 4: trigger-interval distributions", Exp_trigger_dist.run);
    ("fig5", "Figure 5: windowed trigger-interval medians", Exp_trigger_windows.run);
    ("table2", "Table 2 / Figure 6: trigger sources", Exp_trigger_sources.run);
    ("table3", "Table 3: rate-based clocking overhead", Exp_rbc_overhead.run);
    ("table4-5", "Tables 4/5: rate-clocked transmission process", Exp_rbc_process.run);
    ("table6-7", "Tables 6/7: WAN transfer performance", Exp_rbc_wan.run);
    ("table8", "Table 8: network polling throughput", Exp_polling.run);
    ( "livelock",
      "Extension: receiver livelock (interrupts vs MR hybrid vs soft polling)",
      Exp_livelock.run );
    ( "sensitivity",
      "Extension: sensitivity of the headline results to the cost model",
      Exp_sensitivity.run );
    ( "pacer-scale",
      "Extension: million-flow rate-based clocking across timer stores",
      Exp_pacer_scale.run );
  ]

let unknown_experiment id =
  `Error
    ( false,
      Printf.sprintf "unknown experiment %S; known: %s" id
        (String.concat ", " (List.map (fun (n, _, _) -> n) experiments)) )

(* Run [f] with the runtime invariant sanitizer armed (when requested):
   it taps every trace event, checks causality / soft-timer firing
   bounds / wheel residency / counter monotonicity, and its report is
   printed after the run.  Violations turn into a nonzero exit. *)
let with_sanitizer enabled f =
  if not enabled then f ()
  else begin
    let s = Sanitizer.create () in
    Sanitizer.install s;
    let result =
      try f ()
      with e ->
        Sanitizer.uninstall s;
        raise e
    in
    Sanitizer.uninstall s;
    print_newline ();
    print_string (Sanitizer.report s);
    match result with
    | `Ok () when not (Sanitizer.ok s) ->
      `Error
        ( false,
          Printf.sprintf "sanitizer: %d invariant violation(s)" (Sanitizer.violation_count s)
        )
    | other -> other
  end

let run_one cfg sanitize id =
  match List.find_opt (fun (name, _, _) -> name = id) experiments with
  | Some (_, _, f) ->
    with_sanitizer sanitize (fun () ->
        print_string (f cfg);
        `Ok ())
  | None -> unknown_experiment id

let run_all cfg sanitize =
  with_sanitizer sanitize (fun () ->
      (* Independent deterministic sims: fan out, print in list order.
         (With --sanitize the tap forces sequential execution inside
         map_sim; output is identical either way.) *)
      Runner.map_sim (fun (_, _, f) -> f cfg) experiments
      |> List.iter (fun out ->
             print_string out;
             print_newline ());
      `Ok ())

(* Replay-diff harness: run one experiment twice from the same seed and
   compare the emitted table byte-for-byte and the trace digests (an
   order-sensitive hash of every event).  Any divergence means some
   hidden state — wall clock, global Random, hash order — leaked into
   the run, which is exactly what the determinism contract forbids. *)
let run_verify cfg buf jobs id =
  match List.find_opt (fun (name, _, _) -> name = id) experiments with
  | None -> unknown_experiment id
  | Some _ when buf <= 0 -> `Error (false, "--buf must be positive")
  | Some (_, _, f) ->
    let once ~jobs =
      Runner.set_default_jobs jobs;
      let tr = Trace.create ~capacity:buf () in
      Metrics.reset Metrics.default;
      Trace.install tr;
      let out = f cfg in
      Trace.uninstall ();
      (out, Trace_digest.digest tr, Trace.total tr)
    in
    (* Run 1 is always sequential; run 2 uses the requested job count,
       so `--jobs 4` directly proves a parallel run is bit-identical
       to the sequential reference, not merely self-consistent. *)
    let o1, d1, n1 = once ~jobs:1 in
    let o2, d2, n2 = once ~jobs in
    Printf.printf "verify-determinism %s (seed %d%s)\n" id cfg.Exp_config.seed
      (if cfg.Exp_config.quick then ", quick" else "");
    Printf.printf "  run 1 (jobs 1): trace digest %s (%d events)\n" (Trace_digest.hex d1) n1;
    Printf.printf "  run 2 (jobs %s): trace digest %s (%d events)\n"
      (if jobs = 0 then "auto" else string_of_int jobs)
      (Trace_digest.hex d2) n2;
    let tables_eq = String.equal o1 o2 in
    let traces_eq = Int64.equal d1 d2 && n1 = n2 in
    Printf.printf "  tables: %s\n" (if tables_eq then "identical" else "DIFFER");
    Printf.printf "  traces: %s\n" (if traces_eq then "identical" else "DIFFER");
    if tables_eq && traces_eq then begin
      Printf.printf "  PASS: two same-seed runs are bit-for-bit identical\n";
      `Ok ()
    end
    else begin
      if not tables_eq then begin
        let l1 = String.split_on_char '\n' o1 and l2 = String.split_on_char '\n' o2 in
        let rec first_diff i = function
          | a :: ra, b :: rb -> if String.equal a b then first_diff (i + 1) (ra, rb) else Some (i, a, b)
          | a :: _, [] -> Some (i, a, "<missing>")
          | [], b :: _ -> Some (i, "<missing>", b)
          | [], [] -> None
        in
        match first_diff 1 (l1, l2) with
        | Some (i, a, b) ->
          Printf.printf "  first differing table line (%d):\n    run 1: %s\n    run 2: %s\n" i
            a b
        | None -> ()
      end;
      `Error (false, "verify-determinism: same-seed runs differ — determinism broken")
    end

(* Run one experiment with the tracing/metrics layer armed, then export
   the ring buffer as Chrome trace_event JSON (or CSV).  JSON exports
   also carry async span events (timer and packet lifecycles recovered
   from the ring) and, with --window, per-window counter tracks. *)
let run_trace cfg id out csv buf metrics window_us max_windows =
  match List.find_opt (fun (name, _, _) -> name = id) experiments with
  | None ->
    `Error
      ( false,
        Printf.sprintf "unknown experiment %S; known: %s" id
          (String.concat ", " (List.map (fun (n, _, _) -> n) experiments)) )
  | Some _ when buf <= 0 -> `Error (false, "--buf must be positive")
  | Some _ when window_us < 0.0 -> `Error (false, "--window must be non-negative")
  | Some _ when window_us > 0.0 && Trace.tap_installed () ->
    (* Both the sanitizer and the time-series collector need the single
       synchronous trace tap. *)
    `Error (false, "--window cannot be combined with --sanitize (both need the trace tap)")
  | Some _ when (try close_out (open_out out); false with Sys_error _ -> true) ->
    (* Fail on an unwritable --out before spending time simulating. *)
    `Error (false, Printf.sprintf "cannot write trace output %S" out)
  | Some (_, _, f) ->
    let tr = Trace.create ~capacity:buf () in
    Metrics.reset Metrics.default;
    let series =
      if window_us > 0.0 then
        Some (Timeseries.create ~window:(Time_ns.of_us window_us) ~max_windows ())
      else None
    in
    Trace.install tr;
    (match series with Some ts -> Trace.set_tap (Some (Timeseries.on_event ts)) | None -> ());
    let output =
      try f cfg
      with e ->
        if Option.is_some series then Trace.set_tap None;
        Trace.uninstall ();
        raise e
    in
    (match series with
    | Some ts ->
      Trace.set_tap None;
      Timeseries.close ts
    | None -> ());
    Trace.uninstall ();
    print_string output;
    let as_csv = csv || Filename.check_suffix out ".csv" in
    if as_csv then Trace_export.write_csv tr out
    else
      Trace_export.write_chrome_json ?series ~spans:(Span.collect tr) tr out;
    Printf.printf "\ntrace: %d events captured (%d overwritten) -> %s (%s)\n" (Trace.length tr)
      (Trace.dropped tr) out
      (if as_csv then "csv" else "chrome trace_event json; open in chrome://tracing or Perfetto");
    if Trace.dropped tr > 0 then
      Printf.printf
        "WARNING: trace ring overflowed; the %d oldest events were dropped — the export is \
         truncated (raise --buf to capture everything)\n"
        (Trace.dropped tr);
    if metrics then begin
      print_newline ();
      print_string (Metrics.dump Metrics.default)
    end;
    `Ok ()

(* Run one experiment with the cycle-attribution profiler installed and
   print (or export) the attribution report: the tree, the per-interrupt
   cost split (save/restore vs pollution vs handler) and the per-trigger
   dispatch breakdown.  --flame switches to collapsed-stack flamegraph
   lines instead (inferno / flamegraph.pl / speedscope). *)
let run_profile cfg id out flame metrics =
  match List.find_opt (fun (name, _, _) -> name = id) experiments with
  | None -> unknown_experiment id
  | Some _
    when match out with
         | None -> false
         | Some f -> ( try close_out (open_out f); false with Sys_error _ -> true) ->
    `Error (false, Printf.sprintf "cannot write profile output %S" (Option.get out))
  | Some (_, _, f) ->
    let p = Profile.create () in
    Metrics.reset Metrics.default;
    Profile.install p;
    let output =
      try f cfg
      with e ->
        Profile.uninstall ();
        raise e
    in
    Profile.uninstall ();
    print_string output;
    print_newline ();
    Printf.printf "profile %s (seed %d%s)\n\n" id cfg.Exp_config.seed
      (if cfg.Exp_config.quick then ", quick" else "");
    let body = if flame then Profile.to_collapsed p else Profile.report p in
    (match out with
    | None -> print_string body
    | Some file ->
      let oc = open_out file in
      Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc body);
      Printf.printf "profile: %s -> %s\n"
        (if flame then "collapsed-stack flamegraph" else "attribution report")
        file;
      if flame then print_string (Profile.to_table p));
    if metrics then begin
      print_newline ();
      print_string (Metrics.dump Metrics.default)
    end;
    `Ok ()

(* --- stats: windowed time-series + span + metrics report ------------ *)

let jfloat v = if Float.is_nan v then "null" else Printf.sprintf "%.6g" v

let jstring s =
  let b = Buffer.create (String.length s + 2) in
  Buffer.add_char b '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 0x20 -> Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.add_char b '"';
  Buffer.contents b

let hdr_json h =
  Printf.sprintf "{\"count\":%d,\"mean\":%s,\"p50\":%s,\"p99\":%s,\"max\":%s}"
    (Hdr.count h) (jfloat (Hdr.mean h))
    (jfloat (Hdr.quantile h 0.5))
    (jfloat (Hdr.quantile h 0.99))
    (jfloat (Hdr.max h))

let metrics_json m =
  let parts = ref [] in
  Metrics.iter m (fun name v ->
      let rendered =
        match v with
        | Metrics.Counter c -> string_of_int c
        | Metrics.Gauge g | Metrics.Probe g -> jfloat g
        | Metrics.Histogram h -> hdr_json h
      in
      parts := Printf.sprintf "%s:%s" (jstring name) rendered :: !parts);
  "{" ^ String.concat "," (List.rev !parts) ^ "}"

let spans_json sp =
  Printf.sprintf
    "{\"timers\":{\"total\":%d,\"fired\":%d,\"cancelled\":%d,\"open\":%d,\"latency_us\":%s},\"packets\":{\"total\":%d,\"delivered\":%d,\"open\":%d,\"latency_us\":%s}}"
    (Span.timers_total sp) (Span.timers_fired sp) (Span.timers_cancelled sp)
    (Span.timers_open sp)
    (hdr_json (Span.timer_latency sp))
    (Span.packets_total sp) (Span.packets_delivered sp) (Span.packets_open sp)
    (hdr_json (Span.packet_latency sp))

let stats_json cfg id window_us ts sp da =
  Printf.sprintf
    "{\"schema\":\"softtimers-stats/1\",\"experiment\":%s,\"seed\":%d,\"quick\":%b,\"window_us\":%s,\"events\":%d,\"epochs\":%d,\"windows_dropped\":%d,\"windows\":%s,\"spans\":%s,\"whylate\":%s,\"metrics\":%s}"
    (jstring id) cfg.Exp_config.seed cfg.Exp_config.quick (jfloat window_us)
    (Timeseries.event_count ts) (Timeseries.epochs ts) (Timeseries.evicted_windows ts)
    (Timeseries.to_json ts) (spans_json sp) (Delay_audit.to_json da)
    (metrics_json Metrics.default)

let stats_human cfg id window_us ts sp da =
  let b = Buffer.create 2048 in
  let addf fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  addf "stats %s (seed %d%s, window %g us)\n" id cfg.Exp_config.seed
    (if cfg.Exp_config.quick then ", quick" else "")
    window_us;
  let windows = Timeseries.snapshots ts in
  addf "  events: %d across %d window(s), %d epoch(s)" (Timeseries.event_count ts)
    (List.length windows) (Timeseries.epochs ts);
  if Timeseries.evicted_windows ts > 0 then
    addf " (%d oldest windows evicted)" (Timeseries.evicted_windows ts);
  addf "\n";
  let d = Timeseries.overall_delay ts in
  if Hdr.count d > 0 then
    addf "  fire delay us: n=%d p50=%.3f p99=%.3f max=%.3f\n" (Hdr.count d)
      (Hdr.quantile d 0.5) (Hdr.quantile d 0.99) (Hdr.max d);
  addf "  timer spans: %d scheduled, %d fired, %d cancelled, %d open\n" (Span.timers_total sp)
    (Span.timers_fired sp) (Span.timers_cancelled sp) (Span.timers_open sp);
  addf "  packet spans: %d enqueued, %d delivered, %d open\n" (Span.packets_total sp)
    (Span.packets_delivered sp) (Span.packets_open sp);
  let pl = Span.packet_latency sp in
  if Hdr.count pl > 0 then
    addf "  packet latency us: n=%d p50=%.3f p99=%.3f max=%.3f\n" (Hdr.count pl)
      (Hdr.quantile pl 0.5) (Hdr.quantile pl 0.99) (Hdr.max pl);
  (* Fire-delay attribution summary; `why-late` has the full report. *)
  addf "  late fires: %d of %d" (Delay_audit.late da) (Delay_audit.fired da);
  if Delay_audit.pending_at_exit da > 0 then
    addf " (%d pending at exit)" (Delay_audit.pending_at_exit da);
  let total = Delay_audit.total_late_ns da in
  if Int64.compare total 0L > 0 then begin
    let top = ref 0 in
    for k = 1 to Delay_audit.nseg - 1 do
      if Time_ns.(Delay_audit.cause_ns da k > Delay_audit.cause_ns da !top) then top := k
    done;
    addf "; dominant cause %s (%.1f%% of %.3f ms late)"
      (Delay_audit.seg_label !top)
      (100.0 *. Int64.to_float (Delay_audit.cause_ns da !top) /. Int64.to_float total)
      (Int64.to_float total /. 1e6)
  end;
  addf "\n";
  addf "\n%s" (Metrics.dump Metrics.default);
  Buffer.contents b

(* Run one experiment with the windowed time-series collector tapping
   the event stream, reconstruct spans from the ring afterwards, and
   report: JSON (machine), Prometheus exposition, per-window CSV, or a
   human summary.  The experiment's own table is suppressed — the
   report is the output, so it can be byte-compared across --jobs
   values and piped into tooling. *)
let run_stats cfg id window_us max_windows fmt out buf =
  match List.find_opt (fun (name, _, _) -> name = id) experiments with
  | None -> unknown_experiment id
  | Some _ when buf <= 0 -> `Error (false, "--buf must be positive")
  | Some _ when window_us <= 0.0 -> `Error (false, "--window must be positive")
  | Some _ when max_windows <= 0 -> `Error (false, "--max-windows must be positive")
  | Some _ when Trace.tap_installed () ->
    `Error (false, "stats needs the trace tap, which is already occupied")
  | Some _
    when match out with
         | None -> false
         | Some f -> ( try close_out (open_out f); false with Sys_error _ -> true) ->
    `Error (false, Printf.sprintf "cannot write stats output %S" (Option.get out))
  | Some (_, _, f) ->
    let tr = Trace.create ~capacity:buf () in
    Metrics.reset Metrics.default;
    let ts = Timeseries.create ~window:(Time_ns.of_us window_us) ~max_windows () in
    Trace.install tr;
    Trace.set_tap (Some (Timeseries.on_event ts));
    let table =
      try f cfg
      with e ->
        Trace.set_tap None;
        Trace.uninstall ();
        raise e
    in
    Trace.set_tap None;
    Trace.uninstall ();
    Timeseries.close ts;
    ignore (table : string);
    let sp = Span.collect tr in
    let da = Delay_audit.collect tr in
    let body =
      match fmt with
      | `Json -> stats_json cfg id window_us ts sp da
      | `Prom -> Metrics.to_prometheus Metrics.default ^ Delay_audit.to_prometheus da
      | `Csv -> Timeseries.to_csv ts
      | `Human -> stats_human cfg id window_us ts sp da
    in
    (match out with
    | None -> print_string body
    | Some file ->
      let oc = open_out file in
      Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc body);
      Printf.printf "stats: %s report -> %s\n"
        (match fmt with `Json -> "json" | `Prom -> "prometheus" | `Csv -> "csv" | `Human -> "text")
        file);
    `Ok ()

(* --- why-late: fire-delay attribution forensics --------------------- *)

(* Run one experiment with the ring armed, then replay the trace
   through {!Delay_audit}: every fired timer's delay is partitioned
   into trigger-gap (sub-attributed to the CPU activity that held off
   the checks), check-skipped (budget withheld it) and batch-queueing
   segments, with a conservation check per fire.  Reports aggregate
   cause tables, the per-ending-trigger cross-tab (paper §4.1) and the
   worst-N exemplars with full causal chains. *)
let run_whylate cfg id worst fmt out buf budget =
  match List.find_opt (fun (name, _, _) -> name = id) experiments with
  | None -> unknown_experiment id
  | Some _ when buf <= 0 -> `Error (false, "--buf must be positive")
  | Some _ when worst < 0 -> `Error (false, "--worst must be non-negative")
  | Some _ when (match budget with Some b -> b < 1 | None -> false) ->
    `Error (false, "--check-budget must be at least 1")
  | Some _
    when match out with
         | None -> false
         | Some f -> ( try close_out (open_out f); false with Sys_error _ -> true) ->
    `Error (false, Printf.sprintf "cannot write why-late output %S" (Option.get out))
  | Some (_, _, f) ->
    (match budget with Some b -> Softtimer.set_default_check_budget b | None -> ());
    let restore_budget () = Softtimer.set_default_check_budget max_int in
    Fun.protect ~finally:restore_budget (fun () ->
        let tr = Trace.create ~capacity:buf () in
        Metrics.reset Metrics.default;
        Trace.install tr;
        let table =
          try f cfg
          with e ->
            Trace.uninstall ();
            raise e
        in
        Trace.uninstall ();
        ignore (table : string);
        let da = Delay_audit.collect ~worst tr in
        let body =
          match fmt with
          | `Json -> Delay_audit.to_json da
          | `Prom -> Delay_audit.to_prometheus da
          | `Human ->
            Printf.sprintf "why-late %s (seed %d%s%s)\n%s" id cfg.Exp_config.seed
              (if cfg.Exp_config.quick then ", quick" else "")
              (match budget with
              | Some b -> Printf.sprintf ", check budget %d" b
              | None -> "")
              (Delay_audit.to_text da)
        in
        (match out with
        | None -> print_string body
        | Some file ->
          let oc = open_out file in
          Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc body);
          Printf.printf "why-late: %s report -> %s\n"
            (match fmt with `Json -> "json" | `Prom -> "prometheus" | `Human -> "text")
            file);
        if Trace.dropped tr > 0 then
          Printf.eprintf
            "WARNING: trace ring overflowed (%d events dropped); attribution is computed \
             from a truncated stream (raise --buf)\n"
            (Trace.dropped tr);
        if Delay_audit.violations da > 0 then
          `Error
            ( false,
              Printf.sprintf "why-late: %d conservation violation(s) — attribution bug"
                (Delay_audit.violations da) )
        else `Ok ())

(* --- mem: memory observatory ---------------------------------------- *)

(* Arm the memory observatory around [f]: register the observatory's
   own self-census, start the statistical allocation profiler when the
   runtime engine supports it (best-effort — on OCaml 5.0-5.2 the
   status marker reports it unavailable and the site table stays
   empty), and take GC samples at the run boundaries.  The report goes
   to stderr: nothing here emits a trace event or touches
   Metrics.default, so stdout, digests and tables are byte-identical
   with or without --mem. *)
let with_mem enabled f =
  if not enabled then f ()
  else begin
    Memstats.reset_census ();
    Memstats.reset_samples ();
    Memprof.reset ();
    (* The observatory accounts for itself: the interned category
       registry is retained heap like any store's. *)
    Memstats.register ~path:[ "obs"; "profile-registry" ] Profile.registry_words;
    ignore (Memprof.start () : (unit, string) result);
    Memstats.sample ~label:"start";
    let finish () =
      Memprof.stop ();
      Memstats.sample ~label:"end"
    in
    let r =
      try f ()
      with e ->
        finish ();
        raise e
    in
    finish ();
    prerr_newline ();
    prerr_string (Memprof.table ~n:10);
    prerr_newline ();
    prerr_string (Memstats.report ());
    r
  end

(* Run one experiment under the full observatory and print the memory
   report instead of the experiment's table (mirroring `stats`): top-N
   allocation sites, the per-subsystem live-word tree, the retention
   table with its conservation verdict, GC samples and counters.
   pacer-scale runs through its census entry point, which registers
   every fleet as a live source — `mem pacer-scale` is the per-store
   words/flow report at 10^3..10^6. *)
let run_mem cfg id top fmt out =
  match List.find_opt (fun (name, _, _) -> name = id) experiments with
  | None -> unknown_experiment id
  | Some _ when top <= 0 -> `Error (false, "--top must be positive")
  | Some _
    when match out with
         | None -> false
         | Some f -> ( try close_out (open_out f); false with Sys_error _ -> true) ->
    `Error (false, Printf.sprintf "cannot write mem output %S" (Option.get out))
  | Some (_, _, f) ->
    Memstats.reset_census ();
    Memstats.reset_samples ();
    Memprof.reset ();
    Memstats.register ~path:[ "obs"; "profile-registry" ] Profile.registry_words;
    ignore (Memprof.start () : (unit, string) result);
    Memstats.sample ~label:"start";
    (if id = "pacer-scale" then
       ignore
         (Memprof.with_context [ "experiment"; id ] (fun () ->
              Exp_pacer_scale.run_census cfg)
           : Exp_pacer_scale.cell list)
     else
       ignore (Memprof.with_context [ "experiment"; id ] (fun () -> f cfg) : string));
    Memprof.stop ();
    Memstats.sample ~label:"end";
    let body =
      match fmt with
      | `Json ->
        Printf.sprintf
          "{\"schema\":\"softtimers-mem/1\",\"experiment\":%s,\"seed\":%d,\"quick\":%b,\
           \"memprof\":%s,\"memstats\":%s}"
          (jstring id) cfg.Exp_config.seed cfg.Exp_config.quick
          (Memprof.to_json ~n:top) (Memstats.to_json ())
      | `Prom -> Memstats.to_prometheus ()
      | `Human ->
        Printf.sprintf "mem %s (seed %d%s) — memprof %s\n\n%s\n%s" id cfg.Exp_config.seed
          (if cfg.Exp_config.quick then ", quick" else "")
          (Memprof.status ())
          (Memprof.table ~n:top) (Memstats.report ())
    in
    (match out with
    | None -> print_string body
    | Some file ->
      let oc = open_out file in
      Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc body);
      Printf.printf "mem: %s report -> %s\n"
        (match fmt with `Json -> "json" | `Prom -> "prometheus" | `Human -> "text")
        file);
    let ok = Memstats.conservation_ok () in
    (* Drop the census (and with it the fleets the providers keep alive). *)
    Memstats.reset_census ();
    if ok then `Ok ()
    else
      `Error
        ( false,
          "mem: conservation violated — attributed live words exceed GC live words \
           (double-counted or stale census provider)" )

open Cmdliner

let quick =
  let doc = "Short runs (noisier, ~10x faster)." in
  Arg.(value & flag & info [ "quick"; "q" ] ~doc)

let seed =
  let doc = "Simulation seed (runs are deterministic per seed)." in
  Arg.(value & opt int 7 & info [ "seed"; "s" ] ~doc ~docv:"SEED")

let jobs =
  let doc =
    "Number of worker domains for parallelizable work (independent experiment cells). \
     1 = sequential, 0 = one per core.  Results, tables and trace digests are identical \
     at every value; only wall-clock time changes."
  in
  Arg.(value & opt int 1 & info [ "jobs"; "j" ] ~doc ~docv:"N")

let sanitize =
  let doc =
    "Arm the runtime invariant sanitizer: every trace event is checked for causality, \
     soft-timer firing bounds, timing-wheel residency and counter monotonicity; a report \
     is printed after the run and violations exit nonzero."
  in
  Arg.(value & flag & info [ "sanitize" ] ~doc)

let mem_flag =
  let doc =
    "Arm the memory observatory for the run: statistical allocation profiling (when the \
     runtime engine supports it) plus the live-word census and GC samples, reported to \
     stderr after the run.  stdout, tables and trace digests are byte-identical with or \
     without this flag."
  in
  Arg.(value & flag & info [ "mem" ] ~doc)

let store_arg =
  let doc =
    Printf.sprintf
      "Timer store backing the soft-timer facility for this run: one of %s.  Every \
       experiment produces the same tables and trace digests under every exact store \
       (only internal bookkeeping differs); the approximate pacing-wheel rounds \
       deadlines up to the tick, so firing times — and hence digests — legitimately \
       shift under it.  See the arena bench for the performance comparison."
      (String.concat ", " Store_registry.names)
  in
  Arg.(value & opt (some string) None & info [ "store" ] ~doc ~docv:"NAME")

(* Install the requested store process-wide for the duration of [k]:
   every [Softtimer.attach] inside the run picks it up. *)
let with_store name k =
  match name with
  | None -> k ()
  | Some n -> (
    match Store_registry.find n with
    | None ->
      `Error
        ( false,
          Printf.sprintf "unknown timer store %s (available: %s)" n
            (String.concat ", " Store_registry.names) )
    | Some s ->
      Softtimer.set_default_store (Some s);
      Fun.protect ~finally:(fun () -> Softtimer.set_default_store None) k)

let id =
  let doc = "Experiment id, or 'all'." in
  Arg.(value & pos 0 string "all" & info [] ~doc ~docv:"EXPERIMENT")

let cfg_of quick seed = { Exp_config.quick; seed }

let trace_cmd =
  let doc = "Run one experiment with tracing enabled and export the event trace" in
  let man =
    [
      `S Manpage.s_description;
      `P
        "Arms the simulator-wide tracing layer (lib/obs), runs the given experiment, and \
         writes the captured events to $(b,--out).  The default format is Chrome \
         trace_event JSON, loadable in chrome://tracing or https://ui.perfetto.dev; pass \
         $(b,--csv) (or an .csv output path) for one event per line instead.";
    ]
  in
  let exp_id =
    let doc = "Experiment id to trace (one id, not 'all')." in
    Arg.(required & pos 0 (some string) None & info [] ~doc ~docv:"EXPERIMENT")
  in
  let out =
    let doc = "Output file for the exported trace." in
    Arg.(value & opt string "trace.json" & info [ "out"; "o" ] ~doc ~docv:"FILE")
  in
  let csv =
    let doc = "Export CSV instead of Chrome trace_event JSON." in
    Arg.(value & flag & info [ "csv" ] ~doc)
  in
  let buf =
    let doc = "Trace ring-buffer capacity in events; the oldest events are overwritten \
               once it fills." in
    Arg.(value & opt int 1_048_576 & info [ "buf" ] ~doc ~docv:"EVENTS")
  in
  let metrics =
    let doc = "Also dump the metrics registry after the run." in
    Arg.(value & flag & info [ "metrics" ] ~doc)
  in
  let window =
    let doc =
      "Also aggregate the event stream into windows of this many microseconds of simulated \
       time and merge the result into the JSON export as Chrome counter tracks.  0 \
       disables the time series."
    in
    Arg.(value & opt float 0.0 & info [ "window" ] ~doc ~docv:"US")
  in
  let max_windows =
    let doc = "Retain at most this many closed windows (oldest evicted first)." in
    Arg.(value & opt int 4096 & info [ "max-windows" ] ~doc ~docv:"N")
  in
  let term =
    Term.(
      ret
        (const (fun quick seed jobs store id out csv buf metrics window max_windows sanitize ->
             Runner.set_default_jobs jobs;
             with_store store (fun () ->
                 with_sanitizer sanitize (fun () ->
                     run_trace (cfg_of quick seed) id out csv buf metrics window max_windows)))
        $ quick $ seed $ jobs $ store_arg $ exp_id $ out $ csv $ buf $ metrics $ window
        $ max_windows $ sanitize))
  in
  Cmd.v (Cmd.info "trace" ~doc ~man) term

let stats_cmd =
  let doc = "Run one experiment and report windowed time-series, span and metrics statistics" in
  let man =
    [
      `S Manpage.s_description;
      `P
        "Taps the simulator's event stream, aggregates it into fixed windows of simulated \
         time (counters, gauges and a constant-memory latency histogram per window), \
         reconstructs per-entity spans (soft timers schedule->fire/cancel, packets \
         enqueue->rx) from the trace ring, and prints a report instead of the experiment's \
         table.  The report contains no wall-clock data and the tap forces sequential \
         execution, so the bytes are identical at every $(b,--jobs) value.";
      `P
        "Formats: $(b,--json) (schema softtimers-stats/1: windows, spans and the metrics \
         registry), $(b,--prom) (Prometheus text exposition of the metrics registry), \
         $(b,--csv) (one row per window), or a human summary by default.";
    ]
  in
  let exp_id =
    let doc = "Experiment id (one id, not 'all')." in
    Arg.(required & pos 0 (some string) None & info [] ~doc ~docv:"EXPERIMENT")
  in
  let window =
    let doc = "Aggregation window in microseconds of simulated time." in
    Arg.(value & opt float 1000.0 & info [ "window" ] ~doc ~docv:"US")
  in
  let max_windows =
    let doc = "Retain at most this many closed windows (oldest evicted first)." in
    Arg.(value & opt int 4096 & info [ "max-windows" ] ~doc ~docv:"N")
  in
  let json =
    let doc = "Emit the full JSON report (schema softtimers-stats/1)." in
    Arg.(value & flag & info [ "json" ] ~doc)
  in
  let prom =
    let doc = "Emit the metrics registry as Prometheus text exposition." in
    Arg.(value & flag & info [ "prom" ] ~doc)
  in
  let csv =
    let doc = "Emit the window table as CSV." in
    Arg.(value & flag & info [ "csv" ] ~doc)
  in
  let out =
    let doc = "Write the report to this file instead of stdout." in
    Arg.(value & opt (some string) None & info [ "out"; "o" ] ~doc ~docv:"FILE")
  in
  let buf =
    let doc = "Trace ring-buffer capacity in events (spans are recovered from the ring)." in
    Arg.(value & opt int 1_048_576 & info [ "buf" ] ~doc ~docv:"EVENTS")
  in
  let term =
    Term.(
      ret
        (const (fun quick seed jobs store id window max_windows json prom csv out buf ->
             Runner.set_default_jobs jobs;
             with_store store (fun () ->
                 match (json, prom, csv) with
                 | true, false, false ->
                   run_stats (cfg_of quick seed) id window max_windows `Json out buf
                 | false, true, false ->
                   run_stats (cfg_of quick seed) id window max_windows `Prom out buf
                 | false, false, true ->
                   run_stats (cfg_of quick seed) id window max_windows `Csv out buf
                 | false, false, false ->
                   run_stats (cfg_of quick seed) id window max_windows `Human out buf
                 | _ -> `Error (false, "--json, --prom and --csv are mutually exclusive")))
        $ quick $ seed $ jobs $ store_arg $ exp_id $ window $ max_windows $ json $ prom $ csv
        $ out $ buf))
  in
  Cmd.v (Cmd.info "stats" ~doc ~man) term

let whylate_cmd =
  let doc = "Explain every late soft-timer fire: exact, conservation-checked delay attribution" in
  let man =
    [
      `S Manpage.s_description;
      `P
        "Runs the given experiment with tracing armed, then partitions every fired timer's \
         delay (fire time minus due time) into an exact breakdown: $(b,trigger-gap) — no \
         trigger state was reached since the deadline, sub-attributed to what CPU 0 was \
         doing (interrupt handler, softintr/protocol work, syscall body, user or background \
         compute, another timer's handler, or idle-before-wakeup); $(b,check-skipped) — a \
         check reached the store but the per-check dispatch budget withheld this timer; and \
         $(b,batch-queueing).  Segments provably sum to the delay for every fire \
         (violations exit nonzero).";
      `P
        "The report shows the aggregate per-cause table with histograms, the \
         per-ending-trigger-state cross-tab (which trigger finally dispatched each late \
         timer — the paper's §4.1 question), and the worst-$(b,--worst) exemplars with \
         their causal chains.  $(b,--check-budget N) caps dispatches per check to make \
         budget-induced lateness observable.";
    ]
  in
  let exp_id =
    let doc = "Experiment id to audit (one id, not 'all')." in
    Arg.(required & pos 0 (some string) None & info [] ~doc ~docv:"EXPERIMENT")
  in
  let worst =
    let doc = "Number of worst-late exemplar timers to show." in
    Arg.(value & opt int 10 & info [ "worst" ] ~doc ~docv:"N")
  in
  let json =
    let doc = "Emit the JSON report (schema softtimers-whylate/1)." in
    Arg.(value & flag & info [ "json" ] ~doc)
  in
  let prom =
    let doc = "Emit the attribution as Prometheus text exposition." in
    Arg.(value & flag & info [ "prom" ] ~doc)
  in
  let out =
    let doc = "Write the report to this file instead of stdout." in
    Arg.(value & opt (some string) None & info [ "out"; "o" ] ~doc ~docv:"FILE")
  in
  let buf =
    let doc = "Trace ring-buffer capacity in events (attribution replays the ring)." in
    Arg.(value & opt int 1_048_576 & info [ "buf" ] ~doc ~docv:"EVENTS")
  in
  let check_budget =
    let doc =
      "Cap soft-timer dispatches per trigger check at N for this run (default unlimited); \
       withheld timers show up as check-skipped delay."
    in
    Arg.(value & opt (some int) None & info [ "check-budget" ] ~doc ~docv:"N")
  in
  let term =
    Term.(
      ret
        (const (fun quick seed jobs store id worst json prom out buf check_budget ->
             Runner.set_default_jobs jobs;
             with_store store (fun () ->
                 match (json, prom) with
                 | true, false ->
                   run_whylate (cfg_of quick seed) id worst `Json out buf check_budget
                 | false, true ->
                   run_whylate (cfg_of quick seed) id worst `Prom out buf check_budget
                 | false, false ->
                   run_whylate (cfg_of quick seed) id worst `Human out buf check_budget
                 | true, true -> `Error (false, "--json and --prom are mutually exclusive")))
        $ quick $ seed $ jobs $ store_arg $ exp_id $ worst $ json $ prom $ out $ buf
        $ check_budget))
  in
  Cmd.v (Cmd.info "why-late" ~doc ~man) term

let profile_cmd =
  let doc = "Run one experiment with the cycle-attribution profiler and report who spent what" in
  let man =
    [
      `S Manpage.s_description;
      `P
        "Installs the cycle-attribution profiler (lib/obs Profile), runs the given \
         experiment and prints three reports: the hierarchical attribution tree (every \
         charged CPU cycle by category), the per-interrupt cost split (save/restore vs. \
         cache/TLB pollution vs. handler body — the decomposition behind the paper's \
         Tables 2-4), and the per-trigger-state soft-timer dispatch breakdown with \
         latencies (paper Table 1).  $(b,--flame) exports collapsed-stack lines for \
         inferno, flamegraph.pl or speedscope instead.";
    ]
  in
  let exp_id =
    let doc = "Experiment id to profile (one id, not 'all')." in
    Arg.(required & pos 0 (some string) None & info [] ~doc ~docv:"EXPERIMENT")
  in
  let out =
    let doc = "Write the report (or, with --flame, the collapsed stacks) to this file." in
    Arg.(value & opt (some string) None & info [ "out"; "o" ] ~doc ~docv:"FILE")
  in
  let flame =
    let doc = "Emit collapsed-stack flamegraph lines (cpuN;category;... <ns>) instead of \
               the text report." in
    Arg.(value & flag & info [ "flame" ] ~doc)
  in
  let metrics =
    let doc = "Also dump the metrics registry after the run." in
    Arg.(value & flag & info [ "metrics" ] ~doc)
  in
  let term =
    Term.(
      ret
        (const (fun quick seed jobs store id out flame metrics sanitize ->
             Runner.set_default_jobs jobs;
             with_store store (fun () ->
                 with_sanitizer sanitize (fun () ->
                     run_profile (cfg_of quick seed) id out flame metrics)))
        $ quick $ seed $ jobs $ store_arg $ exp_id $ out $ flame $ metrics $ sanitize))
  in
  Cmd.v (Cmd.info "profile" ~doc ~man) term

let mem_cmd =
  let doc = "Run one experiment under the memory observatory and report where the words live" in
  let man =
    [
      `S Manpage.s_description;
      `P
        "Arms the memory observatory (lib/obs Memstats + Memprof), runs the given \
         experiment, and prints the memory report instead of the experiment's table: the \
         top-$(b,--top) statistical allocation sites (when the runtime's statmemprof \
         engine is available — on OCaml 5.0-5.2 it is not, and the report says so), the \
         per-subsystem live-word tree and retention table over the census of registered \
         word providers, the GC sample track and the GC counter registry.  The retention \
         numbers come from each subsystem's analytic $(b,words) accounting \
         (cross-checked against Obj.reachable_words in the test suite), attributed to \
         the same interned category tree the cycle profiler uses.";
      `P
        "$(b,mem pacer-scale) registers every fleet of the sweep as a live census \
         source, making it the per-store memory-gap report: store and pool words per \
         flow at 10^3..10^6 flows.  Conservation (attributed live words <= GC live \
         words) is checked on every run; violations exit nonzero.";
      `P
        "The observatory emits no trace events and never touches the default metrics \
         registry, so determinism digests, tables and stats reports are byte-identical \
         whether or not it is armed.";
    ]
  in
  let exp_id =
    let doc = "Experiment id to observe (one id, not 'all')." in
    Arg.(required & pos 0 (some string) None & info [] ~doc ~docv:"EXPERIMENT")
  in
  let top =
    let doc = "Number of top allocation sites to report." in
    Arg.(value & opt int 10 & info [ "top" ] ~doc ~docv:"N")
  in
  let json =
    let doc = "Emit the JSON report (schema softtimers-mem/1)." in
    Arg.(value & flag & info [ "json" ] ~doc)
  in
  let prom =
    let doc = "Emit the observatory's GC registry as Prometheus text exposition." in
    Arg.(value & flag & info [ "prom" ] ~doc)
  in
  let out =
    let doc = "Write the report to this file instead of stdout." in
    Arg.(value & opt (some string) None & info [ "out"; "o" ] ~doc ~docv:"FILE")
  in
  let term =
    Term.(
      ret
        (const (fun quick seed jobs store id top json prom out ->
             Runner.set_default_jobs jobs;
             with_store store (fun () ->
                 match (json, prom) with
                 | true, false -> run_mem (cfg_of quick seed) id top `Json out
                 | false, true -> run_mem (cfg_of quick seed) id top `Prom out
                 | false, false -> run_mem (cfg_of quick seed) id top `Human out
                 | true, true -> `Error (false, "--json and --prom are mutually exclusive")))
        $ quick $ seed $ jobs $ store_arg $ exp_id $ top $ json $ prom $ out))
  in
  Cmd.v (Cmd.info "mem" ~doc ~man) term

let verify_cmd =
  let doc = "Replay-diff: run an experiment twice with the same seed and diff the results" in
  let man =
    [
      `S Manpage.s_description;
      `P
        "Runs the given experiment twice with identical configuration, capturing the full \
         event trace of each run, then compares the emitted table byte-for-byte and the \
         trace digests (an order-sensitive FNV-1a over every event).  Exits nonzero on any \
         divergence: two same-seed runs of a correct simulation are bit-for-bit identical.  \
         Run 1 is always sequential; with --jobs N the second run fans parallelizable work \
         across N domains, so a pass also proves parallel execution changes nothing.";
    ]
  in
  let exp_id =
    let doc = "Experiment id to verify (one id, not 'all')." in
    Arg.(required & pos 0 (some string) None & info [] ~doc ~docv:"EXPERIMENT")
  in
  let buf =
    let doc = "Trace ring-buffer capacity in events for each run." in
    Arg.(value & opt int 1_048_576 & info [ "buf" ] ~doc ~docv:"EVENTS")
  in
  let term =
    Term.(
      ret
        (const (fun quick seed jobs store buf id ->
             with_store store (fun () -> run_verify (cfg_of quick seed) buf jobs id))
        $ quick $ seed $ jobs $ store_arg $ buf $ exp_id))
  in
  Cmd.v (Cmd.info "verify-determinism" ~doc ~man) term

let doc = "Reproduce the experiments of 'Soft Timers' (Aron & Druschel, SOSP'99)"

let man =
  [
    `S Manpage.s_description;
    `P
      "Each experiment regenerates one table or figure of the paper on the simulated \
       testbed and prints measured values next to the paper's.  The $(b,trace) \
       subcommand additionally exports a Chrome trace_event JSON of everything the \
       simulator did.";
    `S "EXPERIMENTS";
  ]
  @ List.map (fun (n, d, _) -> `P (Printf.sprintf "$(b,%s): %s" n d)) experiments

let default =
  Term.(
    ret
      (const (fun quick seed jobs store sanitize mem id ->
           Runner.set_default_jobs jobs;
           let cfg = cfg_of quick seed in
           with_store store (fun () ->
               with_mem mem (fun () ->
                   if id = "all" then run_all cfg sanitize else run_one cfg sanitize id)))
      $ quick $ seed $ jobs $ store_arg $ sanitize $ mem_flag $ id))

let group_cmd =
  Cmd.group ~default
    (Cmd.info "softtimers-cli" ~version:"1.0.0" ~doc ~man)
    [ trace_cmd; profile_cmd; verify_cmd; stats_cmd; whylate_cmd; mem_cmd ]

(* [Cmd.group ~default] rejects any first positional that is not a
   subcommand name, which would break the documented
   `softtimers-cli table3` form; route experiment-id invocations to a
   plain command instead, and everything else (no positional, flags
   only, `trace ...`) through the group. *)
let plain_cmd = Cmd.v (Cmd.info "softtimers-cli" ~version:"1.0.0" ~doc ~man) default

let () =
  let argv = Sys.argv in
  (* Find the first true positional.  Separated-value flags consume the
     following argv slot, so `--seed 9 table3` must skip the "9" — and a
     seed value must never be mistaken for a subcommand name. *)
  let value_flags =
    [
      "--seed"; "-s"; "--out"; "-o"; "--buf"; "--jobs"; "-j"; "--window"; "--max-windows";
      "--store"; "--worst"; "--check-budget"; "--top";
    ]
  in
  let first_positional =
    let rec go i =
      if i >= Array.length argv then None
      else if List.mem argv.(i) value_flags then go (i + 2)
      else if String.length argv.(i) > 0 && argv.(i).[0] = '-' then go (i + 1)
      else Some argv.(i)
    in
    go 1
  in
  let is_subcommand =
    match first_positional with
    | Some ("trace" | "profile" | "verify-determinism" | "stats" | "why-late" | "mem") -> true
    | Some _ -> false
    | None -> false
  in
  let cmd = if is_subcommand || first_positional = None then group_cmd else plain_cmd in
  exit (Cmd.eval cmd)
