(* Command-line front end: run any of the paper's experiments by id. *)

let experiments =
  [
    ("fig1", "Figure 1: soft-timer firing-window bounds", Exp_fig1.run);
    ("fig2-3", "Figures 2/3: hardware-timer base overhead", Exp_hw_overhead.run);
    ("soft-base", "Section 5.2: soft-timer base overhead", Exp_soft_base.run);
    ("table1", "Table 1 / Figure 4: trigger-interval distributions", Exp_trigger_dist.run);
    ("fig5", "Figure 5: windowed trigger-interval medians", Exp_trigger_windows.run);
    ("table2", "Table 2 / Figure 6: trigger sources", Exp_trigger_sources.run);
    ("table3", "Table 3: rate-based clocking overhead", Exp_rbc_overhead.run);
    ("table4-5", "Tables 4/5: rate-clocked transmission process", Exp_rbc_process.run);
    ("table6-7", "Tables 6/7: WAN transfer performance", Exp_rbc_wan.run);
    ("table8", "Table 8: network polling throughput", Exp_polling.run);
    ( "livelock",
      "Extension: receiver livelock (interrupts vs MR hybrid vs soft polling)",
      Exp_livelock.run );
    ( "sensitivity",
      "Extension: sensitivity of the headline results to the cost model",
      Exp_sensitivity.run );
  ]

let run_one cfg id =
  match List.find_opt (fun (name, _, _) -> name = id) experiments with
  | Some (_, _, f) ->
    print_string (f cfg);
    `Ok ()
  | None ->
    `Error
      ( false,
        Printf.sprintf "unknown experiment %S; known: %s" id
          (String.concat ", " (List.map (fun (n, _, _) -> n) experiments)) )

let run_all cfg =
  List.iter
    (fun (_, _, f) ->
      print_string (f cfg);
      print_newline ())
    experiments;
  `Ok ()

(* Run one experiment with the tracing/metrics layer armed, then export
   the ring buffer as Chrome trace_event JSON (or CSV). *)
let run_trace cfg id out csv buf metrics =
  match List.find_opt (fun (name, _, _) -> name = id) experiments with
  | None ->
    `Error
      ( false,
        Printf.sprintf "unknown experiment %S; known: %s" id
          (String.concat ", " (List.map (fun (n, _, _) -> n) experiments)) )
  | Some _ when buf <= 0 -> `Error (false, "--buf must be positive")
  | Some _ when (try close_out (open_out out); false with Sys_error _ -> true) ->
    (* Fail on an unwritable --out before spending time simulating. *)
    `Error (false, Printf.sprintf "cannot write trace output %S" out)
  | Some (_, _, f) ->
    let tr = Trace.create ~capacity:buf () in
    Metrics.reset Metrics.default;
    Metrics.set_sampling true;
    Trace.install tr;
    let output = f cfg in
    Trace.uninstall ();
    Metrics.set_sampling false;
    print_string output;
    let as_csv = csv || Filename.check_suffix out ".csv" in
    if as_csv then Trace_export.write_csv tr out else Trace_export.write_chrome_json tr out;
    Printf.printf "\ntrace: %d events captured (%d overwritten) -> %s (%s)\n" (Trace.length tr)
      (Trace.dropped tr) out
      (if as_csv then "csv" else "chrome trace_event json; open in chrome://tracing or Perfetto");
    if metrics then begin
      print_newline ();
      print_string (Metrics.dump Metrics.default)
    end;
    `Ok ()

open Cmdliner

let quick =
  let doc = "Short runs (noisier, ~10x faster)." in
  Arg.(value & flag & info [ "quick"; "q" ] ~doc)

let seed =
  let doc = "Simulation seed (runs are deterministic per seed)." in
  Arg.(value & opt int 7 & info [ "seed"; "s" ] ~doc ~docv:"SEED")

let id =
  let doc = "Experiment id, or 'all'." in
  Arg.(value & pos 0 string "all" & info [] ~doc ~docv:"EXPERIMENT")

let cfg_of quick seed = { Exp_config.quick; seed }

let trace_cmd =
  let doc = "Run one experiment with tracing enabled and export the event trace" in
  let man =
    [
      `S Manpage.s_description;
      `P
        "Arms the simulator-wide tracing layer (lib/obs), runs the given experiment, and \
         writes the captured events to $(b,--out).  The default format is Chrome \
         trace_event JSON, loadable in chrome://tracing or https://ui.perfetto.dev; pass \
         $(b,--csv) (or an .csv output path) for one event per line instead.";
    ]
  in
  let exp_id =
    let doc = "Experiment id to trace (one id, not 'all')." in
    Arg.(required & pos 0 (some string) None & info [] ~doc ~docv:"EXPERIMENT")
  in
  let out =
    let doc = "Output file for the exported trace." in
    Arg.(value & opt string "trace.json" & info [ "out"; "o" ] ~doc ~docv:"FILE")
  in
  let csv =
    let doc = "Export CSV instead of Chrome trace_event JSON." in
    Arg.(value & flag & info [ "csv" ] ~doc)
  in
  let buf =
    let doc = "Trace ring-buffer capacity in events; the oldest events are overwritten \
               once it fills." in
    Arg.(value & opt int 1_048_576 & info [ "buf" ] ~doc ~docv:"EVENTS")
  in
  let metrics =
    let doc = "Also dump the metrics registry after the run." in
    Arg.(value & flag & info [ "metrics" ] ~doc)
  in
  let term =
    Term.(
      ret
        (const (fun quick seed id out csv buf metrics ->
             run_trace (cfg_of quick seed) id out csv buf metrics)
        $ quick $ seed $ exp_id $ out $ csv $ buf $ metrics))
  in
  Cmd.v (Cmd.info "trace" ~doc ~man) term

let doc = "Reproduce the experiments of 'Soft Timers' (Aron & Druschel, SOSP'99)"

let man =
  [
    `S Manpage.s_description;
    `P
      "Each experiment regenerates one table or figure of the paper on the simulated \
       testbed and prints measured values next to the paper's.  The $(b,trace) \
       subcommand additionally exports a Chrome trace_event JSON of everything the \
       simulator did.";
    `S "EXPERIMENTS";
  ]
  @ List.map (fun (n, d, _) -> `P (Printf.sprintf "$(b,%s): %s" n d)) experiments

let default =
  Term.(
    ret
      (const (fun quick seed id ->
           let cfg = cfg_of quick seed in
           if id = "all" then run_all cfg else run_one cfg id)
      $ quick $ seed $ id))

let group_cmd =
  Cmd.group ~default (Cmd.info "softtimers-cli" ~version:"1.0.0" ~doc ~man) [ trace_cmd ]

(* [Cmd.group ~default] rejects any first positional that is not a
   subcommand name, which would break the documented
   `softtimers-cli table3` form; route experiment-id invocations to a
   plain command instead, and everything else (no positional, flags
   only, `trace ...`) through the group. *)
let plain_cmd = Cmd.v (Cmd.info "softtimers-cli" ~version:"1.0.0" ~doc ~man) default

let () =
  let argv = Sys.argv in
  let has_trace = Array.exists (fun a -> a = "trace") argv in
  let first_positional =
    let rec go i =
      if i >= Array.length argv then None
      else if String.length argv.(i) > 0 && argv.(i).[0] = '-' then go (i + 1)
      else Some argv.(i)
    in
    go 1
  in
  let cmd = if has_trace || first_positional = None then group_cmd else plain_cmd in
  exit (Cmd.eval cmd)
