(* Tests for the million-flow pacing stack: the packet freelist pool,
   the session arena, the flow-id-indexed Rate_clock.Pool, the
   Paced_sender.Fleet wiring, and the memory-regression guarantees
   (cohort-shared histograms, bounded per-flow state). *)

let us = Time_ns.of_us

(* ------------------------------------------------------------------ *)
(* Packet.Pool *)

let test_packet_pool_reuse () =
  let p = Packet.Pool.create () in
  let c1 = Packet.Pool.acquire p ~size_bytes:1514 ~meta:"a" ~born:Time_ns.zero in
  Alcotest.(check int) "live" 1 (Packet.Pool.live p);
  Alcotest.(check int) "created" 1 (Packet.Pool.created p);
  Packet.Pool.release p c1;
  Alcotest.(check int) "free after release" 1 (Packet.Pool.free p);
  let c2 = Packet.Pool.acquire p ~size_bytes:40 ~meta:"b" ~born:(us 5.0) in
  Alcotest.(check bool) "recycled the same cell" true (c1 == c2);
  Alcotest.(check int) "no new boxing" 1 (Packet.Pool.created p);
  Alcotest.(check int) "reuses" 1 (Packet.Pool.reuses p);
  Alcotest.(check string) "meta overwritten" "b" c2.Packet.Pool.meta;
  Alcotest.(check int) "size overwritten" 40 c2.Packet.Pool.size_bytes

let test_packet_pool_guards () =
  let p = Packet.Pool.create () in
  let c = Packet.Pool.acquire p ~size_bytes:100 ~meta:0 ~born:Time_ns.zero in
  Packet.Pool.release p c;
  Alcotest.check_raises "double release"
    (Invalid_argument "Packet.Pool.release: cell is not live") (fun () ->
      Packet.Pool.release p c);
  Alcotest.check_raises "negative size"
    (Invalid_argument "Packet.Pool.acquire: negative size") (fun () ->
      ignore (Packet.Pool.acquire p ~size_bytes:(-1) ~meta:0 ~born:Time_ns.zero))

let test_packet_pool_to_packet () =
  let p = Packet.Pool.create () in
  let c = Packet.Pool.acquire p ~size_bytes:1514 ~meta:42 ~born:(us 3.0) in
  let pkt = Packet.Pool.to_packet c in
  Alcotest.(check int) "size" 1514 pkt.Packet.size_bytes;
  Alcotest.(check int) "meta" 42 pkt.Packet.meta;
  Alcotest.(check int) "bits match" (Packet.bits pkt) (Packet.Pool.bits c)

(* ------------------------------------------------------------------ *)
(* Session_arena *)

let test_arena_lifecycle () =
  let a = Session_arena.create ~initial:2 () in
  let s0 = Session_arena.acquire a ~total_segments:3 in
  let s1 = Session_arena.acquire a ~total_segments:max_int in
  let s2 = Session_arena.acquire a ~total_segments:1 in
  Alcotest.(check (list int)) "dense ids" [ 0; 1; 2 ] [ s0; s1; s2 ];
  Alcotest.(check int) "live" 3 (Session_arena.live a);
  (* s0: send to completion, then refuse. *)
  Alcotest.(check bool) "send 1" true (Session_arena.on_send a s0);
  Alcotest.(check bool) "send 2" true (Session_arena.on_send a s0);
  Alcotest.(check int) "remaining" 1 (Session_arena.remaining a s0);
  Alcotest.(check bool) "send 3" true (Session_arena.on_send a s0);
  Alcotest.(check bool) "complete" true (Session_arena.complete a s0);
  Alcotest.(check bool) "refuses past total" false (Session_arena.on_send a s0);
  Alcotest.(check int) "sent stays 3" 3 (Session_arena.sent a s0);
  Alcotest.(check int) "completed" 1 (Session_arena.completed a);
  (* Unbounded session never completes. *)
  for _ = 1 to 100 do
    Alcotest.(check bool) "unbounded sends" true (Session_arena.on_send a s1)
  done;
  Alcotest.(check bool) "unbounded not complete" false (Session_arena.complete a s1);
  (* Release parks the slot; the next acquire reuses it. *)
  Session_arena.release a s2;
  Alcotest.(check bool) "released not live" false (Session_arena.live_session a s2);
  Alcotest.(check bool) "released refuses sends" false (Session_arena.on_send a s2);
  let s3 = Session_arena.acquire a ~total_segments:5 in
  Alcotest.(check int) "slot recycled" s2 s3;
  Alcotest.(check int) "high-water slots unchanged" 3 (Session_arena.slots a);
  Alcotest.check_raises "double release"
    (Invalid_argument "Session_arena.release: session is not live") (fun () ->
      Session_arena.release a s2;
      Session_arena.release a s2)

let test_arena_note_sends () =
  let a = Session_arena.create () in
  let s = Session_arena.acquire a ~total_segments:10 in
  Session_arena.note_sends a s 4;
  Alcotest.(check int) "batched sent" 4 (Session_arena.sent a s);
  Alcotest.(check int) "no completion yet" 0 (Session_arena.completed a);
  (* Clamped at the total, completion counted once. *)
  Session_arena.note_sends a s 100;
  Alcotest.(check int) "clamped" 10 (Session_arena.sent a s);
  Alcotest.(check int) "completed once" 1 (Session_arena.completed a);
  Session_arena.note_sends a s 1;
  Alcotest.(check int) "still once" 1 (Session_arena.completed a);
  Alcotest.(check int) "arena sends total" 10 (Session_arena.sends a)

(* ------------------------------------------------------------------ *)
(* Rate_clock.Pool *)

module Pool_pw = Rate_clock.Pool (Pacing_wheel)
module Pool_eq = Rate_clock.Pool (Eventq_store)

let drive_pool check ~tick_us ~ticks =
  for s = 1 to ticks do
    ignore (check ~now:(Time_ns.mul (us tick_us) s) ~limit:max_int : Fire_outcome.t)
  done

let test_pool_paces_at_target () =
  (* 10 flows at 100us over 100ms of 10us checks: ~1000 sends each,
     independent of the store driving them. *)
  let sends = Array.make 10 0 in
  let p =
    Pool_pw.create
      ~intervals:(Hdr.create ~lowest:0.01 ())
      ~tick:(us 10.0)
      ~send:(fun fid ->
        sends.(fid) <- sends.(fid) + 1;
        true)
      ()
  in
  for _ = 0 to 9 do
    ignore (Pool_pw.add p ~target_interval:(us 100.0) ~min_interval:(us 10.0) : int)
  done;
  for fid = 0 to 9 do
    Pool_pw.kick p fid ~now:Time_ns.zero
  done;
  Alcotest.(check int) "all active" 10 (Pool_pw.active p);
  drive_pool (Pool_pw.check p) ~tick_us:10.0 ~ticks:10_000;
  Array.iteri
    (fun fid n ->
      Alcotest.(check bool)
        (Printf.sprintf "flow %d ~1000 sends (got %d)" fid n)
        true
        (abs (n - 1000) <= 2);
      Alcotest.(check int) "flow_sends agrees" n (Pool_pw.flow_sends p fid))
    sends;
  Alcotest.(check int) "pool total" (Array.fold_left ( + ) 0 sends) (Pool_pw.sends p)

let test_pool_rate_survives_coarse_store () =
  (* The §4.1 rate-based clocking claim, store edition: a wheel with
     100us buckets fires a 103us-target flow up to a bucket late, but
     the long-run rate still converges on the target, because each next
     deadline comes from the train's ideal schedule rather than the
     late fire time. *)
  let sends = ref 0 in
  let p =
    Pool_pw.create
      ~intervals:(Hdr.create ~lowest:0.01 ())
      ~tick:(us 100.0) (* buckets 10x coarser than the check cadence *)
      ~send:(fun _ ->
        incr sends;
        true)
      ()
  in
  ignore (Pool_pw.add p ~target_interval:(us 103.0) ~min_interval:(us 10.0) : int);
  Pool_pw.kick p 0 ~now:Time_ns.zero;
  drive_pool (Pool_pw.check p) ~tick_us:10.0 ~ticks:10_000;
  (* 100ms at one send per 103us target. *)
  let expected = 100_000.0 /. 103.0 in
  Alcotest.(check bool)
    (Printf.sprintf "~%.0f sends despite 100us buckets (got %d)" expected !sends)
    true
    (Float.abs (float_of_int !sends -. expected) <= 30.0);
  Alcotest.(check bool) "catch-ups happened" true (Pool_pw.catch_ups p > 0)

let test_pool_stop_and_train_end () =
  (* Driven over the exact event-queue store for cross-store coverage
     of the pool itself. *)
  let live = ref true in
  let p =
    Pool_eq.create
      ~intervals:(Hdr.create ~lowest:0.01 ())
      ~tick:(us 10.0)
      ~send:(fun _ -> !live)
      ()
  in
  ignore (Pool_eq.add p ~target_interval:(us 50.0) ~min_interval:(us 10.0) : int);
  Pool_eq.kick p 0 ~now:Time_ns.zero;
  drive_pool (Pool_eq.check p) ~tick_us:10.0 ~ticks:100;
  let before = Pool_eq.flow_sends p 0 in
  Alcotest.(check bool) "sending" true (before > 0);
  (* stop cancels the pending fire outright. *)
  Pool_eq.stop p 0;
  Alcotest.(check bool) "inactive" false (Pool_eq.flow_active p 0);
  Alcotest.(check int) "store drained" 0 (Pool_eq.store_pending p);
  drive_pool (Pool_eq.check p) ~tick_us:10.0 ~ticks:100;
  Alcotest.(check int) "no sends while stopped" before (Pool_eq.flow_sends p 0);
  (* kick restarts a fresh train; a refusing send ends it by itself. *)
  Pool_eq.kick p 0 ~now:(us 2_000.0);
  live := false;
  drive_pool (Pool_eq.check p) ~tick_us:10.0 ~ticks:300;
  Alcotest.(check bool) "train ended itself" false (Pool_eq.flow_active p 0);
  Alcotest.(check int) "nothing pending" 0 (Pool_eq.store_pending p)

let test_pool_user_word () =
  let p =
    Pool_pw.create
      ~intervals:(Hdr.create ~lowest:0.01 ())
      ~tick:(us 10.0)
      ~send:(fun _ -> true)
      ()
  in
  let fid = Pool_pw.add p ~target_interval:(us 50.0) ~min_interval:(us 10.0) in
  Alcotest.(check int) "scratch word starts 0" 0 (Pool_pw.user p fid);
  Pool_pw.set_user p fid 1234;
  Pool_pw.kick p fid ~now:Time_ns.zero;
  drive_pool (Pool_pw.check p) ~tick_us:10.0 ~ticks:50;
  Alcotest.(check int) "scratch survives pacing" 1234 (Pool_pw.user p fid)

let test_pool_add_validation () =
  let p =
    Pool_pw.create
      ~intervals:(Hdr.create ~lowest:0.01 ())
      ~tick:(us 10.0)
      ~send:(fun _ -> true)
      ()
  in
  Alcotest.check_raises "min > target"
    (Invalid_argument "Rate_clock.Pool.add: need 0 < min_interval <= target_interval")
    (fun () ->
      ignore (Pool_pw.add p ~target_interval:(us 10.0) ~min_interval:(us 20.0) : int));
  Alcotest.check_raises "zero min"
    (Invalid_argument "Rate_clock.Pool.add: need 0 < min_interval <= target_interval")
    (fun () ->
      ignore (Pool_pw.add p ~target_interval:(us 10.0) ~min_interval:Time_ns.zero : int))

(* ------------------------------------------------------------------ *)
(* Paced_sender.Fleet *)

module Fleet_pw = Paced_sender.Fleet (Pacing_wheel)

let test_fleet_transfers_complete () =
  let transmitted = Hashtbl.create 64 in
  let fleet =
    Fleet_pw.create
      ~intervals:(Hdr.create ~lowest:0.01 ())
      ~tick:(us 10.0)
      ~transmit:(fun fid c ->
        (* meta carries the segment seq; record per-flow order. *)
        let seqs = try Hashtbl.find transmitted fid with Not_found -> [] in
        Hashtbl.replace transmitted fid (c.Packet.Pool.meta :: seqs))
      ()
  in
  let n = 50 and segs = 5 in
  for i = 0 to n - 1 do
    let fid =
      Fleet_pw.add fleet ~total_segments:segs
        ~target_interval:(us (50.0 +. float_of_int (i mod 7)))
        ~min_interval:(us 10.0)
    in
    Fleet_pw.start fleet fid ~now:(Time_ns.mul (us 10.0) (i mod 11))
  done;
  drive_pool (Fleet_pw.check fleet) ~tick_us:10.0 ~ticks:200;
  Alcotest.(check int) "all transfers complete" n (Fleet_pw.completed fleet);
  Alcotest.(check int) "no active flows" 0 (Fleet_pw.active fleet);
  Alcotest.(check int) "store drained" 0 (Fleet_pw.store_pending fleet);
  Alcotest.(check int) "total sends" (n * segs) (Fleet_pw.sends fleet);
  for fid = 0 to n - 1 do
    Alcotest.(check bool) "complete" true (Fleet_pw.complete fleet fid);
    Alcotest.(check int) "sent all" segs (Fleet_pw.sent fleet fid);
    Alcotest.(check (list int))
      (Printf.sprintf "flow %d segment order" fid)
      [ 0; 1; 2; 3; 4 ]
      (List.rev (Hashtbl.find transmitted fid))
  done

let test_fleet_packet_pool_warm () =
  (* The allocation-free steady-state witness: once every flow has been
     through one transmission, the packet pool stops boxing cells. *)
  let fleet =
    Fleet_pw.create
      ~intervals:(Hdr.create ~lowest:0.01 ())
      ~tick:(us 10.0) ~transmit:(fun _ _ -> ()) ()
  in
  for i = 0 to 99 do
    let fid =
      Fleet_pw.add fleet ~total_segments:max_int ~target_interval:(us 100.0)
        ~min_interval:(us 10.0)
    in
    Fleet_pw.start fleet fid ~now:(Time_ns.mul (us 10.0) (i mod 13))
  done;
  drive_pool (Fleet_pw.check fleet) ~tick_us:10.0 ~ticks:500;
  let created = Fleet_pw.packet_cells_created fleet in
  (* Transmissions are dispatched one at a time, so a single cell
     serves the whole fleet. *)
  Alcotest.(check int) "one cell serves the fleet" 1 created;
  let sends0 = Fleet_pw.sends fleet in
  for s = 501 to 1000 do
    ignore (Fleet_pw.check fleet ~now:(Time_ns.mul (us 10.0) s) ~limit:max_int
            : Fire_outcome.t)
  done;
  Alcotest.(check bool) "still pacing" true (Fleet_pw.sends fleet > sends0);
  Alcotest.(check int) "pool warm: no new cells" created
    (Fleet_pw.packet_cells_created fleet);
  Alcotest.(check int) "every acquire after the first reused"
    (Fleet_pw.sends fleet - created)
    (Fleet_pw.packet_reuses fleet)

(* ------------------------------------------------------------------ *)
(* Memory regressions *)

let test_default_clocks_share_cohort_hdr () =
  let e = Engine.create () in
  let m = Machine.create e in
  let st = Softtimer.attach m in
  let mk ?intervals () =
    Rate_clock.create ?intervals st ~target_interval:(us 50.0) ~min_interval:(us 10.0)
      ~send:(fun _ -> true)
      ()
  in
  let c1 = mk () and c2 = mk () in
  Alcotest.(check bool) "default clocks share one Hdr" true
    (Rate_clock.intervals c1 == Rate_clock.intervals c2);
  let private_clock = mk ~intervals:(Hdr.create ~lowest:0.01 ()) () in
  Alcotest.(check bool) "opt-in keeps a private Hdr" false
    (Rate_clock.intervals private_clock == Rate_clock.intervals c1);
  (* The regression this guards: per-clock marginal memory must not
     include a histogram.  An Hdr with a few recorded values is ~KB;
     a clock record is a few dozen words. *)
  Hdr.record (Rate_clock.intervals c1) 50.0;
  let words l = Obj.reachable_words (Obj.repr l) in
  let base = words [ mk () ] in
  let ten = words [ mk (); mk (); mk (); mk (); mk (); mk (); mk (); mk (); mk (); mk () ] in
  let marginal = (ten - base) / 9 in
  Alcotest.(check bool)
    (Printf.sprintf "marginal clock is histogram-free (%d words)" marginal)
    true (marginal < 64)

let test_pool_memory_per_flow_bounded () =
  let flows = 10_000 in
  let p =
    Pool_pw.create
      ~intervals:(Hdr.create ~lowest:0.01 ())
      ~tick:(us 10.0)
      ~send:(fun _ -> true)
      ()
  in
  for _ = 1 to flows do
    ignore (Pool_pw.add p ~target_interval:(us 100.0) ~min_interval:(us 10.0) : int)
  done;
  for fid = 0 to flows - 1 do
    Pool_pw.kick p fid ~now:(Time_ns.mul (us 10.0) (fid mod 101))
  done;
  drive_pool (Pool_pw.check p) ~tick_us:10.0 ~ticks:300;
  let words = Obj.reachable_words (Obj.repr p) in
  let per_flow = words / flows in
  (* Packed rows: 8 words of flow state + ~8 of wheel slot + handle +
     payload + freelists and doubling slack.  The regression guard is
     against reintroducing boxed per-flow records or histograms
     (hundreds of words each). *)
  Alcotest.(check bool)
    (Printf.sprintf "per-flow state bounded (%d words/flow)" per_flow)
    true (per_flow <= 40)

let () =
  Alcotest.run "pacer"
    [
      ( "packet-pool",
        [
          Alcotest.test_case "reuse" `Quick test_packet_pool_reuse;
          Alcotest.test_case "guards" `Quick test_packet_pool_guards;
          Alcotest.test_case "to_packet" `Quick test_packet_pool_to_packet;
        ] );
      ( "session-arena",
        [
          Alcotest.test_case "lifecycle" `Quick test_arena_lifecycle;
          Alcotest.test_case "note_sends" `Quick test_arena_note_sends;
        ] );
      ( "rate-clock-pool",
        [
          Alcotest.test_case "paces at target" `Quick test_pool_paces_at_target;
          Alcotest.test_case "rate survives coarse store" `Quick
            test_pool_rate_survives_coarse_store;
          Alcotest.test_case "stop and train end" `Quick test_pool_stop_and_train_end;
          Alcotest.test_case "user scratch word" `Quick test_pool_user_word;
          Alcotest.test_case "add validation" `Quick test_pool_add_validation;
        ] );
      ( "fleet",
        [
          Alcotest.test_case "transfers complete" `Quick test_fleet_transfers_complete;
          Alcotest.test_case "packet pool warm" `Quick test_fleet_packet_pool_warm;
        ] );
      ( "memory",
        [
          Alcotest.test_case "cohort hdr shared" `Quick test_default_clocks_share_cohort_hdr;
          Alcotest.test_case "pool per-flow bounded" `Quick test_pool_memory_per_flow_bounded;
        ] );
    ]
