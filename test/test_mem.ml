(* Memory-observatory tests: the analytic Timer_store.S.words contract
   against the runtime's own reachability walk, the census conservation
   semantics (live sources vs snapshots), the Bench_mem accounting
   helper, and the determinism contract — arming the observatory must
   leave experiment output byte-identical at any jobs count. *)

let us = Time_ns.of_us
let cfg = Exp_config.quick

(* ------------------------------------------------------------------ *)
(* Analytic words vs Obj.reachable_words.

   [words] is computed from the store's own structure (array capacities,
   per-node costs) rather than a heap walk, so it stays cheap enough for
   bench hot paths.  It must still track reality: drive each store to a
   mixed live/cancelled population and require the analytic count to be
   within 30% of the words the GC can actually reach from the root.
   (Measured ratios are 0.93..1.00 across all eight stores; 30% leaves
   room for allocator-policy differences, not for a broken formula.) *)

let test_words_vs_reachable () =
  List.iter
    (fun (module M : Timer_store.S) ->
      let t = M.create ~tick:(us 10.0) () in
      let handles =
        Array.init 2000 (fun i ->
            M.schedule t ~at:(us (10.0 +. float_of_int (i * 37 mod 50_000))) i)
      in
      Array.iteri (fun i h -> if i mod 5 = 0 then M.cancel t h) handles;
      let analytic = float_of_int (M.words t) in
      let reachable = float_of_int (Obj.reachable_words (Obj.repr t)) in
      let ratio = analytic /. reachable in
      Alcotest.(check bool)
        (Printf.sprintf "%s: analytic %g within 30%% of reachable %g (ratio %.3f)" M.name
           analytic reachable ratio)
        true
        (ratio > 0.7 && ratio < 1.3);
      (* The analytic count must also dominate the live population: a
         store cannot hold n pending timers in fewer than n words. *)
      Alcotest.(check bool)
        (Printf.sprintf "%s: words %g >= pending %d" M.name analytic (M.pending t))
        true
        (analytic >= float_of_int (M.pending t)))
    Store_registry.all

(* ------------------------------------------------------------------ *)
(* Census conservation semantics: [register]ed live sources count
   toward the conservation invariant (attributed live <= GC live) and
   must hold it; [note]d snapshots are reporting-only — the measured
   memory may be dead by report time, so even an absurd note must not
   trip the invariant. *)

let test_census_conservation () =
  Memstats.reset_census ();
  Fun.protect ~finally:Memstats.reset_census (fun () ->
      let ballast = Array.make 4096 0 in
      Memstats.register
        ~path:[ "test"; "ballast" ]
        (fun () -> Array.length ballast + 1);
      Alcotest.(check bool) "live source conserves" true (Memstats.conservation_ok ());
      Alcotest.(check int) "live attribution = provider value" 4097
        (Memstats.live_attributed_words ());
      Memstats.note ~path:[ "test"; "snapshot" ] 1_000_000_000_000;
      Alcotest.(check bool) "note excluded from conservation" true
        (Memstats.conservation_ok ());
      Alcotest.(check int) "note excluded from live attribution" 4097
        (Memstats.live_attributed_words ());
      Alcotest.(check bool) "note included in attributed total" true
        (Memstats.attributed_words () > 1_000_000_000_000))

(* ------------------------------------------------------------------ *)
(* Bench_mem: deltas reflect the section's allocation and the result
   passes through untouched.  On OCaml 5 [Gc.quick_stat] counters only
   refresh at collection boundaries, so the section allocates several
   times the minor heap (~2M words against the 256k default) to
   guarantee the delta is visible. *)

let test_bench_mem_measure () =
  let r, d =
    Bench_mem.measure (fun () ->
        let acc = ref 0 in
        for i = 1 to 100_000 do
          acc := !acc + Array.length (Sys.opaque_identity (Array.make 18 i))
        done;
        !acc)
  in
  Alcotest.(check int) "result passes through" 1_800_000 r;
  Alcotest.(check bool) "minor delta sees the section's allocation" true
    (d.Bench_mem.d_minor_words >= 500_000.0);
  Alcotest.(check bool) "major alloc is non-negative" true (Bench_mem.major_alloc d >= 0.0);
  Alcotest.(check bool) "heap high-water >= heap size" true
    (d.Bench_mem.d_top_heap_words >= d.Bench_mem.d_heap_words)

(* ------------------------------------------------------------------ *)
(* Determinism: arming the whole observatory (census registration, a
   Memprof.start attempt, heap samples, an attribution context) around
   an experiment must leave its rendered output byte-identical, and so
   must the jobs count — the same contract verify-determinism checks at
   the CLI level for --mem / --jobs. *)

let with_observatory f =
  Memstats.reset_census ();
  Memstats.reset_samples ();
  Memprof.reset ();
  let ballast = Array.make 1024 0 in
  Memstats.register ~path:[ "test"; "ballast" ] (fun () -> Array.length ballast + 1);
  ignore (Memprof.start () : (unit, string) result);
  Memstats.sample ~label:"start";
  Fun.protect
    ~finally:(fun () ->
      Memprof.stop ();
      Memstats.reset_census ();
      Memstats.reset_samples ())
    (fun () ->
      let r = Memprof.with_context [ "test"; "sensitivity" ] f in
      Memstats.sample ~label:"end";
      r)

let test_mem_output_invariance () =
  let saved = Runner.default_jobs () in
  Fun.protect
    ~finally:(fun () -> Runner.set_default_jobs saved)
    (fun () ->
      let run ~jobs ~mem =
        Runner.set_default_jobs jobs;
        if mem then with_observatory (fun () -> Exp_sensitivity.run cfg)
        else Exp_sensitivity.run cfg
      in
      let want = run ~jobs:1 ~mem:false in
      Alcotest.(check string) "observatory off/on, jobs 1" want (run ~jobs:1 ~mem:true);
      Alcotest.(check string) "observatory off, jobs 4" want (run ~jobs:4 ~mem:false);
      Alcotest.(check string) "observatory on, jobs 4" want (run ~jobs:4 ~mem:true))

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "mem"
    [
      ( "words",
        [ Alcotest.test_case "analytic vs reachable (all stores)" `Quick test_words_vs_reachable ] );
      ( "census",
        [ Alcotest.test_case "conservation: live vs note" `Quick test_census_conservation ] );
      ( "bench_mem", [ Alcotest.test_case "measure deltas" `Quick test_bench_mem_measure ] );
      ( "determinism",
        [
          Alcotest.test_case "byte-identical with --mem at jobs 1 and 4" `Quick
            test_mem_output_invariance;
        ] );
    ]
