(* Tests for the runtime invariant sanitizer (lib/check) and the
   replay-diff trace digest. *)

let us = Time_ns.of_us

(* ------------------------------------------------------------------ *)
(* Injected violations: each invariant must trip on a bad history. *)

let test_early_fire_caught () =
  let s = Sanitizer.create () in
  (* A soft timer firing 3us *before* its deadline — the injected bug. *)
  let due = us 10.0 and at = us 7.0 in
  Sanitizer.observe s ~at (Trace.Soft_fire { id = 0; due; delay = Time_ns.(at - due) });
  Alcotest.(check int) "one violation" 1 (Sanitizer.violation_count s);
  match Sanitizer.violations s with
  | [ v ] ->
    Alcotest.(check string) "rule" "EARLY_FIRE" (Sanitizer.rule_name v.Sanitizer.rule)
  | _ -> Alcotest.fail "expected exactly one violation"

let test_early_fire_fail_fast_raises () =
  let s = Sanitizer.create ~fail_fast:true () in
  let due = us 10.0 and at = us 7.0 in
  Alcotest.(check bool) "raises" true
    (try
       Sanitizer.observe s ~at (Trace.Soft_fire { id = 0; due; delay = Time_ns.(at - due) });
       false
     with Sanitizer.Violation _ -> true)

let test_on_time_fire_ok () =
  let s = Sanitizer.create () in
  (* Exactly on time, and overdue but within the backup-clock bound
     (default: 2 x 1ms periods). *)
  Sanitizer.observe s ~at:(us 10.0) (Trace.Soft_fire { id = 0; due = us 10.0; delay = 0L });
  Sanitizer.observe s ~at:(us 1800.0)
    (Trace.Soft_fire { id = 0; due = us 300.0; delay = Time_ns.(us 1800.0 - us 300.0) });
  Alcotest.(check int) "no violations" 0 (Sanitizer.violation_count s)

let test_overdue_caught () =
  let s = Sanitizer.create ~hard_clock_hz:1000.0 ~overdue_periods:2.0 () in
  (* Fired 3ms after its deadline: past the 2-period (2ms) bound. *)
  let due = us 100.0 in
  let at = Time_ns.(due + Time_ns.of_ms 3.0) in
  Sanitizer.observe s ~at (Trace.Soft_fire { id = 0; due; delay = Time_ns.(at - due) });
  Alcotest.(check int) "one violation" 1 (Sanitizer.violation_count s);
  match Sanitizer.violations s with
  | [ v ] -> Alcotest.(check string) "rule" "OVERDUE" (Sanitizer.rule_name v.Sanitizer.rule)
  | _ -> Alcotest.fail "expected exactly one violation"

let test_overdue_bound_stretches_with_irq () =
  let s = Sanitizer.create ~hard_clock_hz:1000.0 ~overdue_periods:2.0 () in
  (* A 5ms interrupt dispatch was observed: the bound must absorb it. *)
  Sanitizer.observe s ~at:(us 50.0)
    (Trace.Irq { line = "slow"; cpu = 0; dur = Time_ns.of_ms 5.0 });
  let due = us 100.0 in
  let at = Time_ns.(due + Time_ns.of_ms 6.0) in
  Sanitizer.observe s ~at (Trace.Soft_fire { id = 0; due; delay = Time_ns.(at - due) });
  Alcotest.(check int) "within stretched bound" 0 (Sanitizer.violation_count s)

let test_causality_caught () =
  let s = Sanitizer.create () in
  Sanitizer.observe s ~at:(us 100.0) (Trace.Trigger "syscall");
  Sanitizer.observe s ~at:(us 50.0) (Trace.Trigger "trap");
  Alcotest.(check int) "one violation" 1 (Sanitizer.violation_count s);
  match Sanitizer.violations s with
  | [ v ] -> Alcotest.(check string) "rule" "CAUSALITY" (Sanitizer.rule_name v.Sanitizer.rule)
  | _ -> Alcotest.fail "expected exactly one violation"

let test_sim_start_resets_causality () =
  let s = Sanitizer.create () in
  Sanitizer.observe s ~at:(us 100.0) (Trace.Trigger "syscall");
  (* A fresh simulation legitimately restarts the clock at zero. *)
  Sanitizer.observe s ~at:Time_ns.zero (Trace.Mark Trace.sim_start_mark);
  Sanitizer.observe s ~at:(us 1.0) (Trace.Trigger "trap");
  Alcotest.(check int) "no violations" 0 (Sanitizer.violation_count s)

let test_residency_caught () =
  let s = Sanitizer.create () in
  Sanitizer.check_wheel s ~at:(us 1.0) ~resident:2048 ~pending:100 ~slots:512;
  Alcotest.(check int) "one violation" 1 (Sanitizer.violation_count s);
  (match Sanitizer.violations s with
  | [ v ] ->
    Alcotest.(check string) "rule" "WHEEL_RESIDENCY" (Sanitizer.rule_name v.Sanitizer.rule)
  | _ -> Alcotest.fail "expected exactly one violation");
  (* At the bound is fine. *)
  let s2 = Sanitizer.create () in
  Sanitizer.check_wheel s2 ~at:(us 1.0) ~resident:1024 ~pending:100 ~slots:512;
  Alcotest.(check int) "bound itself ok" 0 (Sanitizer.violation_count s2)

let test_counter_decrease_caught () =
  let reg = Metrics.create () in
  let c = Metrics.counter reg "test.monotone" in
  let s = Sanitizer.create ~registry:reg () in
  Metrics.incr ~by:5 c;
  Sanitizer.scan_registry s ~at:(us 1.0);
  Alcotest.(check int) "first scan clean" 0 (Sanitizer.violation_count s);
  Metrics.incr ~by:(-3) c;
  Sanitizer.scan_registry s ~at:(us 2.0);
  Alcotest.(check int) "decrease caught" 1 (Sanitizer.violation_count s);
  match Sanitizer.violations s with
  | [ v ] ->
    Alcotest.(check string) "rule" "COUNTER_MONOTONE" (Sanitizer.rule_name v.Sanitizer.rule)
  | _ -> Alcotest.fail "expected exactly one violation"

let contains ~needle hay =
  let nl = String.length needle and hl = String.length hay in
  let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
  nl = 0 || go 0

let test_report_mentions_rule () =
  let s = Sanitizer.create () in
  let due = us 10.0 and at = us 7.0 in
  Sanitizer.observe s ~at (Trace.Soft_fire { id = 0; due; delay = Time_ns.(at - due) });
  let r = Sanitizer.report s in
  Alcotest.(check bool) "report names the rule" true (contains ~needle:"EARLY_FIRE" r)

(* ------------------------------------------------------------------ *)
(* Tap plumbing and a clean end-to-end run. *)

let test_tap_sees_events_without_ring_buffer () =
  let seen = ref 0 in
  Trace.set_tap (Some (fun ~at:_ _ -> incr seen));
  Alcotest.(check bool) "tap installed" true (Trace.tap_installed ());
  Alcotest.(check bool) "no ring buffer" false (Trace.enabled ());
  Trace.trigger ~at:(us 1.0) "syscall";
  Trace.soft_sched ~at:(us 1.0) ~id:0 ~due:(us 2.0);
  Trace.set_tap None;
  Trace.trigger ~at:(us 3.0) "syscall";
  Alcotest.(check int) "two events seen while tapped" 2 !seen;
  Alcotest.(check bool) "tap removed" false (Trace.tap_installed ())

(* A real machine + soft-timer run under the sanitizer must be clean,
   and the sanitizer must actually have seen the run. *)
let test_end_to_end_clean () =
  let s = Sanitizer.create ~fail_fast:true () in
  Sanitizer.install s;
  Fun.protect
    ~finally:(fun () -> Sanitizer.uninstall s)
    (fun () ->
      let engine = Engine.create () in
      let machine = Machine.create engine in
      let st = Softtimer.attach machine in
      let fired = ref 0 in
      for i = 1 to 100 do
        ignore
          (Softtimer.schedule_after st (us (float_of_int (37 * i))) (fun _ -> incr fired)
            : Softtimer.handle)
      done;
      (* Background work so trigger states occur. *)
      let rec churn n =
        if n > 0 then
          Kernel.syscall machine ~work_us:5.0 (fun _ -> churn (n - 1))
      in
      churn 2000;
      Engine.run_until engine (Time_ns.of_ms 50.0);
      Alcotest.(check bool) "timers fired" true (!fired = 100);
      Alcotest.(check bool) "sanitizer saw events" true (Sanitizer.events_seen s > 100));
  Alcotest.(check int) "clean run" 0 (Sanitizer.violation_count s)

(* The wheel_stats accessor must satisfy the residency bound live. *)
let test_wheel_stats_within_bound () =
  let engine = Engine.create () in
  let machine = Machine.create engine in
  let st = Softtimer.attach machine in
  let handles =
    List.init 200 (fun i ->
        Softtimer.schedule_after st (us (float_of_int (100 + i))) (fun _ -> ()))
  in
  List.iteri (fun i h -> if i mod 2 = 0 then Softtimer.cancel st h) handles;
  let resident, pending, slots = Softtimer.wheel_stats st in
  Alcotest.(check bool) "pending <= resident" true (pending <= resident);
  Alcotest.(check bool) "residency bound" true (resident <= 2 * Stdlib.max pending slots)

(* ------------------------------------------------------------------ *)
(* Trace digest (replay diff). *)

let digest_of_run seed =
  let tr = Trace.create ~capacity:65536 () in
  Trace.install tr;
  Fun.protect
    ~finally:(fun () -> Trace.uninstall ())
    (fun () ->
      let engine = Engine.create () in
      let machine = Machine.create engine in
      let st = Softtimer.attach machine in
      let rng = Prng.create ~seed in
      for _ = 1 to 50 do
        ignore
          (Softtimer.schedule_after st (us (Prng.float_range rng 10.0 5000.0)) (fun _ -> ())
            : Softtimer.handle)
      done;
      let rec churn n =
        if n > 0 then Kernel.syscall machine ~work_us:3.0 (fun _ -> churn (n - 1))
      in
      churn 500;
      Engine.run_until engine (Time_ns.of_ms 20.0);
      Trace_digest.digest tr)

let test_digest_replay_identical () =
  Alcotest.(check int64) "same seed, same digest" (digest_of_run 42) (digest_of_run 42)

let test_digest_differs_across_seeds () =
  Alcotest.(check bool) "different seed, different digest" true
    (not (Int64.equal (digest_of_run 1) (digest_of_run 2)))

let test_digest_sensitive_to_order () =
  let mk evs =
    let tr = Trace.create ~capacity:16 () in
    Trace.install tr;
    List.iter (fun (at, kind) -> Trace.trigger ~at kind) evs;
    Trace.uninstall ();
    Trace_digest.digest tr
  in
  let a = mk [ (us 1.0, "syscall"); (us 1.0, "trap") ] in
  let b = mk [ (us 1.0, "trap"); (us 1.0, "syscall") ] in
  Alcotest.(check bool) "order matters" true (not (Int64.equal a b))

let () =
  Alcotest.run "check"
    [
      ( "sanitizer-invariants",
        [
          Alcotest.test_case "early fire caught" `Quick test_early_fire_caught;
          Alcotest.test_case "fail-fast raises" `Quick test_early_fire_fail_fast_raises;
          Alcotest.test_case "on-time fire ok" `Quick test_on_time_fire_ok;
          Alcotest.test_case "overdue caught" `Quick test_overdue_caught;
          Alcotest.test_case "overdue bound stretches with irq" `Quick
            test_overdue_bound_stretches_with_irq;
          Alcotest.test_case "causality caught" `Quick test_causality_caught;
          Alcotest.test_case "sim.start resets causality" `Quick test_sim_start_resets_causality;
          Alcotest.test_case "wheel residency caught" `Quick test_residency_caught;
          Alcotest.test_case "counter decrease caught" `Quick test_counter_decrease_caught;
          Alcotest.test_case "report names rules" `Quick test_report_mentions_rule;
        ] );
      ( "plumbing",
        [
          Alcotest.test_case "tap without ring buffer" `Quick
            test_tap_sees_events_without_ring_buffer;
          Alcotest.test_case "end-to-end clean run" `Quick test_end_to_end_clean;
          Alcotest.test_case "wheel stats within bound" `Quick test_wheel_stats_within_bound;
        ] );
      ( "trace-digest",
        [
          Alcotest.test_case "replay identical" `Quick test_digest_replay_identical;
          Alcotest.test_case "seeds differ" `Quick test_digest_differs_across_seeds;
          Alcotest.test_case "order sensitive" `Quick test_digest_sensitive_to_order;
        ] );
    ]
