(* Lint fixture: domain-race rules.  Never compiled — parsed by
   tools/lint only. *)

let hits = ref 0

let total = ref 0

let bump x = total := !total + x

let xs = [ 1; 2; 3 ]

(* RACE001: the job closure touches [hits] directly. *)
let direct () = Runner.map (fun x -> hits := !hits + x; !hits) xs

(* RACE002: the named job function reaches [total] transitively. *)
let transitive () = Runner.map (fun x -> bump x; x) xs

(* RACE003: raw domain outside lib/parallel. *)
let rogue () = Domain.spawn (fun () -> ())

(* RACE004: non-atomic read-modify-write on an atomic. *)
let c = Atomic.make 0

let lossy_incr () = Atomic.set c (Atomic.get c + 1)
