(* Lint fixture: suppression forms.  Only the LAST line below may
   appear in lint_fixtures.expected — everything else is allowlisted
   and a finding for it means suppression is broken. *)

(* File-level allow. *)
[@@@lint.allow "DET002"]

let draw () = Random.int 10

(* Node-scoped allow on the offending expression. *)
let[@hot] quiet x = ((x, x) [@lint.allow "ALLOC002"])

(* Binding-level allow covering the whole function body. *)
let[@hot] chatty x = Printf.printf "%d\n" x [@@lint.allow "ALLOC003"]

(* Still reported: proves the file as a whole is not skipped. *)
let wall () = Unix.gettimeofday ()
