(* Lint fixture: determinism rules.  Never compiled — parsed by
   tools/lint only; every violation below must appear in
   lint_fixtures.expected at its file:line. *)

(* Toplevel alias: the lint resolves [R.*] back to [Random.*], so the
   alias must not evade DET002. *)
module R = Random

let wall () = Unix.gettimeofday ()

let draw () = R.int 10

let sneak (x : int) : float = Obj.magic x

let dump tbl = Hashtbl.iter (fun k v -> print_endline (k ^ string_of_int v)) tbl

(* [now] is a time-like name, so the unqualified [<] is DET003. *)
let expired now limit = now < limit
