(* Lint fixture: hot-path allocation rules.  Never compiled — parsed by
   tools/lint only. *)

(* ALLOC002 via the transitive check: [helper] is not annotated but is
   reachable from the [@hot] root below. *)
let helper x = [ x ]

let add3 a b c = a + b + c

let[@hot] mk_pair x = (x, x)

let[@hot] log_it x = Printf.printf "%d\n" x

let[@hot] with_closure x =
  let f y = x + y in
  f 1

let[@hot] partial x = add3 x 1

let[@hot] calls_helper x = helper x

(* Not flagged: a local non-escaping ref compiles to a stack variable
   (Simplif.eliminate_ref). *)
let[@hot] sum_to n =
  let acc = ref 0 in
  for i = 1 to n do
    acc := !acc + i
  done;
  !acc
