(* Tests for the domain-pool runner (lib/parallel): result ordering,
   jobs-count independence, exception propagation, nesting, and the
   trace-merging determinism of [map_sim]. *)

let test_map_preserves_order () =
  let xs = List.init 100 Fun.id in
  let ys = Runner.map ~jobs:4 (fun x -> x * x) xs in
  Alcotest.(check (list int)) "squares in input order" (List.map (fun x -> x * x) xs) ys

let test_map_empty_and_singleton () =
  Alcotest.(check (list int)) "empty" [] (Runner.map ~jobs:4 Fun.id []);
  Alcotest.(check (list int)) "singleton" [ 7 ] (Runner.map ~jobs:4 Fun.id [ 7 ])

let test_map_jobs_independent () =
  (* Each job is a self-contained mini-simulation; every jobs value
     must give the same answer. *)
  let job seed =
    let e = Engine.create () in
    let rng = Prng.create ~seed in
    let acc = ref 0 in
    for i = 1 to 50 do
      ignore
        (Engine.schedule_at e (Int64.of_int (Prng.int rng 1_000)) (fun () -> acc := !acc + i)
          : Engine.handle)
    done;
    Engine.run e;
    (!acc, Engine.now e)
  in
  let xs = List.init 20 Fun.id in
  let seq = Runner.map ~jobs:1 job xs in
  Alcotest.(check bool) "jobs=2 equals jobs=1" true (Runner.map ~jobs:2 job xs = seq);
  Alcotest.(check bool) "jobs=4 equals jobs=1" true (Runner.map ~jobs:4 job xs = seq);
  Alcotest.(check bool) "jobs=16 equals jobs=1" true (Runner.map ~jobs:16 job xs = seq)

exception Boom of int

let test_map_raises_lowest_index () =
  (* Jobs 3 and 7 fail; the lowest-indexed failure must surface. *)
  let f x = if x = 3 || x = 7 then raise (Boom x) else x in
  Alcotest.check_raises "lowest-index exception" (Boom 3) (fun () ->
      ignore (Runner.map ~jobs:4 f (List.init 10 Fun.id) : int list))

let test_map_nested () =
  (* A job that itself maps runs its inner map sequentially — and
     correctly. *)
  let ys =
    Runner.map ~jobs:4
      (fun x -> List.fold_left ( + ) 0 (Runner.map ~jobs:4 (fun y -> (x * 10) + y) [ 1; 2; 3 ]))
      [ 1; 2 ]
  in
  Alcotest.(check (list int)) "nested map results" [ 36; 66 ] ys

let test_default_jobs () =
  Runner.set_default_jobs 3;
  Alcotest.(check int) "explicit default" 3 (Runner.default_jobs ());
  Runner.set_default_jobs 0;
  Alcotest.(check bool) "auto resolves to >= 1" true (Runner.default_jobs () >= 1);
  Runner.set_default_jobs 1;
  Alcotest.check_raises "negative rejected"
    (Invalid_argument "Runner.set_default_jobs: negative job count") (fun () ->
      Runner.set_default_jobs (-1))

(* One traced mini-simulation: emits a deterministic event pattern. *)
let traced_job seed =
  let rng = Prng.create ~seed in
  Trace.sim_start ~at:0L;
  for i = 1 to 40 do
    let at = Int64.of_int ((seed * 10_000) + (i * 17)) in
    Trace.poll ~at ~found:(Prng.int rng 8);
    Trace.mark ~at (Printf.sprintf "job%d.%d" seed i)
  done;
  seed

let capture_events jobs =
  let ring = Trace.create ~capacity:4096 () in
  Trace.install ring;
  Fun.protect ~finally:Trace.uninstall (fun () ->
      let r = Runner.map_sim ~jobs traced_job (List.init 6 Fun.id) in
      (r, Trace.to_list ring, Trace.dropped ring))

let test_map_sim_trace_merge () =
  (* The parent's ring after a parallel map_sim must hold exactly the
     sequential event stream, in order, with equal drop accounting. *)
  let r1, ev1, d1 = capture_events 1 in
  let r4, ev4, d4 = capture_events 4 in
  Alcotest.(check (list int)) "results equal" r1 r4;
  Alcotest.(check int) "dropped equal" d1 d4;
  Alcotest.(check bool) "event streams identical" true (ev1 = ev4);
  Alcotest.(check bool) "stream non-empty" true (ev1 <> [])

let test_map_sim_no_parent_ring () =
  (* Without an installed ring, map_sim is just map. *)
  Trace.uninstall ();
  let r = Runner.map_sim ~jobs:4 (fun x -> x + 1) [ 1; 2; 3 ] in
  Alcotest.(check (list int)) "plain results" [ 2; 3; 4 ] r

let test_map_sim_tap_forces_sequential () =
  (* With a tap installed (the sanitizer case) jobs run in the calling
     domain, so the tap sees every event synchronously. *)
  let seen = ref 0 in
  Trace.set_tap (Some (fun ~at:_ _ -> incr seen));
  Fun.protect
    ~finally:(fun () -> Trace.set_tap None)
    (fun () ->
      let r = Runner.map_sim ~jobs:4 traced_job [ 0; 1; 2 ] in
      Alcotest.(check (list int)) "results" [ 0; 1; 2 ] r;
      (* 3 jobs x (1 sim_start + 40 polls + 40 marks) *)
      Alcotest.(check int) "tap saw every event" (3 * 81) !seen)

(* One traced mini-simulation whose soft-timer events carry full
   attribution coverage: every fire's delay is covered by a cpu_run
   quantum ending at the fire, so the delay audit of the merged stream
   must be conservation-clean and byte-identical at any job count. *)
let audit_job seed =
  Trace.sim_start ~at:0L;
  let rng = Prng.create ~seed in
  for i = 1 to 30 do
    let due = Int64.of_int (i * 1_000) in
    Trace.soft_sched ~at:(Int64.sub due 500L) ~id:i ~due;
    let late = Int64.of_int (Prng.int rng 400) in
    let at = Int64.add due late in
    if Int64.compare late 0L > 0 then
      Trace.cpu_run ~at ~cpu:0 ~klass:(Prng.int rng 6) ~dur:late;
    Trace.soft_fire ~at ~id:i ~due;
    Trace.soft_check ~at ~src:"syscalls" ~scanned:1 ~fired:1
  done;
  seed

let test_map_sim_audit_jobs_independent () =
  let run jobs =
    let ring = Trace.create ~capacity:16_384 () in
    Trace.install ring;
    Fun.protect ~finally:Trace.uninstall (fun () ->
        ignore (Runner.map_sim ~jobs audit_job (List.init 6 Fun.id) : int list);
        let da = Delay_audit.collect ring in
        (Delay_audit.to_json da, Delay_audit.violations da, Delay_audit.late da))
  in
  let j1, v1, l1 = run 1 in
  let j4, v4, _ = run 4 in
  Alcotest.(check int) "no violations (jobs 1)" 0 v1;
  Alcotest.(check int) "no violations (jobs 4)" 0 v4;
  Alcotest.(check bool) "late fires exist" true (l1 > 0);
  Alcotest.(check string) "audit identical at jobs 1 and 4" j1 j4

(* Domain-local Metrics instruments: per-job Local contexts are
   absorbed in input order, so totals are exact (not approximate) at
   any job count. *)
let test_map_metrics_deterministic () =
  let c = Metrics.dcounter Metrics.default "test.parallel.count" in
  let h = Metrics.dhistogram Metrics.default "test.parallel.lat" in
  let job x =
    Metrics.dincr ~by:(x + 1) c;
    Metrics.drecord h (float_of_int (x + 1));
    x
  in
  let run jobs =
    let base = Metrics.dcounter_value c in
    ignore (Runner.map ~jobs job (List.init 32 Fun.id) : int list);
    Metrics.dcounter_value c - base
  in
  let d1 = run 1 in
  let d4 = run 4 in
  Alcotest.(check int) "exact counter total (jobs 1)" (32 * 33 / 2) d1;
  Alcotest.(check int) "exact counter total (jobs 4)" d1 d4;
  Alcotest.(check int) "histogram records all absorbed" 64 (Hdr.count (Metrics.dhistogram_hdr h))

let () =
  Runner.set_default_jobs 1;
  Alcotest.run "parallel"
    [
      ( "map",
        [
          Alcotest.test_case "preserves order" `Quick test_map_preserves_order;
          Alcotest.test_case "empty and singleton" `Quick test_map_empty_and_singleton;
          Alcotest.test_case "results independent of jobs" `Quick test_map_jobs_independent;
          Alcotest.test_case "raises lowest-index exception" `Quick test_map_raises_lowest_index;
          Alcotest.test_case "nested maps" `Quick test_map_nested;
          Alcotest.test_case "default jobs knob" `Quick test_default_jobs;
        ] );
      ( "map_sim",
        [
          Alcotest.test_case "trace merge matches sequential" `Quick test_map_sim_trace_merge;
          Alcotest.test_case "no parent ring" `Quick test_map_sim_no_parent_ring;
          Alcotest.test_case "tap forces sequential" `Quick test_map_sim_tap_forces_sequential;
          Alcotest.test_case "delay audit independent of jobs" `Quick
            test_map_sim_audit_jobs_independent;
          Alcotest.test_case "domain-local metrics deterministic" `Quick
            test_map_metrics_deterministic;
        ] );
    ]
