(* Tests for the domain-pool runner (lib/parallel): result ordering,
   jobs-count independence, exception propagation, nesting, and the
   trace-merging determinism of [map_sim]. *)

let test_map_preserves_order () =
  let xs = List.init 100 Fun.id in
  let ys = Runner.map ~jobs:4 (fun x -> x * x) xs in
  Alcotest.(check (list int)) "squares in input order" (List.map (fun x -> x * x) xs) ys

let test_map_empty_and_singleton () =
  Alcotest.(check (list int)) "empty" [] (Runner.map ~jobs:4 Fun.id []);
  Alcotest.(check (list int)) "singleton" [ 7 ] (Runner.map ~jobs:4 Fun.id [ 7 ])

let test_map_jobs_independent () =
  (* Each job is a self-contained mini-simulation; every jobs value
     must give the same answer. *)
  let job seed =
    let e = Engine.create () in
    let rng = Prng.create ~seed in
    let acc = ref 0 in
    for i = 1 to 50 do
      ignore
        (Engine.schedule_at e (Int64.of_int (Prng.int rng 1_000)) (fun () -> acc := !acc + i)
          : Engine.handle)
    done;
    Engine.run e;
    (!acc, Engine.now e)
  in
  let xs = List.init 20 Fun.id in
  let seq = Runner.map ~jobs:1 job xs in
  Alcotest.(check bool) "jobs=2 equals jobs=1" true (Runner.map ~jobs:2 job xs = seq);
  Alcotest.(check bool) "jobs=4 equals jobs=1" true (Runner.map ~jobs:4 job xs = seq);
  Alcotest.(check bool) "jobs=16 equals jobs=1" true (Runner.map ~jobs:16 job xs = seq)

exception Boom of int

let test_map_raises_lowest_index () =
  (* Jobs 3 and 7 fail; the lowest-indexed failure must surface. *)
  let f x = if x = 3 || x = 7 then raise (Boom x) else x in
  Alcotest.check_raises "lowest-index exception" (Boom 3) (fun () ->
      ignore (Runner.map ~jobs:4 f (List.init 10 Fun.id) : int list))

let test_map_nested () =
  (* A job that itself maps runs its inner map sequentially — and
     correctly. *)
  let ys =
    Runner.map ~jobs:4
      (fun x -> List.fold_left ( + ) 0 (Runner.map ~jobs:4 (fun y -> (x * 10) + y) [ 1; 2; 3 ]))
      [ 1; 2 ]
  in
  Alcotest.(check (list int)) "nested map results" [ 36; 66 ] ys

let test_default_jobs () =
  Runner.set_default_jobs 3;
  Alcotest.(check int) "explicit default" 3 (Runner.default_jobs ());
  Runner.set_default_jobs 0;
  Alcotest.(check bool) "auto resolves to >= 1" true (Runner.default_jobs () >= 1);
  Runner.set_default_jobs 1;
  Alcotest.check_raises "negative rejected"
    (Invalid_argument "Runner.set_default_jobs: negative job count") (fun () ->
      Runner.set_default_jobs (-1))

(* One traced mini-simulation: emits a deterministic event pattern. *)
let traced_job seed =
  let rng = Prng.create ~seed in
  Trace.sim_start ~at:0L;
  for i = 1 to 40 do
    let at = Int64.of_int ((seed * 10_000) + (i * 17)) in
    Trace.poll ~at ~found:(Prng.int rng 8);
    Trace.mark ~at (Printf.sprintf "job%d.%d" seed i)
  done;
  seed

let capture_events jobs =
  let ring = Trace.create ~capacity:4096 () in
  Trace.install ring;
  Fun.protect ~finally:Trace.uninstall (fun () ->
      let r = Runner.map_sim ~jobs traced_job (List.init 6 Fun.id) in
      (r, Trace.to_list ring, Trace.dropped ring))

let test_map_sim_trace_merge () =
  (* The parent's ring after a parallel map_sim must hold exactly the
     sequential event stream, in order, with equal drop accounting. *)
  let r1, ev1, d1 = capture_events 1 in
  let r4, ev4, d4 = capture_events 4 in
  Alcotest.(check (list int)) "results equal" r1 r4;
  Alcotest.(check int) "dropped equal" d1 d4;
  Alcotest.(check bool) "event streams identical" true (ev1 = ev4);
  Alcotest.(check bool) "stream non-empty" true (ev1 <> [])

let test_map_sim_no_parent_ring () =
  (* Without an installed ring, map_sim is just map. *)
  Trace.uninstall ();
  let r = Runner.map_sim ~jobs:4 (fun x -> x + 1) [ 1; 2; 3 ] in
  Alcotest.(check (list int)) "plain results" [ 2; 3; 4 ] r

let test_map_sim_tap_forces_sequential () =
  (* With a tap installed (the sanitizer case) jobs run in the calling
     domain, so the tap sees every event synchronously. *)
  let seen = ref 0 in
  Trace.set_tap (Some (fun ~at:_ _ -> incr seen));
  Fun.protect
    ~finally:(fun () -> Trace.set_tap None)
    (fun () ->
      let r = Runner.map_sim ~jobs:4 traced_job [ 0; 1; 2 ] in
      Alcotest.(check (list int)) "results" [ 0; 1; 2 ] r;
      (* 3 jobs x (1 sim_start + 40 polls + 40 marks) *)
      Alcotest.(check int) "tap saw every event" (3 * 81) !seen)

let () =
  Runner.set_default_jobs 1;
  Alcotest.run "parallel"
    [
      ( "map",
        [
          Alcotest.test_case "preserves order" `Quick test_map_preserves_order;
          Alcotest.test_case "empty and singleton" `Quick test_map_empty_and_singleton;
          Alcotest.test_case "results independent of jobs" `Quick test_map_jobs_independent;
          Alcotest.test_case "raises lowest-index exception" `Quick test_map_raises_lowest_index;
          Alcotest.test_case "nested maps" `Quick test_map_nested;
          Alcotest.test_case "default jobs knob" `Quick test_default_jobs;
        ] );
      ( "map_sim",
        [
          Alcotest.test_case "trace merge matches sequential" `Quick test_map_sim_trace_merge;
          Alcotest.test_case "no parent ring" `Quick test_map_sim_no_parent_ring;
          Alcotest.test_case "tap forces sequential" `Quick test_map_sim_tap_forces_sequential;
        ] );
    ]
