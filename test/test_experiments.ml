(* Integration tests: every experiment runs in quick mode and its
   results respect the paper's qualitative claims (who wins, direction
   and rough magnitude of the effects). *)

let cfg = Exp_config.quick

let test_fig1_bounds_hold () =
  let rows = Exp_fig1.compute cfg in
  Alcotest.(check bool) "has rows" true (List.length rows >= 3);
  List.iter
    (fun r ->
      Alcotest.(check int)
        (Printf.sprintf "no violations at T=%Ld" r.Exp_fig1.ticks)
        0 r.Exp_fig1.bound_violations;
      Alcotest.(check bool) "events fired" true (r.Exp_fig1.events > 0);
      Alcotest.(check bool) "min above T" true
        (r.Exp_fig1.min_delay_ticks > Int64.to_float r.Exp_fig1.ticks))
    rows

let test_hw_overhead_linear () =
  let r = Exp_hw_overhead.compute cfg in
  let last = List.nth r.Exp_hw_overhead.rows (List.length r.Exp_hw_overhead.rows - 1) in
  Alcotest.(check bool)
    (Printf.sprintf "~45%% at 100kHz (got %.1f)" last.Exp_hw_overhead.overhead_pct)
    true
    (last.Exp_hw_overhead.overhead_pct > 32.0 && last.Exp_hw_overhead.overhead_pct < 52.0);
  Alcotest.(check bool)
    (Printf.sprintf "per-interrupt cost ~4.45us (got %.2f)" last.Exp_hw_overhead.us_per_interrupt)
    true
    (last.Exp_hw_overhead.us_per_interrupt > 3.4 && last.Exp_hw_overhead.us_per_interrupt < 5.2);
  (* Alpha interrupts are costlier than P-III, as the paper found. *)
  Alcotest.(check bool) "alpha > p-iii" true
    (r.Exp_hw_overhead.per_intr_alpha > r.Exp_hw_overhead.per_intr_piii);
  (* Monotone non-increasing throughput with frequency. *)
  let tputs = List.map (fun row -> row.Exp_hw_overhead.throughput) r.Exp_hw_overhead.rows in
  let rec monotone = function
    | a :: b :: rest -> a +. 20.0 >= b && monotone (b :: rest)
    | _ -> true
  in
  Alcotest.(check bool) "throughput non-increasing" true (monotone tputs)

let test_soft_base_negligible () =
  let r = Exp_soft_base.compute cfg in
  Alcotest.(check bool)
    (Printf.sprintf "soft overhead < 3%% (got %.1f%%)" r.Exp_soft_base.overhead_pct)
    true
    (r.Exp_soft_base.overhead_pct < 3.0);
  Alcotest.(check bool)
    (Printf.sprintf "mean firing interval ~31.5us (got %.1f)"
       r.Exp_soft_base.mean_firing_interval_us)
    true
    (r.Exp_soft_base.mean_firing_interval_us > 24.0
    && r.Exp_soft_base.mean_firing_interval_us < 40.0);
  Alcotest.(check bool) "hw at same rate is much worse" true
    (r.Exp_soft_base.hw_equiv_overhead_pct > 4.0 *. Float.max 1.0 r.Exp_soft_base.overhead_pct)

let test_trigger_dist_ordering () =
  (* Only the cheap workloads in the integration test. *)
  let row w = fst (Exp_trigger_dist.measure cfg w) in
  let apache = row Exp_trigger_dist.ST_apache in
  let nfs = row Exp_trigger_dist.ST_nfs in
  let xeon = row Exp_trigger_dist.ST_apache_xeon in
  Alcotest.(check bool) "nfs much finer than apache" true
    (nfs.Exp_trigger_dist.mean_us < apache.Exp_trigger_dist.mean_us /. 5.0);
  Alcotest.(check bool) "xeon finer than p-ii apache" true
    (xeon.Exp_trigger_dist.mean_us < apache.Exp_trigger_dist.mean_us);
  Alcotest.(check bool) "apache mean in band" true
    (apache.Exp_trigger_dist.mean_us > 25.0 && apache.Exp_trigger_dist.mean_us < 38.0)

let test_trigger_windows_stable () =
  let r = Exp_trigger_windows.compute cfg in
  Alcotest.(check bool) "1ms windows exist" true (r.Exp_trigger_windows.one_ms.Exp_trigger_windows.windows > 100);
  (* 10 ms windows are tighter than 1 ms windows (paper's point). *)
  let spread s =
    s.Exp_trigger_windows.p95 -. s.Exp_trigger_windows.p5
  in
  Alcotest.(check bool) "10ms band narrower" true
    (spread r.Exp_trigger_windows.ten_ms < spread r.Exp_trigger_windows.one_ms);
  (* Our windowed medians are more variable than the paper's (<1.13%
     above 40 us there); the qualitative claims -- bulk in the teens-to-
     twenties and a tighter 10 ms band -- hold.  See EXPERIMENTS.md. *)
  Alcotest.(check bool) "bounded fraction of 1ms medians above 40us" true
    (r.Exp_trigger_windows.one_ms.Exp_trigger_windows.above_40us_pct < 16.0);
  Alcotest.(check bool) "1ms medians centred in the paper's band" true
    (r.Exp_trigger_windows.one_ms.Exp_trigger_windows.p5 > 8.0
    && r.Exp_trigger_windows.one_ms.Exp_trigger_windows.p5 < 30.0)

let test_trigger_sources_impact () =
  let r = Exp_trigger_sources.compute cfg in
  let frac k =
    (List.find (fun s -> Trigger.equal s.Exp_trigger_sources.source k) r.Exp_trigger_sources.sources)
      .Exp_trigger_sources.fraction_pct
  in
  Alcotest.(check bool) "syscalls dominate" true (frac Trigger.Syscall > 40.0);
  Alcotest.(check bool) "ip-output second" true (frac Trigger.Ip_output > 20.0);
  (* Removing syscalls must lengthen the mean more than removing traps. *)
  let mean_removed k =
    (List.find
       (fun c -> c.Exp_trigger_sources.removed = Some k)
       r.Exp_trigger_sources.cdfs)
      .Exp_trigger_sources.mean_us
  in
  let all_mean =
    (List.find (fun c -> c.Exp_trigger_sources.removed = None) r.Exp_trigger_sources.cdfs)
      .Exp_trigger_sources.mean_us
  in
  Alcotest.(check bool) "no-syscalls worst" true
    (mean_removed Trigger.Syscall > mean_removed Trigger.Trap);
  Alcotest.(check bool) "removals never improve" true (mean_removed Trigger.Trap >= all_mean -. 0.5)

let test_rbc_overhead_ordering () =
  let rows = Exp_rbc_overhead.compute cfg in
  List.iter
    (fun r ->
      Alcotest.(check bool) "hw costs much more than soft" true
        (r.Exp_rbc_overhead.hw_overhead_pct > 3.0 *. Float.max 1.0 r.Exp_rbc_overhead.soft_overhead_pct);
      Alcotest.(check bool) "hw overhead 18-45%" true
        (r.Exp_rbc_overhead.hw_overhead_pct > 18.0 && r.Exp_rbc_overhead.hw_overhead_pct < 45.0);
      Alcotest.(check bool) "soft overhead < 8%" true (r.Exp_rbc_overhead.soft_overhead_pct < 8.0))
    rows;
  let a = List.nth rows 0 and f = List.nth rows 1 in
  Alcotest.(check bool) "flash suffers more from interrupts" true
    (f.Exp_rbc_overhead.hw_overhead_pct > a.Exp_rbc_overhead.hw_overhead_pct)

let test_rbc_process_shape () =
  let tables = Exp_rbc_process.compute cfg in
  List.iter
    (fun tab ->
      let first = List.hd tab.Exp_rbc_process.soft in
      let last = List.nth tab.Exp_rbc_process.soft (List.length tab.Exp_rbc_process.soft - 1) in
      (* At line rate the target is held; at min=35 the average degrades
         to ~min + residual trigger gap. *)
      Alcotest.(check bool)
        (Printf.sprintf "target %.0f held at min=12 (got %.1f)" tab.Exp_rbc_process.target_us
           first.Exp_rbc_process.avg_interval_us)
        true
        (Float.abs (first.Exp_rbc_process.avg_interval_us -. tab.Exp_rbc_process.target_us) < 2.5);
      Alcotest.(check bool) "min=35 degrades" true
        (last.Exp_rbc_process.avg_interval_us > tab.Exp_rbc_process.target_us +. 2.0);
      (* The hardware timer misses its target. *)
      Alcotest.(check bool)
        (Printf.sprintf "hw avg %.1f > target" tab.Exp_rbc_process.hw_avg_us)
        true
        (tab.Exp_rbc_process.hw_avg_us > tab.Exp_rbc_process.target_us +. 0.8);
      Alcotest.(check bool) "hw ticks lost" true (tab.Exp_rbc_process.hw_lost_pct > 1.0))
    tables

let test_rbc_wan_reductions () =
  let tables = Exp_rbc_wan.compute cfg in
  List.iter
    (fun tab ->
      List.iter
        (fun row ->
          Alcotest.(check bool) "paced never slower" true (row.Exp_rbc_wan.reduction_pct >= 0.0);
          Alcotest.(check bool) "paced throughput higher" true
            (row.Exp_rbc_wan.paced_xput_mbps >= row.Exp_rbc_wan.regular_xput_mbps))
        tab.Exp_rbc_wan.rows;
      (* The 100-segment transfer is the sweet spot: ~89% reduction. *)
      let mid = List.find (fun r -> r.Exp_rbc_wan.segments = 100) tab.Exp_rbc_wan.rows in
      Alcotest.(check bool)
        (Printf.sprintf "~89%% at 100 segments (got %.0f)" mid.Exp_rbc_wan.reduction_pct)
        true
        (mid.Exp_rbc_wan.reduction_pct > 80.0 && mid.Exp_rbc_wan.reduction_pct < 95.0))
    tables

let test_polling_improvements () =
  let rows = Exp_polling.compute cfg in
  List.iter
    (fun row ->
      List.iter
        (fun c ->
          match c.Exp_polling.quota with
          | None -> ()
          | Some q ->
            Alcotest.(check bool)
              (Printf.sprintf "%s quota %.0f: polling >= interrupts (ratio %.2f)"
                 (match row.Exp_polling.server with
                 | Webserver.Apache -> "apache"
                 | Webserver.Flash -> "flash")
                 q c.Exp_polling.ratio)
              true (c.Exp_polling.ratio > 0.99))
        row.Exp_polling.cells)
    rows;
  (* Flash HTTP gains more than Apache HTTP. *)
  let max_ratio r =
    List.fold_left (fun acc c -> Float.max acc c.Exp_polling.ratio) 1.0 r.Exp_polling.cells
  in
  let apache_http = List.nth rows 0 and flash_http = List.nth rows 1 in
  Alcotest.(check bool) "flash gains more" true (max_ratio flash_http > max_ratio apache_http);
  Alcotest.(check bool) "flash gains 9%+" true (max_ratio flash_http > 1.09)

let test_livelock_shape () =
  let rows = Exp_livelock.compute cfg in
  let last = List.nth rows (List.length rows - 1) in
  (* At the highest offered load, interrupts have collapsed while the
     alternatives saturate far above them. *)
  Alcotest.(check bool) "hybrid >> interrupts at overload" true
    (last.Exp_livelock.hybrid_goodput > 2.0 *. last.Exp_livelock.interrupt_goodput);
  Alcotest.(check bool) "soft polling >> interrupts at overload" true
    (last.Exp_livelock.softpoll_goodput > 2.0 *. last.Exp_livelock.interrupt_goodput);
  (* Interrupt goodput is non-monotone: it rises then falls. *)
  let interrupt = List.map (fun r -> r.Exp_livelock.interrupt_goodput) rows in
  let peak = List.fold_left Float.max 0.0 interrupt in
  Alcotest.(check bool) "interrupt goodput collapses from its peak" true
    (last.Exp_livelock.interrupt_goodput < 0.8 *. peak);
  (* Below saturation everyone keeps up with the offered load. *)
  let first = List.hd rows in
  Alcotest.(check bool) "all keep up at low load" true
    (first.Exp_livelock.interrupt_goodput > 0.9 *. first.Exp_livelock.offered_kpps *. 1e3
    && first.Exp_livelock.hybrid_goodput > 0.9 *. first.Exp_livelock.offered_kpps *. 1e3
    && first.Exp_livelock.softpoll_goodput > 0.9 *. first.Exp_livelock.offered_kpps *. 1e3)

let test_sensitivity_shape () =
  let r = Exp_sensitivity.compute cfg in
  List.iter
    (fun row ->
      Alcotest.(check bool)
        (Printf.sprintf "hw >> soft at scale %.2f" row.Exp_sensitivity.intr_scale)
        true
        (row.Exp_sensitivity.hw_overhead_pct
        > 3.0 *. Float.max 1.0 row.Exp_sensitivity.soft_overhead_pct))
    r.Exp_sensitivity.pacing;
  (* HW overhead grows with the per-interrupt cost. *)
  let ovh = List.map (fun x -> x.Exp_sensitivity.hw_overhead_pct) r.Exp_sensitivity.pacing in
  let rec increasing = function
    | a :: b :: rest -> a < b +. 1.0 && increasing (b :: rest)
    | _ -> true
  in
  Alcotest.(check bool) "hw overhead increases with interrupt cost" true (increasing ovh);
  (* Polling wins even without pollution, and more with it. *)
  let ratios = List.map (fun x -> x.Exp_sensitivity.polling_ratio) r.Exp_sensitivity.polling in
  Alcotest.(check bool) "polling wins at sensitivity 0" true (List.hd ratios > 1.0);
  Alcotest.(check bool) "win grows with sensitivity" true
    (List.nth ratios (List.length ratios - 1) > List.hd ratios)

let test_pacer_scale_shape () =
  let cells = Exp_pacer_scale.compute cfg in
  Alcotest.(check bool) "has cells" true (List.length cells >= 6);
  (* Rate-based clocking compensates for store quantization as long as
     the bucket is finer than the target interval: every store variant
     must transmit the identical segment count per fleet size. *)
  let sizes =
    List.sort_uniq compare (List.map (fun c -> c.Exp_pacer_scale.flows) cells)
  in
  List.iter
    (fun flows ->
      let sends =
        List.filter_map
          (fun c ->
            if c.Exp_pacer_scale.flows = flows then Some c.Exp_pacer_scale.sends else None)
          cells
      in
      Alcotest.(check bool)
        (Printf.sprintf "sends agree across stores at %d flows" flows)
        true
        (List.length (List.sort_uniq compare sends) = 1);
      Alcotest.(check bool) "sends positive" true (List.hd sends > 0))
    sizes;
  List.iter
    (fun c ->
      let open Exp_pacer_scale in
      if c.store = "pacing-wheel/100us" then
        (* 100 us buckets under 103+ us targets: the round-up
           quantization must dominate the fire delay — the row that
           prices approximation. *)
        Alcotest.(check bool)
          (Printf.sprintf "coarse wheel delay visible (p50 %.1f)" c.d50_us)
          true (c.d50_us > 30.0)
      else
        (* Fine stores: a fire lands at the first 10 us check at or
           after its deadline, so delay never exceeds one tick. *)
        Alcotest.(check bool)
          (Printf.sprintf "%s max delay within a tick (%.1f)" c.store c.dmax_us)
          true
          (c.dmax_us <= 11.0);
      if c.store = "pacing-wheel" && c.flows >= 10_000 then
        Alcotest.(check bool)
          (Printf.sprintf "wheel memory per flow (%.2f KB)" c.kb_per_flow)
          true
          (c.kb_per_flow < 0.5))
    cells

let test_renders_do_not_raise () =
  (* Rendering smoke tests over tiny computations. *)
  let s = Exp_rbc_wan.render cfg (Exp_rbc_wan.compute cfg) in
  Alcotest.(check bool) "wan render non-empty" true (String.length s > 200);
  let s2 = Exp_fig1.run cfg in
  Alcotest.(check bool) "fig1 render non-empty" true (String.length s2 > 100)

let () =
  Alcotest.run "experiments"
    [
      ( "integration",
        [
          Alcotest.test_case "fig1 bounds hold" `Slow test_fig1_bounds_hold;
          Alcotest.test_case "fig2/3 overhead linear" `Slow test_hw_overhead_linear;
          Alcotest.test_case "soft base negligible" `Slow test_soft_base_negligible;
          Alcotest.test_case "table1 ordering" `Slow test_trigger_dist_ordering;
          Alcotest.test_case "fig5 window stability" `Slow test_trigger_windows_stable;
          Alcotest.test_case "table2 source impact" `Slow test_trigger_sources_impact;
          Alcotest.test_case "table3 overhead ordering" `Slow test_rbc_overhead_ordering;
          Alcotest.test_case "tables4/5 process shape" `Slow test_rbc_process_shape;
          Alcotest.test_case "tables6/7 reductions" `Slow test_rbc_wan_reductions;
          Alcotest.test_case "table8 polling wins" `Slow test_polling_improvements;
          Alcotest.test_case "livelock extension shape" `Slow test_livelock_shape;
          Alcotest.test_case "sensitivity extension shape" `Slow test_sensitivity_shape;
          Alcotest.test_case "pacer-scale extension shape" `Slow test_pacer_scale_shape;
          Alcotest.test_case "renders" `Slow test_renders_do_not_raise;
        ] );
    ]
